package wfsql

import (
	"fmt"

	"wfsql/internal/sched"
)

// This file is the multi-instance execution facade: it runs N instances
// of the paper's running example concurrently on a bounded worker pool
// (internal/sched), the way the surveyed workflow servers drive many
// process instances against one shared database. Each instance gets its
// own per-instance state and sqldb sessions; the shared database
// serializes writers and lets read-only statements run concurrently.
//
// Every instance appends one confirmation per approved item type, so
// after a parallel run ConfirmationCount() must equal
// Instances × ApprovedItemTypes() — the invariant the parallel tests and
// wfbench assert.

// ParallelConfig parameterizes a multi-instance figure run.
type ParallelConfig struct {
	// Instances is the number of workflow instances to run (min 1).
	Instances int
	// Workers bounds the number of instances in flight at once (min 1;
	// 1 reproduces serial execution on the scheduler's code path).
	Workers int
	// Resilience applies the usual reliability policies to every
	// instance (zero value = plain figure builders).
	Resilience ResilienceConfig
}

func (c ParallelConfig) normalized() ParallelConfig {
	if c.Instances < 1 {
		c.Instances = 1
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// newScheduler builds a scheduler wired to the environment's
// observability bundle (if enabled).
func (env *Environment) newScheduler(workers int) *sched.Scheduler {
	s := sched.New(workers)
	s.SetObservability(env.obs)
	return s
}

// RunFigure4BISParallel deploys the Figure 4 BIS process once and runs
// cfg.Instances instances of it on cfg.Workers workers. The returned
// report carries per-instance queue-wait/run-time and aggregate
// throughput; the error is the first instance failure (nil when all
// instances completed).
func (env *Environment) RunFigure4BISParallel(cfg ParallelConfig) (sched.Report, error) {
	cfg = cfg.normalized()
	d, err := env.Engine.Deploy(env.BuildFigure4BISResilient(cfg.Resilience))
	if err != nil {
		return sched.Report{}, err
	}
	jobs := make([]sched.Job, cfg.Instances)
	for i := range jobs {
		jobs[i] = sched.Job{
			Stack: "BIS",
			Name:  fmt.Sprintf("Figure4_BIS#%d", i),
			Run: func() error {
				_, err := d.Run(nil)
				return err
			},
		}
	}
	rep := env.newScheduler(cfg.Workers).Run(jobs)
	return rep, rep.FirstError()
}

// RunFigure6WFParallel runs cfg.Instances instances of the Figure 6 WF
// workflow on cfg.Workers workers. The activity tree is built once and
// shared — WF activities are immutable configuration; all per-instance
// state lives in each run's Context (host variables, per-instance
// sqldb sessions via Context.SessionFor).
func (env *Environment) RunFigure6WFParallel(cfg ParallelConfig) (sched.Report, error) {
	cfg = cfg.normalized()
	root := env.BuildFigure6WFResilient(cfg.Resilience)
	jobs := make([]sched.Job, cfg.Instances)
	for i := range jobs {
		jobs[i] = sched.Job{
			Stack: "WF",
			Name:  fmt.Sprintf("Figure6_WF#%d", i),
			Run: func() error {
				_, err := env.Runtime.Run(root, map[string]any{"Index": 0})
				return err
			},
		}
	}
	rep := env.newScheduler(cfg.Workers).Run(jobs)
	return rep, rep.FirstError()
}

// RunFigure8OracleParallel deploys the Figure 8 Oracle process once and
// runs cfg.Instances instances of it on cfg.Workers workers. The
// extension-function library serves all instances concurrently, leasing
// pooled sqldb sessions per call.
func (env *Environment) RunFigure8OracleParallel(cfg ParallelConfig) (sched.Report, error) {
	cfg = cfg.normalized()
	p, err := env.BuildFigure8OracleResilient(cfg.Resilience)
	if err != nil {
		return sched.Report{}, err
	}
	d, err := env.Engine.Deploy(p)
	if err != nil {
		return sched.Report{}, err
	}
	jobs := make([]sched.Job, cfg.Instances)
	for i := range jobs {
		jobs[i] = sched.Job{
			Stack: "Oracle",
			Name:  fmt.Sprintf("Figure8_Oracle#%d", i),
			Run: func() error {
				_, err := d.Run(nil)
				return err
			},
		}
	}
	rep := env.newScheduler(cfg.Workers).Run(jobs)
	return rep, rep.FirstError()
}
