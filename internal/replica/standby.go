package replica

import (
	"fmt"
	"strconv"
	"time"

	"wfsql/internal/journal"
	"wfsql/internal/obsv"
)

// Standby is a warm standby: it tails the primary's WAL, folding every
// lifecycle record into a journal.State so that at any moment it holds
// the same materialized view a crash-recovery replay would produce —
// replay-to-follow instead of replay-at-recovery. On primary failure,
// Promote performs the lease-fenced takeover and hands back a live
// Recorder ready for a rebuilt host to resume the in-flight instances.
//
// KindSQLEffect records (the sqldb change stream, see CaptureSQL) are
// not lifecycle state; they are forwarded to the OnSQLEffect consumer —
// typically a SQLReplica — as they stream past.
//
// A Standby is single-goroutine, like the Tailer it wraps: one caller
// drives CatchUp/Promote.
type Standby struct {
	dir    string
	lease  *Lease
	tailer *journal.Tailer
	state  *journal.State
	sql    func(journal.SQLEffectRecord) error
	obs    *obsv.Observability

	now      func() time.Time
	promoted bool
	sqlErrs  int64
}

// NewStandby returns a standby tailing the journal directory dir,
// coordinating takeover through lease. The primary need not have
// started yet.
func NewStandby(dir string, lease *Lease) *Standby {
	return &Standby{
		dir:    dir,
		lease:  lease,
		tailer: journal.NewTailer(dir),
		state:  journal.NewState(),
		now:    time.Now,
	}
}

// SetObservability attaches a tracing/metrics bundle: each catch-up
// updates the replica.lag_records and replica.lag_ms gauges, and
// promotion counts replica.takeovers and emits a span. Nil detaches.
func (s *Standby) SetObservability(o *obsv.Observability) { s.obs = o }

// SetClock injects the staleness clock (tests).
func (s *Standby) SetClock(now func() time.Time) { s.now = now }

// OnSQLEffect installs the consumer for tailed SQL-effect records. An
// error from the consumer aborts the poll without advancing the cursor
// past the failed record, so the next CatchUp redelivers it.
func (s *Standby) OnSQLEffect(fn func(journal.SQLEffectRecord) error) { s.sql = fn }

// CatchUp drains everything the primary has appended since the last
// call, folding lifecycle records into the standby state and forwarding
// SQL effects. It returns the number of records absorbed — which is
// also how many records stale the standby had become since the previous
// call (exported as the replica.lag_records gauge).
func (s *Standby) CatchUp() (int, error) {
	n, err := s.tailer.Poll(func(rec *journal.Record) error {
		s.state.Apply(rec)
		if rec.Kind == journal.KindSQLEffect && s.sql != nil {
			e, ok := journal.DecodeSQLEffect(rec)
			if !ok {
				s.sqlErrs++
				return nil // malformed: count and keep streaming
			}
			if err := s.sql(e); err != nil {
				return err
			}
		}
		return nil
	})
	m := s.obs.M()
	m.Gauge("replica.lag_records").SetInt(int64(n))
	if t := s.tailer.LastRecordTime(); err == nil && !t.IsZero() {
		// Caught up to the tail: staleness is the age of the newest
		// record. (A poll error leaves the gauge at its prior value —
		// the lag is unknown, not zero.)
		m.Gauge("replica.lag_ms").Set(float64(s.now().Sub(t).Milliseconds()))
	}
	return n, err
}

// State returns a deep copy of the standby's materialized view.
func (s *Standby) State() *journal.State { return s.state.Clone() }

// InFlight returns the journals of instances that were in flight at the
// last CatchUp — the set a promoted standby's host must resume.
func (s *Standby) InFlight() []*journal.InstanceJournal { return s.state.InFlight() }

// Delivered reports total records absorbed over the standby's life.
func (s *Standby) Delivered() int64 { return s.tailer.Delivered() }

// LastRecordTime returns the Time stamp of the newest absorbed record
// (zero before any). now − LastRecordTime is the replica's staleness in
// wall-clock terms once caught up.
func (s *Standby) LastRecordTime() time.Time { return s.tailer.LastRecordTime() }

// SkippedSegments surfaces the tailer's loss detector: non-zero means
// whole WAL segments rotated away un-tailed. Lifecycle state self-heals
// at the next checkpoint; a SQL replica must re-bootstrap (see
// SQLReplica.Complete).
func (s *Standby) SkippedSegments() int64 { return s.tailer.SkippedSegments() }

// BadSQLEffects counts malformed SQL-effect records skipped.
func (s *Standby) BadSQLEffects() int64 { return s.sqlErrs }

// Promote performs the lease-fenced takeover and returns the standby's
// own live Recorder, positioned exactly where the fenced primary
// stopped:
//
//  1. Acquire the lease as holder, advancing the fencing epoch — the
//     lease-file rename is the takeover commit point. While the old
//     primary's lease is still live this fails with ErrLeaseHeld
//     (promotion is only legal once the heartbeat went stale, or after
//     the primary cleanly released by letting its TTL lapse).
//  2. Drain the WAL tail: records the primary appended before the fence
//     landed are part of history and must be absorbed, records after it
//     cannot exist (its guard refuses them under the recorder mutex).
//  3. Open a Recorder on the directory (scan + torn-tail truncation —
//     an append that was mid-write when the primary died is dropped
//     here, exactly as crash recovery would), stamp it with the new
//     epoch, and install the lease guard so this recorder is itself
//     fenced by any later takeover.
//  4. Physically fence: force one checkpoint rotation, so the WAL path
//     names a fresh inode. A zombie primary append that slipped past
//     its guard check before the lease rename landed can now only reach
//     the orphaned old inode, never the authoritative log.
//
// The caller attaches the returned recorder to a rebuilt host and
// resumes Recorder.InFlight() (or the standby's own InFlight, which
// matches by construction).
func (s *Standby) Promote(holder string) (*journal.Recorder, error) {
	if s.promoted {
		return nil, fmt.Errorf("replica: standby already promoted")
	}
	span := s.obs.T().Start(0, obsv.KindJournal, "replica.promote")
	fail := func(err error) (*journal.Recorder, error) {
		span.Set("error", err.Error()).End(obsv.OutcomeFault)
		return nil, err
	}

	st, err := s.lease.Acquire(holder)
	if err != nil {
		return fail(err)
	}
	if _, err := s.CatchUp(); err != nil {
		return fail(fmt.Errorf("replica: promote: final catch-up: %w", err))
	}
	s.tailer.Close()

	rec, err := journal.Open(s.dir)
	if err != nil {
		return fail(fmt.Errorf("replica: promote: open journal: %w", err))
	}
	// The catch-up and the open's full-WAL replay can outlast the TTL;
	// re-stamp the heartbeat before installing the guard so the new
	// epoch does not self-fence on its very first append. (The epoch is
	// already ours — nobody else can have acquired in between without
	// advancing past it, which the guard would rightly catch.)
	if err := s.lease.Renew(holder, st.Epoch); err != nil {
		rec.Close()
		return fail(fmt.Errorf("replica: promote: renew after catch-up: %w", err))
	}
	rec.SetEpoch(st.Epoch)
	rec.SetAppendGuard(s.lease.Guard(st.Epoch))
	// Physical fence: publish a fresh segment under the WAL path. The
	// rotation setting is promotion-local; callers wanting rotation as
	// an ongoing policy re-enable it on the returned recorder.
	rec.SetRotateAtCheckpoint(true)
	if err := rec.Checkpoint(); err != nil {
		rec.Close()
		return fail(fmt.Errorf("replica: promote: fence rotation: %w", err))
	}
	rec.SetRotateAtCheckpoint(false)

	s.promoted = true
	s.obs.M().Counter("replica.takeovers").Inc()
	span.Set("epoch", strconv.FormatInt(st.Epoch, 10)).
		Set("holder", holder).
		Set("records", strconv.FormatInt(s.tailer.Delivered(), 10)).
		End(obsv.OutcomeOK)
	return rec, nil
}
