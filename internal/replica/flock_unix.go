//go:build unix

package replica

import (
	"fmt"
	"os"
	"syscall"
)

// lockExclusive takes an exclusive cross-process advisory lock on path
// (creating the file if needed) and returns the unlock function. flock
// locks belong to the open file description, so two Lease handles — in
// one process or two — exclude each other even though each holds its
// own descriptor; the kernel releases the lock if the holder dies.
//
// The lock is held only across a lease read-check-write (microseconds),
// never across a pause-prone wait, so a SIGSTOP'd holder can delay a
// competing Acquire but the blocked side still observes a serialized,
// never-torn history once it runs.
func lockExclusive(path string) (unlock func(), err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("replica: open lease lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("replica: flock lease lock: %w", err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN) //nolint:errcheck // close releases anyway
		f.Close()
	}, nil
}
