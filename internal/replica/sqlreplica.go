package replica

import (
	"fmt"
	"sync/atomic"

	"wfsql/internal/journal"
	"wfsql/internal/sqldb"
)

// This file is the sqldb half of replication: CaptureSQL journals the
// primary database's change stream as KindSQLEffect WAL records, and
// SQLReplica replays those records onto a read-only replica database
// for query/reporting offload.
//
// Staleness contract: a SQL-effect record becomes visible to the
// replica once it is (a) written to the WAL — SQL effects are not
// commit-critical, so they ride the recorder's sync batch — and (b)
// picked up by the standby's next CatchUp poll. The replica's staleness
// bound is therefore one sync-batch flush plus one poll interval; the
// replica.lag_records and replica.lag_ms gauges report the observed
// value. Reads on the replica see a prefix of the primary's change
// stream — never a permutation — because capture happens inside the
// primary engine's commit critical section while the emitting
// statement still holds its table latches (sink order is per-table
// execution order and sequence numbers are dense), and WAL framing
// preserves append order end to end.

// CaptureStats counts capture failures for one CaptureSQL attachment.
type CaptureStats struct{ dropped atomic.Int64 }

// Dropped reports changes that executed on the primary but never
// reached the WAL for a reason OTHER than fencing (disk full, I/O
// error, closed recorder). Each one is a hole the replica cannot fill:
// the applier's sequence-density check will force a re-bootstrap when
// the hole streams past it, and this counter (with the
// replica.capture_drops metric) is the primary-side alarm.
func (s *CaptureStats) Dropped() int64 { return s.dropped.Load() }

// CaptureSQL wires a database's change stream into the journal: every
// successful top-level mutating statement on db is appended to rec as a
// KindSQLEffect record, making the WAL the single replication channel
// for both workflow lifecycle and SQL state. Pass a nil recorder to
// stop capturing (the returned stats are nil then).
//
// The sink runs inside the database's commit critical section, so the
// append must not re-enter the database — it does not. Append failures
// split two ways:
//
//   - Fencing refusals are deliberately swallowed: a fenced primary's
//     changes are no longer authoritative, and the refusal is already
//     counted by Recorder.FencedWrites and the replica.fenced_writes
//     metric.
//   - Any other failure (disk full, I/O error, closed recorder) means a
//     live primary's change was lost: it is counted in the returned
//     CaptureStats and the replica.capture_drops metric, and the
//     resulting sequence gap makes the downstream Applier latch
//     ErrDiverged rather than silently serve stale data.
func CaptureSQL(db *sqldb.DB, rec *journal.Recorder) *CaptureStats {
	if rec == nil {
		db.SetChangeSink(nil)
		return nil
	}
	stats := &CaptureStats{}
	db.SetChangeSink(func(c sqldb.Change) {
		e := journal.SQLEffectRecord{
			Seq:     c.Seq,
			Session: c.Session,
			Kind:    c.Kind,
			SQL:     c.SQL,
			Named:   sqldb.EncodeNamed(c.Named),
		}
		if len(c.Params) > 0 {
			e.Params = make([]string, len(c.Params))
			for i, p := range c.Params {
				e.Params[i] = sqldb.EncodeValue(p)
			}
		}
		if err := rec.SQLEffect(e); err != nil && !journal.IsFenced(err) {
			stats.dropped.Add(1)
			rec.Observability().M().Counter("replica.capture_drops").Inc()
		}
	})
	return stats
}

// SQLReplica replays the journal's SQL-effect stream onto a read-only
// replica database. Wire its ApplyEffect into Standby.OnSQLEffect and
// every CatchUp advances the replica in lock-step with the standby.
type SQLReplica struct {
	db *sqldb.DB
	ap *sqldb.Applier
}

// NewSQLReplica wraps an existing database as a replica starting at the
// given bootstrap floor (see sqldb.DB.BootstrapState; 0 replays the
// stream from its beginning). The database is switched to read-only
// replica mode: application sessions get ErrReadOnly on mutation, only
// the replication applier writes.
func NewSQLReplica(db *sqldb.DB, floor int64) *SQLReplica {
	db.SetReadOnly(true)
	return &SQLReplica{db: db, ap: sqldb.NewApplier(db, floor)}
}

// BootstrapSQLReplica builds a replica of primary from a consistent
// bootstrap point (sqldb.DB.BootstrapState): the committed-only dump
// script seeds a fresh database, the paired sequence number becomes the
// applier floor (changes already reflected in the dump are skipped
// rather than double-applied), and the pending statements of
// transactions still open at the floor are primed so their eventual
// COMMIT or ROLLBACK replays cleanly instead of diverging.
func BootstrapSQLReplica(primary *sqldb.DB, name string) (*SQLReplica, error) {
	script, seq, pending := primary.BootstrapState()
	db := sqldb.Open(name)
	if _, err := db.ExecScript(script); err != nil {
		return nil, fmt.Errorf("replica: bootstrap from dump: %w", err)
	}
	r := NewSQLReplica(db, seq)
	if err := r.ap.Prime(pending); err != nil {
		return nil, fmt.Errorf("replica: prime open transactions: %w", err)
	}
	return r, nil
}

// ApplyEffect replays one decoded SQL-effect record. Malformed encoded
// parameters are an error (the stream is corrupt, not just stale).
func (r *SQLReplica) ApplyEffect(e journal.SQLEffectRecord) error {
	c := sqldb.Change{Seq: e.Seq, Session: e.Session, Kind: e.Kind, SQL: e.SQL}
	if len(e.Params) > 0 {
		c.Params = make([]sqldb.Value, len(e.Params))
		for i, p := range e.Params {
			v, err := sqldb.DecodeValue(p)
			if err != nil {
				return fmt.Errorf("replica: effect seq %d param %d: %w", e.Seq, i, err)
			}
			c.Params[i] = v
		}
	}
	if len(e.Named) > 0 {
		named, err := sqldb.DecodeNamed(e.Named)
		if err != nil {
			return fmt.Errorf("replica: effect seq %d named params: %w", e.Seq, err)
		}
		c.Named = named
	}
	return r.ap.Apply(c)
}

// DB returns the replica database (for read/reporting sessions).
func (r *SQLReplica) DB() *sqldb.DB { return r.db }

// Applied reports how many changes the replica has replayed.
func (r *SQLReplica) Applied() int64 { return r.ap.Applied() }

// Skipped reports changes skipped below the bootstrap floor (plus
// orphaned transaction tails straddling it).
func (r *SQLReplica) Skipped() int64 { return r.ap.Skipped() }

// OpenTransactions reports origin transactions currently open on the
// replica.
func (r *SQLReplica) OpenTransactions() int { return r.ap.OpenTransactions() }

// Complete verifies stream completeness against the standby that fed
// this replica: if the tailer skipped whole WAL segments, SQL-effect
// records are gone for good and the replica must be re-bootstrapped
// from a fresh dump. Lifecycle state self-heals (checkpoints carry full
// snapshots); SQL effects do not. A divergence the applier itself
// latched (sequence gap, straddled-transaction rollback) is reported
// the same way.
func (r *SQLReplica) Complete(s *Standby) error {
	if n := s.SkippedSegments(); n > 0 {
		return fmt.Errorf("replica: %d WAL segment(s) rotated away un-tailed; re-bootstrap required", n)
	}
	if n := s.BadSQLEffects(); n > 0 {
		return fmt.Errorf("replica: %d malformed SQL-effect record(s) skipped; re-bootstrap required", n)
	}
	if err := r.ap.Fatal(); err != nil {
		return err
	}
	return nil
}

// Fatal returns the applier's latched divergence error (nil while the
// replica is converging). See sqldb.ErrDiverged.
func (r *SQLReplica) Fatal() error { return r.ap.Fatal() }

// Promote releases the replica for direct writes after a takeover:
// orphaned transactions (origin sessions that died mid-transaction) are
// rolled back and read-only mode is lifted. Returns how many orphans
// were aborted.
func (r *SQLReplica) Promote() int {
	n := r.ap.AbortOpen()
	r.db.SetReadOnly(false)
	return n
}
