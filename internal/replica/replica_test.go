package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfsql/internal/journal"
	"wfsql/internal/obsv"
	"wfsql/internal/sqldb"
)

// fakeClock is a mutex-protected manual clock shared by lease and
// standby so tests advance time instead of sleeping through TTLs.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestLeaseAcquireRenewTakeover(t *testing.T) {
	clock := newFakeClock()
	l := OpenLease(t.TempDir(), time.Second)
	l.SetClock(clock.Now)

	a, err := l.Acquire("a")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if a.Epoch != 1 || a.Holder != "a" {
		t.Fatalf("acquired %+v, want epoch 1 holder a", a)
	}
	// A live lease refuses other holders.
	if _, err := l.Acquire("b"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("acquire over live lease: err = %v, want ErrLeaseHeld", err)
	}
	// Renewal keeps it live across TTL windows without epoch change.
	clock.Advance(900 * time.Millisecond)
	if err := l.Renew("a", a.Epoch); err != nil {
		t.Fatalf("renew: %v", err)
	}
	clock.Advance(900 * time.Millisecond)
	if _, err := l.Acquire("b"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("acquire over renewed lease: err = %v, want ErrLeaseHeld", err)
	}

	// Heartbeat stops; past the TTL the standby may take over, and the
	// epoch strictly advances.
	clock.Advance(2 * time.Second)
	b, err := l.Acquire("b")
	if err != nil {
		t.Fatalf("takeover acquire: %v", err)
	}
	if b.Epoch != a.Epoch+1 {
		t.Fatalf("takeover epoch %d, want %d", b.Epoch, a.Epoch+1)
	}
	// The old holder's renewal now fails: it lost the lease.
	if err := l.Renew("a", a.Epoch); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale renew: err = %v, want ErrLeaseLost", err)
	}
}

// TestLeaseAcquireAtomicAcrossHandles: competing holders go through the
// cross-process flock, so a read-check-write can never be torn by a
// concurrent one — the lost-update shape behind split-brain (a paused
// writer resuming mid-cycle and clobbering an advanced epoch with its
// stale read). Distinct Lease handles model distinct processes: each
// holds its own descriptor, so the in-process mutex provides no
// exclusion between them and only the flock serializes. Every
// successful re-acquisition advances the epoch by exactly one; with any
// lost update the final epoch falls short of the success count.
func TestLeaseAcquireAtomicAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	const goroutines, rounds = 8, 50
	var wg sync.WaitGroup
	var acquired atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := OpenLease(dir, time.Minute) // own handle = own descriptor
			for i := 0; i < rounds; i++ {
				// Same holder everywhere: re-acquisition is always legal
				// and always bumps the epoch, keeping every interleaving a
				// success so the count↔epoch invariant stays exact.
				if _, err := l.Acquire("shared-holder"); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				acquired.Add(1)
			}
		}()
	}
	wg.Wait()
	st, err := OpenLease(dir, time.Minute).Read()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != acquired.Load() {
		t.Fatalf("final epoch %d != %d successful acquisitions: read-check-write was torn (lost update)",
			st.Epoch, acquired.Load())
	}
}

// TestCaptureSQLCountsNonFencedDrops: an append failure that is NOT a
// fencing refusal means a live primary's change was lost — it must be
// counted (CaptureStats + replica.capture_drops), unlike fenced
// refusals which are accounted separately by FencedWrites.
func TestCaptureSQLCountsNonFencedDrops(t *testing.T) {
	dir := t.TempDir()
	rec, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	obs := obsv.New()
	rec.SetObservability(obs)

	db := sqldb.Open("p")
	db.MustExec("CREATE TABLE t (id INTEGER)")
	stats := CaptureSQL(db, rec)

	if _, err := db.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if n := stats.Dropped(); n != 0 {
		t.Fatalf("healthy capture dropped %d", n)
	}

	// Kill the recorder out from under the capture: the next change
	// executes on the primary but cannot reach the WAL — a real loss.
	rec.Close()
	if _, err := db.Exec("INSERT INTO t VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if n := stats.Dropped(); n != 1 {
		t.Fatalf("Dropped = %d after failed append, want 1", n)
	}
	if n := obs.Metrics.Counter("replica.capture_drops").Value(); n != 1 {
		t.Fatalf("replica.capture_drops = %d, want 1", n)
	}
	CaptureSQL(db, nil)
}

// TestCaptureSQLFencedRefusalsNotCountedAsDrops: fenced appends are the
// protocol working as designed (the primary lost authority), not data
// loss, and must stay out of the drop counter.
func TestCaptureSQLFencedRefusalsNotCountedAsDrops(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	lease := OpenLease(dir, time.Second)
	lease.SetClock(clock.Now)
	rec, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if _, err := AttachPrimary(rec, lease, "a"); err != nil {
		t.Fatal(err)
	}

	db := sqldb.Open("p")
	db.MustExec("CREATE TABLE t (id INTEGER)")
	stats := CaptureSQL(db, rec)
	defer CaptureSQL(db, nil)

	if _, err := db.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second) // heartbeat lapses; guard self-fences
	if _, err := db.Exec("INSERT INTO t VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if n := stats.Dropped(); n != 0 {
		t.Fatalf("fenced refusal counted as drop: Dropped = %d, want 0", n)
	}
	if rec.FencedWrites() == 0 {
		t.Fatal("fenced refusal not counted by FencedWrites")
	}
}

// TestSQLReplicaFollowsAPIRollback is the end-to-end regression for the
// replication wedge: the workflow layers abort transactions through
// Session.Rollback (not a ROLLBACK statement); the rollback must ride
// the WAL so the replica closes its mirrored transaction and the origin
// session's next BEGIN replays cleanly instead of wedging CatchUp.
func TestSQLReplicaFollowsAPIRollback(t *testing.T) {
	dir := t.TempDir()
	rec, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	primary := sqldb.Open("p")
	primary.MustExec("CREATE TABLE t (id INTEGER)")
	CaptureSQL(primary, rec)
	defer CaptureSQL(primary, nil)

	replica := sqldb.Open("r")
	replica.MustExec("CREATE TABLE t (id INTEGER)")
	rep := NewSQLReplica(replica, 0)
	sb := NewStandby(dir, OpenLease(dir, time.Minute))
	sb.OnSQLEffect(rep.ApplyEffect)

	s := primary.Session()
	s.Exec("BEGIN")
	s.Exec("INSERT INTO t VALUES (1)")
	s.Rollback() // fault path: API rollback, no ROLLBACK statement

	if _, err := sb.CatchUp(); err != nil {
		t.Fatalf("catch-up across API rollback: %v", err)
	}
	if n := rep.OpenTransactions(); n != 0 {
		t.Fatalf("replica holds %d open txns after captured rollback, want 0", n)
	}

	// The same origin session transacts again — the wedge scenario.
	s.Exec("BEGIN")
	s.Exec("INSERT INTO t VALUES (2)")
	s.Exec("COMMIT")
	if _, err := sb.CatchUp(); err != nil {
		t.Fatalf("catch-up after reuse of origin session: %v", err)
	}
	if err := rep.Complete(sb); err != nil {
		t.Fatalf("completeness: %v", err)
	}
	if pd, rd := primary.Dump(), replica.Dump(); pd != rd {
		t.Fatalf("replica diverged:\nprimary:\n%s\nreplica:\n%s", pd, rd)
	}
}

// TestStandbyReplayToFollow: the standby's incrementally folded state
// stays byte-identical to the primary recorder's own materialized
// state, across checkpoints and WAL rotation.
func TestStandbyReplayToFollow(t *testing.T) {
	dir := t.TempDir()
	rec, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rec.SetCheckpointEvery(7)
	rec.SetRotateAtCheckpoint(true)
	rec.SetRotateKeep(8)

	sb := NewStandby(dir, OpenLease(dir, time.Minute))

	for i := int64(1); i <= 30; i++ {
		id := rec.AllocateID()
		if err := rec.InstanceCreated(id, "P", "", map[string]string{"k": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
		if err := rec.ActivityComplete(id, "act", 1, journal.EffectInvoke, map[string]string{"r": "ok"}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := rec.InstanceComplete(id, ""); err != nil {
				t.Fatal(err)
			}
		}
		if i%10 == 0 {
			// Interleave polls with appends so the tailer crosses live
			// segments, rotations, and retained archives.
			if _, err := sb.CatchUp(); err != nil {
				t.Fatalf("catch-up at %d: %v", i, err)
			}
		}
	}
	if _, err := sb.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if rec.Rotations() == 0 {
		t.Fatal("test never rotated the WAL; tighten checkpointEvery")
	}
	if n := sb.SkippedSegments(); n != 0 {
		t.Fatalf("standby skipped %d segments with retention on", n)
	}

	want, _ := json.Marshal(rec.State())
	got, _ := json.Marshal(sb.State())
	if string(want) != string(got) {
		t.Fatalf("standby state diverged from primary:\nprimary: %s\nstandby: %s", want, got)
	}
	if len(sb.InFlight()) != len(rec.InFlight()) {
		t.Fatalf("in-flight mismatch: standby %d, primary %d", len(sb.InFlight()), len(rec.InFlight()))
	}
}

// TestPausedPrimaryCannotSplitBrain is the fencing regression test: a
// primary stalls (heartbeat stops), the standby takes over, and the
// resumed primary's next append fails with ErrFenced. Run under -race:
// the writer goroutine hammers appends concurrently with the clock
// advance and the takeover, and the test proves no acked record is
// lost and no post-takeover record is accepted from the old primary —
// the no-double-effect / no-split-brain property.
func TestPausedPrimaryCannotSplitBrain(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	lease := OpenLease(dir, time.Second)
	lease.SetClock(clock.Now)

	primary, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	st, err := AttachPrimary(primary, lease, "primary-a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Fatalf("primary epoch %d, want 1", st.Epoch)
	}

	// Writer goroutine: appends until fenced, recording acked IDs.
	var (
		ackedMu  sync.Mutex
		acked    []int64
		ackedN   atomic.Int64
		writeErr error
		done     = make(chan struct{})
	)
	go func() {
		defer close(done)
		for id := int64(1); ; id++ {
			err := primary.InstanceCreated(id, "P", "", nil)
			if err != nil {
				writeErr = err
				return
			}
			ackedMu.Lock()
			acked = append(acked, id)
			ackedMu.Unlock()
			ackedN.Add(1)
		}
	}()

	// Let a healthy burst through, then pause the primary's world: its
	// heartbeat stops (we simply advance the clock past the TTL).
	for ackedN.Load() < 25 {
		time.Sleep(time.Millisecond)
	}
	clock.Advance(5 * time.Second)

	// The primary self-fences on its own expired lease — before the
	// standby even exists. Every record it acked is on disk.
	<-done
	if !journal.IsFenced(writeErr) {
		t.Fatalf("paused primary's append: err = %v, want ErrFenced", writeErr)
	}
	if primary.FencedWrites() == 0 {
		t.Fatal("FencedWrites not counted")
	}

	// Standby takes over the expired lease.
	obs := obsv.New()
	sb := NewStandby(dir, lease)
	sb.SetObservability(obs)
	sb.SetClock(clock.Now)
	if _, err := sb.CatchUp(); err != nil {
		t.Fatal(err)
	}
	newRec, err := sb.Promote("standby-b")
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer newRec.Close()
	if got := newRec.Epoch(); got != 2 {
		t.Fatalf("promoted epoch %d, want 2", got)
	}
	if got := obs.Metrics.Counter("replica.takeovers").Value(); got != 1 {
		t.Fatalf("replica.takeovers = %d, want 1", got)
	}

	// Exactly-once across the takeover: every record the old primary
	// acked is in the new recorder's state — nothing acked was lost,
	// and nothing unacked appeared.
	state := newRec.State()
	ackedMu.Lock()
	ackedIDs := append([]int64(nil), acked...)
	ackedMu.Unlock()
	for _, id := range ackedIDs {
		if _, ok := state.Instances[id]; !ok {
			t.Fatalf("acked instance %d missing after takeover", id)
		}
	}
	if got, want := len(state.Instances), len(ackedIDs); got != want {
		t.Fatalf("takeover state holds %d instances, old primary acked %d", got, want)
	}

	// The resumed primary stays fenced forever: even if its stale
	// process tries again after the takeover, the epoch check refuses.
	if err := primary.InstanceCreated(999, "P", "", nil); !journal.IsFenced(err) {
		t.Fatalf("resumed primary append: err = %v, want ErrFenced", err)
	}
	// And its writes cannot reach the authoritative WAL even physically:
	// the promoted standby rotated, so the path names a new inode while
	// the old primary's descriptor holds the orphan.
	if err := newRec.InstanceCreated(1000, "P", "", nil); err != nil {
		t.Fatalf("new primary append: %v", err)
	}
	if n := len(newRec.State().Instances); n != len(ackedIDs)+1 {
		t.Fatalf("new primary state has %d instances, want %d", n, len(ackedIDs)+1)
	}

	// The new primary keeps writing across lease renewals.
	clock.Advance(900 * time.Millisecond)
	if err := lease.Renew("standby-b", 2); err != nil {
		t.Fatal(err)
	}
	if err := newRec.InstanceCreated(1001, "P", "", nil); err != nil {
		t.Fatalf("append after renew: %v", err)
	}
}

// TestPromoteRequiresExpiredLease: takeover is illegal while the
// primary's heartbeat is live.
func TestPromoteRequiresExpiredLease(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	lease := OpenLease(dir, time.Second)
	lease.SetClock(clock.Now)

	rec, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if _, err := AttachPrimary(rec, lease, "a"); err != nil {
		t.Fatal(err)
	}

	sb := NewStandby(dir, lease)
	if _, err := sb.Promote("b"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("promote over live lease: err = %v, want ErrLeaseHeld", err)
	}
	// The failed promotion must not have fenced the primary.
	if err := rec.InstanceCreated(1, "P", "", nil); err != nil {
		t.Fatalf("primary append after refused promotion: %v", err)
	}
}

// TestSQLReplicaEndToEnd: the primary database's change stream rides
// the WAL as SQL-effect records; a standby feeds them to a read
// replica bootstrapped mid-stream from a consistent dump; the replica
// converges to the primary byte-for-byte, refuses direct writes, and
// opens for writes only on promotion.
func TestSQLReplicaEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rec, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rec.SetCheckpointEvery(11)
	rec.SetRotateAtCheckpoint(true)
	rec.SetRotateKeep(8)

	primary := sqldb.Open("p")
	CaptureSQL(primary, rec)
	s := primary.Session()
	mustExec := func(sql string, params ...sqldb.Value) {
		t.Helper()
		if _, err := s.Exec(sql, params...); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)")
	mustExec("CREATE SEQUENCE ids START WITH 1")
	mustExec("INSERT INTO t VALUES (NEXTVAL('ids'), ?)", sqldb.Str("pre-bootstrap"))

	// Bootstrap the replica mid-stream: the dump already contains row 1,
	// and the paired floor makes the applier skip its change records.
	rep, err := BootstrapSQLReplica(primary, "r")
	if err != nil {
		t.Fatal(err)
	}

	sb := NewStandby(dir, OpenLease(dir, time.Minute))
	sb.OnSQLEffect(rep.ApplyEffect)

	for i := 0; i < 20; i++ {
		mustExec("INSERT INTO t VALUES (NEXTVAL('ids'), ?)", sqldb.Str(fmt.Sprintf("row%d", i)))
	}
	if _, err := s.ExecNamed("UPDATE t SET v = :v WHERE id = :id",
		map[string]sqldb.Value{"v": sqldb.Str("patched"), "id": sqldb.Int(3)}); err != nil {
		t.Fatal(err)
	}
	mustExec("DELETE FROM t WHERE id = ?", sqldb.Int(5))

	if _, err := sb.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if err := rep.Complete(sb); err != nil {
		t.Fatalf("stream completeness: %v", err)
	}
	if rep.Skipped() == 0 {
		t.Fatal("bootstrap floor never skipped a change; floor wiring broken")
	}
	if pd, rd := primary.Dump(), rep.DB().Dump(); pd != rd {
		t.Fatalf("replica diverged:\nprimary:\n%s\nreplica:\n%s", pd, rd)
	}

	// Reporting offload reads work; direct writes are refused.
	res, err := rep.DB().Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatalf("replica read: %v", err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 20 {
		t.Fatalf("replica row count %d, want 20", n)
	}
	if _, err := rep.DB().Exec("INSERT INTO t VALUES (999, 'rogue')"); !errors.Is(err, sqldb.ErrReadOnly) {
		t.Fatalf("replica direct write: err = %v, want ErrReadOnly", err)
	}

	// More primary traffic, another catch-up: the replica keeps
	// following (rotation included).
	for i := 0; i < 20; i++ {
		mustExec("INSERT INTO t VALUES (NEXTVAL('ids'), ?)", sqldb.Str(fmt.Sprintf("late%d", i)))
	}
	if _, err := sb.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if rec.Rotations() == 0 {
		t.Fatal("test never rotated the WAL")
	}
	if pd, rd := primary.Dump(), rep.DB().Dump(); pd != rd {
		t.Fatalf("replica diverged after rotation:\nprimary:\n%s\nreplica:\n%s", pd, rd)
	}
	if primary.ChangesMissed() != 0 {
		t.Fatalf("primary missed %d changes on text-carrying paths", primary.ChangesMissed())
	}

	// Promotion lifts read-only mode.
	if n := rep.Promote(); n != 0 {
		t.Fatalf("promote aborted %d open txns, want 0", n)
	}
	if _, err := rep.DB().Exec("INSERT INTO t VALUES (999, 'promoted')"); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
}

// TestSQLReplicaAbortsOrphanTxnOnPromote: a primary that dies inside an
// explicit transaction leaves the replica's mirror session open; the
// replica's promotion rolls it back before serving writes.
func TestSQLReplicaAbortsOrphanTxnOnPromote(t *testing.T) {
	dir := t.TempDir()
	rec, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	primary := sqldb.Open("p")
	primary.MustExec("CREATE TABLE t (id INTEGER)")
	CaptureSQL(primary, rec)
	s := primary.Session()
	s.Exec("INSERT INTO t VALUES (1)")
	s.Exec("BEGIN")
	s.Exec("INSERT INTO t VALUES (2)")
	// ... primary dies here: COMMIT never happens.

	replica := sqldb.Open("r")
	replica.MustExec("CREATE TABLE t (id INTEGER)")
	rep := NewSQLReplica(replica, 0)
	sb := NewStandby(dir, OpenLease(dir, time.Minute))
	sb.OnSQLEffect(rep.ApplyEffect)
	if _, err := sb.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if rep.OpenTransactions() != 1 {
		t.Fatalf("open txns = %d, want 1", rep.OpenTransactions())
	}
	if n := rep.Promote(); n != 1 {
		t.Fatalf("promote aborted %d txns, want 1", n)
	}
	res := replica.MustExec("SELECT COUNT(*) FROM t")
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Fatalf("replica has %d rows, want 1 (orphan txn rolled back)", n)
	}
}
