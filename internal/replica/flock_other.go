//go:build !unix

package replica

// lockExclusive is a no-op on platforms without flock: Lease falls back
// to in-process mutual exclusion only (l.mu), which still serializes a
// primary and standby hosted in one process — the arrangement every
// test and the wfbench harness use. Cross-process fencing on such
// platforms relies on the guard's epoch/expiry checks alone.
func lockExclusive(string) (unlock func(), err error) {
	return func() {}, nil
}
