// Package replica implements warm-standby replication over the journal
// WAL: a fencing lease (this file), a standby that tails the primary's
// journal and replays-to-follow (standby.go), and a sqldb read replica
// fed from the journal's SQL-effect stream (sqlreplica.go).
//
// The failover protocol is the classic lease-fenced one:
//
//   - The primary holds a file lease next to the WAL, stamped with a
//     monotonically increasing fencing epoch, and renews it as a
//     heartbeat. Every journal append runs an AppendGuard that checks
//     the lease; the guard runs under the recorder mutex, so once it
//     observes a newer epoch no further record leaves that recorder.
//   - A standby that observes the lease expired acquires it with
//     epoch+1 (the rename of the lease file is the takeover commit
//     point), drains the tail of the WAL, and opens its own recorder.
//   - A paused-then-resumed old primary cannot split-brain: its next
//     append re-checks the lease, sees the advanced epoch, and fails
//     with journal.ErrFenced — permanently, the refusal latches.
package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"wfsql/internal/journal"
)

// LeaseName is the lease file's name inside the journal directory.
const LeaseName = "lease.json"

// ErrLeaseHeld is returned by Acquire while another holder's lease is
// still live (not expired).
var ErrLeaseHeld = errors.New("replica: lease held by a live holder")

// ErrLeaseLost is returned by Renew when the lease no longer names the
// renewing holder at the expected epoch — a standby took over.
var ErrLeaseLost = errors.New("replica: lease lost (epoch advanced)")

// LeaseState is the durable content of the lease file.
type LeaseState struct {
	// Epoch is the fencing epoch: strictly increased by every
	// acquisition, never by renewal. A writer holding epoch E must stop
	// the moment it observes any epoch > E.
	Epoch int64 `json:"epoch"`
	// Holder identifies the current owner (free-form; typically a node
	// name).
	Holder string `json:"holder"`
	// RenewedUnixNano is the holder's last heartbeat, on the clock of
	// whoever wrote it.
	RenewedUnixNano int64 `json:"renewed_unix_nano"`
}

// Renewed returns the last heartbeat as a time.
func (s LeaseState) Renewed() time.Time { return time.Unix(0, s.RenewedUnixNano) }

// Lease is a file-based fencing lease. The file lives next to the WAL
// so primary and standby coordinate through the same directory they
// already share for journal shipping. Updates are atomic
// (write-temp-fsync-rename), so readers never observe a torn lease; the
// rename publishing an acquisition is the takeover commit point.
//
// Every read-check-write (Acquire, Renew) additionally runs under an
// exclusive flock on a sidecar lock file, serializing competing holders
// ACROSS processes and handles: without it, a primary paused between
// Renew's read and write could resume after a standby's Acquire and
// overwrite the advanced epoch with its own stale one — both guards
// would then pass, split-braining until the physical fence rotation.
// The flock is held only for the microseconds of the read-modify-write,
// and the kernel drops it if the holder dies.
//
// A Lease value is safe for concurrent use (heartbeat goroutine +
// append guard).
type Lease struct {
	path string
	ttl  time.Duration

	mu  sync.Mutex
	now func() time.Time
	// Guard cache: re-reading the lease file on every journal append
	// would put a file read on the hot path, so the guard stats the
	// file and re-reads only when it changed.
	cachedState LeaseState
	cachedStat  os.FileInfo
}

// DefaultTTL is the lease liveness window: a lease whose heartbeat is
// older than this is expired and may be taken over.
const DefaultTTL = 2 * time.Second

// OpenLease returns a handle on the lease file inside dir (the journal
// directory). ttl <= 0 selects DefaultTTL. The file itself is created
// by the first Acquire.
func OpenLease(dir string, ttl time.Duration) *Lease {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Lease{path: filepath.Join(dir, LeaseName), ttl: ttl, now: time.Now}
}

// SetClock injects the time source used for expiry decisions and
// heartbeat stamps (tests advance a fake clock instead of sleeping
// through real TTLs).
func (l *Lease) SetClock(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// TTL returns the liveness window.
func (l *Lease) TTL() time.Duration { return l.ttl }

// Path returns the lease file path.
func (l *Lease) Path() string { return l.path }

// Read returns the current durable lease state. A missing file reads as
// the zero state (epoch 0, no holder): never held.
func (l *Lease) Read() (LeaseState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readLocked()
}

func (l *Lease) readLocked() (LeaseState, error) {
	buf, err := os.ReadFile(l.path)
	if os.IsNotExist(err) {
		return LeaseState{}, nil
	}
	if err != nil {
		return LeaseState{}, fmt.Errorf("replica: read lease: %w", err)
	}
	var st LeaseState
	if err := json.Unmarshal(buf, &st); err != nil {
		return LeaseState{}, fmt.Errorf("replica: decode lease: %w", err)
	}
	return st, nil
}

// writeLocked atomically publishes st: temp file, fsync, rename. The
// rename is the commit point — a crash before it leaves the previous
// lease intact, a reader after it sees the new state whole.
func (l *Lease) writeLocked(st LeaseState) error {
	buf, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("replica: encode lease: %w", err)
	}
	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("replica: write lease: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("replica: write lease: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("replica: sync lease: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("replica: close lease: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("replica: publish lease: %w", err)
	}
	return nil
}

// expiredLocked reports whether st's heartbeat is stale. The zero state
// (never held) is expired by definition.
func (l *Lease) expiredLocked(st LeaseState) bool {
	if st.Holder == "" {
		return true
	}
	return l.now().Sub(st.Renewed()) > l.ttl
}

// Acquire takes the lease for holder, advancing the fencing epoch. It
// succeeds when the lease was never held, has expired, or is already
// held by this same holder (re-acquisition also advances the epoch —
// useful for a primary restarting in place). While another holder's
// lease is live it returns ErrLeaseHeld with the observed state, so a
// standby can compute how long to wait.
func (l *Lease) Acquire(holder string) (LeaseState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	unlock, err := lockExclusive(l.lockPath())
	if err != nil {
		return LeaseState{}, err
	}
	defer unlock()
	st, err := l.readLocked()
	if err != nil {
		return st, err
	}
	if st.Holder != holder && !l.expiredLocked(st) {
		return st, fmt.Errorf("%w: %s at epoch %d", ErrLeaseHeld, st.Holder, st.Epoch)
	}
	next := LeaseState{Epoch: st.Epoch + 1, Holder: holder, RenewedUnixNano: l.now().UnixNano()}
	if err := l.writeLocked(next); err != nil {
		return st, err
	}
	return next, nil
}

// Renew heart-beats the lease: it refreshes the timestamp without
// changing the epoch, but only while the lease still names holder at
// exactly epoch. Anything else means a takeover happened and the caller
// must treat itself as fenced. The check-then-write runs under the
// cross-process flock, so a renewal can never interleave with (and
// overwrite) a competing acquisition — a pause anywhere inside Renew
// resolves to either "renewed before the takeover" (standby still saw
// an expired lease only after this heartbeat lapsed again) or
// "ErrLeaseLost" (the epoch had already advanced), never to a stale
// epoch clobbering a newer one.
func (l *Lease) Renew(holder string, epoch int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	unlock, err := lockExclusive(l.lockPath())
	if err != nil {
		return err
	}
	defer unlock()
	st, err := l.readLocked()
	if err != nil {
		return err
	}
	if st.Holder != holder || st.Epoch != epoch {
		return fmt.Errorf("%w: lease at epoch %d held by %q, renewer %q at epoch %d",
			ErrLeaseLost, st.Epoch, st.Holder, holder, epoch)
	}
	return l.writeLocked(LeaseState{Epoch: epoch, Holder: holder, RenewedUnixNano: l.now().UnixNano()})
}

// lockPath is the sidecar flock file serializing read-check-write
// cycles across processes (the lease file itself is replaced by rename,
// so it cannot carry the flock).
func (l *Lease) lockPath() string { return l.path + ".lock" }

// Guard returns a journal.AppendGuard enforcing the fence for a writer
// holding epoch: every append re-checks the lease and fails with (a
// wrap of) journal.ErrFenced once the writer is no longer the live
// holder. The check is a stat — the lease file is re-read only when it
// changed — so the hot path costs one stat syscall, not a read.
//
// Two conditions fence, and together they exclude split-brain:
//
//   - The lease epoch advanced past the writer's: a standby took over.
//     The guard runs under the recorder mutex, so once it observes the
//     new epoch no further record leaves this recorder.
//   - The writer's own lease is expired: the heartbeat stopped (the
//     process was paused, or its heartbeat goroutine died) long enough
//     ago that a standby is entitled to take over. Self-fencing here is
//     what closes the pause window — a primary resumed from a long stop
//     refuses its own appends even in the instant before the standby's
//     takeover is visible, because a standby only acquires an expired
//     lease and the primary never writes under one. The promoted
//     standby's segment rotation (Standby.Promote) physically fences
//     the residual clock-skew window on top.
func (l *Lease) Guard(epoch int64) journal.AppendGuard {
	return func(*journal.Record) error {
		st, err := l.observe()
		if err != nil {
			// Fail closed: a writer that cannot see the lease must not
			// assume it still holds it.
			return fmt.Errorf("%w: %v", journal.ErrFenced, err)
		}
		if st.Epoch > epoch {
			return fmt.Errorf("%w: writer epoch %d, lease epoch %d held by %q",
				journal.ErrFenced, epoch, st.Epoch, st.Holder)
		}
		l.mu.Lock()
		stale := l.expiredLocked(st)
		l.mu.Unlock()
		if stale {
			return fmt.Errorf("%w: lease epoch %d expired (heartbeat stale; renew before writing)",
				journal.ErrFenced, epoch)
		}
		return nil
	}
}

// observe returns the lease state, via the stat cache.
func (l *Lease) observe() (LeaseState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fi, err := os.Stat(l.path)
	if os.IsNotExist(err) {
		return LeaseState{}, nil
	}
	if err != nil {
		return LeaseState{}, err
	}
	if l.cachedStat != nil && os.SameFile(l.cachedStat, fi) &&
		l.cachedStat.ModTime().Equal(fi.ModTime()) && l.cachedStat.Size() == fi.Size() {
		return l.cachedState, nil
	}
	st, err := l.readLocked()
	if err != nil {
		return LeaseState{}, err
	}
	l.cachedStat, l.cachedState = fi, st
	return st, nil
}

// AttachPrimary makes rec a lease-fenced primary writer: it acquires
// the lease for holder (advancing the fencing epoch), stamps the epoch
// on every subsequent record, and installs the guard so appends are
// refused the moment the writer stops being the live holder. The caller
// owns keeping the lease renewed (StartHeartbeat or manual Renew).
func AttachPrimary(rec *journal.Recorder, l *Lease, holder string) (LeaseState, error) {
	st, err := l.Acquire(holder)
	if err != nil {
		return st, err
	}
	rec.SetEpoch(st.Epoch)
	rec.SetAppendGuard(l.Guard(st.Epoch))
	return st, nil
}

// StartHeartbeat renews the lease every interval on a background
// goroutine until the returned stop function is called or a renewal
// fails (takeover observed, or I/O error). onLost, if non-nil, is
// invoked once with the terminal error. Deterministic tests drive
// Renew directly instead.
func (l *Lease) StartHeartbeat(holder string, epoch int64, interval time.Duration, onLost func(error)) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := l.Renew(holder, epoch); err != nil {
					if onLost != nil {
						onLost(err)
					}
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
