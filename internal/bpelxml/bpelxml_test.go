package bpelxml

import (
	"strings"
	"testing"
	"time"

	"wfsql/internal/bis"
	"wfsql/internal/engine"
	"wfsql/internal/orasoa"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
)

func ordersDB() *sqldb.DB {
	db := sqldb.Open("orderdb")
	db.MustExec(`CREATE TABLE Orders (
		OrderID INTEGER PRIMARY KEY, ItemID VARCHAR NOT NULL,
		Quantity INTEGER NOT NULL, Approved BOOLEAN NOT NULL)`)
	db.MustExec(`INSERT INTO Orders VALUES
		(1, 'bolt', 10, TRUE), (2, 'bolt', 5, TRUE), (3, 'nut', 7, FALSE),
		(4, 'nut', 3, TRUE), (5, 'screw', 2, TRUE), (6, 'screw', 9, FALSE)`)
	db.MustExec(`CREATE TABLE OrderConfirmations (
		ItemID VARCHAR, Quantity INTEGER, Confirmation VARCHAR)`)
	return db
}

// declarativeFigure4 builds a fully declarative (snippet-free) variant of
// the Figure 4 process: the cursor is realized with assign activities and
// positional XPath predicates, so the whole model round-trips through
// BPEL XML.
func declarativeFigure4() *bis.ProcessBuilder {
	body := engine.NewSequence("main",
		bis.NewSQL("SQL1", "DS",
			"SELECT ItemID, SUM(Quantity) AS Quantity FROM #SR_Orders# WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID").
			Into("SR_ItemList"),
		bis.NewRetrieveSet("retrieveSet", "DS", "SR_ItemList", "SV_ItemList"),
		engine.NewWhile("loop", engine.Cond("$pos <= count($SV_ItemList/Row)"),
			engine.NewSequence("loopBody",
				engine.NewAssign("extract").
					Copy("$SV_ItemList/Row[position() = $pos]/ItemID", "CurrentItemID").
					Copy("$SV_ItemList/Row[position() = $pos]/Quantity", "CurrentQuantity"),
				engine.NewInvoke("invoke", "OrderFromSupplier").
					In("ItemID", "$CurrentItemID").
					In("Quantity", "$CurrentQuantity").
					Out("OrderConfirmation", "OrderConfirmation"),
				bis.NewSQL("SQL2", "DS",
					"INSERT INTO #SR_OrderConfirmations# (ItemID, Quantity, Confirmation) VALUES (#CurrentItemID#, #CurrentQuantity#, #OrderConfirmation#)"),
				engine.NewAssign("advance").Copy("$pos + 1", "pos"),
			)),
	)
	return bis.NewProcess("Fig4Declarative").
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		InputSetReference("SR_OrderConfirmations", "OrderConfirmations").
		ResultSetReference("SR_ItemList").
		SetRefLifecycle("SR_ItemList", "", "DROP TABLE IF EXISTS {TABLE}").
		Preparation("DS", "CREATE TABLE IF NOT EXISTS RunLog (msg VARCHAR)").
		Cleanup("DS", "INSERT INTO RunLog VALUES ('done')").
		XMLVariable("SV_ItemList", "").
		Variable("CurrentItemID", "").
		Variable("CurrentQuantity", "").
		Variable("OrderConfirmation", "").
		Variable("pos", "1").
		Body(body)
}

// TestBISDocumentRoundTrip serializes the WID artifact, reloads it, runs
// the reloaded process, and checks the external effects — the full
// design-tool → BPEL → engine pipeline of Figure 3.
func TestBISDocumentRoundTrip(t *testing.T) {
	doc, err := MarshalBISProcess(declarativeFigure4())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"wid:artifacts", "wid:dataSourceVariable", "wid:setReference",
		`kind="result"`, `kind="input"`, "wid:sql", "wid:retrieveSet",
		"<while", "<assign", "<invoke", "wid:preparation", "wid:cleanup",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q", want)
		}
	}

	b2, err := UnmarshalBISProcess(doc, nil)
	if err != nil {
		t.Fatal(err)
	}

	db := ordersDB()
	bus := wsbus.New()
	svc := wsbus.NewOrderFromSupplier(0)
	bus.Register("OrderFromSupplier", svc.Handle)
	e := engine.New(bus)
	e.RegisterDataSource("orderdb", db)

	d, err := e.Deploy(b2.Build())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	r := db.MustExec("SELECT ItemID, Quantity FROM OrderConfirmations ORDER BY ItemID")
	if len(r.Rows) != 3 || r.Rows[0][1].I != 15 {
		t.Fatalf("reloaded process effects: %v", r.Rows)
	}
	// Lifecycle artifacts survived the round trip.
	if db.MustExec("SELECT COUNT(*) FROM RunLog").Rows[0][0].I != 1 {
		t.Fatal("cleanup statement lost in round trip")
	}

	// Marshalling is stable.
	doc2, err := MarshalBISProcess(b2)
	if err != nil {
		t.Fatal(err)
	}
	if doc != doc2 {
		t.Fatal("marshalling not stable across a round trip")
	}
}

func TestPlainProcessRoundTrip(t *testing.T) {
	p := &engine.Process{
		Name: "plain",
		Mode: engine.ShortRunning,
		Variables: []engine.VarDecl{
			{Name: "x", Kind: engine.ScalarVar, Init: "5"},
			{Name: "doc", Kind: engine.XMLVar, InitXML: "<d><v>1</v></d>"},
			{Name: "out", Kind: engine.ScalarVar},
		},
		Body: engine.NewSequence("main",
			&engine.Empty{ActivityName: "e"},
			&engine.Wait{ActivityName: "w", Duration: time.Millisecond},
			engine.NewIf("branch", engine.Cond("$x > 3"),
				engine.NewAssign("then").Copy("'big'", "out")).
				SetElse(engine.NewAssign("else").Copy("'small'", "out")),
			&engine.Scope{
				ActivityName: "sc",
				Body:         &engine.Throw{ActivityName: "boom", FaultName: "f"},
				FaultHandler: engine.NewAssign("handle").CopyTo("'9'", "doc", "v"),
				Finally:      &engine.Empty{ActivityName: "fin"},
			},
		),
	}
	doc, err := MarshalProcess(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := UnmarshalProcess(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Mode != engine.ShortRunning || len(p2.Variables) != 3 {
		t.Fatalf("process attrs: mode=%v vars=%d", p2.Mode, len(p2.Variables))
	}
	e := engine.New(nil)
	d, err := e.Deploy(p2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := d.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if in.MustVariable("out").String() != "big" {
		t.Fatalf("out: %q", in.MustVariable("out").String())
	}
	if in.MustVariable("doc").Node().ChildText("v") != "9" {
		t.Fatal("fault handler assign lost")
	}
}

func TestSnippetRoundTripNeedsResolver(t *testing.T) {
	p := &engine.Process{Name: "s", Body: engine.NewSnippet("mySnippet", func(ctx *engine.Ctx) error { return nil })}
	doc, err := MarshalProcess(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, "wid:javaSnippet") {
		t.Fatalf("snippet element missing: %s", doc)
	}
	if _, err := UnmarshalProcess(doc, nil); err == nil {
		t.Fatal("expected missing-resolver error")
	}
	ran := false
	p2, err := UnmarshalProcess(doc, &Resolver{Snippets: map[string]func(ctx *engine.Ctx) error{
		"mySnippet": func(ctx *engine.Ctx) error { ran = true; return nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := engine.New(nil).Deploy(p2)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("resolved snippet did not run")
	}
}

func TestBpelxAssignRoundTrip(t *testing.T) {
	p := &engine.Process{
		Name: "ora",
		Variables: []engine.VarDecl{
			{Name: "rs", Kind: engine.XMLVar, InitXML: "<RowSet><Row><Q>1</Q></Row></RowSet>"},
			{Name: "newRow", Kind: engine.XMLVar, InitXML: "<Row><Q>2</Q></Row>"},
		},
		Body: engine.NewSequence("main",
			orasoa.NewBpelxAssign("ops").
				Copy("'5'", "rs", "Row[1]/Q").
				InsertAfter("$newRow", "rs", "Row[1]").
				Append("$newRow", "rs", ".").
				Remove("rs", "Row[3]"),
		),
	}
	doc, err := MarshalProcess(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bpelx:insertAfter", "bpelx:append", "bpelx:remove"} {
		if !strings.Contains(doc, want) {
			t.Errorf("missing %q in:\n%s", want, doc)
		}
	}
	p2, err := UnmarshalProcess(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := engine.New(nil).Deploy(p2)
	in, err := d.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := in.MustVariable("rs").Node().ChildElements()
	if len(rows) != 2 {
		t.Fatalf("rows after round-tripped bpelx ops: %d", len(rows))
	}
	if rows[0].ChildText("Q") != "5" || rows[1].ChildText("Q") != "2" {
		t.Fatalf("row content: %s", in.MustVariable("rs").Node())
	}
}

func TestAtomicSequenceRoundTrip(t *testing.T) {
	b := bis.NewProcess("atomic").
		DataSourceVariable("DS", "orderdb").
		InputSetReference("SR_Orders", "Orders").
		Body(bis.NewAtomicSequence("seq",
			bis.NewSQL("u1", "DS", "UPDATE #SR_Orders# SET Quantity = Quantity + 1"),
			bis.NewSQL("bad", "DS", "INSERT INTO Missing VALUES (1)"),
		))
	doc, err := MarshalBISProcess(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, "wid:atomicSQLSequence") {
		t.Fatalf("atomic sequence missing:\n%s", doc)
	}
	b2, err := UnmarshalBISProcess(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := ordersDB()
	e := engine.New(nil)
	e.RegisterDataSource("orderdb", db)
	d, _ := e.Deploy(b2.Build())
	if _, err := d.Run(nil); err == nil {
		t.Fatal("expected fault")
	}
	// Atomicity survived serialization.
	if got := db.MustExec("SELECT SUM(Quantity) FROM Orders").Rows[0][0].I; got != 36 {
		t.Fatalf("atomic rollback after round trip: sum=%d", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		"nope",
		"<notprocess/>",
		"<process name='p'/>",
		"<process name='p'><empty/><empty/></process>",
		"<process name='p'><while name='w'><empty/></while></process>",
		"<process name='p'><wait name='w' for='xyz'/></process>",
		"<process name='p'><unknown/></process>",
		"<process name='p'><extensionActivity/></process>",
		"<process name='p'><extensionActivity><wid:unknown/></extensionActivity></process>",
		"<process name='p'><scope name='s'></scope></process>",
	}
	for _, doc := range bad {
		if _, err := UnmarshalProcess(doc, nil); err == nil {
			t.Errorf("UnmarshalProcess(%q): expected error", doc)
		}
	}
}

func TestMarshalRejectsGoConditions(t *testing.T) {
	p := &engine.Process{Name: "p", Body: engine.NewWhile("w",
		engine.FuncCondition(func(ctx *engine.Ctx) (bool, error) { return false, nil }),
		&engine.Empty{ActivityName: "e"})}
	if _, err := MarshalProcess(p); err == nil {
		t.Fatal("Go-coded condition must not marshal")
	}
}

func TestReceiveReplyRoundTrip(t *testing.T) {
	p := &engine.Process{
		Name: "rr",
		Variables: []engine.VarDecl{
			{Name: "item", Kind: engine.ScalarVar},
			{Name: "note", Kind: engine.ScalarVar, Init: "none"},
		},
		Body: engine.NewSequence("main",
			engine.NewReceive("in").Part("ItemID", "item").OptionalPart("Note", "note"),
			engine.NewReply("out").Part("Echo", "$item"),
		),
	}
	doc, err := MarshalProcess(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<receive", "<reply", `optional="true"`} {
		if !strings.Contains(doc, want) {
			t.Fatalf("missing %q:\n%s", want, doc)
		}
	}
	p2, err := UnmarshalProcess(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := engine.New(nil).Deploy(p2)
	in, err := d.Run(map[string]string{"ItemID": "bolt"})
	if err != nil {
		t.Fatal(err)
	}
	if in.Output()["Echo"] != "bolt" {
		t.Fatalf("round-tripped reply: %v", in.Output())
	}
}
