// Package bpelxml serializes process models to BPEL XML documents and
// loads them back — the artifact the paper's design tools exchange: "As a
// result of this design step, we get a description of the process in
// BPEL. From this description the tool generates code that is deployed
// and executed on the WebSphere Process Server."
//
// Standard BPEL activities map to their standard elements (sequence,
// flow, while, if, assign, invoke, empty, wait, throw, scope,
// compensate). Product-specific activities are emitted as BPEL
// extensionActivity elements: the IBM information service activities
// under the wid: prefix (SQL, retrieve set, atomic SQL sequence) and
// Oracle's bpelx assign operations under bpelx:. Code snippets travel by
// name and are resolved from a Resolver at load time (the same
// code-separation style the WF XOML loader uses).
package bpelxml

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wfsql/internal/bis"
	"wfsql/internal/engine"
	"wfsql/internal/orasoa"
	"wfsql/internal/xdm"
	"wfsql/internal/xpath"
)

// Resolver supplies the code artifacts a BPEL document references by
// name: snippet handlers and (rarely) Go-coded conditions.
type Resolver struct {
	Snippets   map[string]func(ctx *engine.Ctx) error
	Conditions map[string]func(ctx *engine.Ctx) (bool, error)
}

// MarshalProcess serializes a plain engine process (variables + body).
func MarshalProcess(p *engine.Process) (string, error) {
	root := xdm.NewElement("process")
	root.SetAttr("name", p.Name)
	root.SetAttr("xmlns", "http://docs.oasis-open.org/wsbpel/2.0/process/executable")
	if p.Mode == engine.ShortRunning {
		root.SetAttr("wid:executionMode", "microflow")
	}
	vars := root.Element("variables")
	for _, vd := range p.Variables {
		v := vars.Element("variable")
		v.SetAttr("name", vd.Name)
		if vd.Kind == engine.XMLVar {
			v.SetAttr("type", "xml")
			if vd.InitXML != "" {
				init, err := xdm.Parse(vd.InitXML)
				if err != nil {
					return "", fmt.Errorf("bpelxml: variable %s init: %w", vd.Name, err)
				}
				v.Element("from").AppendChild(init)
			}
		} else {
			v.SetAttr("type", "string")
			if vd.Init != "" {
				v.SetAttr("init", vd.Init)
			}
		}
	}
	body, err := marshalActivity(p.Body)
	if err != nil {
		return "", err
	}
	root.AppendChild(body)
	return root.Indent(), nil
}

// UnmarshalProcess parses a document produced by MarshalProcess.
func UnmarshalProcess(doc string, r *Resolver) (*engine.Process, error) {
	root, err := xdm.Parse(doc)
	if err != nil {
		return nil, fmt.Errorf("bpelxml: %w", err)
	}
	if localName(root.Name) != "process" {
		return nil, fmt.Errorf("bpelxml: root element %s, want process", root.Name)
	}
	name, _ := root.Attr("name")
	p := &engine.Process{Name: name}
	if m, ok := root.Attr("wid:executionMode"); ok && m == "microflow" {
		p.Mode = engine.ShortRunning
	}
	var bodyEl *xdm.Node
	for _, el := range root.ChildElements() {
		if localName(el.Name) == "variables" {
			for _, v := range el.ChildElements() {
				vd, err := unmarshalVariable(v)
				if err != nil {
					return nil, err
				}
				p.Variables = append(p.Variables, vd)
			}
			continue
		}
		if bodyEl != nil {
			return nil, fmt.Errorf("bpelxml: process has multiple body activities")
		}
		bodyEl = el
	}
	if bodyEl == nil {
		return nil, fmt.Errorf("bpelxml: process has no body")
	}
	body, err := unmarshalActivity(bodyEl, r)
	if err != nil {
		return nil, err
	}
	p.Body = body
	return p, nil
}

func unmarshalVariable(v *xdm.Node) (engine.VarDecl, error) {
	name, _ := v.Attr("name")
	typ, _ := v.Attr("type")
	if typ == "xml" {
		vd := engine.VarDecl{Name: name, Kind: engine.XMLVar}
		if from := v.FirstChildElement("from"); from != nil {
			if init := from.FirstChildElement(""); init != nil {
				vd.InitXML = init.String()
			}
		}
		return vd, nil
	}
	init, _ := v.Attr("init")
	return engine.VarDecl{Name: name, Kind: engine.ScalarVar, Init: init}, nil
}

// --- Activity marshalling ---

func marshalActivity(a engine.Activity) (*xdm.Node, error) {
	switch t := a.(type) {
	case *engine.Sequence:
		return marshalChildren("sequence", t.ActivityName, t.Children)
	case *engine.Flow:
		return marshalChildren("flow", t.ActivityName, t.Children)
	case *engine.Empty:
		el := xdm.NewElement("empty")
		el.SetAttr("name", t.ActivityName)
		return el, nil
	case *engine.Wait:
		el := xdm.NewElement("wait")
		el.SetAttr("name", t.ActivityName)
		el.SetAttr("for", t.Duration.String())
		return el, nil
	case *engine.Throw:
		el := xdm.NewElement("throw")
		el.SetAttr("name", t.ActivityName)
		el.SetAttr("faultName", t.FaultName)
		return el, nil
	case *engine.Compensate:
		el := xdm.NewElement("compensate")
		el.SetAttr("name", t.ActivityName)
		return el, nil
	case *engine.While:
		el := xdm.NewElement("while")
		el.SetAttr("name", t.ActivityName)
		if err := marshalCondition(el, t.Condition); err != nil {
			return nil, fmt.Errorf("while %s: %w", t.ActivityName, err)
		}
		body, err := marshalActivity(t.Body)
		if err != nil {
			return nil, err
		}
		el.AppendChild(body)
		return el, nil
	case *engine.If:
		el := xdm.NewElement("if")
		el.SetAttr("name", t.ActivityName)
		for i, b := range t.Branches {
			wrap := el
			if i > 0 {
				wrap = el.Element("elseif")
			}
			if err := marshalCondition(wrap, b.Condition); err != nil {
				return nil, fmt.Errorf("if %s: %w", t.ActivityName, err)
			}
			body, err := marshalActivity(b.Body)
			if err != nil {
				return nil, err
			}
			wrap.AppendChild(body)
		}
		if t.Else != nil {
			we := el.Element("else")
			body, err := marshalActivity(t.Else)
			if err != nil {
				return nil, err
			}
			we.AppendChild(body)
		}
		return el, nil
	case *engine.Assign:
		el := xdm.NewElement("assign")
		el.SetAttr("name", t.ActivityName)
		for _, cp := range t.Copies {
			c := el.Element("copy")
			c.Element("from").SetText(cp.From.Source())
			to := c.Element("to")
			to.SetAttr("variable", cp.ToVar)
			if cp.ToPath != nil {
				to.SetAttr("query", cp.ToPath.Source())
			}
		}
		return el, nil
	case *engine.Invoke:
		el := xdm.NewElement("invoke")
		el.SetAttr("name", t.ActivityName)
		el.SetAttr("operation", t.Service)
		for _, part := range sortedKeys(t.Inputs) {
			pe := el.Element("toPart")
			pe.SetAttr("part", part)
			pe.SetAttr("expression", t.Inputs[part].Source())
		}
		for _, part := range sortedKeys(t.Outputs) {
			pe := el.Element("fromPart")
			pe.SetAttr("part", part)
			pe.SetAttr("toVariable", t.Outputs[part])
		}
		return el, nil
	case *engine.Receive:
		el := xdm.NewElement("receive")
		el.SetAttr("name", t.ActivityName)
		for _, part := range sortedKeys(t.Parts) {
			pe := el.Element("fromPart")
			pe.SetAttr("part", part)
			pe.SetAttr("toVariable", t.Parts[part])
			if t.Optional[part] {
				pe.SetAttr("optional", "true")
			}
		}
		return el, nil
	case *engine.Reply:
		el := xdm.NewElement("reply")
		el.SetAttr("name", t.ActivityName)
		for _, part := range sortedKeys(t.Parts) {
			pe := el.Element("toPart")
			pe.SetAttr("part", part)
			pe.SetAttr("expression", t.Parts[part].Source())
		}
		return el, nil
	case *engine.Scope:
		el := xdm.NewElement("scope")
		el.SetAttr("name", t.ActivityName)
		if t.FaultHandler != nil {
			h, err := marshalActivity(t.FaultHandler)
			if err != nil {
				return nil, err
			}
			el.Element("faultHandlers").Element("catchAll").AppendChild(h)
		}
		if t.Compensation != nil {
			h, err := marshalActivity(t.Compensation)
			if err != nil {
				return nil, err
			}
			el.Element("compensationHandler").AppendChild(h)
		}
		if t.Finally != nil {
			h, err := marshalActivity(t.Finally)
			if err != nil {
				return nil, err
			}
			el.Element("wid:finally").AppendChild(h)
		}
		body, err := marshalActivity(t.Body)
		if err != nil {
			return nil, err
		}
		el.AppendChild(body)
		return el, nil
	case *engine.Snippet:
		el := xdm.NewElement("extensionActivity")
		s := el.Element("wid:javaSnippet")
		s.SetAttr("name", t.ActivityName)
		return el, nil
	case *bis.SQLActivity:
		el := xdm.NewElement("extensionActivity")
		s := el.Element("wid:sql")
		s.SetAttr("name", t.ActivityName)
		s.SetAttr("dataSource", t.DataSource)
		if t.ResultRef != "" {
			s.SetAttr("resultSetReference", t.ResultRef)
		}
		s.SetText(t.SQL)
		return el, nil
	case *bis.RetrieveSetActivity:
		el := xdm.NewElement("extensionActivity")
		s := el.Element("wid:retrieveSet")
		s.SetAttr("name", t.ActivityName)
		s.SetAttr("dataSource", t.DataSource)
		s.SetAttr("setReference", t.SetRefName)
		s.SetAttr("setVariable", t.SetVariable)
		return el, nil
	case *bis.AtomicSQLSequence:
		el := xdm.NewElement("extensionActivity")
		s := el.Element("wid:atomicSQLSequence")
		s.SetAttr("name", t.ActivityName)
		for _, c := range t.Children {
			ce, err := marshalActivity(c)
			if err != nil {
				return nil, err
			}
			s.AppendChild(ce)
		}
		return el, nil
	case *orasoa.BpelxAssign:
		el := xdm.NewElement("assign")
		el.SetAttr("name", t.ActivityName)
		for _, op := range t.Ops {
			var oe *xdm.Node
			switch op.Kind {
			case orasoa.OpCopy:
				oe = el.Element("copy")
			case orasoa.OpInsertAfter:
				oe = el.Element("bpelx:insertAfter")
			case orasoa.OpAppend:
				oe = el.Element("bpelx:append")
			case orasoa.OpRemove:
				oe = el.Element("bpelx:remove")
			}
			if op.From != nil {
				oe.Element("from").SetText(op.From.Source())
			}
			to := oe.Element("to")
			to.SetAttr("variable", op.ToVar)
			if op.ToPath != nil {
				to.SetAttr("query", op.ToPath.Source())
			}
		}
		return el, nil
	}
	return nil, fmt.Errorf("bpelxml: activity %T cannot be serialized", a)
}

func marshalChildren(elem, name string, children []engine.Activity) (*xdm.Node, error) {
	el := xdm.NewElement(elem)
	el.SetAttr("name", name)
	for _, c := range children {
		ce, err := marshalActivity(c)
		if err != nil {
			return nil, err
		}
		el.AppendChild(ce)
	}
	return el, nil
}

func marshalCondition(parent *xdm.Node, c engine.Condition) error {
	xc, ok := c.(*engine.XPathCondition)
	if !ok {
		return fmt.Errorf("bpelxml: only XPath conditions can be serialized (got %T)", c)
	}
	parent.Element("condition").SetText(xc.Expr.Source())
	return nil
}

// --- Activity unmarshalling ---

func unmarshalActivity(el *xdm.Node, r *Resolver) (engine.Activity, error) {
	name, _ := el.Attr("name")
	switch localName(el.Name) {
	case "sequence":
		children, err := unmarshalChildren(el, r, nil)
		if err != nil {
			return nil, err
		}
		return &engine.Sequence{ActivityName: name, Children: children}, nil
	case "flow":
		children, err := unmarshalChildren(el, r, nil)
		if err != nil {
			return nil, err
		}
		return &engine.Flow{ActivityName: name, Children: children}, nil
	case "empty":
		return &engine.Empty{ActivityName: name}, nil
	case "wait":
		durAttr, _ := el.Attr("for")
		d, err := time.ParseDuration(durAttr)
		if err != nil {
			return nil, fmt.Errorf("bpelxml: wait %s: %w", name, err)
		}
		return &engine.Wait{ActivityName: name, Duration: d}, nil
	case "throw":
		fn, _ := el.Attr("faultName")
		return &engine.Throw{ActivityName: name, FaultName: fn}, nil
	case "compensate":
		return &engine.Compensate{ActivityName: name}, nil
	case "while":
		cond, err := unmarshalCondition(el)
		if err != nil {
			return nil, fmt.Errorf("bpelxml: while %s: %w", name, err)
		}
		body, err := singleBody(el, r, "condition")
		if err != nil {
			return nil, fmt.Errorf("bpelxml: while %s: %w", name, err)
		}
		return &engine.While{ActivityName: name, Condition: cond, Body: body}, nil
	case "if":
		act := &engine.If{ActivityName: name}
		cond, err := unmarshalCondition(el)
		if err != nil {
			return nil, fmt.Errorf("bpelxml: if %s: %w", name, err)
		}
		body, err := singleBody(el, r, "condition", "elseif", "else")
		if err != nil {
			return nil, fmt.Errorf("bpelxml: if %s: %w", name, err)
		}
		act.Branches = append(act.Branches, engine.IfBranch{Condition: cond, Body: body})
		for _, c := range el.ChildElements() {
			switch localName(c.Name) {
			case "elseif":
				cond, err := unmarshalCondition(c)
				if err != nil {
					return nil, err
				}
				b, err := singleBody(c, r, "condition")
				if err != nil {
					return nil, err
				}
				act.Branches = append(act.Branches, engine.IfBranch{Condition: cond, Body: b})
			case "else":
				b, err := singleBody(c, r)
				if err != nil {
					return nil, err
				}
				act.Else = b
			}
		}
		return act, nil
	case "assign":
		// Distinguish a plain assign from a bpelx-extended one.
		hasBpelx := false
		for _, c := range el.ChildElements() {
			if strings.HasPrefix(c.Name, "bpelx:") {
				hasBpelx = true
			}
		}
		if hasBpelx {
			return unmarshalBpelxAssign(el, name)
		}
		act := engine.NewAssign(name)
		for _, c := range el.ChildElements() {
			if localName(c.Name) != "copy" {
				return nil, fmt.Errorf("bpelxml: assign %s: unexpected %s", name, c.Name)
			}
			from := strings.TrimSpace(c.ChildText("from"))
			to := c.FirstChildElement("to")
			if from == "" || to == nil {
				return nil, fmt.Errorf("bpelxml: assign %s: copy needs from and to", name)
			}
			v, _ := to.Attr("variable")
			if q, ok := to.Attr("query"); ok {
				act.CopyTo(from, v, q)
			} else {
				act.Copy(from, v)
			}
		}
		return act, nil
	case "invoke":
		op, _ := el.Attr("operation")
		act := engine.NewInvoke(name, op)
		for _, c := range el.ChildElements() {
			part, _ := c.Attr("part")
			switch localName(c.Name) {
			case "toPart":
				expr, _ := c.Attr("expression")
				act.In(part, expr)
			case "fromPart":
				v, _ := c.Attr("toVariable")
				act.Out(part, v)
			}
		}
		return act, nil
	case "receive":
		act := engine.NewReceive(name)
		for _, c := range el.ChildElements() {
			part, _ := c.Attr("part")
			v, _ := c.Attr("toVariable")
			if opt, _ := c.Attr("optional"); opt == "true" {
				act.OptionalPart(part, v)
			} else {
				act.Part(part, v)
			}
		}
		return act, nil
	case "reply":
		act := engine.NewReply(name)
		for _, c := range el.ChildElements() {
			part, _ := c.Attr("part")
			expr, _ := c.Attr("expression")
			act.Part(part, expr)
		}
		return act, nil
	case "scope":
		sc := &engine.Scope{ActivityName: name}
		for _, c := range el.ChildElements() {
			switch localName(c.Name) {
			case "faultHandlers":
				catch := c.FirstChildElement("catchAll")
				if catch == nil {
					return nil, fmt.Errorf("bpelxml: scope %s: faultHandlers without catchAll", name)
				}
				h, err := singleBody(catch, r)
				if err != nil {
					return nil, err
				}
				sc.FaultHandler = h
			case "compensationHandler":
				h, err := singleBody(c, r)
				if err != nil {
					return nil, err
				}
				sc.Compensation = h
			case "finally":
				h, err := singleBody(c, r)
				if err != nil {
					return nil, err
				}
				sc.Finally = h
			default:
				if sc.Body != nil {
					return nil, fmt.Errorf("bpelxml: scope %s has multiple bodies", name)
				}
				b, err := unmarshalActivity(c, r)
				if err != nil {
					return nil, err
				}
				sc.Body = b
			}
		}
		if sc.Body == nil {
			return nil, fmt.Errorf("bpelxml: scope %s has no body", name)
		}
		return sc, nil
	case "extensionActivity":
		inner := el.FirstChildElement("")
		if inner == nil {
			return nil, fmt.Errorf("bpelxml: empty extensionActivity")
		}
		return unmarshalExtension(inner, r)
	}
	return nil, fmt.Errorf("bpelxml: unsupported element %s", el.Name)
}

func unmarshalExtension(inner *xdm.Node, r *Resolver) (engine.Activity, error) {
	name, _ := inner.Attr("name")
	switch localName(inner.Name) {
	case "javaSnippet":
		if r == nil || r.Snippets[name] == nil {
			return nil, fmt.Errorf("bpelxml: no snippet handler registered for %q", name)
		}
		return engine.NewSnippet(name, r.Snippets[name]), nil
	case "sql":
		ds, _ := inner.Attr("dataSource")
		act := bis.NewSQL(name, ds, strings.TrimSpace(inner.TextContent()))
		if ref, ok := inner.Attr("resultSetReference"); ok {
			act.Into(ref)
		}
		return act, nil
	case "retrieveSet":
		ds, _ := inner.Attr("dataSource")
		ref, _ := inner.Attr("setReference")
		sv, _ := inner.Attr("setVariable")
		return bis.NewRetrieveSet(name, ds, ref, sv), nil
	case "atomicSQLSequence":
		var children []engine.Activity
		for _, c := range inner.ChildElements() {
			ca, err := unmarshalActivity(c, r)
			if err != nil {
				return nil, err
			}
			children = append(children, ca)
		}
		return bis.NewAtomicSequence(name, children...), nil
	}
	return nil, fmt.Errorf("bpelxml: unknown extension activity %s", inner.Name)
}

func unmarshalBpelxAssign(el *xdm.Node, name string) (engine.Activity, error) {
	act := orasoa.NewBpelxAssign(name)
	for _, c := range el.ChildElements() {
		from := strings.TrimSpace(c.ChildText("from"))
		to := c.FirstChildElement("to")
		if to == nil {
			return nil, fmt.Errorf("bpelxml: bpelx assign %s: missing to", name)
		}
		v, _ := to.Attr("variable")
		q, _ := to.Attr("query")
		switch localName(c.Name) {
		case "copy":
			act.Copy(from, v, q)
		case "insertAfter":
			act.InsertAfter(from, v, q)
		case "append":
			act.Append(from, v, q)
		case "remove":
			act.Remove(v, q)
		default:
			return nil, fmt.Errorf("bpelxml: bpelx assign %s: unknown op %s", name, c.Name)
		}
	}
	return act, nil
}

func unmarshalCondition(el *xdm.Node) (engine.Condition, error) {
	c := el.FirstChildElement("condition")
	if c == nil {
		return nil, fmt.Errorf("missing condition")
	}
	expr, err := xpath.Compile(strings.TrimSpace(c.TextContent()))
	if err != nil {
		return nil, err
	}
	return &engine.XPathCondition{Expr: expr}, nil
}

func unmarshalChildren(el *xdm.Node, r *Resolver, skip []string) ([]engine.Activity, error) {
	var out []engine.Activity
	for _, c := range el.ChildElements() {
		if contains(skip, localName(c.Name)) {
			continue
		}
		a, err := unmarshalActivity(c, r)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func singleBody(el *xdm.Node, r *Resolver, skip ...string) (engine.Activity, error) {
	children, err := unmarshalChildren(el, r, skip)
	if err != nil {
		return nil, err
	}
	if len(children) != 1 {
		return nil, fmt.Errorf("expected exactly one body activity, got %d", len(children))
	}
	return children[0], nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func localName(n string) string {
	if i := strings.LastIndex(n, ":"); i >= 0 {
		return n[i+1:]
	}
	return n
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
