package bpelxml

import (
	"fmt"

	"wfsql/internal/bis"
	"wfsql/internal/engine"
	"wfsql/internal/xdm"
)

// This file serializes the WID-level artifacts that surround a BIS
// process model: set reference variables, data source variables, and
// preparation/cleanup statements. These are not part of standard BPEL —
// they are emitted in a wid:artifacts extension block, mirroring how the
// Information Server plugin augments the process description.

// MarshalBISProcess serializes a BIS process builder (the WID design
// artifact) as a BPEL document with wid: extensions.
func MarshalBISProcess(b *bis.ProcessBuilder) (string, error) {
	p := &engine.Process{
		Name:      b.ProcessName(),
		Variables: b.VariableDecls(),
		Body:      b.BodyActivity(),
		Mode:      b.TransactionMode(),
	}
	doc, err := MarshalProcess(p)
	if err != nil {
		return "", err
	}
	root, err := xdm.Parse(doc)
	if err != nil {
		return "", err
	}
	arts := xdm.NewElement("wid:artifacts")
	for _, kv := range sortedMapPairs(b.DataSourceVars()) {
		e := arts.Element("wid:dataSourceVariable")
		e.SetAttr("name", kv[0])
		e.SetAttr("dataSource", kv[1])
	}
	for _, ref := range b.SetRefs() {
		e := arts.Element("wid:setReference")
		e.SetAttr("name", ref.Name)
		if ref.Kind == bis.ResultSetRef {
			e.SetAttr("kind", "result")
		} else {
			e.SetAttr("kind", "input")
			e.SetAttr("table", ref.Table)
		}
		if ref.Preparation != "" {
			e.ElementWithText("wid:preparation", ref.Preparation)
		}
		if ref.Cleanup != "" {
			e.ElementWithText("wid:cleanup", ref.Cleanup)
		}
	}
	prep, clean := b.LifecycleStatements()
	for _, ps := range prep {
		e := arts.Element("wid:preparation")
		e.SetAttr("dataSource", ps[0])
		e.SetText(ps[1])
	}
	for _, cs := range clean {
		e := arts.Element("wid:cleanup")
		e.SetAttr("dataSource", cs[0])
		e.SetText(cs[1])
	}
	if err := root.InsertChildAfter(nil, arts); err != nil {
		return "", err
	}
	return root.Indent(), nil
}

// UnmarshalBISProcess reconstructs a BIS process builder from a document
// produced by MarshalBISProcess.
func UnmarshalBISProcess(doc string, r *Resolver) (*bis.ProcessBuilder, error) {
	root, err := xdm.Parse(doc)
	if err != nil {
		return nil, fmt.Errorf("bpelxml: %w", err)
	}
	name, _ := root.Attr("name")
	b := bis.NewProcess(name)
	if m, ok := root.Attr("wid:executionMode"); ok && m == "microflow" {
		b.Mode(engine.ShortRunning)
	}
	var bodyEl *xdm.Node
	for _, el := range root.ChildElements() {
		switch localName(el.Name) {
		case "artifacts":
			if err := unmarshalArtifacts(el, b); err != nil {
				return nil, err
			}
		case "variables":
			for _, v := range el.ChildElements() {
				vd, err := unmarshalVariable(v)
				if err != nil {
					return nil, err
				}
				if vd.Kind == engine.XMLVar {
					b.XMLVariable(vd.Name, vd.InitXML)
				} else {
					b.Variable(vd.Name, vd.Init)
				}
			}
		default:
			if bodyEl != nil {
				return nil, fmt.Errorf("bpelxml: process has multiple body activities")
			}
			bodyEl = el
		}
	}
	if bodyEl == nil {
		return nil, fmt.Errorf("bpelxml: process has no body")
	}
	body, err := unmarshalActivity(bodyEl, r)
	if err != nil {
		return nil, err
	}
	b.Body(body)
	return b, nil
}

func unmarshalArtifacts(el *xdm.Node, b *bis.ProcessBuilder) error {
	for _, a := range el.ChildElements() {
		switch localName(a.Name) {
		case "dataSourceVariable":
			name, _ := a.Attr("name")
			ds, _ := a.Attr("dataSource")
			b.DataSourceVariable(name, ds)
		case "setReference":
			name, _ := a.Attr("name")
			kind, _ := a.Attr("kind")
			if kind == "result" {
				b.ResultSetReference(name)
			} else {
				table, _ := a.Attr("table")
				b.InputSetReference(name, table)
			}
			prep := a.ChildText("wid:preparation")
			clean := a.ChildText("wid:cleanup")
			if prep != "" || clean != "" {
				b.SetRefLifecycle(name, prep, clean)
			}
		case "preparation":
			ds, _ := a.Attr("dataSource")
			b.Preparation(ds, a.TextContent())
		case "cleanup":
			ds, _ := a.Attr("dataSource")
			b.Cleanup(ds, a.TextContent())
		default:
			return fmt.Errorf("bpelxml: unknown artifact %s", a.Name)
		}
	}
	return nil
}

func sortedMapPairs(m map[string]string) [][2]string {
	out := make([][2]string, 0, len(m))
	for _, k := range sortedKeys(m) {
		out = append(out, [2]string{k, m[k]})
	}
	return out
}
