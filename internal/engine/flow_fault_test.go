package engine

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlowFaultPropagation pins down the flow activity's fault semantics
// under concurrency: BPEL flow has no cancellation, so when one branch
// faults mid-flight every sibling still runs to completion, the flow
// returns the first fault (in child order), and the trace stays coherent.
// The test is meaningful under -race: branches concurrently write process
// variables and emit trace events.
func TestFlowFaultPropagation(t *testing.T) {
	e := New(nil)

	var completed atomic.Int32
	children := make([]Activity, 0, 9)
	for i := 0; i < 8; i++ {
		name := "branch" + string(rune('A'+i))
		children = append(children, NewSnippet(name, func(ctx *Ctx) error {
			// Concurrent writes to a shared variable: last-writer-wins,
			// but never a torn read/write (Variable is mutex-guarded).
			if err := ctx.SetScalar("shared", name); err != nil {
				return err
			}
			time.Sleep(2 * time.Millisecond) // outlive the faulting branch
			if _, err := ctx.Variable("shared"); err != nil {
				return err
			}
			completed.Add(1)
			return nil
		}))
	}
	children = append(children, NewSnippet("badBranch", func(ctx *Ctx) error {
		time.Sleep(time.Millisecond) // fault while siblings are mid-flight
		return &Fault{Name: "boom", Activity: "badBranch"}
	}))

	p := &Process{
		Name:      "flowFault",
		Variables: []VarDecl{{Name: "shared", Kind: ScalarVar}},
		Body:      NewFlow("flow", children...),
	}
	d, err := e.Deploy(p)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := d.Run(nil)
	if err == nil {
		t.Fatal("flow should propagate the branch fault")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("propagated error %v, want the boom fault", err)
	}
	if inst.State() != StateFaulted {
		t.Fatalf("instance state %v, want faulted", inst.State())
	}

	// No cancellation: every sibling ran to completion despite the fault.
	if n := completed.Load(); n != 8 {
		t.Fatalf("%d siblings completed, want 8 (flow must not cancel in-flight branches)", n)
	}

	// Trace integrity: one start per branch, 8 ends, exactly one branch
	// fault plus the flow's own fault record, and strictly increasing
	// sequence numbers despite concurrent emission.
	starts, ends, faults := 0, 0, 0
	lastSeq := 0
	for _, ev := range inst.Trace() {
		if ev.Seq <= lastSeq {
			t.Fatalf("trace sequence not strictly increasing at %+v", ev)
		}
		lastSeq = ev.Seq
		if strings.HasPrefix(ev.Activity, "branch") || ev.Activity == "badBranch" {
			switch ev.Kind {
			case "start":
				starts++
			case "end":
				ends++
			case "fault":
				faults++
			}
		}
	}
	if starts != 9 || ends != 8 || faults != 1 {
		t.Fatalf("branch trace starts=%d ends=%d faults=%d, want 9/8/1", starts, ends, faults)
	}
}

// TestFlowFirstFaultInChildOrder: when several branches fault, the flow
// reports the first faulting child in declaration order (deterministic
// despite concurrent execution).
func TestFlowFirstFaultInChildOrder(t *testing.T) {
	e := New(nil)
	body := NewFlow("flow",
		NewSnippet("c0", func(ctx *Ctx) error {
			time.Sleep(3 * time.Millisecond)
			return &Fault{Name: "firstByOrder", Activity: "c0"}
		}),
		NewSnippet("c1", func(ctx *Ctx) error {
			return &Fault{Name: "firstByTime", Activity: "c1"} // faults earlier in time
		}),
	)
	d, err := e.Deploy(&Process{Name: "flowOrder", Body: body})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "firstByOrder") {
		t.Fatalf("flow returned %v, want the first fault in child order", err)
	}
}
