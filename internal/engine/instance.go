package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"wfsql/internal/journal"
	"wfsql/internal/obsv"
	"wfsql/internal/xdm"
	"wfsql/internal/xpath"
)

// InstanceState is the lifecycle state of a process instance.
type InstanceState int

// Instance lifecycle states. StateCrashed marks a simulated process
// death (chaos crash point): unlike a fault, no handlers or cleanup
// ran, and the instance is recoverable from the journal.
const (
	StateReady InstanceState = iota
	StateRunning
	StateCompleted
	StateFaulted
	StateCrashed
)

// String returns the state name.
func (s InstanceState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateFaulted:
		return "faulted"
	case StateCrashed:
		return "crashed"
	}
	return "unknown"
}

// TraceEvent records one activity execution for monitoring.
type TraceEvent struct {
	Activity string
	Kind     string // "start", "end", "fault"
	Detail   string
	Seq      int
}

// Instance is one execution of a deployed process.
type Instance struct {
	ID      int64
	Process *Process
	Engine  *Engine

	mu      sync.Mutex
	vars    map[string]*Variable
	state   InstanceState
	fault   error
	trace   []TraceEvent
	seq     int
	context map[string]any // product-layer state (set references, sessions, ...)
	done    []func(err error)
	comp    []compensation // completed scopes' compensation handlers (LIFO)
	input   map[string]string
	output  map[string]string

	// Durable-execution state: replay queues (memoized effect results
	// loaded from the journal on Resume, consumed FIFO per activity),
	// per-activity occurrence counters, and crash hooks (run on
	// simulated process death to model server-side rollback of the
	// instance's open database transactions).
	replay     map[string][]journal.Memo
	occs       map[string]int
	crashHooks []func()

	// xpctx is the instance's shared XPath evaluation context. Its
	// resolver/function hooks only reference the instance, and
	// evaluation never mutates the context, so one allocation serves
	// every expression the instance ever evaluates (built lazily,
	// guarded by mu).
	xpctx *xpath.Context
}

// InputMessage returns the message the instance was started with.
func (in *Instance) InputMessage() map[string]string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]string, len(in.input))
	for k, v := range in.input {
		out[k] = v
	}
	return out
}

// Output returns the message assembled by a Reply activity (nil if the
// process never replied).
func (in *Instance) Output() map[string]string {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.output == nil {
		return nil
	}
	out := make(map[string]string, len(in.output))
	for k, v := range in.output {
		out[k] = v
	}
	return out
}

func (in *Instance) setOutputMessage(m map[string]string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.output = m
}

type compensation struct {
	scope   string
	handler Activity
}

// pushCompensation registers a completed scope's compensation handler.
func (in *Instance) pushCompensation(scope string, handler Activity) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.comp = append(in.comp, compensation{scope: scope, handler: handler})
}

// popCompensation removes and returns the most recently registered
// compensation handler.
func (in *Instance) popCompensation() (string, Activity, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.comp) == 0 {
		return "", nil, false
	}
	c := in.comp[len(in.comp)-1]
	in.comp = in.comp[:len(in.comp)-1]
	return c.scope, c.handler, true
}

// State returns the instance state.
func (in *Instance) State() InstanceState {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.state
}

// Fault returns the fault that terminated the instance, if any.
func (in *Instance) Fault() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fault
}

// Variable returns the named process variable.
func (in *Instance) Variable(name string) (*Variable, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	v, ok := in.vars[name]
	if !ok {
		return nil, fmt.Errorf("engine: undeclared variable %s", name)
	}
	return v, nil
}

// MustVariable returns the named variable or panics (test helper).
func (in *Instance) MustVariable(name string) *Variable {
	v, err := in.Variable(name)
	if err != nil {
		panic(err)
	}
	return v
}

// DeclareVariable adds a variable at runtime (used by product layers for
// generated variables such as result-set references).
func (in *Instance) DeclareVariable(v *Variable) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.vars[v.Name] = v
}

// SetContext stores product-layer state under a key.
func (in *Instance) SetContext(key string, value any) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.context[key] = value
}

// Context retrieves product-layer state.
func (in *Instance) Context(key string) (any, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	v, ok := in.context[key]
	return v, ok
}

// OnComplete registers a callback invoked when the instance finishes
// (err is the fault, or nil). Product layers use this for end-of-process
// transaction handling and cleanup statements.
func (in *Instance) OnComplete(fn func(err error)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.done = append(in.done, fn)
}

// OnCrash registers a hook invoked (in reverse registration order) when
// the instance dies at a simulated crash point. Unlike OnComplete
// callbacks, crash hooks must only model what happens server-side when
// the process vanishes — e.g. the database rolling back transactions
// whose connections died — never cleanup that a real crashed process
// could not have performed.
func (in *Instance) OnCrash(fn func()) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashHooks = append(in.crashHooks, fn)
}

// takeReplay pops the next memoized result for the activity, if the
// instance is replaying recovered history. Memos are consumed FIFO per
// activity name so loop iterations line up in execution order.
func (in *Instance) takeReplay(activity string) (journal.Memo, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	q := in.replay[activity]
	if len(q) == 0 {
		return journal.Memo{}, false
	}
	m := q[0]
	in.replay[activity] = q[1:]
	return m, true
}

// nextOccurrence increments and returns the per-activity occurrence
// counter (1-based), used to label journal records across loop
// iterations.
func (in *Instance) nextOccurrence(activity string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.occs == nil {
		in.occs = map[string]int{}
	}
	in.occs[activity]++
	return in.occs[activity]
}

// Replaying reports whether any memoized results remain queued (the
// instance is still in the replay phase of recovery).
func (in *Instance) Replaying() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, q := range in.replay {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// Trace returns a copy of the recorded trace events.
func (in *Instance) Trace() []TraceEvent {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]TraceEvent, len(in.trace))
	copy(out, in.trace)
	return out
}

// RecordTrace appends a custom trace event. Product layers and the
// resilience wiring use it to surface retry attempts, backoff waits,
// circuit breaker transitions, and dead-letter records through the same
// monitoring surface the activity lifecycle uses, so a trace listener
// doubles as a reliability audit trail.
func (in *Instance) RecordTrace(activity, kind, detail string) {
	in.recordTrace(activity, kind, detail)
}

func (in *Instance) recordTrace(activity, kind, detail string) {
	in.mu.Lock()
	in.seq++
	ev := TraceEvent{Activity: activity, Kind: kind, Detail: detail, Seq: in.seq}
	in.trace = append(in.trace, ev)
	in.mu.Unlock()
	in.Engine.notifyTrace(in.ID, ev)
}

// Ctx is the execution context passed to activities.
type Ctx struct {
	Inst   *Instance
	Engine *Engine
	scope  *scopeFrame

	// span is the observability span enclosing the current activity
	// (the instance span at the top level). It is nil when no
	// observability bundle is attached; all *obsv.Span methods are
	// nil-safe, so activity code uses it unconditionally.
	span *obsv.Span

	// run is the instance's execution budget (deadline/cancellation),
	// threaded from Deployment.RunCtx through every activity. The engine
	// checks it at activity boundaries; the bus and sqldb sessions check
	// it at call/statement boundaries. Never nil after executeCtx.
	run context.Context
}

// Span returns the span enclosing the current activity (nil-safe to
// use; nil when observability is detached). Product layers use it to
// parent their own spans under the running activity.
func (c *Ctx) Span() *obsv.Span { return c.span }

// Context returns the instance's execution context (its deadline
// budget). Never nil: instances started without a budget report
// context.Background().
func (c *Ctx) Context() context.Context {
	if c == nil || c.run == nil {
		return context.Background()
	}
	return c.run
}

type scopeFrame struct {
	parent *scopeFrame
	name   string
}

// Variable resolves a process variable.
func (c *Ctx) Variable(name string) (*Variable, error) { return c.Inst.Variable(name) }

// SetScalar sets a scalar variable (declaring it if necessary is an error;
// BPEL requires declaration). With a journal attached the write is
// recorded as a variable-write audit record.
func (c *Ctx) SetScalar(name, value string) error {
	v, err := c.Inst.Variable(name)
	if err != nil {
		return err
	}
	v.SetString(value)
	c.journalVar("s:"+name, value)
	return nil
}

// SetNode sets an XML variable's document.
func (c *Ctx) SetNode(name string, n *xdm.Node) error {
	v, err := c.Inst.Variable(name)
	if err != nil {
		return err
	}
	v.SetNode(n)
	if n != nil {
		c.journalVar("x:"+name, n.String())
	}
	return nil
}

// journalVar appends a variable-write record (best effort; the write
// is an audit trail — replay recomputes variables deterministically).
func (c *Ctx) journalVar(name, value string) {
	if rec := c.Inst.Engine.Journal(); rec != nil {
		_ = rec.VariableWrite(c.Inst.ID, name, value)
	}
}

// XPathContext builds an XPath evaluation context over the instance's
// variables, with the BPEL built-in functions (bpel:getVariableData) and
// the process's extension functions installed.
func (c *Ctx) XPathContext() *xpath.Context {
	in := c.Inst
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.xpctx == nil {
		in.xpctx = &xpath.Context{
			Node:     nil,
			Position: 1,
			Size:     1,
			Vars:     instanceVars{in},
			Funcs:    &instanceFuncs{inst: in, next: in.Process.Funcs},
		}
	}
	return in.xpctx
}

// instanceFuncs provides BPEL built-in extension functions that need
// instance access, chaining to the process's own extension functions.
type instanceFuncs struct {
	inst *Instance
	next xpath.FunctionResolver
}

// CallFunction implements xpath.FunctionResolver. bpel:getVariableData
// (also reachable as ora:getVariableData, which Oracle exposes both as an
// extension function and a Java method) extracts an entire variable or a
// path within it.
func (f *instanceFuncs) CallFunction(name string, args []xpath.Value) (xpath.Value, error) {
	local := name
	if i := strings.LastIndex(name, ":"); i >= 0 {
		local = name[i+1:]
	}
	if local == "getVariableData" {
		if len(args) < 1 || len(args) > 2 {
			return xpath.Value{}, fmt.Errorf("engine: getVariableData expects 1 or 2 arguments")
		}
		v, err := f.inst.Variable(args[0].AsString())
		if err != nil {
			return xpath.Value{}, err
		}
		val := v.XPathValue()
		if len(args) == 1 {
			return val, nil
		}
		if v.Kind() != XMLVar || v.Node() == nil {
			return xpath.Value{}, fmt.Errorf("engine: getVariableData path on non-XML variable %s", v.Name)
		}
		sub, err := xpath.Compile(args[1].AsString())
		if err != nil {
			return xpath.Value{}, err
		}
		return sub.Eval(&xpath.Context{Node: v.Node(), Position: 1, Size: 1, Vars: instanceVars{f.inst}, Funcs: f})
	}
	if f.next == nil {
		return xpath.Value{}, fmt.Errorf("engine: unknown extension function %s()", name)
	}
	return f.next.CallFunction(name, args)
}

// EvalXPath evaluates a compiled XPath expression against the instance.
func (c *Ctx) EvalXPath(e *xpath.Expr) (xpath.Value, error) {
	return e.Eval(c.XPathContext())
}

// instanceVars adapts instance variables to xpath.VariableResolver.
type instanceVars struct{ in *Instance }

// ResolveVariable implements xpath.VariableResolver.
func (r instanceVars) ResolveVariable(name string) (xpath.Value, error) {
	v, err := r.in.Variable(name)
	if err != nil {
		return xpath.Value{}, err
	}
	return v.XPathValue(), nil
}

// Sleep is a convenience for snippets that model waiting.
func (c *Ctx) Sleep(d time.Duration) { time.Sleep(d) }
