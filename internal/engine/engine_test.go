package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"wfsql/internal/wsbus"
	"wfsql/internal/xdm"
)

func deployAndRun(t *testing.T, e *Engine, p *Process, input map[string]string) *Instance {
	t.Helper()
	d, err := e.Deploy(p)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	in, err := d.Run(input)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return in
}

func TestSequenceOrder(t *testing.T) {
	var order []string
	mk := func(n string) Activity {
		return NewSnippet(n, func(ctx *Ctx) error {
			order = append(order, n)
			return nil
		})
	}
	p := &Process{Name: "seq", Body: NewSequence("main", mk("a"), mk("b"), mk("c"))}
	deployAndRun(t, New(nil), p, nil)
	if strings.Join(order, ",") != "a,b,c" {
		t.Fatalf("order: %v", order)
	}
}

func TestFlowRunsAllBranches(t *testing.T) {
	var n atomic.Int64
	mk := func(name string) Activity {
		return NewSnippet(name, func(ctx *Ctx) error {
			n.Add(1)
			return nil
		})
	}
	p := &Process{Name: "flow", Body: NewFlow("par", mk("a"), mk("b"), mk("c"), mk("d"))}
	deployAndRun(t, New(nil), p, nil)
	if n.Load() != 4 {
		t.Fatalf("branches run: %d", n.Load())
	}
}

func TestWhileWithXPathCondition(t *testing.T) {
	p := &Process{
		Name: "loop",
		Variables: []VarDecl{
			{Name: "i", Kind: ScalarVar, Init: "0"},
			{Name: "total", Kind: ScalarVar, Init: "0"},
		},
		Body: NewWhile("w", Cond("$i < 5"), NewSnippet("inc", func(ctx *Ctx) error {
			i, _ := ctx.Inst.MustVariable("i").Int()
			tot, _ := ctx.Inst.MustVariable("total").Int()
			ctx.SetScalar("i", fmt.Sprint(i+1))
			return ctx.SetScalar("total", fmt.Sprint(tot+i))
		})),
	}
	in := deployAndRun(t, New(nil), p, nil)
	if got := in.MustVariable("total").String(); got != "10" {
		t.Fatalf("total: %s", got)
	}
}

func TestIfElse(t *testing.T) {
	run := func(x string) string {
		p := &Process{
			Name:      "cond",
			Variables: []VarDecl{{Name: "x", Kind: ScalarVar}, {Name: "out", Kind: ScalarVar}},
			Body: NewIf("if", Cond("$x = 'a'"),
				NewSnippet("then", func(ctx *Ctx) error { return ctx.SetScalar("out", "A") })).
				ElseIf(Cond("$x = 'b'"),
					NewSnippet("elseif", func(ctx *Ctx) error { return ctx.SetScalar("out", "B") })).
				SetElse(NewSnippet("else", func(ctx *Ctx) error { return ctx.SetScalar("out", "other") })),
		}
		in := deployAndRun(t, New(nil), p, map[string]string{"x": x})
		return in.MustVariable("out").String()
	}
	if run("a") != "A" || run("b") != "B" || run("z") != "other" {
		t.Fatal("if/elseif/else selection wrong")
	}
}

func TestAssignWholeVariable(t *testing.T) {
	p := &Process{
		Name: "assign",
		Variables: []VarDecl{
			{Name: "src", Kind: ScalarVar, Init: "hello"},
			{Name: "dst", Kind: ScalarVar},
		},
		Body: NewAssign("a").Copy("$src", "dst"),
	}
	in := deployAndRun(t, New(nil), p, nil)
	if in.MustVariable("dst").String() != "hello" {
		t.Fatalf("dst: %s", in.MustVariable("dst").String())
	}
}

func TestAssignXPathIntoDocument(t *testing.T) {
	p := &Process{
		Name: "assign2",
		Variables: []VarDecl{
			{Name: "doc", Kind: XMLVar, InitXML: "<order><item>bolt</item><qty>1</qty></order>"},
			{Name: "item", Kind: ScalarVar},
		},
		Body: NewSequence("s",
			// Extract with a path.
			NewAssign("get").Copy("$doc/item", "item"),
			// Update a node in place (Random Set Access + Tuple update).
			NewAssign("set").CopyTo("'99'", "doc", "qty"),
		),
	}
	in := deployAndRun(t, New(nil), p, nil)
	if in.MustVariable("item").String() != "bolt" {
		t.Fatalf("item: %q", in.MustVariable("item").String())
	}
	if got := in.MustVariable("doc").Node().ChildText("qty"); got != "99" {
		t.Fatalf("qty: %q", got)
	}
}

func TestAssignElementCopy(t *testing.T) {
	p := &Process{
		Name: "assign3",
		Variables: []VarDecl{
			{Name: "a", Kind: XMLVar, InitXML: "<x><v>1</v></x>"},
			{Name: "b", Kind: XMLVar, InitXML: "<y><v>0</v></y>"},
		},
		Body: NewAssign("cp").CopyTo("$a/v", "b", "v"),
	}
	in := deployAndRun(t, New(nil), p, nil)
	if got := in.MustVariable("b").Node().ChildText("v"); got != "1" {
		t.Fatalf("copied element content: %q", got)
	}
}

func TestAssignToMissingNodeFails(t *testing.T) {
	p := &Process{
		Name:      "assign4",
		Variables: []VarDecl{{Name: "doc", Kind: XMLVar, InitXML: "<a/>"}},
		Body:      NewAssign("bad").CopyTo("'x'", "doc", "nope"),
	}
	d, _ := New(nil).Deploy(p)
	if _, err := d.Run(nil); err == nil {
		t.Fatal("expected error for missing to-path node")
	}
}

func TestInvoke(t *testing.T) {
	bus := wsbus.New()
	svc := wsbus.NewOrderFromSupplier(0)
	bus.Register("OrderFromSupplier", svc.Handle)
	e := New(bus)
	p := &Process{
		Name: "call",
		Variables: []VarDecl{
			{Name: "item", Kind: ScalarVar, Init: "bolt"},
			{Name: "qty", Kind: ScalarVar, Init: "7"},
			{Name: "conf", Kind: ScalarVar},
		},
		Body: NewInvoke("inv", "OrderFromSupplier").
			In("ItemID", "$item").In("Quantity", "$qty").
			Out("OrderConfirmation", "conf"),
	}
	in := deployAndRun(t, e, p, nil)
	if got := in.MustVariable("conf").String(); got != "CONFIRMED:bolt:7" {
		t.Fatalf("confirmation: %q", got)
	}
	if svc.Ordered("bolt") != 7 {
		t.Fatalf("service state: %d", svc.Ordered("bolt"))
	}
}

func TestInvokeUnknownService(t *testing.T) {
	e := New(wsbus.New())
	p := &Process{Name: "bad", Body: NewInvoke("inv", "NoSuch")}
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestScopeFaultHandler(t *testing.T) {
	handled := false
	p := &Process{
		Name: "faulty",
		Body: &Scope{
			ActivityName: "scope",
			Body:         &Throw{ActivityName: "boom", FaultName: "badThing"},
			FaultHandler: NewSnippet("handler", func(ctx *Ctx) error {
				handled = true
				return nil
			}),
		},
	}
	in := deployAndRun(t, New(nil), p, nil)
	if !handled {
		t.Fatal("fault handler did not run")
	}
	if in.State() != StateCompleted {
		t.Fatalf("state: %s", in.State())
	}
}

func TestScopeFinallyRunsOnFault(t *testing.T) {
	cleaned := false
	p := &Process{
		Name: "faulty2",
		Body: &Scope{
			ActivityName: "scope",
			Body:         &Throw{ActivityName: "boom", FaultName: "badThing"},
			Finally: NewSnippet("cleanup", func(ctx *Ctx) error {
				cleaned = true
				return nil
			}),
		},
	}
	d, _ := New(nil).Deploy(p)
	_, err := d.Run(nil)
	if err == nil {
		t.Fatal("fault should propagate without a handler")
	}
	var f *Fault
	if !errors.As(err, &f) || f.Name != "badThing" {
		t.Fatalf("fault identity: %v", err)
	}
	if !cleaned {
		t.Fatal("finally did not run")
	}
}

func TestInstanceStateAndTrace(t *testing.T) {
	p := &Process{
		Name: "traced",
		Body: NewSequence("main",
			&Empty{ActivityName: "e1"},
			&Empty{ActivityName: "e2"},
		),
	}
	in := deployAndRun(t, New(nil), p, nil)
	if in.State() != StateCompleted {
		t.Fatalf("state: %s", in.State())
	}
	tr := in.Trace()
	var names []string
	for _, ev := range tr {
		names = append(names, ev.Activity+":"+ev.Kind)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "e1:start") || !strings.Contains(joined, "e2:end") {
		t.Fatalf("trace: %s", joined)
	}
}

func TestFaultedState(t *testing.T) {
	p := &Process{Name: "f", Body: &Throw{ActivityName: "t", FaultName: "x"}}
	d, _ := New(nil).Deploy(p)
	in, err := d.Run(nil)
	if err == nil {
		t.Fatal("expected fault")
	}
	if in.State() != StateFaulted || in.Fault() == nil {
		t.Fatalf("state=%s fault=%v", in.State(), in.Fault())
	}
}

func TestOnCompleteCallbacks(t *testing.T) {
	var got []string
	p := &Process{Name: "cb", Body: NewSnippet("register", func(ctx *Ctx) error {
		ctx.Inst.OnComplete(func(err error) { got = append(got, "first") })
		ctx.Inst.OnComplete(func(err error) { got = append(got, "second") })
		return nil
	})}
	deployAndRun(t, New(nil), p, nil)
	// LIFO, like defers: later registrations run first.
	if strings.Join(got, ",") != "second,first" {
		t.Fatalf("callback order: %v", got)
	}
}

func TestDeployValidation(t *testing.T) {
	e := New(nil)
	cases := []*Process{
		{Name: "", Body: &Empty{ActivityName: "e"}},
		{Name: "nobody"},
		{Name: "dupvars", Body: &Empty{ActivityName: "e"},
			Variables: []VarDecl{{Name: "v"}, {Name: "v"}}},
		{Name: "unnamed", Body: &Empty{}},
	}
	for i, p := range cases {
		if _, err := e.Deploy(p); err == nil {
			t.Errorf("case %d: expected deploy error", i)
		}
	}
}

func TestInputBinding(t *testing.T) {
	p := &Process{
		Name:      "in",
		Variables: []VarDecl{{Name: "x", Kind: ScalarVar}},
		Body:      &Empty{ActivityName: "e"},
	}
	d, _ := New(nil).Deploy(p)
	in, err := d.Run(map[string]string{"x": "42"})
	if err != nil {
		t.Fatal(err)
	}
	if in.MustVariable("x").String() != "42" {
		t.Fatal("input not bound")
	}
	if _, err := d.Run(map[string]string{"nope": "1"}); err == nil {
		t.Fatal("expected error for unknown input")
	}
}

func TestInstanceRunTwiceFails(t *testing.T) {
	p := &Process{Name: "once", Body: &Empty{ActivityName: "e"}}
	d, _ := New(nil).Deploy(p)
	in, _ := d.NewInstance(nil)
	if err := d.Engine.execute(in); err != nil {
		t.Fatal(err)
	}
	if err := d.Engine.execute(in); err == nil {
		t.Fatal("expected error on re-execution")
	}
}

func TestDataSourceRegistry(t *testing.T) {
	e := New(nil)
	if _, err := e.DataSource("missing"); err == nil {
		t.Fatal("expected error for unknown data source")
	}
}

func TestVariableDeclarationAtRuntime(t *testing.T) {
	p := &Process{Name: "dyn", Body: NewSnippet("declare", func(ctx *Ctx) error {
		ctx.Inst.DeclareVariable(NewXMLVariable("generated", xdm.NewElement("r")))
		return nil
	})}
	in := deployAndRun(t, New(nil), p, nil)
	v, err := in.Variable("generated")
	if err != nil || v.Node() == nil {
		t.Fatalf("runtime variable: %v %v", v, err)
	}
}

func TestTraceListener(t *testing.T) {
	e := New(nil)
	var events []string
	e.AddTraceListener(func(id int64, ev TraceEvent) {
		events = append(events, fmt.Sprintf("%d:%s:%s", id, ev.Activity, ev.Kind))
	})
	p := &Process{Name: "mon", Body: &Empty{ActivityName: "x"}}
	d, _ := e.Deploy(p)
	in, err := d.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%d:x:start", in.ID)
	found := false
	for _, ev := range events {
		if ev == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("listener missed %q in %v", want, events)
	}
}

func TestDescribe(t *testing.T) {
	p := &Process{Name: "d", Mode: ShortRunning,
		Body: NewSequence("main", &Empty{ActivityName: "x"})}
	d, _ := New(nil).Deploy(p)
	s := d.Describe()
	if !strings.Contains(s, "short-running") || !strings.Contains(s, "main") {
		t.Fatalf("describe: %s", s)
	}
}
