package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"wfsql/internal/journal"
	"wfsql/internal/obsv"
	"wfsql/internal/resilience"
	"wfsql/internal/wsbus"
	"wfsql/internal/xdm"
	"wfsql/internal/xpath"
)

// Activity is one node of a process model. Activities abstract from their
// concrete implementation (the paper's two-level programming model): the
// engine executes them without knowing whether they are control flow,
// service invocations, or — in the product layers — SQL operations.
type Activity interface {
	Name() string
	Execute(ctx *Ctx) error
}

// execChild runs an activity with trace recording and, when an
// observability bundle is attached, an activity span parented under the
// enclosing span. While the activity runs, the tracer's ambient parent
// is pointed at its span so context-free layers (sqldb statement spans,
// the Oracle XPath extension functions) attach underneath it.
func execChild(ctx *Ctx, a Activity) error {
	obs := ctx.Engine.Obs()
	// Deadline propagation: an instance whose budget expired is stopped
	// at the activity boundary — the cheapest cancellation point that
	// still leaves every completed activity's effects intact. This is an
	// ordinary fault (not a crash), so the instance's completion
	// callbacks still run and product-layer transactions roll back in an
	// orderly way. (Scope fault handlers cannot absorb it: they execute
	// through execChild too, and the budget stays expired.)
	if err := ctx.Context().Err(); err != nil {
		obs.M().Counter("engine.deadline_expired").Inc()
		ctx.Inst.recordTrace(a.Name(), "deadline", err.Error())
		return fmt.Errorf("%s: %w: %w", a.Name(), ErrBudgetExceeded, err)
	}
	if sp := obs.T().Start(ctx.span.SpanID(), obsv.KindActivity, a.Name()); sp != nil {
		sp.Stack = ctx.Inst.Process.Stack
		sp.Pattern = ctx.Inst.Process.Pattern
		sp.Instance = ctx.Inst.ID
		prev := obs.T().Ambient()
		obs.T().SetAmbient(sp.SpanID())
		defer obs.T().SetAmbient(prev)
		c2 := *ctx
		c2.span = sp
		ctx = &c2
		defer func() {
			obs.M().Histogram("engine.activity_ms").ObserveDuration(sp.Duration())
		}()
	}
	obs.M().Counter("engine.activities").Inc()

	ctx.Inst.recordTrace(a.Name(), "start", "")
	err := a.Execute(ctx)
	if err != nil {
		ctx.Inst.recordTrace(a.Name(), "fault", err.Error())
		obs.M().Counter("engine.activity_faults").Inc()
		if journal.IsCrash(err) {
			ctx.span.End(obsv.OutcomeCrashed)
		} else {
			ctx.span.Set("fault", err.Error()).End(obsv.OutcomeFault)
		}
		return err
	}
	ctx.Inst.recordTrace(a.Name(), "end", "")
	// End("") keeps an outcome set earlier by the replay or dead-letter
	// paths (OutcomeReplayed / OutcomeDeadLettered), defaulting to OK.
	ctx.span.End("")
	return nil
}

// --- Sequence ---

// Sequence executes its children in order.
type Sequence struct {
	ActivityName string
	Children     []Activity
}

// NewSequence builds a sequence activity.
func NewSequence(name string, children ...Activity) *Sequence {
	return &Sequence{ActivityName: name, Children: children}
}

// Name implements Activity.
func (s *Sequence) Name() string { return s.ActivityName }

// Append adds a child and returns the sequence.
func (s *Sequence) Append(a ...Activity) *Sequence {
	s.Children = append(s.Children, a...)
	return s
}

// Execute implements Activity.
func (s *Sequence) Execute(ctx *Ctx) error {
	for _, c := range s.Children {
		if err := execChild(ctx, c); err != nil {
			return err
		}
	}
	return nil
}

// --- Flow ---

// Flow executes its children concurrently and waits for all of them
// (BPEL's parallel construct). The first fault, if any, is returned after
// all branches finish.
type Flow struct {
	ActivityName string
	Children     []Activity
}

// NewFlow builds a flow activity.
func NewFlow(name string, children ...Activity) *Flow {
	return &Flow{ActivityName: name, Children: children}
}

// Name implements Activity.
func (f *Flow) Name() string { return f.ActivityName }

// Execute implements Activity.
func (f *Flow) Execute(ctx *Ctx) error {
	var wg sync.WaitGroup
	errs := make([]error, len(f.Children))
	for i, c := range f.Children {
		wg.Add(1)
		go func(i int, c Activity) {
			defer wg.Done()
			errs[i] = execChild(ctx, c)
		}(i, c)
	}
	wg.Wait()
	// A simulated crash in any branch takes precedence over ordinary
	// branch faults: the whole process died, so fault handling must not
	// run for the sibling errors.
	for _, err := range errs {
		if journal.IsCrash(err) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// --- Condition ---

// Condition gates while loops and if branches. Either an XPath boolean
// expression or a Go predicate.
type Condition interface {
	Test(ctx *Ctx) (bool, error)
}

// XPathCondition evaluates a compiled XPath expression as a boolean.
type XPathCondition struct{ Expr *xpath.Expr }

// Cond compiles an XPath condition, panicking on syntax errors (process
// models are built at program start).
func Cond(src string) Condition { return &XPathCondition{Expr: xpath.MustCompile(src)} }

// Test implements Condition.
func (c *XPathCondition) Test(ctx *Ctx) (bool, error) {
	v, err := ctx.EvalXPath(c.Expr)
	if err != nil {
		return false, err
	}
	return v.AsBool(), nil
}

// FuncCondition adapts a Go predicate to Condition.
type FuncCondition func(ctx *Ctx) (bool, error)

// Test implements Condition.
func (f FuncCondition) Test(ctx *Ctx) (bool, error) { return f(ctx) }

// --- While ---

// While repeats its body while the condition holds.
type While struct {
	ActivityName string
	Condition    Condition
	Body         Activity
}

// NewWhile builds a while activity.
func NewWhile(name string, cond Condition, body Activity) *While {
	return &While{ActivityName: name, Condition: cond, Body: body}
}

// Name implements Activity.
func (w *While) Name() string { return w.ActivityName }

// Execute implements Activity.
func (w *While) Execute(ctx *Ctx) error {
	for {
		ok, err := w.Condition.Test(ctx)
		if err != nil {
			return fmt.Errorf("%s: condition: %w", w.ActivityName, err)
		}
		if !ok {
			return nil
		}
		if err := execChild(ctx, w.Body); err != nil {
			return err
		}
	}
}

// --- If ---

// IfBranch is one condition/body arm of an If activity.
type IfBranch struct {
	Condition Condition
	Body      Activity
}

// If selects the first branch whose condition holds; Else (optional) runs
// when none do.
type If struct {
	ActivityName string
	Branches     []IfBranch
	Else         Activity
}

// NewIf builds an if activity with one branch.
func NewIf(name string, cond Condition, then Activity) *If {
	return &If{ActivityName: name, Branches: []IfBranch{{Condition: cond, Body: then}}}
}

// ElseIf appends a branch.
func (i *If) ElseIf(cond Condition, body Activity) *If {
	i.Branches = append(i.Branches, IfBranch{Condition: cond, Body: body})
	return i
}

// SetElse sets the else body.
func (i *If) SetElse(body Activity) *If {
	i.Else = body
	return i
}

// Name implements Activity.
func (i *If) Name() string { return i.ActivityName }

// Execute implements Activity.
func (i *If) Execute(ctx *Ctx) error {
	for _, b := range i.Branches {
		ok, err := b.Condition.Test(ctx)
		if err != nil {
			return fmt.Errorf("%s: condition: %w", i.ActivityName, err)
		}
		if ok {
			return execChild(ctx, b.Body)
		}
	}
	if i.Else != nil {
		return execChild(ctx, i.Else)
	}
	return nil
}

// --- Empty ---

// Empty does nothing (BPEL empty activity).
type Empty struct{ ActivityName string }

// Name implements Activity.
func (e *Empty) Name() string { return e.ActivityName }

// Execute implements Activity.
func (e *Empty) Execute(ctx *Ctx) error { return nil }

// --- Assign ---

// CopySpec is one from/to copy of an assign activity. From is an XPath
// expression over the process variables; To names a target variable and an
// optional XPath location within it.
type CopySpec struct {
	From   *xpath.Expr
	ToVar  string
	ToPath *xpath.Expr // nil: replace whole variable
}

// Assign copies data between variables. The BPEL specification
// predetermines XPath as the expression language over source and target.
type Assign struct {
	ActivityName string
	Copies       []CopySpec
}

// NewAssign builds an assign activity.
func NewAssign(name string) *Assign { return &Assign{ActivityName: name} }

// Copy adds a from-expression → to-variable copy (whole variable).
func (a *Assign) Copy(fromExpr, toVar string) *Assign {
	a.Copies = append(a.Copies, CopySpec{From: xpath.MustCompile(fromExpr), ToVar: toVar})
	return a
}

// CopyTo adds a from-expression → to-variable-path copy.
func (a *Assign) CopyTo(fromExpr, toVar, toPath string) *Assign {
	a.Copies = append(a.Copies, CopySpec{
		From:   xpath.MustCompile(fromExpr),
		ToVar:  toVar,
		ToPath: xpath.MustCompile(toPath),
	})
	return a
}

// Name implements Activity.
func (a *Assign) Name() string { return a.ActivityName }

// Execute implements Activity.
func (a *Assign) Execute(ctx *Ctx) error {
	for i, cp := range a.Copies {
		if err := a.execCopy(ctx, cp); err != nil {
			return fmt.Errorf("%s: copy %d: %w", a.ActivityName, i+1, err)
		}
	}
	return nil
}

func (a *Assign) execCopy(ctx *Ctx, cp CopySpec) error {
	fromVal, err := ctx.EvalXPath(cp.From)
	if err != nil {
		return err
	}
	target, err := ctx.Variable(cp.ToVar)
	if err != nil {
		return err
	}
	if cp.ToPath == nil {
		// Replace the whole variable.
		if n := fromVal.FirstNode(); n != nil && fromVal.Kind == xpath.KindNodeSet {
			target.SetNode(n.Clone())
		} else {
			target.SetString(fromVal.AsString())
		}
		return nil
	}
	if target.Kind() != XMLVar || target.Node() == nil {
		return fmt.Errorf("assign: target %s is not an XML variable", cp.ToVar)
	}
	// Evaluate the to-path relative to the target variable's document.
	// Copy the shared instance context before rebasing it on the target
	// document — the cached one must stay Node-less.
	tctx := *ctx.XPathContext()
	tctx.Node = target.Node()
	tv, err := cp.ToPath.Eval(&tctx)
	if err != nil {
		return err
	}
	tn := tv.FirstNode()
	if tn == nil {
		return fmt.Errorf("assign: to-path %q selected no node in %s", cp.ToPath.Source(), cp.ToVar)
	}
	replaceContent(tn, fromVal)
	return nil
}

// replaceContent implements BPEL copy semantics: the target node's content
// is replaced by the source value (element content for node sources,
// string content otherwise).
func replaceContent(target *xdm.Node, from xpath.Value) {
	if n := from.FirstNode(); n != nil && from.Kind == xpath.KindNodeSet && n.Kind == xdm.ElementNode {
		clone := n.Clone()
		target.Children = nil
		target.Attrs = append([]xdm.Attr(nil), clone.Attrs...)
		for _, c := range clone.Children {
			target.AppendChild(c)
		}
		return
	}
	target.SetText(from.AsString())
}

// --- Invoke ---

// FaultRetryExhausted is the BPEL-style fault name raised when an
// invoke's retry policy gives up; scope fault handlers can match it, and
// the dead-letter log records it.
const FaultRetryExhausted = "retryExhausted"

// Invoke calls a service on the engine's bus. Input parts are XPath
// expressions over the process variables; output parts map response parts
// to variables.
//
// An optional retry policy, circuit breaker, and dead-letter wiring turn
// the invoke into the resilient middleware call the surveyed products
// sell: attempts, backoff waits, and breaker transitions are surfaced as
// trace events ("attempt", "backoff", "breaker"); exhausted retries raise
// a retryExhausted fault — or, with AbsorbExhausted, degrade into the
// engine's dead-letter log and let the process continue.
type Invoke struct {
	ActivityName string
	Service      string
	Inputs       map[string]*xpath.Expr // part name -> expression
	Outputs      map[string]string      // part name -> variable name

	// Retry, when set, re-attempts transient failures under the policy.
	Retry *resilience.Policy
	// Breaker, when set, gates every attempt; it is typically shared by
	// all invokes targeting the same service across instances.
	Breaker *resilience.Breaker
	// DeadLetterKey evaluates the business key stored in dead-letter
	// records (nil: the activity name is used).
	DeadLetterKey *xpath.Expr
	// AbsorbExhausted makes an exhausted invoke degrade instead of
	// faulting: a dead letter is recorded, every output variable is set to
	// "DEADLETTERED:<key>", and the process continues.
	AbsorbExhausted bool
}

// NewInvoke builds an invoke activity.
func NewInvoke(name, service string) *Invoke {
	return &Invoke{ActivityName: name, Service: service,
		Inputs: map[string]*xpath.Expr{}, Outputs: map[string]string{}}
}

// In maps an input part to an XPath expression.
func (iv *Invoke) In(part, expr string) *Invoke {
	iv.Inputs[part] = xpath.MustCompile(expr)
	return iv
}

// Out maps a response part to a variable.
func (iv *Invoke) Out(part, variable string) *Invoke {
	iv.Outputs[part] = variable
	return iv
}

// WithRetry attaches a retry policy.
func (iv *Invoke) WithRetry(p *resilience.Policy) *Invoke {
	iv.Retry = p
	return iv
}

// WithBreaker attaches a (typically shared) circuit breaker.
func (iv *Invoke) WithBreaker(b *resilience.Breaker) *Invoke {
	iv.Breaker = b
	return iv
}

// WithDeadLetter configures the dead-letter business key expression and
// whether exhaustion is absorbed (degrade) or raised (fault).
func (iv *Invoke) WithDeadLetter(keyExpr string, absorb bool) *Invoke {
	iv.DeadLetterKey = xpath.MustCompile(keyExpr)
	iv.AbsorbExhausted = absorb
	return iv
}

// Name implements Activity.
func (iv *Invoke) Name() string { return iv.ActivityName }

// Execute implements Activity. The whole call — input evaluation, bus
// invocation under the retry policy, dead-letter handling, and output
// binding — runs as one journaled effect: its memo records the final
// output variable values (including degraded DEADLETTERED markers), so
// a recovered instance replays the response without re-invoking the
// service. Exactly-once for external effects means exactly-once
// *visible* effects: the memo is written only after the call returned,
// so a crash between effect and journal re-runs the call on recovery —
// the same at-least-once window every durable-execution system has —
// while a crash after journaling replays without touching the bus.
func (iv *Invoke) Execute(ctx *Ctx) error {
	effect := func() (map[string]string, error) {
		if err := iv.executeLive(ctx); err != nil {
			return nil, err
		}
		memo := map[string]string{}
		for _, varName := range iv.Outputs {
			v, err := ctx.Variable(varName)
			if err != nil {
				return nil, err
			}
			memo["out:"+varName] = v.String()
		}
		return memo, nil
	}
	replay := func(memo map[string]string) error {
		for k, v := range memo {
			if strings.HasPrefix(k, "out:") {
				if err := ctx.SetScalar(strings.TrimPrefix(k, "out:"), v); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return ctx.RunEffect(iv.ActivityName, journal.EffectInvoke, effect, replay)
}

// executeLive performs the actual service invocation (no journaling).
func (iv *Invoke) executeLive(ctx *Ctx) error {
	if ctx.Engine.Bus == nil {
		return fmt.Errorf("%s: engine has no service bus", iv.ActivityName)
	}
	req := wsbus.Message{}
	for part, e := range iv.Inputs {
		v, err := ctx.EvalXPath(e)
		if err != nil {
			return fmt.Errorf("%s: input %s: %w", iv.ActivityName, part, err)
		}
		req[part] = v.AsString()
	}

	resp, err := iv.call(ctx, req)
	if err != nil {
		if ab := resilience.Abandoned(err); ab != nil {
			return iv.deadLetter(ctx, ab)
		}
		return fmt.Errorf("%s: %w", iv.ActivityName, err)
	}
	for part, varName := range iv.Outputs {
		pv, ok := resp[part]
		if !ok {
			return fmt.Errorf("%s: response missing part %s", iv.ActivityName, part)
		}
		if err := ctx.SetScalar(varName, pv); err != nil {
			return err
		}
	}
	return nil
}

// call performs the bus invocation under the configured policy/breaker.
func (iv *Invoke) call(ctx *Ctx, req wsbus.Message) (wsbus.Message, error) {
	attempt := func(n int) (wsbus.Message, error) {
		if iv.Breaker != nil && !iv.Breaker.Allow() {
			return nil, resilience.RefusedError(iv.Service)
		}
		return ctx.Engine.Bus.InvokeCtx(ctx.Context(), iv.Service, req)
	}
	if iv.Retry == nil && iv.Breaker == nil {
		return attempt(1)
	}

	// Breaker accounting and trace recording both run in the observer —
	// i.e. in this goroutine, never in the abandoned goroutine of a
	// timed-out attempt.
	m := ctx.Engine.Obs().M()
	account := func(err error) {
		if iv.Breaker == nil {
			return
		}
		before := iv.Breaker.State()
		switch {
		case err == nil:
			iv.Breaker.OnSuccess()
		case errors.Is(err, resilience.ErrOpen):
			// A refused call is not a service failure.
			m.Counter("breaker.refusals").Inc()
		default:
			iv.Breaker.OnFailure()
		}
		if after := iv.Breaker.State(); after != before {
			ctx.Inst.RecordTrace(iv.ActivityName, "breaker", before.String()+"->"+after.String())
			m.Counter("breaker.transitions").Inc()
			m.Counter("breaker.transitions." + after.String()).Inc()
		}
	}
	obs := resilience.Observer{
		OnAttempt: func(n, max int) {
			m.Counter("retry.attempts").Inc()
			if max > 1 {
				ctx.Inst.RecordTrace(iv.ActivityName, "attempt", fmt.Sprintf("%d/%d %s", n, max, iv.Service))
			}
		},
		OnSuccess: func(n int) {
			account(nil)
			m.Counter("retry.successes").Inc()
		},
		OnFailure: func(n int, err error) {
			account(err)
			m.Counter("retry.failures").Inc()
		},
		OnBackoff: func(n int, d time.Duration) {
			ctx.Inst.RecordTrace(iv.ActivityName, "backoff", d.String())
			m.Counter("retry.backoffs").Inc()
			m.Histogram("retry.backoff_ms").ObserveDuration(d)
		},
	}
	resp, err := resilience.Do(iv.Retry, obs, attempt)
	if ab := resilience.Abandoned(err); ab != nil {
		m.Counter("retry.giveups").Inc()
		m.Counter("retry.giveups." + ab.Reason).Inc()
	}
	return resp, err
}

// deadLetter records an abandoned invocation and either absorbs it
// (degraded completion) or raises the retryExhausted fault.
func (iv *Invoke) deadLetter(ctx *Ctx, ab *resilience.AbandonedError) error {
	key := iv.ActivityName
	if iv.DeadLetterKey != nil {
		if v, err := ctx.EvalXPath(iv.DeadLetterKey); err == nil {
			key = v.AsString()
		}
	}
	if ctx.Engine.DeadLetters != nil {
		ctx.Engine.DeadLetters.Add(resilience.DeadLetter{
			Activity: iv.ActivityName,
			Target:   iv.Service,
			Key:      key,
			Attempts: ab.Attempts,
			Reason:   ab.Reason,
			LastErr:  fmt.Sprint(ab.Err),
		})
	}
	ctx.Inst.RecordTrace(iv.ActivityName, "dead-letter",
		fmt.Sprintf("%s after %d attempt(s) (%s): %v", key, ab.Attempts, ab.Reason, ab.Err))
	ctx.span.Set("deadletter_key", key).SetOutcome(obsv.OutcomeDeadLettered)
	if iv.AbsorbExhausted {
		for _, varName := range iv.Outputs {
			if err := ctx.SetScalar(varName, "DEADLETTERED:"+key); err != nil {
				return err
			}
		}
		return nil
	}
	return &Fault{Name: FaultRetryExhausted, Activity: iv.ActivityName, Wrapped: ab}
}

// --- Snippet ---

// Snippet embeds code directly into the process logic — the analog of
// IBM's Java-Snippets (and of Oracle's Java embedding). The paper's
// workaround realizations of the Sequential Set Access, Tuple IUD, and
// Synchronization patterns are built from these.
type Snippet struct {
	ActivityName string
	Fn           func(ctx *Ctx) error
}

// NewSnippet builds a code snippet activity.
func NewSnippet(name string, fn func(ctx *Ctx) error) *Snippet {
	return &Snippet{ActivityName: name, Fn: fn}
}

// Name implements Activity.
func (s *Snippet) Name() string { return s.ActivityName }

// Execute implements Activity.
func (s *Snippet) Execute(ctx *Ctx) error { return s.Fn(ctx) }

// --- Throw ---

// Throw raises a named fault.
type Throw struct {
	ActivityName string
	FaultName    string
}

// Name implements Activity.
func (t *Throw) Name() string { return t.ActivityName }

// Execute implements Activity.
func (t *Throw) Execute(ctx *Ctx) error {
	return &Fault{Name: t.FaultName, Activity: t.ActivityName}
}

// Fault is a named process fault.
type Fault struct {
	Name     string
	Activity string
	Wrapped  error
}

// Error implements error.
func (f *Fault) Error() string {
	msg := fmt.Sprintf("fault %s (at %s)", f.Name, f.Activity)
	if f.Wrapped != nil {
		msg += ": " + f.Wrapped.Error()
	}
	return msg
}

// Unwrap exposes the wrapped cause.
func (f *Fault) Unwrap() error { return f.Wrapped }

// --- Scope ---

// Scope groups a body with an optional fault handler, an optional
// compensation handler (registered when the scope completes successfully,
// runnable later via a Compensate activity), and an optional finally
// activity that always runs (the hook the BIS layer uses for cleanup
// statements).
type Scope struct {
	ActivityName string
	Body         Activity
	FaultHandler Activity // runs if Body faults; fault is absorbed unless the handler faults
	Compensation Activity // registered on successful completion
	Finally      Activity // always runs after body/handler
}

// Name implements Activity.
func (s *Scope) Name() string { return s.ActivityName }

// Execute implements Activity.
func (s *Scope) Execute(ctx *Ctx) error {
	sub := &Ctx{Inst: ctx.Inst, Engine: ctx.Engine, scope: &scopeFrame{parent: ctx.scope, name: s.ActivityName}, span: ctx.span, run: ctx.run}
	err := execChild(sub, s.Body)
	// A simulated crash is process death: a real crashed process runs
	// neither fault handlers nor finally blocks, so the crash error
	// propagates untouched and recovery handles the aftermath.
	if journal.IsCrash(err) {
		return err
	}
	faulted := err != nil
	if err != nil && s.FaultHandler != nil {
		ctx.Inst.recordTrace(s.ActivityName, "fault-handled", err.Error())
		err = execChild(sub, s.FaultHandler)
	}
	if s.Finally != nil {
		if ferr := execChild(sub, s.Finally); ferr != nil && err == nil {
			err = ferr
		}
	}
	// Only scopes that completed without faulting install their
	// compensation handler; a handled fault still counts as not
	// successfully completed (BPEL compensation semantics).
	if err == nil && !faulted && s.Compensation != nil {
		ctx.Inst.pushCompensation(s.ActivityName, s.Compensation)
	}
	return err
}

// Compensate runs the compensation handlers of all successfully completed
// scopes in reverse completion order (BPEL's compensate activity).
// Handlers run at most once; a handler fault aborts the remaining
// compensations.
type Compensate struct{ ActivityName string }

// Name implements Activity.
func (c *Compensate) Name() string { return c.ActivityName }

// Execute implements Activity.
func (c *Compensate) Execute(ctx *Ctx) error {
	for {
		scopeName, handler, ok := ctx.Inst.popCompensation()
		if !ok {
			return nil
		}
		ctx.Inst.recordTrace(c.ActivityName, "compensating", scopeName)
		if err := execChild(ctx, handler); err != nil {
			if journal.IsCrash(err) {
				return err
			}
			return fmt.Errorf("%s: compensating %s: %w", c.ActivityName, scopeName, err)
		}
		if rec := ctx.Inst.Engine.Journal(); rec != nil {
			if err := rec.Compensation(ctx.Inst.ID, scopeName); err != nil {
				return err
			}
		}
	}
}

// Receive binds parts of the instance's input message to process
// variables (BPEL's instantiating receive). Parts not present in the
// input are an error unless marked optional.
type Receive struct {
	ActivityName string
	Parts        map[string]string // message part -> variable name
	Optional     map[string]bool   // parts that may be absent
}

// NewReceive builds a receive activity.
func NewReceive(name string) *Receive {
	return &Receive{ActivityName: name, Parts: map[string]string{}, Optional: map[string]bool{}}
}

// Part maps an input message part to a variable.
func (r *Receive) Part(part, variable string) *Receive {
	r.Parts[part] = variable
	return r
}

// OptionalPart maps a part that may be absent from the input.
func (r *Receive) OptionalPart(part, variable string) *Receive {
	r.Parts[part] = variable
	r.Optional[part] = true
	return r
}

// Name implements Activity.
func (r *Receive) Name() string { return r.ActivityName }

// Execute implements Activity.
func (r *Receive) Execute(ctx *Ctx) error {
	msg := ctx.Inst.InputMessage()
	for part, varName := range r.Parts {
		v, ok := msg[part]
		if !ok {
			if r.Optional[part] {
				continue
			}
			return fmt.Errorf("%s: input message missing part %s", r.ActivityName, part)
		}
		if err := ctx.SetScalar(varName, v); err != nil {
			return err
		}
	}
	return nil
}

// Reply assembles the instance's output message from XPath expressions
// over the process variables (BPEL's reply).
type Reply struct {
	ActivityName string
	Parts        map[string]*xpath.Expr
}

// NewReply builds a reply activity.
func NewReply(name string) *Reply {
	return &Reply{ActivityName: name, Parts: map[string]*xpath.Expr{}}
}

// Part maps an output message part to an expression.
func (r *Reply) Part(part, expr string) *Reply {
	r.Parts[part] = xpath.MustCompile(expr)
	return r
}

// Name implements Activity.
func (r *Reply) Name() string { return r.ActivityName }

// Execute implements Activity.
func (r *Reply) Execute(ctx *Ctx) error {
	out := map[string]string{}
	for part, e := range r.Parts {
		v, err := ctx.EvalXPath(e)
		if err != nil {
			return fmt.Errorf("%s: part %s: %w", r.ActivityName, part, err)
		}
		out[part] = v.AsString()
	}
	ctx.Inst.setOutputMessage(out)
	return nil
}

// Wait pauses the process for a fixed duration (BPEL's wait activity with
// a "for" duration).
type Wait struct {
	ActivityName string
	Duration     time.Duration
}

// Name implements Activity.
func (w *Wait) Name() string { return w.ActivityName }

// Execute implements Activity. The wait is budget-aware: an instance
// deadline expiring mid-wait ends the pause immediately (the
// boundary check in execChild then stops the instance).
func (w *Wait) Execute(ctx *Ctx) error {
	done := ctx.Context().Done()
	if done == nil {
		time.Sleep(w.Duration)
		return nil
	}
	t := time.NewTimer(w.Duration)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
	return nil
}

// ActivityNames flattens the structural activity names of a tree (used by
// deployment validation and tests).
func ActivityNames(a Activity) []string {
	var out []string
	var walk func(Activity)
	walk = func(x Activity) {
		if x == nil {
			return
		}
		out = append(out, x.Name())
		switch t := x.(type) {
		case *Sequence:
			for _, c := range t.Children {
				walk(c)
			}
		case *Flow:
			for _, c := range t.Children {
				walk(c)
			}
		case *While:
			walk(t.Body)
		case *If:
			for _, b := range t.Branches {
				walk(b.Body)
			}
			walk(t.Else)
		case *Scope:
			walk(t.Body)
			walk(t.FaultHandler)
			walk(t.Compensation)
			walk(t.Finally)
		}
	}
	walk(a)
	return out
}

// describeActivity returns a short structural description for monitoring.
func describeActivity(a Activity) string {
	names := ActivityNames(a)
	return strings.Join(names, " > ")
}
