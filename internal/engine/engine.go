package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"wfsql/internal/journal"
	"wfsql/internal/obsv"
	"wfsql/internal/resilience"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
	"wfsql/internal/xdm"
	"wfsql/internal/xpath"
)

// TransactionMode distinguishes the process kinds the paper's transaction
// discussion depends on: in *short-running* processes all SQL and
// retrieve-set activities execute in a single transaction; in
// *long-running* processes each executes in its own transaction unless
// bundled by an atomic SQL sequence.
type TransactionMode int

// Process transaction modes.
const (
	LongRunning TransactionMode = iota
	ShortRunning
)

// String returns the mode name.
func (m TransactionMode) String() string {
	if m == ShortRunning {
		return "short-running"
	}
	return "long-running"
}

// Process is a deployable process model (the output of the design step in
// all three product architectures).
type Process struct {
	Name      string
	Variables []VarDecl
	Body      Activity
	Funcs     xpath.FunctionResolver // extension functions (e.g. ora:*)
	Mode      TransactionMode

	// Stack names the product architecture the process models ("BIS",
	// "WF", "Oracle") and Pattern the paper's SQL-support pattern the
	// process exercises (e.g. "P4 retrieve-set"). Both are carried on
	// every span the instance emits so traces can be sliced per stack
	// and per pattern.
	Stack   string
	Pattern string

	// OnInstanceStart hooks run before the body (the BIS layer installs
	// preparation statements and transaction setup here).
	OnInstanceStart []func(ctx *Ctx) error
}

// Engine executes deployed processes. It owns the service bus and the
// registry of named data sources the product layers resolve against.
type Engine struct {
	Bus *wsbus.Bus

	// DeadLetters collects invocations whose retries were exhausted and
	// that no fault handler absorbed — the engine-wide reliability audit
	// trail complementing the per-instance trace.
	DeadLetters *resilience.DeadLetterLog

	mu          sync.RWMutex
	dataSources map[string]*sqldb.DB
	nextID      atomic.Int64
	listeners   []func(instanceID int64, ev TraceEvent)
	jrec        *journal.Recorder
	obs         *obsv.Observability
}

// SetObservability attaches (or with nil detaches) a tracing/metrics
// bundle. The engine emits an instance span per execution and an
// activity span per activity, and propagates the bundle to its
// dead-letter log and journal recorder so their counters land in the
// same registry.
func (e *Engine) SetObservability(o *obsv.Observability) {
	e.mu.Lock()
	e.obs = o
	jrec := e.jrec
	e.mu.Unlock()
	if e.DeadLetters != nil {
		e.DeadLetters.SetObservability(o)
	}
	if jrec != nil {
		jrec.SetObservability(o)
	}
}

// Obs returns the attached observability bundle (nil if none). The
// returned bundle's accessors are nil-safe, so call sites may use
// e.Obs().T() / e.Obs().M() unconditionally.
func (e *Engine) Obs() *obsv.Observability {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.obs
}

// AddTraceListener registers a monitoring callback invoked for every
// activity trace event of every instance (the monitoring surface the
// product architectures expose). Listeners must be fast and must not
// re-enter the engine.
func (e *Engine) AddTraceListener(fn func(instanceID int64, ev TraceEvent)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.listeners = append(e.listeners, fn)
}

func (e *Engine) notifyTrace(instanceID int64, ev TraceEvent) {
	e.mu.RLock()
	ls := e.listeners
	e.mu.RUnlock()
	for _, fn := range ls {
		fn(instanceID, ev)
	}
}

// New creates an engine with the given bus (nil is allowed for processes
// that never invoke services).
func New(bus *wsbus.Bus) *Engine {
	return &Engine{
		Bus:         bus,
		DeadLetters: resilience.NewDeadLetterLog(),
		dataSources: map[string]*sqldb.DB{},
	}
}

// RegisterDataSource makes a database available under a JNDI-like name.
func (e *Engine) RegisterDataSource(name string, db *sqldb.DB) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dataSources[name] = db
}

// DataSource resolves a registered database.
func (e *Engine) DataSource(name string) (*sqldb.DB, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	db, ok := e.dataSources[name]
	if !ok {
		return nil, fmt.Errorf("engine: no data source %q registered", name)
	}
	return db, nil
}

// DataSourceNames lists registered data source names.
func (e *Engine) DataSourceNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.dataSources))
	for n := range e.dataSources {
		names = append(names, n)
	}
	return names
}

// Deployment is a validated process installed on the engine.
type Deployment struct {
	Process *Process
	Engine  *Engine
}

// Deploy validates a process model and installs it. Validation mirrors
// what the products' deployment steps check: a body exists, variable
// declarations are unique, and activity names are non-empty.
func (e *Engine) Deploy(p *Process) (*Deployment, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("engine: process must have a name")
	}
	if p.Body == nil {
		return nil, fmt.Errorf("engine: process %s has no body", p.Name)
	}
	seen := map[string]bool{}
	for _, vd := range p.Variables {
		if vd.Name == "" {
			return nil, fmt.Errorf("engine: process %s declares an unnamed variable", p.Name)
		}
		if seen[vd.Name] {
			return nil, fmt.Errorf("engine: process %s declares variable %s twice", p.Name, vd.Name)
		}
		seen[vd.Name] = true
	}
	for _, n := range ActivityNames(p.Body) {
		if n == "" {
			return nil, fmt.Errorf("engine: process %s contains an unnamed activity", p.Name)
		}
	}
	if rec := e.Journal(); rec != nil {
		if err := rec.Deploy(p.Name); err != nil {
			return nil, err
		}
	}
	return &Deployment{Process: p, Engine: e}, nil
}

// NewInstance instantiates the deployment, initializing declared
// variables and binding input values to scalar variables. With a
// journal attached, the instance ID is allocated durably and an
// instance-created record (input message + transaction mode) is
// journaled so a crashed instance can be re-instantiated on recovery.
func (d *Deployment) NewInstance(input map[string]string) (*Instance, error) {
	var id int64
	if rec := d.Engine.Journal(); rec != nil {
		id = rec.AllocateID()
	} else {
		id = d.Engine.nextID.Add(1)
	}
	return d.newInstance(id, input, true)
}

// newInstance builds an instance with a fixed ID; journalCreate
// controls whether an instance-created record is appended (false when
// resuming a recovered instance whose creation is already journaled).
func (d *Deployment) newInstance(id int64, input map[string]string, journalCreate bool) (*Instance, error) {
	in := &Instance{
		ID:      id,
		Process: d.Process,
		Engine:  d.Engine,
		vars:    map[string]*Variable{},
		context: map[string]any{},
		state:   StateReady,
	}
	for _, vd := range d.Process.Variables {
		switch vd.Kind {
		case XMLVar:
			var n *xdm.Node
			if vd.InitXML != "" {
				parsed, err := xdm.Parse(vd.InitXML)
				if err != nil {
					return nil, fmt.Errorf("engine: variable %s init: %w", vd.Name, err)
				}
				n = parsed
			}
			in.vars[vd.Name] = NewXMLVariable(vd.Name, n)
		default:
			in.vars[vd.Name] = NewScalarVariable(vd.Name, vd.Init)
		}
	}
	in.input = make(map[string]string, len(input))
	for k, v := range input {
		in.input[k] = v
	}
	// When the process starts with an explicit Receive, binding is the
	// Receive's job; otherwise inputs bind directly to declared scalar
	// variables (the convenience mode most tests and examples use).
	if !containsReceive(d.Process.Body) {
		for k, v := range input {
			pv, ok := in.vars[k]
			if !ok {
				return nil, fmt.Errorf("engine: input %s does not match a declared variable", k)
			}
			pv.SetString(v)
		}
	}
	if journalCreate {
		if rec := d.Engine.Journal(); rec != nil {
			if err := rec.InstanceCreated(in.ID, d.Process.Name, d.Process.Mode.String(), in.input); err != nil {
				return nil, err
			}
		}
	}
	return in, nil
}

// containsReceive reports whether the activity tree contains a Receive.
func containsReceive(a Activity) bool {
	found := false
	var walk func(Activity)
	walk = func(x Activity) {
		if found || x == nil {
			return
		}
		if _, ok := x.(*Receive); ok {
			found = true
			return
		}
		switch t := x.(type) {
		case *Sequence:
			for _, c := range t.Children {
				walk(c)
			}
		case *Flow:
			for _, c := range t.Children {
				walk(c)
			}
		case *While:
			walk(t.Body)
		case *If:
			for _, b := range t.Branches {
				walk(b.Body)
			}
			walk(t.Else)
		case *Scope:
			walk(t.Body)
			walk(t.FaultHandler)
			walk(t.Compensation)
			walk(t.Finally)
		}
	}
	walk(a)
	return found
}

// Run instantiates and executes the process to completion.
//
// Run is safe for concurrent use: the worker-pool instance scheduler
// (internal/sched) calls it from many goroutines against one
// deployment, the way a BPEL server drives many instances of one
// process model. Each call creates its own Instance with its own
// variable space and per-instance sqldb sessions; the deployment and
// its activity tree are read-only during execution. The input map is
// only read.
func (d *Deployment) Run(input map[string]string) (*Instance, error) {
	return d.RunCtx(context.Background(), input)
}

// RunCtx is Run with an execution budget: when ctx carries a deadline
// (or is cancelled), the instance is stopped at the next activity
// boundary — and, through the product layers, at the next bus call or
// SQL statement boundary — with ErrBudgetExceeded instead of burning a
// worker until per-attempt timeouts fire. The budget is advisory
// inside an activity (a single slow statement still completes or hits
// its own timeout); it is authoritative between activities.
func (d *Deployment) RunCtx(ctx context.Context, input map[string]string) (*Instance, error) {
	in, err := d.NewInstance(input)
	if err != nil {
		return nil, err
	}
	return in, d.Engine.executeCtx(ctx, in)
}

// ErrBudgetExceeded wraps the context error when an instance's
// execution budget expires mid-run. The instance ends Faulted (its
// completion callbacks run, so product-layer transactions roll back),
// never Crashed — a deadline is an orderly cancellation, not a death.
var ErrBudgetExceeded = errors.New("engine: instance budget exceeded")

// IsBudgetExceeded reports whether err stems from an expired instance
// budget.
func IsBudgetExceeded(err error) bool { return errors.Is(err, ErrBudgetExceeded) }

// execute runs an instance's body, firing start hooks and completion
// callbacks.
func (e *Engine) execute(in *Instance) error {
	return e.executeCtx(context.Background(), in)
}

// executeCtx runs an instance's body under an execution budget.
func (e *Engine) executeCtx(runCtx context.Context, in *Instance) error {
	in.mu.Lock()
	if in.state != StateReady {
		in.mu.Unlock()
		return fmt.Errorf("engine: instance %d already %s", in.ID, in.state)
	}
	in.state = StateRunning
	in.mu.Unlock()

	obs := e.Obs()
	span := obs.T().Start(0, obsv.KindInstance, in.Process.Name)
	if span != nil {
		span.Stack = in.Process.Stack
		span.Pattern = in.Process.Pattern
		span.Instance = in.ID
		span.Set("mode", in.Process.Mode.String())
		obs.T().SetAmbient(span.SpanID())
		defer obs.T().SetAmbient(0)
	}
	obs.M().Counter("engine.instances").Inc()

	if runCtx == nil {
		runCtx = context.Background()
	}
	ctx := &Ctx{Inst: in, Engine: e, span: span, run: runCtx}
	var err error
	for _, hook := range in.Process.OnInstanceStart {
		if err = hook(ctx); err != nil {
			break
		}
	}
	if err == nil {
		err = execChild(ctx, in.Process.Body)
	}

	// A simulated crash is process death, not a fault: no completion
	// callbacks run (their cleanup would destroy state recovery needs),
	// nothing more is journaled, and only the OnCrash hooks fire to
	// model what the *database* does when the process's connections die
	// (open transactions roll back server-side).
	if journal.IsCrash(err) {
		in.mu.Lock()
		hooks := append([]func(){}, in.crashHooks...)
		in.state = StateCrashed
		in.fault = err
		in.mu.Unlock()
		for i := len(hooks) - 1; i >= 0; i-- {
			hooks[i]()
		}
		obs.M().Counter("engine.instances.crashed").Inc()
		span.End(obsv.OutcomeCrashed)
		return err
	}

	in.mu.Lock()
	callbacks := append([]func(error){}, in.done...)
	in.mu.Unlock()
	for i := len(callbacks) - 1; i >= 0; i-- {
		callbacks[i](err)
	}

	in.mu.Lock()
	if err != nil {
		in.state = StateFaulted
		in.fault = err
	} else {
		in.state = StateCompleted
	}
	in.mu.Unlock()
	if err != nil {
		obs.M().Counter("engine.instances.faulted").Inc()
		if span != nil {
			span.Set("fault", err.Error())
		}
		span.End(obsv.OutcomeFault)
	} else {
		obs.M().Counter("engine.instances.completed").Inc()
		span.End(obsv.OutcomeOK)
	}
	if rec := e.Journal(); rec != nil {
		fault := ""
		if err != nil {
			fault = err.Error()
		}
		if jerr := rec.InstanceComplete(in.ID, fault); jerr != nil && err == nil {
			err = jerr
		}
	}
	return err
}

// Describe returns a structural one-line description of the process body
// (monitoring/tooling support).
func (d *Deployment) Describe() string {
	return fmt.Sprintf("%s [%s]: %s", d.Process.Name, d.Process.Mode, describeActivity(d.Process.Body))
}
