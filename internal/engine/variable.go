// Package engine implements a BPEL-style two-level workflow engine: the
// choreography layer (process models built from activities) over a
// function layer (services invoked through a wsbus.Bus). It is the
// execution substrate for the IBM BIS and Oracle SOA Suite product
// reproductions; Microsoft's Workflow Foundation, which is not BPEL-based,
// has its own runtime in internal/mswf.
//
// The engine supports the activity types the paper's examples rely on —
// sequence, flow, while, if, assign (with XPath expressions), invoke,
// scope with fault handling, and code snippets (the Java-snippet analog) —
// plus process variables holding XML documents or scalars, deployment
// with validation, and execution tracing.
package engine

import (
	"fmt"
	"strconv"
	"sync"

	"wfsql/internal/xdm"
	"wfsql/internal/xpath"
)

// VarKind discriminates process variable kinds.
type VarKind int

// Variable kinds: an XML document variable or a scalar (simple-type)
// variable.
const (
	XMLVar VarKind = iota
	ScalarVar
)

// Variable is a process variable instance. All accessors are safe for
// concurrent use: BPEL flow activities execute children in parallel, and
// two branches may read and write the same variable (last-writer-wins,
// which is all BPEL promises without explicit isolation scopes).
type Variable struct {
	Name string

	mu     sync.Mutex
	kind   VarKind
	node   *xdm.Node
	scalar string

	// nodeSet caches the single-node node-set XPathValue hands out, so
	// every XPath read of an XML variable does not allocate a fresh
	// one-element slice. Maintained wherever node changes; evaluation
	// never mutates a node-set slice, so sharing it is safe.
	nodeSet []*xdm.Node
}

// NewXMLVariable creates an XML variable holding the given document.
func NewXMLVariable(name string, doc *xdm.Node) *Variable {
	v := &Variable{Name: name, kind: XMLVar, node: doc}
	if doc != nil {
		v.nodeSet = []*xdm.Node{doc}
	}
	return v
}

// NewScalarVariable creates a scalar variable.
func NewScalarVariable(name, value string) *Variable {
	return &Variable{Name: name, kind: ScalarVar, scalar: value}
}

// Kind returns the variable's current kind.
func (v *Variable) Kind() VarKind {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.kind
}

// Node returns the XML document of an XML variable (nil for scalars).
func (v *Variable) Node() *xdm.Node {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.node
}

// SetNode replaces the variable's content with an XML document.
func (v *Variable) SetNode(n *xdm.Node) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.kind = XMLVar
	v.node = n
	v.scalar = ""
	if n != nil {
		v.nodeSet = []*xdm.Node{n}
	} else {
		v.nodeSet = nil
	}
}

// String returns the variable's string value (text content for XML).
func (v *Variable) String() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.kind == XMLVar {
		if v.node == nil {
			return ""
		}
		return v.node.TextContent()
	}
	return v.scalar
}

// SetString replaces the variable's content with a scalar string.
func (v *Variable) SetString(s string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.kind = ScalarVar
	v.scalar = s
	v.node = nil
	v.nodeSet = nil
}

// Int returns the variable's value as an integer.
func (v *Variable) Int() (int64, error) {
	s := v.String()
	i, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("engine: variable %s is not an integer: %q", v.Name, s)
	}
	return i, nil
}

// XPathValue exposes the variable to XPath: XML variables become
// single-node node-sets, scalars become strings.
func (v *Variable) XPathValue() xpath.Value {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.kind == XMLVar {
		return xpath.Value{Kind: xpath.KindNodeSet, Nodes: v.nodeSet}
	}
	return xpath.String(v.scalar)
}

// VarDecl declares a process variable and its initial content.
type VarDecl struct {
	Name    string
	Kind    VarKind
	InitXML string // parsed at instantiation for XML variables; may be ""
	Init    string // initial scalar value
}
