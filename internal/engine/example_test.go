package engine_test

import (
	"fmt"

	"wfsql/internal/engine"
)

// Example builds and runs a small BPEL-style process: a while loop over a
// scalar counter with XPath conditions and assigns.
func Example() {
	p := &engine.Process{
		Name: "counter",
		Variables: []engine.VarDecl{
			{Name: "i", Kind: engine.ScalarVar, Init: "0"},
			{Name: "total", Kind: engine.ScalarVar, Init: "0"},
		},
		Body: engine.NewWhile("loop", engine.Cond("$i < 4"),
			engine.NewAssign("step").
				Copy("$total + $i", "total").
				Copy("$i + 1", "i")),
	}
	e := engine.New(nil)
	d, _ := e.Deploy(p)
	in, _ := d.Run(nil)
	fmt.Println(in.MustVariable("total").String())
	// Output: 6
}

// ExampleScope demonstrates fault handling with compensation: completed
// scopes register compensation handlers that a fault handler replays in
// reverse order.
func ExampleScope() {
	step := func(n string) *engine.Scope {
		return &engine.Scope{
			ActivityName: n,
			Body: engine.NewSnippet(n+"_do", func(ctx *engine.Ctx) error {
				fmt.Println("do", n)
				return nil
			}),
			Compensation: engine.NewSnippet(n+"_undo", func(ctx *engine.Ctx) error {
				fmt.Println("undo", n)
				return nil
			}),
		}
	}
	p := &engine.Process{
		Name: "saga",
		Body: &engine.Scope{
			ActivityName: "outer",
			Body: engine.NewSequence("main",
				step("reserve"),
				step("charge"),
				&engine.Throw{ActivityName: "boom", FaultName: "shippingFailed"},
			),
			FaultHandler: &engine.Compensate{ActivityName: "undoAll"},
		},
	}
	d, _ := engine.New(nil).Deploy(p)
	d.Run(nil)
	// Output:
	// do reserve
	// do charge
	// undo charge
	// undo reserve
}
