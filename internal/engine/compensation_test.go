package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"wfsql/internal/xdm"
)

// mkScope builds a scope whose body appends "do:<n>" and whose
// compensation appends "undo:<n>" to the shared log.
func mkScope(n string, log *[]string) *Scope {
	return &Scope{
		ActivityName: "scope_" + n,
		Body: NewSnippet("do_"+n, func(ctx *Ctx) error {
			*log = append(*log, "do:"+n)
			return nil
		}),
		Compensation: NewSnippet("undo_"+n, func(ctx *Ctx) error {
			*log = append(*log, "undo:"+n)
			return nil
		}),
	}
}

func TestCompensationRunsInReverseOrder(t *testing.T) {
	var log []string
	p := &Process{
		Name: "comp",
		Body: &Scope{
			ActivityName: "outer",
			Body: NewSequence("main",
				mkScope("a", &log),
				mkScope("b", &log),
				mkScope("c", &log),
				&Throw{ActivityName: "boom", FaultName: "late"},
			),
			FaultHandler: &Compensate{ActivityName: "compensate"},
		},
	}
	in := deployAndRun(t, New(nil), p, nil)
	if in.State() != StateCompleted {
		t.Fatalf("state: %s", in.State())
	}
	want := "do:a,do:b,do:c,undo:c,undo:b,undo:a"
	if got := strings.Join(log, ","); got != want {
		t.Fatalf("log: %s, want %s", got, want)
	}
}

func TestCompensationRunsAtMostOnce(t *testing.T) {
	var log []string
	p := &Process{
		Name: "comp2",
		Body: NewSequence("main",
			mkScope("a", &log),
			&Compensate{ActivityName: "first"},
			&Compensate{ActivityName: "second"}, // nothing left to compensate
		),
	}
	deployAndRun(t, New(nil), p, nil)
	want := "do:a,undo:a"
	if got := strings.Join(log, ","); got != want {
		t.Fatalf("log: %s, want %s", got, want)
	}
}

func TestFaultedScopeRegistersNoCompensation(t *testing.T) {
	var log []string
	faulty := &Scope{
		ActivityName: "faulty",
		Body:         &Throw{ActivityName: "boom", FaultName: "x"},
		FaultHandler: &Empty{ActivityName: "absorb"},
		Compensation: NewSnippet("undo_faulty", func(ctx *Ctx) error {
			log = append(log, "undo:faulty")
			return nil
		}),
	}
	p := &Process{
		Name: "comp3",
		Body: NewSequence("main",
			mkScope("ok", &log),
			faulty,
			&Compensate{ActivityName: "compensate"},
		),
	}
	deployAndRun(t, New(nil), p, nil)
	got := strings.Join(log, ",")
	if strings.Contains(got, "undo:faulty") {
		t.Fatalf("faulted scope compensated: %s", got)
	}
	if !strings.Contains(got, "undo:ok") {
		t.Fatalf("completed scope not compensated: %s", got)
	}
}

func TestCompensationHandlerFaultAbortsChain(t *testing.T) {
	var log []string
	bad := &Scope{
		ActivityName: "bad",
		Body:         &Empty{ActivityName: "noop"},
		Compensation: &Throw{ActivityName: "boomComp", FaultName: "compFail"},
	}
	p := &Process{
		Name: "comp4",
		Body: NewSequence("main",
			mkScope("a", &log),
			bad, // registered after a, so compensated first
			&Compensate{ActivityName: "compensate"},
		),
	}
	d, _ := New(nil).Deploy(p)
	if _, err := d.Run(nil); err == nil {
		t.Fatal("expected compensation fault")
	}
	if strings.Contains(strings.Join(log, ","), "undo:a") {
		t.Fatal("chain continued past faulting handler")
	}
}

func TestWaitActivity(t *testing.T) {
	p := &Process{Name: "wait", Body: &Wait{ActivityName: "w", Duration: 10 * time.Millisecond}}
	start := time.Now()
	deployAndRun(t, New(nil), p, nil)
	if time.Since(start) < 8*time.Millisecond {
		t.Fatal("wait did not wait")
	}
}

func TestReceiveAndReply(t *testing.T) {
	p := &Process{
		Name: "rr",
		Variables: []VarDecl{
			{Name: "item", Kind: ScalarVar},
			{Name: "qty", Kind: ScalarVar},
			{Name: "note", Kind: ScalarVar, Init: "unset"},
		},
		Body: NewSequence("main",
			NewReceive("receive").
				Part("ItemID", "item").
				Part("Quantity", "qty").
				OptionalPart("Note", "note"),
			NewReply("reply").
				Part("Echo", "concat($item, ':', $qty)").
				Part("Doubled", "$qty * 2"),
		),
	}
	d, err := New(nil).Deploy(p)
	if err != nil {
		t.Fatal(err)
	}
	in, err := d.Run(map[string]string{"ItemID": "bolt", "Quantity": "7"})
	if err != nil {
		t.Fatal(err)
	}
	out := in.Output()
	if out["Echo"] != "bolt:7" || out["Doubled"] != "14" {
		t.Fatalf("output message: %v", out)
	}
	if in.MustVariable("note").String() != "unset" {
		t.Fatal("optional part overwrote default")
	}

	// Missing required part faults.
	if _, err := d.Run(map[string]string{"ItemID": "x"}); err == nil {
		t.Fatal("missing required part must fault")
	}

	// Input parts need not match variable names when a Receive exists.
	if _, err := d.Run(map[string]string{"ItemID": "a", "Quantity": "1", "Extra": "ignored"}); err != nil {
		t.Fatalf("extra message part should be allowed with Receive: %v", err)
	}
}

func TestOutputNilWithoutReply(t *testing.T) {
	p := &Process{Name: "noreply", Body: &Empty{ActivityName: "e"}}
	d, _ := New(nil).Deploy(p)
	in, _ := d.Run(nil)
	if in.Output() != nil {
		t.Fatal("output should be nil without a Reply")
	}
}

func TestCtxHelpersAndContextStore(t *testing.T) {
	p := &Process{
		Name:      "helpers",
		Variables: []VarDecl{{Name: "doc", Kind: XMLVar}, {Name: "s", Kind: ScalarVar}},
		Body: NewSnippet("use", func(ctx *Ctx) error {
			if err := ctx.SetNode("doc", xdm.MustParse("<a><b>1</b></a>")); err != nil {
				return err
			}
			ctx.Inst.SetContext("k", 42)
			if v, ok := ctx.Inst.Context("k"); !ok || v.(int) != 42 {
				return errors.New("context store failed")
			}
			if _, ok := ctx.Inst.Context("missing"); ok {
				return errors.New("missing key reported present")
			}
			if err := ctx.SetNode("missing", xdm.NewElement("x")); err == nil {
				return errors.New("SetNode on undeclared variable must fail")
			}
			if err := ctx.SetScalar("missing", "x"); err == nil {
				return errors.New("SetScalar on undeclared variable must fail")
			}
			return nil
		}),
	}
	in := deployAndRun(t, New(nil), p, nil)
	if in.MustVariable("doc").Node().ChildText("b") != "1" {
		t.Fatal("SetNode failed")
	}
}

func TestGetVariableDataBuiltin(t *testing.T) {
	p := &Process{
		Name: "gvd",
		Variables: []VarDecl{
			{Name: "doc", Kind: XMLVar, InitXML: "<a><b>7</b></a>"},
			{Name: "out", Kind: ScalarVar},
			{Name: "s", Kind: ScalarVar, Init: "scalar"},
		},
		Body: NewSequence("m",
			NewAssign("a1").Copy("bpel:getVariableData('doc', 'b')", "out"),
		),
	}
	in := deployAndRun(t, New(nil), p, nil)
	if in.MustVariable("out").String() != "7" {
		t.Fatalf("getVariableData: %q", in.MustVariable("out").String())
	}

	// Error paths: wrong arity, unknown variable, path on scalar,
	// unknown extension function with no process resolver.
	for _, expr := range []string{
		"bpel:getVariableData()",
		"bpel:getVariableData('nope')",
		"bpel:getVariableData('s', 'b')",
		"other:unknownFn(1)",
	} {
		p := &Process{
			Name:      "bad",
			Variables: []VarDecl{{Name: "s", Kind: ScalarVar}, {Name: "out", Kind: ScalarVar}},
			Body:      NewAssign("a").Copy(expr, "out"),
		}
		d, _ := New(nil).Deploy(p)
		if _, err := d.Run(nil); err == nil {
			t.Errorf("%s: expected error", expr)
		}
	}
}

func TestFlowConcurrentVariableAccess(t *testing.T) {
	// Many branches increment independent variables; the variable table
	// must tolerate concurrent access.
	var decls []VarDecl
	var branches []Activity
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("v%d", i)
		decls = append(decls, VarDecl{Name: name, Kind: ScalarVar, Init: "0"})
		branches = append(branches, NewSnippet("set_"+name, func(ctx *Ctx) error {
			for j := 0; j < 50; j++ {
				cur, err := ctx.Inst.MustVariable(name).Int()
				if err != nil {
					return err
				}
				if err := ctx.SetScalar(name, fmt.Sprint(cur+1)); err != nil {
					return err
				}
			}
			return nil
		}))
	}
	p := &Process{Name: "conc", Variables: decls, Body: NewFlow("par", branches...)}
	in := deployAndRun(t, New(nil), p, nil)
	for i := 0; i < 16; i++ {
		v, _ := in.MustVariable(fmt.Sprintf("v%d", i)).Int()
		if v != 50 {
			t.Fatalf("v%d = %d", i, v)
		}
	}
}

func TestSequenceAppendAndDataSourceNames(t *testing.T) {
	s := NewSequence("s").Append(&Empty{ActivityName: "a"}, &Empty{ActivityName: "b"})
	if len(s.Children) != 2 {
		t.Fatal("Append")
	}
	e := New(nil)
	if len(e.DataSourceNames()) != 0 {
		t.Fatal("expected no data sources")
	}
}

func TestFuncCondition(t *testing.T) {
	n := 0
	p := &Process{Name: "fc", Body: NewWhile("w",
		FuncCondition(func(ctx *Ctx) (bool, error) { return n < 3, nil }),
		NewSnippet("inc", func(ctx *Ctx) error { n++; return nil }))}
	deployAndRun(t, New(nil), p, nil)
	if n != 3 {
		t.Fatalf("iterations: %d", n)
	}
}

func TestFaultUnwrap(t *testing.T) {
	inner := errors.New("root cause")
	f := &Fault{Name: "x", Activity: "a", Wrapped: inner}
	if !errors.Is(f, inner) {
		t.Fatal("Unwrap")
	}
	if !strings.Contains(f.Error(), "root cause") {
		t.Fatalf("Error(): %s", f.Error())
	}
}
