package engine

import (
	"fmt"
	"strings"

	"wfsql/internal/journal"
	"wfsql/internal/obsv"
	"wfsql/internal/resilience"
	"wfsql/internal/xdm"
)

// This file wires the engine to the durable instance journal
// (internal/journal): the runtime-database role the paper ascribes to
// BIS's navigator. With a journal attached, every instance creation,
// effectful activity result, variable write, compensation, dead letter
// and completion is written ahead to the WAL, and crashed instances
// can be resumed by deterministic replay: completed effects are
// re-applied from their memoized results (no duplicated side effects),
// and execution picks up live at the first un-journaled activity.

// AttachJournal connects a recorder to the engine. It restores the
// persisted dead-letter log and installs persistence hooks so future
// dead letters (and requeues) are journaled.
func (e *Engine) AttachJournal(rec *journal.Recorder) {
	e.mu.Lock()
	e.jrec = rec
	obs := e.obs
	e.mu.Unlock()
	if rec == nil {
		return
	}
	if obs != nil {
		rec.SetObservability(obs)
	}
	if e.DeadLetters == nil {
		return
	}
	restoreDeadLetters(e.DeadLetters, rec)
}

// Journal returns the attached recorder (nil when running purely in
// memory).
func (e *Engine) Journal() *journal.Recorder {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.jrec
}

// restoreDeadLetters seeds a dead-letter log from the journal's
// persisted records and installs the persist/remove hooks. Shared by
// the BPEL engine and the WF runtime.
func restoreDeadLetters(log *resilience.DeadLetterLog, rec *journal.Recorder) {
	var entries []resilience.DeadLetter
	for _, d := range rec.DeadLetters() {
		entries = append(entries, resilience.DeadLetter{
			Seq:      int(d.Seq),
			Activity: d.Activity,
			Target:   d.Target,
			Key:      d.Key,
			Attempts: d.Attempts,
			Reason:   d.Reason,
			LastErr:  d.LastErr,
		})
	}
	log.Restore(entries)
	log.SetPersistence(
		func(dl resilience.DeadLetter) {
			_ = rec.DeadLetter(0, journal.DeadLetterRecord{
				Seq:      int64(dl.Seq),
				Time:     dl.Time.UTC().Format("2006-01-02T15:04:05.999999999Z"),
				Activity: dl.Activity,
				Target:   dl.Target,
				Key:      dl.Key,
				Attempts: dl.Attempts,
				Reason:   dl.Reason,
				LastErr:  dl.LastErr,
			})
		},
		func(key string) { _ = rec.RequeueDeadLetter(key) },
	)
}

// RunEffect is the journal-then-effect protocol every effectful
// activity (invoke, SQL) routes through.
//
// Replay mode: if the instance was resumed from a journal and a memo
// for this activity is queued, the effect is NOT executed; replay
// re-applies the memoized result and the activity completes with
// identical visible state and zero repeated side effects.
//
// Live mode: the three chaos crash points bracket the two writes —
//
//	crash?(before-journal)
//	journal activity-start
//	crash?(after-journal-before-effect)
//	effect()                      -> memo
//	journal activity-complete(memo)
//	crash?(after-effect)
//
// so recovery semantics are exercised at every interleaving a real
// crash can produce. With no journal attached the effect runs bare.
func (c *Ctx) RunEffect(activity, effectKind string, effect func() (map[string]string, error), replay func(memo map[string]string) error) error {
	in := c.Inst
	occ := in.nextOccurrence(activity)
	if m, ok := in.takeReplay(activity); ok {
		if err := replay(m.Data); err != nil {
			return fmt.Errorf("%s: replay: %w", activity, err)
		}
		in.recordTrace(activity, "replayed", fmt.Sprintf("occurrence %d from journal", occ))
		c.span.Set("effect", effectKind).SetOutcome(obsv.OutcomeReplayed)
		c.Engine.Obs().M().Counter("journal.replays").Inc()
		return nil
	}
	rec := in.Engine.Journal()
	if rec == nil {
		_, err := effect()
		return err
	}
	if ce := rec.ShouldCrash(in.ID, activity, journal.CrashBeforeJournal); ce != nil {
		return ce
	}
	if err := rec.ActivityStart(in.ID, activity, occ, effectKind); err != nil {
		return err
	}
	if ce := rec.ShouldCrash(in.ID, activity, journal.CrashAfterJournalBeforeEffect); ce != nil {
		return ce
	}
	memo, err := effect()
	if err != nil {
		return err
	}
	if err := rec.ActivityComplete(in.ID, activity, occ, effectKind, memo); err != nil {
		return err
	}
	if ce := rec.ShouldCrash(in.ID, activity, journal.CrashAfterEffect); ce != nil {
		return ce
	}
	return nil
}

// JournaledActivity wraps an arbitrary activity as a journaled effect:
// on completion the listed variables are captured into the memo, and on
// replay they are restored without re-executing the inner activity.
// This is how effects embedded in otherwise-generic activities (e.g.
// Oracle's ora:processXSQL inside an Assign) become exactly-once.
type JournaledActivity struct {
	Inner      Activity
	EffectKind string
	Captures   []string
}

// Journaled wraps inner as a journaled effect capturing the named
// variables.
func Journaled(inner Activity, effectKind string, captures ...string) *JournaledActivity {
	return &JournaledActivity{Inner: inner, EffectKind: effectKind, Captures: captures}
}

// Name implements Activity (transparent: the wrapper keeps the inner
// activity's name so journal records and traces line up).
func (j *JournaledActivity) Name() string { return j.Inner.Name() }

// Execute implements Activity.
func (j *JournaledActivity) Execute(ctx *Ctx) error {
	effect := func() (map[string]string, error) {
		if err := j.Inner.Execute(ctx); err != nil {
			return nil, err
		}
		memo := map[string]string{}
		for _, name := range j.Captures {
			v, err := ctx.Variable(name)
			if err != nil {
				return nil, err
			}
			if v.Kind() == XMLVar {
				if n := v.Node(); n != nil {
					memo["x:"+name] = n.String()
				} else {
					memo["x:"+name] = ""
				}
			} else {
				memo["s:"+name] = v.String()
			}
		}
		return memo, nil
	}
	replay := func(memo map[string]string) error {
		for k, val := range memo {
			switch {
			case strings.HasPrefix(k, "s:"):
				if err := ctx.SetScalar(k[2:], val); err != nil {
					return err
				}
			case strings.HasPrefix(k, "x:"):
				if val == "" {
					continue
				}
				n, err := xdm.Parse(val)
				if err != nil {
					return fmt.Errorf("memoized document for %s: %w", k[2:], err)
				}
				if err := ctx.SetNode(k[2:], n); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return ctx.RunEffect(j.Inner.Name(), j.EffectKind, effect, replay)
}

// Resume rebuilds an instance from its journal and executes it to
// completion. Completed effects replay from their memos; execution
// goes live at the first activity without one. The caller must resume
// on an engine whose journal contains (or is) the journal the instance
// was recovered from, so newly executed activities append to the same
// history.
func (d *Deployment) Resume(ij *journal.InstanceJournal) (*Instance, error) {
	if ij.Process != d.Process.Name {
		return nil, fmt.Errorf("engine: instance %d belongs to process %s, not %s", ij.ID, ij.Process, d.Process.Name)
	}
	in, err := d.newInstance(ij.ID, ij.Input, false)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	in.replay = make(map[string][]journal.Memo, len(ij.Memos))
	total := 0
	for act, memos := range ij.Memos {
		in.replay[act] = append([]journal.Memo(nil), memos...)
		total += len(memos)
	}
	in.mu.Unlock()
	in.recordTrace(d.Process.Name, "recovering", fmt.Sprintf("instance %d: %d memoized effect(s)", ij.ID, total))
	return in, d.Engine.execute(in)
}

// Recover resumes every in-flight instance found in the recorder,
// matching each to its deployment by process name. It returns the
// resumed instances; instances whose process has no deployment are
// reported as errors but do not stop recovery of the others.
func Recover(rec *journal.Recorder, deployments map[string]*Deployment) ([]*Instance, error) {
	var (
		out     []*Instance
		firstEr error
	)
	for _, ij := range rec.InFlight() {
		dep, ok := deployments[ij.Process]
		if !ok {
			if firstEr == nil {
				firstEr = fmt.Errorf("engine: no deployment for recovered process %s (instance %d)", ij.Process, ij.ID)
			}
			continue
		}
		in, err := dep.Resume(ij)
		if in != nil {
			out = append(out, in)
		}
		if err != nil && firstEr == nil {
			firstEr = err
		}
	}
	return out, firstEr
}
