// Package dataset reimplements the ADO.NET client-side data model the
// paper's Microsoft Workflow Foundation discussion depends on: a DataSet
// is a cache for relational data on the client side that holds no
// connection to the original data, with per-row change tracking
// (Unchanged / Added / Modified / Deleted) and a DataAdapter that fills
// the cache from a query and synchronizes accumulated changes back to the
// source by generating INSERT, UPDATE, and DELETE statements.
//
// In the paper's taxonomy, Fill realizes the Set Retrieval Pattern;
// row access realizes Sequential and Random Set Access; the row mutators
// realize the Tuple IUD Pattern; and Update realizes the Synchronization
// Pattern.
package dataset

import (
	"fmt"
	"strings"

	"wfsql/internal/sqldb"
)

// RowState tracks the change state of a DataRow.
type RowState int

// Row states, mirroring ADO.NET's DataRowState.
const (
	Unchanged RowState = iota
	Added
	Modified
	Deleted
)

// String returns the state name.
func (s RowState) String() string {
	switch s {
	case Unchanged:
		return "Unchanged"
	case Added:
		return "Added"
	case Modified:
		return "Modified"
	case Deleted:
		return "Deleted"
	}
	return "Unknown"
}

// DataRow is one cached tuple with change tracking.
type DataRow struct {
	table    *DataTable
	current  []sqldb.Value
	original []sqldb.Value // nil until first modification
	state    RowState
}

// State returns the row's change state.
func (r *DataRow) State() RowState { return r.state }

// Get returns the value of the named column.
func (r *DataRow) Get(column string) (sqldb.Value, error) {
	ci := r.table.ColumnIndex(column)
	if ci < 0 {
		return sqldb.Null(), fmt.Errorf("dataset: no column %s in table %s", column, r.table.Name)
	}
	return r.current[ci], nil
}

// MustGet returns the value of the named column, panicking on unknown
// columns (mirrors ADO.NET's indexer exception).
func (r *DataRow) MustGet(column string) sqldb.Value {
	v, err := r.Get(column)
	if err != nil {
		panic(err)
	}
	return v
}

// Set updates the named column, transitioning Unchanged rows to Modified.
func (r *DataRow) Set(column string, v sqldb.Value) error {
	if r.state == Deleted {
		return fmt.Errorf("dataset: cannot modify a deleted row")
	}
	ci := r.table.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("dataset: no column %s in table %s", column, r.table.Name)
	}
	if r.state == Unchanged {
		r.original = append([]sqldb.Value(nil), r.current...)
		r.state = Modified
	}
	r.current[ci] = v
	return nil
}

// Delete marks the row deleted. Added rows are removed outright (they
// never existed at the source).
func (r *DataRow) Delete() {
	if r.state == Added {
		r.table.removeRow(r)
		return
	}
	if r.state == Unchanged {
		r.original = append([]sqldb.Value(nil), r.current...)
	}
	r.state = Deleted
}

// Values returns a copy of the row's current values.
func (r *DataRow) Values() []sqldb.Value {
	return append([]sqldb.Value(nil), r.current...)
}

// AcceptRow commits this row's pending state (the per-row counterpart of
// DataTable.AcceptChanges): a Deleted row is removed from its table,
// Added and Modified rows become Unchanged.
func (r *DataRow) AcceptRow() {
	if r.state == Deleted {
		r.table.removeRow(r)
		return
	}
	r.state = Unchanged
	r.original = nil
}

// DataTable is one cached table of a DataSet.
type DataTable struct {
	Name       string
	Columns    []string
	PrimaryKey []string
	rows       []*DataRow // includes Deleted rows until AcceptChanges
}

// NewDataTable creates an empty table with the given columns.
func NewDataTable(name string, columns ...string) *DataTable {
	return &DataTable{Name: name, Columns: columns}
}

// ColumnIndex returns the position of the named column, or -1.
func (t *DataTable) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// AddRow appends a new row in state Added.
func (t *DataTable) AddRow(values ...sqldb.Value) (*DataRow, error) {
	if len(values) != len(t.Columns) {
		return nil, fmt.Errorf("dataset: table %s expects %d values, got %d", t.Name, len(t.Columns), len(values))
	}
	r := &DataRow{table: t, current: append([]sqldb.Value(nil), values...), state: Added}
	t.rows = append(t.rows, r)
	return r, nil
}

// loadRow appends a row in state Unchanged (used by Fill).
func (t *DataTable) loadRow(values []sqldb.Value) *DataRow {
	r := &DataRow{table: t, current: append([]sqldb.Value(nil), values...), state: Unchanged}
	t.rows = append(t.rows, r)
	return r
}

func (t *DataTable) removeRow(r *DataRow) {
	for i, rr := range t.rows {
		if rr == r {
			t.rows = append(t.rows[:i], t.rows[i+1:]...)
			return
		}
	}
}

// Rows returns the live (non-deleted) rows in order — the sequential
// access surface the WF while activity iterates over.
func (t *DataTable) Rows() []*DataRow {
	var out []*DataRow
	for _, r := range t.rows {
		if r.state != Deleted {
			out = append(out, r)
		}
	}
	return out
}

// AllRows returns every tracked row including deleted ones.
func (t *DataTable) AllRows() []*DataRow {
	return append([]*DataRow(nil), t.rows...)
}

// Count returns the number of live rows.
func (t *DataTable) Count() int { return len(t.Rows()) }

// Row returns the i-th live row (random access), or an error.
func (t *DataTable) Row(i int) (*DataRow, error) {
	rows := t.Rows()
	if i < 0 || i >= len(rows) {
		return nil, fmt.Errorf("dataset: row %d out of range (0..%d)", i, len(rows)-1)
	}
	return rows[i], nil
}

// Select returns live rows matching the predicate (ADO.NET's
// DataTable.Select with a Go predicate instead of a filter string).
func (t *DataTable) Select(pred func(*DataRow) bool) []*DataRow {
	var out []*DataRow
	for _, r := range t.Rows() {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Find locates a live row by primary key values.
func (t *DataTable) Find(keys ...sqldb.Value) (*DataRow, error) {
	if len(t.PrimaryKey) == 0 {
		return nil, fmt.Errorf("dataset: table %s has no primary key", t.Name)
	}
	if len(keys) != len(t.PrimaryKey) {
		return nil, fmt.Errorf("dataset: table %s has %d key column(s), got %d values", t.Name, len(t.PrimaryKey), len(keys))
	}
	idx := make([]int, len(t.PrimaryKey))
	for i, k := range t.PrimaryKey {
		ci := t.ColumnIndex(k)
		if ci < 0 {
			return nil, fmt.Errorf("dataset: key column %s missing", k)
		}
		idx[i] = ci
	}
	for _, r := range t.Rows() {
		match := true
		for i, ci := range idx {
			if !r.current[ci].Equal(keys[i]) {
				match = false
				break
			}
		}
		if match {
			return r, nil
		}
	}
	return nil, nil
}

// Changes returns the rows in each changed state.
func (t *DataTable) Changes() (added, modified, deleted []*DataRow) {
	for _, r := range t.rows {
		switch r.state {
		case Added:
			added = append(added, r)
		case Modified:
			modified = append(modified, r)
		case Deleted:
			deleted = append(deleted, r)
		}
	}
	return
}

// HasChanges reports whether any row is in a changed state.
func (t *DataTable) HasChanges() bool {
	a, m, d := t.Changes()
	return len(a)+len(m)+len(d) > 0
}

// AcceptChanges commits all pending states: deleted rows vanish, added and
// modified rows become Unchanged.
func (t *DataTable) AcceptChanges() {
	var kept []*DataRow
	for _, r := range t.rows {
		if r.state == Deleted {
			continue
		}
		r.state = Unchanged
		r.original = nil
		kept = append(kept, r)
	}
	t.rows = kept
}

// RejectChanges rolls the cache back to the last accepted state.
func (t *DataTable) RejectChanges() {
	var kept []*DataRow
	for _, r := range t.rows {
		switch r.state {
		case Added:
			continue // never existed
		case Modified, Deleted:
			r.current = r.original
			r.original = nil
			r.state = Unchanged
		}
		kept = append(kept, r)
	}
	t.rows = kept
}

// DataSet is a named collection of cached tables.
type DataSet struct {
	tables map[string]*DataTable
	order  []string
}

// New creates an empty DataSet.
func New() *DataSet { return &DataSet{tables: map[string]*DataTable{}} }

// Table returns the named table, or nil.
func (ds *DataSet) Table(name string) *DataTable {
	return ds.tables[strings.ToLower(name)]
}

// AddTable installs a table (replacing any same-named one).
func (ds *DataSet) AddTable(t *DataTable) {
	key := strings.ToLower(t.Name)
	if _, exists := ds.tables[key]; !exists {
		ds.order = append(ds.order, key)
	}
	ds.tables[key] = t
}

// TableNames lists tables in insertion order.
func (ds *DataSet) TableNames() []string {
	out := make([]string, 0, len(ds.order))
	for _, k := range ds.order {
		out = append(out, ds.tables[k].Name)
	}
	return out
}

// String renders the DataSet compactly: each table with its rows and
// change states.
func (ds *DataSet) String() string {
	var b strings.Builder
	for i, tn := range ds.TableNames() {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(ds.Table(tn).String())
	}
	return b.String()
}

// String renders the table as name[rows...] with change states on
// non-unchanged rows.
func (t *DataTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s){", t.Name, strings.Join(t.Columns, ","))
	for i, r := range t.rows {
		if i > 0 {
			b.WriteString(" ")
		}
		vals := make([]string, len(r.current))
		for j, v := range r.current {
			vals[j] = v.String()
		}
		b.WriteString(strings.Join(vals, ","))
		if r.state != Unchanged {
			fmt.Fprintf(&b, "[%s]", r.state)
		}
	}
	b.WriteString("}")
	return b.String()
}
