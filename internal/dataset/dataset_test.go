package dataset

import (
	"strings"
	"testing"
	"testing/quick"

	"wfsql/internal/sqldb"
)

func seedDB(t testing.TB) *sqldb.DB {
	t.Helper()
	db := sqldb.Open("src")
	db.MustExec("CREATE TABLE Items (ItemID VARCHAR PRIMARY KEY, Quantity INTEGER NOT NULL)")
	db.MustExec("INSERT INTO Items VALUES ('bolt', 15), ('nut', 3), ('screw', 2)")
	return db
}

func adapter(db *sqldb.DB) *DataAdapter {
	return &DataAdapter{
		DB:         db,
		SelectSQL:  "SELECT ItemID, Quantity FROM Items ORDER BY ItemID",
		Table:      "Items",
		KeyColumns: []string{"ItemID"},
	}
}

func TestFill(t *testing.T) {
	db := seedDB(t)
	ds := New()
	n, err := adapter(db).Fill(ds, "Items")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("filled %d rows", n)
	}
	tab := ds.Table("Items")
	if tab == nil || tab.Count() != 3 {
		t.Fatal("table missing or wrong size")
	}
	for _, r := range tab.Rows() {
		if r.State() != Unchanged {
			t.Fatalf("fill state: %s", r.State())
		}
	}
	// The cache holds no connection to the source: a source change is not
	// visible in the cache.
	db.MustExec("UPDATE Items SET Quantity = 999 WHERE ItemID = 'bolt'")
	r, _ := tab.Find(sqldb.Str("bolt"))
	if got := r.MustGet("Quantity").I; got != 15 {
		t.Fatalf("cache should be disconnected; got %d", got)
	}
}

func TestRowStateTransitions(t *testing.T) {
	db := seedDB(t)
	ds := New()
	adapter(db).Fill(ds, "Items")
	tab := ds.Table("Items")

	r, _ := tab.Find(sqldb.Str("nut"))
	if err := r.Set("Quantity", sqldb.Int(30)); err != nil {
		t.Fatal(err)
	}
	if r.State() != Modified {
		t.Fatalf("state after set: %s", r.State())
	}

	added, _ := tab.AddRow(sqldb.Str("washer"), sqldb.Int(9))
	if added.State() != Added {
		t.Fatalf("state after add: %s", added.State())
	}

	victim, _ := tab.Find(sqldb.Str("screw"))
	victim.Delete()
	if victim.State() != Deleted {
		t.Fatalf("state after delete: %s", victim.State())
	}
	if tab.Count() != 3 { // bolt, nut, washer
		t.Fatalf("live count: %d", tab.Count())
	}

	// Deleting an Added row removes it outright.
	added.Delete()
	if tab.Count() != 2 {
		t.Fatalf("live count after removing added: %d", tab.Count())
	}

	// Modifying a deleted row is rejected.
	if err := victim.Set("Quantity", sqldb.Int(1)); err == nil {
		t.Fatal("expected error modifying deleted row")
	}
}

func TestRejectChanges(t *testing.T) {
	db := seedDB(t)
	ds := New()
	adapter(db).Fill(ds, "Items")
	tab := ds.Table("Items")
	r, _ := tab.Find(sqldb.Str("bolt"))
	r.Set("Quantity", sqldb.Int(1000))
	tab.AddRow(sqldb.Str("new"), sqldb.Int(1))
	victim, _ := tab.Find(sqldb.Str("nut"))
	victim.Delete()

	tab.RejectChanges()
	if tab.Count() != 3 {
		t.Fatalf("count after reject: %d", tab.Count())
	}
	r, _ = tab.Find(sqldb.Str("bolt"))
	if r.MustGet("Quantity").I != 15 {
		t.Fatalf("value after reject: %v", r.MustGet("Quantity"))
	}
	if tab.HasChanges() {
		t.Fatal("changes should be gone after reject")
	}
}

func TestSynchronization(t *testing.T) {
	db := seedDB(t)
	ds := New()
	a := adapter(db)
	a.Fill(ds, "Items")
	tab := ds.Table("Items")

	// Tuple IUD on the cache.
	r, _ := tab.Find(sqldb.Str("bolt"))
	r.Set("Quantity", sqldb.Int(100))
	tab.AddRow(sqldb.Str("washer"), sqldb.Int(7))
	victim, _ := tab.Find(sqldb.Str("screw"))
	victim.Delete()

	n, err := a.Update(ds, "Items")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("rows written: %d", n)
	}

	// Source must reflect all three operations.
	res := db.MustExec("SELECT ItemID, Quantity FROM Items ORDER BY ItemID")
	var got []string
	for _, row := range res.Rows {
		got = append(got, row[0].S+":"+row[1].String())
	}
	want := "bolt:100,nut:3,washer:7"
	if strings.Join(got, ",") != want {
		t.Fatalf("source after sync: %v", got)
	}

	// Cache states are accepted.
	if tab.HasChanges() {
		t.Fatal("changes should be accepted after update")
	}
	if tab.Count() != 3 {
		t.Fatalf("cache rows after accept: %d", tab.Count())
	}
}

func TestUpdateNoChangesIsNoop(t *testing.T) {
	db := seedDB(t)
	ds := New()
	a := adapter(db)
	a.Fill(ds, "Items")
	n, err := a.Update(ds, "Items")
	if err != nil || n != 0 {
		t.Fatalf("noop update: n=%d err=%v", n, err)
	}
}

func TestConcurrencyViolation(t *testing.T) {
	db := seedDB(t)
	ds := New()
	a := adapter(db)
	a.Fill(ds, "Items")
	tab := ds.Table("Items")
	r, _ := tab.Find(sqldb.Str("bolt"))
	r.Set("Quantity", sqldb.Int(50))

	// Someone deletes the source row out from under the cache.
	db.MustExec("DELETE FROM Items WHERE ItemID = 'bolt'")

	if _, err := a.Update(ds, "Items"); err == nil || !strings.Contains(err.Error(), "concurrency violation") {
		t.Fatalf("expected concurrency violation, got %v", err)
	}
	// The failed sync must not partially apply.
	res := db.MustExec("SELECT COUNT(*) FROM Items")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("source mutated by failed sync: %v", res.Rows[0][0])
	}
	// The cache still has its pending change for retry.
	if !tab.HasChanges() {
		t.Fatal("pending change lost")
	}
}

func TestUpdateIsAtomic(t *testing.T) {
	db := seedDB(t)
	ds := New()
	a := adapter(db)
	a.Fill(ds, "Items")
	tab := ds.Table("Items")
	// First change is fine; second violates the PK at the source.
	r, _ := tab.Find(sqldb.Str("nut"))
	r.Set("Quantity", sqldb.Int(77))
	tab.AddRow(sqldb.Str("bolt"), sqldb.Int(1)) // duplicate key at source

	if _, err := a.Update(ds, "Items"); err == nil {
		t.Fatal("expected PK violation")
	}
	res := db.MustExec("SELECT Quantity FROM Items WHERE ItemID = 'nut'")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("partial sync leaked: %v", res.Rows[0][0])
	}
}

func TestSelectAndFindAndRandomAccess(t *testing.T) {
	db := seedDB(t)
	ds := New()
	adapter(db).Fill(ds, "Items")
	tab := ds.Table("Items")

	big := tab.Select(func(r *DataRow) bool { return r.MustGet("Quantity").I > 2 })
	if len(big) != 2 {
		t.Fatalf("select: %d", len(big))
	}
	r, err := tab.Find(sqldb.Str("screw"))
	if err != nil || r == nil {
		t.Fatalf("find: %v %v", r, err)
	}
	missing, err := tab.Find(sqldb.Str("gone"))
	if err != nil || missing != nil {
		t.Fatalf("find missing: %v %v", missing, err)
	}
	row1, err := tab.Row(1)
	if err != nil || row1.MustGet("ItemID").S != "nut" {
		t.Fatalf("random access: %v %v", row1, err)
	}
	if _, err := tab.Row(99); err == nil {
		t.Fatal("expected range error")
	}
}

func TestDataSetTables(t *testing.T) {
	ds := New()
	ds.AddTable(NewDataTable("A", "x"))
	ds.AddTable(NewDataTable("B", "y"))
	if ds.Table("a") == nil || ds.Table("B") == nil {
		t.Fatal("case-insensitive table lookup failed")
	}
	names := ds.TableNames()
	if len(names) != 2 || names[0] != "A" {
		t.Fatalf("table names: %v", names)
	}
}

func TestFindErrors(t *testing.T) {
	tab := NewDataTable("t", "a", "b")
	if _, err := tab.Find(sqldb.Int(1)); err == nil {
		t.Fatal("expected no-PK error")
	}
	tab.PrimaryKey = []string{"a"}
	if _, err := tab.Find(sqldb.Int(1), sqldb.Int(2)); err == nil {
		t.Fatal("expected arity error")
	}
}

// Property: for any sequence of cache edits, Update followed by a fresh
// Fill yields a cache equal to the edited one (source and cache converge).
func TestQuickSyncConvergence(t *testing.T) {
	f := func(ops []uint8) bool {
		db := sqldb.Open("q")
		db.MustExec("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER NOT NULL)")
		for i := 0; i < 5; i++ {
			db.MustExec("INSERT INTO T VALUES (?, ?)", sqldb.Int(int64(i)), sqldb.Int(int64(i*10)))
		}
		a := &DataAdapter{DB: db, SelectSQL: "SELECT K, V FROM T ORDER BY K", Table: "T", KeyColumns: []string{"K"}}
		ds := New()
		if _, err := a.Fill(ds, "T"); err != nil {
			return false
		}
		tab := ds.Table("T")
		nextKey := int64(100)
		for _, op := range ops {
			rows := tab.Rows()
			switch op % 3 {
			case 0: // modify
				if len(rows) > 0 {
					rows[int(op)%len(rows)].Set("V", sqldb.Int(int64(op)))
				}
			case 1: // add
				tab.AddRow(sqldb.Int(nextKey), sqldb.Int(int64(op)))
				nextKey++
			case 2: // delete
				if len(rows) > 0 {
					rows[int(op)%len(rows)].Delete()
				}
			}
		}
		if _, err := a.Update(ds, "T"); err != nil {
			return false
		}
		// Re-fill into a fresh DataSet and compare.
		ds2 := New()
		if _, err := a.Fill(ds2, "T"); err != nil {
			return false
		}
		t1, t2 := tab.Rows(), ds2.Table("T").Rows()
		if len(t1) != len(t2) {
			return false
		}
		seen := map[int64]int64{}
		for _, r := range t1 {
			seen[r.MustGet("K").I] = r.MustGet("V").I
		}
		for _, r := range t2 {
			if seen[r.MustGet("K").I] != r.MustGet("V").I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRowStateStrings(t *testing.T) {
	states := map[RowState]string{
		Unchanged: "Unchanged", Added: "Added", Modified: "Modified", Deleted: "Deleted",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if RowState(99).String() != "Unknown" {
		t.Error("unknown state name")
	}
}

func TestValuesAndAllRows(t *testing.T) {
	tab := NewDataTable("t", "a", "b")
	r, _ := tab.AddRow(sqldb.Int(1), sqldb.Str("x"))
	vals := r.Values()
	vals[0] = sqldb.Int(99) // mutation of the copy must not leak
	if r.MustGet("a").I != 1 {
		t.Fatal("Values returned a live slice")
	}
	r.Delete() // Added row removed outright
	if len(tab.AllRows()) != 0 {
		t.Fatal("AllRows after removing added row")
	}
	tab2 := NewDataTable("t2", "a")
	r2, _ := tab2.AddRow(sqldb.Int(1))
	r2.AcceptRow()
	if r2.State() != Unchanged {
		t.Fatal("AcceptRow on added row")
	}
	r2.Delete()
	r2.AcceptRow()
	if len(tab2.AllRows()) != 0 {
		t.Fatal("AcceptRow on deleted row should remove it")
	}
}

func TestStringRendering(t *testing.T) {
	ds := New()
	tab := NewDataTable("Items", "ItemID", "Stock")
	ds.AddTable(tab)
	tab.AddRow(sqldb.Str("bolt"), sqldb.Int(3))
	s := ds.String()
	if !strings.Contains(s, "Items(ItemID,Stock)") || !strings.Contains(s, "bolt,3[Added]") {
		t.Fatalf("rendering: %s", s)
	}
}

func TestAddRowArityError(t *testing.T) {
	tab := NewDataTable("t", "a", "b")
	if _, err := tab.AddRow(sqldb.Int(1)); err == nil {
		t.Fatal("arity mismatch must error")
	}
}
