package dataset_test

import (
	"fmt"

	"wfsql/internal/dataset"
	"wfsql/internal/sqldb"
)

// Example shows the disconnected-cache lifecycle: Fill, local edits with
// change tracking, and synchronization back to the source.
func Example() {
	db := sqldb.Open("src")
	db.MustExec("CREATE TABLE Items (ItemID VARCHAR PRIMARY KEY, Stock INTEGER)")
	db.MustExec("INSERT INTO Items VALUES ('bolt', 100), ('nut', 50)")

	adapter := &dataset.DataAdapter{
		DB:         db,
		SelectSQL:  "SELECT ItemID, Stock FROM Items ORDER BY ItemID",
		Table:      "Items",
		KeyColumns: []string{"ItemID"},
	}
	ds := dataset.New()
	adapter.Fill(ds, "Items")

	tab := ds.Table("Items")
	row, _ := tab.Find(sqldb.Str("bolt"))
	row.Set("Stock", sqldb.Int(75))
	tab.AddRow(sqldb.Str("washer"), sqldb.Int(10))

	n, _ := adapter.Update(ds, "Items")
	fmt.Println("synchronized rows:", n)
	fmt.Print(db.MustExec("SELECT ItemID, Stock FROM Items ORDER BY ItemID"))
	// Output:
	// synchronized rows: 2
	// ItemID | Stock
	// -------+------
	// bolt   | 75
	// nut    | 50
	// washer | 10
}
