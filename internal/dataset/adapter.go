package dataset

import (
	"fmt"
	"strings"

	"wfsql/internal/sqldb"
)

// DataAdapter moves data between a sqldb database and a DataSet cache,
// mirroring ADO.NET's DbDataAdapter: Fill materializes a query result into
// the cache (Set Retrieval Pattern); Update pushes accumulated row changes
// back by generating INSERT/UPDATE/DELETE statements (Synchronization
// Pattern).
type DataAdapter struct {
	DB         *sqldb.DB
	SelectSQL  string   // query used by Fill
	Table      string   // source table targeted by Update
	KeyColumns []string // key columns for UPDATE/DELETE predicates
}

// Fill executes SelectSQL and loads the result into the named DataSet
// table (created if absent). It returns the number of rows loaded.
func (a *DataAdapter) Fill(ds *DataSet, tableName string, params ...sqldb.Value) (int, error) {
	if a.DB == nil {
		return 0, fmt.Errorf("dataset: adapter has no database")
	}
	res, err := a.DB.Session().Query(a.SelectSQL, params...)
	if err != nil {
		return 0, fmt.Errorf("dataset: fill: %w", err)
	}
	t := ds.Table(tableName)
	if t == nil {
		t = NewDataTable(tableName, res.Columns...)
		t.PrimaryKey = append([]string(nil), a.KeyColumns...)
		ds.AddTable(t)
	}
	for _, row := range res.Rows {
		t.loadRow(row)
	}
	return len(res.Rows), nil
}

// Update synchronizes the named table's pending changes back to the
// source table, then accepts the changes. It returns the number of rows
// written. Statement generation follows ADO.NET's command builders:
// deleted and modified rows are located by the adapter's key columns.
func (a *DataAdapter) Update(ds *DataSet, tableName string) (int, error) {
	if a.DB == nil {
		return 0, fmt.Errorf("dataset: adapter has no database")
	}
	if a.Table == "" {
		return 0, fmt.Errorf("dataset: adapter has no target table for update generation")
	}
	t := ds.Table(tableName)
	if t == nil {
		return 0, fmt.Errorf("dataset: no table %s in DataSet", tableName)
	}
	added, modified, deleted := t.Changes()
	if len(added)+len(modified)+len(deleted) == 0 {
		return 0, nil
	}
	keyIdx, err := a.keyIndexes(t)
	if err != nil {
		return 0, err
	}

	s := a.DB.Session()
	if _, err := s.Exec("BEGIN"); err != nil {
		return 0, err
	}
	n, err := a.applyChanges(s, t, added, modified, deleted, keyIdx)
	if err != nil {
		s.Rollback()
		return 0, fmt.Errorf("dataset: update: %w", err)
	}
	if _, err := s.Exec("COMMIT"); err != nil {
		return 0, err
	}
	t.AcceptChanges()
	return n, nil
}

func (a *DataAdapter) keyIndexes(t *DataTable) ([]int, error) {
	keys := a.KeyColumns
	if len(keys) == 0 {
		keys = t.PrimaryKey
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("dataset: no key columns configured for synchronization")
	}
	idx := make([]int, len(keys))
	for i, k := range keys {
		ci := t.ColumnIndex(k)
		if ci < 0 {
			return nil, fmt.Errorf("dataset: key column %s not in cached table %s", k, t.Name)
		}
		idx[i] = ci
	}
	return idx, nil
}

func (a *DataAdapter) applyChanges(s *sqldb.Session, t *DataTable, added, modified, deleted []*DataRow, keyIdx []int) (int, error) {
	keys := a.KeyColumns
	if len(keys) == 0 {
		keys = t.PrimaryKey
	}
	n := 0
	// Deletes first (frees key space), then updates, then inserts.
	for _, r := range deleted {
		where, params := keyPredicate(keys, keyIdx, r.original)
		sql := fmt.Sprintf("DELETE FROM %s WHERE %s", a.Table, where)
		res, err := s.Exec(sql, params...)
		if err != nil {
			return n, err
		}
		if res.RowsAffected == 0 {
			return n, fmt.Errorf("concurrency violation: DELETE affected 0 rows (key changed at source)")
		}
		n += res.RowsAffected
	}
	for _, r := range modified {
		var sets []string
		var params []sqldb.Value
		for ci, col := range t.Columns {
			sets = append(sets, fmt.Sprintf("%s = ?", col))
			params = append(params, r.current[ci])
		}
		where, wparams := keyPredicate(keys, keyIdx, r.original)
		sql := fmt.Sprintf("UPDATE %s SET %s WHERE %s", a.Table, strings.Join(sets, ", "), where)
		res, err := s.Exec(sql, append(params, wparams...)...)
		if err != nil {
			return n, err
		}
		if res.RowsAffected == 0 {
			return n, fmt.Errorf("concurrency violation: UPDATE affected 0 rows (key changed at source)")
		}
		n += res.RowsAffected
	}
	for _, r := range added {
		placeholders := strings.TrimRight(strings.Repeat("?, ", len(t.Columns)), ", ")
		sql := fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)", a.Table, strings.Join(t.Columns, ", "), placeholders)
		res, err := s.Exec(sql, r.current...)
		if err != nil {
			return n, err
		}
		n += res.RowsAffected
	}
	return n, nil
}

// keyPredicate builds "k1 = ? AND k2 = ?" plus parameter values taken from
// the row's original values (pre-modification key).
func keyPredicate(keys []string, keyIdx []int, original []sqldb.Value) (string, []sqldb.Value) {
	var parts []string
	var params []sqldb.Value
	for i, k := range keys {
		parts = append(parts, fmt.Sprintf("%s = ?", k))
		params = append(params, original[keyIdx[i]])
	}
	return strings.Join(parts, " AND "), params
}
