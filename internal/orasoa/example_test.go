package orasoa_test

import (
	"fmt"

	"wfsql/internal/engine"
	"wfsql/internal/orasoa"
	"wfsql/internal/sqldb"
)

// Example shows Oracle's SQL inline style: no SQL activity types — the
// ora:query-database XPath extension function is called from a plain BPEL
// assign activity.
func Example() {
	db := sqldb.Open("orders")
	db.MustExec("CREATE TABLE Orders (ItemID VARCHAR, Quantity INTEGER)")
	db.MustExec("INSERT INTO Orders VALUES ('bolt', 10), ('nut', 3)")

	funcs := orasoa.NewFunctions(db)
	p := orasoa.NewProcess("q", funcs).
		XMLVariable("rs", "").
		Variable("first", "").
		Body(engine.NewSequence("main",
			engine.NewAssign("query").Copy(
				`ora:query-database("SELECT ItemID FROM Orders ORDER BY Quantity DESC")`, "rs"),
			engine.NewAssign("pick").Copy("$rs/Row[1]/ItemID", "first"),
		)).
		Build()

	d, _ := engine.New(nil).Deploy(p)
	in, _ := d.Run(nil)
	fmt.Println(in.MustVariable("first").String())
	// Output: bolt
}
