package orasoa

import (
	"fmt"
	"strings"
	"testing"

	"wfsql/internal/engine"
	"wfsql/internal/rowset"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
	"wfsql/internal/xpath"
)

func ordersDB() *sqldb.DB {
	db := sqldb.Open("orderdb")
	db.MustExec(`CREATE TABLE Orders (
		OrderID INTEGER PRIMARY KEY, ItemID VARCHAR NOT NULL,
		Quantity INTEGER NOT NULL, Approved BOOLEAN NOT NULL)`)
	db.MustExec(`INSERT INTO Orders VALUES
		(1, 'bolt', 10, TRUE), (2, 'bolt', 5, TRUE), (3, 'nut', 7, FALSE),
		(4, 'nut', 3, TRUE), (5, 'screw', 2, TRUE), (6, 'screw', 9, FALSE)`)
	db.MustExec(`CREATE TABLE OrderConfirmations (
		ItemID VARCHAR, Quantity INTEGER, Confirmation VARCHAR)`)
	return db
}

func callFn(t *testing.T, f *Functions, name string, args ...xpath.Value) xpath.Value {
	t.Helper()
	v, err := f.CallFunction(name, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestQueryDatabase(t *testing.T) {
	db := ordersDB()
	f := NewFunctions(db)
	v := callFn(t, f, "ora:query-database",
		xpath.String("SELECT ItemID, Quantity FROM Orders WHERE Approved = TRUE ORDER BY OrderID"))
	if v.Kind != xpath.KindNodeSet || len(v.Nodes) != 1 {
		t.Fatalf("result shape: %v", v)
	}
	rs := v.Nodes[0]
	if rowset.Count(rs) != 4 {
		t.Fatalf("rows: %d", rowset.Count(rs))
	}
	if rowset.Field(rowset.Row(rs, 0), "ItemID") != "bolt" {
		t.Fatalf("first row: %s", rowset.Row(rs, 0))
	}
	if f.Calls("query-database") != 1 {
		t.Fatalf("call counter: %d", f.Calls("query-database"))
	}
}

func TestSequenceNextVal(t *testing.T) {
	db := ordersDB()
	db.MustExec("CREATE SEQUENCE confirmation_seq START WITH 100 INCREMENT BY 10")
	f := NewFunctions(db)
	v1 := callFn(t, f, "ora:sequence-next-val", xpath.String("confirmation_seq"))
	v2 := callFn(t, f, "orcl:sequence-next-val", xpath.String("confirmation_seq"))
	if v1.AsNumber() != 100 || v2.AsNumber() != 110 {
		t.Fatalf("sequence values: %v %v", v1.AsNumber(), v2.AsNumber())
	}
}

func TestLookupTable(t *testing.T) {
	db := ordersDB()
	f := NewFunctions(db)
	v := callFn(t, f, "orcl:lookup-table",
		xpath.String("ItemID"), xpath.String("Orders"), xpath.String("OrderID"), xpath.Number(4))
	if v.AsString() != "nut" {
		t.Fatalf("lookup: %q", v.AsString())
	}
	// Missing key -> empty string.
	v = callFn(t, f, "orcl:lookup-table",
		xpath.String("ItemID"), xpath.String("Orders"), xpath.String("OrderID"), xpath.Number(999))
	if v.AsString() != "" {
		t.Fatalf("missing key: %q", v.AsString())
	}
	// Non-unique key -> error.
	if _, err := f.CallFunction("orcl:lookup-table", []xpath.Value{
		xpath.String("OrderID"), xpath.String("Orders"), xpath.String("ItemID"), xpath.String("bolt")}); err == nil {
		t.Fatal("expected non-unique error")
	}
	// SQL injection via identifiers is rejected.
	if _, err := f.CallFunction("orcl:lookup-table", []xpath.Value{
		xpath.String("ItemID; DROP TABLE Orders"), xpath.String("Orders"),
		xpath.String("OrderID"), xpath.Number(1)}); err == nil {
		t.Fatal("expected invalid identifier error")
	}
}

func TestProcessXSQLQueryAndDML(t *testing.T) {
	db := ordersDB()
	f := NewFunctions(db)
	err := f.XSQL().RegisterPage("confirmations", `
		<xsql:page>
			<xsql:dml>INSERT INTO OrderConfirmations (ItemID, Quantity, Confirmation)
				VALUES ({@item}, {@qty}, {@conf})</xsql:dml>
			<xsql:query name="all">SELECT COUNT(*) AS n FROM OrderConfirmations</xsql:query>
		</xsql:page>`)
	if err != nil {
		t.Fatal(err)
	}
	v := callFn(t, f, "ora:processXSQL",
		xpath.String("confirmations"),
		xpath.String("item"), xpath.String("bolt"),
		xpath.String("qty"), xpath.String("15"),
		xpath.String("conf"), xpath.String("CONFIRMED:bolt:15"))
	doc := v.Nodes[0]
	if doc.ChildText("rowsAffected") != "1" {
		t.Fatalf("dml rows: %q", doc.ChildText("rowsAffected"))
	}
	n := db.MustExec("SELECT Quantity FROM OrderConfirmations").Rows[0][0]
	if n.I != 15 {
		t.Fatalf("inserted quantity: %v (numeric params must stay numeric)", n)
	}
	all := doc.FirstChildElement("all")
	if all == nil || rowset.Field(rowset.Row(all.FirstChildElement("RowSet"), 0), "n") != "1" {
		t.Fatalf("query part: %s", doc)
	}
}

func TestProcessXSQLStoredProcedureAndDDL(t *testing.T) {
	db := ordersDB()
	db.MustExec(`CREATE PROCEDURE cleanup_orders () AS 'DELETE FROM Orders WHERE Approved = FALSE'`)
	f := NewFunctions(db)
	f.XSQL().RegisterPage("admin", `
		<xsql:page>
			<xsql:dml>CALL cleanup_orders()</xsql:dml>
			<xsql:dml>CREATE TABLE AuditLog (msg VARCHAR)</xsql:dml>
		</xsql:page>`)
	callFn(t, f, "ora:processXSQL", xpath.String("admin"))
	if n := db.MustExec("SELECT COUNT(*) FROM Orders").Rows[0][0].I; n != 4 {
		t.Fatalf("procedure via XSQL: %d rows", n)
	}
	if !db.HasTable("AuditLog") {
		t.Fatal("DDL via XSQL failed")
	}
}

func TestXSQLErrors(t *testing.T) {
	db := ordersDB()
	f := NewFunctions(db)
	if _, err := f.CallFunction("ora:processXSQL", []xpath.Value{xpath.String("missing")}); err == nil {
		t.Fatal("expected missing page error")
	}
	f.XSQL().RegisterPage("badparam", `<xsql:page><xsql:dml>DELETE FROM Orders WHERE ItemID = {@x}</xsql:dml></xsql:page>`)
	if _, err := f.CallFunction("ora:processXSQL", []xpath.Value{xpath.String("badparam")}); err == nil {
		t.Fatal("expected unbound parameter error")
	}
	if err := f.XSQL().RegisterPage("notxml", "<oops"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := f.CallFunction("ora:processXSQL", []xpath.Value{
		xpath.String("confirmations"), xpath.String("odd")}); err == nil {
		t.Fatal("expected pairing error")
	}
}

func TestUnknownFunctionAndNamespace(t *testing.T) {
	f := NewFunctions(ordersDB())
	if _, err := f.CallFunction("ora:no-such", nil); err == nil {
		t.Fatal("expected unknown function error")
	}
	if _, err := f.CallFunction("foo:query-database", nil); err == nil {
		t.Fatal("expected unknown namespace error")
	}
}

// TestFigure8Workflow reproduces the paper's Figure 8 sample workflow on
// the Oracle stack: Assign1 calls ora:query-database, the while activity
// plus Java-Snippet iterates the XML RowSet, invoke calls the supplier,
// and Assign2 calls ora:processXSQL to execute the INSERT.
func TestFigure8Workflow(t *testing.T) {
	db := ordersDB()
	funcs := NewFunctions(db)
	if err := funcs.XSQL().RegisterPage("insertConfirmation", `
		<xsql:page>
			<xsql:dml>INSERT INTO OrderConfirmations (ItemID, Quantity, Confirmation)
				VALUES ({@item}, {@qty}, {@conf})</xsql:dml>
		</xsql:page>`); err != nil {
		t.Fatal(err)
	}

	bus := wsbus.New()
	svc := wsbus.NewOrderFromSupplier(0)
	bus.Register("OrderFromSupplier", svc.Handle)
	e := engine.New(bus)

	assign1 := engine.NewAssign("Assign1").Copy(
		`ora:query-database("SELECT ItemID, SUM(Quantity) AS Quantity FROM Orders WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID")`,
		"SV_ItemList")

	body := engine.NewSequence("loopBody",
		engine.NewAssign("extract").
			Copy("$CurrentItem/ItemID", "CurrentItemID").
			Copy("$CurrentItem/Quantity", "CurrentQuantity"),
		engine.NewInvoke("Invoke", "OrderFromSupplier").
			In("ItemID", "$CurrentItem/ItemID").
			In("Quantity", "$CurrentItem/Quantity").
			Out("OrderConfirmation", "OrderConfirmation"),
		engine.NewAssign("Assign2").Copy(
			`ora:processXSQL('insertConfirmation', 'item', $CurrentItemID, 'qty', $CurrentQuantity, 'conf', $OrderConfirmation)/rowsAffected`,
			"Status"),
	)

	p := NewProcess("Fig8", funcs).
		XMLVariable("SV_ItemList", "").
		XMLVariable("CurrentItem", "").
		Variable("CurrentItemID", "").
		Variable("CurrentQuantity", "").
		Variable("OrderConfirmation", "").
		Variable("Status", "").
		Variable("pos", "1").
		Body(engine.NewSequence("main",
			assign1,
			CursorLoop("cursor", "SV_ItemList", "CurrentItem", "pos", body),
		)).
		Build()

	d, err := e.Deploy(p)
	if err != nil {
		t.Fatal(err)
	}
	in, err := d.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if in.MustVariable("Status").String() != "1" {
		t.Fatalf("Status: %q", in.MustVariable("Status").String())
	}

	r := db.MustExec("SELECT ItemID, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemID")
	if len(r.Rows) != 3 {
		t.Fatalf("confirmations: %d", len(r.Rows))
	}
	wants := map[string]int64{"bolt": 15, "nut": 3, "screw": 2}
	for _, row := range r.Rows {
		item := row[0].S
		if row[1].I != wants[item] {
			t.Errorf("%s quantity: %d", item, row[1].I)
		}
		if row[2].S != fmt.Sprintf("CONFIRMED:%s:%d", item, wants[item]) {
			t.Errorf("%s confirmation: %q", item, row[2].S)
		}
	}
}

func TestBpelxTupleIUD(t *testing.T) {
	db := ordersDB()
	funcs := NewFunctions(db)
	e := engine.New(nil)
	p := NewProcess("tuples", funcs).
		XMLVariable("rs", `<RowSet>
			<Row num="1"><ItemID>bolt</ItemID><Quantity>1</Quantity></Row>
			<Row num="2"><ItemID>nut</ItemID><Quantity>2</Quantity></Row>
		</RowSet>`).
		XMLVariable("newRow", `<Row><ItemID>washer</ItemID><Quantity>9</Quantity></Row>`).
		Body(engine.NewSequence("main",
			// Update via copy.
			NewBpelxAssign("upd").Copy("'77'", "rs", "Row[1]/Quantity"),
			// Insert via bpelx:insertAfter.
			NewBpelxAssign("ins").InsertAfter("$newRow", "rs", "Row[1]"),
			// Delete via bpelx:remove.
			NewBpelxAssign("del").Remove("rs", "Row[ItemID = 'nut']"),
		)).
		Build()
	d, _ := e.Deploy(p)
	in, err := d.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := in.MustVariable("rs").Node()
	rows := rowset.Rows(rs)
	if len(rows) != 2 {
		t.Fatalf("rows after IUD: %d", len(rows))
	}
	if rowset.Field(rows[0], "Quantity") != "77" {
		t.Fatalf("update: %s", rows[0])
	}
	if rowset.Field(rows[1], "ItemID") != "washer" {
		t.Fatalf("insert position: %s", rows[1])
	}
}

func TestBpelxAppendAndErrors(t *testing.T) {
	e := engine.New(nil)
	funcs := NewFunctions(ordersDB())
	p := NewProcess("append", funcs).
		XMLVariable("rs", `<RowSet><Row><ItemID>a</ItemID></Row></RowSet>`).
		XMLVariable("newRow", `<Row><ItemID>b</ItemID></Row>`).
		Body(NewBpelxAssign("app").Append("$newRow", "rs", ".")).
		Build()
	d, _ := e.Deploy(p)
	in, err := d.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rowset.Count(in.MustVariable("rs").Node()) != 2 {
		t.Fatal("append failed")
	}

	bad := NewProcess("bad", funcs).
		XMLVariable("rs", `<RowSet/>`).
		Body(NewBpelxAssign("rm").Remove("rs", "Row[99]")).
		Build()
	d2, _ := e.Deploy(bad)
	if _, err := d2.Run(nil); err == nil {
		t.Fatal("expected remove-no-node error")
	}
}

func TestGetVariableData(t *testing.T) {
	db := ordersDB()
	funcs := NewFunctions(db)
	e := engine.New(nil)
	p := NewProcess("gvd", funcs).
		XMLVariable("rs", `<RowSet><Row><ItemID>bolt</ItemID></Row></RowSet>`).
		Variable("out", "").
		Body(engine.NewAssign("a").Copy(
			`bpel:getVariableData('rs', 'Row[1]/ItemID')`, "out")).
		Build()
	d, _ := e.Deploy(p)
	in, err := d.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if in.MustVariable("out").String() != "bolt" {
		t.Fatalf("getVariableData: %q", in.MustVariable("out").String())
	}
}

func TestSynchronizationWorkaroundViaProcessXSQL(t *testing.T) {
	// The paper: for the Synchronization Pattern one manually adds
	// processXSQL calls that reflect local updates in external data.
	db := ordersDB()
	funcs := NewFunctions(db)
	funcs.XSQL().RegisterPage("pushQuantity", `
		<xsql:page>
			<xsql:dml>UPDATE Orders SET Quantity = {@qty} WHERE OrderID = {@id}</xsql:dml>
		</xsql:page>`)
	e := engine.New(nil)
	p := NewProcess("sync", funcs).
		XMLVariable("rs", "").
		Variable("st", "").
		Body(engine.NewSequence("main",
			engine.NewAssign("fetch").Copy(
				`ora:query-database("SELECT OrderID, Quantity FROM Orders WHERE OrderID = 1")`, "rs"),
			// Local update in the process space.
			NewBpelxAssign("local").Copy("'123'", "rs", "Row[1]/Quantity"),
			// Manual push-back.
			engine.NewAssign("push").Copy(
				`ora:processXSQL('pushQuantity', 'qty', $rs/Row[1]/Quantity, 'id', $rs/Row[1]/OrderID)/rowsAffected`,
				"st"),
		)).
		Build()
	d, _ := e.Deploy(p)
	if _, err := d.Run(nil); err != nil {
		t.Fatal(err)
	}
	if q := db.MustExec("SELECT Quantity FROM Orders WHERE OrderID = 1").Rows[0][0].I; q != 123 {
		t.Fatalf("synchronized quantity: %d", q)
	}
}

func TestStaticConnectionIsFixed(t *testing.T) {
	// Table I: Oracle's reference to the external data source is static —
	// the function library is bound to one database at construction.
	db1 := ordersDB()
	db2 := sqldb.Open("other")
	f := NewFunctions(db1)
	_ = db2
	v := callFn(t, f, "ora:query-database", xpath.String("SELECT COUNT(*) AS n FROM Orders"))
	if rowset.Field(rowset.Row(v.Nodes[0], 0), "n") != "6" {
		t.Fatal("query went to the wrong database")
	}
	if !strings.Contains(fmt.Sprintf("%T", f), "Functions") {
		t.Fatal("sanity")
	}
}

func TestFunctionErrorArities(t *testing.T) {
	f := NewFunctions(ordersDB())
	cases := [][]xpath.Value{
		{},
		{xpath.String("SELECT 1"), xpath.String("extra")},
	}
	for _, args := range cases {
		if _, err := f.CallFunction("ora:query-database", args); err == nil {
			t.Errorf("query-database with %d args must fail", len(args))
		}
		if _, err := f.CallFunction("ora:sequence-next-val", args); err == nil {
			t.Errorf("sequence-next-val with %d args must fail", len(args))
		}
	}
	// Bad SQL propagates.
	if _, err := f.CallFunction("ora:query-database", []xpath.Value{xpath.String("SELEC")}); err == nil {
		t.Error("bad SQL must fail")
	}
	// Missing sequence propagates.
	if _, err := f.CallFunction("ora:sequence-next-val", []xpath.Value{xpath.String("nope")}); err == nil {
		t.Error("missing sequence must fail")
	}
	// DML via query-database is rejected (it must be a query).
	if _, err := f.CallFunction("ora:query-database", []xpath.Value{xpath.String("DELETE FROM Orders")}); err == nil {
		t.Error("DML via query-database must fail")
	}
}

func TestEmptyRowSet(t *testing.T) {
	rs := EmptyRowSet()
	if rs.Name != "RowSet" || len(rs.Children) != 0 {
		t.Fatalf("EmptyRowSet: %s", rs)
	}
}
