package orasoa

import (
	"fmt"

	"wfsql/internal/engine"
	"wfsql/internal/rowset"
	"wfsql/internal/xdm"
)

// ProcessBuilder plays the BPEL Designer / JDeveloper role: it assembles a
// BPEL process whose assign activities can call the Oracle XPath extension
// functions, and produces an engine.Process for the Core BPEL Engine.
type ProcessBuilder struct {
	name    string
	funcs   *Functions
	vars    []engine.VarDecl
	body    engine.Activity
	pattern string
}

// NewProcess starts building an Oracle SOA process over the given
// extension function library (which carries the static database binding).
func NewProcess(name string, funcs *Functions) *ProcessBuilder {
	return &ProcessBuilder{name: name, funcs: funcs}
}

// Variable declares a scalar process variable.
func (b *ProcessBuilder) Variable(name, init string) *ProcessBuilder {
	b.vars = append(b.vars, engine.VarDecl{Name: name, Kind: engine.ScalarVar, Init: init})
	return b
}

// XMLVariable declares an XML process variable.
func (b *ProcessBuilder) XMLVariable(name, initXML string) *ProcessBuilder {
	b.vars = append(b.vars, engine.VarDecl{Name: name, Kind: engine.XMLVar, InitXML: initXML})
	return b
}

// Body sets the process body.
func (b *ProcessBuilder) Body(a engine.Activity) *ProcessBuilder {
	b.body = a
	return b
}

// Pattern labels the process with the paper's SQL-support pattern id it
// exercises; spans emitted for its instances carry the label.
func (b *ProcessBuilder) Pattern(id string) *ProcessBuilder {
	b.pattern = id
	return b
}

// Build produces the deployable process model with the extension functions
// installed.
func (b *ProcessBuilder) Build() *engine.Process {
	return &engine.Process{
		Name:      b.name,
		Variables: b.vars,
		Body:      b.body,
		Funcs:     b.funcs,
		Stack:     "Oracle",
		Pattern:   b.pattern,
	}
}

// JavaSnippet is the Oracle-specific Java embedding activity the paper's
// workarounds use (sequential access over an XML RowSet).
func JavaSnippet(name string, fn func(ctx *engine.Ctx) error) engine.Activity {
	return engine.NewSnippet(name, fn)
}

// CursorLoop builds the paper's sequential-access workaround for Oracle: a
// while activity plus a Java-Snippet that stores the next row of an XML
// RowSet variable into currentVar on each iteration.
func CursorLoop(name, rowSetVar, currentVar, posVar string, body engine.Activity) engine.Activity {
	bind := JavaSnippet(name+"_bind", func(ctx *engine.Ctx) error {
		rv, err := ctx.Variable(rowSetVar)
		if err != nil {
			return err
		}
		pos, err := ctx.Inst.MustVariable(posVar).Int()
		if err != nil {
			return err
		}
		row := rowset.Row(rv.Node(), int(pos)-1)
		if row == nil {
			return fmt.Errorf("orasoa: cursor position %d out of range in %s", pos, rowSetVar)
		}
		return ctx.SetNode(currentVar, row.Clone())
	})
	advance := JavaSnippet(name+"_advance", func(ctx *engine.Ctx) error {
		pos, err := ctx.Inst.MustVariable(posVar).Int()
		if err != nil {
			return err
		}
		return ctx.SetScalar(posVar, fmt.Sprint(pos+1))
	})
	cond := engine.Cond(fmt.Sprintf("$%s <= count($%s/Row)", posVar, rowSetVar))
	return engine.NewSequence(name,
		JavaSnippet(name+"_init", func(ctx *engine.Ctx) error {
			return ctx.SetScalar(posVar, "1")
		}),
		engine.NewWhile(name+"_while", cond,
			engine.NewSequence(name+"_iteration", bind, body, advance)),
	)
}

// EmptyRowSet returns a fresh empty RowSet document (for declaring XML
// RowSet variables).
func EmptyRowSet() *xdm.Node { return xdm.NewElement(rowset.RootElement) }
