// Package orasoa reimplements the SQL inline support of Oracle's SOA Suite
// as surveyed by the paper. Unlike IBM and Microsoft, Oracle does not add
// SQL-specific activity types: it provides proprietary *XPath extension
// functions* (namespaces ora and orcl) callable from BPEL assign
// activities — query-database, sequence-next-val, lookup-table, and
// processXSQL — plus bpelx-prefixed assign operations for updating,
// inserting, and deleting local XML data, and the XSQL framework that
// processXSQL executes pages in.
//
// Processes run on the shared BPEL engine in internal/engine (the Oracle
// BPEL Process Manager role); the extension functions are installed as the
// process's function resolver.
package orasoa

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"wfsql/internal/obsv"
	"wfsql/internal/resilience"
	"wfsql/internal/rowset"
	"wfsql/internal/sqldb"
	"wfsql/internal/xdm"
	"wfsql/internal/xpath"
)

// Functions implements xpath.FunctionResolver with Oracle's extension
// functions. The database connection is static (fixed at construction),
// matching the paper's comparison: "one has to provide a static connection
// string for each XPath Extension Function".
type Functions struct {
	db      *sqldb.DB
	pool    *sqldb.SessionPool
	xsql    *XSQLFramework
	mu      sync.Mutex
	calls   map[string]int // per-function call counters (monitoring)
	retry   *resilience.Policy
	retries int // statement re-executions caused by the retry policy
	obs     *obsv.Observability
}

// SetObservability attaches (or with nil detaches) a tracing/metrics
// bundle: every extension-function call then increments ora.calls and
// ora.calls.<function>. The SQL statements the functions execute are
// traced by the database itself (sqldb.DB.SetObservability), with their
// spans parented under the tracer's ambient span — the assign activity
// whose XPath expression invoked the function.
func (f *Functions) SetObservability(o *obsv.Observability) {
	f.mu.Lock()
	f.obs = o
	f.mu.Unlock()
}

// NewFunctions creates the extension function library over a statically
// bound database, with an XSQL framework for processXSQL.
func NewFunctions(db *sqldb.DB) *Functions {
	pool := sqldb.NewSessionPool(db)
	return &Functions{db: db, pool: pool, xsql: newXSQLFramework(db, pool), calls: map[string]int{}}
}

// XSQL exposes the framework for page registration.
func (f *Functions) XSQL() *XSQLFramework { return f.xsql }

// Calls returns how many times the named function was invoked.
func (f *Functions) Calls(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[name]
}

// SetRetryPolicy installs a retry policy applied to every database
// statement the extension functions execute, including statements run by
// processXSQL pages. Extension functions are evaluated inside assign
// activities with no transaction bracket of their own — each statement
// autocommits — so per-statement re-execution after a transient fault is
// always legal here (query-database and lookup-table are pure reads;
// sequence-next-val may skip values on retry, which sequences permit).
func (f *Functions) SetRetryPolicy(p *resilience.Policy) {
	f.mu.Lock()
	f.retry = p
	f.mu.Unlock()
	f.xsql.SetRetryPolicy(p)
}

// Retries returns how many statement re-executions the retry policy has
// performed (monitoring).
func (f *Functions) Retries() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.retries + f.xsql.Retries()
}

// query runs one statement through the configured retry policy. The
// whole operation — every retry attempt included — executes on one
// session checked out of the pool, instead of the former throwaway
// session per attempt (which discarded any session state between
// attempts and churned handles under the concurrent scheduler).
func (f *Functions) query(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	f.mu.Lock()
	p := f.retry
	f.mu.Unlock()
	sess := f.pool.Acquire()
	defer f.pool.Release(sess)
	if p == nil {
		return sess.Query(sql, params...)
	}
	obs := resilience.Observer{OnAttempt: func(n, _ int) {
		if n > 1 {
			f.mu.Lock()
			f.retries++
			f.mu.Unlock()
		}
	}}
	return resilience.Do(p, obs, func(int) (*sqldb.Result, error) {
		return sess.Query(sql, params...)
	})
}

// CallFunction implements xpath.FunctionResolver. Functions are accepted
// under both the ora and orcl prefixes.
func (f *Functions) CallFunction(name string, args []xpath.Value) (xpath.Value, error) {
	prefix, local := "", name
	if i := strings.LastIndex(name, ":"); i >= 0 {
		prefix, local = name[:i], name[i+1:]
	}
	if prefix != "ora" && prefix != "orcl" {
		return xpath.Value{}, fmt.Errorf("orasoa: unknown function namespace %q in %s()", prefix, name)
	}
	f.mu.Lock()
	f.calls[local]++
	obs := f.obs
	f.mu.Unlock()
	obs.M().Counter("ora.calls").Inc()
	obs.M().Counter("ora.calls." + local).Inc()
	switch local {
	case "query-database":
		return f.queryDatabase(args)
	case "sequence-next-val":
		return f.sequenceNextVal(args)
	case "lookup-table":
		return f.lookupTable(args)
	case "processXSQL":
		return f.processXSQL(args)
	}
	return xpath.Value{}, fmt.Errorf("orasoa: unknown extension function %s()", name)
}

// queryDatabase executes any valid SQL query provided as a string
// parameter and returns its result set as an XML RowSet node-set.
func (f *Functions) queryDatabase(args []xpath.Value) (xpath.Value, error) {
	if len(args) != 1 {
		return xpath.Value{}, fmt.Errorf("orasoa: query-database expects 1 argument")
	}
	res, err := f.query(args[0].AsString())
	if err != nil {
		return xpath.Value{}, fmt.Errorf("orasoa: query-database: %w", err)
	}
	doc, err := rowset.FromResult(res)
	if err != nil {
		return xpath.Value{}, err
	}
	return xpath.NodeSet(doc), nil
}

// sequenceNextVal returns the next value of a predefined sequence of
// integers (useful e.g. when creating a unique number as a primary key).
func (f *Functions) sequenceNextVal(args []xpath.Value) (xpath.Value, error) {
	if len(args) != 1 {
		return xpath.Value{}, fmt.Errorf("orasoa: sequence-next-val expects 1 argument")
	}
	res, err := f.query("SELECT NEXTVAL(?)", sqldb.Str(args[0].AsString()))
	if err != nil {
		return xpath.Value{}, fmt.Errorf("orasoa: sequence-next-val: %w", err)
	}
	v, err := res.ScalarValue()
	if err != nil {
		return xpath.Value{}, err
	}
	return xpath.Number(float64(v.I)), nil
}

// lookupTable executes SELECT outputColumn FROM table WHERE inputColumn =
// key, generated from its parameters (outputColumn, table, inputColumn,
// key), and returns exactly one column value of the tuple identified by
// its key.
func (f *Functions) lookupTable(args []xpath.Value) (xpath.Value, error) {
	if len(args) != 4 {
		return xpath.Value{}, fmt.Errorf("orasoa: lookup-table expects 4 arguments (outputColumn, table, inputColumn, key)")
	}
	outCol, table, inCol := args[0].AsString(), args[1].AsString(), args[2].AsString()
	if !validIdent(outCol) || !validIdent(table) || !validIdent(inCol) {
		return xpath.Value{}, fmt.Errorf("orasoa: lookup-table: invalid identifier")
	}
	sql := fmt.Sprintf("SELECT %s FROM %s WHERE %s = ?", outCol, table, inCol)
	res, err := f.query(sql, xpathToSQL(args[3]))
	if err != nil {
		return xpath.Value{}, fmt.Errorf("orasoa: lookup-table: %w", err)
	}
	if len(res.Rows) == 0 {
		return xpath.String(""), nil
	}
	if len(res.Rows) > 1 {
		return xpath.Value{}, fmt.Errorf("orasoa: lookup-table: key %q is not unique in %s", args[3].AsString(), table)
	}
	return xpath.String(res.Rows[0][0].String()), nil
}

// processXSQL accesses a registered XSQL page, executes it in the XSQL
// framework, and returns its result in XML. Arguments after the page name
// are name/value pairs bound to the page's {@name} parameters.
func (f *Functions) processXSQL(args []xpath.Value) (xpath.Value, error) {
	if len(args) == 0 {
		return xpath.Value{}, fmt.Errorf("orasoa: processXSQL expects a page name")
	}
	if (len(args)-1)%2 != 0 {
		return xpath.Value{}, fmt.Errorf("orasoa: processXSQL parameters must be name/value pairs")
	}
	params := map[string]string{}
	for i := 1; i < len(args); i += 2 {
		params[args[i].AsString()] = args[i+1].AsString()
	}
	doc, err := f.xsql.Execute(args[0].AsString(), params)
	if err != nil {
		return xpath.Value{}, err
	}
	return xpath.NodeSet(doc), nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// xpathToSQL converts an XPath value to the most specific SQL value.
func xpathToSQL(v xpath.Value) sqldb.Value {
	if v.Kind == xpath.KindNumber {
		if v.Num == float64(int64(v.Num)) {
			return sqldb.Int(int64(v.Num))
		}
		return sqldb.Float(v.Num)
	}
	if v.Kind == xpath.KindBoolean {
		return sqldb.Bool(v.Bool)
	}
	s := v.AsString()
	var i int64
	if _, err := fmt.Sscanf(s, "%d", &i); err == nil && fmt.Sprint(i) == s {
		return sqldb.Int(i)
	}
	return sqldb.Str(s)
}

// XSQLFramework combines XML, XSLT, and SQL: it generates XML results from
// parameterized SQL queries and supports DML and DDL operations as well as
// stored procedures. Pages are XML documents of xsql:query and xsql:dml
// elements with {@param} placeholders.
type XSQLFramework struct {
	db      *sqldb.DB
	pool    *sqldb.SessionPool
	mu      sync.RWMutex
	pages   map[string]*xdm.Node
	retry   *resilience.Policy
	retries int
}

// NewXSQLFramework creates an empty framework bound to a database.
func NewXSQLFramework(db *sqldb.DB) *XSQLFramework {
	return newXSQLFramework(db, sqldb.NewSessionPool(db))
}

// newXSQLFramework shares a session pool with the owning function library.
func newXSQLFramework(db *sqldb.DB, pool *sqldb.SessionPool) *XSQLFramework {
	return &XSQLFramework{db: db, pool: pool, pages: map[string]*xdm.Node{}}
}

// SetRetryPolicy applies a retry policy to every statement executed by a
// page. Pages run statement-by-statement in autocommit mode; a retried
// statement re-executes alone, never a whole page.
func (x *XSQLFramework) SetRetryPolicy(p *resilience.Policy) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.retry = p
}

// Retries returns how many statement re-executions the policy performed.
func (x *XSQLFramework) Retries() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.retries
}

// exec runs one page statement through the configured retry policy.
func (x *XSQLFramework) exec(sess *sqldb.Session, sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	x.mu.RLock()
	p := x.retry
	x.mu.RUnlock()
	if p == nil {
		return sess.Exec(sql, params...)
	}
	obs := resilience.Observer{OnAttempt: func(n, _ int) {
		if n > 1 {
			x.mu.Lock()
			x.retries++
			x.mu.Unlock()
		}
	}}
	return resilience.Do(p, obs, func(int) (*sqldb.Result, error) {
		return sess.Exec(sql, params...)
	})
}

// RegisterPage parses and installs a page under a name (the "XML file"
// processXSQL accesses).
func (x *XSQLFramework) RegisterPage(name, pageXML string) error {
	doc, err := xdm.Parse(pageXML)
	if err != nil {
		return fmt.Errorf("orasoa: xsql page %s: %w", name, err)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.pages[name] = doc
	return nil
}

// Execute runs a page with the given parameters and returns the XML
// result document: one child element per xsql:query (an XML RowSet) or
// xsql:dml (a rowsAffected element).
func (x *XSQLFramework) Execute(page string, params map[string]string) (*xdm.Node, error) {
	x.mu.RLock()
	doc, ok := x.pages[page]
	x.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("orasoa: no XSQL page %q", page)
	}
	out := xdm.NewElement("xsql-result")
	out.SetAttr("page", page)
	// One pooled session per page execution: the page's statements share
	// it, and it returns to the pool (transactionally clean) afterwards.
	sess := x.pool.Acquire()
	defer x.pool.Release(sess)
	for _, el := range doc.ChildElements() {
		sql, binds, err := substitutePageParams(el.TextContent(), params)
		if err != nil {
			return nil, fmt.Errorf("orasoa: xsql page %s: %w", page, err)
		}
		switch localName(el.Name) {
		case "query":
			res, err := x.exec(sess, sql, binds...)
			if err != nil {
				return nil, fmt.Errorf("orasoa: xsql page %s: %w", page, err)
			}
			if !res.IsQuery() {
				return nil, fmt.Errorf("orasoa: xsql page %s: xsql:query did not return rows", page)
			}
			rs, err := rowset.FromResult(res)
			if err != nil {
				return nil, err
			}
			wrapper := out.Element(queryResultName(el))
			wrapper.AppendChild(rs)
		case "dml":
			res, err := x.exec(sess, sql, binds...)
			if err != nil {
				return nil, fmt.Errorf("orasoa: xsql page %s: %w", page, err)
			}
			out.ElementWithText("rowsAffected", fmt.Sprint(res.RowsAffected))
		default:
			return nil, fmt.Errorf("orasoa: xsql page %s: unknown element %s", page, el.Name)
		}
	}
	return out, nil
}

func queryResultName(el *xdm.Node) string {
	if v, ok := el.Attr("name"); ok {
		return v
	}
	return "result"
}

// substitutePageParams replaces {@name} placeholders with ? bind slots
// and returns the bound values in placeholder order. Binding instead of
// inlining SQL-quoted literals keeps one plan-cache entry per page
// statement regardless of parameter values (it also removes the quoting
// path entirely). The same page parameter may appear more than once; each
// occurrence gets its own slot.
func leadByte(s string) byte {
	if s == "" {
		return 0
	}
	return s[0]
}

func substitutePageParams(sql string, params map[string]string) (string, []sqldb.Value, error) {
	if !strings.Contains(sql, "{@") {
		return sql, nil, nil
	}
	var b strings.Builder
	b.Grow(len(sql))
	var binds []sqldb.Value
	for {
		i := strings.Index(sql, "{@")
		if i < 0 {
			b.WriteString(sql)
			return b.String(), binds, nil
		}
		j := strings.Index(sql[i:], "}")
		if j < 0 {
			return "", nil, fmt.Errorf("unterminated {@param}")
		}
		name := sql[i+2 : i+j]
		v, ok := params[name]
		if !ok {
			return "", nil, fmt.Errorf("unbound page parameter %q", name)
		}
		b.WriteString(sql[:i])
		b.WriteByte('?')
		// Numeric-looking parameters bind as numbers so they compare
		// naturally against numeric columns. The lead-byte gate keeps the
		// common non-numeric case from allocating strconv syntax errors;
		// ParseInt/ParseFloat only accept the full string, so "12abc"
		// stays a string.
		bound := false
		if c := leadByte(v); c == '-' || c == '+' || c == '.' || (c >= '0' && c <= '9') {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				binds = append(binds, sqldb.Int(n))
				bound = true
			} else if fv, err := strconv.ParseFloat(v, 64); err == nil {
				binds = append(binds, sqldb.Float(fv))
				bound = true
			}
		}
		if !bound {
			binds = append(binds, sqldb.Str(v))
		}
		sql = sql[i+j+1:]
	}
}

func localName(n string) string {
	if i := strings.LastIndex(n, ":"); i >= 0 {
		return n[i+1:]
	}
	return n
}
