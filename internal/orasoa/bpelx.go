package orasoa

import (
	"fmt"

	"wfsql/internal/engine"
	"wfsql/internal/xdm"
	"wfsql/internal/xpath"
)

// This file implements the Oracle-specific XPath operations denoted by the
// bpelx namespace that allow updating, inserting, and deleting local XML
// data — the mechanism by which Oracle covers the complete Tuple IUD
// Pattern at an abstract level (Table II), where IBM needs Java-Snippet
// workarounds for insert and delete.

// BpelxOpKind enumerates the supported assign extension operations.
type BpelxOpKind int

// bpelx assign operations.
const (
	// OpCopy is the standard BPEL copy (covers update).
	OpCopy BpelxOpKind = iota
	// OpInsertAfter inserts a new element after the node selected by the
	// target path (or as first child of the target variable's root when
	// the path selects nothing and Append is set).
	OpInsertAfter
	// OpAppend appends a new element as the last child of the selected
	// node.
	OpAppend
	// OpRemove deletes the selected node(s).
	OpRemove
)

// BpelxOp is one extension operation of a BpelxAssign.
type BpelxOp struct {
	Kind   BpelxOpKind
	From   *xpath.Expr // source expression (copy/insertAfter/append)
	ToVar  string
	ToPath *xpath.Expr // target selection within ToVar
}

// BpelxAssign is an assign activity extended with bpelx operations.
type BpelxAssign struct {
	ActivityName string
	Ops          []BpelxOp
}

// NewBpelxAssign builds an extended assign activity.
func NewBpelxAssign(name string) *BpelxAssign { return &BpelxAssign{ActivityName: name} }

// Copy adds a standard copy (update semantics).
func (a *BpelxAssign) Copy(fromExpr, toVar, toPath string) *BpelxAssign {
	a.Ops = append(a.Ops, BpelxOp{Kind: OpCopy, From: xpath.MustCompile(fromExpr),
		ToVar: toVar, ToPath: xpath.MustCompile(toPath)})
	return a
}

// InsertAfter adds a bpelx:insertAfter of the from-node after the node
// selected by toPath.
func (a *BpelxAssign) InsertAfter(fromExpr, toVar, toPath string) *BpelxAssign {
	a.Ops = append(a.Ops, BpelxOp{Kind: OpInsertAfter, From: xpath.MustCompile(fromExpr),
		ToVar: toVar, ToPath: xpath.MustCompile(toPath)})
	return a
}

// Append adds a bpelx:append of the from-node under the node selected by
// toPath.
func (a *BpelxAssign) Append(fromExpr, toVar, toPath string) *BpelxAssign {
	a.Ops = append(a.Ops, BpelxOp{Kind: OpAppend, From: xpath.MustCompile(fromExpr),
		ToVar: toVar, ToPath: xpath.MustCompile(toPath)})
	return a
}

// Remove adds a bpelx:remove of the node(s) selected by toPath.
func (a *BpelxAssign) Remove(toVar, toPath string) *BpelxAssign {
	a.Ops = append(a.Ops, BpelxOp{Kind: OpRemove, ToVar: toVar, ToPath: xpath.MustCompile(toPath)})
	return a
}

// Name implements engine.Activity.
func (a *BpelxAssign) Name() string { return a.ActivityName }

// Execute implements engine.Activity.
func (a *BpelxAssign) Execute(ctx *engine.Ctx) error {
	for i, op := range a.Ops {
		if err := a.execOp(ctx, op); err != nil {
			return fmt.Errorf("%s: operation %d: %w", a.ActivityName, i+1, err)
		}
	}
	return nil
}

func (a *BpelxAssign) execOp(ctx *engine.Ctx, op BpelxOp) error {
	target, err := ctx.Variable(op.ToVar)
	if err != nil {
		return err
	}
	if target.Kind() != engine.XMLVar || target.Node() == nil {
		return fmt.Errorf("bpelx: target %s is not an XML variable", op.ToVar)
	}
	// Copy the shared instance context before rebasing it on the target
	// document — the cached one must stay Node-less.
	tctx := *ctx.XPathContext()
	tctx.Node = target.Node()
	sel, err := op.ToPath.Eval(&tctx)
	if err != nil {
		return err
	}

	var fromNode *xdm.Node
	var fromVal xpath.Value
	if op.From != nil {
		fromVal, err = ctx.EvalXPath(op.From)
		if err != nil {
			return err
		}
		if n := fromVal.FirstNode(); n != nil && fromVal.Kind == xpath.KindNodeSet {
			fromNode = n.Clone()
		}
	}

	switch op.Kind {
	case OpCopy:
		tn := sel.FirstNode()
		if tn == nil {
			return fmt.Errorf("bpelx: copy target path selected no node")
		}
		if fromNode != nil {
			tn.Children = nil
			tn.Attrs = append([]xdm.Attr(nil), fromNode.Attrs...)
			for _, c := range fromNode.Children {
				tn.AppendChild(c)
			}
		} else {
			tn.SetText(fromVal.AsString())
		}
	case OpInsertAfter:
		tn := sel.FirstNode()
		if tn == nil {
			return fmt.Errorf("bpelx: insertAfter target path selected no node")
		}
		if fromNode == nil {
			return fmt.Errorf("bpelx: insertAfter requires an element source")
		}
		parent := tn.Parent()
		if parent == nil {
			return fmt.Errorf("bpelx: cannot insert after the document root")
		}
		return parent.InsertChildAfter(tn, fromNode)
	case OpAppend:
		tn := sel.FirstNode()
		if tn == nil {
			return fmt.Errorf("bpelx: append target path selected no node")
		}
		if fromNode == nil {
			return fmt.Errorf("bpelx: append requires an element source")
		}
		tn.AppendChild(fromNode)
	case OpRemove:
		if len(sel.Nodes) == 0 {
			return fmt.Errorf("bpelx: remove path selected no node")
		}
		for _, n := range sel.Nodes {
			parent := n.Parent()
			if parent == nil {
				return fmt.Errorf("bpelx: cannot remove the document root")
			}
			parent.RemoveChild(n)
		}
	}
	return nil
}
