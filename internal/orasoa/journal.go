package orasoa

import (
	"wfsql/internal/engine"
	"wfsql/internal/journal"
)

// SQLEffect marks an activity that performs database work through the
// Oracle extension-function library (ora:query-database,
// ora:processXSQL, ora:sequence-next-val, ...) as a journaled SQL
// effect. Oracle BPEL embeds SQL in otherwise-generic activities — an
// Assign whose XPath expression calls ora:processXSQL — so the
// exactly-once boundary is the enclosing activity: on completion the
// listed variables (the activity's visible outcome, e.g. the query
// result document or the DML status) are memoized, and a recovered
// instance restores them without re-evaluating the expression, i.e.
// without re-running the SQL.
//
// Extension-function statements run in per-statement autocommit (the
// XSQL framework commits each page), so their memos are durable as
// soon as they are journaled — the long-running transaction-mode row
// of the recovery matrix.
func SQLEffect(inner engine.Activity, captures ...string) engine.Activity {
	return engine.Journaled(inner, journal.EffectSQL, captures...)
}
