package sqldb

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DB is an embeddable in-memory relational database. All operations are
// safe for concurrent use. Concurrency control is multi-version with
// per-table latches:
//
//   - SELECT and EXPLAIN read a consistent snapshot taken at statement
//     start and never block on (or are blocked by) writers.
//   - INSERT/UPDATE/DELETE and transaction control take per-table
//     latches over their static footprint, so writers of disjoint
//     tables run in parallel; DDL and native procedures fall back to
//     the exclusive engine lock.
//   - Two writers of the same row resolve first-writer-wins: the loser
//     fails with a retryable error wrapping ErrWriteConflict.
//
// The resulting isolation level is snapshot (per statement): a reader
// never observes another transaction's uncommitted or rolled-back
// rows, and a scan never observes a concurrent commit part-way
// through.
type DB struct {
	mu         sync.RWMutex
	name       string
	tables     map[string]*Table
	views      map[string]*view
	sequences  map[string]*Sequence
	procs      map[string]*Procedure
	indexOwner map[string]*Table // index name -> owning table

	// MVCC state. commitMu is the commit critical section: stamping a
	// transaction's versions, advancing commitSeq, assigning change
	// sequence numbers, delivering to the change sink, and maintaining
	// the openTxns bootstrap buffers all happen under one hold — which
	// is what keeps BootstrapState floors exactly paired with the
	// committed state of a dump. txnIDs mints transaction ids; the
	// snapshot registry (snapMu/snapActive) tracks in-flight statement
	// snapshots so vacuum never removes a version a reader can still
	// see. Lock order: mu → table latches → commitMu; snapMu is a leaf.
	commitMu   sync.Mutex
	commitSeq  atomic.Int64
	txnIDs     atomic.Int64
	snapMu     sync.Mutex
	snapActive map[int64]int
	openTxns   map[int64][]Change // session id -> explicit txn's emitted changes

	// stats counters (observable via Stats) used by benchmarks and the
	// reproduction's data-volume measurements. Atomics: read-only
	// statements increment them while holding only the shared lock.
	stmtCount        atomic.Int64
	rowsRead         atomic.Int64
	rowsWritten      atomic.Int64
	bytesReturned    atomic.Int64
	deadlineRefusals atomic.Int64

	// parsed-statement cache, two levels under one cacheMu:
	//
	//   - stmtCache keys plans by NORMALIZED text (literals extracted
	//     into bind slots, see normalizeStmt), so a per-item INSERT loop
	//     with fresh literals resolves to one cached plan. Statements
	//     the normalizer declines (DDL, scripts) cache under raw text on
	//     the same level. ASTs are immutable after parsing, so a cached
	//     statement may execute concurrently on many sessions. The level
	//     is an LRU: lruList is ordered most- to least-recently used,
	//     and an insert past stmtCacheCap evicts the coldest entry.
	//   - rawCache is a front cache from exact raw text to the plan
	//     entry plus that text's extracted constants, so a literal-
	//     identical repeat skips even the lexer. Raw entries hold no
	//     plan of their own; one whose plan entry died (eviction,
	//     DDL-scoped invalidation, flush) is dropped lazily on lookup.
	cacheMu        sync.Mutex
	stmtCache      map[string]*list.Element // normalized text -> lruList element
	lruList        *list.List               // of *cacheEntry, front = hottest
	rawCache       map[string]*list.Element // raw text -> rawList element
	rawList        *list.List               // of *rawEntry, front = hottest
	cacheSize      atomic.Int64             // len(stmtCache) mirror for the gauge
	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	cacheFlushes       atomic.Int64
	cacheEvictions     atomic.Int64
	cacheInvalidations atomic.Int64

	// hookMu guards execHook and statsSink separately from mu so the hook
	// can sleep (latency injection) without serializing against statement
	// execution.
	hookMu    sync.Mutex
	execHook  ExecHook
	statsSink StatsSink

	// Change-data-capture plumbing (see SetChangeSink): sessionIDs mints
	// the per-session origin ids the stream is keyed by, changeSeq is the
	// global change sequence (advanced under commitMu while the emitting
	// statement still holds its table latches, so it orders exactly like
	// execution on every table), changesMissed counts mutating
	// statements that executed without capturable SQL text, and readOnly
	// puts the database in replica mode (only applier sessions may
	// write).
	changeSink    ChangeSink
	sessionIDs    atomic.Int64
	changeSeq     atomic.Int64
	changesMissed atomic.Int64
	readOnly      atomic.Bool

	// footGen versions cached statement footprints (see fpSlot). Only
	// view and procedure changes bump it: table names re-resolve against
	// db.tables on every execution, so table DDL cannot stale a cached
	// footprint, but view/procedure bodies are expanded *into* the
	// cached name list and must invalidate it.
	footGen atomic.Int64
}

// stmtCacheCap bounds the parsed-statement cache. When an insert would
// exceed it the least-recently-used entry is evicted, so hot statements
// survive pressure from workloads that generate unbounded distinct SQL
// text.
const stmtCacheCap = 1024

// rawCacheCap bounds the raw-text front cache. Raw entries are cheap
// (no plan of their own), so the cap is generous; eviction here never
// touches plans.
const rawCacheCap = 4096

// cacheEntry is one plan-cache LRU slot: the normalized SQL text (the
// map key, to unlink on eviction), its parsed statement, and the
// lowercased object names the statement references syntactically — the
// key DDL-scoped invalidation matches against. dead marks an entry
// removed from the plan cache while raw front-cache entries may still
// point at it; those drop lazily (all under cacheMu).
type cacheEntry struct {
	sql  string
	st   Stmt
	refs map[string]bool
	fp   fpSlot // lazily computed latch footprint (see stmtFootprint)
	el   *list.Element
	dead bool
}

// rawEntry is one front-cache slot: the exact raw text, the plan entry
// its normalized form resolves to, and the literal values extracted
// from this particular text (the plan is shared; the constants are
// what distinguish raw texts under it).
type rawEntry struct {
	sql     string
	ce      *cacheEntry
	consts  []Value
	pattern []uint8
}

// parsedStmt is a cachedParse resolution: the plan, its footprint slot,
// the normalized text it is cached under (== the input when the
// normalizer declined), the constants extracted from this exact text
// with their slot pattern, and the parse accounting for StmtStats.
type parsedStmt struct {
	st      Stmt
	fp      *fpSlot
	norm    string
	consts  []Value
	pattern []uint8
	parse   time.Duration
	hit     bool
}

// parseRaceHook, when set (tests only), runs after a cache-missed parse
// completes and before the cache is re-locked — the window in which a
// concurrent parser of the same plan can win the insert race.
var parseRaceHook func()

// stmtRefSet computes a statement's reference set for cache
// invalidation: every table, view, sequence, and procedure name its AST
// mentions, lowercased. Purely syntactic, so it is computed once at
// parse time and cached with the entry.
func stmtRefSet(st Stmt) map[string]bool {
	w := map[string]bool{}
	r := map[string]bool{}
	stmtRefs(st, w, r)
	for n := range r {
		w[n] = true
	}
	return w
}

// ExecHook intercepts every top-level statement executed against the
// database, before the engine lock is taken. kind is the statement kind
// (see StmtKind: "SELECT", "INSERT", "COMMIT", ...). A non-nil return
// fails the statement without executing it — the chaos layer uses this to
// model a flaky connection that can fail the Nth statement or commit, and
// to inject latency by sleeping before returning nil. Re-entrant execution
// (statements inside stored procedures) does not pass through the hook.
type ExecHook func(kind string) error

// SetExecHook installs (or, with nil, removes) the statement interceptor.
func (db *DB) SetExecHook(h ExecHook) {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	db.execHook = h
}

// currentExecHook returns the installed hook (nil if none).
func (db *DB) currentExecHook() ExecHook {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	return db.execHook
}

// Stats is a snapshot of the engine's activity counters.
type Stats struct {
	Statements    int64
	RowsRead      int64
	RowsWritten   int64
	BytesReturned int64
}

// Open creates a new, empty database with the given name. The name is used
// by data-source references in the workflow layers (e.g. dynamic binding in
// the BIS reproduction).
func Open(name string) *DB {
	return &DB{
		name:       name,
		tables:     map[string]*Table{},
		views:      map[string]*view{},
		sequences:  map[string]*Sequence{},
		procs:      map[string]*Procedure{},
		indexOwner: map[string]*Table{},
		stmtCache:  map[string]*list.Element{},
		lruList:    list.New(),
		rawCache:   map[string]*list.Element{},
		rawList:    list.New(),
	}
}

// DeadlineRefusals returns how many statements were refused at the
// session boundary because the session's bound context had expired.
func (db *DB) DeadlineRefusals() int64 { return db.deadlineRefusals.Load() }

// Name returns the database name given to Open.
func (db *DB) Name() string { return db.name }

// Stats returns a snapshot of the engine's activity counters.
func (db *DB) Stats() Stats {
	return Stats{
		Statements:    db.stmtCount.Load(),
		RowsRead:      db.rowsRead.Load(),
		RowsWritten:   db.rowsWritten.Load(),
		BytesReturned: db.bytesReturned.Load(),
	}
}

// ResetStats zeroes the activity counters.
func (db *DB) ResetStats() {
	db.stmtCount.Store(0)
	db.rowsRead.Store(0)
	db.rowsWritten.Store(0)
	db.bytesReturned.Store(0)
}

// StmtCacheStats is a snapshot of the parsed-statement cache counters.
type StmtCacheStats struct {
	Size          int   // statements currently cached
	Hits          int64 // Exec/ExecNamed calls served from the cache
	Misses        int64 // calls that had to parse
	Flushes       int64 // whole-cache flushes (none in normal operation)
	Evictions     int64 // single LRU evictions (capacity pressure)
	Invalidations int64 // entries dropped by DDL-scoped invalidation
}

// StmtCacheStats returns a snapshot of the parsed-statement cache.
func (db *DB) StmtCacheStats() StmtCacheStats {
	db.cacheMu.Lock()
	size := len(db.stmtCache)
	db.cacheMu.Unlock()
	return StmtCacheStats{
		Size:          size,
		Hits:          db.cacheHits.Load(),
		Misses:        db.cacheMisses.Load(),
		Flushes:       db.cacheFlushes.Load(),
		Evictions:     db.cacheEvictions.Load(),
		Invalidations: db.cacheInvalidations.Load(),
	}
}

// cachedParse resolves SQL text to a parsed statement through the
// two-level per-DB statement cache. A literal-identical repeat is
// served by the raw front cache without lexing; otherwise the text is
// normalized (literals extracted into bind slots) and the plan is
// looked up — or parsed and inserted — under the normalized text.
// Statements the normalizer declines parse and cache under raw text.
// Statements that fail to parse are not cached. A hit moves the plan
// entry to the front of the LRU order; an insert past capacity evicts
// the coldest entry.
//
// A parser that loses the insert race to a concurrent parser of the
// same plan adopts the winner's entry and reports a HIT with zero
// parse time: the cached plan is what executes, so charging the loser's
// discarded parse (and a miss) to its caller's StmtStats would be a
// lie about the statement that actually ran.
func (db *DB) cachedParse(sql string) (parsedStmt, error) {
	db.cacheMu.Lock()
	if el, ok := db.rawCache[sql]; ok {
		re := el.Value.(*rawEntry)
		if !re.ce.dead {
			db.rawList.MoveToFront(el)
			db.lruList.MoveToFront(re.ce.el)
			db.cacheMu.Unlock()
			db.cacheHits.Add(1)
			return parsedStmt{st: re.ce.st, fp: &re.ce.fp, norm: re.ce.sql, consts: re.consts, pattern: re.pattern, hit: true}, nil
		}
		db.rawList.Remove(el)
		delete(db.rawCache, sql)
	}
	db.cacheMu.Unlock()

	start := time.Now()
	n, normalized := normalizeStmt(sql)
	key := sql
	if normalized {
		key = n.text
	}
	db.cacheMu.Lock()
	if el, ok := db.stmtCache[key]; ok {
		db.lruList.MoveToFront(el)
		ce := el.Value.(*cacheEntry)
		db.insertRawLocked(sql, ce, n.consts, n.pattern)
		db.cacheMu.Unlock()
		db.cacheHits.Add(1)
		return parsedStmt{st: ce.st, fp: &ce.fp, norm: key, consts: n.consts, pattern: n.pattern, hit: true}, nil
	}
	db.cacheMu.Unlock()

	var st Stmt
	var err error
	if normalized {
		st, err = parseTokens(sql, n.toks)
	} else {
		st, err = Parse(sql)
	}
	parse := time.Since(start)
	if err != nil {
		return parsedStmt{}, err
	}
	if parseRaceHook != nil {
		parseRaceHook()
	}
	refs := stmtRefSet(st)
	db.cacheMu.Lock()
	var ce *cacheEntry
	hit := false
	if el, ok := db.stmtCache[key]; ok {
		// Lost the race to another parser of the same plan: adopt the
		// winner's entry, report a hit, charge no parse time.
		db.lruList.MoveToFront(el)
		ce = el.Value.(*cacheEntry)
		hit = true
		parse = 0
	} else {
		for len(db.stmtCache) >= stmtCacheCap {
			coldest := db.lruList.Back()
			if coldest == nil {
				break
			}
			db.lruList.Remove(coldest)
			dead := coldest.Value.(*cacheEntry)
			dead.dead = true
			delete(db.stmtCache, dead.sql)
			db.cacheEvictions.Add(1)
		}
		ce = &cacheEntry{sql: key, st: st, refs: refs}
		ce.el = db.lruList.PushFront(ce)
		db.stmtCache[key] = ce.el
		db.cacheSize.Store(int64(len(db.stmtCache)))
	}
	db.insertRawLocked(sql, ce, n.consts, n.pattern)
	db.cacheMu.Unlock()
	if hit {
		db.cacheHits.Add(1)
	} else {
		db.cacheMisses.Add(1)
	}
	return parsedStmt{st: ce.st, fp: &ce.fp, norm: key, consts: n.consts, pattern: n.pattern, parse: parse, hit: hit}, nil
}

// insertRawLocked records (or refreshes) the raw-text front-cache entry
// mapping this exact text to its plan entry. Caller holds cacheMu.
// Front-cache eviction is not counted in Evictions — no plan is lost.
func (db *DB) insertRawLocked(sql string, ce *cacheEntry, consts []Value, pattern []uint8) {
	if el, ok := db.rawCache[sql]; ok {
		re := el.Value.(*rawEntry)
		re.ce, re.consts, re.pattern = ce, consts, pattern
		db.rawList.MoveToFront(el)
		return
	}
	for len(db.rawCache) >= rawCacheCap {
		coldest := db.rawList.Back()
		if coldest == nil {
			break
		}
		db.rawList.Remove(coldest)
		delete(db.rawCache, coldest.Value.(*rawEntry).sql)
	}
	db.rawCache[sql] = db.rawList.PushFront(&rawEntry{sql: sql, ce: ce, consts: consts, pattern: pattern})
}

// ddlAffected resolves the lowercased object names a DDL statement
// invalidates cached statements for: its direct target(s), plus every
// view that (transitively) references an affected object. Called before
// the DDL executes, under the exclusive engine lock — DROP INDEX needs
// the owner table while the index still exists, and the view closure
// needs the pre-DDL view set.
func (db *DB) ddlAffected(st Stmt) []string {
	affected := map[string]bool{}
	add := func(n string) {
		if n != "" {
			affected[strings.ToLower(n)] = true
		}
	}
	switch t := st.(type) {
	case *CreateTableStmt:
		add(t.Table)
	case *DropTableStmt:
		add(t.Table)
	case *AlterTableStmt:
		add(t.Table)
		add(t.Name) // RENAME: both old and new names are affected
	case *CreateIndexStmt:
		add(t.Name)
		add(t.Table)
	case *DropIndexStmt:
		add(t.Name)
		if owner, ok := db.indexOwner[strings.ToLower(t.Name)]; ok {
			add(owner.Name)
		}
	case *CreateViewStmt:
		add(t.Name)
	case *DropViewStmt:
		add(t.Name)
	case *CreateSequenceStmt:
		add(t.Name)
	case *DropSequenceStmt:
		add(t.Name)
	case *CreateProcedureStmt:
		add(t.Name)
	case *DropProcedureStmt:
		add(t.Name)
	default:
		return nil
	}
	// Close over views: a view whose query references an affected object
	// is itself affected (statements scanning the view must drop too).
	for changed := true; changed; {
		changed = false
		for name, v := range db.views {
			if affected[name] {
				continue
			}
			refs := map[string]bool{}
			selectRefs(v.Query, refs)
			for n := range refs {
				if affected[n] {
					affected[name] = true
					changed = true
					break
				}
			}
		}
	}
	out := make([]string, 0, len(affected))
	for n := range affected {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// invalidateStmtCacheFor drops the cached statements whose reference
// sets intersect the affected object names — the DDL-scoped
// replacement for the old whole-cache flush, so DDL on one table no
// longer costs unrelated hot statements their parse. Each dropped entry
// counts as one Invalidation.
func (db *DB) invalidateStmtCacheFor(affected []string) {
	if len(affected) == 0 {
		return
	}
	db.cacheMu.Lock()
	for el := db.lruList.Front(); el != nil; {
		next := el.Next()
		ce := el.Value.(*cacheEntry)
		for _, n := range affected {
			if ce.refs[n] {
				db.lruList.Remove(el)
				ce.dead = true // raw front-cache entries drop lazily
				delete(db.stmtCache, ce.sql)
				db.cacheInvalidations.Add(1)
				break
			}
		}
		el = next
	}
	db.cacheSize.Store(int64(len(db.stmtCache)))
	db.cacheMu.Unlock()
}

// invalidateStmtCache drops every cached statement — kept for paths
// that change object resolution wholesale (none in normal operation;
// scoped DDL invalidation uses invalidateStmtCacheFor).
func (db *DB) invalidateStmtCache() {
	db.cacheMu.Lock()
	if len(db.stmtCache) > 0 {
		for el := db.lruList.Front(); el != nil; el = el.Next() {
			el.Value.(*cacheEntry).dead = true
		}
		db.stmtCache = map[string]*list.Element{}
		db.lruList.Init()
		db.rawCache = map[string]*list.Element{}
		db.rawList.Init()
		db.cacheSize.Store(0)
		db.cacheFlushes.Add(1)
	}
	db.cacheMu.Unlock()
}

// TableNames returns the names of all tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// HasTable reports whether the named table exists.
func (db *DB) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[strings.ToLower(name)]
	return ok
}

// Schema returns the column definitions of the named table.
func (db *DB) Schema(table string) ([]Column, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %s", table)
	}
	cols := make([]Column, len(t.Columns))
	copy(cols, t.Columns)
	return cols, nil
}

func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %s", name)
	}
	return t, nil
}

// RegisterProcedure installs a native (Go-implemented) stored procedure.
// Native procedures model vendor-supplied database logic; SQL-bodied
// procedures are created with CREATE PROCEDURE.
func (db *DB) RegisterProcedure(name string, fn NativeProc) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.procs[strings.ToLower(name)] = &Procedure{Name: name, Native: fn}
	db.footGen.Add(1) // CALL footprints may now resolve differently
}

// Session opens a new session on the database. Sessions are cheap; each
// workflow instance (or activity execution) typically uses its own.
func (db *DB) Session() *Session {
	return &Session{db: db, id: db.sessionIDs.Add(1)}
}

// Change is one entry of the database's change stream: a successfully
// executed top-level mutating statement (IUD, DDL, CALL, and the
// transaction boundaries BEGIN/COMMIT/ROLLBACK), in engine execution
// order. Replaying the stream against a database bootstrapped from the
// same starting state reproduces the primary — the statement-based
// replication an Applier performs.
type Change struct {
	// Seq is the global change sequence number, dense and strictly
	// increasing in execution order. A replica bootstrapped from a dump
	// taken at sequence S applies only changes with Seq > S.
	Seq int64
	// Session is the origin session id (Session.ID). Interleaved
	// transactions from concurrent sessions replay correctly only when
	// each origin session's statements run on a dedicated replica
	// session — the Applier keeps that map.
	Session int64
	// Kind is the statement kind label (StmtKind).
	Kind string
	// SQL is the original statement text; Params/Named are its bind
	// values.
	SQL    string
	Params []Value
	Named  map[string]Value
}

// ChangeSink receives every change in execution order. It is called
// under the engine's commit critical section while the emitting
// statement still holds its table latches — that is what makes the
// order authoritative per table — so implementations must be fast and
// must not call back into the database.
type ChangeSink func(Change)

// SetChangeSink installs (or with nil removes) the change-stream
// capture hook. Statements executed through Exec, ExecNamed, and
// prepared statements are captured; the pre-parsed ExecStmt/ExecScript
// paths carry no SQL text and are only counted in ChangesMissed, so a
// replicated database should receive its writes through the text-
// carrying paths once the sink is installed.
func (db *DB) SetChangeSink(fn ChangeSink) {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	db.changeSink = fn
}

// currentChangeSink returns the installed change sink (nil if none).
func (db *DB) currentChangeSink() ChangeSink {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	return db.changeSink
}

// ChangeSeq returns the sequence number of the most recent captured
// change. Together with Dump it defines a replica bootstrap point: the
// pair (Dump(), ChangeSeq()) taken back-to-back is consistent because
// Dump holds the engine lock that change capture also runs under.
func (db *DB) ChangeSeq() int64 { return db.changeSeq.Load() }

// ChangesMissed counts mutating statements that executed while a change
// sink was installed but carried no SQL text (ExecStmt/ExecScript). A
// non-zero delta during replication means the replica stream is
// incomplete and downstream replicas should re-bootstrap.
func (db *DB) ChangesMissed() int64 { return db.changesMissed.Load() }

// SetReadOnly switches the database in or out of replica mode: when
// read-only, every mutating statement from a normal session is refused
// at the session boundary with an error wrapping ErrReadOnly, while
// applier sessions (NewApplier) still write. SELECT and EXPLAIN are
// unaffected — serving those is the point of a read replica.
func (db *DB) SetReadOnly(on bool) { db.readOnly.Store(on) }

// ReadOnly reports whether the database is in replica mode.
func (db *DB) ReadOnly() bool { return db.readOnly.Load() }

// Exec is a convenience that runs a statement on a throwaway session.
func (db *DB) Exec(sql string, params ...Value) (*Result, error) {
	return db.Session().Exec(sql, params...)
}

// MustExec runs a statement and panics on error; intended for tests and
// example setup code.
func (db *DB) MustExec(sql string, params ...Value) *Result {
	r, err := db.Exec(sql, params...)
	if err != nil {
		panic(err)
	}
	return r
}

// ExecScript executes a semicolon-separated script atomically with respect
// to each statement (no surrounding transaction). It returns the result of
// the last statement.
func (db *DB) ExecScript(script string) (*Result, error) {
	stmts, err := ParseScript(script)
	if err != nil {
		return nil, err
	}
	s := db.Session()
	var last *Result
	for _, st := range stmts {
		last, err = s.ExecStmt(st, nil, nil)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}
