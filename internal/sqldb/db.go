package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DB is an embeddable in-memory relational database. All operations are
// safe for concurrent use; statement execution is serialized by an internal
// lock (single-writer engine).
type DB struct {
	mu         sync.Mutex
	name       string
	tables     map[string]*Table
	views      map[string]*view
	sequences  map[string]*Sequence
	procs      map[string]*Procedure
	indexOwner map[string]*Table // index name -> owning table

	// stats counters (observable via Stats) used by benchmarks and the
	// reproduction's data-volume measurements.
	stmtCount     int64
	rowsRead      int64
	rowsWritten   int64
	bytesReturned int64

	// hookMu guards execHook and statsSink separately from mu so the hook
	// can sleep (latency injection) without serializing against statement
	// execution.
	hookMu    sync.Mutex
	execHook  ExecHook
	statsSink StatsSink
}

// ExecHook intercepts every top-level statement executed against the
// database, before the engine lock is taken. kind is the statement kind
// (see StmtKind: "SELECT", "INSERT", "COMMIT", ...). A non-nil return
// fails the statement without executing it — the chaos layer uses this to
// model a flaky connection that can fail the Nth statement or commit, and
// to inject latency by sleeping before returning nil. Re-entrant execution
// (statements inside stored procedures) does not pass through the hook.
type ExecHook func(kind string) error

// SetExecHook installs (or, with nil, removes) the statement interceptor.
func (db *DB) SetExecHook(h ExecHook) {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	db.execHook = h
}

// currentExecHook returns the installed hook (nil if none).
func (db *DB) currentExecHook() ExecHook {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	return db.execHook
}

// Stats is a snapshot of the engine's activity counters.
type Stats struct {
	Statements    int64
	RowsRead      int64
	RowsWritten   int64
	BytesReturned int64
}

// Open creates a new, empty database with the given name. The name is used
// by data-source references in the workflow layers (e.g. dynamic binding in
// the BIS reproduction).
func Open(name string) *DB {
	return &DB{
		name:       name,
		tables:     map[string]*Table{},
		views:      map[string]*view{},
		sequences:  map[string]*Sequence{},
		procs:      map[string]*Procedure{},
		indexOwner: map[string]*Table{},
	}
}

// Name returns the database name given to Open.
func (db *DB) Name() string { return db.name }

// Stats returns a snapshot of the engine's activity counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return Stats{
		Statements:    db.stmtCount,
		RowsRead:      db.rowsRead,
		RowsWritten:   db.rowsWritten,
		BytesReturned: db.bytesReturned,
	}
}

// ResetStats zeroes the activity counters.
func (db *DB) ResetStats() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.stmtCount, db.rowsRead, db.rowsWritten, db.bytesReturned = 0, 0, 0, 0
}

// TableNames returns the names of all tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// HasTable reports whether the named table exists.
func (db *DB) HasTable(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.tables[strings.ToLower(name)]
	return ok
}

// Schema returns the column definitions of the named table.
func (db *DB) Schema(table string) ([]Column, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %s", table)
	}
	cols := make([]Column, len(t.Columns))
	copy(cols, t.Columns)
	return cols, nil
}

func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %s", name)
	}
	return t, nil
}

// RegisterProcedure installs a native (Go-implemented) stored procedure.
// Native procedures model vendor-supplied database logic; SQL-bodied
// procedures are created with CREATE PROCEDURE.
func (db *DB) RegisterProcedure(name string, fn NativeProc) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.procs[strings.ToLower(name)] = &Procedure{Name: name, Native: fn}
}

// Session opens a new session on the database. Sessions are cheap; each
// workflow activity execution typically uses its own.
func (db *DB) Session() *Session {
	return &Session{db: db}
}

// Exec is a convenience that runs a statement on a throwaway session.
func (db *DB) Exec(sql string, params ...Value) (*Result, error) {
	return db.Session().Exec(sql, params...)
}

// MustExec runs a statement and panics on error; intended for tests and
// example setup code.
func (db *DB) MustExec(sql string, params ...Value) *Result {
	r, err := db.Exec(sql, params...)
	if err != nil {
		panic(err)
	}
	return r
}

// ExecScript executes a semicolon-separated script atomically with respect
// to each statement (no surrounding transaction). It returns the result of
// the last statement.
func (db *DB) ExecScript(script string) (*Result, error) {
	stmts, err := ParseScript(script)
	if err != nil {
		return nil, err
	}
	s := db.Session()
	var last *Result
	for _, st := range stmts {
		last, err = s.ExecStmt(st, nil, nil)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}
