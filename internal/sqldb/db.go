package sqldb

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DB is an embeddable in-memory relational database. All operations are
// safe for concurrent use. Statement execution is serialized by an
// internal reader/writer lock: read-only statements (SELECT, EXPLAIN)
// execute concurrently under the shared lock, while IUD and DDL
// statements take the exclusive lock (single-writer engine). The
// resulting isolation level is read-uncommitted — readers may observe
// rows another session's open transaction later rolls back — which
// matches the weakest level the surveyed products run their SQL
// activities at.
type DB struct {
	mu         sync.RWMutex
	name       string
	tables     map[string]*Table
	views      map[string]*view
	sequences  map[string]*Sequence
	procs      map[string]*Procedure
	indexOwner map[string]*Table // index name -> owning table

	// stats counters (observable via Stats) used by benchmarks and the
	// reproduction's data-volume measurements. Atomics: read-only
	// statements increment them while holding only the shared lock.
	stmtCount        atomic.Int64
	rowsRead         atomic.Int64
	rowsWritten      atomic.Int64
	bytesReturned    atomic.Int64
	deadlineRefusals atomic.Int64

	// parsed-statement cache: SQL text -> parsed AST, so hot statements
	// executed through Exec/ExecNamed are parsed once per database
	// instead of once per call. ASTs are immutable after parsing, so a
	// cached statement may execute concurrently on many sessions. The
	// cache is an LRU: lruList is ordered most- to least-recently used,
	// and an insert past stmtCacheCap evicts the coldest entry — a hot
	// statement survives pressure from a churn of one-off SQL text,
	// unlike the previous full-flush-on-overflow design.
	cacheMu        sync.Mutex
	stmtCache      map[string]*list.Element // SQL text -> lruList element
	lruList        *list.List               // of *cacheEntry, front = hottest
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheFlushes   atomic.Int64
	cacheEvictions atomic.Int64

	// hookMu guards execHook and statsSink separately from mu so the hook
	// can sleep (latency injection) without serializing against statement
	// execution.
	hookMu    sync.Mutex
	execHook  ExecHook
	statsSink StatsSink

	// Change-data-capture plumbing (see SetChangeSink): sessionIDs mints
	// the per-session origin ids the stream is keyed by, changeSeq is the
	// global change sequence (advanced under the exclusive engine lock,
	// so it orders exactly like execution), changesMissed counts mutating
	// statements that executed without capturable SQL text, and readOnly
	// puts the database in replica mode (only applier sessions may
	// write).
	changeSink    ChangeSink
	sessionIDs    atomic.Int64
	changeSeq     atomic.Int64
	changesMissed atomic.Int64
	readOnly      atomic.Bool
}

// stmtCacheCap bounds the parsed-statement cache. When an insert would
// exceed it the least-recently-used entry is evicted, so hot statements
// survive pressure from workloads that generate unbounded distinct SQL
// text.
const stmtCacheCap = 1024

// cacheEntry is one LRU slot: the SQL text (to unlink the map entry on
// eviction) and its parsed statement.
type cacheEntry struct {
	sql string
	st  Stmt
}

// ExecHook intercepts every top-level statement executed against the
// database, before the engine lock is taken. kind is the statement kind
// (see StmtKind: "SELECT", "INSERT", "COMMIT", ...). A non-nil return
// fails the statement without executing it — the chaos layer uses this to
// model a flaky connection that can fail the Nth statement or commit, and
// to inject latency by sleeping before returning nil. Re-entrant execution
// (statements inside stored procedures) does not pass through the hook.
type ExecHook func(kind string) error

// SetExecHook installs (or, with nil, removes) the statement interceptor.
func (db *DB) SetExecHook(h ExecHook) {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	db.execHook = h
}

// currentExecHook returns the installed hook (nil if none).
func (db *DB) currentExecHook() ExecHook {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	return db.execHook
}

// Stats is a snapshot of the engine's activity counters.
type Stats struct {
	Statements    int64
	RowsRead      int64
	RowsWritten   int64
	BytesReturned int64
}

// Open creates a new, empty database with the given name. The name is used
// by data-source references in the workflow layers (e.g. dynamic binding in
// the BIS reproduction).
func Open(name string) *DB {
	return &DB{
		name:       name,
		tables:     map[string]*Table{},
		views:      map[string]*view{},
		sequences:  map[string]*Sequence{},
		procs:      map[string]*Procedure{},
		indexOwner: map[string]*Table{},
		stmtCache:  map[string]*list.Element{},
		lruList:    list.New(),
	}
}

// DeadlineRefusals returns how many statements were refused at the
// session boundary because the session's bound context had expired.
func (db *DB) DeadlineRefusals() int64 { return db.deadlineRefusals.Load() }

// Name returns the database name given to Open.
func (db *DB) Name() string { return db.name }

// Stats returns a snapshot of the engine's activity counters.
func (db *DB) Stats() Stats {
	return Stats{
		Statements:    db.stmtCount.Load(),
		RowsRead:      db.rowsRead.Load(),
		RowsWritten:   db.rowsWritten.Load(),
		BytesReturned: db.bytesReturned.Load(),
	}
}

// ResetStats zeroes the activity counters.
func (db *DB) ResetStats() {
	db.stmtCount.Store(0)
	db.rowsRead.Store(0)
	db.rowsWritten.Store(0)
	db.bytesReturned.Store(0)
}

// StmtCacheStats is a snapshot of the parsed-statement cache counters.
type StmtCacheStats struct {
	Size      int   // statements currently cached
	Hits      int64 // Exec/ExecNamed calls served from the cache
	Misses    int64 // calls that had to parse
	Flushes   int64 // full invalidations (DDL)
	Evictions int64 // single LRU evictions (capacity pressure)
}

// StmtCacheStats returns a snapshot of the parsed-statement cache.
func (db *DB) StmtCacheStats() StmtCacheStats {
	db.cacheMu.Lock()
	size := len(db.stmtCache)
	db.cacheMu.Unlock()
	return StmtCacheStats{
		Size:      size,
		Hits:      db.cacheHits.Load(),
		Misses:    db.cacheMisses.Load(),
		Flushes:   db.cacheFlushes.Load(),
		Evictions: db.cacheEvictions.Load(),
	}
}

// cachedParse resolves SQL text to a parsed statement through the per-DB
// statement cache. It returns the statement, the parse duration charged to
// this call (zero on a hit), and whether the cache served it. Statements
// that fail to parse are not cached. A hit moves the entry to the front
// of the LRU order; an insert past capacity evicts the coldest entry.
func (db *DB) cachedParse(sql string) (Stmt, time.Duration, bool, error) {
	db.cacheMu.Lock()
	if el, ok := db.stmtCache[sql]; ok {
		db.lruList.MoveToFront(el)
		st := el.Value.(*cacheEntry).st
		db.cacheMu.Unlock()
		db.cacheHits.Add(1)
		return st, 0, true, nil
	}
	db.cacheMu.Unlock()
	start := time.Now()
	st, err := Parse(sql)
	parse := time.Since(start)
	if err != nil {
		return nil, parse, false, err
	}
	db.cacheMisses.Add(1)
	db.cacheMu.Lock()
	if el, ok := db.stmtCache[sql]; ok {
		// Raced with another parser of the same text; keep theirs.
		db.lruList.MoveToFront(el)
	} else {
		for len(db.stmtCache) >= stmtCacheCap {
			coldest := db.lruList.Back()
			if coldest == nil {
				break
			}
			db.lruList.Remove(coldest)
			delete(db.stmtCache, coldest.Value.(*cacheEntry).sql)
			db.cacheEvictions.Add(1)
		}
		db.stmtCache[sql] = db.lruList.PushFront(&cacheEntry{sql: sql, st: st})
	}
	db.cacheMu.Unlock()
	return st, parse, false, nil
}

// invalidateStmtCache drops every cached statement. Called after a DDL
// statement commits: cached ASTs bind object names at execution time, so
// this is defensive rather than required for correctness, but it keeps the
// cache from pinning parse trees that reference dropped objects. DDL
// keeps the full-flush semantics; only capacity pressure uses LRU
// eviction.
func (db *DB) invalidateStmtCache() {
	db.cacheMu.Lock()
	if len(db.stmtCache) > 0 {
		db.stmtCache = map[string]*list.Element{}
		db.lruList.Init()
		db.cacheFlushes.Add(1)
	}
	db.cacheMu.Unlock()
}

// TableNames returns the names of all tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// HasTable reports whether the named table exists.
func (db *DB) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[strings.ToLower(name)]
	return ok
}

// Schema returns the column definitions of the named table.
func (db *DB) Schema(table string) ([]Column, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %s", table)
	}
	cols := make([]Column, len(t.Columns))
	copy(cols, t.Columns)
	return cols, nil
}

func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %s", name)
	}
	return t, nil
}

// RegisterProcedure installs a native (Go-implemented) stored procedure.
// Native procedures model vendor-supplied database logic; SQL-bodied
// procedures are created with CREATE PROCEDURE.
func (db *DB) RegisterProcedure(name string, fn NativeProc) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.procs[strings.ToLower(name)] = &Procedure{Name: name, Native: fn}
}

// Session opens a new session on the database. Sessions are cheap; each
// workflow instance (or activity execution) typically uses its own.
func (db *DB) Session() *Session {
	return &Session{db: db, id: db.sessionIDs.Add(1)}
}

// Change is one entry of the database's change stream: a successfully
// executed top-level mutating statement (IUD, DDL, CALL, and the
// transaction boundaries BEGIN/COMMIT/ROLLBACK), in engine execution
// order. Replaying the stream against a database bootstrapped from the
// same starting state reproduces the primary — the statement-based
// replication an Applier performs.
type Change struct {
	// Seq is the global change sequence number, dense and strictly
	// increasing in execution order. A replica bootstrapped from a dump
	// taken at sequence S applies only changes with Seq > S.
	Seq int64
	// Session is the origin session id (Session.ID). Interleaved
	// transactions from concurrent sessions replay correctly only when
	// each origin session's statements run on a dedicated replica
	// session — the Applier keeps that map.
	Session int64
	// Kind is the statement kind label (StmtKind).
	Kind string
	// SQL is the original statement text; Params/Named are its bind
	// values.
	SQL    string
	Params []Value
	Named  map[string]Value
}

// ChangeSink receives every change in execution order. It is called
// with the exclusive engine lock held — that is what makes the order
// authoritative — so implementations must be fast and must not call
// back into the database.
type ChangeSink func(Change)

// SetChangeSink installs (or with nil removes) the change-stream
// capture hook. Statements executed through Exec, ExecNamed, and
// prepared statements are captured; the pre-parsed ExecStmt/ExecScript
// paths carry no SQL text and are only counted in ChangesMissed, so a
// replicated database should receive its writes through the text-
// carrying paths once the sink is installed.
func (db *DB) SetChangeSink(fn ChangeSink) {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	db.changeSink = fn
}

// currentChangeSink returns the installed change sink (nil if none).
func (db *DB) currentChangeSink() ChangeSink {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	return db.changeSink
}

// ChangeSeq returns the sequence number of the most recent captured
// change. Together with Dump it defines a replica bootstrap point: the
// pair (Dump(), ChangeSeq()) taken back-to-back is consistent because
// Dump holds the engine lock that change capture also runs under.
func (db *DB) ChangeSeq() int64 { return db.changeSeq.Load() }

// ChangesMissed counts mutating statements that executed while a change
// sink was installed but carried no SQL text (ExecStmt/ExecScript). A
// non-zero delta during replication means the replica stream is
// incomplete and downstream replicas should re-bootstrap.
func (db *DB) ChangesMissed() int64 { return db.changesMissed.Load() }

// SetReadOnly switches the database in or out of replica mode: when
// read-only, every mutating statement from a normal session is refused
// at the session boundary with an error wrapping ErrReadOnly, while
// applier sessions (NewApplier) still write. SELECT and EXPLAIN are
// unaffected — serving those is the point of a read replica.
func (db *DB) SetReadOnly(on bool) { db.readOnly.Store(on) }

// ReadOnly reports whether the database is in replica mode.
func (db *DB) ReadOnly() bool { return db.readOnly.Load() }

// Exec is a convenience that runs a statement on a throwaway session.
func (db *DB) Exec(sql string, params ...Value) (*Result, error) {
	return db.Session().Exec(sql, params...)
}

// MustExec runs a statement and panics on error; intended for tests and
// example setup code.
func (db *DB) MustExec(sql string, params ...Value) *Result {
	r, err := db.Exec(sql, params...)
	if err != nil {
		panic(err)
	}
	return r
}

// ExecScript executes a semicolon-separated script atomically with respect
// to each statement (no surrounding transaction). It returns the result of
// the last statement.
func (db *DB) ExecScript(script string) (*Result, error) {
	stmts, err := ParseScript(script)
	if err != nil {
		return nil, err
	}
	s := db.Session()
	var last *Result
	for _, st := range stmts {
		last, err = s.ExecStmt(st, nil, nil)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}
