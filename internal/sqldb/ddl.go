package sqldb

import (
	"fmt"
	"strings"
)

// execCreateTable handles CREATE TABLE, including CREATE TABLE ... AS SELECT.
func (s *Session) execCreateTable(t *CreateTableStmt, params []Value, named map[string]Value) (*Result, error) {
	lc := strings.ToLower(t.Table)
	if _, exists := s.db.tables[lc]; exists {
		if t.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sqldb: table %s already exists", t.Table)
	}
	if _, exists := s.db.views[lc]; exists {
		return nil, fmt.Errorf("sqldb: a view named %s already exists", t.Table)
	}
	if t.AsQuery != nil {
		base := &env{params: params, named: named, session: s}
		qres, err := s.execSelect(t.AsQuery, base)
		if err != nil {
			return nil, err
		}
		cols := make([]Column, len(qres.Columns))
		for i, name := range qres.Columns {
			cols[i] = Column{Name: name, Type: inferColumnType(qres.Rows, i)}
		}
		tbl, err := newTable(t.Table, cols)
		if err != nil {
			return nil, err
		}
		for _, row := range qres.Rows {
			r, err := tbl.insertVersion(row, s.txn.id)
			if err != nil {
				return nil, err
			}
			s.txn.ws = append(s.txn.ws, wsEntry{t: tbl, r: r, kind: wsInsert})
		}
		s.db.tables[lc] = tbl
		if tbl.pkIndex != nil {
			s.db.indexOwner[strings.ToLower(tbl.pkIndex.Name)] = tbl
		}
		s.db.rowsWritten.Add(int64(len(qres.Rows)))
		return &Result{RowsAffected: len(qres.Rows)}, nil
	}
	if len(t.Columns) == 0 {
		return nil, fmt.Errorf("sqldb: table %s must have at least one column", t.Table)
	}
	cols := make([]Column, len(t.Columns))
	for i, cd := range t.Columns {
		cols[i] = Column{Name: cd.Name, Type: cd.Type, NotNull: cd.NotNull, PrimaryKey: cd.PrimaryKey, Default: cd.Default}
	}
	tbl, err := newTable(t.Table, cols)
	if err != nil {
		return nil, err
	}
	s.db.tables[lc] = tbl
	if tbl.pkIndex != nil {
		s.db.indexOwner[strings.ToLower(tbl.pkIndex.Name)] = tbl
	}
	return &Result{}, nil
}

// execAlterTable handles ALTER TABLE ADD COLUMN / DROP COLUMN / RENAME TO.
// Like the other DDL statements, alterations are not transactional.
func (s *Session) execAlterTable(t *AlterTableStmt, params []Value, named map[string]Value) (*Result, error) {
	tbl, err := s.db.table(t.Table)
	if err != nil {
		return nil, err
	}
	switch t.Kind {
	case AlterAddColumn:
		if tbl.ColumnIndex(t.Column.Name) >= 0 {
			return nil, fmt.Errorf("sqldb: column %s already exists in %s", t.Column.Name, tbl.Name)
		}
		if t.Column.PrimaryKey {
			return nil, fmt.Errorf("sqldb: cannot add a PRIMARY KEY column to an existing table")
		}
		var def Value
		if t.Column.Default != nil {
			base := &env{params: params, named: named, session: s}
			def, err = eval(t.Column.Default, base)
			if err != nil {
				return nil, err
			}
			def, err = coerce(def, t.Column.Type)
			if err != nil {
				return nil, err
			}
		}
		if t.Column.NotNull && def.IsNull() && tbl.RowCount() > 0 {
			return nil, fmt.Errorf("sqldb: adding NOT NULL column %s to a non-empty table requires a DEFAULT", t.Column.Name)
		}
		tbl.Columns = append(tbl.Columns, Column{
			Name: t.Column.Name, Type: t.Column.Type,
			NotNull: t.Column.NotNull, Default: t.Column.Default,
		})
		for _, r := range tbl.rows {
			r.Values = append(r.Values, def)
		}
		return &Result{}, nil
	case AlterDropColumn:
		ci := tbl.ColumnIndex(t.Name)
		if ci < 0 {
			return nil, fmt.Errorf("sqldb: no column %s in %s", t.Name, tbl.Name)
		}
		for _, idx := range tbl.indexes {
			for _, c := range idx.Columns {
				if strings.EqualFold(c, t.Name) {
					return nil, fmt.Errorf("sqldb: column %s is used by index %s", t.Name, idx.Name)
				}
			}
		}
		tbl.Columns = append(tbl.Columns[:ci], tbl.Columns[ci+1:]...)
		for _, r := range tbl.rows {
			r.Values = append(r.Values[:ci], r.Values[ci+1:]...)
		}
		// Index column positions shift; rebuild the lookup offsets.
		for _, idx := range tbl.indexes {
			for i, c := range idx.Columns {
				idx.colIdx[i] = tbl.ColumnIndex(c)
			}
		}
		return &Result{}, nil
	case AlterRenameTable:
		newLC := strings.ToLower(t.Name)
		if _, exists := s.db.tables[newLC]; exists {
			return nil, fmt.Errorf("sqldb: table %s already exists", t.Name)
		}
		delete(s.db.tables, strings.ToLower(tbl.Name))
		tbl.Name = t.Name
		s.db.tables[newLC] = tbl
		return &Result{}, nil
	}
	return nil, fmt.Errorf("sqldb: unknown ALTER TABLE form")
}

// inferColumnType picks a column type for CREATE TABLE AS SELECT from the
// first non-NULL value of the column; all-NULL columns become VARCHAR.
func inferColumnType(rows [][]Value, col int) ColumnType {
	for _, row := range rows {
		switch row[col].K {
		case KindInt:
			return TypeInteger
		case KindFloat:
			return TypeFloat
		case KindString:
			return TypeVarchar
		case KindBool:
			return TypeBoolean
		}
	}
	return TypeVarchar
}
