package sqldb

import (
	"fmt"
	"strings"
	"testing"

	"wfsql/internal/obsv"
)

// figure4DB builds the Figure-4 supplier schema (the paper's running
// example: Orders placed with a supplier, confirmations recorded) with
// the index set the reproduction uses.
func figure4DB(t *testing.T) *DB {
	t.Helper()
	db := Open("orderdb")
	db.MustExec("CREATE TABLE Orders (OrderID INTEGER PRIMARY KEY, ItemID VARCHAR, Quantity INTEGER, Approved BOOLEAN)")
	db.MustExec("CREATE TABLE OrderConfirmations (ItemID VARCHAR, Quantity INTEGER, Confirmation VARCHAR)")
	db.MustExec("CREATE INDEX idx_item ON Orders (ItemID)")
	db.MustExec("CREATE INDEX idx_order_item ON Orders (OrderID, ItemID)")
	db.MustExec("CREATE INDEX idx_conf_item ON OrderConfirmations (ItemID)")
	for i := 1; i <= 20; i++ {
		db.MustExec("INSERT INTO Orders VALUES (?, ?, ?, ?)",
			Int(int64(i)), Str("item-"+string(rune('a'+i%5))), Int(int64(i*10)), Bool(i%2 == 0))
	}
	return db
}

func TestStmtStatsEmitted(t *testing.T) {
	db := figure4DB(t)
	s := db.Session()
	var stats []StmtStats
	s.SetStatsSink(func(st StmtStats) { stats = append(stats, st) })

	if _, err := s.Exec("SELECT * FROM Orders WHERE OrderID = ?", Int(7)); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("want 1 stat, got %d", len(stats))
	}
	st := stats[0]
	if st.Kind != "SELECT" {
		t.Fatalf("kind = %s", st.Kind)
	}
	if st.Table != "Orders" || st.Index != "Orders_pk" {
		t.Fatalf("access path = table %q index %q", st.Table, st.Index)
	}
	if !strings.HasPrefix(st.Plan, "INDEX PROBE Orders USING Orders_pk") {
		t.Fatalf("plan label = %q", st.Plan)
	}
	if st.RowsScanned != 1 || st.RowsReturned != 1 {
		t.Fatalf("rows scanned/returned = %d/%d", st.RowsScanned, st.RowsReturned)
	}
	if st.Parse <= 0 {
		t.Fatalf("parse time not measured: %v", st.Parse)
	}
	if st.Exec < 0 {
		t.Fatalf("exec time negative: %v", st.Exec)
	}

	// A scan query reports the scan plan and full candidate count.
	stats = nil
	if _, err := s.Exec("SELECT * FROM Orders WHERE Quantity > ?", Int(100)); err != nil {
		t.Fatal(err)
	}
	st = stats[0]
	if st.Index != "" || !strings.HasPrefix(st.Plan, "SCAN Orders") {
		t.Fatalf("scan stats = index %q plan %q", st.Index, st.Plan)
	}
	if st.RowsScanned != 20 {
		t.Fatalf("scan should read all 20 rows, got %d", st.RowsScanned)
	}

	// DML reports RowsAffected; errors are recorded.
	stats = nil
	if _, err := s.Exec("UPDATE Orders SET Approved = ? WHERE ItemID = ?", Bool(true), Str("item-b")); err != nil {
		t.Fatal(err)
	}
	if stats[0].Kind != "UPDATE" || stats[0].RowsAffected == 0 {
		t.Fatalf("update stats = %+v", stats[0])
	}
	if stats[0].Index != "idx_item" {
		t.Fatalf("update should probe idx_item, got %q", stats[0].Index)
	}
	stats = nil
	if _, err := s.Exec("SELECT * FROM NoSuchTable"); err == nil {
		t.Fatal("expected error")
	}
	if stats[0].Err == "" {
		t.Fatal("error not recorded in stats")
	}
}

func TestPreparedStmtParseChargedOnce(t *testing.T) {
	db := figure4DB(t)
	s := db.Session()
	var stats []StmtStats
	s.SetStatsSink(func(st StmtStats) { stats = append(stats, st) })

	p, err := s.Prepare("SELECT * FROM Orders WHERE OrderID = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Exec(Int(int64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	if len(stats) != 3 {
		t.Fatalf("want 3 stats, got %d", len(stats))
	}
	if stats[0].Parse <= 0 {
		t.Fatalf("first execution must carry the parse cost, got %v", stats[0].Parse)
	}
	if stats[1].Parse != 0 || stats[2].Parse != 0 {
		t.Fatalf("re-executions must report zero parse: %v %v", stats[1].Parse, stats[2].Parse)
	}
}

// explainAccessPath runs EXPLAIN and returns its first plan line (the
// access path) trimmed of indentation.
func explainAccessPath(t *testing.T, s *Session, query string, params ...Value) string {
	t.Helper()
	res, err := s.Exec("EXPLAIN "+query, params...)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", query, err)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("EXPLAIN %s: empty plan", query)
	}
	return strings.TrimSpace(res.Rows[0][0].String())
}

// TestExplainMatchesExecutorIndexChoice pins, for each indexed query
// shape in the Figure-4 supplier schema, that the index EXPLAIN names is
// exactly the index the executor probes (both flow through the shared
// chooseIndex planner, and the executor reports its actual choice via
// StmtStats).
func TestExplainMatchesExecutorIndexChoice(t *testing.T) {
	db := figure4DB(t)

	shapes := []struct {
		name   string
		query  string
		params []Value
		index  string // "" = scan
	}{
		{"pk-equality", "SELECT * FROM Orders WHERE OrderID = ?", []Value{Int(3)}, "Orders_pk"},
		{"secondary-equality", "SELECT * FROM Orders WHERE ItemID = ?", []Value{Str("item-b")}, "idx_item"},
		{"composite-conjunction", "SELECT * FROM Orders WHERE OrderID = ? AND ItemID = ?", []Value{Int(3), Str("item-d")}, "idx_order_item"},
		{"confirmation-equality", "SELECT * FROM OrderConfirmations WHERE ItemID = ?", []Value{Str("item-a")}, "idx_conf_item"},
		{"extra-conjunct", "SELECT * FROM Orders WHERE ItemID = ? AND Quantity > ?", []Value{Str("item-b"), Int(0)}, "idx_item"},
		{"no-index", "SELECT * FROM Orders WHERE Quantity = ?", []Value{Int(50)}, ""},
		{"disjunction-unsound", "SELECT * FROM Orders WHERE OrderID = ? OR ItemID = ?", []Value{Int(1), Str("item-b")}, ""},
	}

	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			s := db.Session()
			plan := explainAccessPath(t, s, shape.query, shape.params...)

			var got StmtStats
			s.SetStatsSink(func(st StmtStats) { got = st })
			if _, err := s.Exec(shape.query, shape.params...); err != nil {
				t.Fatal(err)
			}

			if got.Index != shape.index {
				t.Fatalf("executor probed %q, want %q", got.Index, shape.index)
			}
			if shape.index != "" {
				want := "USING " + shape.index
				if !strings.Contains(plan, want) {
					t.Fatalf("EXPLAIN %q does not name the executor's index %q", plan, shape.index)
				}
			} else if !strings.HasPrefix(plan, "SCAN ") {
				t.Fatalf("EXPLAIN %q should be a scan", plan)
			}
			// The executor's plan label and EXPLAIN's access path are the
			// same string (shared planLabel renderer).
			if got.Plan != plan {
				t.Fatalf("executor plan %q != EXPLAIN access path %q", got.Plan, plan)
			}
		})
	}
}

// TestChooseIndexDeterministic pins the planner bugfix: with several
// applicable indexes the choice used to range over a Go map (randomized
// iteration), so EXPLAIN could name one index and the next execution
// probe another. The planner now prefers the most specific index with a
// name tiebreak, stably across repeated calls.
func TestChooseIndexDeterministic(t *testing.T) {
	db := Open("det")
	db.MustExec("CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER)")
	// Two single-column indexes, both applicable for a=? AND b=?: the
	// name tiebreak must always pick ia.
	db.MustExec("CREATE INDEX ib ON t (b)")
	db.MustExec("CREATE INDEX ia ON t (a)")
	// A composite index beats both when fully bound.
	db.MustExec("CREATE INDEX zz_ab ON t (a, b)")
	db.MustExec("INSERT INTO t VALUES (1, 2, 3)")

	for i := 0; i < 50; i++ {
		s := db.Session()
		var got StmtStats
		s.SetStatsSink(func(st StmtStats) { got = st })

		if _, err := s.Exec("SELECT * FROM t WHERE a = ? AND b = ?", Int(1), Int(2)); err != nil {
			t.Fatal(err)
		}
		if got.Index != "zz_ab" {
			t.Fatalf("iteration %d: most specific index not chosen: %q", i, got.Index)
		}
		plan := explainAccessPath(t, s, "SELECT * FROM t WHERE a = ? AND b = ?", Int(1), Int(2))
		if !strings.Contains(plan, "USING zz_ab") {
			t.Fatalf("iteration %d: EXPLAIN diverged: %q", i, plan)
		}

		// With only single-column candidates bound, the name tiebreak
		// holds.
		if _, err := s.Exec("SELECT * FROM t WHERE a = ? AND c = ?", Int(1), Int(3)); err != nil {
			t.Fatal(err)
		}
		if got.Index != "ia" {
			t.Fatalf("iteration %d: tiebreak unstable: %q", i, got.Index)
		}
	}
}

func TestDBObservability(t *testing.T) {
	db := figure4DB(t)
	o := obsv.New()
	col := obsv.NewCollector()
	o.Tracer.AddSink(col)
	db.SetObservability(o)

	if _, err := db.Exec("SELECT * FROM Orders WHERE OrderID = ?", Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT * FROM Orders WHERE Quantity = ?", Int(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO OrderConfirmations VALUES (?, ?, ?)", Str("x"), Int(1), Str("ok")); err != nil {
		t.Fatal(err)
	}

	m := o.M()
	if got := m.Counter("sqldb.stmt.SELECT").Value(); got != 2 {
		t.Fatalf("sqldb.stmt.SELECT = %d", got)
	}
	if got := m.Counter("sqldb.index_hits").Value(); got != 1 {
		t.Fatalf("index_hits = %d", got)
	}
	if got := m.Counter("sqldb.index_misses").Value(); got != 1 {
		t.Fatalf("index_misses = %d", got)
	}
	if m.Histogram("sqldb.exec_ms").Count() != 3 {
		t.Fatalf("exec_ms count = %d", m.Histogram("sqldb.exec_ms").Count())
	}

	sqlSpans := col.ByKind(obsv.KindSQL)
	if len(sqlSpans) != 3 {
		t.Fatalf("want 3 SQL spans, got %d", len(sqlSpans))
	}
	if sqlSpans[0].Attrs["plan"] == "" || sqlSpans[0].Attrs["table"] != "Orders" {
		t.Fatalf("span attrs = %v", sqlSpans[0].Attrs)
	}

	// Detach: no further spans or counts.
	db.SetObservability(nil)
	if _, err := db.Exec("SELECT COUNT(*) FROM Orders"); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("sqldb.stmt.SELECT").Value(); got != 2 {
		t.Fatalf("detached DB still counting: %d", got)
	}
}

// TestPreparedParseSurvivesRefusedExecution pins the parse-attribution
// bugfix: the session used to stage the prepared statement's one-time
// parse cost in a mutable session field that ExecStmt consumed *before*
// the ExecHook ran. A chaos-refused first execution therefore discarded
// the parse cost without emitting any stat, and every later StmtStats for
// the statement claimed Parse == 0. Parse durations are now threaded
// through the call explicitly and re-armed when the hook refuses the
// execution, so the first execution that actually runs carries the cost.
func TestPreparedParseSurvivesRefusedExecution(t *testing.T) {
	db := figure4DB(t)
	s := db.Session()
	var stats []StmtStats
	s.SetStatsSink(func(st StmtStats) { stats = append(stats, st) })

	p, err := s.Prepare("SELECT * FROM Orders WHERE OrderID = ?")
	if err != nil {
		t.Fatal(err)
	}

	// Chaos refuses the first execution before it runs.
	refuse := true
	db.SetExecHook(func(kind string) error {
		if refuse {
			refuse = false
			return fmt.Errorf("chaos: connection refused")
		}
		return nil
	})
	if _, err := p.Exec(Int(1)); err == nil {
		t.Fatal("expected the hook to refuse the first execution")
	}
	if len(stats) != 0 {
		t.Fatalf("refused execution must not emit stats, got %d", len(stats))
	}

	// The first execution that actually runs still carries the parse cost.
	if _, err := p.Exec(Int(1)); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("want 1 stat, got %d", len(stats))
	}
	if stats[0].Parse <= 0 {
		t.Fatalf("parse cost lost after refused execution: Parse = %v", stats[0].Parse)
	}

	// And only that one: re-executions report zero parse.
	if _, err := p.Exec(Int(2)); err != nil {
		t.Fatal(err)
	}
	if stats[1].Parse != 0 {
		t.Fatalf("parse charged twice: %v", stats[1].Parse)
	}
}

// TestStmtCacheHitStats pins the statement cache's stats contract: the
// first Exec of a SQL text is a miss that pays (and reports) the parse,
// repeats are hits with zero parse, and the per-DB counters add up.
func TestStmtCacheHitStats(t *testing.T) {
	db := figure4DB(t)
	base := db.StmtCacheStats()
	s := db.Session()
	var stats []StmtStats
	s.SetStatsSink(func(st StmtStats) { stats = append(stats, st) })

	const q = "SELECT * FROM Orders WHERE OrderID = ?"
	for i := 0; i < 3; i++ {
		if _, err := s.Exec(q, Int(int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if stats[0].Cache != CacheMiss || stats[0].Parse <= 0 {
		t.Fatalf("first execution: cache=%q parse=%v, want miss with parse cost", stats[0].Cache, stats[0].Parse)
	}
	for i := 1; i < 3; i++ {
		if stats[i].Cache != CacheHit || stats[i].Parse != 0 {
			t.Fatalf("execution %d: cache=%q parse=%v, want hit with zero parse", i, stats[i].Cache, stats[i].Parse)
		}
	}
	cs := db.StmtCacheStats()
	if cs.Hits-base.Hits != 2 || cs.Misses-base.Misses != 1 {
		t.Fatalf("cache counters: hits+%d misses+%d, want +2/+1", cs.Hits-base.Hits, cs.Misses-base.Misses)
	}

	// DDL on an unrelated table must NOT evict the cached Orders
	// statement: invalidation is scoped to entries referencing the
	// altered table.
	db.MustExec("CREATE TABLE flush_probe (x INTEGER)")
	stats = nil
	if _, err := s.Exec(q, Int(1)); err != nil {
		t.Fatal(err)
	}
	if stats[0].Cache != CacheHit {
		t.Fatalf("DDL on an unrelated table evicted the cached statement: %q", stats[0].Cache)
	}

	// DDL on Orders itself evicts it; the same text parses again.
	db.MustExec("CREATE INDEX probe_idx ON Orders (Quantity)")
	stats = nil
	if _, err := s.Exec(q, Int(1)); err != nil {
		t.Fatal(err)
	}
	if stats[0].Cache != CacheMiss {
		t.Fatalf("DDL on Orders left a stale plan cached: %q", stats[0].Cache)
	}
}
