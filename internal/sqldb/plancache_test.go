package sqldb

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// directExec parses sql without normalization and executes it — the
// unparameterized reference path the normalized plan cache must agree
// with bit-for-bit.
func directExec(t *testing.T, s *Session, sql string) (*Result, error) {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	res, _, eerr := s.execStmt(st, nil, 0, CacheMiss, sql, nil, nil)
	return res, eerr
}

func seedFigureTables(t *testing.T, db *DB) {
	t.Helper()
	db.MustExec("CREATE TABLE orders (id INT PRIMARY KEY, item TEXT, qty INT, price FLOAT)")
	db.MustExec("CREATE TABLE items (name TEXT PRIMARY KEY, approved BOOL)")
}

// TestNormalizedPlanReuseMatchesUnparameterized is the core property of
// the tentpole: for the literal-bearing statement shapes the figure
// workloads execute, running through the normalized plan cache must
// produce literally identical results to a fresh unnormalized parse —
// while literal variants of the same shape share one cached plan.
func TestNormalizedPlanReuseMatchesUnparameterized(t *testing.T) {
	cached := Open("norm-cached")
	ref := Open("norm-ref")
	seedFigureTables(t, cached)
	seedFigureTables(t, ref)
	cs, rs := cached.Session(), ref.Session()

	var workload []string
	for i := 1; i <= 20; i++ {
		workload = append(workload,
			fmt.Sprintf("INSERT INTO orders VALUES (%d, 'item-%d', %d, %d.5)", i, i%5, i*2, i),
			fmt.Sprintf("INSERT INTO items VALUES ('name-%d', %s)", i, map[bool]string{true: "TRUE", false: "FALSE"}[i%2 == 0]),
		)
	}
	workload = append(workload,
		"SELECT item, qty FROM orders WHERE qty > 10 ORDER BY 2, 1",
		"SELECT item, qty FROM orders WHERE qty > 30 ORDER BY 2, 1",
		"SELECT COUNT(*) AS n FROM orders WHERE price BETWEEN 2.0 AND 15.0",
		"SELECT id FROM orders WHERE item IN ('item-1', 'item-3') ORDER BY 1",
		"SELECT id FROM orders WHERE qty = -4 OR id = 7 ORDER BY 1",
		"UPDATE orders SET qty = qty + 100 WHERE id <= 5",
		"UPDATE orders SET qty = qty + 200 WHERE id <= 9",
		"DELETE FROM orders WHERE id = 20",
		"SELECT item, SUM(qty) AS total FROM orders GROUP BY item HAVING SUM(qty) > 50 ORDER BY 1",
		"SELECT o.id FROM orders o, items i WHERE o.item = 'item-2' AND i.approved = TRUE ORDER BY 1 LIMIT 3",
	)

	base := cached.StmtCacheStats()
	for _, sql := range workload {
		got, gerr := cs.Exec(sql)
		want, werr := directExec(t, rs, sql)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("%s: cached err %v, reference err %v", sql, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		if !reflect.DeepEqual(got.Columns, want.Columns) || !reflect.DeepEqual(got.Rows, want.Rows) || got.RowsAffected != want.RowsAffected {
			t.Fatalf("%s: cached result diverged\n got: %+v %+v\nwant: %+v %+v", sql, got.Columns, got.Rows, want.Columns, want.Rows)
		}
	}
	after := cached.StmtCacheStats()
	// The 40 literal-variant INSERTs collapse onto 3 plans (TRUE/FALSE
	// are keywords, so the items INSERT keeps one plan per boolean); the
	// SELECT pair and UPDATE pair each share one. Far more hits than
	// misses.
	if hits := after.Hits - base.Hits; hits < 39 {
		t.Fatalf("literal variants did not share plans: %d hits over %d statements", hits, len(workload))
	}
	if misses := after.Misses - base.Misses; misses > 12 {
		t.Fatalf("too many misses for %d statements: %d", len(workload), misses)
	}
}

// TestNamedVsPositionalBindingAgree: the same predicate bound by name,
// by position, and inline as literals returns identical rows.
func TestNamedVsPositionalBindingAgree(t *testing.T) {
	db := Open("binding")
	seedFigureTables(t, db)
	s := db.Session()
	for i := 1; i <= 8; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, 'x', %d, 1.0)", i, i*10))
	}
	named, err := s.ExecNamed("SELECT id FROM orders WHERE qty > :q ORDER BY 1", map[string]Value{"q": Int(40)})
	if err != nil {
		t.Fatal(err)
	}
	positional, err := s.Exec("SELECT id FROM orders WHERE qty > ? ORDER BY 1", Int(40))
	if err != nil {
		t.Fatal(err)
	}
	inline, err := s.Exec("SELECT id FROM orders WHERE qty > 40 ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(named.Rows, positional.Rows) || !reflect.DeepEqual(positional.Rows, inline.Rows) {
		t.Fatalf("binding modes disagree: named %v positional %v inline %v", named.Rows, positional.Rows, inline.Rows)
	}
	if len(inline.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(inline.Rows))
	}
}

// TestDDLScopedInvalidationDropsParameterizedPlans: a plan cached under
// normalized (literal-extracted) text must still be invalidated by DDL
// on the table it references.
func TestDDLScopedInvalidationDropsParameterizedPlans(t *testing.T) {
	db := Open("inv")
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	s := db.Session()

	if _, err := s.Exec("INSERT INTO t VALUES (1, 2)"); err != nil {
		t.Fatal(err)
	}
	base := db.StmtCacheStats()
	if _, err := s.Exec("INSERT INTO t VALUES (3, 4)"); err != nil {
		t.Fatal(err)
	}
	if cs := db.StmtCacheStats(); cs.Hits != base.Hits+1 {
		t.Fatalf("literal variant missed the normalized plan: hits %d -> %d", base.Hits, cs.Hits)
	}

	db.MustExec("CREATE INDEX ia ON t (a)")
	cs := db.StmtCacheStats()
	if cs.Invalidations <= base.Invalidations {
		t.Fatalf("DDL on t did not invalidate the parameterized plan (invalidations %d)", cs.Invalidations)
	}
	// The next literal variant re-parses (miss), then variants hit again.
	preMiss := cs.Misses
	if _, err := s.Exec("INSERT INTO t VALUES (5, 6)"); err != nil {
		t.Fatal(err)
	}
	if cs = db.StmtCacheStats(); cs.Misses != preMiss+1 {
		t.Fatalf("invalidated plan was still served: misses %d -> %d", preMiss, cs.Misses)
	}
	if _, err := s.Exec("INSERT INTO t VALUES (7, 8)"); err != nil {
		t.Fatal(err)
	}
	if got := db.StmtCacheStats().Hits; got != cs.Hits+1 {
		t.Fatalf("re-cached plan not shared: hits %d -> %d", cs.Hits, got)
	}
}

// TestNormalizationIdempotent: normalizing rendered normalized text is a
// no-op — the property that lets a replica re-resolve change-stream
// statements through the very same path as fresh client SQL.
func TestNormalizationIdempotent(t *testing.T) {
	for _, sql := range []string{
		"INSERT INTO orders VALUES (1, 'a', 2.5, TRUE)",
		"SELECT a FROM t WHERE b = 7 AND c = 'x' ORDER BY 1 LIMIT 10",
		"UPDATE t SET a = 3 WHERE b IN (1, 2, 3)",
		"DELETE FROM t WHERE a BETWEEN 1 AND 9",
		"SELECT a FROM t WHERE b = ? AND c = :name",
	} {
		n1, ok := normalizeStmt(sql)
		if !ok {
			t.Fatalf("%s: not normalizable", sql)
		}
		n2, ok := normalizeStmt(n1.text)
		if !ok {
			t.Fatalf("%s: rendered text not normalizable", n1.text)
		}
		if n2.text != n1.text {
			t.Fatalf("not idempotent:\n first: %s\nsecond: %s", n1.text, n2.text)
		}
		if len(n2.consts) != 0 {
			t.Fatalf("%s: re-normalization extracted %d literals", n1.text, len(n2.consts))
		}
	}
}

// TestOrderByLiteralsNotSlotted: a bare integer in ORDER BY is a
// positional select-list reference; extracting it would silently change
// which column a cached plan sorts by.
func TestOrderByLiteralsNotSlotted(t *testing.T) {
	db := Open("orderby")
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	s := db.Session()
	db.MustExec("INSERT INTO t VALUES (1, 9)")
	db.MustExec("INSERT INTO t VALUES (2, 5)")

	byA, err := s.Exec("SELECT a, b FROM t ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	byB, err := s.Exec("SELECT a, b FROM t ORDER BY 2")
	if err != nil {
		t.Fatal(err)
	}
	if a0, _ := byA.Rows[0][0].AsInt(); a0 != 1 {
		t.Fatalf("ORDER BY 1 first row a = %d, want 1", a0)
	}
	if a0, _ := byB.Rows[0][0].AsInt(); a0 != 2 {
		t.Fatalf("ORDER BY 2 first row a = %d, want 2 (sorted by b)", a0)
	}
	// LIMIT ends the ORDER BY clause, so its literal is slotted again:
	// the two LIMIT variants share one normalized text.
	n1, _ := normalizeStmt("SELECT a FROM t ORDER BY 1 LIMIT 5")
	n2, _ := normalizeStmt("SELECT a FROM t ORDER BY 1 LIMIT 9")
	if n1.text != n2.text {
		t.Fatalf("LIMIT literals not shared:\n%s\n%s", n1.text, n2.text)
	}
	// ...while the ORDER BY positions stay distinct plans.
	o1, _ := normalizeStmt("SELECT a, b FROM t ORDER BY 1")
	o2, _ := normalizeStmt("SELECT a, b FROM t ORDER BY 2")
	if o1.text == o2.text {
		t.Fatal("ORDER BY positions wrongly collapsed onto one plan")
	}
}

// TestBatchedInsertMixedLiteralsAndParams: multi-row VALUES lists bind
// through one statement, with extracted literals and user placeholders
// interleaved in token order.
func TestBatchedInsertMixedLiteralsAndParams(t *testing.T) {
	db := Open("batch")
	db.MustExec("CREATE TABLE t (a INT, b TEXT)")
	s := db.Session()

	res, err := s.Exec("INSERT INTO t VALUES (1, ?), (2, ?), (?, 'fixed')",
		Str("one"), Str("two"), Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 3 {
		t.Fatalf("rows affected = %d, want 3", res.RowsAffected)
	}
	r, err := s.Query("SELECT a, b FROM t ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"1", "one"}, {"2", "two"}, {"3", "fixed"}}
	for i, w := range want {
		if r.Rows[i][0].String() != w[0] || r.Rows[i][1].String() != w[1] {
			t.Fatalf("row %d = %v, want %v", i, r.Rows[i], w)
		}
	}

	// A second batch with different literals reuses the same plan.
	base := db.StmtCacheStats()
	if _, err := s.Exec("INSERT INTO t VALUES (4, ?), (5, ?), (?, 'other')",
		Str("four"), Str("five"), Int(6)); err != nil {
		t.Fatal(err)
	}
	if cs := db.StmtCacheStats(); cs.Hits != base.Hits+1 {
		t.Fatalf("batched variant missed: hits %d -> %d", base.Hits, cs.Hits)
	}
}

// TestUndersuppliedParamsKeepLegacyNumbering: when the caller supplies
// fewer values than its own placeholders, the error must number the
// missing parameter among the *caller's* placeholders — unaffected by
// extracted literals shifting slot indexes.
func TestUndersuppliedParamsKeepLegacyNumbering(t *testing.T) {
	db := Open("undersupply")
	db.MustExec("CREATE TABLE t (a INT, b INT, c INT)")
	s := db.Session()
	_, err := s.Exec("INSERT INTO t VALUES (1, ?, ?)", Int(2))
	if err == nil {
		t.Fatal("undersupplied exec succeeded")
	}
	if got := err.Error(); got != "sqldb: missing value for parameter 2" {
		t.Fatalf("error = %q, want legacy numbering among the caller's placeholders", got)
	}
}

// TestChangeStreamRoundTripWithLiterals: literal-bearing statements
// emitted as normalized text + merged params must replay identically on
// a replica, and legacy inline-literal changes (pre-normalization wire
// form) must still apply.
func TestChangeStreamRoundTripWithLiterals(t *testing.T) {
	primary := Open("cdc-primary")
	replica := Open("cdc-replica")
	for _, db := range []*DB{primary, replica} {
		db.MustExec("CREATE TABLE t (a INT, b TEXT)")
	}

	var changes []Change
	primary.SetChangeSink(func(c Change) { changes = append(changes, c) })
	s := primary.Session()
	if _, err := s.Exec("INSERT INTO t VALUES (1, 'alpha')"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO t VALUES (2, ?)", Str("beta")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("UPDATE t SET b = 'ALPHA' WHERE a = 1"); err != nil {
		t.Fatal(err)
	}
	primary.SetChangeSink(nil)

	a := NewApplier(replica, 0)
	for _, c := range changes {
		if err := a.Apply(c); err != nil {
			t.Fatalf("apply seq %d (%s): %v", c.Seq, c.SQL, err)
		}
	}
	// A legacy change carrying inline literals (as an old primary would
	// have journaled) re-extracts through the same path.
	legacy := Change{Seq: changes[len(changes)-1].Seq + 1, Session: changes[0].Session,
		Kind: "INSERT", SQL: "INSERT INTO t VALUES (3, 'legacy')"}
	if err := a.Apply(legacy); err != nil {
		t.Fatalf("legacy inline-literal change: %v", err)
	}

	prim, err := primary.Session().Query("SELECT a, b FROM t ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replica.Session().Query("SELECT a, b FROM t ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(prim.Rows)+1 {
		t.Fatalf("replica rows = %d, want %d", len(rep.Rows), len(prim.Rows)+1)
	}
	for i, prow := range prim.Rows {
		if !reflect.DeepEqual(prow, rep.Rows[i]) {
			t.Fatalf("row %d diverged: primary %v replica %v", i, prow, rep.Rows[i])
		}
	}
	if rep.Rows[len(rep.Rows)-1][1].String() != "legacy" {
		t.Fatalf("legacy change row = %v", rep.Rows[len(rep.Rows)-1])
	}
}

// TestPreparedParseChargeNotRearmedAfterConsume pins the satellite-1
// fix: once a successful execution has consumed the one-time parse
// charge, a stale restore from a concurrently refused attempt must not
// re-arm it — the old single-flag protocol re-armed unconditionally and
// double-counted parse time on the next execution.
func TestPreparedParseChargeNotRearmedAfterConsume(t *testing.T) {
	db := Open("prep-rearm")
	db.MustExec("CREATE TABLE t (a INT)")
	s := db.Session()
	var stats []StmtStats
	s.sink = func(st StmtStats) { stats = append(stats, st) }

	ps, err := s.Prepare("INSERT INTO t VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	stale := ps.parse // what a refused concurrent attempt would hold
	if stale <= 0 {
		t.Fatal("prepared statement carries no parse charge")
	}
	if _, err := ps.Exec(); err != nil { // consumes the charge
		t.Fatal(err)
	}
	ps.restoreParse(stale) // the loser's restore lands after the consume
	if _, err := ps.Exec(); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats emitted = %d, want 2", len(stats))
	}
	if stats[0].Parse <= 0 {
		t.Fatalf("first execution must carry the parse charge, got %v", stats[0].Parse)
	}
	if stats[1].Parse != 0 {
		t.Fatalf("parse charge double-counted after stale restore: %v", stats[1].Parse)
	}
}

// TestPreparedParseChargeSurvivesRefusal: the legitimate re-arm — a
// refused holder restores an unconsumed charge — still works under the
// pending/charged protocol.
func TestPreparedParseChargeSurvivesRefusal(t *testing.T) {
	db := Open("prep-refuse")
	db.MustExec("CREATE TABLE t (a INT)")
	s := db.Session()
	var stats []StmtStats
	s.sink = func(st StmtStats) { stats = append(stats, st) }

	ps, err := s.Prepare("INSERT INTO t VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	refuse := true
	db.SetExecHook(func(string) error {
		if refuse {
			refuse = false
			return fmt.Errorf("chaos: refused")
		}
		return nil
	})
	defer db.SetExecHook(nil)
	if _, err := ps.Exec(); err == nil {
		t.Fatal("hook refusal did not surface")
	}
	if _, err := ps.Exec(); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("stats emitted = %d, want 1 (refused exec emits none)", len(stats))
	}
	if stats[0].Parse <= 0 {
		t.Fatalf("parse charge lost across refusal: %v", stats[0].Parse)
	}
}

// TestCachedParseRaceLoserReportsHit pins the satellite-2 fix: when two
// sessions race to parse the same novel statement, the loser discards
// its parse and executes the winner's cached plan — so it must report a
// HIT with zero parse time, not charge the duration of a parse whose
// result was thrown away.
func TestCachedParseRaceLoserReportsHit(t *testing.T) {
	db := Open("parse-race")
	db.MustExec("CREATE TABLE t (a INT)")

	const sql = "SELECT a FROM t WHERE a = ?"
	arrived := make(chan struct{}, 2)
	release := make(chan struct{})
	parseRaceHook = func() {
		arrived <- struct{}{}
		<-release
	}
	defer func() { parseRaceHook = nil }()

	base := db.StmtCacheStats()
	var mu sync.Mutex
	var stats []StmtStats
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.Session()
			s.sink = func(st StmtStats) {
				mu.Lock()
				stats = append(stats, st)
				mu.Unlock()
			}
			if _, err := s.Exec(sql, Int(1)); err != nil {
				panic(err)
			}
		}()
	}
	// Both goroutines have parsed (neither has inserted); release them to
	// race for the cache slot.
	<-arrived
	<-arrived
	close(release)
	wg.Wait()

	cs := db.StmtCacheStats()
	if d := cs.Misses - base.Misses; d != 1 {
		t.Fatalf("misses += %d, want 1 (only the winner parsed for keeps)", d)
	}
	if d := cs.Hits - base.Hits; d != 1 {
		t.Fatalf("hits += %d, want 1 (the loser adopted the winner's plan)", d)
	}
	if len(stats) != 2 {
		t.Fatalf("stats emitted = %d, want 2", len(stats))
	}
	var hit, miss *StmtStats
	for i := range stats {
		switch stats[i].Cache {
		case CacheHit:
			hit = &stats[i]
		case CacheMiss:
			miss = &stats[i]
		}
	}
	if hit == nil || miss == nil {
		t.Fatalf("want one hit and one miss, got %q and %q", stats[0].Cache, stats[1].Cache)
	}
	if hit.Parse != 0 {
		t.Fatalf("race loser charged its discarded parse: %v", hit.Parse)
	}
	if miss.Parse <= 0 {
		t.Fatalf("race winner must charge its parse, got %v", miss.Parse)
	}
}
