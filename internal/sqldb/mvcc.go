package sqldb

import (
	"errors"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// This file is the multi-version concurrency-control core: version
// stamps and visibility, the write-conflict error, the statement
// footprint walker that drives per-table latching, commit/rollback
// stamping, and the active-snapshot registry that gates vacuum.
//
// Version-stamp format (Row.xmin / Row.xmax, both atomic):
//
//	xmin == 0            row committed before the stream began (DDL
//	                     backfill, bootstrap scripts) — visible to every
//	                     snapshot
//	xmin > 0             commit sequence the creating transaction
//	                     committed at
//	xmin < 0             created by open transaction -xmin (uncommitted)
//	xmin == abortedStamp the creating transaction rolled back; the
//	                     version is dead forever and waits for vacuum
//	xmax == 0            live (not deleted)
//	xmax < 0             claimed (deleted or superseded by an UPDATE) by
//	                     open transaction -xmax — the MVCC write lock
//	xmax > 0             commit sequence the deleting transaction
//	                     committed at
//
// A claim doubles as the row-level write lock: writers set xmax to
// -txnID under the table's exclusive latch, so at most one transaction
// ever holds a claim, and a second writer hitting a claimed (or
// committed-after-snapshot) version fails first-writer-wins with
// ErrWriteConflict.

// abortedStamp marks a version whose creating transaction rolled back:
// "created in the unreachable future", invisible to every snapshot.
const abortedStamp = math.MaxInt64

// ErrWriteConflict is wrapped by the error a mutating statement returns
// when it loses a first-writer-wins race: the row it targeted is
// claimed by another open transaction or was modified by a transaction
// that committed after this statement's snapshot. The condition is
// transient — the wrapper carries Temporary() == true, so resilience
// retry policies back off and re-run the statement (which takes a fresh
// snapshot and sees the winner's committed state).
var ErrWriteConflict = errors.New("sqldb: write conflict (first writer wins)")

// writeConflictError carries the contended table and a retryable
// classification.
type writeConflictError struct{ table string }

func (e *writeConflictError) Error() string {
	return ErrWriteConflict.Error() + " on table " + e.table
}
func (e *writeConflictError) Unwrap() error   { return ErrWriteConflict }
func (e *writeConflictError) Temporary() bool { return true }

// visibleAt reports whether a row version is visible to a statement
// whose snapshot is snap and whose transaction id is txnID (0 when the
// reader holds no transaction). The rules are standard snapshot
// isolation: a version is visible iff it was created by a transaction
// that committed at or before the snapshot (or by the reader's own open
// transaction) and not deleted by such a transaction.
func visibleAt(r *Row, snap, txnID int64) bool {
	xmin := r.xmin.Load()
	switch {
	case xmin == abortedStamp:
		return false
	case xmin < 0:
		if txnID == 0 || -xmin != txnID {
			return false // someone else's uncommitted insert
		}
	case xmin > snap:
		return false // committed after the snapshot was taken
	}
	xmax := r.xmax.Load()
	switch {
	case xmax == 0:
		return true
	case xmax < 0:
		// Claimed: deleted only from the claimant's point of view.
		return txnID == 0 || -xmax != txnID
	default:
		return xmax > snap // deleted, but after our snapshot → still ours
	}
}

// rowVisible applies the session's current snapshot and transaction to
// visibleAt.
func (s *Session) rowVisible(r *Row) bool {
	var t int64
	if s.txn != nil {
		t = s.txn.id
	}
	return visibleAt(r, s.snap, t)
}

// --- write set ------------------------------------------------------------

type wsKind uint8

const (
	wsInsert wsKind = iota // version created by this transaction
	wsClaim                // version claimed (deleted/superseded)
)

type wsEntry struct {
	t    *Table
	r    *Row
	kind wsKind
}

// txn is an in-flight transaction: a write set of version stamps to
// resolve at commit (stamp with the commit sequence) or rollback (mark
// inserts aborted, release claims). There is no undo log — rollback
// discards versions instead of restoring copies.
type txn struct {
	id int64
	ws []wsEntry

	// explicit distinguishes BEGIN...COMMIT transactions from the
	// statement-local ones wrapped around autocommit statements; only
	// explicit transactions buffer their changes for bootstrap priming.
	explicit bool

	// aborted is set when the transaction was rolled back through a
	// child session (native procedures calling Rollback): the enclosing
	// statement must not stamp-commit an already-released write set.
	aborted bool
}

// writeTables returns the sorted, deduplicated lowercased names of the
// tables the transaction has written — the latch set of its COMMIT or
// ROLLBACK.
func (tx *txn) writeTables() []string {
	if tx == nil || len(tx.ws) == 0 {
		return nil
	}
	seen := map[string]bool{}
	var names []string
	for _, w := range tx.ws {
		lc := strings.ToLower(w.t.Name)
		if !seen[lc] {
			seen[lc] = true
			names = append(names, lc)
		}
	}
	sort.Strings(names)
	return names
}

// stampCommit resolves the write set as committed at the next commit
// sequence and publishes that sequence. The caller holds commitMu and
// the write set's table latches; readers that observe the new commit
// sequence are guaranteed (sequentially consistent atomics) to observe
// every stamp stored before it.
func (db *DB) stampCommit(tx *txn) {
	if tx == nil || tx.aborted || len(tx.ws) == 0 {
		return
	}
	c := db.commitSeq.Load() + 1
	for _, w := range tx.ws {
		switch w.kind {
		case wsInsert:
			w.r.xmin.Store(c)
		case wsClaim:
			w.r.xmax.Store(c)
			w.t.live.Add(-1)
			w.t.dead.Add(1)
		}
	}
	db.commitSeq.Store(c)
	// A procedure body's COMMIT can resolve the write set mid-statement;
	// clearing it makes the statement-finalize stamp a no-op instead of
	// a re-stamp.
	tx.ws = nil
}

// rollbackStamps releases the write set: created versions become
// aborted (dead, awaiting vacuum), claims are released so the claimed
// rows are writable again. The caller holds the write set's table
// latches (or the exclusive engine lock).
func rollbackStamps(tx *txn) {
	if tx == nil || tx.aborted {
		return
	}
	for i := len(tx.ws) - 1; i >= 0; i-- {
		w := tx.ws[i]
		switch w.kind {
		case wsInsert:
			if w.r.xmin.Load() != abortedStamp {
				w.r.xmin.Store(abortedStamp)
				w.t.live.Add(-1)
				w.t.dead.Add(1)
			}
		case wsClaim:
			if w.r.xmax.Load() == -tx.id {
				w.r.xmax.Store(0)
			}
		}
	}
	tx.aborted = true
}

// --- active-snapshot registry ---------------------------------------------

// acquireSnapshot registers a statement's snapshot so vacuum never
// removes a version some in-flight statement can still see.
func (db *DB) acquireSnapshot() int64 {
	db.snapMu.Lock()
	s := db.commitSeq.Load()
	if db.snapActive == nil {
		db.snapActive = map[int64]int{}
	}
	db.snapActive[s]++
	db.snapMu.Unlock()
	return s
}

func (db *DB) releaseSnapshot(s int64) {
	db.snapMu.Lock()
	if n := db.snapActive[s]; n <= 1 {
		delete(db.snapActive, s)
	} else {
		db.snapActive[s] = n - 1
	}
	db.snapMu.Unlock()
}

// minActiveSnapshot returns the oldest snapshot any in-flight statement
// holds (or the current commit sequence when none is active): versions
// dead at or before it are invisible to every present and future
// reader, hence vacuumable.
func (db *DB) minActiveSnapshot() int64 {
	db.snapMu.Lock()
	min := db.commitSeq.Load()
	for s := range db.snapActive {
		if s < min {
			min = s
		}
	}
	db.snapMu.Unlock()
	return min
}

// --- statement footprint ---------------------------------------------------

// latchTarget is one table of a statement's static footprint, resolved
// and ordered for acquisition.
type latchTarget struct {
	name  string // lowercased
	t     *Table
	write bool
}

// stmtRefs walks a statement syntactically and records every object
// name it references, split into mutation targets (write) and
// everything else (read): tables, views, sequences (NEXTVAL),
// procedures (CALL), and DDL targets. It needs no database state, so
// the result is cacheable alongside the parsed AST — the statement
// cache uses it for table-scoped DDL invalidation, and the executor
// derives its latch footprint from it.
func stmtRefs(st Stmt, write, read map[string]bool) {
	name := func(m map[string]bool, n string) {
		if n != "" {
			m[strings.ToLower(n)] = true
		}
	}
	switch t := st.(type) {
	case *SelectStmt:
		selectRefs(t, read)
	case *ExplainStmt:
		selectRefs(t.Query, read)
	case *InsertStmt:
		name(write, t.Table)
		if t.Query != nil {
			selectRefs(t.Query, read)
		}
		for _, row := range t.Rows {
			for _, e := range row {
				exprRefs(e, read)
			}
		}
	case *UpdateStmt:
		name(write, t.Table)
		for _, sc := range t.Sets {
			exprRefs(sc.Value, read)
		}
		exprRefs(t.Where, read)
	case *DeleteStmt:
		name(write, t.Table)
		exprRefs(t.Where, read)
	case *TruncateStmt:
		name(write, t.Table)
	case *CreateTableStmt:
		name(write, t.Table)
		if t.AsQuery != nil {
			selectRefs(t.AsQuery, read)
		}
	case *DropTableStmt:
		name(write, t.Table)
	case *AlterTableStmt:
		name(write, t.Table)
		if t.Kind == AlterRenameTable {
			name(write, t.Name)
		}
	case *CreateIndexStmt:
		name(write, t.Name)
		name(write, t.Table)
	case *DropIndexStmt:
		name(write, t.Name)
	case *CreateViewStmt:
		name(write, t.Name)
		selectRefs(t.Query, read)
	case *DropViewStmt:
		name(write, t.Name)
	case *CreateSequenceStmt:
		name(write, t.Name)
	case *DropSequenceStmt:
		name(write, t.Name)
	case *CreateProcedureStmt:
		name(write, t.Name)
	case *DropProcedureStmt:
		name(write, t.Name)
	case *CallStmt:
		name(read, t.Name)
		for _, a := range t.Args {
			exprRefs(a, read)
		}
	}
}

func selectRefs(q *SelectStmt, read map[string]bool) {
	for ; q != nil; q = q.Union {
		for _, it := range q.Items {
			exprRefs(it.Expr, read)
		}
		for _, tr := range q.From {
			if tr.Table != "" {
				read[strings.ToLower(tr.Table)] = true
			}
			if tr.Subquery != nil {
				selectRefs(tr.Subquery, read)
			}
			for _, jc := range tr.Joins {
				if jc.Table != "" {
					read[strings.ToLower(jc.Table)] = true
				}
				if jc.Subquery != nil {
					selectRefs(jc.Subquery, read)
				}
				exprRefs(jc.On, read)
			}
		}
		exprRefs(q.Where, read)
		for _, g := range q.GroupBy {
			exprRefs(g, read)
		}
		exprRefs(q.Having, read)
		for _, o := range q.OrderBy {
			exprRefs(o.Expr, read)
		}
		exprRefs(q.Limit, read)
		exprRefs(q.Offset, read)
	}
}

func exprRefs(x Expr, read map[string]bool) {
	switch t := x.(type) {
	case nil:
	case *BinaryExpr:
		exprRefs(t.L, read)
		exprRefs(t.R, read)
	case *UnaryExpr:
		exprRefs(t.X, read)
	case *IsNullExpr:
		exprRefs(t.X, read)
	case *BetweenExpr:
		exprRefs(t.X, read)
		exprRefs(t.Lo, read)
		exprRefs(t.Hi, read)
	case *InExpr:
		exprRefs(t.X, read)
		for _, e := range t.List {
			exprRefs(e, read)
		}
		if t.Query != nil {
			selectRefs(t.Query, read)
		}
	case *ExistsExpr:
		if t.Query != nil {
			selectRefs(t.Query, read)
		}
	case *SubqueryExpr:
		if t.Query != nil {
			selectRefs(t.Query, read)
		}
	case *FuncCall:
		for _, e := range t.Args {
			exprRefs(e, read)
		}
	case *CaseExpr:
		exprRefs(t.Operand, read)
		for _, w := range t.Whens {
			exprRefs(w.When, read)
			exprRefs(w.Then, read)
		}
		exprRefs(t.Else, read)
	case *NextValueExpr:
		read[strings.ToLower(t.Sequence)] = true
	}
}

// fpName is one entry of a cached statement footprint: a lowercased
// object name and whether the statement mutates it. Names are resolved
// against db.tables at every execution (tables come and go), so the
// cached list stays valid across table DDL; only view and procedure
// changes alter the *expansion* and therefore invalidate the cache.
type fpName struct {
	name  string
	write bool
}

// fpEntry is one generation of a statement's computed footprint.
type fpEntry struct {
	gen   int64 // db.footGen value the expansion was computed under
	ok    bool  // false: statement needs the exclusive engine lock
	names []fpName
}

// fpSlot caches a statement's footprint alongside its parsed AST (in
// the statement cache entry or the PreparedStmt). Many sessions may
// execute the same cached AST concurrently; the slot is a single atomic
// pointer, and racing recomputations are benign (last writer wins, all
// compute the same value for a given generation).
type fpSlot struct {
	p atomic.Pointer[fpEntry]
}

// resolveFootprint turns a footprint name list into latch targets
// against the current table set. The caller holds db.mu.
func (db *DB) resolveFootprint(names []fpName) []latchTarget {
	fp := make([]latchTarget, 0, len(names))
	for _, n := range names {
		if t := db.tables[n.name]; t != nil {
			fp = append(fp, latchTarget{name: n.name, t: t, write: n.write})
		}
	}
	return fp
}

// stmtFootprint computes the latch set of a mutating statement: write
// latches on the tables it mutates, read latches on every other table
// it references (directly, through views, or through SQL procedure
// bodies). ok is false when the footprint cannot be computed statically
// — native procedures, DDL, and unknown statement shapes — and the
// caller must fall back to the exclusive engine lock. COMMIT and
// ROLLBACK latch the open transaction's write set; BEGIN latches
// nothing. The caller holds db.mu (shared suffices: only schema
// stability is needed).
//
// fpc, when non-nil, caches the computed name list across executions of
// the same AST; it is invalidated by footGen (bumped on view/procedure
// changes — the only DDL that alters the expansion, since table names
// re-resolve on every call).
func (db *DB) stmtFootprint(st Stmt, tx *txn, fpc *fpSlot) (fp []latchTarget, ok bool) {
	switch st.(type) {
	case *BeginStmt:
		return nil, true
	case *CommitStmt, *RollbackStmt:
		// Transaction-dependent: latch the open write set, never cached.
		write := map[string]bool{}
		for _, n := range tx.writeTables() {
			write[n] = true
		}
		return db.resolveFootprint(footprintNames(write, nil)), true
	case *InsertStmt, *UpdateStmt, *DeleteStmt, *TruncateStmt, *CallStmt:
	default:
		return nil, false // DDL and unknown shapes: exclusive lock
	}
	gen := db.footGen.Load()
	if fpc != nil {
		if e := fpc.p.Load(); e != nil && e.gen == gen {
			if !e.ok {
				return nil, false
			}
			return db.resolveFootprint(e.names), true
		}
	}
	write := map[string]bool{}
	read := map[string]bool{}
	computed := true
	if c, isCall := st.(*CallStmt); isCall {
		computed = db.callFootprint(c, write, read, map[string]bool{})
	} else {
		stmtRefs(st, write, read)
	}
	var names []fpName
	if computed {
		// Expand views (recursively) into the base tables they scan.
		db.expandViewRefs(read)
		names = footprintNames(write, read)
	}
	if fpc != nil {
		fpc.p.Store(&fpEntry{gen: gen, ok: computed, names: names})
	}
	if !computed {
		return nil, false
	}
	return db.resolveFootprint(names), true
}

// footprintNames flattens the write/read sets into the sorted name list
// latches are acquired in — the single global ordering rule.
func footprintNames(write, read map[string]bool) []fpName {
	names := make([]fpName, 0, len(write)+len(read))
	for n := range write {
		names = append(names, fpName{name: n, write: true})
	}
	for n := range read {
		if !write[n] {
			names = append(names, fpName{name: n})
		}
	}
	sort.Slice(names, func(i, j int) bool { return names[i].name < names[j].name })
	return names
}

// callFootprint folds a CALL's footprint: argument subqueries plus the
// procedure body (SQL procedures only — native bodies are opaque, so
// the CALL falls back to the exclusive lock). seen breaks CALL cycles.
func (db *DB) callFootprint(c *CallStmt, write, read map[string]bool, seen map[string]bool) bool {
	for _, a := range c.Args {
		exprRefs(a, read)
	}
	lc := strings.ToLower(c.Name)
	if seen[lc] {
		return true
	}
	seen[lc] = true
	proc, ok := db.procs[lc]
	if !ok {
		return true // missing procedure: the statement will fail cleanly
	}
	if proc.Native != nil {
		return false
	}
	for _, st := range proc.Body {
		switch b := st.(type) {
		case *CallStmt:
			if !db.callFootprint(b, write, read, seen) {
				return false
			}
		case *SelectStmt, *ExplainStmt, *InsertStmt, *UpdateStmt, *DeleteStmt, *TruncateStmt:
			stmtRefs(st, write, read)
		case *BeginStmt, *CommitStmt, *RollbackStmt:
			// Body transaction statements fail inside a CALL; no footprint.
		default:
			return false // DDL inside a procedure body: exclusive lock
		}
	}
	return true
}

// expandViewRefs replaces-in-place: for every referenced name that is a
// view, the base tables its query (transitively) scans are added to the
// read set. View names themselves stay in the set; they resolve to no
// table and latch nothing.
func (db *DB) expandViewRefs(read map[string]bool) {
	queue := make([]string, 0, len(read))
	for n := range read {
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		v, ok := db.views[n]
		if !ok {
			continue
		}
		sub := map[string]bool{}
		selectRefs(v.Query, sub)
		for s := range sub {
			if !read[s] {
				read[s] = true
				queue = append(queue, s)
			}
		}
	}
}

// latchWaitFloor separates blocking (the holder made us park) from the
// bare cost of an uncontended mutex acquisition (tens of ns). Waits
// under the floor are not attributed — they are acquisition overhead,
// not contention — which keeps the per-table lock-wait histograms
// silent on uncontended workloads.
const latchWaitFloor = time.Microsecond

// acquireLatches locks the footprint's tables in sorted-name order —
// the single global ordering rule that makes per-table latching
// deadlock-free. When record is set, per-table waits at or above
// latchWaitFloor are returned (nil when nothing blocked — the common,
// allocation-free case).
func acquireLatches(fp []latchTarget, record bool) map[string]time.Duration {
	var waits map[string]time.Duration
	for _, lt := range fp {
		// Uncontended fast path: TryLock succeeds without blocking, so
		// there is no wait to attribute and no clock to read.
		if lt.write {
			if lt.t.latch.TryLock() {
				continue
			}
		} else if lt.t.latch.TryRLock() {
			continue
		}
		start := time.Now()
		if lt.write {
			lt.t.latch.Lock()
		} else {
			lt.t.latch.RLock()
		}
		if w := time.Since(start); w >= latchWaitFloor && record {
			if waits == nil {
				waits = make(map[string]time.Duration, len(fp))
			}
			waits[lt.t.Name] += w
		}
	}
	return waits
}

// writeSetLatches resolves a transaction's write set into latch targets
// (sorted by writeTables), for the Rollback API path that must latch
// without a statement. Tables dropped since the write happened resolve
// to nothing — their versions are unreachable anyway.
func (db *DB) writeSetLatches(tx *txn) []latchTarget {
	var fp []latchTarget
	for _, n := range tx.writeTables() {
		if t := db.tables[n]; t != nil {
			fp = append(fp, latchTarget{name: n, t: t, write: true})
		}
	}
	return fp
}

func releaseLatches(fp []latchTarget) {
	for i := len(fp) - 1; i >= 0; i-- {
		if fp[i].write {
			fp[i].t.latch.Unlock()
		} else {
			fp[i].t.latch.RUnlock()
		}
	}
}

// --- conflict retry --------------------------------------------------------

// Conflict-retry policy for autocommit statements: a statement that
// loses first-writer-wins is transparently retried against a fresh
// snapshot with exponential backoff before the error is surfaced.
// Statements inside an explicit transaction are not retried — the
// transaction's earlier statements saw older snapshots, so the caller
// (the resilience layer) must decide whether to retry the transaction.
const (
	conflictRetryLimit   = 8
	conflictBackoffBase  = 20 * time.Microsecond
	conflictBackoffLimit = 2 * time.Millisecond
)

func conflictBackoff(attempt int) time.Duration {
	d := conflictBackoffBase << uint(attempt)
	if d > conflictBackoffLimit {
		d = conflictBackoffLimit
	}
	return d
}

// isWriteConflict reports whether err is (or wraps) a first-writer-wins
// conflict, returning the contended table when known.
func isWriteConflict(err error) (string, bool) {
	var wc *writeConflictError
	if errors.As(err, &wc) {
		return wc.table, true
	}
	return "", errors.Is(err, ErrWriteConflict)
}
