package sqldb

import (
	"fmt"
	"strings"
)

// Compiled expression execution: predicates and projections of a
// statement are compiled once per execution into closure trees, so the
// per-row cost is a closure call instead of a type-switched AST walk.
// The cached plan's AST stays immutable and shared; compilation output
// is private to one statement execution (a single goroutine), which is
// what lets column references memoize their resolved coordinates.

// evalFn is one compiled expression: closed over its operator and
// operands, open over the row environment.
type evalFn func(*env) (Value, error)

// compileExpr compiles an expression to a closure tree. Compilation
// never fails: shapes the compiler does not specialize (subqueries,
// aggregates, function calls, NEXT VALUE) fall back to a closure around
// eval, preserving its behavior exactly — including for expressions the
// row loop never reaches (short-circuits, empty inputs).
func compileExpr(x Expr) evalFn {
	switch t := x.(type) {
	case *Literal:
		v := t.Val
		return func(*env) (Value, error) { return v, nil }
	case *boundCol:
		idx := t.idx
		return func(e *env) (Value, error) {
			if e.row == nil || idx >= len(e.row) {
				return Null(), fmt.Errorf("sqldb: column referenced outside row context")
			}
			return e.row[idx], nil
		}
	case *ColumnRef:
		return compileColumnRef(t)
	case *ParamRef:
		return compileParamRef(t)
	case *BinaryExpr:
		return compileBinary(t)
	case *UnaryExpr:
		return compileUnary(t)
	case *IsNullExpr:
		xf := compileExpr(t.X)
		not := t.Not
		return func(e *env) (Value, error) {
			v, err := xf(e)
			if err != nil {
				return Null(), err
			}
			return Bool(v.IsNull() != not), nil
		}
	case *BetweenExpr:
		xf, lof, hif := compileExpr(t.X), compileExpr(t.Lo), compileExpr(t.Hi)
		not := t.Not
		return func(e *env) (Value, error) {
			v, err := xf(e)
			if err != nil {
				return Null(), err
			}
			lo, err := lof(e)
			if err != nil {
				return Null(), err
			}
			hi, err := hif(e)
			if err != nil {
				return Null(), err
			}
			c1, ok1 := compareValues(v, lo)
			c2, ok2 := compareValues(v, hi)
			if !ok1 || !ok2 {
				return Null(), nil
			}
			return Bool((c1 >= 0 && c2 <= 0) != not), nil
		}
	case *InExpr:
		if t.Query == nil {
			return compileInList(t)
		}
	case *CaseExpr:
		return compileCase(t)
	}
	return func(e *env) (Value, error) { return eval(x, e) }
}

// compileColumnRef resolves the reference's (scope depth, column index)
// coordinates once, on first evaluation, then reads by position. The
// memoization is sound because one compiled tree serves one statement
// execution, within which the environment's column layout (and its
// outer chain for correlated subqueries) is fixed; resolution failures
// (unknown, ambiguous) are equally permanent for that execution.
func compileColumnRef(t *ColumnRef) evalFn {
	table, name := t.Table, t.Column
	depth, idx := 0, 0
	var resolveErr error
	resolved := false
	return func(e *env) (Value, error) {
		if !resolved {
			depth, idx, resolveErr = resolveColumn(e, table, name)
			resolved = true
		}
		if resolveErr != nil {
			return Null(), resolveErr
		}
		scope := e
		for d := 0; d < depth; d++ {
			scope = scope.outer
		}
		if scope.row == nil {
			return Null(), fmt.Errorf("sqldb: column %s referenced outside row context", name)
		}
		return scope.row[idx], nil
	}
}

// resolveColumn mirrors env.lookupColumn's scoping rules — innermost
// scope first, ambiguity within a scope is an error — but returns the
// coordinates instead of the value.
func resolveColumn(e *env, table, name string) (depth, idx int, err error) {
	d := 0
	for scope := e; scope != nil; scope = scope.outer {
		found := -1
		for i, c := range scope.cols {
			if !strings.EqualFold(c.name, name) {
				continue
			}
			if table != "" && !strings.EqualFold(c.table, table) {
				continue
			}
			if found >= 0 {
				return 0, 0, fmt.Errorf("sqldb: ambiguous column %s", name)
			}
			found = i
		}
		if found >= 0 {
			return d, found, nil
		}
		d++
	}
	if table != "" {
		return 0, 0, fmt.Errorf("sqldb: unknown column %s.%s", table, name)
	}
	return 0, 0, fmt.Errorf("sqldb: unknown column %s", name)
}

func compileParamRef(t *ParamRef) evalFn {
	if t.Name != "" {
		name := t.Name
		key := strings.ToLower(name)
		return func(e *env) (Value, error) {
			if e.named != nil {
				if v, ok := e.named[key]; ok {
					return v, nil
				}
			}
			return Null(), fmt.Errorf("sqldb: unbound named parameter :%s", name)
		}
	}
	idx := t.Index
	return func(e *env) (Value, error) {
		if idx < 0 || idx >= len(e.params) {
			return Null(), fmt.Errorf("sqldb: missing value for parameter %d", idx+1)
		}
		return e.params[idx], nil
	}
}

func compileBinary(t *BinaryExpr) evalFn {
	l, r := compileExpr(t.L), compileExpr(t.R)
	switch t.Op {
	case "AND":
		return func(e *env) (Value, error) {
			lv, err := l(e)
			if err != nil {
				return Null(), err
			}
			if lv.K == KindBool && !lv.B {
				return Bool(false), nil
			}
			rv, err := r(e)
			if err != nil {
				return Null(), err
			}
			if rv.K == KindBool && !rv.B {
				return Bool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			return Bool(lv.Truth() && rv.Truth()), nil
		}
	case "OR":
		return func(e *env) (Value, error) {
			lv, err := l(e)
			if err != nil {
				return Null(), err
			}
			if lv.Truth() {
				return Bool(true), nil
			}
			rv, err := r(e)
			if err != nil {
				return Null(), err
			}
			if rv.Truth() {
				return Bool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			return Bool(false), nil
		}
	case "=", "<>", "<", "<=", ">", ">=":
		op := t.Op
		return func(e *env) (Value, error) {
			lv, err := l(e)
			if err != nil {
				return Null(), err
			}
			rv, err := r(e)
			if err != nil {
				return Null(), err
			}
			c, ok := compareValues(lv, rv)
			if !ok {
				return Null(), nil
			}
			switch op {
			case "=":
				return Bool(c == 0), nil
			case "<>":
				return Bool(c != 0), nil
			case "<":
				return Bool(c < 0), nil
			case "<=":
				return Bool(c <= 0), nil
			case ">":
				return Bool(c > 0), nil
			}
			return Bool(c >= 0), nil
		}
	case "||":
		return func(e *env) (Value, error) {
			lv, err := l(e)
			if err != nil {
				return Null(), err
			}
			rv, err := r(e)
			if err != nil {
				return Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			return Str(lv.String() + rv.String()), nil
		}
	case "LIKE":
		return func(e *env) (Value, error) {
			lv, err := l(e)
			if err != nil {
				return Null(), err
			}
			rv, err := r(e)
			if err != nil {
				return Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			return Bool(likeMatch(lv.String(), rv.String())), nil
		}
	case "+", "-", "*", "/", "%":
		op := t.Op
		return func(e *env) (Value, error) {
			lv, err := l(e)
			if err != nil {
				return Null(), err
			}
			rv, err := r(e)
			if err != nil {
				return Null(), err
			}
			return evalArith(op, lv, rv)
		}
	}
	// Unknown operator: keep eval's error path.
	return func(e *env) (Value, error) { return evalBinary(t, e) }
}

func compileUnary(t *UnaryExpr) evalFn {
	xf := compileExpr(t.X)
	switch t.Op {
	case "-":
		return func(e *env) (Value, error) {
			v, err := xf(e)
			if err != nil {
				return Null(), err
			}
			switch v.K {
			case KindInt:
				return Int(-v.I), nil
			case KindFloat:
				return Float(-v.F), nil
			case KindNull:
				return Null(), nil
			}
			return Null(), fmt.Errorf("sqldb: cannot negate %s", v.K)
		}
	case "NOT":
		return func(e *env) (Value, error) {
			v, err := xf(e)
			if err != nil {
				return Null(), err
			}
			if v.IsNull() {
				return Null(), nil
			}
			if v.K != KindBool {
				return Null(), fmt.Errorf("sqldb: NOT requires a boolean")
			}
			return Bool(!v.B), nil
		}
	}
	op := t.Op
	return func(*env) (Value, error) {
		return Null(), fmt.Errorf("sqldb: unknown unary operator %s", op)
	}
}

func compileInList(t *InExpr) evalFn {
	xf := compileExpr(t.X)
	list := make([]evalFn, len(t.List))
	for i, le := range t.List {
		list[i] = compileExpr(le)
	}
	not := t.Not
	return func(e *env) (Value, error) {
		v, err := xf(e)
		if err != nil {
			return Null(), err
		}
		// Candidates are evaluated before the NULL test, like evalIn: a
		// candidate error surfaces even when the probe is NULL.
		candidates := make([]Value, len(list))
		for i, lf := range list {
			cv, err := lf(e)
			if err != nil {
				return Null(), err
			}
			candidates[i] = cv
		}
		if v.IsNull() {
			return Null(), nil
		}
		sawNull := false
		for _, c := range candidates {
			if c.IsNull() {
				sawNull = true
				continue
			}
			if cmp, ok := compareValues(v, c); ok && cmp == 0 {
				return Bool(!not), nil
			}
		}
		if sawNull {
			return Null(), nil
		}
		return Bool(not), nil
	}
}

func compileCase(t *CaseExpr) evalFn {
	type arm struct{ when, then evalFn }
	arms := make([]arm, len(t.Whens))
	for i, w := range t.Whens {
		arms[i] = arm{when: compileExpr(w.When), then: compileExpr(w.Then)}
	}
	var elsef evalFn
	if t.Else != nil {
		elsef = compileExpr(t.Else)
	}
	if t.Operand != nil {
		opf := compileExpr(t.Operand)
		return func(e *env) (Value, error) {
			op, err := opf(e)
			if err != nil {
				return Null(), err
			}
			for _, a := range arms {
				wv, err := a.when(e)
				if err != nil {
					return Null(), err
				}
				if c, ok := compareValues(op, wv); ok && c == 0 {
					return a.then(e)
				}
			}
			if elsef != nil {
				return elsef(e)
			}
			return Null(), nil
		}
	}
	return func(e *env) (Value, error) {
		for _, a := range arms {
			wv, err := a.when(e)
			if err != nil {
				return Null(), err
			}
			if wv.Truth() {
				return a.then(e)
			}
		}
		if elsef != nil {
			return elsef(e)
		}
		return Null(), nil
	}
}

// compileExprs compiles a projection list.
func compileExprs(items []Expr) []evalFn {
	fns := make([]evalFn, len(items))
	for i, it := range items {
		fns[i] = compileExpr(it)
	}
	return fns
}
