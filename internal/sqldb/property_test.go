package sqldb

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestUnion covers the UNION extension.
func TestUnion(t *testing.T) {
	db := Open("u")
	db.MustExec("CREATE TABLE a (x INTEGER)")
	db.MustExec("CREATE TABLE b (x INTEGER)")
	db.MustExec("INSERT INTO a VALUES (1), (2), (3)")
	db.MustExec("INSERT INTO b VALUES (3), (4)")
	r := db.MustExec("SELECT x FROM a UNION SELECT x FROM b")
	if len(r.Rows) != 4 {
		t.Fatalf("UNION rows: %d, want 4", len(r.Rows))
	}
	r = db.MustExec("SELECT x FROM a UNION ALL SELECT x FROM b")
	if len(r.Rows) != 5 {
		t.Fatalf("UNION ALL rows: %d, want 5", len(r.Rows))
	}
	// Three-arm chain.
	r = db.MustExec("SELECT 1 UNION SELECT 2 UNION SELECT 1")
	if len(r.Rows) != 2 {
		t.Fatalf("chained UNION rows: %d, want 2", len(r.Rows))
	}
	if _, err := db.Exec("SELECT x FROM a UNION SELECT x, x FROM b"); err == nil {
		t.Fatal("column count mismatch must error")
	}
}

// likeReference translates a LIKE pattern to a regexp — an independent
// oracle for the hand-written matcher.
func likeReference(s, pattern string) bool {
	var re strings.Builder
	re.WriteString("(?is)^")
	for _, r := range pattern {
		switch r {
		case '%':
			re.WriteString(".*")
		case '_':
			re.WriteString(".")
		default:
			re.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	re.WriteString("$")
	return regexp.MustCompile(re.String()).MatchString(s)
}

// TestQuickLikeMatchesReference checks the LIKE matcher against the
// regexp oracle on random ASCII strings and patterns.
func TestQuickLikeMatchesReference(t *testing.T) {
	alphabet := "ab%_c"
	gen := func(rng *rand.Rand, n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		s := gen(rng, rng.Intn(8))
		// Patterns must not contain % or _ as literals: draw from all.
		p := gen(rng, rng.Intn(6))
		got := likeMatch(s, p)
		want := likeReference(s, p)
		if got != want {
			t.Fatalf("likeMatch(%q, %q) = %v, reference = %v", s, p, got, want)
		}
	}
}

// TestQuickCompareValuesIsAntisymmetric checks compareValues(a,b) ==
// -compareValues(b,a) and reflexivity for random numeric/string values.
func TestQuickCompareValuesIsAntisymmetric(t *testing.T) {
	mk := func(tag uint8, i int64, f float64, s string) Value {
		switch tag % 4 {
		case 0:
			return Int(i)
		case 1:
			return Float(f)
		case 2:
			return Str(s)
		default:
			return Bool(i%2 == 0)
		}
	}
	f := func(t1 uint8, i1 int64, f1 float64, s1 string, t2 uint8, i2 int64, f2 float64, s2 string) bool {
		a, b := mk(t1, i1, f1, s1), mk(t2, i2, f2, s2)
		ab, ok1 := compareValues(a, b)
		ba, ok2 := compareValues(b, a)
		if ok1 != ok2 {
			return false
		}
		if ok1 && ab != -ba {
			return false
		}
		// Reflexivity (NaN-free constructors above).
		if aa, ok := compareValues(a, a); ok && aa != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRollbackRestoresState applies a random sequence of DML inside
// a transaction, rolls back, and checks the table content is unchanged.
func TestQuickRollbackRestoresState(t *testing.T) {
	snapshot := func(db *DB) string {
		r := db.MustExec("SELECT k, v FROM t ORDER BY k")
		var b strings.Builder
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%s=%s;", row[0], row[1])
		}
		return b.String()
	}
	f := func(ops []uint16) bool {
		db := Open("p")
		db.MustExec("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
		for i := 0; i < 8; i++ {
			db.MustExec("INSERT INTO t VALUES (?, ?)", Int(int64(i)), Int(int64(i*i)))
		}
		before := snapshot(db)
		s := db.Session()
		if _, err := s.Exec("BEGIN"); err != nil {
			return false
		}
		nextKey := int64(100)
		for _, op := range ops {
			k := int64(op % 8)
			switch op % 3 {
			case 0:
				s.Exec("INSERT INTO t VALUES (?, ?)", Int(nextKey), Int(int64(op)))
				nextKey++
			case 1:
				s.Exec("UPDATE t SET v = v + 1 WHERE k = ?", Int(k))
			case 2:
				s.Exec("DELETE FROM t WHERE k = ?", Int(k))
			}
		}
		if _, err := s.Exec("ROLLBACK"); err != nil {
			return false
		}
		return snapshot(db) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIndexEquivalence checks that point queries return identical
// results with and without an index, across random data and probes.
func TestQuickIndexEquivalence(t *testing.T) {
	f := func(keys []int16, probes []int16) bool {
		plain := Open("plain")
		indexed := Open("indexed")
		for _, db := range []*DB{plain, indexed} {
			db.MustExec("CREATE TABLE t (k INTEGER, v INTEGER)")
		}
		for i, k := range keys {
			for _, db := range []*DB{plain, indexed} {
				db.MustExec("INSERT INTO t VALUES (?, ?)", Int(int64(k)), Int(int64(i)))
			}
		}
		indexed.MustExec("CREATE INDEX t_k ON t (k)")
		for _, probe := range probes {
			a := plain.MustExec("SELECT v FROM t WHERE k = ? ORDER BY v", Int(int64(probe)))
			b := indexed.MustExec("SELECT v FROM t WHERE k = ? ORDER BY v", Int(int64(probe)))
			if len(a.Rows) != len(b.Rows) {
				return false
			}
			for i := range a.Rows {
				if !a.Rows[i][0].Equal(b.Rows[i][0]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOrderBySorts checks ORDER BY output is sorted per sortCompare.
func TestQuickOrderBySorts(t *testing.T) {
	f := func(vals []int32) bool {
		db := Open("o")
		db.MustExec("CREATE TABLE t (x INTEGER)")
		for _, v := range vals {
			db.MustExec("INSERT INTO t VALUES (?)", Int(int64(v)))
		}
		r := db.MustExec("SELECT x FROM t ORDER BY x")
		for i := 1; i < len(r.Rows); i++ {
			if sortCompare(r.Rows[i-1][0], r.Rows[i][0]) > 0 {
				return false
			}
		}
		return len(r.Rows) == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDistinctIsSetLike checks SELECT DISTINCT returns unique rows
// that are a subset of the input.
func TestQuickDistinctIsSetLike(t *testing.T) {
	f := func(vals []uint8) bool {
		db := Open("d")
		db.MustExec("CREATE TABLE t (x INTEGER)")
		in := map[int64]bool{}
		for _, v := range vals {
			db.MustExec("INSERT INTO t VALUES (?)", Int(int64(v%10)))
			in[int64(v%10)] = true
		}
		r := db.MustExec("SELECT DISTINCT x FROM t")
		seen := map[int64]bool{}
		for _, row := range r.Rows {
			if seen[row[0].I] {
				return false // duplicate survived
			}
			seen[row[0].I] = true
			if !in[row[0].I] {
				return false // invented value
			}
		}
		return len(seen) == len(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAggregatesMatchManualComputation cross-checks SUM/MIN/MAX/
// COUNT against direct computation for random integer columns.
func TestQuickAggregatesMatchManualComputation(t *testing.T) {
	f := func(vals []int16) bool {
		db := Open("agg")
		db.MustExec("CREATE TABLE t (x INTEGER)")
		var sum, minV, maxV int64
		first := true
		for _, v := range vals {
			db.MustExec("INSERT INTO t VALUES (?)", Int(int64(v)))
			sum += int64(v)
			if first || int64(v) < minV {
				minV = int64(v)
			}
			if first || int64(v) > maxV {
				maxV = int64(v)
			}
			first = false
		}
		r := db.MustExec("SELECT COUNT(*), SUM(x), MIN(x), MAX(x) FROM t")
		row := r.Rows[0]
		if row[0].I != int64(len(vals)) {
			return false
		}
		if len(vals) == 0 {
			return row[1].IsNull() && row[2].IsNull() && row[3].IsNull()
		}
		return row[1].I == sum && row[2].I == minV && row[3].I == maxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMiscCoverage(t *testing.T) {
	db := Open("misc")
	if db.Name() != "misc" {
		t.Fatal("Name")
	}

	// Table-level composite PRIMARY KEY.
	db.MustExec("CREATE TABLE pk2 (a INTEGER, b INTEGER, v VARCHAR, PRIMARY KEY (a, b))")
	db.MustExec("INSERT INTO pk2 VALUES (1, 1, 'x'), (1, 2, 'y')")
	if _, err := db.Exec("INSERT INTO pk2 VALUES (1, 1, 'dup')"); err == nil {
		t.Fatal("composite PK violated")
	}
	if names := db.TableNames(); len(names) != 1 || names[0] != "pk2" {
		t.Fatalf("TableNames: %v", names)
	}

	// NOT operator, float arithmetic, string + concatenation.
	r := db.MustExec("SELECT NOT (1 = 2), 1.5 * 2, 'a' + 'b', 2.5 + 1")
	row := r.Rows[0]
	if !row[0].B || row[1].F != 3.0 || row[2].S != "ab" || row[3].F != 3.5 {
		t.Fatalf("expr results: %v", row)
	}

	// Session helpers.
	s := db.Session()
	if s.DB() != db {
		t.Fatal("Session.DB")
	}
	if s.InTransaction() {
		t.Fatal("fresh session in txn")
	}
	s.Exec("BEGIN")
	if !s.InTransaction() {
		t.Fatal("BEGIN not reflected")
	}
	s.Exec("INSERT INTO pk2 VALUES (9, 9, 'z')")
	s.Rollback()
	if s.InTransaction() {
		t.Fatal("Rollback did not close txn")
	}
	if db.MustExec("SELECT COUNT(*) FROM pk2 WHERE a = 9").Rows[0][0].I != 0 {
		t.Fatal("Rollback did not undo")
	}
	s.Rollback() // idempotent outside a transaction

	// ScalarValue success and failure.
	res := db.MustExec("SELECT 42")
	if v, err := res.ScalarValue(); err != nil || v.I != 42 {
		t.Fatalf("ScalarValue: %v %v", v, err)
	}
	res = db.MustExec("SELECT a, b FROM pk2")
	if _, err := res.ScalarValue(); err == nil {
		t.Fatal("ScalarValue on non-scalar must error")
	}

	// Value helpers.
	if Bool(true).String() != "TRUE" || Bool(false).String() != "FALSE" {
		t.Fatal("bool String")
	}
	if Null().String() != "NULL" || Float(2.5).String() != "2.5" {
		t.Fatal("null/float String")
	}
	if !Int(3).Equal(Float(3)) || Int(3).Equal(Str("3")) {
		t.Fatal("Equal cross-kind rules")
	}
	if v, ok := Float(9.9).AsInt(); !ok || v != 9 {
		t.Fatal("AsInt truncation")
	}
	if _, ok := Str("x").AsInt(); ok {
		t.Fatal("AsInt on string")
	}

	// sortCompare: NULLs first, cross-kind ordering stable.
	if sortCompare(Null(), Int(1)) != -1 || sortCompare(Int(1), Null()) != 1 || sortCompare(Null(), Null()) != 0 {
		t.Fatal("NULL ordering")
	}
	if sortCompare(Bool(false), Bool(true)) != -1 {
		t.Fatal("bool ordering")
	}
	if sortCompare(Str("a"), Bool(true)) == 0 {
		t.Fatal("cross-kind ordering must be total")
	}
}

func TestCoercionFailures(t *testing.T) {
	db := Open("c")
	db.MustExec("CREATE TABLE c (i INTEGER, f FLOAT, b BOOLEAN)")
	for _, bad := range []string{
		"INSERT INTO c (i) VALUES ('abc')",
		"INSERT INTO c (f) VALUES ('abc')",
		"INSERT INTO c (b) VALUES ('maybe')",
		"INSERT INTO c (f) VALUES (TRUE)",
	} {
		if _, err := db.Exec(bad); err == nil {
			t.Errorf("%s: expected coercion error", bad)
		}
	}
	// Boolean string forms.
	db.MustExec("INSERT INTO c (b) VALUES ('yes'), ('0'), ('T')")
	r := db.MustExec("SELECT COUNT(*) FROM c WHERE b = TRUE")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("boolean coercion: %v", r.Rows[0][0])
	}
}

func TestVarcharLengthAndColumnHelpers(t *testing.T) {
	db := Open("v")
	db.MustExec("CREATE TABLE v (s VARCHAR(100) NOT NULL, n INTEGER)")
	cols, _ := db.Schema("v")
	if len(cols) != 2 || !cols[0].NotNull {
		t.Fatalf("schema: %+v", cols)
	}
	if _, err := db.Schema("nope"); err == nil {
		t.Fatal("Schema on missing table")
	}
}

func TestDerivedTables(t *testing.T) {
	db := Open("dt")
	db.MustExec("CREATE TABLE Orders (ItemID VARCHAR, Quantity INTEGER, Approved BOOLEAN)")
	db.MustExec(`INSERT INTO Orders VALUES
		('bolt', 10, TRUE), ('bolt', 5, TRUE), ('nut', 3, TRUE), ('nut', 7, FALSE)`)

	// Derived table in FROM.
	r := db.MustExec(`SELECT t.ItemID, t.Total
		FROM (SELECT ItemID, SUM(Quantity) AS Total FROM Orders WHERE Approved = TRUE GROUP BY ItemID) t
		WHERE t.Total > 5 ORDER BY t.ItemID`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "bolt" || r.Rows[0][1].I != 15 {
		t.Fatalf("derived table: %v", r.Rows)
	}

	// Derived table on the right side of a JOIN: every order row pairs
	// with its item's total.
	r = db.MustExec(`SELECT o.ItemID, o.Quantity, t.Total
		FROM Orders o
		JOIN (SELECT ItemID, SUM(Quantity) AS Total FROM Orders GROUP BY ItemID) t
		ON o.ItemID = t.ItemID ORDER BY o.ItemID, o.Quantity`)
	if len(r.Rows) != 4 {
		t.Fatalf("join to derived table: %v", r.Rows)
	}
	for _, row := range r.Rows {
		want := int64(15)
		if row[0].S == "nut" {
			want = 10
		}
		if row[2].I != want {
			t.Fatalf("total for %s: %v", row[0].S, row[2])
		}
	}

	// Aggregation over a derived table.
	r = db.MustExec(`SELECT COUNT(*), SUM(Total)
		FROM (SELECT ItemID, SUM(Quantity) AS Total FROM Orders GROUP BY ItemID) x`)
	if r.Rows[0][0].I != 2 || r.Rows[0][1].I != 25 {
		t.Fatalf("aggregate over derived: %v", r.Rows[0])
	}

	// Missing alias is a parse error.
	if _, err := db.Exec("SELECT * FROM (SELECT 1)"); err == nil {
		t.Fatal("derived table without alias must fail")
	}
	if _, err := db.Exec("SELECT * FROM Orders o JOIN (SELECT 1) ON 1 = 1"); err == nil {
		t.Fatal("joined derived table without alias must fail")
	}

	// EXPLAIN renders the derived-table plan.
	r = db.MustExec("EXPLAIN SELECT * FROM (SELECT ItemID FROM Orders) d WHERE ItemID = 'x'")
	var plan strings.Builder
	for _, row := range r.Rows {
		plan.WriteString(row[0].S + "\n")
	}
	if !strings.Contains(plan.String(), "DERIVED TABLE d") {
		t.Fatalf("derived plan: %s", plan.String())
	}
	r = db.MustExec("EXPLAIN SELECT * FROM Orders o JOIN (SELECT ItemID FROM Orders) d ON o.ItemID = d.ItemID")
	plan.Reset()
	for _, row := range r.Rows {
		plan.WriteString(row[0].S + "\n")
	}
	if !strings.Contains(plan.String(), "derived table d") {
		t.Fatalf("derived join plan: %s", plan.String())
	}
}

// ---------------------------------------------------------------------------
// Concurrency properties (PR 4): the RWMutex engine-lock split must keep
// the database linearizable for writers, allow read-only statements to
// run concurrently, and keep planner decisions stable while the pool of
// scheduler workers hammers one shared DB. All of these are only
// meaningful under -race.

// TestConcurrentReadersWithWriter runs many read-only sessions against
// one writer session mutating the same table. Readers must never observe
// an error or a torn row (ItemID and Quantity updated together), and the
// final state must reflect every committed write.
func TestConcurrentReadersWithWriter(t *testing.T) {
	const (
		readers  = 8
		writes   = 200
		rowCount = 16
	)
	db := Open("rw")
	db.MustExec("CREATE TABLE t (k INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
	for i := 0; i < rowCount; i++ {
		db.MustExec("INSERT INTO t VALUES (?, ?, ?)", Int(int64(i)), Int(0), Int(0))
	}

	stop := make(chan struct{})
	errs := make(chan error, readers+1)
	var wg sync.WaitGroup

	// Readers: aggregate invariant a == b on every row (the writer always
	// updates both columns in one statement, and updates are copy-on-write
	// row swaps, so a reader must never see them diverge).
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.Session()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Exec("SELECT COUNT(*) FROM t WHERE a <> b")
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0].I != 0 {
					errs <- fmt.Errorf("torn row visible: %d rows with a <> b", res.Rows[0][0].I)
					return
				}
				if _, err := s.Exec("EXPLAIN SELECT * FROM t WHERE k = 3"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	// One writer bumping both columns of a random row per statement.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		s := db.Session()
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < writes; i++ {
			k := rng.Intn(rowCount)
			if _, err := s.Exec("UPDATE t SET a = a + 1, b = b + 1 WHERE k = ?", Int(int64(k))); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := db.MustExec("SELECT SUM(a), SUM(b) FROM t")
	if res.Rows[0][0].I != writes || res.Rows[0][1].I != writes {
		t.Fatalf("lost updates: SUM(a)=%d SUM(b)=%d, want %d", res.Rows[0][0].I, res.Rows[0][1].I, writes)
	}
}

// TestConcurrentUniqueInsertOneWinner races goroutines inserting the
// same primary key: the exclusive write lock must admit exactly one
// winner per key, with every loser getting a constraint error and no
// partial row surviving.
func TestConcurrentUniqueInsertOneWinner(t *testing.T) {
	const (
		contenders = 8
		keys       = 20
	)
	db := Open("uniq")
	db.MustExec("CREATE TABLE t (k INTEGER PRIMARY KEY, who INTEGER)")
	for k := 0; k < keys; k++ {
		var (
			wins   atomic.Int64
			losses atomic.Int64
			wg     sync.WaitGroup
		)
		for c := 0; c < contenders; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				s := db.Session()
				_, err := s.Exec("INSERT INTO t VALUES (?, ?)", Int(int64(k)), Int(int64(c)))
				switch {
				case err == nil:
					wins.Add(1)
				case strings.Contains(err.Error(), "unique constraint"):
					losses.Add(1)
				default:
					t.Errorf("key %d contender %d: unexpected error %v", k, c, err)
				}
			}(c)
		}
		wg.Wait()
		if wins.Load() != 1 || losses.Load() != contenders-1 {
			t.Fatalf("key %d: %d winners / %d losers, want 1 / %d", k, wins.Load(), losses.Load(), contenders-1)
		}
	}
	if got := db.MustExec("SELECT COUNT(*) FROM t").Rows[0][0].I; got != keys {
		t.Fatalf("table holds %d rows, want %d", got, keys)
	}
}

// TestConcurrentExplainMatchesExecutor re-checks the EXPLAIN/executor
// plan agreement while many sessions execute the same indexed shapes
// concurrently through the shared statement cache: the planner must make
// the same choice on every goroutine, and the plan label reported by the
// executor must equal the one EXPLAIN renders.
func TestConcurrentExplainMatchesExecutor(t *testing.T) {
	db := figure4DB(t)
	shapes := []struct {
		query  string
		params []Value
		index  string // "" = scan
	}{
		{"SELECT * FROM Orders WHERE OrderID = ?", []Value{Int(3)}, "Orders_pk"},
		{"SELECT * FROM Orders WHERE ItemID = ?", []Value{Str("item-b")}, "idx_item"},
		{"SELECT * FROM Orders WHERE OrderID = ? AND ItemID = ?", []Value{Int(3), Str("item-d")}, "idx_order_item"},
		{"SELECT * FROM Orders WHERE Quantity = ?", []Value{Int(50)}, ""},
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.Session()
			var last StmtStats
			s.SetStatsSink(func(st StmtStats) {
				if st.Kind == "SELECT" {
					last = st
				}
			})
			for i := 0; i < 30; i++ {
				shape := shapes[i%len(shapes)]
				res, err := s.Exec("EXPLAIN "+shape.query, shape.params...)
				if err != nil {
					t.Errorf("EXPLAIN: %v", err)
					return
				}
				plan := strings.TrimSpace(res.Rows[0][0].String())
				if _, err := s.Exec(shape.query, shape.params...); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
				if last.Index != shape.index {
					t.Errorf("executor probed %q, want %q (query %s)", last.Index, shape.index, shape.query)
					return
				}
				if last.Plan != plan {
					t.Errorf("executor plan %q != EXPLAIN %q", last.Plan, plan)
					return
				}
			}
		}()
	}
	wg.Wait()
	if cs := db.StmtCacheStats(); cs.Hits == 0 {
		t.Fatalf("concurrent identical statements produced no cache hits: %+v", cs)
	}
}

// TestConcurrentStatementCacheSafety hammers the parsed-statement cache
// from many goroutines mixing cache-hit SELECTs with DDL that evicts
// cache entries mid-flight; every statement must still parse and execute.
func TestConcurrentStatementCacheSafety(t *testing.T) {
	db := Open("cache")
	db.MustExec("CREATE TABLE t (x INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1), (2), (3)")

	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := db.Session()
			for i := 0; i < 50; i++ {
				if _, err := s.Exec("SELECT COUNT(*) FROM t WHERE x > ?", Int(0)); err != nil {
					t.Errorf("select: %v", err)
					return
				}
				if i%10 == 0 {
					// DDL on a private table: succeeds, invalidates only
					// the entries referencing that table — the hot SELECT
					// on t survives.
					name := fmt.Sprintf("g%d_%d", g, i)
					if _, err := s.Exec("CREATE TABLE " + name + " (y INTEGER)"); err != nil {
						t.Errorf("ddl: %v", err)
						return
					}
					if _, err := s.Exec("DROP TABLE " + name); err != nil {
						t.Errorf("drop: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	cs := db.StmtCacheStats()
	if cs.Invalidations == 0 {
		t.Fatalf("DDL never invalidated cache entries: %+v", cs)
	}
	if cs.Flushes != 0 {
		t.Fatalf("scoped DDL invalidation must not full-flush: %+v", cs)
	}
	if cs.Hits == 0 {
		t.Fatalf("repeated identical statement produced no cache hits: %+v", cs)
	}
}
