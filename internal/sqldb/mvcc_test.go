package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSnapshotIsolationHidesUncommittedRows pins the isolation upgrade:
// another session's open transaction is invisible (the engine was
// read-uncommitted before row versioning), the writer still sees its
// own writes, and commit/rollback publish/retract them atomically.
func TestSnapshotIsolationHidesUncommittedRows(t *testing.T) {
	db := Open("snap")
	db.MustExec("CREATE TABLE t (x INTEGER)")
	s1, s2 := db.Session(), db.Session()

	count := func(s *Session) int64 {
		t.Helper()
		res, err := s.Exec("SELECT COUNT(*) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		n, _ := res.Rows[0][0].AsInt()
		return n
	}

	if _, err := s1.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if n := count(s2); n != 0 {
		t.Fatalf("uncommitted insert visible to another session: count = %d, want 0", n)
	}
	if n := count(s1); n != 1 {
		t.Fatalf("writer cannot see its own uncommitted insert: count = %d, want 1", n)
	}
	if _, err := s1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if n := count(s2); n != 1 {
		t.Fatalf("committed insert invisible: count = %d, want 1", n)
	}

	s1.Exec("BEGIN")
	s1.Exec("INSERT INTO t VALUES (2)")
	s1.Rollback()
	if n := count(s2); n != 1 {
		t.Fatalf("rolled-back insert leaked: count = %d, want 1", n)
	}
	if n := count(s1); n != 1 {
		t.Fatalf("writer still sees rolled-back insert: count = %d, want 1", n)
	}
}

// TestSameRowWritersFirstWriterWins: two explicit transactions updating
// the same row resolve first-writer-wins — the second writer gets a
// retryable ErrWriteConflict at statement time (no blocking until the
// winner commits), and the winner's value lands.
func TestSameRowWritersFirstWriterWins(t *testing.T) {
	db := Open("conflict")
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1, 0)")
	s1, s2 := db.Session(), db.Session()

	s1.Exec("BEGIN")
	s2.Exec("BEGIN")
	if _, err := s1.Exec("UPDATE t SET v = 1 WHERE id = 1"); err != nil {
		t.Fatalf("first writer: %v", err)
	}
	_, err := s2.Exec("UPDATE t SET v = 2 WHERE id = 1")
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("second writer: err = %v, want ErrWriteConflict", err)
	}
	var tmp interface{ Temporary() bool }
	if !errors.As(err, &tmp) || !tmp.Temporary() {
		t.Fatalf("write conflict must classify as retryable, got %v", err)
	}
	if _, err := s1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	s2.Rollback()

	res := db.MustExec("SELECT v FROM t WHERE id = 1")
	if v, _ := res.Rows[0][0].AsInt(); v != 1 {
		t.Fatalf("v = %d, want 1 (first writer's value)", v)
	}
	if res := db.MustExec("SELECT COUNT(*) FROM t"); res.Rows[0][0].I != 1 {
		t.Fatalf("row count = %v, want 1 (no duplicate versions visible)", res.Rows[0][0])
	}
}

// TestAutocommitConflictRetryBothSucceed: autocommit statements retry
// internally on write conflict (backoff charged to lock-wait), so two
// racing single-statement writers both succeed — one simply runs
// second.
func TestAutocommitConflictRetryBothSucceed(t *testing.T) {
	db := Open("retry")
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1, 0)")

	var wg sync.WaitGroup
	for w := 1; w <= 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session()
			for i := 0; i < 50; i++ {
				if _, err := s.Exec("UPDATE t SET v = ? WHERE id = 1", Int(int64(w*1000+i))); err != nil {
					t.Errorf("writer %d iter %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	res := db.MustExec("SELECT COUNT(*), MAX(v) FROM t")
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Fatalf("visible rows = %d, want 1", n)
	}
	if v, _ := res.Rows[0][1].AsInt(); v != 1049 && v != 2049 {
		t.Fatalf("final v = %d, want one writer's last value (1049 or 2049)", v)
	}
}

// TestDisjointTableWritersDoNotBlock: holding table a's write latch
// must not stall a writer on table b, nor a latch-free snapshot SELECT
// on a itself. (Before per-table latches, one global write lock
// serialized all three.)
func TestDisjointTableWritersDoNotBlock(t *testing.T) {
	db := Open("disjoint")
	db.MustExec("CREATE TABLE a (x INTEGER)")
	db.MustExec("CREATE TABLE b (x INTEGER)")
	db.MustExec("INSERT INTO a VALUES (1)")

	ta := db.tables["a"]
	ta.latch.Lock()
	defer ta.latch.Unlock()

	done := make(chan error, 2)
	go func() {
		_, err := db.Session().Exec("INSERT INTO b VALUES (1)")
		done <- err
	}()
	go func() {
		res, err := db.Session().Exec("SELECT COUNT(*) FROM a")
		if err == nil {
			if n, _ := res.Rows[0][0].AsInt(); n != 1 {
				err = fmt.Errorf("count = %d, want 1", n)
			}
		}
		done <- err
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("statement on a disjoint path blocked behind a's write latch")
		}
	}
}

// TestSnapshotScanStableUnderConcurrentCommits: a SELECT's snapshot is
// fixed at statement start, so a scan never observes a torn multi-row
// UPDATE — every row shows the same generation even while a writer
// commits new generations mid-scan.
func TestSnapshotScanStableUnderConcurrentCommits(t *testing.T) {
	db := Open("stable")
	db.MustExec("CREATE TABLE t (id INTEGER, v INTEGER)")
	const rows = 8
	for i := 0; i < rows; i++ {
		db.MustExec("INSERT INTO t VALUES (?, 0)", Int(int64(i)))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := db.Session()
		for gen := 1; gen <= 300; gen++ {
			if _, err := s.Exec("UPDATE t SET v = ?", Int(int64(gen))); err != nil {
				t.Errorf("writer gen %d: %v", gen, err)
				break
			}
		}
		close(stop)
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.Session()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Exec("SELECT v FROM t")
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if len(res.Rows) != rows {
					t.Errorf("scan saw %d rows, want %d", len(res.Rows), rows)
					return
				}
				first, _ := res.Rows[0][0].AsInt()
				for _, row := range res.Rows {
					if v, _ := row[0].AsInt(); v != first {
						t.Errorf("torn scan: saw generations %d and %d in one SELECT", first, v)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestExplainExecutorAgreementUnderContention: the plan EXPLAIN reports
// must be the plan the executor takes even while writers churn the
// table — index probes agree exactly; scans agree on access path (the
// row-count annotation legitimately moves).
func TestExplainExecutorAgreementUnderContention(t *testing.T) {
	db := Open("agree")
	db.MustExec("CREATE TABLE t (id INTEGER, v INTEGER)")
	db.MustExec("CREATE INDEX it ON t (id)")
	for i := 0; i < 50; i++ {
		db.MustExec("INSERT INTO t VALUES (?, ?)", Int(int64(i)), Int(int64(i)))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := db.Session()
		for i := 50; i < 250; i++ {
			if _, err := s.Exec("INSERT INTO t VALUES (?, ?)", Int(int64(i)), Int(int64(i))); err != nil {
				t.Errorf("writer: %v", err)
				break
			}
		}
		close(stop)
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.Session()
			var last StmtStats
			s.SetStatsSink(func(st StmtStats) { last = st })
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Index probe: label carries no row count, must match exactly.
				res, err := s.Exec("EXPLAIN SELECT v FROM t WHERE id = ?", Int(5))
				if err != nil {
					t.Errorf("explain: %v", err)
					return
				}
				plan := res.Rows[0][0].S
				if _, err := s.Exec("SELECT v FROM t WHERE id = ?", Int(5)); err != nil {
					t.Errorf("select: %v", err)
					return
				}
				if last.Plan != plan {
					t.Errorf("executor plan %q != EXPLAIN %q", last.Plan, plan)
					return
				}
				// Full scan: compare the access path, not the moving count.
				res, err = s.Exec("EXPLAIN SELECT v FROM t WHERE v < 0")
				if err != nil {
					t.Errorf("explain scan: %v", err)
					return
				}
				scanPlan := res.Rows[0][0].S
				if _, err := s.Exec("SELECT v FROM t WHERE v < 0"); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				const path = "SCAN t ("
				if len(last.Plan) < len(path) || last.Plan[:len(path)] != path ||
					len(scanPlan) < len(path) || scanPlan[:len(path)] != path {
					t.Errorf("scan access path mismatch: executor %q, EXPLAIN %q", last.Plan, scanPlan)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDDLInvalidationScopedToTable is the regression test for the
// full-cache-flush bug: DDL evicts only cached statements whose AST
// references the altered table (directly or through a view over it);
// statements on other tables stay cached, and the full-flush counter
// never moves.
func TestDDLInvalidationScopedToTable(t *testing.T) {
	db := Open("inv")
	db.MustExec("CREATE TABLE a (x INTEGER)")
	db.MustExec("CREATE TABLE b (x INTEGER)")
	db.MustExec("CREATE VIEW va AS SELECT x FROM a")
	s := db.Session()
	var stats []StmtStats
	s.SetStatsSink(func(st StmtStats) { stats = append(stats, st) })

	for _, q := range []string{"SELECT * FROM a", "SELECT * FROM b", "SELECT * FROM va"} {
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	base := db.StmtCacheStats()

	db.MustExec("ALTER TABLE a ADD COLUMN y INTEGER")
	cs := db.StmtCacheStats()
	if cs.Flushes != base.Flushes {
		t.Fatalf("DDL full-flushed the statement cache (flushes %d -> %d)", base.Flushes, cs.Flushes)
	}
	if cs.Invalidations <= base.Invalidations {
		t.Fatalf("DDL on a invalidated nothing (invalidations %d -> %d)", base.Invalidations, cs.Invalidations)
	}

	probe := func(q, want string) {
		t.Helper()
		stats = nil
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
		if stats[0].Cache != want {
			t.Fatalf("%s after DDL on a: cache = %q, want %q", q, stats[0].Cache, want)
		}
	}
	probe("SELECT * FROM b", CacheHit)   // unrelated table: survives
	probe("SELECT * FROM a", CacheMiss)  // altered table: evicted
	probe("SELECT * FROM va", CacheMiss) // view over altered table: evicted
}

// TestLockWaitAttributedToTable: time a statement spends blocked on a
// table's write latch surfaces in StmtStats.LockWait and is attributed
// to that table in LockWaitByTable.
func TestLockWaitAttributedToTable(t *testing.T) {
	db := Open("lockwait")
	db.MustExec("CREATE TABLE t (x INTEGER)")
	s := db.Session()
	var stats []StmtStats
	s.SetStatsSink(func(st StmtStats) { stats = append(stats, st) })

	tt := db.tables["t"]
	tt.latch.Lock()
	started := make(chan struct{})
	done := make(chan error)
	go func() {
		close(started)
		_, err := s.Exec("INSERT INTO t VALUES (1)")
		done <- err
	}()
	<-started
	time.Sleep(100 * time.Millisecond)
	tt.latch.Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	st := stats[len(stats)-1]
	if st.LockWait <= 0 {
		t.Fatalf("LockWait = %v, want > 0 (statement waited on t's latch)", st.LockWait)
	}
	if st.LockWaitByTable["t"] <= 0 {
		t.Fatalf("LockWaitByTable = %v, want wait attributed to t", st.LockWaitByTable)
	}
}
