package sqldb

import (
	"fmt"
	"strings"
)

// Index is a hash index over one or more columns. Unique indexes enforce
// key uniqueness (NULL keys are exempt, as in standard SQL). Buckets
// hold every non-aborted version of a key — visibility filtering
// happens at scan time — so the structure needs no maintenance on
// commit or rollback, only on vacuum.
//
// Structural access is guarded by the owning table's rowsMu: insert and
// rebuild run under the write half (inside insertVersion/maybeVacuum),
// lookup copies its bucket under the read half so latch-free snapshot
// readers never alias a bucket being spliced.
type Index struct {
	Name    string
	Table   *Table
	Columns []string
	colIdx  []int
	Unique  bool
	buckets map[string][]*Row
}

func newIndex(name string, t *Table, cols []string, unique bool) (*Index, error) {
	idx := &Index{Name: name, Table: t, Columns: cols, Unique: unique, buckets: map[string][]*Row{}}
	for _, c := range cols {
		ci := t.ColumnIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("sqldb: index %s: unknown column %s on table %s", name, c, t.Name)
		}
		idx.colIdx = append(idx.colIdx, ci)
	}
	// Build over existing versions. CREATE INDEX runs under the
	// exclusive engine lock, but other sessions' open transactions may
	// have pending versions in the heap; uniqueness is enforced among
	// versions not already dead or dying, each checked as its own
	// creator would be.
	for _, r := range t.rows {
		if r.xmin.Load() == abortedStamp {
			continue
		}
		if unique && r.xmax.Load() == 0 {
			tid := int64(0)
			if x := r.xmin.Load(); x < 0 {
				tid = -x
			}
			if err := idx.checkInsert(r, tid); err != nil {
				return nil, err
			}
		}
		idx.insert(r)
	}
	return idx, nil
}

// key encodes the indexed column values of a row. hasNull reports whether
// any key column is NULL (such keys never violate uniqueness).
func (idx *Index) key(vals []Value) (key string, hasNull bool) {
	var b strings.Builder
	for _, ci := range idx.colIdx {
		v := vals[ci]
		if v.IsNull() {
			hasNull = true
		}
		// Normalize numerics so 1 and 1.0 collide, matching compareValues.
		if v.K == KindFloat && v.F == float64(int64(v.F)) {
			v = Int(int64(v.F))
		}
		fmt.Fprintf(&b, "%d:%s\x00", int(v.K), v.String())
	}
	return b.String(), hasNull
}

// checkInsert decides whether txnID may add a version with r's key.
// Dead and dying versions don't block the key: aborted and
// committed-deleted versions are skipped, as are versions this same
// transaction has claimed (an UPDATE replacing the row). A version
// another open transaction is still deciding about — its pending insert
// or its claim — makes the outcome unknowable, which is a retryable
// write conflict; a committed live version or this transaction's own
// pending insert is a hard unique violation.
func (idx *Index) checkInsert(r *Row, txnID int64) error {
	if !idx.Unique {
		return nil
	}
	k, hasNull := idx.key(r.Values)
	if hasNull {
		return nil
	}
	for _, o := range idx.buckets[k] {
		if o == r {
			continue
		}
		oxmin := o.xmin.Load()
		if oxmin == abortedStamp {
			continue
		}
		switch ox := o.xmax.Load(); {
		case ox > 0:
			continue // committed delete: the key is free
		case ox < 0:
			if -ox == txnID {
				continue // our own claim: we are replacing this version
			}
			return &writeConflictError{table: idx.Table.Name}
		}
		if oxmin < 0 && -oxmin != txnID {
			return &writeConflictError{table: idx.Table.Name}
		}
		return fmt.Errorf("sqldb: unique constraint violation on index %s", idx.Name)
	}
	return nil
}

func (idx *Index) insert(r *Row) {
	k, _ := idx.key(r.Values)
	idx.buckets[k] = append(idx.buckets[k], r)
}

// rebuild repopulates the buckets from a vacuumed heap. The caller
// holds the table's rowsMu write lock; the old bucket map is abandoned
// so in-flight readers holding copied buckets are unaffected.
func (idx *Index) rebuild(rows []*Row) {
	idx.buckets = make(map[string][]*Row, len(idx.buckets))
	for _, r := range rows {
		idx.insert(r)
	}
}

// lookup returns the versions whose indexed columns equal the given
// values — a copy, safe to filter and iterate after the structural lock
// is released. Callers apply visibility.
func (idx *Index) lookup(vals []Value) []*Row {
	probe := make([]Value, len(idx.Table.Columns))
	for i, ci := range idx.colIdx {
		probe[ci] = vals[i]
	}
	k, hasNull := idx.key(probe)
	if hasNull {
		return nil // NULL never equals anything
	}
	idx.Table.rowsMu.RLock()
	b := idx.buckets[k]
	out := make([]*Row, len(b))
	copy(out, b)
	idx.Table.rowsMu.RUnlock()
	return out
}
