package sqldb

import (
	"fmt"
	"strings"
)

// Index is a hash index over one or more columns. Unique indexes enforce
// key uniqueness (NULL keys are exempt, as in standard SQL).
type Index struct {
	Name    string
	Table   *Table
	Columns []string
	colIdx  []int
	Unique  bool
	buckets map[string][]*Row
}

func newIndex(name string, t *Table, cols []string, unique bool) (*Index, error) {
	idx := &Index{Name: name, Table: t, Columns: cols, Unique: unique, buckets: map[string][]*Row{}}
	for _, c := range cols {
		ci := t.ColumnIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("sqldb: index %s: unknown column %s on table %s", name, c, t.Name)
		}
		idx.colIdx = append(idx.colIdx, ci)
	}
	// Build over existing rows.
	for _, r := range t.rows {
		if err := idx.checkInsert(r); err != nil {
			return nil, err
		}
		idx.insert(r)
	}
	return idx, nil
}

// key encodes the indexed column values of a row. hasNull reports whether
// any key column is NULL (such keys never violate uniqueness).
func (idx *Index) key(vals []Value) (key string, hasNull bool) {
	var b strings.Builder
	for _, ci := range idx.colIdx {
		v := vals[ci]
		if v.IsNull() {
			hasNull = true
		}
		// Normalize numerics so 1 and 1.0 collide, matching compareValues.
		if v.K == KindFloat && v.F == float64(int64(v.F)) {
			v = Int(int64(v.F))
		}
		fmt.Fprintf(&b, "%d:%s\x00", int(v.K), v.String())
	}
	return b.String(), hasNull
}

func (idx *Index) checkInsert(r *Row) error {
	if !idx.Unique {
		return nil
	}
	k, hasNull := idx.key(r.Values)
	if hasNull {
		return nil
	}
	if len(idx.buckets[k]) > 0 {
		return fmt.Errorf("sqldb: unique constraint violation on index %s", idx.Name)
	}
	return nil
}

func (idx *Index) checkUpdate(r *Row, newVals []Value) error {
	if !idx.Unique {
		return nil
	}
	k, hasNull := idx.key(newVals)
	if hasNull {
		return nil
	}
	for _, other := range idx.buckets[k] {
		if other != r {
			return fmt.Errorf("sqldb: unique constraint violation on index %s", idx.Name)
		}
	}
	return nil
}

func (idx *Index) insert(r *Row) {
	k, _ := idx.key(r.Values)
	idx.buckets[k] = append(idx.buckets[k], r)
}

func (idx *Index) remove(r *Row) {
	k, _ := idx.key(r.Values)
	b := idx.buckets[k]
	for i, rr := range b {
		if rr == r {
			idx.buckets[k] = append(b[:i], b[i+1:]...)
			if len(idx.buckets[k]) == 0 {
				delete(idx.buckets, k)
			}
			return
		}
	}
}

// lookup returns the rows whose indexed columns equal the given values.
func (idx *Index) lookup(vals []Value) []*Row {
	probe := make([]Value, len(idx.Table.Columns))
	for i, ci := range idx.colIdx {
		probe[ci] = vals[i]
	}
	k, hasNull := idx.key(probe)
	if hasNull {
		return nil // NULL never equals anything
	}
	return idx.buckets[k]
}
