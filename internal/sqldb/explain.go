package sqldb

import (
	"fmt"
	"strings"
)

// execExplain renders the access plan the executor would choose for a
// SELECT: full scans, index probes (with the chosen index), join
// strategies, and post-processing steps. It makes the engine's planning
// observable for tests and the index-vs-scan ablation.
func (s *Session) execExplain(t *ExplainStmt, params []Value, named map[string]Value) (*Result, error) {
	base := &env{params: params, named: named, session: s}
	var lines []string
	if err := s.explainSelect(t.Query, base, 0, &lines); err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"plan"}}
	for _, l := range lines {
		res.Rows = append(res.Rows, []Value{Str(l)})
	}
	return res, nil
}

func (s *Session) explainSelect(q *SelectStmt, base *env, depth int, lines *[]string) error {
	pad := strings.Repeat("  ", depth)
	add := func(format string, args ...any) {
		*lines = append(*lines, pad+fmt.Sprintf(format, args...))
	}

	switch {
	case len(q.From) == 0:
		add("CONSTANT ROW")
	case len(q.From) == 1 && len(q.From[0].Joins) == 0 && q.From[0].Subquery != nil:
		add("DERIVED TABLE %s", q.From[0].Alias)
		if err := s.explainSelect(q.From[0].Subquery, base, depth+1, lines); err != nil {
			return err
		}
	case len(q.From) == 1 && len(q.From[0].Joins) == 0:
		tbl, err := s.db.table(q.From[0].Table)
		if err != nil {
			if v, ok := s.db.views[strings.ToLower(q.From[0].Table)]; ok {
				add("VIEW %s (expanded)", v.Name)
				if verr := s.explainSelect(v.Query, base, depth+1, lines); verr != nil {
					return verr
				}
				goto post
			}
			return err
		}
		if q.Where != nil {
			if idx := s.chooseIndex(tbl, q.Where, base); idx != nil {
				add("%s", planLabel(tbl, idx))
				goto post
			}
		}
		add("%s", planLabel(tbl, nil))
	default:
		describe := func(table string, sub *SelectStmt, alias string) (string, error) {
			if sub != nil {
				return fmt.Sprintf("derived table %s", alias), nil
			}
			if tbl, err := s.db.table(table); err == nil {
				return fmt.Sprintf("%s (%d rows)", tbl.Name, tbl.RowCount()), nil
			}
			if v, ok := s.db.views[strings.ToLower(table)]; ok {
				return fmt.Sprintf("view %s", v.Name), nil
			}
			return "", fmt.Errorf("sqldb: no such table %s", table)
		}
		for i, tr := range q.From {
			desc, err := describe(tr.Table, tr.Subquery, tr.Alias)
			if err != nil {
				return err
			}
			if i == 0 {
				add("SCAN %s", desc)
			} else {
				add("CROSS PRODUCT SCAN %s", desc)
			}
			for _, jc := range tr.Joins {
				jdesc, err := describe(jc.Table, jc.Subquery, jc.Alias)
				if err != nil {
					return err
				}
				kind := "INNER"
				switch jc.Kind {
				case JoinLeft:
					kind = "LEFT OUTER"
				case JoinCross:
					kind = "CROSS"
				}
				add("NESTED LOOP %s JOIN %s", kind, jdesc)
			}
		}
	}

post:
	if q.Where != nil {
		add("FILTER")
	}
	if len(q.GroupBy) > 0 {
		add("GROUP BY (%d keys)", len(q.GroupBy))
	} else if selectHasAggregate(q) {
		add("AGGREGATE")
	}
	if q.Having != nil {
		add("HAVING FILTER")
	}
	if q.Distinct {
		add("DISTINCT")
	}
	if len(q.OrderBy) > 0 {
		add("SORT (%d keys)", len(q.OrderBy))
	}
	if q.Limit != nil || q.Offset != nil {
		add("LIMIT/OFFSET")
	}
	if q.Union != nil {
		op := "UNION"
		if q.UnionAll {
			op = "UNION ALL"
		}
		add(op)
		return s.explainSelect(q.Union, base, depth+1, lines)
	}
	return nil
}

// chooseIndex is the single planner entry point shared by the executor
// (Session.indexCandidates) and EXPLAIN (explainSelect): it returns the
// index whose columns are fully bound by the predicate's equality
// conjuncts, or nil for a scan.
//
// Selection is deterministic: among applicable indexes the most specific
// one (most columns) wins, with the lexicographically smallest name
// breaking ties. (Historically this ranged over the table's index map,
// whose iteration order is randomized per call — so with two applicable
// indexes EXPLAIN could name one index while the very next execution
// probed the other.)
func (s *Session) chooseIndex(tbl *Table, where Expr, base *env) *Index {
	eq := map[string]Value{}
	if !collectEqualities(where, base, eq) || len(eq) == 0 {
		return nil
	}
	var best *Index
	for _, idx := range tbl.indexes {
		ok := true
		for _, c := range idx.Columns {
			if _, found := eq[strings.ToLower(c)]; !found {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if best == nil ||
			len(idx.Columns) > len(best.Columns) ||
			(len(idx.Columns) == len(best.Columns) && idx.Name < best.Name) {
			best = idx
		}
	}
	return best
}
