package sqldb

import (
	"strings"
	"testing"
)

// newOrdersDB builds the running example's Orders table used throughout the
// paper's figures.
func newOrdersDB(t testing.TB) *DB {
	t.Helper()
	db := Open("testdb")
	db.MustExec(`CREATE TABLE Orders (
		OrderID INTEGER PRIMARY KEY,
		ItemID VARCHAR NOT NULL,
		Quantity INTEGER NOT NULL,
		Approved BOOLEAN NOT NULL
	)`)
	rows := []struct {
		id   int64
		item string
		qty  int64
		ok   bool
	}{
		{1, "bolt", 10, true},
		{2, "bolt", 5, true},
		{3, "nut", 7, false},
		{4, "nut", 3, true},
		{5, "screw", 2, true},
		{6, "screw", 9, false},
	}
	for _, r := range rows {
		db.MustExec("INSERT INTO Orders (OrderID, ItemID, Quantity, Approved) VALUES (?, ?, ?, ?)",
			Int(r.id), Str(r.item), Int(r.qty), Bool(r.ok))
	}
	return db
}

func mustQuery(t *testing.T, db *DB, sql string, params ...Value) *Result {
	t.Helper()
	r, err := db.Session().Query(sql, params...)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return r
}

func TestCreateInsertSelect(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT OrderID, ItemID FROM Orders ORDER BY OrderID")
	if len(r.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(r.Rows))
	}
	if r.Rows[0][0].I != 1 || r.Rows[0][1].S != "bolt" {
		t.Fatalf("unexpected first row: %v", r.Rows[0])
	}
}

func TestWhereFilter(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT OrderID FROM Orders WHERE Approved = TRUE AND Quantity > 4 ORDER BY OrderID")
	var ids []int64
	for _, row := range r.Rows {
		ids = append(ids, row[0].I)
	}
	want := []int64{1, 2}
	if len(ids) != len(want) {
		t.Fatalf("got %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("got %v, want %v", ids, want)
		}
	}
}

func TestGroupByAggregate(t *testing.T) {
	db := newOrdersDB(t)
	// The paper's SQL1: aggregate approved orders per item type.
	r := mustQuery(t, db, `SELECT ItemID, SUM(Quantity) AS ItemQuantity
		FROM Orders WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID`)
	if len(r.Rows) != 3 {
		t.Fatalf("got %d groups, want 3", len(r.Rows))
	}
	wants := map[string]int64{"bolt": 15, "nut": 3, "screw": 2}
	for _, row := range r.Rows {
		if got := row[1].I; got != wants[row[0].S] {
			t.Errorf("item %s: got %d, want %d", row[0].S, got, wants[row[0].S])
		}
	}
}

func TestAggregatesWithoutGroupBy(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT COUNT(*), SUM(Quantity), MIN(Quantity), MAX(Quantity), AVG(Quantity) FROM Orders")
	row := r.Rows[0]
	if row[0].I != 6 || row[1].I != 36 || row[2].I != 2 || row[3].I != 10 {
		t.Fatalf("unexpected aggregates: %v", row)
	}
	if row[4].F != 6.0 {
		t.Fatalf("AVG: got %v, want 6", row[4])
	}
}

func TestCountOnEmptyTable(t *testing.T) {
	db := Open("t")
	db.MustExec("CREATE TABLE e (x INTEGER)")
	r := mustQuery(t, db, "SELECT COUNT(*) FROM e")
	if len(r.Rows) != 1 || r.Rows[0][0].I != 0 {
		t.Fatalf("COUNT(*) on empty table: %v", r.Rows)
	}
	r = mustQuery(t, db, "SELECT SUM(x) FROM e")
	if !r.Rows[0][0].IsNull() {
		t.Fatalf("SUM on empty table should be NULL, got %v", r.Rows[0][0])
	}
}

func TestHaving(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, `SELECT ItemID, COUNT(*) AS n FROM Orders GROUP BY ItemID HAVING COUNT(*) >= 2 ORDER BY ItemID`)
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(r.Rows))
	}
}

func TestDistinct(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT DISTINCT ItemID FROM Orders ORDER BY ItemID")
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(r.Rows))
	}
}

func TestCountDistinct(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT COUNT(DISTINCT ItemID) FROM Orders")
	if r.Rows[0][0].I != 3 {
		t.Fatalf("COUNT(DISTINCT): got %v, want 3", r.Rows[0][0])
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT OrderID FROM Orders ORDER BY Quantity DESC, OrderID LIMIT 2")
	if len(r.Rows) != 2 || r.Rows[0][0].I != 1 || r.Rows[1][0].I != 6 {
		t.Fatalf("unexpected rows: %v", r.Rows)
	}
}

func TestOrderByPosition(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT OrderID, Quantity FROM Orders ORDER BY 2 DESC LIMIT 1")
	if r.Rows[0][1].I != 10 {
		t.Fatalf("ORDER BY 2: %v", r.Rows)
	}
}

func TestLimitOffset(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT OrderID FROM Orders ORDER BY OrderID LIMIT 2 OFFSET 3")
	if len(r.Rows) != 2 || r.Rows[0][0].I != 4 || r.Rows[1][0].I != 5 {
		t.Fatalf("unexpected rows: %v", r.Rows)
	}
}

func TestUpdate(t *testing.T) {
	db := newOrdersDB(t)
	res := db.MustExec("UPDATE Orders SET Quantity = Quantity + 100 WHERE ItemID = 'bolt'")
	if res.RowsAffected != 2 {
		t.Fatalf("rows affected: %d, want 2", res.RowsAffected)
	}
	r := mustQuery(t, db, "SELECT SUM(Quantity) FROM Orders WHERE ItemID = 'bolt'")
	if r.Rows[0][0].I != 215 {
		t.Fatalf("sum after update: %v", r.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	db := newOrdersDB(t)
	res := db.MustExec("DELETE FROM Orders WHERE Approved = FALSE")
	if res.RowsAffected != 2 {
		t.Fatalf("rows affected: %d, want 2", res.RowsAffected)
	}
	r := mustQuery(t, db, "SELECT COUNT(*) FROM Orders")
	if r.Rows[0][0].I != 4 {
		t.Fatalf("remaining rows: %v", r.Rows[0][0])
	}
}

func TestJoin(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec("CREATE TABLE Items (ItemID VARCHAR PRIMARY KEY, Price FLOAT)")
	db.MustExec("INSERT INTO Items VALUES ('bolt', 0.10), ('nut', 0.05), ('screw', 0.07)")
	r := mustQuery(t, db, `SELECT o.OrderID, i.Price FROM Orders o JOIN Items i ON o.ItemID = i.ItemID WHERE o.OrderID = 1`)
	if len(r.Rows) != 1 || r.Rows[0][1].F != 0.10 {
		t.Fatalf("join result: %v", r.Rows)
	}
}

func TestLeftJoin(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec("CREATE TABLE Items (ItemID VARCHAR PRIMARY KEY, Price FLOAT)")
	db.MustExec("INSERT INTO Items VALUES ('bolt', 0.10)")
	r := mustQuery(t, db, `SELECT o.OrderID, i.Price FROM Orders o LEFT JOIN Items i ON o.ItemID = i.ItemID ORDER BY o.OrderID`)
	if len(r.Rows) != 6 {
		t.Fatalf("left join rows: %d", len(r.Rows))
	}
	// Order 3 is a nut; no Items row, Price must be NULL.
	if !r.Rows[2][1].IsNull() {
		t.Fatalf("expected NULL price for unmatched row, got %v", r.Rows[2][1])
	}
}

func TestCrossJoinComma(t *testing.T) {
	db := Open("t")
	db.MustExec("CREATE TABLE a (x INTEGER)")
	db.MustExec("CREATE TABLE b (y INTEGER)")
	db.MustExec("INSERT INTO a VALUES (1), (2)")
	db.MustExec("INSERT INTO b VALUES (10), (20), (30)")
	r := mustQuery(t, db, "SELECT x, y FROM a, b")
	if len(r.Rows) != 6 {
		t.Fatalf("cross product rows: %d, want 6", len(r.Rows))
	}
	r = mustQuery(t, db, "SELECT x, y FROM a CROSS JOIN b")
	if len(r.Rows) != 6 {
		t.Fatalf("CROSS JOIN rows: %d, want 6", len(r.Rows))
	}
}

func TestSubqueryScalar(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT OrderID FROM Orders WHERE Quantity = (SELECT MAX(Quantity) FROM Orders)")
	if len(r.Rows) != 1 || r.Rows[0][0].I != 1 {
		t.Fatalf("scalar subquery: %v", r.Rows)
	}
}

func TestSubqueryIn(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec("CREATE TABLE Banned (ItemID VARCHAR)")
	db.MustExec("INSERT INTO Banned VALUES ('nut')")
	r := mustQuery(t, db, "SELECT COUNT(*) FROM Orders WHERE ItemID NOT IN (SELECT ItemID FROM Banned)")
	if r.Rows[0][0].I != 4 {
		t.Fatalf("NOT IN subquery: %v", r.Rows[0][0])
	}
}

func TestCorrelatedExists(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec("CREATE TABLE Items (ItemID VARCHAR PRIMARY KEY)")
	db.MustExec("INSERT INTO Items VALUES ('bolt')")
	r := mustQuery(t, db, "SELECT COUNT(*) FROM Orders o WHERE EXISTS (SELECT 1 FROM Items i WHERE i.ItemID = o.ItemID)")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("correlated EXISTS: %v", r.Rows[0][0])
	}
}

func TestInList(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT COUNT(*) FROM Orders WHERE ItemID IN ('bolt', 'screw')")
	if r.Rows[0][0].I != 4 {
		t.Fatalf("IN list: %v", r.Rows[0][0])
	}
}

func TestBetween(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT COUNT(*) FROM Orders WHERE Quantity BETWEEN 3 AND 7")
	if r.Rows[0][0].I != 3 {
		t.Fatalf("BETWEEN: %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, "SELECT COUNT(*) FROM Orders WHERE Quantity NOT BETWEEN 3 AND 7")
	if r.Rows[0][0].I != 3 {
		t.Fatalf("NOT BETWEEN: %v", r.Rows[0][0])
	}
}

func TestLike(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT COUNT(*) FROM Orders WHERE ItemID LIKE 'b%'")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("LIKE: %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, "SELECT COUNT(*) FROM Orders WHERE ItemID LIKE '_ut'")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("LIKE underscore: %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, "SELECT COUNT(*) FROM Orders WHERE ItemID NOT LIKE '%t'")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("NOT LIKE: %v", r.Rows[0][0])
	}
}

func TestCaseExpr(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, `SELECT SUM(CASE WHEN Approved = TRUE THEN Quantity ELSE 0 END) FROM Orders`)
	if r.Rows[0][0].I != 20 {
		t.Fatalf("searched CASE: %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, `SELECT CASE ItemID WHEN 'bolt' THEN 'B' ELSE 'X' END FROM Orders WHERE OrderID = 1`)
	if r.Rows[0][0].S != "B" {
		t.Fatalf("simple CASE: %v", r.Rows[0][0])
	}
}

func TestNullSemantics(t *testing.T) {
	db := Open("t")
	db.MustExec("CREATE TABLE n (x INTEGER)")
	db.MustExec("INSERT INTO n VALUES (1), (NULL), (3)")
	r := mustQuery(t, db, "SELECT COUNT(*) FROM n WHERE x = NULL")
	if r.Rows[0][0].I != 0 {
		t.Fatalf("= NULL must match nothing: %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, "SELECT COUNT(*) FROM n WHERE x IS NULL")
	if r.Rows[0][0].I != 1 {
		t.Fatalf("IS NULL: %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, "SELECT COUNT(x) FROM n")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("COUNT(col) skips NULL: %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, "SELECT COALESCE(x, -1) FROM n ORDER BY COALESCE(x, -1)")
	if r.Rows[0][0].I != -1 {
		t.Fatalf("COALESCE: %v", r.Rows)
	}
}

func TestNotNullConstraint(t *testing.T) {
	db := newOrdersDB(t)
	_, err := db.Exec("INSERT INTO Orders (OrderID, ItemID, Quantity, Approved) VALUES (7, NULL, 1, TRUE)")
	if err == nil || !strings.Contains(err.Error(), "NULL") {
		t.Fatalf("expected NOT NULL violation, got %v", err)
	}
}

func TestPrimaryKeyUnique(t *testing.T) {
	db := newOrdersDB(t)
	_, err := db.Exec("INSERT INTO Orders VALUES (1, 'dup', 1, TRUE)")
	if err == nil || !strings.Contains(err.Error(), "unique") {
		t.Fatalf("expected unique violation, got %v", err)
	}
}

func TestUniqueIndex(t *testing.T) {
	db := Open("t")
	db.MustExec("CREATE TABLE u (a INTEGER, b VARCHAR)")
	db.MustExec("INSERT INTO u VALUES (1, 'x')")
	db.MustExec("CREATE UNIQUE INDEX u_a ON u (a)")
	_, err := db.Exec("INSERT INTO u VALUES (1, 'y')")
	if err == nil {
		t.Fatal("expected unique index violation")
	}
	// NULL keys are exempt from uniqueness.
	db.MustExec("INSERT INTO u VALUES (NULL, 'y')")
	db.MustExec("INSERT INTO u VALUES (NULL, 'z')")
}

func TestIndexLookupCorrectness(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec("CREATE INDEX idx_item ON Orders (ItemID)")
	r := mustQuery(t, db, "SELECT COUNT(*) FROM Orders WHERE ItemID = 'bolt'")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("index-backed equality: %v", r.Rows[0][0])
	}
	// Index must track updates.
	db.MustExec("UPDATE Orders SET ItemID = 'bolt' WHERE OrderID = 3")
	r = mustQuery(t, db, "SELECT COUNT(*) FROM Orders WHERE ItemID = 'bolt'")
	if r.Rows[0][0].I != 3 {
		t.Fatalf("index after update: %v", r.Rows[0][0])
	}
	// And deletes.
	db.MustExec("DELETE FROM Orders WHERE OrderID = 1")
	r = mustQuery(t, db, "SELECT COUNT(*) FROM Orders WHERE ItemID = 'bolt'")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("index after delete: %v", r.Rows[0][0])
	}
}

func TestTransactionCommitAndRollback(t *testing.T) {
	db := newOrdersDB(t)
	s := db.Session()
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("DELETE FROM Orders WHERE OrderID = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO Orders VALUES (99, 'washer', 1, TRUE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("UPDATE Orders SET Quantity = 0 WHERE OrderID = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, db, "SELECT COUNT(*) FROM Orders")
	if r.Rows[0][0].I != 6 {
		t.Fatalf("row count after rollback: %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, "SELECT Quantity FROM Orders WHERE OrderID = 2")
	if r.Rows[0][0].I != 5 {
		t.Fatalf("quantity after rollback: %v", r.Rows[0][0])
	}

	// Commit path.
	s2 := db.Session()
	s2.Exec("BEGIN")
	s2.Exec("DELETE FROM Orders WHERE OrderID = 1")
	s2.Exec("COMMIT")
	r = mustQuery(t, db, "SELECT COUNT(*) FROM Orders")
	if r.Rows[0][0].I != 5 {
		t.Fatalf("row count after commit: %v", r.Rows[0][0])
	}
}

func TestStatementAtomicity(t *testing.T) {
	db := Open("t")
	db.MustExec("CREATE TABLE a (x INTEGER PRIMARY KEY)")
	db.MustExec("INSERT INTO a VALUES (1)")
	// Multi-row insert where the second row violates the PK: the whole
	// statement must roll back.
	_, err := db.Exec("INSERT INTO a VALUES (2), (1)")
	if err == nil {
		t.Fatal("expected error")
	}
	r := mustQuery(t, db, "SELECT COUNT(*) FROM a")
	if r.Rows[0][0].I != 1 {
		t.Fatalf("partial insert leaked: count=%v", r.Rows[0][0])
	}
}

func TestSequences(t *testing.T) {
	db := Open("t")
	db.MustExec("CREATE SEQUENCE s START WITH 10 INCREMENT BY 5")
	r := mustQuery(t, db, "SELECT NEXT VALUE FOR s")
	if r.Rows[0][0].I != 10 {
		t.Fatalf("first value: %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, "SELECT NEXTVAL('s')")
	if r.Rows[0][0].I != 15 {
		t.Fatalf("second value: %v", r.Rows[0][0])
	}
	db.MustExec("DROP SEQUENCE s")
	if _, err := db.Exec("SELECT NEXTVAL('s')"); err == nil {
		t.Fatal("expected error after DROP SEQUENCE")
	}
}

func TestSQLProcedure(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec(`CREATE PROCEDURE approve_all (item) AS
		'UPDATE Orders SET Approved = TRUE WHERE ItemID = :item;
		 SELECT COUNT(*) FROM Orders WHERE ItemID = :item AND Approved = TRUE'`)
	r, err := db.Exec("CALL approve_all('nut')")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 2 {
		t.Fatalf("procedure result: %v", r.Rows[0][0])
	}
}

func TestNativeProcedure(t *testing.T) {
	db := newOrdersDB(t)
	db.RegisterProcedure("order_stats", func(s *Session, args []Value) (*Result, error) {
		return s.Query("SELECT COUNT(*) AS n, SUM(Quantity) AS total FROM Orders")
	})
	r, err := db.Exec("CALL order_stats()")
	if err != nil {
		t.Fatal(err)
	}
	if r.Get(0, "n").I != 6 || r.Get(0, "total").I != 36 {
		t.Fatalf("native procedure: %v", r.Rows)
	}
}

func TestProcedureErrorRollsBack(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec(`CREATE PROCEDURE bad () AS
		'DELETE FROM Orders;
		 INSERT INTO NoSuchTable VALUES (1)'`)
	if _, err := db.Exec("CALL bad()"); err == nil {
		t.Fatal("expected error")
	}
	r := mustQuery(t, db, "SELECT COUNT(*) FROM Orders")
	if r.Rows[0][0].I != 6 {
		t.Fatalf("procedure failure must roll back its work: count=%v", r.Rows[0][0])
	}
}

func TestDDLStatements(t *testing.T) {
	db := Open("t")
	db.MustExec("CREATE TABLE x (a INTEGER)")
	if !db.HasTable("x") {
		t.Fatal("table x should exist")
	}
	db.MustExec("CREATE TABLE IF NOT EXISTS x (a INTEGER)") // no error
	db.MustExec("DROP TABLE x")
	if db.HasTable("x") {
		t.Fatal("table x should be gone")
	}
	db.MustExec("DROP TABLE IF EXISTS x") // no error
	if _, err := db.Exec("DROP TABLE x"); err == nil {
		t.Fatal("expected error dropping missing table")
	}
}

func TestCreateTableAsSelect(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec(`CREATE TABLE ItemList AS SELECT ItemID, SUM(Quantity) AS ItemQuantity
		FROM Orders WHERE Approved = TRUE GROUP BY ItemID`)
	r := mustQuery(t, db, "SELECT COUNT(*) FROM ItemList")
	if r.Rows[0][0].I != 3 {
		t.Fatalf("CTAS rows: %v", r.Rows[0][0])
	}
	cols, err := db.Schema("ItemList")
	if err != nil {
		t.Fatal(err)
	}
	if cols[0].Name != "ItemID" || cols[1].Name != "ItemQuantity" {
		t.Fatalf("CTAS columns: %v", cols)
	}
}

func TestTruncate(t *testing.T) {
	db := newOrdersDB(t)
	r := db.MustExec("TRUNCATE TABLE Orders")
	if r.RowsAffected != 6 {
		t.Fatalf("truncate affected: %d", r.RowsAffected)
	}
	q := mustQuery(t, db, "SELECT COUNT(*) FROM Orders")
	if q.Rows[0][0].I != 0 {
		t.Fatalf("count after truncate: %v", q.Rows[0][0])
	}
}

func TestInsertSelect(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec("CREATE TABLE Archive (OrderID INTEGER, ItemID VARCHAR, Quantity INTEGER, Approved BOOLEAN)")
	r := db.MustExec("INSERT INTO Archive SELECT * FROM Orders WHERE Approved = TRUE")
	if r.RowsAffected != 4 {
		t.Fatalf("insert-select affected: %d", r.RowsAffected)
	}
}

func TestParameters(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT COUNT(*) FROM Orders WHERE ItemID = ? AND Quantity >= ?", Str("bolt"), Int(5))
	if r.Rows[0][0].I != 2 {
		t.Fatalf("positional params: %v", r.Rows[0][0])
	}
	s := db.Session()
	res, err := s.ExecNamed("SELECT COUNT(*) FROM Orders WHERE ItemID = :item", map[string]Value{"item": Str("nut")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 2 {
		t.Fatalf("named params: %v", res.Rows[0][0])
	}
}

func TestScalarFunctions(t *testing.T) {
	db := Open("t")
	cases := []struct {
		sql  string
		want Value
	}{
		{"SELECT UPPER('abc')", Str("ABC")},
		{"SELECT LOWER('AbC')", Str("abc")},
		{"SELECT LENGTH('hello')", Int(5)},
		{"SELECT ABS(-4)", Int(4)},
		{"SELECT ABS(-4.5)", Float(4.5)},
		{"SELECT MOD(10, 3)", Int(1)},
		{"SELECT SUBSTR('workflow', 1, 4)", Str("work")},
		{"SELECT SUBSTR('workflow', 5)", Str("flow")},
		{"SELECT REPLACE('a-b-c', '-', '+')", Str("a+b+c")},
		{"SELECT TRIM('  x  ')", Str("x")},
		{"SELECT CONCAT('a', 'b', 'c')", Str("abc")},
		{"SELECT NULLIF(1, 1)", Null()},
		{"SELECT NULLIF(1, 2)", Int(1)},
		{"SELECT 'a' || 'b' || 'c'", Str("abc")},
		{"SELECT 2 + 3 * 4", Int(14)},
		{"SELECT (2 + 3) * 4", Int(20)},
		{"SELECT 7 / 2", Int(3)},
		{"SELECT 7.0 / 2", Float(3.5)},
		{"SELECT ROUND(3.567, 2)", Float(3.57)},
		{"SELECT POSITION('flow', 'workflow')", Int(5)},
		{"SELECT INSTR('x', 'workflow')", Int(0)},
		{"SELECT LEFT('workflow', 4)", Str("work")},
		{"SELECT RIGHT('workflow', 4)", Str("flow")},
		{"SELECT LEFT('ab', 9)", Str("ab")},
		{"SELECT GREATEST(3, 9, 1)", Int(9)},
		{"SELECT LEAST('b', 'a', 'c')", Str("a")},
		{"SELECT SIGN(-4)", Int(-1)},
		{"SELECT SIGN(0)", Int(0)},
		{"SELECT POWER(2, 10)", Float(1024)},
		{"SELECT SQRT(81)", Float(9)},
		{"SELECT FLOOR(2.9)", Float(2)},
		{"SELECT CEILING(2.1)", Float(3)},
	}
	for _, c := range cases {
		r, err := db.Exec(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		got := r.Rows[0][0]
		if got.K != c.want.K || got.String() != c.want.String() {
			t.Errorf("%s: got %v (%s), want %v (%s)", c.sql, got, got.K, c.want, c.want.K)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	db := Open("t")
	if _, err := db.Exec("SELECT 1 / 0"); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestParseErrors(t *testing.T) {
	db := Open("t")
	bad := []string{
		"",
		"SELEC 1",
		"SELECT FROM",
		"INSERT INTO",
		"CREATE TABLE t",
		"SELECT 1 FROM t WHERE",
		"SELECT * FROM t ORDER",
		"DROP",
		"SELECT 'unterminated",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("%q: expected error", sql)
		}
	}
}

func TestDefaultValues(t *testing.T) {
	db := Open("t")
	db.MustExec("CREATE TABLE d (a INTEGER, b VARCHAR DEFAULT 'none', c BOOLEAN DEFAULT FALSE)")
	db.MustExec("INSERT INTO d (a) VALUES (1)")
	r := mustQuery(t, db, "SELECT b, c FROM d")
	if r.Rows[0][0].S != "none" || r.Rows[0][1].B != false {
		t.Fatalf("defaults: %v", r.Rows[0])
	}
}

func TestTypeCoercion(t *testing.T) {
	db := Open("t")
	db.MustExec("CREATE TABLE c (i INTEGER, f FLOAT, s VARCHAR, b BOOLEAN)")
	db.MustExec("INSERT INTO c VALUES ('42', 1, 99, 1)")
	r := mustQuery(t, db, "SELECT i, f, s, b FROM c")
	row := r.Rows[0]
	if row[0].K != KindInt || row[0].I != 42 {
		t.Fatalf("string->int coercion: %v", row[0])
	}
	if row[1].K != KindFloat || row[1].F != 1.0 {
		t.Fatalf("int->float coercion: %v", row[1])
	}
	if row[2].K != KindString || row[2].S != "99" {
		t.Fatalf("int->string coercion: %v", row[2])
	}
	if row[3].K != KindBool || !row[3].B {
		t.Fatalf("int->bool coercion: %v", row[3])
	}
}

func TestStatsCounters(t *testing.T) {
	db := newOrdersDB(t)
	db.ResetStats()
	mustQuery(t, db, "SELECT * FROM Orders")
	st := db.Stats()
	if st.Statements != 1 {
		t.Fatalf("statements: %d", st.Statements)
	}
	if st.RowsRead != 6 {
		t.Fatalf("rows read: %d", st.RowsRead)
	}
	if st.BytesReturned == 0 {
		t.Fatal("bytes returned should be nonzero")
	}
}

func TestQualifiedStar(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec("CREATE TABLE Items (ItemID VARCHAR, Price FLOAT)")
	db.MustExec("INSERT INTO Items VALUES ('bolt', 0.1)")
	r := mustQuery(t, db, "SELECT o.* FROM Orders o JOIN Items i ON o.ItemID = i.ItemID")
	if len(r.Columns) != 4 {
		t.Fatalf("qualified star columns: %v", r.Columns)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec("CREATE TABLE Items (ItemID VARCHAR)")
	db.MustExec("INSERT INTO Items VALUES ('bolt')")
	if _, err := db.Exec("SELECT ItemID FROM Orders o JOIN Items i ON o.ItemID = i.ItemID"); err == nil {
		t.Fatal("expected ambiguous-column error")
	}
}

func TestResultString(t *testing.T) {
	db := newOrdersDB(t)
	r := mustQuery(t, db, "SELECT OrderID, ItemID FROM Orders WHERE OrderID = 1")
	s := r.String()
	if !strings.Contains(s, "OrderID") || !strings.Contains(s, "bolt") {
		t.Fatalf("result rendering: %q", s)
	}
}

func TestExecScript(t *testing.T) {
	db := Open("t")
	r, err := db.ExecScript(`
		CREATE TABLE s (x INTEGER);
		INSERT INTO s VALUES (1), (2), (3);
		SELECT SUM(x) FROM s;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 6 {
		t.Fatalf("script result: %v", r.Rows[0][0])
	}
}

func TestComments(t *testing.T) {
	db := Open("t")
	db.MustExec("CREATE TABLE c (x INTEGER) -- trailing comment")
	db.MustExec("INSERT INTO c VALUES (1) /* block comment */")
	r := mustQuery(t, db, "SELECT /* inline */ x FROM c -- done")
	if r.Rows[0][0].I != 1 {
		t.Fatalf("comments: %v", r.Rows[0][0])
	}
}

func TestQuotedIdentifier(t *testing.T) {
	db := Open("t")
	db.MustExec(`CREATE TABLE "Select" ("order" INTEGER)`)
	db.MustExec(`INSERT INTO "Select" VALUES (5)`)
	r := mustQuery(t, db, `SELECT "order" FROM "Select"`)
	if r.Rows[0][0].I != 5 {
		t.Fatalf("quoted identifiers: %v", r.Rows[0][0])
	}
}
