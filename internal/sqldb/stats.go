package sqldb

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"wfsql/internal/obsv"
)

// StmtStats describes one top-level statement execution: what ran, which
// access path the executor actually took (EXPLAIN-aligned label), and how
// much work it did. Emitted to the session's (or database's) StatsSink
// after the engine lock is released.
type StmtStats struct {
	Start        time.Time     // when execution (not parsing) began
	Kind         string        // SELECT / INSERT / UPDATE / ... (StmtKind)
	Table        string        // primary access-path table, if any
	Index        string        // index the executor probed ("" = scan)
	Plan         string        // EXPLAIN-aligned access-path label
	Parse        time.Duration // time spent in Parse (0 for cache hits and re-used prepared statements)
	Exec         time.Duration // time spent executing
	LockWait     time.Duration // engine lock + table latches + conflict backoff
	Cache        string        // statement-cache outcome: CacheHit, CacheMiss, or "" (pre-parsed)
	RowsScanned  int64         // candidate rows read by this statement
	RowsReturned int64         // result-set rows
	RowsAffected int           // DML rows affected
	Err          string        // non-empty if the statement failed

	// LockWaitByTable attributes the latch-wait portion of LockWait to
	// the tables whose latches the statement contended on (plus
	// write-conflict backoff charged to the conflicted table). Nil when
	// the statement waited on no table latch.
	LockWaitByTable map[string]time.Duration
}

// Statement-cache outcomes recorded in StmtStats.Cache.
const (
	CacheHit  = "hit"
	CacheMiss = "miss"
)

// StatsSink receives per-statement stats. It is invoked after the engine
// lock is released, so a sink may safely read DB state — but it runs on
// the statement's goroutine, so it should be fast.
type StatsSink func(StmtStats)

// SetStatsSink installs a per-session stats sink, overriding the
// database-level sink for statements on this session. Nil reverts to the
// database-level sink.
func (s *Session) SetStatsSink(sink StatsSink) { s.sink = sink }

// SetStatsSink installs a database-level default sink inherited by every
// session without its own. Nil removes it.
func (db *DB) SetStatsSink(sink StatsSink) {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	db.statsSink = sink
}

func (db *DB) currentStatsSink() StatsSink {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	return db.statsSink
}

// planLabel is the single source of truth for access-path labels: both
// EXPLAIN output and executor-side StmtStats.Plan render through it, so
// the plan a query *reports* is definitionally the plan the executor
// *takes* (they also share the chooseIndex planner entry point).
func planLabel(tbl *Table, idx *Index) string {
	if idx != nil {
		return fmt.Sprintf("INDEX PROBE %s USING %s (%s)", tbl.Name, idx.Name, strings.Join(idx.Columns, ", "))
	}
	return fmt.Sprintf("SCAN %s (%d rows)", tbl.Name, tbl.RowCount())
}

// notePlan records the primary access path chosen while executing the
// current statement. First write wins: subqueries must not overwrite the
// outer statement's access path.
func (s *Session) notePlan(tbl *Table, idx *Index) {
	if s.planTable != "" {
		return
	}
	s.planTable = tbl.Name
	if idx != nil {
		s.planIndex = idx.Name
	}
}

// SetObservability wires the database into a tracing/metrics bundle:
// every top-level statement emits a KindSQL span (parented at the
// tracer's ambient span, i.e. the activity currently executing) and
// feeds the sqldb.* counters and latency histograms. Nil detaches.
func (db *DB) SetObservability(o *obsv.Observability) {
	if o == nil {
		db.SetStatsSink(nil)
		return
	}
	name := db.name
	// Per-kind metric names are precomputed for the closed StmtKind set so
	// the hot path does not concatenate strings per statement. The map is
	// read-only after construction, so sharing it across sessions is safe.
	kindNames := make(map[string][2]string, len(stmtKinds))
	for _, k := range stmtKinds {
		kindNames[k] = [2]string{"sqldb.stmt." + k, "sqldb.exec_ms." + k}
	}
	db.SetStatsSink(func(st StmtStats) {
		kn, ok := kindNames[st.Kind]
		if !ok {
			kn = [2]string{"sqldb.stmt." + st.Kind, "sqldb.exec_ms." + st.Kind}
		}
		m := o.M()
		m.Counter("sqldb.stmt").Inc()
		m.Counter(kn[0]).Inc()
		m.Histogram("sqldb.parse_ms").ObserveDuration(st.Parse)
		m.Histogram("sqldb.exec_ms").ObserveDuration(st.Exec)
		m.Histogram(kn[1]).ObserveDuration(st.Exec)
		m.Histogram("sqldb.lock_wait_ms").ObserveDuration(st.LockWait)
		for tbl, d := range st.LockWaitByTable {
			m.Histogram("sqldb.lock_wait_ms." + tbl).ObserveDuration(d)
		}
		m.Counter("sqldb.rows_scanned").Add(st.RowsScanned)
		m.Counter("sqldb.rows_returned").Add(st.RowsReturned)
		switch st.Cache {
		case CacheHit:
			m.Counter("sqldb.stmtcache.hits").Inc()
		case CacheMiss:
			m.Counter("sqldb.stmtcache.misses").Inc()
		}
		// Plan-cache occupancy, mirrored through an atomic so the sink
		// never takes cacheMu on the statement path.
		m.Gauge("sqldb.stmtcache.size").SetInt(db.cacheSize.Load())
		if st.Table != "" {
			if st.Index != "" {
				m.Counter("sqldb.index_hits").Inc()
			} else {
				m.Counter("sqldb.index_misses").Inc()
			}
		}
		if st.Err != "" {
			m.Counter("sqldb.errors").Inc()
		}

		tr := o.T()
		sp := tr.StartAt(tr.Ambient(), obsv.KindSQL, st.Kind, st.Start)
		if sp == nil {
			return
		}
		sp.Set("db", name)
		if st.Table != "" {
			sp.Set("table", st.Table)
		}
		if st.Plan != "" {
			sp.Set("plan", st.Plan)
		}
		if st.Index != "" {
			sp.Set("index", st.Index)
		}
		sp.Set("rows_scanned", strconv.FormatInt(st.RowsScanned, 10))
		sp.Set("rows_returned", strconv.FormatInt(st.RowsReturned, 10))
		sp.Set("exec_ms", strconv.FormatFloat(float64(st.Exec)/float64(time.Millisecond), 'f', 3, 64))
		if st.Err != "" {
			sp.Set("error", st.Err)
			sp.End(obsv.OutcomeFault)
			return
		}
		sp.End(obsv.OutcomeOK)
	})
}
