package sqldb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBoundedPoolCheckoutDeadline proves that checkout starvation on a
// bounded pool returns a timely error once checkout honors context
// deadlines — not a hang.
func TestBoundedPoolCheckoutDeadline(t *testing.T) {
	db := Open("pool")
	p := NewBoundedSessionPool(db, 1)

	s1, err := p.AcquireCtx(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = p.AcquireCtx(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("starved acquire = %v, want deadline exceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("starved acquire took %v — not timely", elapsed)
	}
	if p.Timeouts() != 1 {
		t.Fatalf("timeouts = %d, want 1", p.Timeouts())
	}

	p.Release(s1)
	s2, err := p.AcquireCtx(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	p.Release(s2)
}

// TestBoundedPoolDirtyReleaseReturnsPermit proves a txn-holding session
// that is rolled back and discarded still frees its permit.
func TestBoundedPoolDirtyReleaseReturnsPermit(t *testing.T) {
	db := Open("pool")
	db.MustExec("CREATE TABLE t (a INT)")
	p := NewBoundedSessionPool(db, 1)

	s, err := p.AcquireCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	p.Release(s) // dirty: rolled back + discarded, permit must return

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	s2, err := p.AcquireCtx(ctx)
	if err != nil {
		t.Fatalf("permit leaked on dirty release: %v", err)
	}
	r, err := s2.Query("SELECT COUNT(*) AS n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := r.Rows[0][0].AsInt(); n != 0 {
		t.Fatalf("dirty session's insert survived: %d rows", n)
	}
	p.Release(s2)
}

// TestBoundedPoolContention hammers a small pool from many goroutines:
// every acquire either succeeds or fails timely, and the pool never
// admits more than its bound concurrently.
func TestBoundedPoolContention(t *testing.T) {
	db := Open("pool")
	const bound = 4
	p := NewBoundedSessionPool(db, bound)

	var mu sync.Mutex
	inUse, maxInUse := 0, 0
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				s, err := p.AcquireCtx(ctx)
				cancel()
				if err != nil {
					continue // timely failure is acceptable under contention
				}
				mu.Lock()
				inUse++
				if inUse > maxInUse {
					maxInUse = inUse
				}
				mu.Unlock()
				time.Sleep(100 * time.Microsecond)
				mu.Lock()
				inUse--
				mu.Unlock()
				p.Release(s)
			}
		}()
	}
	wg.Wait()
	if maxInUse > bound {
		t.Fatalf("observed %d concurrent checkouts, bound %d", maxInUse, bound)
	}
}

// TestSessionBudgetRefusesAtBoundary: a session bound to an expired
// context refuses statements at the boundary with a permanent error.
func TestSessionBudgetRefusesAtBoundary(t *testing.T) {
	db := Open("budget")
	db.MustExec("CREATE TABLE t (a INT)")
	s := db.Session()

	ctx, cancel := context.WithCancel(context.Background())
	s.BindContext(ctx)
	if _, err := s.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatalf("statement with live budget: %v", err)
	}
	cancel()
	_, err := s.Exec("INSERT INTO t VALUES (2)")
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	// The refusal must classify permanent so retry policies stop.
	var tmp interface{ Temporary() bool }
	if !errors.As(err, &tmp) || tmp.Temporary() {
		t.Fatalf("budget error must be permanent, got %v", err)
	}
	if db.DeadlineRefusals() != 1 {
		t.Fatalf("deadline refusals = %d, want 1", db.DeadlineRefusals())
	}
	// Only the first insert landed.
	s.BindContext(nil)
	r, err := s.Query("SELECT COUNT(*) AS n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := r.Rows[0][0].AsInt(); n != 1 {
		t.Fatalf("rows = %d, want 1", n)
	}
}

// TestSessionBudgetPreparedStmtRearmsParse: a prepared statement whose
// execution was refused at the budget boundary re-arms its one-time
// parse charge, exactly like an ExecHook refusal.
func TestSessionBudgetPreparedStmtRearmsParse(t *testing.T) {
	db := Open("budget")
	db.MustExec("CREATE TABLE t (a INT)")
	s := db.Session()
	var stats []StmtStats
	s.sink = func(st StmtStats) { stats = append(stats, st) }

	ps, err := s.Prepare("INSERT INTO t VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.BindContext(ctx)
	if _, err := ps.Exec(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want budget refusal, got %v", err)
	}
	s.BindContext(nil)
	if _, err := ps.Exec(); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("stats emitted = %d, want 1 (refused exec emits none)", len(stats))
	}
	if stats[0].Parse <= 0 {
		t.Fatalf("parse charge lost across budget refusal: %v", stats[0].Parse)
	}
}

// TestStmtCacheLRUHotStatementSurvives: under capacity pressure from a
// churn of one-off SQL text, the hot statement stays cached (LRU
// eviction) instead of being lost to a full flush.
func TestStmtCacheLRUHotStatementSurvives(t *testing.T) {
	db := Open("lru")
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	s := db.Session()

	baseFlushes := db.StmtCacheStats().Flushes // 0: DDL no longer full-flushes

	hot := "SELECT a FROM t WHERE b = ?"
	if _, err := s.Exec(hot, Int(1)); err != nil {
		t.Fatal(err)
	}

	// Interleave cold one-off statements with hot reuse, overflowing the
	// cache several times over. The cold text must differ STRUCTURALLY
	// (a distinct alias), not just in literal values — literal-only
	// variants normalize to one shared plan and would never fill the
	// cache.
	for i := 0; i < 3*stmtCacheCap; i++ {
		cold := fmt.Sprintf("SELECT a AS a%d FROM t WHERE a = %d", i, i)
		if _, err := s.Exec(cold); err != nil {
			t.Fatal(err)
		}
		if i%16 == 0 {
			if _, err := s.Exec(hot, Int(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	cs := db.StmtCacheStats()
	if cs.Size > stmtCacheCap {
		t.Fatalf("cache size %d exceeds cap %d", cs.Size, stmtCacheCap)
	}
	if cs.Evictions == 0 {
		t.Fatal("expected LRU evictions under pressure")
	}
	if cs.Flushes != baseFlushes {
		t.Fatalf("capacity pressure must not full-flush (flushes = %d, base %d)", cs.Flushes, baseFlushes)
	}

	// The hot statement must still be a hit.
	before := db.StmtCacheStats().Hits
	if _, err := s.Exec(hot, Int(7)); err != nil {
		t.Fatal(err)
	}
	if after := db.StmtCacheStats().Hits; after != before+1 {
		t.Fatalf("hot statement was evicted: hits %d -> %d", before, after)
	}

	// DDL evicts the entries referencing the altered table — here that is
	// every cached statement, since they all read t — via per-entry
	// invalidation, never a full flush.
	preInv := db.StmtCacheStats().Invalidations
	db.MustExec("CREATE INDEX it ON t (b)")
	cs = db.StmtCacheStats()
	if cs.Flushes != baseFlushes {
		t.Fatalf("DDL full-flushed the cache (flushes %d, base %d)", cs.Flushes, baseFlushes)
	}
	if cs.Invalidations <= preInv {
		t.Fatalf("DDL on t must invalidate cached statements referencing t (invalidations %d, base %d)", cs.Invalidations, preInv)
	}
	if cs.Size != 0 {
		t.Fatalf("cache size after DDL on t = %d, want 0 (every cached statement references t)", cs.Size)
	}
}
