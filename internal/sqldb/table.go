package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       ColumnType
	NotNull    bool
	PrimaryKey bool
	Default    Expr // nil if no default
}

// Row is one stored version of a tuple. Row identity (the pointer) is
// stable for the life of the version, which indexes and transaction
// write sets rely on. Values is immutable after insert except under the
// exclusive engine lock (ALTER TABLE); concurrent statements never
// mutate it — an UPDATE claims the old version and inserts a new one.
// xmin/xmax carry the MVCC stamps documented in mvcc.go.
type Row struct {
	Values []Value

	xmin atomic.Int64
	xmax atomic.Int64
}

// Table is an in-memory heap of row versions plus its schema and
// secondary indexes.
//
// Concurrency: `latch` is the per-table statement latch — mutating
// statements hold it exclusively for their whole execution, readers of
// a mutating statement's footprint hold it shared, and snapshot SELECTs
// do not take it at all. `rowsMu` is a short-hold structural lock
// guarding the rows slice header and the index buckets so those
// latch-free readers can copy them safely; writers hold it only for the
// append/rebuild itself. Schema fields (Name, Columns, indexes) change
// only under the exclusive engine lock.
type Table struct {
	Name    string
	Columns []Column
	rows    []*Row
	indexes map[string]*Index // by lowercased index name
	pkIndex *Index            // non-nil if the table has a primary key

	latch  sync.RWMutex
	rowsMu sync.RWMutex
	live   atomic.Int64 // versions visible to at least their creator
	dead   atomic.Int64 // aborted or committed-deleted versions awaiting vacuum
}

func newTable(name string, cols []Column) (*Table, error) {
	seen := map[string]bool{}
	for _, c := range cols {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return nil, fmt.Errorf("sqldb: duplicate column %s in table %s", c.Name, name)
		}
		seen[lc] = true
	}
	t := &Table{Name: name, Columns: cols, indexes: map[string]*Index{}}
	var pkCols []string
	for _, c := range cols {
		if c.PrimaryKey {
			pkCols = append(pkCols, c.Name)
		}
	}
	if len(pkCols) > 0 {
		idx, err := newIndex(t.Name+"_pk", t, pkCols, true)
		if err != nil {
			return nil, err
		}
		t.pkIndex = idx
		t.indexes[strings.ToLower(idx.Name)] = idx
	}
	return t, nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// RowCount returns the number of live rows: committed versions not yet
// committed-deleted, plus the creators' own uncommitted inserts. It is
// a heap statistic (planner labels, EXPLAIN), not a snapshot count.
func (t *Table) RowCount() int { return int(t.live.Load()) }

// snapshotRows returns the heap to scan: a copy of the slice header
// taken under the structural lock. Concurrent inserts append past the
// copied length and vacuum replaces the slice wholesale, so the copy is
// stable; callers filter versions through visibleAt.
func (t *Table) snapshotRows() []*Row {
	t.rowsMu.RLock()
	rows := t.rows
	t.rowsMu.RUnlock()
	return rows
}

// insertVersion validates constraints and appends a new version stamped
// as created by txnID (uncommitted). The caller holds the table's
// exclusive latch; the structural lock is taken only around the
// append so latch-free readers stay safe.
func (t *Table) insertVersion(vals []Value, txnID int64) (*Row, error) {
	if len(vals) != len(t.Columns) {
		return nil, fmt.Errorf("sqldb: table %s expects %d values, got %d", t.Name, len(t.Columns), len(vals))
	}
	r := &Row{Values: make([]Value, len(vals))}
	for i, c := range t.Columns {
		v, err := coerce(vals[i], c.Type)
		if err != nil {
			return nil, fmt.Errorf("sqldb: column %s.%s: %w", t.Name, c.Name, err)
		}
		if c.NotNull && v.IsNull() {
			return nil, fmt.Errorf("sqldb: column %s.%s may not be NULL", t.Name, c.Name)
		}
		r.Values[i] = v
	}
	r.xmin.Store(-txnID)
	t.rowsMu.Lock()
	for _, idx := range t.indexes {
		if err := idx.checkInsert(r, txnID); err != nil {
			t.rowsMu.Unlock()
			return nil, err
		}
	}
	t.rows = append(t.rows, r)
	for _, idx := range t.indexes {
		idx.insert(r)
	}
	t.rowsMu.Unlock()
	t.live.Add(1)
	return r, nil
}

// claimRow marks the version as deleted (or superseded) by txnID — the
// row-level write lock. The caller holds the table's exclusive latch
// and only ever claims versions visible to its snapshot, so any
// existing death stamp means another transaction got there first:
// first writer wins.
func (t *Table) claimRow(r *Row, txnID int64) error {
	switch x := r.xmax.Load(); {
	case x == 0:
		r.xmax.Store(-txnID)
		return nil
	case x == -txnID:
		return nil // already claimed by this transaction
	default:
		// Claimed by another open transaction, or deleted by one that
		// committed after this statement's snapshot.
		return &writeConflictError{table: t.Name}
	}
}

// unclaimRow releases a claim this transaction just took, used when the
// second half of an UPDATE (the replacement insert) fails and the
// statement must not leave a dangling pending delete.
func (t *Table) unclaimRow(r *Row, txnID int64) {
	if r.xmax.Load() == -txnID {
		r.xmax.Store(0)
	}
}

// vacuumDeadThreshold is how many dead versions a table accumulates
// before a mutating statement rebuilds its heap in passing.
const vacuumDeadThreshold = 64

// maybeVacuum drops versions no present or future snapshot can see:
// aborted inserts and deletes committed at or before the oldest active
// snapshot. The caller holds the table's exclusive latch. The heap and
// every index bucket map are rebuilt fresh — latch-free readers keep
// scanning the slices they already copied.
func (t *Table) maybeVacuum(minSnap int64) {
	if t.dead.Load() < vacuumDeadThreshold {
		return
	}
	t.rowsMu.Lock()
	fresh := make([]*Row, 0, len(t.rows))
	removed := 0
	for _, r := range t.rows {
		if r.xmin.Load() == abortedStamp {
			removed++
			continue
		}
		if x := r.xmax.Load(); x > 0 && x <= minSnap {
			removed++
			continue
		}
		fresh = append(fresh, r)
	}
	if removed == 0 {
		t.rowsMu.Unlock()
		return
	}
	t.rows = fresh
	for _, idx := range t.indexes {
		idx.rebuild(fresh)
	}
	t.rowsMu.Unlock()
	t.dead.Add(int64(-removed))
}
