package sqldb

import (
	"fmt"
	"strings"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       ColumnType
	NotNull    bool
	PrimaryKey bool
	Default    Expr // nil if no default
}

// Row is a stored tuple. Row identity (the pointer) is stable for the life
// of the row, which the transaction undo log and indexes rely on.
type Row struct {
	Values []Value
}

// Table is an in-memory heap of rows plus its schema and secondary indexes.
// All access is serialized by the owning DB's lock.
type Table struct {
	Name    string
	Columns []Column
	rows    []*Row
	indexes map[string]*Index // by lowercased index name
	pkIndex *Index            // non-nil if the table has a primary key
}

func newTable(name string, cols []Column) (*Table, error) {
	seen := map[string]bool{}
	for _, c := range cols {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return nil, fmt.Errorf("sqldb: duplicate column %s in table %s", c.Name, name)
		}
		seen[lc] = true
	}
	t := &Table{Name: name, Columns: cols, indexes: map[string]*Index{}}
	var pkCols []string
	for _, c := range cols {
		if c.PrimaryKey {
			pkCols = append(pkCols, c.Name)
		}
	}
	if len(pkCols) > 0 {
		idx, err := newIndex(t.Name+"_pk", t, pkCols, true)
		if err != nil {
			return nil, err
		}
		t.pkIndex = idx
		t.indexes[strings.ToLower(idx.Name)] = idx
	}
	return t, nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return len(t.rows) }

// insertRow validates constraints, appends the row, and maintains indexes.
func (t *Table) insertRow(r *Row) error {
	if len(r.Values) != len(t.Columns) {
		return fmt.Errorf("sqldb: table %s expects %d values, got %d", t.Name, len(t.Columns), len(r.Values))
	}
	for i, c := range t.Columns {
		v, err := coerce(r.Values[i], c.Type)
		if err != nil {
			return fmt.Errorf("sqldb: column %s.%s: %w", t.Name, c.Name, err)
		}
		if c.NotNull && v.IsNull() {
			return fmt.Errorf("sqldb: column %s.%s may not be NULL", t.Name, c.Name)
		}
		r.Values[i] = v
	}
	for _, idx := range t.indexes {
		if err := idx.checkInsert(r); err != nil {
			return err
		}
	}
	t.rows = append(t.rows, r)
	for _, idx := range t.indexes {
		idx.insert(r)
	}
	return nil
}

// deleteRow removes the row (by identity) and maintains indexes.
func (t *Table) deleteRow(r *Row) bool {
	for i, rr := range t.rows {
		if rr == r {
			t.rows = append(t.rows[:i], t.rows[i+1:]...)
			for _, idx := range t.indexes {
				idx.remove(r)
			}
			return true
		}
	}
	return false
}

// updateRow replaces the row's values in place, revalidating constraints
// and maintaining indexes. It returns the old values for undo logging.
func (t *Table) updateRow(r *Row, newVals []Value) ([]Value, error) {
	if len(newVals) != len(t.Columns) {
		return nil, fmt.Errorf("sqldb: table %s expects %d values, got %d", t.Name, len(t.Columns), len(newVals))
	}
	coerced := make([]Value, len(newVals))
	for i, c := range t.Columns {
		v, err := coerce(newVals[i], c.Type)
		if err != nil {
			return nil, fmt.Errorf("sqldb: column %s.%s: %w", t.Name, c.Name, err)
		}
		if c.NotNull && v.IsNull() {
			return nil, fmt.Errorf("sqldb: column %s.%s may not be NULL", t.Name, c.Name)
		}
		coerced[i] = v
	}
	for _, idx := range t.indexes {
		if err := idx.checkUpdate(r, coerced); err != nil {
			return nil, err
		}
	}
	old := r.Values
	for _, idx := range t.indexes {
		idx.remove(r)
	}
	r.Values = coerced
	for _, idx := range t.indexes {
		idx.insert(r)
	}
	return old, nil
}

// restoreRowValues puts old values back without constraint checks (used by
// rollback, which by construction restores a previously valid state).
func (t *Table) restoreRowValues(r *Row, old []Value) {
	for _, idx := range t.indexes {
		idx.remove(r)
	}
	r.Values = old
	for _, idx := range t.indexes {
		idx.insert(r)
	}
}

// reinsertRow re-adds a row removed by deleteRow (used by rollback).
func (t *Table) reinsertRow(r *Row) {
	t.rows = append(t.rows, r)
	for _, idx := range t.indexes {
		idx.insert(r)
	}
}
