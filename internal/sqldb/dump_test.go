package sqldb

import (
	"strings"
	"testing"
)

func TestDumpRestore(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec("CREATE INDEX idx_item ON Orders (ItemID)")
	db.MustExec("CREATE UNIQUE INDEX uidx ON Orders (OrderID, ItemID)")
	db.MustExec("CREATE SEQUENCE s START WITH 5 INCREMENT BY 2")
	db.MustExec("SELECT NEXTVAL('s')") // advance so the dump captures state
	db.MustExec(`CREATE PROCEDURE p (x) AS 'SELECT COUNT(*) FROM Orders WHERE Quantity > :x'`)
	db.RegisterProcedure("native", func(s *Session, args []Value) (*Result, error) {
		return &Result{}, nil
	})

	dump := db.Dump()
	for _, want := range []string{
		"CREATE TABLE Orders",
		"PRIMARY KEY",
		"INSERT INTO Orders VALUES (1, 'bolt', 10, TRUE);",
		"CREATE INDEX idx_item ON Orders (ItemID);",
		"CREATE UNIQUE INDEX uidx ON Orders (OrderID, ItemID);",
		"CREATE SEQUENCE s START WITH 7 INCREMENT BY 2;",
		"CREATE PROCEDURE p (x) AS",
		"-- native procedure native cannot be dumped",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}

	// Restore into a fresh database and compare observable state.
	db2 := Open("restored")
	if _, err := db2.ExecScript(dump); err != nil {
		t.Fatalf("restore: %v", err)
	}
	a := db.MustExec("SELECT COUNT(*), SUM(Quantity) FROM Orders").Rows[0]
	b := db2.MustExec("SELECT COUNT(*), SUM(Quantity) FROM Orders").Rows[0]
	if a[0].I != b[0].I || a[1].I != b[1].I {
		t.Fatalf("restored content differs: %v vs %v", a, b)
	}
	// Sequence continues where the original left off.
	v := db2.MustExec("SELECT NEXTVAL('s')").Rows[0][0]
	if v.I != 7 {
		t.Fatalf("restored sequence: %v", v)
	}
	// Procedure works after restore.
	r, err := db2.Exec("CALL p(5)")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 3 {
		t.Fatalf("restored procedure: %v", r.Rows[0][0])
	}
	// Unique index enforced after restore.
	if _, err := db2.Exec("INSERT INTO Orders VALUES (1, 'bolt', 1, TRUE)"); err == nil {
		t.Fatal("restored PK not enforced")
	}
}

func TestDumpQuotesStrings(t *testing.T) {
	db := Open("q")
	db.MustExec("CREATE TABLE t (s VARCHAR)")
	db.MustExec("INSERT INTO t VALUES ('it''s')")
	dump := db.Dump()
	if !strings.Contains(dump, "('it''s')") {
		t.Fatalf("quote escaping: %s", dump)
	}
	db2 := Open("q2")
	if _, err := db2.ExecScript(dump); err != nil {
		t.Fatal(err)
	}
	if got := db2.MustExec("SELECT s FROM t").Rows[0][0].S; got != "it's" {
		t.Fatalf("restored string: %q", got)
	}
}

func TestExplain(t *testing.T) {
	db := newOrdersDB(t)
	plan := func(sql string) string {
		r, err := db.Exec(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		var lines []string
		for _, row := range r.Rows {
			lines = append(lines, row[0].S)
		}
		return strings.Join(lines, "\n")
	}

	p := plan("EXPLAIN SELECT * FROM Orders WHERE Quantity > 3")
	if !strings.Contains(p, "SCAN Orders (6 rows)") || !strings.Contains(p, "FILTER") {
		t.Fatalf("scan plan: %s", p)
	}

	// The primary key index is chosen for PK equality.
	p = plan("EXPLAIN SELECT * FROM Orders WHERE OrderID = 3")
	if !strings.Contains(p, "INDEX PROBE Orders USING Orders_pk (OrderID)") {
		t.Fatalf("index plan: %s", p)
	}

	// Disjunctions disable the index path.
	p = plan("EXPLAIN SELECT * FROM Orders WHERE OrderID = 3 OR OrderID = 4")
	if !strings.Contains(p, "SCAN Orders") {
		t.Fatalf("OR plan: %s", p)
	}

	db.MustExec("CREATE TABLE Items (ItemID VARCHAR, Price FLOAT)")
	p = plan("EXPLAIN SELECT o.OrderID FROM Orders o JOIN Items i ON o.ItemID = i.ItemID ORDER BY o.OrderID LIMIT 2")
	for _, want := range []string{"NESTED LOOP INNER JOIN Items", "SORT (1 keys)", "LIMIT/OFFSET"} {
		if !strings.Contains(p, want) {
			t.Fatalf("join plan missing %q: %s", want, p)
		}
	}

	p = plan("EXPLAIN SELECT ItemID, SUM(Quantity) FROM Orders GROUP BY ItemID HAVING SUM(Quantity) > 3")
	for _, want := range []string{"GROUP BY (1 keys)", "HAVING FILTER"} {
		if !strings.Contains(p, want) {
			t.Fatalf("group plan missing %q: %s", want, p)
		}
	}

	p = plan("EXPLAIN SELECT 1 UNION SELECT 2")
	if !strings.Contains(p, "UNION") || !strings.Contains(p, "CONSTANT ROW") {
		t.Fatalf("union plan: %s", p)
	}
}

func TestAlterTable(t *testing.T) {
	db := newOrdersDB(t)

	// ADD COLUMN with default backfills existing rows.
	db.MustExec("ALTER TABLE Orders ADD COLUMN Priority INTEGER DEFAULT 5")
	r := mustQuery(t, db, "SELECT Priority FROM Orders WHERE OrderID = 1")
	if r.Rows[0][0].I != 5 {
		t.Fatalf("backfilled default: %v", r.Rows[0][0])
	}
	db.MustExec("INSERT INTO Orders (OrderID, ItemID, Quantity, Approved) VALUES (7, 'x', 1, TRUE)")
	r = mustQuery(t, db, "SELECT Priority FROM Orders WHERE OrderID = 7")
	if r.Rows[0][0].I != 5 {
		t.Fatalf("default on new row: %v", r.Rows[0][0])
	}

	// ADD duplicate / NOT NULL without default on non-empty table fail.
	if _, err := db.Exec("ALTER TABLE Orders ADD COLUMN Priority INTEGER"); err == nil {
		t.Fatal("duplicate column must fail")
	}
	if _, err := db.Exec("ALTER TABLE Orders ADD COLUMN Req VARCHAR NOT NULL"); err == nil {
		t.Fatal("NOT NULL without default must fail on non-empty table")
	}

	// DROP COLUMN.
	db.MustExec("ALTER TABLE Orders DROP COLUMN Priority")
	if _, err := db.Exec("SELECT Priority FROM Orders"); err == nil {
		t.Fatal("dropped column still selectable")
	}
	// Queries on remaining columns still work and indexes survive.
	r = mustQuery(t, db, "SELECT ItemID FROM Orders WHERE OrderID = 7")
	if r.Rows[0][0].S != "x" {
		t.Fatalf("post-drop index probe: %v", r.Rows[0][0])
	}
	// Dropping an indexed column is refused.
	if _, err := db.Exec("ALTER TABLE Orders DROP COLUMN OrderID"); err == nil {
		t.Fatal("dropping PK column must fail")
	}

	// Dropping a column that precedes indexed columns keeps probes sound.
	db.MustExec("CREATE TABLE wide (a INTEGER, b INTEGER, c INTEGER)")
	db.MustExec("INSERT INTO wide VALUES (1, 2, 3), (4, 5, 6)")
	db.MustExec("CREATE INDEX wide_c ON wide (c)")
	db.MustExec("ALTER TABLE wide DROP COLUMN a")
	r = mustQuery(t, db, "SELECT b FROM wide WHERE c = 6")
	if len(r.Rows) != 1 || r.Rows[0][0].I != 5 {
		t.Fatalf("index after preceding-column drop: %v", r.Rows)
	}

	// RENAME TO.
	db.MustExec("ALTER TABLE wide RENAME TO narrow")
	if db.HasTable("wide") || !db.HasTable("narrow") {
		t.Fatal("rename failed")
	}
	if _, err := db.Exec("ALTER TABLE narrow RENAME TO Orders"); err == nil {
		t.Fatal("rename onto existing table must fail")
	}
	if _, err := db.Exec("ALTER TABLE missing ADD COLUMN x INTEGER"); err == nil {
		t.Fatal("alter on missing table must fail")
	}
}

func TestViews(t *testing.T) {
	db := newOrdersDB(t)
	db.MustExec(`CREATE VIEW ApprovedTotals AS
		SELECT ItemID, SUM(Quantity) AS Total FROM Orders
		WHERE Approved = TRUE GROUP BY ItemID`)

	// Views are queryable like tables, including with predicates/joins.
	r := mustQuery(t, db, "SELECT Total FROM ApprovedTotals WHERE ItemID = 'bolt'")
	if r.Rows[0][0].I != 15 {
		t.Fatalf("view query: %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, "SELECT COUNT(*) FROM ApprovedTotals v JOIN Orders o ON v.ItemID = o.ItemID")
	if r.Rows[0][0].I != 6 {
		t.Fatalf("view join: %v", r.Rows[0][0])
	}

	// Views see current data (re-executed per reference).
	db.MustExec("UPDATE Orders SET Approved = TRUE WHERE Approved = FALSE")
	r = mustQuery(t, db, "SELECT SUM(Total) FROM ApprovedTotals")
	if r.Rows[0][0].I != 36 {
		t.Fatalf("view freshness: %v", r.Rows[0][0])
	}

	// Name collisions both ways; invalid definitions rejected eagerly.
	if _, err := db.Exec("CREATE TABLE ApprovedTotals (x INTEGER)"); err == nil {
		t.Fatal("table over view must fail")
	}
	if _, err := db.Exec("CREATE VIEW Orders AS SELECT 1"); err == nil {
		t.Fatal("view over table must fail")
	}
	if _, err := db.Exec("CREATE VIEW bad AS SELECT nope FROM Orders"); err == nil {
		t.Fatal("invalid view definition must fail eagerly")
	}
	if _, err := db.Exec("CREATE VIEW ApprovedTotals AS SELECT 1"); err == nil {
		t.Fatal("duplicate view must fail")
	}

	// DML against a view fails (no such table).
	if _, err := db.Exec("DELETE FROM ApprovedTotals"); err == nil {
		t.Fatal("DML on view must fail")
	}

	// EXPLAIN expands views.
	r = mustQuery(t, db, "EXPLAIN SELECT * FROM ApprovedTotals WHERE ItemID = 'x'")
	var plan strings.Builder
	for _, row := range r.Rows {
		plan.WriteString(row[0].S + "\n")
	}
	if !strings.Contains(plan.String(), "VIEW ApprovedTotals (expanded)") ||
		!strings.Contains(plan.String(), "GROUP BY") {
		t.Fatalf("view plan: %s", plan.String())
	}

	// Dump includes the definition; restore works.
	dump := db.Dump()
	if !strings.Contains(dump, "CREATE VIEW ApprovedTotals AS") {
		t.Fatalf("dump missing view: %s", dump)
	}
	db2 := Open("restored")
	if _, err := db2.ExecScript(dump); err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Session().Query("SELECT SUM(Total) FROM ApprovedTotals")
	if err != nil || r2.Rows[0][0].I != 36 {
		t.Fatalf("restored view: %v %v", r2, err)
	}

	// DROP VIEW.
	db.MustExec("DROP VIEW ApprovedTotals")
	if _, err := db.Exec("SELECT * FROM ApprovedTotals"); err == nil {
		t.Fatal("dropped view still queryable")
	}
	db.MustExec("DROP VIEW IF EXISTS ApprovedTotals")
	if _, err := db.Exec("DROP VIEW ApprovedTotals"); err == nil {
		t.Fatal("double drop must fail")
	}
}

func TestPreparedStatements(t *testing.T) {
	db := newOrdersDB(t)
	s := db.Session()
	ps, err := s.Prepare("SELECT COUNT(*) FROM Orders WHERE ItemID = ?")
	if err != nil {
		t.Fatal(err)
	}
	for item, want := range map[string]int64{"bolt": 2, "nut": 2, "missing": 0} {
		r, err := ps.Exec(Str(item))
		if err != nil {
			t.Fatal(err)
		}
		if r.Rows[0][0].I != want {
			t.Fatalf("%s: %v", item, r.Rows[0][0])
		}
	}
	psn, err := s.Prepare("UPDATE Orders SET Quantity = :q WHERE OrderID = :id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := psn.ExecNamed(map[string]Value{"q": Int(99), "id": Int(1)}); err != nil {
		t.Fatal(err)
	}
	if db.MustExec("SELECT Quantity FROM Orders WHERE OrderID = 1").Rows[0][0].I != 99 {
		t.Fatal("named prepared update")
	}
	if _, err := s.Prepare("SELEC"); err == nil {
		t.Fatal("bad SQL must fail at prepare time")
	}
}
