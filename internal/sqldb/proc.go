package sqldb

// NativeProc is a stored procedure implemented in Go. It runs inside the
// engine (holding the database lock is handled by the caller); it receives
// an already-open session and the CALL arguments, and may return a result
// set.
type NativeProc func(s *Session, args []Value) (*Result, error)

// Procedure is a stored procedure: either a parsed SQL body (created via
// CREATE PROCEDURE name(params) AS '...') or a native Go implementation
// (registered via DB.RegisterProcedure).
type Procedure struct {
	Name   string
	Params []string
	Body   []Stmt
	Native NativeProc
	src    string // original body text, for Dump
}
