package sqldb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens of the SQL dialect.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokParam  // ? placeholder
	tokSymbol // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // keyword/ident text (uppercased for keywords), symbol text
	num  Value  // for tokNumber
	pos  int    // byte offset in input (for error messages)
	end  int    // byte offset just past the token (for source spans)
}

// keywords recognized by the lexer. Identifiers matching these (case
// insensitively) become tokKeyword with uppercased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "DISTINCT": true, "ALL": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "EXISTS": true, "BETWEEN": true,
	"LIKE": true, "IS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "CROSS": true,
	"ON": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "DROP": true, "TABLE": true,
	"INDEX": true, "UNIQUE": true, "SEQUENCE": true, "PROCEDURE": true,
	"CALL": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"PRIMARY": true, "KEY": true, "DEFAULT": true, "INTEGER": true,
	"INT": true, "BIGINT": true, "FLOAT": true, "REAL": true, "DOUBLE": true,
	"VARCHAR": true, "TEXT": true, "CHAR": true, "BOOLEAN": true, "BOOL": true,
	"START": true, "WITH": true, "INCREMENT": true, "IF": true, "UNION": true,
	"EXPLAIN": true, "ALTER": true, "ADD": true, "COLUMN": true,
	"RENAME": true, "TO": true, "VIEW": true,
	"TRUNCATE": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "NEXT": true, "VALUE": true, "FOR": true, "LANGUAGE": true,
	"RETURNS": true, "TRANSACTION": true, "WORK": true,
}

// lexer tokenizes a SQL string.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// lexAll tokenizes the whole input.
func (l *lexer) lexAll() ([]token, error) {
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		t.end = l.pos // next() stops right past the token, before any trailing space
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return fmt.Errorf("sqldb: syntax error at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		return l.lexString()
	case c == '"':
		return l.lexQuotedIdent()
	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.lexNumber()
	case isIdentStart(rune(c)):
		return l.lexIdent()
	case c == '?':
		l.pos++
		return token{kind: tokParam, text: "?", pos: start}, nil
	case c == ':' && l.pos+1 < len(l.src) && isIdentStart(rune(l.src[l.pos+1])):
		l.pos++
		nameStart := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokParam, text: l.src[nameStart:l.pos], pos: start}, nil
	}
	// Multi-char symbols first.
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		l.pos += 2
		return token{kind: tokSymbol, text: two, pos: start}, nil
	}
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', ';', '.':
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	}
	return token{}, l.errorf(start, "unexpected character %q", string(c))
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errorf(start, "unterminated string literal")
}

func (l *lexer) lexQuotedIdent() (token, error) {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return token{kind: tokIdent, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errorf(start, "unterminated quoted identifier")
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	sawDot, sawExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !sawDot && !sawExp:
			sawDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !sawExp && l.pos > start:
			sawExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	if sawDot || sawExp {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, l.errorf(start, "bad number %q", text)
		}
		return token{kind: tokNumber, num: Float(f), pos: start}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{}, l.errorf(start, "bad number %q", text)
	}
	return token{kind: tokNumber, num: Int(i), pos: start}, nil
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	up := strings.ToUpper(text)
	if keywords[up] {
		return token{kind: tokKeyword, text: up, pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
