package sqldb

// Sequence is a named integer generator (CREATE SEQUENCE). The Oracle SOA
// reproduction's sequence-next-val XPath extension function is backed by
// these.
type Sequence struct {
	Name      string
	next      int64
	increment int64
}

// Next returns the current value and advances the sequence. Callers must
// hold the DB lock.
func (s *Sequence) Next() int64 {
	v := s.next
	s.next += s.increment
	return v
}
