package sqldb

import "sync"

// Sequence is a named integer generator (CREATE SEQUENCE). The Oracle SOA
// reproduction's sequence-next-val XPath extension function is backed by
// these.
type Sequence struct {
	Name string

	// mu makes the generator internally synchronized: NEXTVAL evaluates
	// inside SELECT statements, which execute under the *shared* engine
	// lock, so concurrent readers may advance the same sequence at once.
	mu        sync.Mutex
	next      int64
	increment int64
}

// Next returns the current value and advances the sequence. It is safe
// for concurrent use.
func (s *Sequence) Next() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.next
	s.next += s.increment
	return v
}

// state snapshots the generator (for Dump).
func (s *Sequence) state() (next, increment int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next, s.increment
}
