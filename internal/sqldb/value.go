// Package sqldb implements an embeddable relational database engine with a
// SQL front end. It is the data-management substrate for the workflow
// product reproductions in this repository: every "external data" pattern
// from the paper (Query, Set IUD, Data Setup, Stored Procedure) executes
// real SQL against this engine.
//
// The engine is in-memory and transactional. It supports a SQL subset that
// covers everything the surveyed products' SQL-inline mechanisms need:
// SELECT with joins, grouping, aggregation, ordering, subqueries; INSERT,
// UPDATE, DELETE; CREATE/DROP TABLE, INDEX, SEQUENCE, PROCEDURE; CALL;
// and explicit transactions.
package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types of SQL values.
type Kind int

// Value kinds. KindNull is the zero value, so the zero Value is SQL NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL type name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a SQL runtime value: NULL, integer, float, string, or boolean.
// The zero Value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{K: KindBool, B: b} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// String renders the value in SQL literal style (strings unquoted).
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// SQLLiteral renders the value as a SQL literal, quoting strings.
func (v Value) SQLLiteral() string {
	if v.K == KindString {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.String()
}

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.K {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	}
	return 0, false
}

// AsInt converts numeric values to int64 (floats are truncated).
func (v Value) AsInt() (int64, bool) {
	switch v.K {
	case KindInt:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	}
	return 0, false
}

// Truth reports the SQL three-valued-logic truth of the value: a NULL or
// non-boolean value is not true.
func (v Value) Truth() bool { return v.K == KindBool && v.B }

// Equal reports SQL equality between two non-NULL values; comparing NULL
// with anything yields false (unknown).
func (v Value) Equal(o Value) bool {
	c, ok := compareValues(v, o)
	return ok && c == 0
}

// compareValues compares two values, returning -1, 0, or 1 and whether the
// comparison is defined (false if either side is NULL or the kinds are
// incomparable).
func compareValues(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	// Numeric cross-kind comparison.
	if (a.K == KindInt || a.K == KindFloat) && (b.K == KindInt || b.K == KindFloat) {
		if a.K == KindInt && b.K == KindInt {
			switch {
			case a.I < b.I:
				return -1, true
			case a.I > b.I:
				return 1, true
			}
			return 0, true
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		return 0, true
	}
	if a.K != b.K {
		return 0, false
	}
	switch a.K {
	case KindString:
		return strings.Compare(a.S, b.S), true
	case KindBool:
		switch {
		case a.B == b.B:
			return 0, true
		case !a.B:
			return -1, true
		}
		return 1, true
	}
	return 0, false
}

// sortCompare orders values for ORDER BY and ordered indexes: NULLs sort
// first, then by value; incomparable kinds order by kind.
func sortCompare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if c, ok := compareValues(a, b); ok {
		return c
	}
	switch {
	case a.K < b.K:
		return -1
	case a.K > b.K:
		return 1
	}
	return 0
}

// ColumnType is a declared SQL column type.
type ColumnType int

// Declared column types supported by CREATE TABLE.
const (
	TypeInteger ColumnType = iota
	TypeFloat
	TypeVarchar
	TypeBoolean
)

// String returns the SQL name of the column type.
func (t ColumnType) String() string {
	switch t {
	case TypeInteger:
		return "INTEGER"
	case TypeFloat:
		return "FLOAT"
	case TypeVarchar:
		return "VARCHAR"
	case TypeBoolean:
		return "BOOLEAN"
	}
	return fmt.Sprintf("ColumnType(%d)", int(t))
}

// coerce adapts a value to a declared column type where a lossless or
// conventional SQL conversion exists; it returns an error otherwise.
func coerce(v Value, t ColumnType) (Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch t {
	case TypeInteger:
		switch v.K {
		case KindInt:
			return v, nil
		case KindFloat:
			return Int(int64(v.F)), nil
		case KindString:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("sqldb: cannot convert %q to INTEGER", v.S)
			}
			return Int(i), nil
		case KindBool:
			if v.B {
				return Int(1), nil
			}
			return Int(0), nil
		}
	case TypeFloat:
		switch v.K {
		case KindInt:
			return Float(float64(v.I)), nil
		case KindFloat:
			return v, nil
		case KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return Value{}, fmt.Errorf("sqldb: cannot convert %q to FLOAT", v.S)
			}
			return Float(f), nil
		}
	case TypeVarchar:
		switch v.K {
		case KindString:
			return v, nil
		default:
			return Str(v.String()), nil
		}
	case TypeBoolean:
		switch v.K {
		case KindBool:
			return v, nil
		case KindInt:
			return Bool(v.I != 0), nil
		case KindString:
			switch strings.ToUpper(strings.TrimSpace(v.S)) {
			case "TRUE", "T", "1", "YES":
				return Bool(true), nil
			case "FALSE", "F", "0", "NO":
				return Bool(false), nil
			}
			return Value{}, fmt.Errorf("sqldb: cannot convert %q to BOOLEAN", v.S)
		}
	}
	return Value{}, fmt.Errorf("sqldb: cannot convert %s to %s", v.K, t)
}
