package sqldb_test

import (
	"fmt"

	"wfsql/internal/sqldb"
)

func Example() {
	db := sqldb.Open("demo")
	db.MustExec("CREATE TABLE Orders (OrderID INTEGER PRIMARY KEY, ItemID VARCHAR, Quantity INTEGER)")
	db.MustExec("INSERT INTO Orders VALUES (1, 'bolt', 10), (2, 'bolt', 5), (3, 'nut', 3)")

	res := db.MustExec("SELECT ItemID, SUM(Quantity) AS Total FROM Orders GROUP BY ItemID ORDER BY ItemID")
	for _, row := range res.Rows {
		fmt.Printf("%s: %s\n", row[0], row[1])
	}
	// Output:
	// bolt: 15
	// nut: 3
}

func ExampleSession_transactions() {
	db := sqldb.Open("demo")
	db.MustExec("CREATE TABLE t (x INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1)")

	s := db.Session()
	s.Exec("BEGIN")
	s.Exec("DELETE FROM t")
	s.Exec("ROLLBACK")

	res := db.MustExec("SELECT COUNT(*) FROM t")
	fmt.Println(res.Rows[0][0])
	// Output: 1
}

func ExampleSession_Prepare() {
	db := sqldb.Open("demo")
	db.MustExec("CREATE TABLE t (x INTEGER)")
	s := db.Session()
	ins, _ := s.Prepare("INSERT INTO t VALUES (?)")
	for i := 1; i <= 3; i++ {
		ins.Exec(sqldb.Int(int64(i)))
	}
	res := db.MustExec("SELECT SUM(x) FROM t")
	fmt.Println(res.Rows[0][0])
	// Output: 6
}

func ExampleDB_Dump() {
	db := sqldb.Open("demo")
	db.MustExec("CREATE TABLE t (x INTEGER)")
	db.MustExec("INSERT INTO t VALUES (7)")
	fmt.Print(db.Dump())
	// Output:
	// CREATE TABLE t (x INTEGER);
	// INSERT INTO t VALUES (7);
}
