package sqldb

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
)

// execSelect executes a SELECT (or UNION chain) in the given environment
// (which supplies parameters and, for correlated subqueries, outer row
// bindings).
func (s *Session) execSelect(q *SelectStmt, outer *env) (*Result, error) {
	res, err := s.execSelectArm(q, outer)
	if err != nil || q.Union == nil {
		return res, err
	}
	more, err := s.execSelect(q.Union, outer)
	if err != nil {
		return nil, err
	}
	if len(more.Columns) != len(res.Columns) {
		return nil, fmt.Errorf("sqldb: UNION arms have %d and %d columns", len(res.Columns), len(more.Columns))
	}
	combined := &Result{Columns: res.Columns, Rows: append(res.Rows, more.Rows...)}
	if !q.UnionAll {
		seen := map[string]bool{}
		var rows [][]Value
		var kb []byte
		for _, row := range combined.Rows {
			kb = appendRowKey(kb[:0], row)
			if seen[string(kb)] {
				continue
			}
			seen[string(kb)] = true
			rows = append(rows, row)
		}
		combined.Rows = rows
	}
	return combined, nil
}

// execSelectArm executes one arm of a SELECT without union handling.
func (s *Session) execSelectArm(q *SelectStmt, outer *env) (*Result, error) {
	rel, err := s.buildFrom(q, outer)
	if err != nil {
		return nil, err
	}

	// WHERE. One scratch environment serves every row, and the predicate
	// is compiled once into a closure tree instead of AST-walked per row
	// (see compileExpr); mutating .row per iteration is safe because
	// compiled closures, like eval, never retain the environment.
	if q.Where != nil {
		filtered := rel.rows[:0:0]
		pred := compileExpr(q.Where)
		e := &env{cols: rel.cols, params: outer.params, named: outer.named, session: s, outer: outer}
		for _, row := range rel.rows {
			e.row = row
			v, err := pred(e)
			if err != nil {
				return nil, err
			}
			if v.Truth() {
				filtered = append(filtered, row)
			}
		}
		rel.rows = filtered
	}

	grouped := len(q.GroupBy) > 0 || q.Having != nil || selectHasAggregate(q)

	var outRows [][]Value
	var rowEnvs []*env // parallel to outRows, for ORDER BY over input columns

	makeEnv := func(row []Value, group [][]Value) *env {
		return &env{cols: rel.cols, row: row, groupRows: group, params: outer.params, named: outer.named, session: s, outer: outer}
	}

	// Expand projection items, resolving stars.
	items, colNames, err := expandItems(q, rel)
	if err != nil {
		return nil, err
	}

	// Projection items compile once per execution; aggregates inside
	// them fall back to eval (compileExpr), so group semantics are
	// untouched.
	itemFns := compileExprs(items)

	if grouped {
		groups, err := s.groupRows(q, rel, outer)
		if err != nil {
			return nil, err
		}
		var havingFn evalFn
		if q.Having != nil {
			havingFn = compileExpr(q.Having)
		}
		for _, g := range groups {
			if g == nil {
				g = [][]Value{}
			}
			var first []Value
			if len(g) > 0 {
				first = g[0]
			}
			e := makeEnv(first, g)
			if havingFn != nil {
				hv, err := havingFn(e)
				if err != nil {
					return nil, err
				}
				if !hv.Truth() {
					continue
				}
			}
			out := make([]Value, len(items))
			for i, fn := range itemFns {
				v, err := fn(e)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			outRows = append(outRows, out)
			rowEnvs = append(rowEnvs, e)
		}
	} else if len(q.OrderBy) > 0 {
		// ORDER BY may evaluate key expressions in each row's input
		// environment, so every row keeps its own.
		for _, row := range rel.rows {
			e := makeEnv(row, nil)
			out := make([]Value, len(items))
			for i, fn := range itemFns {
				v, err := fn(e)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			outRows = append(outRows, out)
			rowEnvs = append(rowEnvs, e)
		}
	} else {
		// No ORDER BY: project through one scratch environment.
		e := makeEnv(nil, nil)
		for _, row := range rel.rows {
			e.row = row
			out := make([]Value, len(items))
			for i, fn := range itemFns {
				v, err := fn(e)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			outRows = append(outRows, out)
		}
	}

	// DISTINCT. rowEnvs is populated only when ORDER BY needs per-row
	// input environments; keep it aligned when present.
	if q.Distinct {
		seen := map[string]bool{}
		var dr [][]Value
		var de []*env
		var kb []byte
		for i, row := range outRows {
			kb = appendRowKey(kb[:0], row)
			if seen[string(kb)] {
				continue
			}
			seen[string(kb)] = true
			dr = append(dr, row)
			if rowEnvs != nil {
				de = append(de, rowEnvs[i])
			}
		}
		outRows, rowEnvs = dr, de
	}

	// ORDER BY.
	if len(q.OrderBy) > 0 {
		if err := s.orderRows(q, items, colNames, outRows, rowEnvs); err != nil {
			return nil, err
		}
	}

	// OFFSET / LIMIT.
	if q.Offset != nil {
		n, err := evalNonNegInt(q.Offset, outer, "OFFSET")
		if err != nil {
			return nil, err
		}
		if n >= len(outRows) {
			outRows = nil
		} else {
			outRows = outRows[n:]
		}
	}
	if q.Limit != nil {
		n, err := evalNonNegInt(q.Limit, outer, "LIMIT")
		if err != nil {
			return nil, err
		}
		if n < len(outRows) {
			outRows = outRows[:n]
		}
	}

	return &Result{Columns: colNames, Rows: outRows}, nil
}

func evalNonNegInt(x Expr, outer *env, what string) (int, error) {
	v, err := eval(x, outer)
	if err != nil {
		return 0, err
	}
	n, ok := v.AsInt()
	if !ok || n < 0 {
		return 0, fmt.Errorf("sqldb: %s must be a non-negative integer", what)
	}
	return int(n), nil
}

func selectHasAggregate(q *SelectStmt) bool {
	for _, it := range q.Items {
		if !it.Star && exprHasAggregate(it.Expr) {
			return true
		}
	}
	return exprHasAggregate(q.Having)
}

// buildFrom assembles the working relation from the FROM clause (cross
// product of table refs, each with its joins applied). Single-table
// queries with equality predicates probe a matching index instead of
// scanning.
func (s *Session) buildFrom(q *SelectStmt, outer *env) (*relation, error) {
	if len(q.From) == 0 {
		return &relation{rows: [][]Value{nil}}, nil
	}
	if len(q.From) == 1 && len(q.From[0].Joins) == 0 && q.Where != nil && q.From[0].Subquery == nil {
		if tbl, err := s.db.table(q.From[0].Table); err == nil {
			if candidates := s.indexCandidates(tbl, q.Where, outer); candidates != nil {
				qual := q.From[0].Alias
				if qual == "" {
					qual = tbl.Name
				}
				rel := &relation{cols: tableColMeta(tbl, qual)}
				rel.rows = make([][]Value, 0, len(candidates))
				n := 0
				for _, r := range candidates {
					if !s.rowVisible(r) {
						continue
					}
					rel.rows = append(rel.rows, r.Values)
					n++
				}
				s.db.rowsRead.Add(int64(n))
				s.rowsScanned += int64(n)
				return rel, nil
			}
		}
	}
	var rel *relation
	for _, tr := range q.From {
		r, err := s.buildTableRef(tr, outer)
		if err != nil {
			return nil, err
		}
		if rel == nil {
			rel = r
		} else {
			rel = crossProduct(rel, r)
		}
	}
	return rel, nil
}

func (s *Session) scanBase(table, alias string, outer *env) (*relation, error) {
	tbl, err := s.db.table(table)
	if err != nil {
		if v, ok := s.db.views[strings.ToLower(table)]; ok {
			return s.scanView(v, alias, outer)
		}
		return nil, err
	}
	qual := alias
	if qual == "" {
		qual = tbl.Name
	}
	s.notePlan(tbl, nil)
	// Latch-free snapshot scan: copy the heap slice header under the
	// structural lock, then filter versions through the statement's
	// snapshot — concurrent writers append new versions past the copied
	// length and never mutate the ones we see.
	heap := tbl.snapshotRows()
	rel := &relation{cols: tableColMeta(tbl, qual)}
	rel.rows = make([][]Value, 0, len(heap))
	n := 0
	for _, r := range heap {
		if !s.rowVisible(r) {
			continue
		}
		rel.rows = append(rel.rows, r.Values)
		n++
	}
	s.db.rowsRead.Add(int64(n))
	s.rowsScanned += int64(n)
	return rel, nil
}

func (s *Session) buildTableRef(tr TableRef, outer *env) (*relation, error) {
	rel, err := s.scanSource(tr.Table, tr.Subquery, tr.Alias, outer)
	if err != nil {
		return nil, err
	}
	for _, jc := range tr.Joins {
		right, err := s.scanSource(jc.Table, jc.Subquery, jc.Alias, outer)
		if err != nil {
			return nil, err
		}
		rel, err = s.joinRelations(rel, right, jc, outer)
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// scanSource produces the relation for one FROM entry: a base table, a
// view, or a derived table (subquery).
func (s *Session) scanSource(table string, sub *SelectStmt, alias string, outer *env) (*relation, error) {
	if sub == nil {
		return s.scanBase(table, alias, outer)
	}
	res, err := s.execSelect(sub, outer)
	if err != nil {
		return nil, err
	}
	rel := &relation{}
	for _, c := range res.Columns {
		rel.cols = append(rel.cols, colMeta{table: strings.ToLower(alias), name: c})
	}
	rel.rows = res.Rows
	return rel, nil
}

func crossProduct(l, r *relation) *relation {
	out := &relation{cols: append(append([]colMeta{}, l.cols...), r.cols...)}
	for _, lr := range l.rows {
		for _, rr := range r.rows {
			row := make([]Value, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

func (s *Session) joinRelations(l, r *relation, jc JoinClause, outer *env) (*relation, error) {
	out := &relation{cols: append(append([]colMeta{}, l.cols...), r.cols...)}
	if jc.Kind == JoinCross {
		return crossProduct(l, r), nil
	}
	e := &env{cols: out.cols, params: outer.params, named: outer.named, session: s, outer: outer}
	onFn := compileExpr(jc.On)
	for _, lr := range l.rows {
		matched := false
		for _, rr := range r.rows {
			row := make([]Value, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			e.row = row
			v, err := onFn(e)
			if err != nil {
				return nil, err
			}
			if v.Truth() {
				out.rows = append(out.rows, row)
				matched = true
			}
		}
		if jc.Kind == JoinLeft && !matched {
			row := make([]Value, len(lr)+len(r.cols))
			copy(row, lr)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// expandItems resolves * and t.* and returns the projection expressions and
// output column names.
func expandItems(q *SelectStmt, rel *relation) ([]Expr, []string, error) {
	items := make([]Expr, 0, len(q.Items)+len(rel.cols))
	names := make([]string, 0, cap(items))
	for _, it := range q.Items {
		if it.Star {
			qual := strings.ToLower(it.StarTable)
			matched := false
			for i, c := range rel.cols {
				if qual != "" && c.table != qual {
					continue
				}
				matched = true
				items = append(items, boundColFor(i))
				names = append(names, c.name)
			}
			if !matched {
				if qual == "" {
					return nil, nil, fmt.Errorf("sqldb: SELECT * with no FROM clause")
				}
				return nil, nil, fmt.Errorf("sqldb: unknown table %s in %s.*", it.StarTable, it.StarTable)
			}
			continue
		}
		items = append(items, it.Expr)
		names = append(names, itemName(it))
	}
	return items, names, nil
}

// boundCol is an internal expression that reads a fixed position of the
// current row; it implements star expansion without name re-resolution.
type boundCol struct{ idx int }

func (*boundCol) exprNode() {}

// smallBoundCols interns the low column indexes: boundCol is immutable
// after construction, so every star expansion can share one node per
// index instead of allocating a fresh one per execution.
var smallBoundCols = func() [64]*boundCol {
	var s [64]*boundCol
	for i := range s {
		s[i] = &boundCol{idx: i}
	}
	return s
}()

func boundColFor(i int) Expr {
	if i < len(smallBoundCols) {
		return smallBoundCols[i]
	}
	return &boundCol{idx: i}
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch e := it.Expr.(type) {
	case *ColumnRef:
		return e.Column
	case *FuncCall:
		return e.Name
	}
	return "expr"
}

// groupRows partitions the relation rows by the GROUP BY key. With no
// GROUP BY (pure aggregate query), all rows form one group — including the
// empty group, so that COUNT(*) over an empty table yields 0.
func (s *Session) groupRows(q *SelectStmt, rel *relation, outer *env) ([][][]Value, error) {
	if len(q.GroupBy) == 0 {
		return [][][]Value{rel.rows}, nil
	}
	// bins holds the groups in first-seen order; idx maps a group key to
	// its bin. Lookups convert the scratch key with string(kb), which the
	// compiler keeps off the heap — only a newly seen group pays for a
	// string copy.
	idx := map[string]int{}
	var bins [][][]Value
	e := &env{cols: rel.cols, params: outer.params, named: outer.named, session: s, outer: outer}
	keyFns := compileExprs(q.GroupBy)
	var kb []byte
	for _, row := range rel.rows {
		e.row = row
		kb = kb[:0]
		for _, fn := range keyFns {
			v, err := fn(e)
			if err != nil {
				return nil, err
			}
			kb = appendValueKey(kb, v)
		}
		p, ok := idx[string(kb)]
		if !ok {
			p = len(bins)
			idx[string(kb)] = p
			bins = append(bins, nil)
		}
		bins[p] = append(bins[p], row)
	}
	return bins, nil
}

// appendValueKey appends one value's collision-free key segment —
// kind, ':', rendered value, NUL — without intermediate string
// allocations.
func appendValueKey(b []byte, v Value) []byte {
	b = strconv.AppendInt(b, int64(v.K), 10)
	b = append(b, ':')
	switch v.K {
	case KindInt:
		b = strconv.AppendInt(b, v.I, 10)
	case KindFloat:
		b = strconv.AppendFloat(b, v.F, 'g', -1, 64)
	case KindString:
		b = append(b, v.S...)
	case KindBool:
		if v.B {
			b = append(b, "TRUE"...)
		} else {
			b = append(b, "FALSE"...)
		}
	}
	return append(b, 0)
}

// appendRowKey appends every value's key segment; used by the DISTINCT
// and UNION dedup loops with one reusable scratch buffer.
func appendRowKey(b []byte, row []Value) []byte {
	for _, v := range row {
		b = appendValueKey(b, v)
	}
	return b
}

// orderRows sorts outRows (and keeps rowEnvs aligned) by the ORDER BY keys.
// A bare column name that matches an output column name sorts by that
// output column; otherwise the key expression is evaluated in the row's
// input environment.
func (s *Session) orderRows(q *SelectStmt, items []Expr, colNames []string, outRows [][]Value, rowEnvs []*env) error {
	type keyed struct {
		keys []Value
		idx  int
	}
	nk := len(q.OrderBy)
	flat := make([]Value, len(outRows)*nk) // one backing array for every row's keys
	ks := make([]keyed, len(outRows))
	for i := range outRows {
		ks[i] = keyed{idx: i, keys: flat[i*nk : (i+1)*nk : (i+1)*nk]}
		for j, oi := range q.OrderBy {
			v, err := evalOrderKey(oi.Expr, colNames, outRows[i], rowEnvs[i])
			if err != nil {
				return err
			}
			ks[i].keys[j] = v
		}
	}
	slices.SortStableFunc(ks, func(a, b keyed) int {
		for j, oi := range q.OrderBy {
			c := sortCompare(a.keys[j], b.keys[j])
			if c == 0 {
				continue
			}
			if oi.Desc {
				return -c
			}
			return c
		}
		return 0
	})
	tmpRows := make([][]Value, len(outRows))
	tmpEnvs := make([]*env, len(rowEnvs))
	for i, k := range ks {
		tmpRows[i] = outRows[k.idx]
		tmpEnvs[i] = rowEnvs[k.idx]
	}
	copy(outRows, tmpRows)
	copy(rowEnvs, tmpEnvs)
	return nil
}

func evalOrderKey(x Expr, colNames []string, outRow []Value, rowEnv *env) (Value, error) {
	// ORDER BY <n>: positional reference to the select list.
	if lit, ok := x.(*Literal); ok && lit.Val.K == KindInt {
		n := int(lit.Val.I)
		if n >= 1 && n <= len(outRow) {
			return outRow[n-1], nil
		}
		return Null(), fmt.Errorf("sqldb: ORDER BY position %d out of range", n)
	}
	if cr, ok := x.(*ColumnRef); ok && cr.Table == "" {
		for i, n := range colNames {
			if strings.EqualFold(n, cr.Column) {
				return outRow[i], nil
			}
		}
	}
	return eval(x, rowEnv)
}
