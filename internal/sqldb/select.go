package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// execSelect executes a SELECT (or UNION chain) in the given environment
// (which supplies parameters and, for correlated subqueries, outer row
// bindings).
func (s *Session) execSelect(q *SelectStmt, outer *env) (*Result, error) {
	res, err := s.execSelectArm(q, outer)
	if err != nil || q.Union == nil {
		return res, err
	}
	more, err := s.execSelect(q.Union, outer)
	if err != nil {
		return nil, err
	}
	if len(more.Columns) != len(res.Columns) {
		return nil, fmt.Errorf("sqldb: UNION arms have %d and %d columns", len(res.Columns), len(more.Columns))
	}
	combined := &Result{Columns: res.Columns, Rows: append(res.Rows, more.Rows...)}
	if !q.UnionAll {
		seen := map[string]bool{}
		var rows [][]Value
		for _, row := range combined.Rows {
			k := rowKey(row)
			if seen[k] {
				continue
			}
			seen[k] = true
			rows = append(rows, row)
		}
		combined.Rows = rows
	}
	return combined, nil
}

// execSelectArm executes one arm of a SELECT without union handling.
func (s *Session) execSelectArm(q *SelectStmt, outer *env) (*Result, error) {
	rel, err := s.buildFrom(q, outer)
	if err != nil {
		return nil, err
	}

	// WHERE.
	if q.Where != nil {
		filtered := rel.rows[:0:0]
		for _, row := range rel.rows {
			e := &env{cols: rel.cols, row: row, params: outer.params, named: outer.named, session: s, outer: outer}
			v, err := eval(q.Where, e)
			if err != nil {
				return nil, err
			}
			if v.Truth() {
				filtered = append(filtered, row)
			}
		}
		rel.rows = filtered
	}

	grouped := len(q.GroupBy) > 0 || q.Having != nil || selectHasAggregate(q)

	var outRows [][]Value
	var rowEnvs []*env // parallel to outRows, for ORDER BY over input columns

	makeEnv := func(row []Value, group [][]Value) *env {
		return &env{cols: rel.cols, row: row, groupRows: group, params: outer.params, named: outer.named, session: s, outer: outer}
	}

	// Expand projection items, resolving stars.
	items, colNames, err := expandItems(q, rel)
	if err != nil {
		return nil, err
	}

	if grouped {
		groups, err := s.groupRows(q, rel, outer)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			if g == nil {
				g = [][]Value{}
			}
			var first []Value
			if len(g) > 0 {
				first = g[0]
			}
			e := makeEnv(first, g)
			if q.Having != nil {
				hv, err := eval(q.Having, e)
				if err != nil {
					return nil, err
				}
				if !hv.Truth() {
					continue
				}
			}
			out := make([]Value, len(items))
			for i, it := range items {
				v, err := eval(it, e)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			outRows = append(outRows, out)
			rowEnvs = append(rowEnvs, e)
		}
	} else {
		for _, row := range rel.rows {
			e := makeEnv(row, nil)
			out := make([]Value, len(items))
			for i, it := range items {
				v, err := eval(it, e)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			outRows = append(outRows, out)
			rowEnvs = append(rowEnvs, e)
		}
	}

	// DISTINCT.
	if q.Distinct {
		seen := map[string]bool{}
		var dr [][]Value
		var de []*env
		for i, row := range outRows {
			k := rowKey(row)
			if seen[k] {
				continue
			}
			seen[k] = true
			dr = append(dr, row)
			de = append(de, rowEnvs[i])
		}
		outRows, rowEnvs = dr, de
	}

	// ORDER BY.
	if len(q.OrderBy) > 0 {
		if err := s.orderRows(q, items, colNames, outRows, rowEnvs); err != nil {
			return nil, err
		}
	}

	// OFFSET / LIMIT.
	if q.Offset != nil {
		n, err := evalNonNegInt(q.Offset, outer, "OFFSET")
		if err != nil {
			return nil, err
		}
		if n >= len(outRows) {
			outRows = nil
		} else {
			outRows = outRows[n:]
		}
	}
	if q.Limit != nil {
		n, err := evalNonNegInt(q.Limit, outer, "LIMIT")
		if err != nil {
			return nil, err
		}
		if n < len(outRows) {
			outRows = outRows[:n]
		}
	}

	return &Result{Columns: colNames, Rows: outRows}, nil
}

func evalNonNegInt(x Expr, outer *env, what string) (int, error) {
	v, err := eval(x, outer)
	if err != nil {
		return 0, err
	}
	n, ok := v.AsInt()
	if !ok || n < 0 {
		return 0, fmt.Errorf("sqldb: %s must be a non-negative integer", what)
	}
	return int(n), nil
}

func selectHasAggregate(q *SelectStmt) bool {
	for _, it := range q.Items {
		if !it.Star && exprHasAggregate(it.Expr) {
			return true
		}
	}
	return exprHasAggregate(q.Having)
}

// buildFrom assembles the working relation from the FROM clause (cross
// product of table refs, each with its joins applied). Single-table
// queries with equality predicates probe a matching index instead of
// scanning.
func (s *Session) buildFrom(q *SelectStmt, outer *env) (*relation, error) {
	if len(q.From) == 0 {
		return &relation{rows: [][]Value{nil}}, nil
	}
	if len(q.From) == 1 && len(q.From[0].Joins) == 0 && q.Where != nil && q.From[0].Subquery == nil {
		if tbl, err := s.db.table(q.From[0].Table); err == nil {
			if candidates := s.indexCandidates(tbl, q.Where, outer); candidates != nil {
				qual := q.From[0].Alias
				if qual == "" {
					qual = tbl.Name
				}
				rel := &relation{cols: tableColMeta(tbl, qual)}
				rel.rows = make([][]Value, 0, len(candidates))
				for _, r := range candidates {
					rel.rows = append(rel.rows, r.Values)
				}
				s.db.rowsRead.Add(int64(len(candidates)))
				s.rowsScanned += int64(len(candidates))
				return rel, nil
			}
		}
	}
	var rel *relation
	for _, tr := range q.From {
		r, err := s.buildTableRef(tr, outer)
		if err != nil {
			return nil, err
		}
		if rel == nil {
			rel = r
		} else {
			rel = crossProduct(rel, r)
		}
	}
	return rel, nil
}

func (s *Session) scanBase(table, alias string, outer *env) (*relation, error) {
	tbl, err := s.db.table(table)
	if err != nil {
		if v, ok := s.db.views[strings.ToLower(table)]; ok {
			return s.scanView(v, alias, outer)
		}
		return nil, err
	}
	qual := alias
	if qual == "" {
		qual = tbl.Name
	}
	s.notePlan(tbl, nil)
	rel := &relation{cols: tableColMeta(tbl, qual)}
	rel.rows = make([][]Value, 0, len(tbl.rows))
	for _, r := range tbl.rows {
		rel.rows = append(rel.rows, r.Values)
	}
	s.db.rowsRead.Add(int64(len(tbl.rows)))
	s.rowsScanned += int64(len(tbl.rows))
	return rel, nil
}

func (s *Session) buildTableRef(tr TableRef, outer *env) (*relation, error) {
	rel, err := s.scanSource(tr.Table, tr.Subquery, tr.Alias, outer)
	if err != nil {
		return nil, err
	}
	for _, jc := range tr.Joins {
		right, err := s.scanSource(jc.Table, jc.Subquery, jc.Alias, outer)
		if err != nil {
			return nil, err
		}
		rel, err = s.joinRelations(rel, right, jc, outer)
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// scanSource produces the relation for one FROM entry: a base table, a
// view, or a derived table (subquery).
func (s *Session) scanSource(table string, sub *SelectStmt, alias string, outer *env) (*relation, error) {
	if sub == nil {
		return s.scanBase(table, alias, outer)
	}
	res, err := s.execSelect(sub, outer)
	if err != nil {
		return nil, err
	}
	rel := &relation{}
	for _, c := range res.Columns {
		rel.cols = append(rel.cols, colMeta{table: strings.ToLower(alias), name: c})
	}
	rel.rows = res.Rows
	return rel, nil
}

func crossProduct(l, r *relation) *relation {
	out := &relation{cols: append(append([]colMeta{}, l.cols...), r.cols...)}
	for _, lr := range l.rows {
		for _, rr := range r.rows {
			row := make([]Value, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

func (s *Session) joinRelations(l, r *relation, jc JoinClause, outer *env) (*relation, error) {
	out := &relation{cols: append(append([]colMeta{}, l.cols...), r.cols...)}
	if jc.Kind == JoinCross {
		return crossProduct(l, r), nil
	}
	for _, lr := range l.rows {
		matched := false
		for _, rr := range r.rows {
			row := make([]Value, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			e := &env{cols: out.cols, row: row, params: outer.params, named: outer.named, session: s, outer: outer}
			v, err := eval(jc.On, e)
			if err != nil {
				return nil, err
			}
			if v.Truth() {
				out.rows = append(out.rows, row)
				matched = true
			}
		}
		if jc.Kind == JoinLeft && !matched {
			row := make([]Value, len(lr)+len(r.cols))
			copy(row, lr)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// expandItems resolves * and t.* and returns the projection expressions and
// output column names.
func expandItems(q *SelectStmt, rel *relation) ([]Expr, []string, error) {
	var items []Expr
	var names []string
	for _, it := range q.Items {
		if it.Star {
			qual := strings.ToLower(it.StarTable)
			matched := false
			for i, c := range rel.cols {
				if qual != "" && c.table != qual {
					continue
				}
				matched = true
				items = append(items, &boundCol{idx: i})
				names = append(names, c.name)
			}
			if !matched {
				if qual == "" {
					return nil, nil, fmt.Errorf("sqldb: SELECT * with no FROM clause")
				}
				return nil, nil, fmt.Errorf("sqldb: unknown table %s in %s.*", it.StarTable, it.StarTable)
			}
			continue
		}
		items = append(items, it.Expr)
		names = append(names, itemName(it))
	}
	return items, names, nil
}

// boundCol is an internal expression that reads a fixed position of the
// current row; it implements star expansion without name re-resolution.
type boundCol struct{ idx int }

func (*boundCol) exprNode() {}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch e := it.Expr.(type) {
	case *ColumnRef:
		return e.Column
	case *FuncCall:
		return e.Name
	}
	return "expr"
}

// groupRows partitions the relation rows by the GROUP BY key. With no
// GROUP BY (pure aggregate query), all rows form one group — including the
// empty group, so that COUNT(*) over an empty table yields 0.
func (s *Session) groupRows(q *SelectStmt, rel *relation, outer *env) ([][][]Value, error) {
	if len(q.GroupBy) == 0 {
		return [][][]Value{rel.rows}, nil
	}
	order := []string{}
	groups := map[string][][]Value{}
	for _, row := range rel.rows {
		e := &env{cols: rel.cols, row: row, params: outer.params, named: outer.named, session: s, outer: outer}
		var kb strings.Builder
		for _, g := range q.GroupBy {
			v, err := eval(g, e)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&kb, "%d:%s\x00", int(v.K), v.String())
		}
		k := kb.String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	out := make([][][]Value, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out, nil
}

func rowKey(row []Value) string {
	var b strings.Builder
	for _, v := range row {
		fmt.Fprintf(&b, "%d:%s\x00", int(v.K), v.String())
	}
	return b.String()
}

// orderRows sorts outRows (and keeps rowEnvs aligned) by the ORDER BY keys.
// A bare column name that matches an output column name sorts by that
// output column; otherwise the key expression is evaluated in the row's
// input environment.
func (s *Session) orderRows(q *SelectStmt, items []Expr, colNames []string, outRows [][]Value, rowEnvs []*env) error {
	type keyed struct {
		keys []Value
		idx  int
	}
	ks := make([]keyed, len(outRows))
	for i := range outRows {
		ks[i] = keyed{idx: i, keys: make([]Value, len(q.OrderBy))}
		for j, oi := range q.OrderBy {
			v, err := evalOrderKey(oi.Expr, colNames, outRows[i], rowEnvs[i])
			if err != nil {
				return err
			}
			ks[i].keys[j] = v
		}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j, oi := range q.OrderBy {
			c := sortCompare(ks[a].keys[j], ks[b].keys[j])
			if c == 0 {
				continue
			}
			if oi.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	tmpRows := make([][]Value, len(outRows))
	tmpEnvs := make([]*env, len(rowEnvs))
	for i, k := range ks {
		tmpRows[i] = outRows[k.idx]
		tmpEnvs[i] = rowEnvs[k.idx]
	}
	copy(outRows, tmpRows)
	copy(rowEnvs, tmpEnvs)
	return nil
}

func evalOrderKey(x Expr, colNames []string, outRow []Value, rowEnv *env) (Value, error) {
	// ORDER BY <n>: positional reference to the select list.
	if lit, ok := x.(*Literal); ok && lit.Val.K == KindInt {
		n := int(lit.Val.I)
		if n >= 1 && n <= len(outRow) {
			return outRow[n-1], nil
		}
		return Null(), fmt.Errorf("sqldb: ORDER BY position %d out of range", n)
	}
	if cr, ok := x.(*ColumnRef); ok && cr.Table == "" {
		for i, n := range colNames {
			if strings.EqualFold(n, cr.Column) {
				return outRow[i], nil
			}
		}
	}
	return eval(x, rowEnv)
}
