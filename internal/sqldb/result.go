package sqldb

import (
	"fmt"
	"strings"
)

// Result is the outcome of executing one statement: an optional result set
// (for SELECT and CALL) plus the number of rows affected (for DML).
type Result struct {
	Columns      []string
	Rows         [][]Value
	RowsAffected int
}

// IsQuery reports whether the result carries a result set.
func (r *Result) IsQuery() bool { return r != nil && r.Columns != nil }

// ColumnIndex returns the position of the named column, or -1.
func (r *Result) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Get returns the value at (row, named column). It returns NULL for an
// unknown column or out-of-range row.
func (r *Result) Get(row int, column string) Value {
	ci := r.ColumnIndex(column)
	if ci < 0 || row < 0 || row >= len(r.Rows) {
		return Null()
	}
	return r.Rows[row][ci]
}

// ScalarValue returns the single value of a 1x1 result set.
func (r *Result) ScalarValue() (Value, error) {
	if !r.IsQuery() || len(r.Rows) != 1 || len(r.Columns) != 1 {
		return Null(), fmt.Errorf("sqldb: result is not a single scalar (%dx%d)", len(r.Rows), len(r.Columns))
	}
	return r.Rows[0][0], nil
}

// String renders the result set as an aligned text table (for the shell
// and examples).
func (r *Result) String() string {
	if !r.IsQuery() {
		return fmt.Sprintf("(%d rows affected)", r.RowsAffected)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, s := range vals {
			if i > 0 {
				b.WriteString(" | ")
			}
			if i == len(vals)-1 {
				b.WriteString(s) // no trailing padding on the last column
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], s)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i := range r.Columns {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// approxBytes estimates the wire size of the result set; the engine's
// BytesReturned counter aggregates this, which the benchmarks use to
// quantify by-reference vs by-value data movement.
func (r *Result) approxBytes() int64 {
	if !r.IsQuery() {
		return 0
	}
	var n int64
	for _, c := range r.Columns {
		n += int64(len(c))
	}
	for _, row := range r.Rows {
		for _, v := range row {
			switch v.K {
			case KindNull:
				n += 1
			case KindInt, KindFloat:
				n += 8
			case KindBool:
				n += 1
			case KindString:
				n += int64(len(v.S))
			}
		}
	}
	return n
}
