package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the replica half of statement-based replication. The
// primary's change stream (SetChangeSink) is a sequence of top-level
// mutating statements in engine execution order, keyed by origin
// session; an Applier replays that stream against a replica database,
// routing each statement onto a dedicated replica session per origin
// session so interleaved transactions (and their rollbacks) replay with
// the same scoping they had on the primary.

// ErrReadOnly is wrapped by the refusal a mutating statement receives
// on a database in replica mode (SetReadOnly).
var ErrReadOnly = errors.New("sqldb: database is read-only (replica mode)")

// ErrDiverged is wrapped by the error an Applier returns once it has
// proof the replica can no longer converge with the primary: a gap in
// the dense change sequence (a captured change never reached the WAL),
// or the resolution (COMMIT/ROLLBACK) of a transaction the replica
// never saw open — a transaction that straddled the bootstrap dump on
// a replica that was not primed with its pending statements
// (BootstrapState / Prime). The condition is permanent and latches —
// every subsequent Apply repeats it — and the only recovery is
// re-bootstrapping the replica from a fresh dump.
var ErrDiverged = errors.New("sqldb: replica diverged from primary change stream; re-bootstrap required")

// divergedError carries the diagnosis and a permanent classification
// (retrying Apply cannot un-diverge a replica).
type divergedError struct{ msg string }

func (e *divergedError) Error() string   { return ErrDiverged.Error() + ": " + e.msg }
func (e *divergedError) Unwrap() error   { return ErrDiverged }
func (e *divergedError) Temporary() bool { return false }

// readOnlyError carries the refused statement kind and a permanent
// classification (retrying cannot make a replica writable).
type readOnlyError struct{ kind string }

func (e *readOnlyError) Error() string {
	return "sqldb: read-only replica refused " + e.kind
}
func (e *readOnlyError) Unwrap() error   { return ErrReadOnly }
func (e *readOnlyError) Temporary() bool { return false }

// Applier replays a change stream onto a replica database. It is not
// safe for concurrent use: the stream is inherently ordered, so a
// single goroutine (the journal tailer's consumer) drives Apply.
type Applier struct {
	db       *DB
	floor    int64 // changes with Seq <= floor predate the bootstrap dump
	sessions map[int64]*Session
	applied  int64
	skipped  int64

	// lastSeq is the newest change sequence number observed (applied or
	// skipped). The primary stamps changes with a dense counter, so any
	// hole means a change was lost between capture and delivery — the
	// replica has silently missed a write and must re-bootstrap.
	lastSeq int64
	// fatal latches the first divergence: once set, every Apply returns
	// it (the stream is redelivered on error, and redelivering past a
	// divergence would only corrupt the replica further).
	fatal error
}

// NewApplier returns an applier targeting db, skipping changes with
// sequence numbers at or below floor (the floor half of the
// BootstrapState bootstrap point; pass 0 when the replica starts from
// the stream's beginning).
func NewApplier(db *DB, floor int64) *Applier {
	return &Applier{db: db, floor: floor, sessions: map[int64]*Session{}}
}

// Prime replays the pending statements of transactions that were open
// at the bootstrap point (the pending half of DB.BootstrapState). The
// committed-only bootstrap dump deliberately excludes those
// transactions' effects, so the replica re-opens them here — BEGIN and
// all — before consuming the live stream; each resolves when its
// COMMIT or ROLLBACK arrives with Seq > floor. Priming does not touch
// the floor-skip accounting: pending changes carry Seq <= floor, and
// the live stream is still consumed from floor+1.
func (a *Applier) Prime(pending []Change) error {
	for _, c := range pending {
		s := a.session(c.Session)
		if _, err := s.execSQL(c.SQL, c.Params, c.Named); err != nil {
			return fmt.Errorf("sqldb: prime seq %d (%s): %w", c.Seq, c.Kind, err)
		}
		a.applied++
	}
	return nil
}

// session returns (minting if needed) the replica session standing in
// for the given origin session. Applier sessions bypass the read-only
// gate and are never re-captured by a change sink on the replica.
func (a *Applier) session(origin int64) *Session {
	s, ok := a.sessions[origin]
	if !ok {
		s = &Session{db: a.db, id: a.db.sessionIDs.Add(1), applier: true}
		a.sessions[origin] = s
	}
	return s
}

// Apply replays one change. Changes at or below the bootstrap floor
// are skipped (their effects are in the committed-only dump, or were
// re-opened by Prime). Three conditions cannot be papered over and
// are reported as a latching ErrDiverged:
//
//   - A gap in the dense change sequence: a captured change never made
//     it here (journal append failure, pruned WAL segment), so the
//     replica is missing a write with no way to recover it.
//   - A COMMIT or ROLLBACK for a transaction the replica never saw
//     open: the transaction straddled the bootstrap dump and the
//     replica was not primed with its pending statements
//     (DB.BootstrapState / Applier.Prime). The committed-only dump
//     excludes its writes, so a bare COMMIT cannot reproduce them and
//     a bare ROLLBACK has nothing to undo — either way the replica no
//     longer matches the primary.
//   - A BEGIN while the origin session already holds an open
//     transaction (an uncaptured rollback on a textless path); refused
//     rather than guessed at.
func (a *Applier) Apply(c Change) error {
	if a.fatal != nil {
		return a.fatal
	}
	if c.Seq != 0 {
		if a.lastSeq != 0 && c.Seq != a.lastSeq+1 {
			return a.diverge(fmt.Sprintf("change sequence gap: got seq %d after %d", c.Seq, a.lastSeq))
		}
		if a.lastSeq == 0 && a.floor > 0 && c.Seq > a.floor+1 {
			return a.diverge(fmt.Sprintf("stream starts at seq %d, bootstrap floor %d: changes %d..%d lost",
				c.Seq, a.floor, a.floor+1, c.Seq-1))
		}
		a.lastSeq = c.Seq
	}
	if c.Seq != 0 && c.Seq <= a.floor {
		a.skipped++
		return nil
	}
	s := a.session(c.Session)
	if !s.InTransaction() {
		switch c.Kind {
		case "COMMIT", "ROLLBACK":
			return a.diverge(fmt.Sprintf(
				"seq %d: %s of a transaction straddling the bootstrap floor (%d); replica was not primed with its pending statements",
				c.Seq, c.Kind, a.floor))
		}
	} else if c.Kind == "BEGIN" {
		return a.diverge(fmt.Sprintf(
			"seq %d: BEGIN while origin session %d already holds an open transaction (rollback lost upstream)", c.Seq, c.Session))
	}
	// execSQL re-resolves the change text through the replica's own plan
	// cache: a PR 9 primary streams NORMALIZED text with merged
	// parameters, which re-normalizes to itself (the rendering is
	// idempotent, extracting nothing), while legacy journals with inline
	// literals re-extract them here and merge identically.
	if _, err := s.execSQL(c.SQL, c.Params, c.Named); err != nil {
		return fmt.Errorf("sqldb: apply seq %d (%s): %w", c.Seq, c.Kind, err)
	}
	a.applied++
	return nil
}

// diverge latches and returns a permanent divergence error.
func (a *Applier) diverge(msg string) error {
	a.fatal = &divergedError{msg: msg}
	return a.fatal
}

// Fatal returns the latched divergence error, nil while the replica is
// still converging. Once non-nil the replica must be re-bootstrapped
// from a fresh dump.
func (a *Applier) Fatal() error { return a.fatal }

// AbortOpen rolls back every replica transaction still open — the
// orphans of origin sessions that died mid-transaction (a primary
// crash) or of a stream that ended. Promotion calls this before the
// replica serves queries as the new authority's store.
func (a *Applier) AbortOpen() int {
	n := 0
	for _, s := range a.sessions {
		if s.InTransaction() {
			s.Rollback()
			n++
		}
	}
	return n
}

// Applied reports how many changes have been replayed.
func (a *Applier) Applied() int64 { return a.applied }

// Skipped reports how many changes were skipped (below the bootstrap
// floor or orphaned transaction tails).
func (a *Applier) Skipped() int64 { return a.skipped }

// OpenTransactions reports how many replica sessions currently hold an
// open transaction (in-flight origin transactions).
func (a *Applier) OpenTransactions() int {
	n := 0
	for _, s := range a.sessions {
		if s.InTransaction() {
			n++
		}
	}
	return n
}

// --- value codec ----------------------------------------------------------

// EncodeValue renders a value as a compact, self-describing string for
// transport inside journal records: "n" (NULL), "i:42", "f:1.5",
// "s:text", "b:t"/"b:f". DecodeValue inverts it.
func EncodeValue(v Value) string {
	switch v.K {
	case KindInt:
		return "i:" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "s:" + v.S
	case KindBool:
		if v.B {
			return "b:t"
		}
		return "b:f"
	}
	return "n"
}

// DecodeValue parses an EncodeValue string back into a Value.
func DecodeValue(s string) (Value, error) {
	if s == "n" {
		return Null(), nil
	}
	if len(s) < 2 || s[1] != ':' {
		return Null(), fmt.Errorf("sqldb: malformed encoded value %q", s)
	}
	body := s[2:]
	switch s[0] {
	case 'i':
		i, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("sqldb: malformed int value %q", s)
		}
		return Int(i), nil
	case 'f':
		f, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return Null(), fmt.Errorf("sqldb: malformed float value %q", s)
		}
		return Float(f), nil
	case 's':
		return Str(body), nil
	case 'b':
		return Bool(body == "t"), nil
	}
	return Null(), fmt.Errorf("sqldb: unknown value tag %q", s)
}

// EncodeNamed flattens a named-parameter map into a deterministic
// "k=enc" slice (sorted by key) for journal transport.
func EncodeNamed(named map[string]Value) []string {
	if len(named) == 0 {
		return nil
	}
	keys := make([]string, 0, len(named))
	for k := range named {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k+"="+EncodeValue(named[k]))
	}
	return out
}

// DecodeNamed inverts EncodeNamed.
func DecodeNamed(pairs []string) (map[string]Value, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	named := make(map[string]Value, len(pairs))
	for _, p := range pairs {
		eq := strings.IndexByte(p, '=')
		if eq < 0 {
			return nil, fmt.Errorf("sqldb: malformed named pair %q", p)
		}
		v, err := DecodeValue(p[eq+1:])
		if err != nil {
			return nil, err
		}
		named[p[:eq]] = v
	}
	return named, nil
}
