package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the replica half of statement-based replication. The
// primary's change stream (SetChangeSink) is a sequence of top-level
// mutating statements in engine execution order, keyed by origin
// session; an Applier replays that stream against a replica database,
// routing each statement onto a dedicated replica session per origin
// session so interleaved transactions (and their rollbacks) replay with
// the same scoping they had on the primary.

// ErrReadOnly is wrapped by the refusal a mutating statement receives
// on a database in replica mode (SetReadOnly).
var ErrReadOnly = errors.New("sqldb: database is read-only (replica mode)")

// readOnlyError carries the refused statement kind and a permanent
// classification (retrying cannot make a replica writable).
type readOnlyError struct{ kind string }

func (e *readOnlyError) Error() string {
	return "sqldb: read-only replica refused " + e.kind
}
func (e *readOnlyError) Unwrap() error   { return ErrReadOnly }
func (e *readOnlyError) Temporary() bool { return false }

// Applier replays a change stream onto a replica database. It is not
// safe for concurrent use: the stream is inherently ordered, so a
// single goroutine (the journal tailer's consumer) drives Apply.
type Applier struct {
	db       *DB
	floor    int64 // changes with Seq <= floor predate the bootstrap dump
	sessions map[int64]*Session
	applied  int64
	skipped  int64
}

// NewApplier returns an applier targeting db, skipping changes with
// sequence numbers at or below floor (the ChangeSeq half of the
// DumpWithSeq bootstrap point; pass 0 when the replica starts from the
// stream's beginning).
func NewApplier(db *DB, floor int64) *Applier {
	return &Applier{db: db, floor: floor, sessions: map[int64]*Session{}}
}

// session returns (minting if needed) the replica session standing in
// for the given origin session. Applier sessions bypass the read-only
// gate and are never re-captured by a change sink on the replica.
func (a *Applier) session(origin int64) *Session {
	s, ok := a.sessions[origin]
	if !ok {
		s = &Session{db: a.db, id: a.db.sessionIDs.Add(1), applier: true}
		a.sessions[origin] = s
	}
	return s
}

// Apply replays one change. Changes at or below the bootstrap floor are
// skipped, as are COMMIT/ROLLBACK for transactions the replica never
// saw open (the tail of a transaction that straddled the bootstrap
// point — its effects are already in the dump, matching the primary's
// read-uncommitted isolation).
func (a *Applier) Apply(c Change) error {
	if c.Seq != 0 && c.Seq <= a.floor {
		a.skipped++
		return nil
	}
	s := a.session(c.Session)
	if (c.Kind == "COMMIT" || c.Kind == "ROLLBACK") && !s.InTransaction() {
		a.skipped++
		return nil
	}
	st, parse, hit, err := a.db.cachedParse(c.SQL)
	if err != nil {
		return fmt.Errorf("sqldb: apply seq %d: %w", c.Seq, err)
	}
	if _, _, err := s.execStmt(st, parse, cacheLabel(hit), c.SQL, c.Params, c.Named); err != nil {
		return fmt.Errorf("sqldb: apply seq %d (%s): %w", c.Seq, c.Kind, err)
	}
	a.applied++
	return nil
}

// AbortOpen rolls back every replica transaction still open — the
// orphans of origin sessions that died mid-transaction (a primary
// crash) or of a stream that ended. Promotion calls this before the
// replica serves queries as the new authority's store.
func (a *Applier) AbortOpen() int {
	n := 0
	for _, s := range a.sessions {
		if s.InTransaction() {
			s.Rollback()
			n++
		}
	}
	return n
}

// Applied reports how many changes have been replayed.
func (a *Applier) Applied() int64 { return a.applied }

// Skipped reports how many changes were skipped (below the bootstrap
// floor or orphaned transaction tails).
func (a *Applier) Skipped() int64 { return a.skipped }

// OpenTransactions reports how many replica sessions currently hold an
// open transaction (in-flight origin transactions).
func (a *Applier) OpenTransactions() int {
	n := 0
	for _, s := range a.sessions {
		if s.InTransaction() {
			n++
		}
	}
	return n
}

// --- value codec ----------------------------------------------------------

// EncodeValue renders a value as a compact, self-describing string for
// transport inside journal records: "n" (NULL), "i:42", "f:1.5",
// "s:text", "b:t"/"b:f". DecodeValue inverts it.
func EncodeValue(v Value) string {
	switch v.K {
	case KindInt:
		return "i:" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "s:" + v.S
	case KindBool:
		if v.B {
			return "b:t"
		}
		return "b:f"
	}
	return "n"
}

// DecodeValue parses an EncodeValue string back into a Value.
func DecodeValue(s string) (Value, error) {
	if s == "n" {
		return Null(), nil
	}
	if len(s) < 2 || s[1] != ':' {
		return Null(), fmt.Errorf("sqldb: malformed encoded value %q", s)
	}
	body := s[2:]
	switch s[0] {
	case 'i':
		i, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("sqldb: malformed int value %q", s)
		}
		return Int(i), nil
	case 'f':
		f, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return Null(), fmt.Errorf("sqldb: malformed float value %q", s)
		}
		return Float(f), nil
	case 's':
		return Str(body), nil
	case 'b':
		return Bool(body == "t"), nil
	}
	return Null(), fmt.Errorf("sqldb: unknown value tag %q", s)
}

// EncodeNamed flattens a named-parameter map into a deterministic
// "k=enc" slice (sorted by key) for journal transport.
func EncodeNamed(named map[string]Value) []string {
	if len(named) == 0 {
		return nil
	}
	keys := make([]string, 0, len(named))
	for k := range named {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k+"="+EncodeValue(named[k]))
	}
	return out
}

// DecodeNamed inverts EncodeNamed.
func DecodeNamed(pairs []string) (map[string]Value, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	named := make(map[string]Value, len(pairs))
	for _, p := range pairs {
		eq := strings.IndexByte(p, '=')
		if eq < 0 {
			return nil, fmt.Errorf("sqldb: malformed named pair %q", p)
		}
		v, err := DecodeValue(p[eq+1:])
		if err != nil {
			return nil, err
		}
		named[p[:eq]] = v
	}
	return named, nil
}
