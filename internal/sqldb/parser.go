package sqldb

import (
	"fmt"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	src    string
	toks   []token
	pos    int
	params int // number of ? placeholders seen
}

// Parse parses a single SQL statement.
func Parse(sql string) (Stmt, error) {
	stmts, err := ParseScript(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqldb: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseScript parses a semicolon-separated sequence of SQL statements.
func ParseScript(sql string) ([]Stmt, error) {
	toks, err := newLexer(sql).lexAll()
	if err != nil {
		return nil, err
	}
	p := &parser{src: sql, toks: toks}
	var stmts []Stmt
	for {
		for p.peekSym(";") {
			p.pos++
		}
		if p.peek().kind == tokEOF {
			break
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.peekSym(";") && p.peek().kind != tokEOF {
			return nil, p.errorf("expected ';' or end of input")
		}
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("sqldb: empty statement")
	}
	return stmts, nil
}

// parseTokens parses a single statement from a pre-lexed token stream —
// the normalizer's slotted output (see normalizeStmt). src is the
// original text, kept for error offsets. Positional placeholder indexes
// are assigned in token order, so a stream whose literals were replaced
// by `?` tokens parses into a plan whose parameter numbering matches
// the normalizer's slot pattern exactly.
func parseTokens(src string, toks []token) (Stmt, error) {
	p := &parser{src: src, toks: toks}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	for p.peekSym(";") {
		p.pos++
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("expected ';' or end of input")
	}
	return st, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) peekAt(n int) token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) peekKw(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) peekSym(s string) bool {
	t := p.peek()
	return t.kind == tokSymbol && t.text == s
}

func (p *parser) acceptKw(kw string) bool {
	if p.peekKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptSym(s string) bool {
	if p.peekSym(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errorf("expected %q", s)
	}
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	what := "end of input"
	if t.kind != tokEOF {
		what = fmt.Sprintf("%q", t.text)
		if t.kind == tokNumber {
			what = t.num.String()
		}
	}
	return fmt.Errorf("sqldb: parse error near %s (offset %d): %s", what, t.pos, fmt.Sprintf(format, args...))
}

// ident consumes an identifier (or unreserved keyword used as a name).
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	// Allow a few keywords as identifiers in name position (e.g. a column
	// named "value" or "key").
	if t.kind == tokKeyword {
		switch t.text {
		case "VALUE", "KEY", "START", "WORK", "TEXT", "LANGUAGE":
			p.pos++
			return t.text, nil
		}
	}
	return "", p.errorf("expected identifier")
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errorf("expected statement keyword")
	}
	switch t.text {
	case "EXPLAIN":
		p.pos++
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: q}, nil
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "TRUNCATE":
		p.pos++
		p.acceptKw("TABLE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &TruncateStmt{Table: name}, nil
	case "ALTER":
		return p.parseAlter()
	case "CALL":
		return p.parseCall()
	case "BEGIN":
		p.pos++
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		return &BeginStmt{}, nil
	case "COMMIT":
		p.pos++
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.pos++
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		return &RollbackStmt{}, nil
	}
	return nil, p.errorf("unsupported statement %s", t.text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.acceptKw("DISTINCT") {
		s.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, tr)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				oi.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Limit = e
	}
	if p.acceptKw("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Offset = e
	}
	if p.acceptKw("UNION") {
		s.UnionAll = p.acceptKw("ALL")
		u, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		s.Union = u
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSym("*") {
		return SelectItem{Star: true}, nil
	}
	// Qualified star: t.*
	if p.peek().kind == tokIdent &&
		p.peekAt(1).kind == tokSymbol && p.peekAt(1).text == "." &&
		p.peekAt(2).kind == tokSymbol && p.peekAt(2).text == "*" {
		tbl := p.next().text
		p.pos += 2
		return SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	tr := TableRef{}
	if p.peekSym("(") {
		p.pos++
		q, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expectSym(")"); err != nil {
			return TableRef{}, err
		}
		tr.Subquery = q
	} else {
		name, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		tr.Table = name
	}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if p.peek().kind == tokIdent {
		tr.Alias = p.next().text
	}
	if tr.Subquery != nil && tr.Alias == "" {
		return TableRef{}, p.errorf("derived table requires an alias")
	}
	for {
		var kind JoinKind
		switch {
		case p.peekKw("JOIN") || (p.peekKw("INNER") && p.peekAt(1).text == "JOIN"):
			p.acceptKw("INNER")
			p.acceptKw("JOIN")
			kind = JoinInner
		case p.peekKw("LEFT"):
			p.acceptKw("LEFT")
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return TableRef{}, err
			}
			kind = JoinLeft
		case p.peekKw("CROSS"):
			p.acceptKw("CROSS")
			if err := p.expectKw("JOIN"); err != nil {
				return TableRef{}, err
			}
			kind = JoinCross
		default:
			return tr, nil
		}
		jc := JoinClause{Kind: kind}
		if p.peekSym("(") {
			p.pos++
			q, err := p.parseSelect()
			if err != nil {
				return TableRef{}, err
			}
			if err := p.expectSym(")"); err != nil {
				return TableRef{}, err
			}
			jc.Subquery = q
		} else {
			jt, err := p.ident()
			if err != nil {
				return TableRef{}, err
			}
			jc.Table = jt
		}
		if p.acceptKw("AS") {
			a, err := p.ident()
			if err != nil {
				return TableRef{}, err
			}
			jc.Alias = a
		} else if p.peek().kind == tokIdent {
			jc.Alias = p.next().text
		}
		if jc.Subquery != nil && jc.Alias == "" {
			return TableRef{}, p.errorf("derived table requires an alias")
		}
		if kind != JoinCross {
			if err := p.expectKw("ON"); err != nil {
				return TableRef{}, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return TableRef{}, err
			}
			jc.On = on
		}
		tr.Joins = append(tr.Joins, jc)
	}
}

func (p *parser) parseInsert() (Stmt, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: table}
	if p.acceptSym("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if p.peekKw("SELECT") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q
		return ins, nil
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSym(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	u := &UpdateStmt{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Sets = append(u.Sets, SetClause{Column: col, Value: e})
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = e
	}
	return u, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: table}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

func (p *parser) parseCreate() (Stmt, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.peekKw("TABLE"):
		p.pos++
		return p.parseCreateTable()
	case p.peekKw("UNIQUE") || p.peekKw("INDEX"):
		unique := p.acceptKw("UNIQUE")
		if err := p.expectKw("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(unique)
	case p.peekKw("SEQUENCE"):
		p.pos++
		return p.parseCreateSequence()
	case p.peekKw("PROCEDURE"):
		p.pos++
		return p.parseCreateProcedure()
	case p.peekKw("VIEW"):
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		start := p.peek().pos
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		end := len(p.src)
		if t := p.peek(); t.kind != tokEOF {
			end = t.pos
		}
		return &CreateViewStmt{Name: name, Query: q, Src: strings.TrimSpace(p.src[start:end])}, nil
	}
	return nil, p.errorf("expected TABLE, INDEX, SEQUENCE, PROCEDURE, or VIEW after CREATE")
}

func (p *parser) parseCreateTable() (Stmt, error) {
	ct := &CreateTableStmt{}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ct.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct.Table = name
	if p.acceptKw("AS") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ct.AsQuery = q
		return ct, nil
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	for {
		// Table-level PRIMARY KEY (col, ...) constraint.
		if p.peekKw("PRIMARY") {
			p.pos++
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				found := false
				for i := range ct.Columns {
					if strings.EqualFold(ct.Columns[i].Name, c) {
						ct.Columns[i].PrimaryKey = true
						ct.Columns[i].NotNull = true
						found = true
					}
				}
				if !found {
					return nil, p.errorf("PRIMARY KEY references unknown column %s", c)
				}
				if !p.acceptSym(",") {
					break
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
		} else {
			cd, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, cd)
		}
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return ColumnDef{}, err
	}
	cd := ColumnDef{Name: name}
	t := p.next()
	if t.kind != tokKeyword {
		return ColumnDef{}, p.errorf("expected column type for %s", name)
	}
	switch t.text {
	case "INTEGER", "INT", "BIGINT":
		cd.Type = TypeInteger
	case "FLOAT", "REAL", "DOUBLE":
		cd.Type = TypeFloat
	case "VARCHAR", "TEXT", "CHAR":
		cd.Type = TypeVarchar
		// Optional length: VARCHAR(100)
		if p.acceptSym("(") {
			if p.peek().kind != tokNumber {
				return ColumnDef{}, p.errorf("expected length")
			}
			p.pos++
			if err := p.expectSym(")"); err != nil {
				return ColumnDef{}, err
			}
		}
	case "BOOLEAN", "BOOL":
		cd.Type = TypeBoolean
	default:
		return ColumnDef{}, p.errorf("unsupported column type %s", t.text)
	}
	for {
		switch {
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return ColumnDef{}, err
			}
			cd.NotNull = true
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return ColumnDef{}, err
			}
			cd.PrimaryKey = true
			cd.NotNull = true
		case p.acceptKw("DEFAULT"):
			e, err := p.parseExpr()
			if err != nil {
				return ColumnDef{}, err
			}
			cd.Default = e
		default:
			return cd, nil
		}
	}
}

func (p *parser) parseCreateIndex(unique bool) (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	ci := &CreateIndexStmt{Name: name, Table: table, Unique: unique}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Columns = append(ci.Columns, c)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return ci, nil
}

func (p *parser) parseCreateSequence() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	cs := &CreateSequenceStmt{Name: name, Start: 1, Increment: 1}
	for {
		switch {
		case p.acceptKw("START"):
			if err := p.expectKw("WITH"); err != nil {
				return nil, err
			}
			n, err := p.parseSignedInt()
			if err != nil {
				return nil, err
			}
			cs.Start = n
		case p.acceptKw("INCREMENT"):
			if err := p.expectKw("BY"); err != nil {
				return nil, err
			}
			n, err := p.parseSignedInt()
			if err != nil {
				return nil, err
			}
			cs.Increment = n
		default:
			return cs, nil
		}
	}
}

func (p *parser) parseSignedInt() (int64, error) {
	neg := p.acceptSym("-")
	t := p.next()
	if t.kind != tokNumber || t.num.K != KindInt {
		return 0, p.errorf("expected integer")
	}
	if neg {
		return -t.num.I, nil
	}
	return t.num.I, nil
}

func (p *parser) parseCreateProcedure() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	cp := &CreateProcedureStmt{Name: name}
	if p.acceptSym("(") {
		if !p.peekSym(")") {
			for {
				pn, err := p.ident()
				if err != nil {
					return nil, err
				}
				cp.Params = append(cp.Params, pn)
				if !p.acceptSym(",") {
					break
				}
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokString {
		return nil, p.errorf("expected string literal procedure body")
	}
	cp.Body = t.text
	return cp, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("TABLE"):
		d := &DropTableStmt{}
		if p.acceptKw("IF") {
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			d.IfExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		d.Table = name
		return d, nil
	case p.acceptKw("INDEX"):
		ifExists, err := p.parseIfExists()
		if err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndexStmt{Name: name, IfExists: ifExists}, nil
	case p.acceptKw("SEQUENCE"):
		ifExists, err := p.parseIfExists()
		if err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropSequenceStmt{Name: name, IfExists: ifExists}, nil
	case p.acceptKw("PROCEDURE"):
		ifExists, err := p.parseIfExists()
		if err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropProcedureStmt{Name: name, IfExists: ifExists}, nil
	case p.acceptKw("VIEW"):
		ifExists, err := p.parseIfExists()
		if err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropViewStmt{Name: name, IfExists: ifExists}, nil
	}
	return nil, p.errorf("expected TABLE, INDEX, SEQUENCE, or PROCEDURE after DROP")
}

func (p *parser) parseAlter() (Stmt, error) {
	if err := p.expectKw("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("ADD"):
		p.acceptKw("COLUMN")
		cd, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		return &AlterTableStmt{Table: table, Kind: AlterAddColumn, Column: cd}, nil
	case p.acceptKw("DROP"):
		p.acceptKw("COLUMN")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &AlterTableStmt{Table: table, Kind: AlterDropColumn, Name: name}, nil
	case p.acceptKw("RENAME"):
		if err := p.expectKw("TO"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &AlterTableStmt{Table: table, Kind: AlterRenameTable, Name: name}, nil
	}
	return nil, p.errorf("expected ADD, DROP, or RENAME after ALTER TABLE")
}

// parseIfExists consumes an optional IF EXISTS clause.
func (p *parser) parseIfExists() (bool, error) {
	if !p.acceptKw("IF") {
		return false, nil
	}
	if err := p.expectKw("EXISTS"); err != nil {
		return false, err
	}
	return true, nil
}

func (p *parser) parseCall() (Stmt, error) {
	if err := p.expectKw("CALL"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	c := &CallStmt{Name: name}
	if p.acceptSym("(") {
		if !p.peekSym(")") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, e)
				if !p.acceptSym(",") {
					break
				}
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// --- Expression parsing (precedence climbing) ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peekKw("AND") {
		p.pos++
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

// parsePredicate handles comparison operators and SQL predicates
// (IS NULL, BETWEEN, IN, LIKE).
func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tokSymbol && (t.text == "=" || t.text == "<" || t.text == "<=" ||
			t.text == ">" || t.text == ">=" || t.text == "<>" || t.text == "!="):
			p.pos++
			op := t.text
			if op == "!=" {
				op = "<>"
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
		case t.kind == tokKeyword && t.text == "IS":
			p.pos++
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{X: l, Not: not}
		case t.kind == tokKeyword && (t.text == "BETWEEN" || t.text == "IN" || t.text == "LIKE" || t.text == "NOT"):
			not := false
			if t.text == "NOT" {
				// NOT BETWEEN / NOT IN / NOT LIKE
				nt := p.peekAt(1)
				if nt.kind != tokKeyword || (nt.text != "BETWEEN" && nt.text != "IN" && nt.text != "LIKE") {
					return l, nil
				}
				p.pos++
				not = true
				t = p.peek()
			}
			switch t.text {
			case "BETWEEN":
				p.pos++
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: not}
			case "IN":
				p.pos++
				if err := p.expectSym("("); err != nil {
					return nil, err
				}
				ie := &InExpr{X: l, Not: not}
				if p.peekKw("SELECT") {
					q, err := p.parseSelect()
					if err != nil {
						return nil, err
					}
					ie.Query = q
				} else {
					for {
						e, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						ie.List = append(ie.List, e)
						if !p.acceptSym(",") {
							break
						}
					}
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				l = ie
			case "LIKE":
				p.pos++
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				var e Expr = &BinaryExpr{Op: "LIKE", L: l, R: r}
				if not {
					e = &UnaryExpr{Op: "NOT", X: e}
				}
				l = e
			}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.pos++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSym("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	if p.acceptSym("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		return &Literal{Val: t.num}, nil
	case tokString:
		p.pos++
		return &Literal{Val: Str(t.text)}, nil
	case tokParam:
		p.pos++
		if t.text != "?" {
			return &ParamRef{Index: -1, Name: t.text}, nil
		}
		idx := p.params
		p.params++
		return &ParamRef{Index: idx}, nil
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			if p.peekKw("SELECT") {
				q, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Query: q}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return &Literal{Val: Null()}, nil
		case "TRUE":
			p.pos++
			return &Literal{Val: Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: Bool(false)}, nil
		case "EXISTS":
			p.pos++
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Query: q}, nil
		case "CASE":
			return p.parseCase()
		case "NEXT":
			// NEXT VALUE FOR seq
			p.pos++
			if err := p.expectKw("VALUE"); err != nil {
				return nil, err
			}
			if err := p.expectKw("FOR"); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &NextValueExpr{Sequence: name}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.pos++
			return p.parseFuncCall(t.text)
		case "LEFT":
			// LEFT is a join keyword but also a string function.
			if p.peekAt(1).kind == tokSymbol && p.peekAt(1).text == "(" {
				p.pos++
				return p.parseFuncCall(t.text)
			}
		case "VALUE", "KEY", "START", "WORK", "TEXT", "LANGUAGE":
			// keywords usable as identifiers
			return p.parseIdentExpr()
		}
	case tokIdent:
		return p.parseIdentExpr()
	}
	return nil, p.errorf("expected expression")
}

// parseIdentExpr parses a column reference (possibly qualified) or a scalar
// function call, starting at an identifier token.
func (p *parser) parseIdentExpr() (Expr, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Function call?
	if p.peekSym("(") {
		return p.parseFuncCall(strings.ToUpper(name))
	}
	// Qualified reference "t.c".
	if p.acceptSym(".") {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Column: col}, nil
	}
	return &ColumnRef{Column: name}, nil
}

// parseFuncCall parses NAME(args) where the name token has been consumed.
func (p *parser) parseFuncCall(name string) (Expr, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.acceptSym("*") {
		fc.Star = true
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.acceptKw("DISTINCT") {
		fc.Distinct = true
	}
	if !p.peekSym(")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	if !p.peekKw("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.acceptKw("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{When: w, Then: th})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return ce, nil
}
