package sqldb

import (
	"fmt"
	"strings"
)

// view is a named stored query re-executed on every reference.
type view struct {
	Name  string
	Query *SelectStmt
	src   string // original definition text for Dump
}

// execCreateView installs a view after checking name collisions and that
// the definition is executable right now (eager validation, like the
// products' database layers do).
func (s *Session) execCreateView(t *CreateViewStmt) (*Result, error) {
	lc := strings.ToLower(t.Name)
	if _, exists := s.db.tables[lc]; exists {
		return nil, fmt.Errorf("sqldb: a table named %s already exists", t.Name)
	}
	if _, exists := s.db.views[lc]; exists {
		return nil, fmt.Errorf("sqldb: view %s already exists", t.Name)
	}
	base := &env{session: s}
	if _, err := s.execSelect(t.Query, base); err != nil {
		return nil, fmt.Errorf("sqldb: view %s definition: %w", t.Name, err)
	}
	s.db.views[lc] = &view{Name: t.Name, Query: t.Query, src: t.Src}
	return &Result{}, nil
}

func (s *Session) execDropView(t *DropViewStmt) (*Result, error) {
	lc := strings.ToLower(t.Name)
	if _, ok := s.db.views[lc]; !ok {
		if t.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sqldb: no such view %s", t.Name)
	}
	delete(s.db.views, lc)
	return &Result{}, nil
}

// scanView materializes a view reference as a relation, evaluated fresh
// on each use.
func (s *Session) scanView(v *view, alias string, outer *env) (*relation, error) {
	// Views see the database, not the referencing statement's parameters.
	base := &env{session: s, params: outer.params, named: outer.named}
	res, err := s.execSelect(v.Query, base)
	if err != nil {
		return nil, fmt.Errorf("sqldb: view %s: %w", v.Name, err)
	}
	qual := alias
	if qual == "" {
		qual = v.Name
	}
	rel := &relation{}
	for _, c := range res.Columns {
		rel.cols = append(rel.cols, colMeta{table: strings.ToLower(qual), name: c})
	}
	rel.rows = res.Rows
	return rel, nil
}
