package sqldb

import "strings"

// Statement normalization: the plan cache used to key on raw SQL text,
// so a workflow's per-item INSERT with fresh literals missed on every
// execution (~0.56 hit rate on the figure workloads). normalizeStmt
// extracts literals into bind slots at lex time, before parsing, so
// `INSERT INTO orders VALUES (1,'a')` and `(2,'b')` share one
// normalized text — and therefore one cached plan.
//
// The extracted literals and the caller's own `?` parameters share a
// single positional index space, assigned in token order — exactly the
// order the parser numbers `?` placeholders — so a plan parsed from the
// slotted token stream binds a merged parameter vector with no parser
// changes (see mergeParams).

// Slot provenance: who supplies the value for each positional slot of a
// normalized statement.
const (
	slotUser  uint8 = iota // the caller's positional parameter vector
	slotConst              // a literal extracted from the statement text
)

// normalized is the outcome of extracting literals from one statement.
type normalized struct {
	text    string  // literal-free statement text — the plan-cache key
	toks    []token // token stream with literals replaced by bind slots
	consts  []Value // extracted literal values, in slot order
	pattern []uint8 // provenance of every positional slot, in slot order
}

// userSlots counts the caller-supplied positional slots in a pattern.
func userSlots(pattern []uint8) int {
	n := 0
	for _, p := range pattern {
		if p == slotUser {
			n++
		}
	}
	return n
}

// normalizeStmt lexes sql and extracts its literals into bind slots.
// ok == false means the statement is not eligible (not a single
// SELECT/INSERT/UPDATE/DELETE, or it does not lex) and the caller must
// fall back to an ordinary parse of the raw text.
//
// Literals inside an ORDER BY clause are deliberately left in place: a
// bare integer there is a positional select-list reference
// (evalOrderKey), so turning it into a parameter would change meaning.
// TRUE/FALSE/NULL are keywords, never slotted.
//
// The rendered text is idempotent: normalizing it again yields the
// identical text with zero extracted constants — which is what lets a
// replica re-resolve change-stream statements through the same path.
func normalizeStmt(sql string) (normalized, bool) {
	var n normalized
	toks, err := newLexer(sql).lexAll()
	if err != nil {
		return n, false
	}
	first := toks[0]
	if first.kind != tokKeyword {
		return n, false
	}
	switch first.text {
	case "SELECT", "INSERT", "UPDATE", "DELETE":
	default:
		return n, false
	}
	// Multi-statement scripts keep the raw-text path: a ';' is only
	// tolerated as trailing punctuation.
	for i, t := range toks {
		if t.kind == tokSymbol && t.text == ";" {
			for _, r := range toks[i+1:] {
				if r.kind != tokEOF && !(r.kind == tokSymbol && r.text == ";") {
					return n, false
				}
			}
			break
		}
	}

	depth := 0
	suppressAt := -1 // paren depth of the active ORDER BY clause; -1 = none
	for i := range toks {
		t := &toks[i]
		switch t.kind {
		case tokSymbol:
			switch t.text {
			case "(":
				depth++
			case ")":
				if depth--; suppressAt >= 0 && depth < suppressAt {
					suppressAt = -1
				}
			}
		case tokKeyword:
			switch t.text {
			case "ORDER":
				if suppressAt < 0 && i+1 < len(toks) && toks[i+1].kind == tokKeyword && toks[i+1].text == "BY" {
					suppressAt = depth
				}
			case "LIMIT", "OFFSET", "UNION":
				if suppressAt >= 0 && depth == suppressAt {
					suppressAt = -1
				}
			}
		case tokParam:
			if t.text == "?" {
				n.pattern = append(n.pattern, slotUser)
			}
			// :name parameters bind by name, not position — untouched.
		case tokNumber:
			if suppressAt >= 0 {
				break
			}
			n.consts = append(n.consts, t.num)
			n.pattern = append(n.pattern, slotConst)
			*t = token{kind: tokParam, text: "?", pos: t.pos, end: t.end}
		case tokString:
			if suppressAt >= 0 {
				break
			}
			n.consts = append(n.consts, Str(t.text))
			n.pattern = append(n.pattern, slotConst)
			*t = token{kind: tokParam, text: "?", pos: t.pos, end: t.end}
		}
	}
	n.toks = toks
	n.text = renderTokens(sql, toks)
	return n, true
}

// renderTokens rebuilds statement text from a (slotted) token stream:
// original source spans joined by single spaces, bind slots as `?`. The
// rendering is deterministic for a given token sequence, which makes it
// a stable cache key and a stable change-stream wire form.
func renderTokens(src string, toks []token) string {
	var b strings.Builder
	b.Grow(len(src))
	for i, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		if t.kind == tokParam && t.text == "?" {
			// Covers both caller-written placeholders and slotted
			// literals, whose spans still point at the literal text.
			b.WriteByte('?')
			continue
		}
		b.WriteString(src[t.pos:t.end])
	}
	return b.String()
}

// mergeParams interleaves the caller's positional values with the
// literals extracted at normalization time, per the slot pattern. ok is
// false when the caller supplied fewer values than the statement's user
// slots: the unparameterized path reports a missing parameter by its
// position among the caller's own placeholders, and that numbering is
// unrecoverable once extracted literals shift the indexes — so callers
// fall back to a plain parse of the raw text. Surplus caller values
// were always legal (never referenced); they stay reachable at the end
// of the merged vector.
func mergeParams(user, consts []Value, pattern []uint8) ([]Value, bool) {
	if len(consts) == 0 {
		return user, true
	}
	if len(user) < userSlots(pattern) {
		return nil, false
	}
	out := make([]Value, len(pattern), len(pattern)+len(user))
	ui, ci := 0, 0
	for i, p := range pattern {
		if p == slotConst {
			out[i] = consts[ci]
			ci++
		} else {
			out[i] = user[ui]
			ui++
		}
	}
	out = append(out, user[ui:]...)
	return out, true
}
