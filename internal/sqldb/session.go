package sqldb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Session is a connection-like handle on a DB. A session may hold an
// explicit transaction (BEGIN ... COMMIT/ROLLBACK); outside of one, every
// statement autocommits.
//
// The workflow layers follow a one-session-per-instance contract; a
// session serializes its own top-level statements with an internal mutex,
// so parallel Flow branches of one instance sharing the instance session
// are safe (their statements interleave, they do not corrupt session
// state). Distinct instances must still use distinct sessions — an open
// transaction belongs to the whole session, not to a goroutine.
type Session struct {
	db *DB

	// id distinguishes sessions in the change stream (SetChangeSink):
	// replication replays interleaved transactions from many origin
	// sessions, and the id is how an Applier routes each statement onto
	// the replica session holding the matching open transaction. Child
	// sessions share their parent's id.
	id int64

	// applier marks a session minted by NewApplier: its writes bypass
	// the read-only replica gate (SetReadOnly) — they ARE the
	// replication stream — and are never re-captured by the change sink.
	applier bool

	// mu serializes top-level statement execution and Rollback on this
	// session. Re-entrant execution (child sessions, below) runs inside
	// the owner's critical section and bypasses it.
	mu  sync.Mutex
	txn *txn

	// locked marks a child session minted by execCall for native
	// procedures: the enclosing statement already holds the engine lock
	// and the session mutex, so the child's statements take the
	// re-entrant path. It is set at construction and never mutated, which
	// keeps the flag data-race-free even when the parent session is
	// shared across goroutines.
	locked bool

	// per-statement stats plumbing (see stats.go)
	sink        StatsSink // session-level override of the DB sink
	planTable   string    // primary access-path table of current stmt
	planIndex   string    // index probed by the current stmt ("" = scan)
	rowsScanned int64     // candidate rows read by the current stmt

	// runCtx, when bound, is the session's execution budget (the owning
	// workflow instance's deadline). Guarded by mu; checked at every
	// top-level statement boundary.
	runCtx context.Context
}

// ErrBudgetExhausted is wrapped by the error a statement boundary
// returns when the session's bound context has expired. It carries
// Temporary() == false through the wrapper, so resilience retry
// policies classify it permanent — retrying a statement cannot revive
// a dead budget.
var ErrBudgetExhausted = errors.New("sqldb: session budget exhausted")

// budgetError wraps ErrBudgetExhausted with the context cause and a
// permanent classification.
type budgetError struct{ cause error }

func (e *budgetError) Error() string {
	return ErrBudgetExhausted.Error() + ": " + e.cause.Error()
}
func (e *budgetError) Unwrap() error   { return ErrBudgetExhausted }
func (e *budgetError) Temporary() bool { return false }

// BindContext attaches (or with nil detaches) an execution budget to
// the session. Once the context is done, every subsequent top-level
// statement is refused at the boundary — before the ExecHook, before
// the engine lock — with an error wrapping ErrBudgetExhausted. A
// statement already executing is never interrupted (statement
// atomicity is preserved); open explicit transactions stay open so the
// owning layer's rollback handling runs normally.
func (s *Session) BindContext(ctx context.Context) {
	s.mu.Lock()
	s.runCtx = ctx
	s.mu.Unlock()
}

// txn is an in-flight transaction: an undo log replayed in reverse on
// rollback.
type txn struct {
	undo []undoEntry
}

type undoEntry interface{ undo() }

type undoInsert struct {
	t *Table
	r *Row
}

func (u undoInsert) undo() { u.t.deleteRow(u.r) }

type undoDelete struct {
	t *Table
	r *Row
}

func (u undoDelete) undo() { u.t.reinsertRow(u.r) }

type undoUpdate struct {
	t   *Table
	r   *Row
	old []Value
}

func (u undoUpdate) undo() { u.t.restoreRowValues(u.r, u.old) }

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.txn != nil }

// DB returns the database this session is attached to.
func (s *Session) DB() *DB { return s.db }

// ID returns the session's database-unique id (the origin-session key
// of its statements in the change stream).
func (s *Session) ID() int64 { return s.id }

// Exec parses and executes one SQL statement with positional parameters.
// The parse goes through the database's statement cache: repeated
// executions of the same SQL text reuse the cached AST and report zero
// parse time (StmtStats.Cache records "hit" vs "miss").
func (s *Session) Exec(sql string, params ...Value) (*Result, error) {
	st, parse, hit, err := s.db.cachedParse(sql)
	if err != nil {
		return nil, err
	}
	res, _, err := s.execStmt(st, parse, cacheLabel(hit), sql, params, nil)
	return res, err
}

// ExecNamed parses and executes one SQL statement binding :name parameters
// from the given map (keys are case-insensitive). Like Exec, it resolves
// the SQL text through the statement cache.
func (s *Session) ExecNamed(sql string, named map[string]Value) (*Result, error) {
	st, parse, hit, err := s.db.cachedParse(sql)
	if err != nil {
		return nil, err
	}
	res, _, err := s.execStmt(st, parse, cacheLabel(hit), sql, nil, named)
	return res, err
}

func cacheLabel(hit bool) string {
	if hit {
		return CacheHit
	}
	return CacheMiss
}

// PreparedStmt is a parsed statement bound to a session, reusable with
// different parameters — the host-variable execution path the product
// layers use for repeated statements. Prepare bypasses the statement
// cache (the caller is doing its own statement reuse).
type PreparedStmt struct {
	s    *Session
	stmt Stmt
	src  string // original SQL text, for the change stream

	mu       sync.Mutex
	parse    time.Duration
	reported bool
}

// Prepare parses a statement once for repeated execution.
func (s *Session) Prepare(sql string) (*PreparedStmt, error) {
	start := time.Now()
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return &PreparedStmt{s: s, stmt: st, src: sql, parse: time.Since(start)}, nil
}

// takeParse returns the one-time parse cost if no execution has carried it
// yet, marking it charged (later executions report zero parse time — the
// point of preparing).
func (p *PreparedStmt) takeParse() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.reported {
		return 0
	}
	p.reported = true
	return p.parse
}

// restoreParse re-arms the parse charge when the execution it was handed
// to was refused before running (ExecHook fault injection): the next
// execution that actually runs must still account for the parse.
// Without this, a statement whose first attempt was chaos-refused would
// lose its parse cost forever and every StmtStats it ever emitted would
// claim Parse == 0.
func (p *PreparedStmt) restoreParse(parse time.Duration) {
	if parse == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reported = false
}

// Exec runs the prepared statement with positional parameters.
func (p *PreparedStmt) Exec(params ...Value) (*Result, error) {
	parse := p.takeParse()
	res, executed, err := p.s.execStmt(p.stmt, parse, "", p.src, params, nil)
	if !executed {
		p.restoreParse(parse)
	}
	return res, err
}

// ExecNamed runs the prepared statement with named parameters.
func (p *PreparedStmt) ExecNamed(named map[string]Value) (*Result, error) {
	parse := p.takeParse()
	res, executed, err := p.s.execStmt(p.stmt, parse, "", p.src, nil, named)
	if !executed {
		p.restoreParse(parse)
	}
	return res, err
}

// Query executes a statement and requires it to produce a result set.
func (s *Session) Query(sql string, params ...Value) (*Result, error) {
	r, err := s.Exec(sql, params...)
	if err != nil {
		return nil, err
	}
	if !r.IsQuery() {
		return nil, fmt.Errorf("sqldb: statement did not return rows")
	}
	return r, nil
}

// ExecStmt executes a pre-parsed statement. Top-level executions (not
// re-entrant ones) first pass through the database's ExecHook, so fault
// injection sees the same statement stream every session sends; they also
// emit per-statement StmtStats to the session's (or database's) sink
// after the engine lock is released. A pre-parsed statement carries no
// parse cost (StmtStats.Parse == 0).
//
// A pre-parsed statement also carries no SQL text, so a mutating
// ExecStmt is invisible to an installed change sink (SetChangeSink) —
// the miss is counted in ChangesMissed. Replication-facing callers use
// Exec/ExecNamed/Prepare, which capture the text.
func (s *Session) ExecStmt(st Stmt, params []Value, named map[string]Value) (*Result, error) {
	res, _, err := s.execStmt(st, 0, "", "", params, named)
	return res, err
}

// readOnlyStmt reports whether a statement only reads database state and
// can therefore execute under the shared (read) engine lock. SELECT may
// still advance sequences via NEXTVAL; Sequence is internally
// synchronized for exactly that reason.
func readOnlyStmt(st Stmt) bool {
	switch st.(type) {
	case *SelectStmt, *ExplainStmt:
		return true
	}
	return false
}

// isDDL reports whether a statement changes schema objects (tables,
// indexes, views, sequences, procedures). Successful DDL flushes the
// parsed-statement cache.
func isDDL(st Stmt) bool {
	switch st.(type) {
	case *CreateTableStmt, *DropTableStmt, *AlterTableStmt,
		*CreateIndexStmt, *DropIndexStmt,
		*CreateViewStmt, *DropViewStmt,
		*CreateSequenceStmt, *DropSequenceStmt,
		*CreateProcedureStmt, *DropProcedureStmt:
		return true
	}
	return false
}

// execStmt is the top-level execution path: session mutex, ExecHook,
// engine lock (shared for read-only statements, exclusive otherwise),
// statement execution, then stats emission. parse and cache describe how
// the statement text was resolved (see Exec/cachedParse) and flow into
// the emitted StmtStats; src is the original SQL text when the caller
// has it (change-stream capture needs it). executed is false only when
// the ExecHook refused the statement before any work happened —
// prepared statements use that to re-arm their one-time parse charge.
func (s *Session) execStmt(st Stmt, parse time.Duration, cache string, src string, params []Value, named map[string]Value) (res *Result, executed bool, err error) {
	if s.locked {
		// Re-entrant execution (native procedure bodies running on a
		// child session): no hook, no stats — the enclosing statement
		// accounts for it.
		res, err = s.execStmtLocked(st, params, named)
		return res, true, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Deadline propagation: a session whose bound budget has expired
	// refuses the statement at the boundary. Like an ExecHook refusal,
	// nothing has executed (executed == false), so prepared statements
	// re-arm their one-time parse charge.
	if s.runCtx != nil {
		if cerr := s.runCtx.Err(); cerr != nil {
			s.db.deadlineRefusals.Add(1)
			return nil, false, &budgetError{cause: cerr}
		}
	}
	// Read-only replica gate: only applier sessions (the replication
	// stream itself) may mutate a database in replica mode. Refused at
	// the boundary like a hook refusal — nothing has executed.
	if !readOnlyStmt(st) && !s.applier && s.db.readOnly.Load() {
		return nil, false, &readOnlyError{kind: StmtKind(st)}
	}
	if h := s.db.currentExecHook(); h != nil {
		if err := h(StmtKind(st)); err != nil {
			return nil, false, err
		}
	}
	sink := s.sink
	if sink == nil {
		sink = s.db.currentStatsSink()
	}
	shared := readOnlyStmt(st)
	lockStart := time.Now()
	if shared {
		s.db.mu.RLock()
	} else {
		s.db.mu.Lock()
	}
	lockWait := time.Since(lockStart)
	var stat *StmtStats
	func() {
		defer func() {
			if shared {
				s.db.mu.RUnlock()
			} else {
				s.db.mu.Unlock()
			}
		}()
		// The change stream is captured while the exclusive lock is
		// still held, so its order IS the engine's execution order —
		// the property the replica applier relies on to replay
		// interleaved transactions.
		defer func() {
			if !shared && err == nil {
				s.emitChangeLocked(st, src, params, named)
			}
		}()
		if sink == nil {
			res, err = s.execStmtLocked(st, params, named)
			return
		}
		s.planTable, s.planIndex, s.rowsScanned = "", "", 0
		start := time.Now()
		res, err = s.execStmtLocked(st, params, named)
		stat = &StmtStats{
			Start:       start,
			Kind:        StmtKind(st),
			Table:       s.planTable,
			Index:       s.planIndex,
			Plan:        "",
			Parse:       parse,
			Exec:        time.Since(start),
			LockWait:    lockWait,
			Cache:       cache,
			RowsScanned: s.rowsScanned,
		}
		if s.planTable != "" {
			if tbl, terr := s.db.table(s.planTable); terr == nil {
				var idx *Index
				if s.planIndex != "" {
					idx = tbl.indexes[strings.ToLower(s.planIndex)]
				}
				stat.Plan = planLabel(tbl, idx)
			}
		}
		if res != nil {
			stat.RowsReturned = int64(len(res.Rows))
			stat.RowsAffected = res.RowsAffected
		}
		if err != nil {
			stat.Err = err.Error()
		}
	}()
	if err == nil && isDDL(st) {
		s.db.invalidateStmtCache()
	}
	if stat != nil {
		sink(*stat)
	}
	return res, true, err
}

// emitChangeLocked hands a successfully executed mutating statement to
// the database's change sink, stamped with the next change sequence
// number. Caller holds the exclusive engine lock, which is what makes
// both the sequence and the sink callback order match execution order.
// Applier sessions are skipped — re-capturing the replication stream on
// a replica would loop it. Mutating statements executed without source
// text (pre-parsed ExecStmt/ExecScript paths) cannot be captured and
// are counted in ChangesMissed instead.
func (s *Session) emitChangeLocked(st Stmt, src string, params []Value, named map[string]Value) {
	if s.applier {
		return
	}
	sink := s.db.currentChangeSink()
	if sink == nil {
		return
	}
	if src == "" {
		s.db.changesMissed.Add(1)
		return
	}
	c := Change{
		Seq:     s.db.changeSeq.Add(1),
		Session: s.id,
		Kind:    StmtKind(st),
		SQL:     src,
	}
	if len(params) > 0 {
		c.Params = append([]Value(nil), params...)
	}
	if len(named) > 0 {
		c.Named = make(map[string]Value, len(named))
		for k, v := range named {
			c.Named[k] = v
		}
	}
	sink(c)
}

// execStmtLocked executes one statement with the DB lock held. Unless an
// explicit transaction is open, the statement runs in a statement-local
// transaction that rolls back on error (statement atomicity).
func (s *Session) execStmtLocked(st Stmt, params []Value, named map[string]Value) (res *Result, err error) {
	s.db.stmtCount.Add(1)
	lower := func(m map[string]Value) map[string]Value {
		if m == nil {
			return nil
		}
		out := make(map[string]Value, len(m))
		for k, v := range m {
			out[strings.ToLower(k)] = v
		}
		return out
	}
	named = lower(named)

	switch t := st.(type) {
	case *BeginStmt:
		if s.txn != nil {
			return nil, fmt.Errorf("sqldb: transaction already open")
		}
		s.txn = &txn{}
		return &Result{}, nil
	case *CommitStmt:
		if s.txn == nil {
			return nil, fmt.Errorf("sqldb: no transaction open")
		}
		s.txn = nil
		return &Result{}, nil
	case *RollbackStmt:
		if s.txn == nil {
			return nil, fmt.Errorf("sqldb: no transaction open")
		}
		s.rollbackLocked()
		return &Result{}, nil
	default:
		_ = t
	}

	// Statement-local transaction when none is open.
	local := false
	if s.txn == nil {
		s.txn = &txn{}
		local = true
	}
	defer func() {
		if local {
			if err != nil {
				s.rollbackLocked()
			} else {
				s.txn = nil
			}
		}
	}()

	switch t := st.(type) {
	case *SelectStmt:
		base := &env{params: params, named: named, session: s}
		res, err = s.execSelect(t, base)
		if err == nil {
			b := res.approxBytes()
			s.db.bytesReturned.Add(b)
		}
		return res, err
	case *InsertStmt:
		return s.execInsert(t, params, named)
	case *UpdateStmt:
		return s.execUpdate(t, params, named)
	case *DeleteStmt:
		return s.execDelete(t, params, named)
	case *CreateTableStmt:
		return s.execCreateTable(t, params, named)
	case *DropTableStmt:
		lc := strings.ToLower(t.Table)
		tbl, ok := s.db.tables[lc]
		if !ok {
			if t.IfExists {
				return &Result{}, nil
			}
			return nil, fmt.Errorf("sqldb: no such table %s", t.Table)
		}
		for in := range tbl.indexes {
			delete(s.db.indexOwner, in)
		}
		delete(s.db.tables, lc)
		return &Result{}, nil
	case *TruncateStmt:
		tbl, err := s.db.table(t.Table)
		if err != nil {
			return nil, err
		}
		n := len(tbl.rows)
		for len(tbl.rows) > 0 {
			r := tbl.rows[len(tbl.rows)-1]
			tbl.deleteRow(r)
			s.txn.undo = append(s.txn.undo, undoDelete{tbl, r})
		}
		s.db.rowsWritten.Add(int64(n))
		return &Result{RowsAffected: n}, nil
	case *CreateIndexStmt:
		tbl, err := s.db.table(t.Table)
		if err != nil {
			return nil, err
		}
		lc := strings.ToLower(t.Name)
		if _, exists := s.db.indexOwner[lc]; exists {
			return nil, fmt.Errorf("sqldb: index %s already exists", t.Name)
		}
		idx, err := newIndex(t.Name, tbl, t.Columns, t.Unique)
		if err != nil {
			return nil, err
		}
		tbl.indexes[lc] = idx
		s.db.indexOwner[lc] = tbl
		return &Result{}, nil
	case *DropIndexStmt:
		lc := strings.ToLower(t.Name)
		tbl, ok := s.db.indexOwner[lc]
		if !ok {
			if t.IfExists {
				return &Result{}, nil
			}
			return nil, fmt.Errorf("sqldb: no such index %s", t.Name)
		}
		delete(tbl.indexes, lc)
		delete(s.db.indexOwner, lc)
		return &Result{}, nil
	case *CreateSequenceStmt:
		lc := strings.ToLower(t.Name)
		if _, exists := s.db.sequences[lc]; exists {
			return nil, fmt.Errorf("sqldb: sequence %s already exists", t.Name)
		}
		s.db.sequences[lc] = &Sequence{Name: t.Name, next: t.Start, increment: t.Increment}
		return &Result{}, nil
	case *DropSequenceStmt:
		lc := strings.ToLower(t.Name)
		if _, ok := s.db.sequences[lc]; !ok {
			if t.IfExists {
				return &Result{}, nil
			}
			return nil, fmt.Errorf("sqldb: no such sequence %s", t.Name)
		}
		delete(s.db.sequences, lc)
		return &Result{}, nil
	case *CreateProcedureStmt:
		body, err := ParseScript(t.Body)
		if err != nil {
			return nil, fmt.Errorf("sqldb: procedure %s body: %w", t.Name, err)
		}
		lc := strings.ToLower(t.Name)
		if _, exists := s.db.procs[lc]; exists {
			return nil, fmt.Errorf("sqldb: procedure %s already exists", t.Name)
		}
		s.db.procs[lc] = &Procedure{Name: t.Name, Params: t.Params, Body: body, src: t.Body}
		return &Result{}, nil
	case *DropProcedureStmt:
		lc := strings.ToLower(t.Name)
		if _, ok := s.db.procs[lc]; !ok {
			if t.IfExists {
				return &Result{}, nil
			}
			return nil, fmt.Errorf("sqldb: no such procedure %s", t.Name)
		}
		delete(s.db.procs, lc)
		return &Result{}, nil
	case *CallStmt:
		return s.execCall(t, params, named)
	case *ExplainStmt:
		return s.execExplain(t, params, named)
	case *AlterTableStmt:
		return s.execAlterTable(t, params, named)
	case *CreateViewStmt:
		return s.execCreateView(t)
	case *DropViewStmt:
		return s.execDropView(t)
	}
	return nil, fmt.Errorf("sqldb: unsupported statement %T", st)
}

func (s *Session) rollbackLocked() {
	if s.txn == nil {
		return
	}
	for i := len(s.txn.undo) - 1; i >= 0; i-- {
		s.txn.undo[i].undo()
	}
	s.txn = nil
}

// Rollback aborts any open explicit transaction (no-op otherwise). It is
// used by the workflow layers when a fault aborts an atomic SQL sequence.
//
// A rollback that closed a transaction is emitted to the change stream
// exactly like an executed ROLLBACK statement would be: the replica's
// mapped session holds the mirrored transaction open, and without the
// record it would stay open forever — the origin session's next BEGIN
// would then fail on the replica and wedge replication.
func (s *Session) Rollback() {
	if s.locked {
		// Re-entrant (child session): the engine lock is already held by
		// the enclosing statement.
		if s.txn != nil {
			s.rollbackLocked()
			s.emitChangeLocked(&RollbackStmt{}, "ROLLBACK", nil, nil)
		}
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if s.txn == nil {
		return
	}
	s.rollbackLocked()
	s.emitChangeLocked(&RollbackStmt{}, "ROLLBACK", nil, nil)
}

func (s *Session) nextSequenceValue(name string) (Value, error) {
	seq, ok := s.db.sequences[strings.ToLower(name)]
	if !ok {
		return Null(), fmt.Errorf("sqldb: no such sequence %s", name)
	}
	return Int(seq.Next()), nil
}

func (s *Session) execInsert(t *InsertStmt, params []Value, named map[string]Value) (*Result, error) {
	tbl, err := s.db.table(t.Table)
	if err != nil {
		return nil, err
	}
	// Determine target column positions.
	targets := make([]int, 0, len(tbl.Columns))
	if len(t.Columns) == 0 {
		for i := range tbl.Columns {
			targets = append(targets, i)
		}
	} else {
		for _, c := range t.Columns {
			ci := tbl.ColumnIndex(c)
			if ci < 0 {
				return nil, fmt.Errorf("sqldb: no column %s in table %s", c, t.Table)
			}
			targets = append(targets, ci)
		}
	}
	base := &env{params: params, named: named, session: s}
	var sourceRows [][]Value
	if t.Query != nil {
		qres, err := s.execSelect(t.Query, base)
		if err != nil {
			return nil, err
		}
		if len(qres.Columns) != len(targets) {
			return nil, fmt.Errorf("sqldb: INSERT ... SELECT column count mismatch: %d vs %d", len(targets), len(qres.Columns))
		}
		sourceRows = qres.Rows
	} else {
		for _, rowExprs := range t.Rows {
			if len(rowExprs) != len(targets) {
				return nil, fmt.Errorf("sqldb: INSERT value count mismatch: %d vs %d", len(targets), len(rowExprs))
			}
			vals := make([]Value, len(rowExprs))
			for i, e := range rowExprs {
				v, err := eval(e, base)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			sourceRows = append(sourceRows, vals)
		}
	}
	n := 0
	for _, src := range sourceRows {
		full := make([]Value, len(tbl.Columns))
		assigned := make([]bool, len(tbl.Columns))
		for i, ci := range targets {
			full[ci] = src[i]
			assigned[ci] = true
		}
		for ci, col := range tbl.Columns {
			if !assigned[ci] && col.Default != nil {
				v, err := eval(col.Default, base)
				if err != nil {
					return nil, err
				}
				full[ci] = v
			}
		}
		r := &Row{Values: full}
		if err := tbl.insertRow(r); err != nil {
			return nil, err
		}
		s.txn.undo = append(s.txn.undo, undoInsert{tbl, r})
		n++
	}
	s.db.rowsWritten.Add(int64(n))
	return &Result{RowsAffected: n}, nil
}

func (s *Session) execUpdate(t *UpdateStmt, params []Value, named map[string]Value) (*Result, error) {
	tbl, err := s.db.table(t.Table)
	if err != nil {
		return nil, err
	}
	cols := tableColMeta(tbl, "")
	setIdx := make([]int, len(t.Sets))
	for i, sc := range t.Sets {
		ci := tbl.ColumnIndex(sc.Column)
		if ci < 0 {
			return nil, fmt.Errorf("sqldb: no column %s in table %s", sc.Column, t.Table)
		}
		setIdx[i] = ci
	}
	base := &env{params: params, named: named, session: s}
	// Snapshot matching rows first: predicates must see pre-update state.
	matched, err := s.filterRows(tbl, cols, t.Where, base)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, r := range matched {
		rowEnv := base.child(cols, r.Values)
		newVals := make([]Value, len(r.Values))
		copy(newVals, r.Values)
		for i, sc := range t.Sets {
			v, err := eval(sc.Value, rowEnv)
			if err != nil {
				return nil, err
			}
			newVals[setIdx[i]] = v
		}
		old, err := tbl.updateRow(r, newVals)
		if err != nil {
			return nil, err
		}
		s.txn.undo = append(s.txn.undo, undoUpdate{tbl, r, old})
		n++
	}
	s.db.rowsWritten.Add(int64(n))
	return &Result{RowsAffected: n}, nil
}

func (s *Session) execDelete(t *DeleteStmt, params []Value, named map[string]Value) (*Result, error) {
	tbl, err := s.db.table(t.Table)
	if err != nil {
		return nil, err
	}
	cols := tableColMeta(tbl, "")
	base := &env{params: params, named: named, session: s}
	matched, err := s.filterRows(tbl, cols, t.Where, base)
	if err != nil {
		return nil, err
	}
	for _, r := range matched {
		tbl.deleteRow(r)
		s.txn.undo = append(s.txn.undo, undoDelete{tbl, r})
	}
	s.db.rowsWritten.Add(int64(len(matched)))
	return &Result{RowsAffected: len(matched)}, nil
}

// filterRows returns the rows of tbl matching the predicate, using an index
// for simple equality predicates when one applies.
func (s *Session) filterRows(tbl *Table, cols []colMeta, where Expr, base *env) ([]*Row, error) {
	candidates := s.indexCandidates(tbl, where, base)
	if candidates == nil {
		s.notePlan(tbl, nil)
		candidates = tbl.rows
	}
	var matched []*Row
	for _, r := range candidates {
		s.db.rowsRead.Add(1)
		s.rowsScanned++
		if where != nil {
			v, err := eval(where, base.child(cols, r.Values))
			if err != nil {
				return nil, err
			}
			if !v.Truth() {
				continue
			}
		}
		matched = append(matched, r)
	}
	return matched, nil
}

// indexCandidates inspects an AND-decomposed predicate for equality
// comparisons against constants/params and probes a matching index (the
// same choice EXPLAIN reports). It returns nil when no index applies
// (meaning: scan all rows).
func (s *Session) indexCandidates(tbl *Table, where Expr, base *env) []*Row {
	if where == nil {
		return nil
	}
	eq := map[string]Value{}
	if !collectEqualities(where, base, eq) || len(eq) == 0 {
		// Collected equalities are valid necessary conditions only if
		// the whole predicate is a conjunction.
		return nil
	}
	idx := s.chooseIndex(tbl, where, base)
	if idx == nil {
		return nil
	}
	s.notePlan(tbl, idx)
	vals := make([]Value, 0, len(idx.Columns))
	for _, c := range idx.Columns {
		vals = append(vals, eq[strings.ToLower(c)])
	}
	return idx.lookup(vals)
}

// collectEqualities walks a conjunction and records column = constant
// bindings. It returns false if the expression contains disjunctions or
// other shapes that make index probing unsound.
func collectEqualities(x Expr, base *env, out map[string]Value) bool {
	switch t := x.(type) {
	case *BinaryExpr:
		switch t.Op {
		case "AND":
			return collectEqualities(t.L, base, out) && collectEqualities(t.R, base, out)
		case "=":
			col, val, ok := constEquality(t, base)
			if ok {
				out[strings.ToLower(col)] = val
			}
			return true
		case "OR":
			return false
		default:
			return true // other comparisons narrow further; scan handles them
		}
	case *UnaryExpr:
		if t.Op == "NOT" {
			return false
		}
		return true
	default:
		return true
	}
}

// constEquality matches col = <constant> or <constant> = col where the
// constant side is a literal or parameter.
func constEquality(b *BinaryExpr, base *env) (string, Value, bool) {
	try := func(l, r Expr) (string, Value, bool) {
		cr, ok := l.(*ColumnRef)
		if !ok {
			return "", Value{}, false
		}
		switch c := r.(type) {
		case *Literal:
			return cr.Column, c.Val, true
		case *ParamRef:
			v, err := eval(c, base)
			if err != nil {
				return "", Value{}, false
			}
			return cr.Column, v, true
		}
		return "", Value{}, false
	}
	if col, v, ok := try(b.L, b.R); ok {
		return col, v, true
	}
	return try(b.R, b.L)
}

func (s *Session) execCall(t *CallStmt, params []Value, named map[string]Value) (*Result, error) {
	proc, ok := s.db.procs[strings.ToLower(t.Name)]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such procedure %s", t.Name)
	}
	base := &env{params: params, named: named, session: s}
	args := make([]Value, len(t.Args))
	for i, a := range t.Args {
		v, err := eval(a, base)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	if proc.Native != nil {
		// Native procedures run on a child session: it shares this
		// statement's transaction (so the procedure's effects roll back
		// with the CALL) but is permanently marked re-entrant, routing
		// any SQL the procedure issues through the nested path instead
		// of deadlocking on the session/engine locks.
		child := &Session{db: s.db, id: s.id, applier: s.applier, txn: s.txn, locked: true, sink: s.sink}
		res, err := proc.Native(child, args)
		// Fold the child's accounting into the enclosing CALL statement.
		s.rowsScanned += child.rowsScanned
		if s.planTable == "" {
			s.planTable, s.planIndex = child.planTable, child.planIndex
		}
		return res, err
	}
	if len(args) != len(proc.Params) {
		return nil, fmt.Errorf("sqldb: procedure %s expects %d argument(s), got %d", proc.Name, len(proc.Params), len(args))
	}
	bound := map[string]Value{}
	for i, p := range proc.Params {
		bound[strings.ToLower(p)] = args[i]
	}
	var last *Result
	for _, st := range proc.Body {
		r, err := s.execStmtLocked(st, nil, bound)
		if err != nil {
			return nil, fmt.Errorf("sqldb: procedure %s: %w", proc.Name, err)
		}
		if r.IsQuery() {
			last = r
		}
	}
	if last == nil {
		last = &Result{}
	}
	return last, nil
}

func tableColMeta(tbl *Table, qualifier string) []colMeta {
	if qualifier == "" {
		qualifier = tbl.Name
	}
	cols := make([]colMeta, len(tbl.Columns))
	for i, c := range tbl.Columns {
		cols[i] = colMeta{table: strings.ToLower(qualifier), name: c.Name}
	}
	return cols
}
