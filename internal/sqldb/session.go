package sqldb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Session is a connection-like handle on a DB. A session may hold an
// explicit transaction (BEGIN ... COMMIT/ROLLBACK); outside of one, every
// statement autocommits.
//
// The workflow layers follow a one-session-per-instance contract; a
// session serializes its own top-level statements with an internal mutex,
// so parallel Flow branches of one instance sharing the instance session
// are safe (their statements interleave, they do not corrupt session
// state). Distinct instances must still use distinct sessions — an open
// transaction belongs to the whole session, not to a goroutine.
type Session struct {
	db *DB

	// id distinguishes sessions in the change stream (SetChangeSink):
	// replication replays interleaved transactions from many origin
	// sessions, and the id is how an Applier routes each statement onto
	// the replica session holding the matching open transaction. Child
	// sessions share their parent's id.
	id int64

	// applier marks a session minted by NewApplier: its writes bypass
	// the read-only replica gate (SetReadOnly) — they ARE the
	// replication stream — and are never re-captured by the change sink.
	applier bool

	// mu serializes top-level statement execution and Rollback on this
	// session. Re-entrant execution (child sessions, below) runs inside
	// the owner's critical section and bypasses it.
	mu  sync.Mutex
	txn *txn

	// snap is the executing statement's snapshot: the highest commit
	// sequence whose effects the statement sees (plus its own
	// transaction's pending versions). Taken at statement start.
	snap int64

	// locked marks a child session minted by execCall for native
	// procedures: the enclosing statement already holds the engine lock
	// and the session mutex, so the child's statements take the
	// re-entrant path. It is set at construction and never mutated, which
	// keeps the flag data-race-free even when the parent session is
	// shared across goroutines.
	locked bool

	// per-statement stats plumbing (see stats.go)
	sink        StatsSink // session-level override of the DB sink
	planTable   string    // primary access-path table of current stmt
	planIndex   string    // index probed by the current stmt ("" = scan)
	rowsScanned int64     // candidate rows read by the current stmt

	// ddlAffected is set by runStmt for successful DDL: the lowercased
	// object names whose cached statements must be invalidated after the
	// engine lock is released. Computed before execution so DROP INDEX
	// can still resolve its owner table.
	ddlAffected []string

	// runCtx, when bound, is the session's execution budget (the owning
	// workflow instance's deadline). Guarded by mu; checked at every
	// top-level statement boundary.
	runCtx context.Context
}

// ErrBudgetExhausted is wrapped by the error a statement boundary
// returns when the session's bound context has expired. It carries
// Temporary() == false through the wrapper, so resilience retry
// policies classify it permanent — retrying a statement cannot revive
// a dead budget.
var ErrBudgetExhausted = errors.New("sqldb: session budget exhausted")

// budgetError wraps ErrBudgetExhausted with the context cause and a
// permanent classification.
type budgetError struct{ cause error }

func (e *budgetError) Error() string {
	return ErrBudgetExhausted.Error() + ": " + e.cause.Error()
}
func (e *budgetError) Unwrap() error   { return ErrBudgetExhausted }
func (e *budgetError) Temporary() bool { return false }

// BindContext attaches (or with nil detaches) an execution budget to
// the session. Once the context is done, every subsequent top-level
// statement is refused at the boundary — before the ExecHook, before
// the engine lock — with an error wrapping ErrBudgetExhausted. A
// statement already executing is never interrupted (statement
// atomicity is preserved); open explicit transactions stay open so the
// owning layer's rollback handling runs normally.
func (s *Session) BindContext(ctx context.Context) {
	s.mu.Lock()
	s.runCtx = ctx
	s.mu.Unlock()
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.txn != nil && s.txn.explicit }

// DB returns the database this session is attached to.
func (s *Session) DB() *DB { return s.db }

// ID returns the session's database-unique id (the origin-session key
// of its statements in the change stream).
func (s *Session) ID() int64 { return s.id }

// Exec parses and executes one SQL statement with positional parameters.
// The parse goes through the database's statement cache, which keys
// plans by NORMALIZED text — literals extracted into bind slots — so
// repeated executions that differ only in literal values reuse one
// cached plan and report zero parse time (StmtStats.Cache records
// "hit" vs "miss").
func (s *Session) Exec(sql string, params ...Value) (*Result, error) {
	return s.execSQL(sql, params, nil)
}

// ExecNamed parses and executes one SQL statement binding :name parameters
// from the given map (keys are case-insensitive). Like Exec, it resolves
// the SQL text through the statement cache.
func (s *Session) ExecNamed(sql string, named map[string]Value) (*Result, error) {
	return s.execSQL(sql, nil, named)
}

// execSQL is the shared text-execution path behind Exec, ExecNamed, and
// the replication Applier: resolve through the plan cache, fold the
// text's extracted literals into the positional vector, and execute.
// The NORMALIZED text and the MERGED parameters are what flow to the
// change stream — a replica re-normalizing that text extracts nothing
// (the rendering is idempotent) and binds the same merged vector, so
// primary and replica execute the identical plan with identical inputs.
func (s *Session) execSQL(sql string, params []Value, named map[string]Value) (*Result, error) {
	ps, err := s.db.cachedParse(sql)
	if err != nil {
		return nil, err
	}
	merged, ok := mergeParams(params, ps.consts, ps.pattern)
	if !ok {
		// Fewer caller values than user slots: only an uncached parse of
		// the raw text can report the missing parameter by the caller's
		// own placeholder numbering (the error is raised lazily, and only
		// if the slot is actually referenced).
		start := time.Now()
		st, perr := Parse(sql)
		if perr != nil {
			return nil, perr
		}
		res, _, eerr := s.execStmt(st, nil, time.Since(start), CacheMiss, sql, params, named)
		return res, eerr
	}
	res, _, err := s.execStmt(ps.st, ps.fp, ps.parse, cacheLabel(ps.hit), ps.norm, merged, named)
	return res, err
}

func cacheLabel(hit bool) string {
	if hit {
		return CacheHit
	}
	return CacheMiss
}

// PreparedStmt is a parsed statement bound to a session, reusable with
// different parameters — the host-variable execution path the product
// layers use for repeated statements. Prepare bypasses the statement
// cache (the caller is doing its own statement reuse).
type PreparedStmt struct {
	s    *Session
	stmt Stmt
	src  string // original SQL text, for the change stream
	fp   fpSlot // cached latch footprint (see stmtFootprint)

	// One-time parse-charge handoff: pending marks the charge handed to
	// an in-flight execution (outcome unknown), charged marks it
	// consumed by an execution that ran. The split is what makes a
	// stale restoreParse after the charge was consumed a no-op —
	// a single "reported" flag re-armed unconditionally, letting a
	// hook-refused attempt resurrect a charge a concurrent successful
	// attempt had already reported, double-counting parse time.
	mu      sync.Mutex
	parse   time.Duration
	pending bool
	charged bool
}

// Prepare parses a statement once for repeated execution.
func (s *Session) Prepare(sql string) (*PreparedStmt, error) {
	start := time.Now()
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return &PreparedStmt{s: s, stmt: st, src: sql, parse: time.Since(start)}, nil
}

// takeParse returns the one-time parse cost if no execution has carried
// or consumed it yet, marking it in-flight (later executions report zero
// parse time — the point of preparing).
func (p *PreparedStmt) takeParse() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pending || p.charged {
		return 0
	}
	p.pending = true
	return p.parse
}

// consumeParse settles an in-flight charge after its execution actually
// ran: the parse cost is now in some StmtStats, permanently. parse is
// the value takeParse handed this execution — zero means it carried no
// charge and there is nothing to settle.
func (p *PreparedStmt) consumeParse(parse time.Duration) {
	if parse == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending = false
	p.charged = true
}

// restoreParse re-arms the parse charge when the execution it was handed
// to was refused before running (ExecHook fault injection): the next
// execution that actually runs must still account for the parse.
// Without this, a statement whose first attempt was chaos-refused would
// lose its parse cost forever and every StmtStats it ever emitted would
// claim Parse == 0. A restore arriving after the charge was consumed
// does nothing — charged stays set, so no later execution reports the
// parse a second time.
func (p *PreparedStmt) restoreParse(parse time.Duration) {
	if parse == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending = false
}

// Exec runs the prepared statement with positional parameters.
func (p *PreparedStmt) Exec(params ...Value) (*Result, error) {
	parse := p.takeParse()
	res, executed, err := p.s.execStmt(p.stmt, &p.fp, parse, "", p.src, params, nil)
	if executed {
		p.consumeParse(parse)
	} else {
		p.restoreParse(parse)
	}
	return res, err
}

// ExecNamed runs the prepared statement with named parameters.
func (p *PreparedStmt) ExecNamed(named map[string]Value) (*Result, error) {
	parse := p.takeParse()
	res, executed, err := p.s.execStmt(p.stmt, &p.fp, parse, "", p.src, nil, named)
	if executed {
		p.consumeParse(parse)
	} else {
		p.restoreParse(parse)
	}
	return res, err
}

// Query executes a statement and requires it to produce a result set.
func (s *Session) Query(sql string, params ...Value) (*Result, error) {
	r, err := s.Exec(sql, params...)
	if err != nil {
		return nil, err
	}
	if !r.IsQuery() {
		return nil, fmt.Errorf("sqldb: statement did not return rows")
	}
	return r, nil
}

// ExecStmt executes a pre-parsed statement. Top-level executions (not
// re-entrant ones) first pass through the database's ExecHook, so fault
// injection sees the same statement stream every session sends; they also
// emit per-statement StmtStats to the session's (or database's) sink
// after the engine lock is released. A pre-parsed statement carries no
// parse cost (StmtStats.Parse == 0).
//
// A pre-parsed statement also carries no SQL text, so a mutating
// ExecStmt is invisible to an installed change sink (SetChangeSink) —
// the miss is counted in ChangesMissed. Replication-facing callers use
// Exec/ExecNamed/Prepare, which capture the text.
func (s *Session) ExecStmt(st Stmt, params []Value, named map[string]Value) (*Result, error) {
	res, _, err := s.execStmt(st, nil, 0, "", "", params, named)
	return res, err
}

// readOnlyStmt reports whether a statement only reads database state and
// can therefore execute latch-free under the shared engine lock. SELECT
// may still advance sequences via NEXTVAL; Sequence is internally
// synchronized for exactly that reason.
func readOnlyStmt(st Stmt) bool {
	switch st.(type) {
	case *SelectStmt, *ExplainStmt:
		return true
	}
	return false
}

// isDDL reports whether a statement changes schema objects (tables,
// indexes, views, sequences, procedures). Successful DDL invalidates the
// cached statements that reference the affected objects.
func isDDL(st Stmt) bool {
	switch st.(type) {
	case *CreateTableStmt, *DropTableStmt, *AlterTableStmt,
		*CreateIndexStmt, *DropIndexStmt,
		*CreateViewStmt, *DropViewStmt,
		*CreateSequenceStmt, *DropSequenceStmt,
		*CreateProcedureStmt, *DropProcedureStmt:
		return true
	}
	return false
}

// execStmt is the top-level execution path: session mutex, ExecHook,
// then one of three locking regimes chosen by runStmt (latch-free
// shared read, per-table latches, or the exclusive engine lock),
// statement execution, then stats emission. parse and cache describe
// how the statement text was resolved (see Exec/cachedParse) and flow
// into the emitted StmtStats; src is the original SQL text when the
// caller has it (change-stream capture needs it). executed is false
// only when the ExecHook refused the statement before any work happened
// — prepared statements use that to re-arm their one-time parse charge.
//
// Autocommit statements that lose a first-writer-wins race are retried
// here against a fresh snapshot with exponential backoff before the
// conflict is surfaced; the backoff is charged to StmtStats.LockWait.
// Statements inside an explicit transaction are not retried — earlier
// statements of the transaction saw older snapshots, so the decision
// belongs to the caller.
func (s *Session) execStmt(st Stmt, fpc *fpSlot, parse time.Duration, cache string, src string, params []Value, named map[string]Value) (res *Result, executed bool, err error) {
	if s.locked {
		// Re-entrant execution (native procedure bodies running on a
		// child session): no hook, no stats — the enclosing statement
		// accounts for it.
		res, err = s.execStmtLocked(st, params, named)
		return res, true, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Deadline propagation: a session whose bound budget has expired
	// refuses the statement at the boundary. Like an ExecHook refusal,
	// nothing has executed (executed == false), so prepared statements
	// re-arm their one-time parse charge.
	if s.runCtx != nil {
		if cerr := s.runCtx.Err(); cerr != nil {
			s.db.deadlineRefusals.Add(1)
			return nil, false, &budgetError{cause: cerr}
		}
	}
	// Read-only replica gate: only applier sessions (the replication
	// stream itself) may mutate a database in replica mode. Refused at
	// the boundary like a hook refusal — nothing has executed.
	if !readOnlyStmt(st) && !s.applier && s.db.readOnly.Load() {
		return nil, false, &readOnlyError{kind: StmtKind(st)}
	}
	if h := s.db.currentExecHook(); h != nil {
		if err := h(StmtKind(st)); err != nil {
			return nil, false, err
		}
	}
	sink := s.sink
	if sink == nil {
		sink = s.db.currentStatsSink()
	}
	var stat *StmtStats
	var backoff time.Duration
	var conflictTable string
	canRetry := s.txn == nil
	for attempt := 0; ; attempt++ {
		stat, res, err = s.runStmt(st, fpc, parse, cache, src, params, named, sink != nil)
		if err == nil || !canRetry || attempt >= conflictRetryLimit {
			break
		}
		table, conflict := isWriteConflict(err)
		if !conflict {
			break
		}
		// All locks are released here (runStmt unwound fully); sleep,
		// then re-run against a fresh snapshot.
		d := conflictBackoff(attempt)
		backoff += d
		conflictTable = table
		time.Sleep(d)
	}
	if err == nil && isDDL(st) {
		s.db.invalidateStmtCacheFor(s.ddlAffected)
		s.ddlAffected = nil
	}
	if stat != nil {
		if backoff > 0 {
			stat.LockWait += backoff
			if conflictTable != "" {
				if stat.LockWaitByTable == nil {
					stat.LockWaitByTable = map[string]time.Duration{}
				}
				stat.LockWaitByTable[conflictTable] += backoff
			}
		}
		sink(*stat)
	}
	return res, true, err
}

// runStmt executes one attempt of a statement under the locking regime
// its shape requires:
//
//   - SELECT/EXPLAIN: shared engine lock only — snapshot reads, no
//     latches, never blocked by writers.
//   - DML, transaction control, and CALLs of SQL procedures: shared
//     engine lock plus per-table latches over the statement's static
//     footprint (exclusive on mutated tables, shared on read tables),
//     acquired in globally sorted name order — the deadlock-avoidance
//     rule.
//   - DDL, native procedures, and statements whose footprint cannot be
//     computed statically: the exclusive engine lock, which excludes
//     every other statement.
//
// Every attempt registers a snapshot for its lifetime (vacuum safety)
// and fully releases locks before returning.
func (s *Session) runStmt(st Stmt, fpc *fpSlot, parse time.Duration, cache, src string, params []Value, named map[string]Value, wantStats bool) (stat *StmtStats, res *Result, err error) {
	shared := readOnlyStmt(st)
	exclusive := false
	var fp []latchTarget
	// lockWait accumulates only time spent blocked on lock/latch
	// acquisition — the footprint computation between the engine lock and
	// the latches is CPU work, not waiting, and is deliberately untimed.
	// A successful TryLock is by definition a zero wait, so the common
	// uncontended case records an honest 0 instead of clock-read noise.
	var lockWait time.Duration
	if !s.db.mu.TryRLock() {
		lockStart := time.Now()
		s.db.mu.RLock()
		lockWait = time.Since(lockStart)
	}
	if !shared {
		var ok bool
		fp, ok = s.db.stmtFootprint(st, s.txn, fpc)
		if !ok {
			s.db.mu.RUnlock()
			if !s.db.mu.TryLock() {
				lockStart := time.Now()
				s.db.mu.Lock()
				lockWait += time.Since(lockStart)
			}
			exclusive = true
		}
	}
	var waits map[string]time.Duration
	if len(fp) > 0 {
		waits = acquireLatches(fp, true)
		for _, d := range waits {
			lockWait += d
		}
	}
	snap := s.db.acquireSnapshot()
	s.snap = snap
	defer func() {
		s.db.releaseSnapshot(snap)
		releaseLatches(fp)
		if exclusive {
			s.db.mu.Unlock()
		} else {
			s.db.mu.RUnlock()
		}
	}()
	if exclusive && isDDL(st) {
		// Resolved before execution: DROP INDEX needs the owner table
		// while the index still exists.
		s.ddlAffected = s.db.ddlAffected(st)
	}
	if !wantStats {
		res, err = s.execTop(st, src, params, named, fp)
		return nil, res, err
	}
	s.planTable, s.planIndex, s.rowsScanned = "", "", 0
	start := time.Now()
	res, err = s.execTop(st, src, params, named, fp)
	stat = &StmtStats{
		Start:           start,
		Kind:            StmtKind(st),
		Table:           s.planTable,
		Index:           s.planIndex,
		Plan:            "",
		Parse:           parse,
		Exec:            time.Since(start),
		LockWait:        lockWait,
		LockWaitByTable: waits,
		Cache:           cache,
		RowsScanned:     s.rowsScanned,
	}
	if s.planTable != "" {
		if tbl, terr := s.db.table(s.planTable); terr == nil {
			var idx *Index
			if s.planIndex != "" {
				idx = tbl.indexes[strings.ToLower(s.planIndex)]
			}
			stat.Plan = planLabel(tbl, idx)
		}
	}
	if res != nil {
		stat.RowsReturned = int64(len(res.Rows))
		stat.RowsAffected = res.RowsAffected
	}
	if err != nil {
		stat.Err = err.Error()
	}
	return stat, res, err
}

// execTop runs one top-level statement inside runStmt's locks: it
// handles transaction control, wraps other statements in a
// statement-local transaction when none is open (statement atomicity),
// resolves version stamps on completion, and emits the change-stream
// record. Commit stamping, change-sequence assignment, sink delivery,
// and open-transaction bookkeeping share one commitMu critical section
// — the invariant that keeps the change stream dense and exactly paired
// with BootstrapState floors.
func (s *Session) execTop(st Stmt, src string, params []Value, named map[string]Value, fp []latchTarget) (*Result, error) {
	switch st.(type) {
	case *BeginStmt:
		s.db.stmtCount.Add(1)
		if s.txn != nil {
			return nil, fmt.Errorf("sqldb: transaction already open")
		}
		s.txn = &txn{id: s.db.txnIDs.Add(1), explicit: true}
		s.db.commitMu.Lock()
		s.emitChange(st, src, params, named) // registers the open-txn buffer
		s.db.commitMu.Unlock()
		return &Result{}, nil
	case *CommitStmt:
		s.db.stmtCount.Add(1)
		if s.txn == nil {
			return nil, fmt.Errorf("sqldb: no transaction open")
		}
		tx := s.txn
		s.txn = nil
		s.db.commitMu.Lock()
		s.db.stampCommit(tx)
		s.emitChange(st, src, params, named)
		delete(s.db.openTxns, s.id)
		s.db.commitMu.Unlock()
		s.vacuumFootprint(fp)
		return &Result{}, nil
	case *RollbackStmt:
		s.db.stmtCount.Add(1)
		if s.txn == nil {
			return nil, fmt.Errorf("sqldb: no transaction open")
		}
		tx := s.txn
		s.txn = nil
		rollbackStamps(tx)
		s.db.commitMu.Lock()
		s.emitChange(st, src, params, named)
		delete(s.db.openTxns, s.id)
		s.db.commitMu.Unlock()
		s.vacuumFootprint(fp)
		return &Result{}, nil
	}

	local := s.txn == nil
	if local {
		s.txn = &txn{id: s.db.txnIDs.Add(1)}
	}
	res, err := s.execStmtLocked(st, params, named)
	tx := s.txn
	switch {
	case local && tx != nil:
		if err != nil {
			rollbackStamps(tx)
		} else {
			s.db.commitMu.Lock()
			s.db.stampCommit(tx) // no-op if a child session rolled back
			s.emitChange(st, src, params, named)
			s.db.commitMu.Unlock()
		}
		s.txn = nil
	case err == nil:
		// Explicit transaction (or a procedure body closed the local
		// one): effects stay pending; the statement is still captured.
		s.db.commitMu.Lock()
		s.emitChange(st, src, params, named)
		s.db.commitMu.Unlock()
		if tx != nil && tx.aborted {
			s.txn = nil // a child session's Rollback closed it
		}
	}
	if err == nil {
		s.vacuumFootprint(fp)
	}
	return res, err
}

// vacuumFootprint opportunistically vacuums the statement's
// write-latched tables while the latches are still held.
func (s *Session) vacuumFootprint(fp []latchTarget) {
	var minSnap int64
	computed := false
	for _, lt := range fp {
		if !lt.write || lt.t.dead.Load() < vacuumDeadThreshold {
			continue
		}
		if !computed {
			minSnap = s.db.minActiveSnapshot()
			computed = true
		}
		lt.t.maybeVacuum(minSnap)
	}
}

// emitChange hands a successfully executed statement to the change
// sink, stamped with the next change sequence number. The caller holds
// commitMu: sequence assignment, commit stamping, and sink delivery are
// one critical section, so the stream stays dense and every
// BootstrapState floor cuts it exactly at a committed boundary. The
// statement also still holds its table latches (or the exclusive engine
// lock), so sink order equals execution order on every table — the
// property the replica applier relies on.
//
// Statements of an open explicit transaction are additionally buffered
// in db.openTxns: a committed-only bootstrap dump excludes their
// pending rows, so BootstrapState hands the buffer to new replicas for
// priming. DDL is not buffered — its effects are schema, which the
// bootstrap script already carries.
//
// Applier sessions are skipped — re-capturing the replication stream on
// a replica would loop it. Mutating statements executed without source
// text (pre-parsed ExecStmt/ExecScript paths) cannot be captured and
// are counted in ChangesMissed instead.
func (s *Session) emitChange(st Stmt, src string, params []Value, named map[string]Value) {
	if s.applier || readOnlyStmt(st) {
		return
	}
	sink := s.db.currentChangeSink()
	if sink == nil {
		return
	}
	if src == "" {
		s.db.changesMissed.Add(1)
		return
	}
	c := Change{
		Seq:     s.db.changeSeq.Add(1),
		Session: s.id,
		Kind:    StmtKind(st),
		SQL:     src,
	}
	if len(params) > 0 {
		c.Params = append([]Value(nil), params...)
	}
	if len(named) > 0 {
		c.Named = make(map[string]Value, len(named))
		for k, v := range named {
			c.Named[k] = v
		}
	}
	if s.txn != nil && s.txn.explicit && !s.txn.aborted && !isDDL(st) {
		if s.db.openTxns == nil {
			s.db.openTxns = map[int64][]Change{}
		}
		s.db.openTxns[s.id] = append(s.db.openTxns[s.id], c)
	}
	sink(c)
}

// execStmtLocked executes one statement with the engine locks already
// held — the dispatch body shared by the top-level path and re-entrant
// execution (native-procedure child sessions, SQL procedure bodies).
// When no transaction is open — only possible re-entrantly, after a
// procedure body closed one — the statement runs in its own local
// transaction resolved here.
func (s *Session) execStmtLocked(st Stmt, params []Value, named map[string]Value) (res *Result, err error) {
	s.db.stmtCount.Add(1)
	lower := func(m map[string]Value) map[string]Value {
		if m == nil {
			return nil
		}
		out := make(map[string]Value, len(m))
		for k, v := range m {
			out[strings.ToLower(k)] = v
		}
		return out
	}
	named = lower(named)

	switch st.(type) {
	case *BeginStmt:
		if s.txn != nil {
			return nil, fmt.Errorf("sqldb: transaction already open")
		}
		s.txn = &txn{id: s.db.txnIDs.Add(1), explicit: true}
		return &Result{}, nil
	case *CommitStmt:
		if s.txn == nil {
			return nil, fmt.Errorf("sqldb: no transaction open")
		}
		s.db.commitMu.Lock()
		s.db.stampCommit(s.txn)
		delete(s.db.openTxns, s.id)
		s.db.commitMu.Unlock()
		s.txn = nil
		return &Result{}, nil
	case *RollbackStmt:
		if s.txn == nil {
			return nil, fmt.Errorf("sqldb: no transaction open")
		}
		rollbackStamps(s.txn)
		s.db.commitMu.Lock()
		delete(s.db.openTxns, s.id)
		s.db.commitMu.Unlock()
		s.txn = nil
		return &Result{}, nil
	}

	local := false
	if s.txn == nil {
		s.txn = &txn{id: s.db.txnIDs.Add(1)}
		local = true
	}
	defer func() {
		if local && s.txn != nil {
			if err != nil {
				rollbackStamps(s.txn)
			} else {
				s.db.commitMu.Lock()
				s.db.stampCommit(s.txn)
				s.db.commitMu.Unlock()
			}
			s.txn = nil
		}
	}()

	switch t := st.(type) {
	case *SelectStmt:
		base := &env{params: params, named: named, session: s}
		res, err = s.execSelect(t, base)
		if err == nil {
			b := res.approxBytes()
			s.db.bytesReturned.Add(b)
		}
		return res, err
	case *InsertStmt:
		return s.execInsert(t, params, named)
	case *UpdateStmt:
		return s.execUpdate(t, params, named)
	case *DeleteStmt:
		return s.execDelete(t, params, named)
	case *CreateTableStmt:
		return s.execCreateTable(t, params, named)
	case *DropTableStmt:
		lc := strings.ToLower(t.Table)
		tbl, ok := s.db.tables[lc]
		if !ok {
			if t.IfExists {
				return &Result{}, nil
			}
			return nil, fmt.Errorf("sqldb: no such table %s", t.Table)
		}
		for in := range tbl.indexes {
			delete(s.db.indexOwner, in)
		}
		delete(s.db.tables, lc)
		return &Result{}, nil
	case *TruncateStmt:
		return s.execTruncate(t)
	case *CreateIndexStmt:
		tbl, err := s.db.table(t.Table)
		if err != nil {
			return nil, err
		}
		lc := strings.ToLower(t.Name)
		if _, exists := s.db.indexOwner[lc]; exists {
			return nil, fmt.Errorf("sqldb: index %s already exists", t.Name)
		}
		idx, err := newIndex(t.Name, tbl, t.Columns, t.Unique)
		if err != nil {
			return nil, err
		}
		tbl.indexes[lc] = idx
		s.db.indexOwner[lc] = tbl
		return &Result{}, nil
	case *DropIndexStmt:
		lc := strings.ToLower(t.Name)
		tbl, ok := s.db.indexOwner[lc]
		if !ok {
			if t.IfExists {
				return &Result{}, nil
			}
			return nil, fmt.Errorf("sqldb: no such index %s", t.Name)
		}
		delete(tbl.indexes, lc)
		delete(s.db.indexOwner, lc)
		return &Result{}, nil
	case *CreateSequenceStmt:
		lc := strings.ToLower(t.Name)
		if _, exists := s.db.sequences[lc]; exists {
			return nil, fmt.Errorf("sqldb: sequence %s already exists", t.Name)
		}
		s.db.sequences[lc] = &Sequence{Name: t.Name, next: t.Start, increment: t.Increment}
		return &Result{}, nil
	case *DropSequenceStmt:
		lc := strings.ToLower(t.Name)
		if _, ok := s.db.sequences[lc]; !ok {
			if t.IfExists {
				return &Result{}, nil
			}
			return nil, fmt.Errorf("sqldb: no such sequence %s", t.Name)
		}
		delete(s.db.sequences, lc)
		return &Result{}, nil
	case *CreateProcedureStmt:
		body, err := ParseScript(t.Body)
		if err != nil {
			return nil, fmt.Errorf("sqldb: procedure %s body: %w", t.Name, err)
		}
		lc := strings.ToLower(t.Name)
		if _, exists := s.db.procs[lc]; exists {
			return nil, fmt.Errorf("sqldb: procedure %s already exists", t.Name)
		}
		s.db.procs[lc] = &Procedure{Name: t.Name, Params: t.Params, Body: body, src: t.Body}
		s.db.footGen.Add(1) // CALL footprints expand procedure bodies
		return &Result{}, nil
	case *DropProcedureStmt:
		lc := strings.ToLower(t.Name)
		if _, ok := s.db.procs[lc]; !ok {
			if t.IfExists {
				return &Result{}, nil
			}
			return nil, fmt.Errorf("sqldb: no such procedure %s", t.Name)
		}
		delete(s.db.procs, lc)
		s.db.footGen.Add(1)
		return &Result{}, nil
	case *CallStmt:
		return s.execCall(t, params, named)
	case *ExplainStmt:
		return s.execExplain(t, params, named)
	case *AlterTableStmt:
		return s.execAlterTable(t, params, named)
	case *CreateViewStmt:
		res, err = s.execCreateView(t)
		if err == nil {
			s.db.footGen.Add(1) // footprints expand view references
		}
		return res, err
	case *DropViewStmt:
		res, err = s.execDropView(t)
		if err == nil {
			s.db.footGen.Add(1)
		}
		return res, err
	}
	return nil, fmt.Errorf("sqldb: unsupported statement %T", st)
}

// Rollback aborts any open explicit transaction (no-op otherwise). It is
// used by the workflow layers when a fault aborts an atomic SQL sequence.
//
// A rollback that closed a transaction is emitted to the change stream
// exactly like an executed ROLLBACK statement would be: the replica's
// mapped session holds the mirrored transaction open, and without the
// record it would stay open forever — the origin session's next BEGIN
// would then fail on the replica and wedge replication.
func (s *Session) Rollback() {
	if s.locked {
		// Re-entrant (child session): the enclosing statement already
		// holds the engine lock and the write set's latches. Flipping
		// the stamps marks the shared transaction aborted, which the
		// parent's statement-finalize observes and skips committing.
		if s.txn != nil && !s.txn.aborted {
			rollbackStamps(s.txn)
			s.db.commitMu.Lock()
			s.emitChange(&RollbackStmt{}, "ROLLBACK", nil, nil)
			delete(s.db.openTxns, s.id)
			s.db.commitMu.Unlock()
		}
		s.txn = nil
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.txn == nil {
		return
	}
	tx := s.txn
	s.txn = nil
	s.db.mu.RLock()
	fp := s.db.writeSetLatches(tx)
	acquireLatches(fp, false)
	rollbackStamps(tx)
	s.db.commitMu.Lock()
	s.emitChange(&RollbackStmt{}, "ROLLBACK", nil, nil)
	delete(s.db.openTxns, s.id)
	s.db.commitMu.Unlock()
	releaseLatches(fp)
	s.db.mu.RUnlock()
}

func (s *Session) nextSequenceValue(name string) (Value, error) {
	seq, ok := s.db.sequences[strings.ToLower(name)]
	if !ok {
		return Null(), fmt.Errorf("sqldb: no such sequence %s", name)
	}
	return Int(seq.Next()), nil
}

func (s *Session) execInsert(t *InsertStmt, params []Value, named map[string]Value) (*Result, error) {
	tbl, err := s.db.table(t.Table)
	if err != nil {
		return nil, err
	}
	// Determine target column positions.
	targets := make([]int, 0, len(tbl.Columns))
	if len(t.Columns) == 0 {
		for i := range tbl.Columns {
			targets = append(targets, i)
		}
	} else {
		for _, c := range t.Columns {
			ci := tbl.ColumnIndex(c)
			if ci < 0 {
				return nil, fmt.Errorf("sqldb: no column %s in table %s", c, t.Table)
			}
			targets = append(targets, ci)
		}
	}
	base := &env{params: params, named: named, session: s}
	// assigned marks target positions once — it is identical for every
	// row — and fullRow completes one source row into table order (the
	// per-row slice lives on as the row's values, so it cannot be reused).
	assigned := make([]bool, len(tbl.Columns))
	for _, ci := range targets {
		assigned[ci] = true
	}
	fullRow := func(src []Value) ([]Value, error) {
		full := make([]Value, len(tbl.Columns))
		for i, ci := range targets {
			full[ci] = src[i]
		}
		for ci, col := range tbl.Columns {
			if !assigned[ci] && col.Default != nil {
				v, err := eval(col.Default, base)
				if err != nil {
					return nil, err
				}
				full[ci] = v
			}
		}
		return full, nil
	}
	insertOne := func(src []Value) error {
		full, err := fullRow(src)
		if err != nil {
			return err
		}
		r, err := tbl.insertVersion(full, s.txn.id)
		if err != nil {
			return err
		}
		s.txn.ws = append(s.txn.ws, wsEntry{t: tbl, r: r, kind: wsInsert})
		return nil
	}
	n := 0
	if t.Query != nil {
		qres, err := s.execSelect(t.Query, base)
		if err != nil {
			return nil, err
		}
		if len(qres.Columns) != len(targets) {
			return nil, fmt.Errorf("sqldb: INSERT ... SELECT column count mismatch: %d vs %d", len(targets), len(qres.Columns))
		}
		for _, src := range qres.Rows {
			if err := insertOne(src); err != nil {
				return nil, err
			}
			n++
		}
	} else {
		// Evaluate each VALUES row into one reusable scratch slice; the
		// completed table-order row is the only per-row allocation.
		vals := make([]Value, len(targets))
		for _, rowExprs := range t.Rows {
			if len(rowExprs) != len(targets) {
				return nil, fmt.Errorf("sqldb: INSERT value count mismatch: %d vs %d", len(targets), len(rowExprs))
			}
			for i, e := range rowExprs {
				v, err := eval(e, base)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			if err := insertOne(vals); err != nil {
				return nil, err
			}
			n++
		}
	}
	s.db.rowsWritten.Add(int64(n))
	return &Result{RowsAffected: n}, nil
}

func (s *Session) execUpdate(t *UpdateStmt, params []Value, named map[string]Value) (*Result, error) {
	tbl, err := s.db.table(t.Table)
	if err != nil {
		return nil, err
	}
	cols := tableColMeta(tbl, "")
	setIdx := make([]int, len(t.Sets))
	for i, sc := range t.Sets {
		ci := tbl.ColumnIndex(sc.Column)
		if ci < 0 {
			return nil, fmt.Errorf("sqldb: no column %s in table %s", sc.Column, t.Table)
		}
		setIdx[i] = ci
	}
	base := &env{params: params, named: named, session: s}
	// Snapshot matching rows first: predicates must see pre-update state.
	matched, err := s.filterRows(tbl, cols, t.Where, base)
	if err != nil {
		return nil, err
	}
	tid := s.txn.id
	n := 0
	// One scratch row environment serves every matched row — eval never
	// retains its environment past the call.
	rowEnv := base.child(cols, nil)
	for _, r := range matched {
		rowEnv.row = r.Values
		newVals := make([]Value, len(r.Values))
		copy(newVals, r.Values)
		for i, sc := range t.Sets {
			v, err := eval(sc.Value, rowEnv)
			if err != nil {
				return nil, err
			}
			newVals[setIdx[i]] = v
		}
		// An update is a claim of the old version plus an insert of the
		// new one. If the insert fails (constraint, coercion), release
		// the claim immediately: inside an explicit transaction the
		// statement's earlier row updates survive, and a dangling claim
		// would silently become a delete at commit.
		if err := tbl.claimRow(r, tid); err != nil {
			return nil, err
		}
		nr, err := tbl.insertVersion(newVals, tid)
		if err != nil {
			tbl.unclaimRow(r, tid)
			return nil, err
		}
		s.txn.ws = append(s.txn.ws,
			wsEntry{t: tbl, r: r, kind: wsClaim},
			wsEntry{t: tbl, r: nr, kind: wsInsert})
		n++
	}
	s.db.rowsWritten.Add(int64(n))
	return &Result{RowsAffected: n}, nil
}

func (s *Session) execDelete(t *DeleteStmt, params []Value, named map[string]Value) (*Result, error) {
	tbl, err := s.db.table(t.Table)
	if err != nil {
		return nil, err
	}
	cols := tableColMeta(tbl, "")
	base := &env{params: params, named: named, session: s}
	matched, err := s.filterRows(tbl, cols, t.Where, base)
	if err != nil {
		return nil, err
	}
	tid := s.txn.id
	for _, r := range matched {
		if err := tbl.claimRow(r, tid); err != nil {
			return nil, err
		}
		s.txn.ws = append(s.txn.ws, wsEntry{t: tbl, r: r, kind: wsClaim})
	}
	s.db.rowsWritten.Add(int64(len(matched)))
	return &Result{RowsAffected: len(matched)}, nil
}

func (s *Session) execTruncate(t *TruncateStmt) (*Result, error) {
	tbl, err := s.db.table(t.Table)
	if err != nil {
		return nil, err
	}
	tid := s.txn.id
	n := 0
	for _, r := range tbl.snapshotRows() {
		if !s.rowVisible(r) {
			continue
		}
		if err := tbl.claimRow(r, tid); err != nil {
			return nil, err
		}
		s.txn.ws = append(s.txn.ws, wsEntry{t: tbl, r: r, kind: wsClaim})
		n++
	}
	s.db.rowsWritten.Add(int64(n))
	return &Result{RowsAffected: n}, nil
}

// filterRows returns the visible rows of tbl matching the predicate,
// using an index for simple equality predicates when one applies.
func (s *Session) filterRows(tbl *Table, cols []colMeta, where Expr, base *env) ([]*Row, error) {
	candidates := s.indexCandidates(tbl, where, base)
	if candidates == nil {
		s.notePlan(tbl, nil)
		candidates = tbl.snapshotRows()
	}
	var matched []*Row
	// One scratch row environment serves every candidate, and the
	// predicate is compiled once into a closure tree instead of being
	// AST-walked per row (see compileExpr).
	rowEnv := base.child(cols, nil)
	var pred evalFn
	if where != nil {
		pred = compileExpr(where)
	}
	for _, r := range candidates {
		if !s.rowVisible(r) {
			continue
		}
		s.db.rowsRead.Add(1)
		s.rowsScanned++
		if pred != nil {
			rowEnv.row = r.Values
			v, err := pred(rowEnv)
			if err != nil {
				return nil, err
			}
			if !v.Truth() {
				continue
			}
		}
		matched = append(matched, r)
	}
	return matched, nil
}

// indexCandidates inspects an AND-decomposed predicate for equality
// comparisons against constants/params and probes a matching index (the
// same choice EXPLAIN reports). It returns nil when no index applies
// (meaning: scan all rows). The returned slice is a private copy;
// callers still apply visibility filtering.
func (s *Session) indexCandidates(tbl *Table, where Expr, base *env) []*Row {
	if where == nil {
		return nil
	}
	eq := map[string]Value{}
	if !collectEqualities(where, base, eq) || len(eq) == 0 {
		// Collected equalities are valid necessary conditions only if
		// the whole predicate is a conjunction.
		return nil
	}
	idx := s.chooseIndex(tbl, where, base)
	if idx == nil {
		return nil
	}
	s.notePlan(tbl, idx)
	vals := make([]Value, 0, len(idx.Columns))
	for _, c := range idx.Columns {
		vals = append(vals, eq[strings.ToLower(c)])
	}
	return idx.lookup(vals)
}

// collectEqualities walks a conjunction and records column = constant
// bindings. It returns false if the expression contains disjunctions or
// other shapes that make index probing unsound.
func collectEqualities(x Expr, base *env, out map[string]Value) bool {
	switch t := x.(type) {
	case *BinaryExpr:
		switch t.Op {
		case "AND":
			return collectEqualities(t.L, base, out) && collectEqualities(t.R, base, out)
		case "=":
			col, val, ok := constEquality(t, base)
			if ok {
				out[strings.ToLower(col)] = val
			}
			return true
		case "OR":
			return false
		default:
			return true // other comparisons narrow further; scan handles them
		}
	case *UnaryExpr:
		if t.Op == "NOT" {
			return false
		}
		return true
	default:
		return true
	}
}

// constEquality matches col = <constant> or <constant> = col where the
// constant side is a literal or parameter.
func constEquality(b *BinaryExpr, base *env) (string, Value, bool) {
	try := func(l, r Expr) (string, Value, bool) {
		cr, ok := l.(*ColumnRef)
		if !ok {
			return "", Value{}, false
		}
		switch c := r.(type) {
		case *Literal:
			return cr.Column, c.Val, true
		case *ParamRef:
			v, err := eval(c, base)
			if err != nil {
				return "", Value{}, false
			}
			return cr.Column, v, true
		}
		return "", Value{}, false
	}
	if col, v, ok := try(b.L, b.R); ok {
		return col, v, true
	}
	return try(b.R, b.L)
}

func (s *Session) execCall(t *CallStmt, params []Value, named map[string]Value) (*Result, error) {
	proc, ok := s.db.procs[strings.ToLower(t.Name)]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such procedure %s", t.Name)
	}
	base := &env{params: params, named: named, session: s}
	args := make([]Value, len(t.Args))
	for i, a := range t.Args {
		v, err := eval(a, base)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	if proc.Native != nil {
		// Native procedures run on a child session: it shares this
		// statement's transaction (so the procedure's effects roll back
		// with the CALL) but is permanently marked re-entrant, routing
		// any SQL the procedure issues through the nested path instead
		// of deadlocking on the session/engine locks.
		child := &Session{db: s.db, id: s.id, applier: s.applier, txn: s.txn, snap: s.snap, locked: true, sink: s.sink}
		res, err := proc.Native(child, args)
		// Fold the child's accounting into the enclosing CALL statement.
		s.rowsScanned += child.rowsScanned
		if s.planTable == "" {
			s.planTable, s.planIndex = child.planTable, child.planIndex
		}
		return res, err
	}
	if len(args) != len(proc.Params) {
		return nil, fmt.Errorf("sqldb: procedure %s expects %d argument(s), got %d", proc.Name, len(proc.Params), len(args))
	}
	bound := map[string]Value{}
	for i, p := range proc.Params {
		bound[strings.ToLower(p)] = args[i]
	}
	var last *Result
	for _, st := range proc.Body {
		r, err := s.execStmtLocked(st, nil, bound)
		if err != nil {
			return nil, fmt.Errorf("sqldb: procedure %s: %w", proc.Name, err)
		}
		if r.IsQuery() {
			last = r
		}
	}
	if last == nil {
		last = &Result{}
	}
	return last, nil
}

func tableColMeta(tbl *Table, qualifier string) []colMeta {
	if qualifier == "" {
		qualifier = tbl.Name
	}
	q := strings.ToLower(qualifier)
	cols := make([]colMeta, len(tbl.Columns))
	for i, c := range tbl.Columns {
		cols[i] = colMeta{table: q, name: c.Name}
	}
	return cols
}
