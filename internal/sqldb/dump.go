package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Dump serializes the database — schemas, rows, secondary indexes,
// sequences, and SQL-bodied procedures — as a SQL script that, executed
// against an empty database (DB.ExecScript), reproduces its state.
// Native (Go-registered) procedures cannot be dumped and are emitted as
// comments.
//
// The dump is a committed-only snapshot: it is taken under the
// exclusive engine lock (no statement is mid-flight, no commit is
// mid-stamp) and contains exactly the row versions visible at the
// current commit sequence. Another session's open transaction
// contributes nothing — its pending rows cannot leak into a dump and
// then be rolled back on the primary.
func (db *DB) Dump() string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.dumpLocked()
}

// DumpWithSeq returns the committed-only dump together with the change
// sequence number it is consistent with (see ChangeSeq): both are read
// under one hold of the exclusive engine lock, and change capture
// advances the sequence only inside statements (which hold the shared
// lock), so no change can slip between them. The pair is a replica
// bootstrap point: execute the script, then apply only changes with Seq
// greater than the returned sequence.
//
// If any session holds an open explicit transaction at dump time, its
// already-streamed statements (Seq <= floor) are NOT in the dump —
// their rows are uncommitted. A replica bootstrapped from this pair
// alone would lose those writes when the transaction later commits; use
// BootstrapState, which also returns the pending statements for
// priming.
func (db *DB) DumpWithSeq() (string, int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.dumpLocked(), db.changeSeq.Load()
}

// BootstrapState is the full replica bootstrap point: the committed-only
// dump script, the change-sequence floor it is consistent with, and the
// statements of transactions still open at the floor — every change
// those transactions have already put on the stream (Seq <= floor),
// whose effects the committed-only dump deliberately excludes. A new
// replica executes the script, primes the pending statements
// (Applier.Prime), and then applies the live stream from floor+1; the
// open transactions resolve when their COMMIT or ROLLBACK arrives.
func (db *DB) BootstrapState() (script string, floor int64, pending []Change) {
	db.mu.Lock()
	defer db.mu.Unlock()
	script = db.dumpLocked()
	floor = db.changeSeq.Load()
	for _, buf := range db.openTxns {
		pending = append(pending, buf...)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].Seq < pending[j].Seq })
	return script, floor, pending
}

func (db *DB) dumpLocked() string {
	snap := db.commitSeq.Load()
	var b strings.Builder

	tableNames := make([]string, 0, len(db.tables))
	for n := range db.tables {
		tableNames = append(tableNames, n)
	}
	sort.Strings(tableNames)
	for _, tn := range tableNames {
		t := db.tables[tn]
		var cols []string
		for _, c := range t.Columns {
			col := fmt.Sprintf("%s %s", c.Name, c.Type)
			if c.PrimaryKey {
				col += " PRIMARY KEY"
			} else if c.NotNull {
				col += " NOT NULL"
			}
			cols = append(cols, col)
		}
		fmt.Fprintf(&b, "CREATE TABLE %s (%s);\n", t.Name, strings.Join(cols, ", "))
		for _, r := range t.rows {
			if !visibleAt(r, snap, 0) {
				continue // uncommitted, rolled back, or deleted version
			}
			vals := make([]string, len(r.Values))
			for i, v := range r.Values {
				vals[i] = v.SQLLiteral()
			}
			fmt.Fprintf(&b, "INSERT INTO %s VALUES (%s);\n", t.Name, strings.Join(vals, ", "))
		}
		idxNames := make([]string, 0, len(t.indexes))
		for n := range t.indexes {
			idxNames = append(idxNames, n)
		}
		sort.Strings(idxNames)
		for _, in := range idxNames {
			idx := t.indexes[in]
			if idx == t.pkIndex {
				continue // implied by PRIMARY KEY
			}
			unique := ""
			if idx.Unique {
				unique = "UNIQUE "
			}
			fmt.Fprintf(&b, "CREATE %sINDEX %s ON %s (%s);\n",
				unique, idx.Name, t.Name, strings.Join(idx.Columns, ", "))
		}
	}

	viewNames := make([]string, 0, len(db.views))
	for n := range db.views {
		viewNames = append(viewNames, n)
	}
	sort.Strings(viewNames)
	for _, vn := range viewNames {
		v := db.views[vn]
		if v.src == "" {
			fmt.Fprintf(&b, "-- view %s has no recorded definition\n", v.Name)
			continue
		}
		fmt.Fprintf(&b, "CREATE VIEW %s AS %s;\n", v.Name, v.src)
	}

	seqNames := make([]string, 0, len(db.sequences))
	for n := range db.sequences {
		seqNames = append(seqNames, n)
	}
	sort.Strings(seqNames)
	for _, sn := range seqNames {
		s := db.sequences[sn]
		next, inc := s.state()
		fmt.Fprintf(&b, "CREATE SEQUENCE %s START WITH %d INCREMENT BY %d;\n",
			s.Name, next, inc)
	}

	procNames := make([]string, 0, len(db.procs))
	for n := range db.procs {
		procNames = append(procNames, n)
	}
	sort.Strings(procNames)
	for _, pn := range procNames {
		p := db.procs[pn]
		if p.Native != nil {
			fmt.Fprintf(&b, "-- native procedure %s cannot be dumped\n", p.Name)
			continue
		}
		if p.src == "" {
			continue
		}
		params := strings.Join(p.Params, ", ")
		fmt.Fprintf(&b, "CREATE PROCEDURE %s (%s) AS '%s';\n",
			p.Name, params, strings.ReplaceAll(p.src, "'", "''"))
	}
	return b.String()
}
