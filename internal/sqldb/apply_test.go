package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// streamTo installs a change sink on primary that forwards every change
// into the returned slice pointer (synchronously; tests are
// single-goroutine unless noted).
func captureChanges(db *DB) *[]Change {
	var changes []Change
	p := &changes
	db.SetChangeSink(func(c Change) { *p = append(*p, c) })
	return p
}

func TestChangeStreamReplaysOnReplica(t *testing.T) {
	primary := Open("p")
	changes := captureChanges(primary)

	s := primary.Session()
	mustExec := func(sql string, params ...Value) {
		t.Helper()
		if _, err := s.Exec(sql, params...); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR)")
	mustExec("CREATE SEQUENCE ids START WITH 10")
	mustExec("INSERT INTO t VALUES (NEXTVAL('ids'), ?)", Str("a"))
	mustExec("INSERT INTO t VALUES (NEXTVAL('ids'), ?)", Str("b"))
	mustExec("UPDATE t SET name = ? WHERE id = ?", Str("a2"), Int(10))
	if _, err := s.ExecNamed("DELETE FROM t WHERE id = :id", map[string]Value{"id": Int(11)}); err != nil {
		t.Fatal(err)
	}
	// SELECTs must not appear in the stream.
	if _, err := s.Query("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}

	replica := Open("r")
	ap := NewApplier(replica, 0)
	for _, c := range *changes {
		if c.Kind == "SELECT" {
			t.Fatalf("SELECT captured in change stream: %+v", c)
		}
		if err := ap.Apply(c); err != nil {
			t.Fatal(err)
		}
	}

	pd, rd := primary.Dump(), replica.Dump()
	if pd != rd {
		t.Fatalf("replica diverged:\nprimary:\n%s\nreplica:\n%s", pd, rd)
	}
	// Sequence state must replicate too (NEXTVAL advanced identically).
	res, err := replica.Exec("SELECT NEXTVAL('ids')")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 12 {
		t.Fatalf("replica sequence at %d, want 12", n)
	}
}

// TestChangeStreamInterleavedTransactions: two primary sessions
// interleave explicit transactions, one commits and one rolls back; the
// applier routes by origin session so the replica converges to the
// committed state only.
func TestChangeStreamInterleavedTransactions(t *testing.T) {
	primary := Open("p")
	primary.MustExec("CREATE TABLE t (id INTEGER)")
	changes := captureChanges(primary)

	s1, s2 := primary.Session(), primary.Session()
	step := func(s *Session, sql string) {
		t.Helper()
		if _, err := s.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	step(s1, "BEGIN")
	step(s2, "BEGIN")
	step(s1, "INSERT INTO t VALUES (1)")
	step(s2, "INSERT INTO t VALUES (100)")
	step(s1, "INSERT INTO t VALUES (2)")
	step(s2, "ROLLBACK")
	step(s1, "COMMIT")

	replica := Open("r")
	replica.MustExec("CREATE TABLE t (id INTEGER)")
	ap := NewApplier(replica, 0)
	for _, c := range *changes {
		if err := ap.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	res := replica.MustExec("SELECT COUNT(*) FROM t")
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("replica has %d rows, want 2 (s2's txn rolled back)", n)
	}
	if ap.OpenTransactions() != 0 {
		t.Fatalf("replica holds %d open txns after balanced stream", ap.OpenTransactions())
	}
}

// TestApplierAbortOpen: a primary that dies mid-transaction leaves the
// replica's matching session open; AbortOpen rolls it back.
func TestApplierAbortOpen(t *testing.T) {
	primary := Open("p")
	primary.MustExec("CREATE TABLE t (id INTEGER)")
	changes := captureChanges(primary)

	s := primary.Session()
	s.Exec("BEGIN")
	s.Exec("INSERT INTO t VALUES (1)")
	// ... primary crashes: no COMMIT ever captured.

	replica := Open("r")
	replica.MustExec("CREATE TABLE t (id INTEGER)")
	ap := NewApplier(replica, 0)
	for _, c := range *changes {
		if err := ap.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	if ap.OpenTransactions() != 1 {
		t.Fatalf("open txns = %d, want 1", ap.OpenTransactions())
	}
	if n := ap.AbortOpen(); n != 1 {
		t.Fatalf("AbortOpen rolled back %d, want 1", n)
	}
	res := replica.MustExec("SELECT COUNT(*) FROM t")
	if n, _ := res.Rows[0][0].AsInt(); n != 0 {
		t.Fatalf("replica has %d rows after abort, want 0", n)
	}
}

// TestBootstrapFloorSkipsDumpedChanges: a replica bootstrapped from
// DumpWithSeq must not re-apply changes already contained in the dump.
func TestBootstrapFloorSkipsDumpedChanges(t *testing.T) {
	primary := Open("p")
	changes := captureChanges(primary)
	s := primary.Session()
	s.Exec("CREATE TABLE t (id INTEGER)")
	s.Exec("INSERT INTO t VALUES (1)")

	script, seq := primary.DumpWithSeq()
	if seq != 2 {
		t.Fatalf("bootstrap seq = %d, want 2", seq)
	}

	s.Exec("INSERT INTO t VALUES (2)")

	replica := Open("r")
	if _, err := replica.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	ap := NewApplier(replica, seq)
	for _, c := range *changes {
		if err := ap.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	if ap.Skipped() != 2 || ap.Applied() != 1 {
		t.Fatalf("skipped=%d applied=%d, want 2/1", ap.Skipped(), ap.Applied())
	}
	res := replica.MustExec("SELECT COUNT(*) FROM t")
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("replica has %d rows, want 2 (no double-apply)", n)
	}
}

func TestReadOnlyReplicaRefusesWrites(t *testing.T) {
	db := Open("r")
	db.MustExec("CREATE TABLE t (id INTEGER)")
	db.SetReadOnly(true)

	if _, err := db.Exec("INSERT INTO t VALUES (1)"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("INSERT on read-only replica: err = %v, want ErrReadOnly", err)
	}
	var tmp interface{ Temporary() bool }
	if err := func() error { _, err := db.Exec("DROP TABLE t"); return err }(); !errors.As(err, &tmp) || tmp.Temporary() {
		t.Fatalf("read-only refusal must be permanent, got %v", err)
	}
	// Reads still serve.
	if _, err := db.Exec("SELECT COUNT(*) FROM t"); err != nil {
		t.Fatalf("SELECT on read-only replica: %v", err)
	}
	// Applier sessions still write.
	ap := NewApplier(db, 0)
	if err := ap.Apply(Change{Seq: 1, Session: 7, Kind: "INSERT", SQL: "INSERT INTO t VALUES (1)"}); err != nil {
		t.Fatalf("applier write on read-only replica: %v", err)
	}
	db.SetReadOnly(false)
	if _, err := db.Exec("INSERT INTO t VALUES (2)"); err != nil {
		t.Fatalf("write after leaving replica mode: %v", err)
	}
}

// TestChangeStreamCapturesPreparedAndCall: prepared statements carry
// their text into the stream; CALL replays the procedure on the
// replica.
func TestChangeStreamCapturesPreparedAndCall(t *testing.T) {
	primary := Open("p")
	changes := captureChanges(primary)
	s := primary.Session()
	s.Exec("CREATE TABLE t (id INTEGER, v VARCHAR)")
	s.Exec(`CREATE PROCEDURE bump (pid) AS 'UPDATE t SET v = ''bumped'' WHERE id = :pid'`)
	ps, err := s.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ps.Exec(Int(int64(i)), Str(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Exec("CALL bump(1)"); err != nil {
		t.Fatal(err)
	}

	replica := Open("r")
	ap := NewApplier(replica, 0)
	for _, c := range *changes {
		if err := ap.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	if pd, rd := primary.Dump(), replica.Dump(); pd != rd {
		t.Fatalf("replica diverged:\nprimary:\n%s\nreplica:\n%s", pd, rd)
	}
	if primary.ChangesMissed() != 0 {
		t.Fatalf("ChangesMissed = %d on text-carrying paths", primary.ChangesMissed())
	}
}

// TestChangesMissedCountsTextlessWrites: the pre-parsed ExecStmt path
// cannot be captured; with a sink installed the miss must be counted.
func TestChangesMissedCountsTextlessWrites(t *testing.T) {
	db := Open("p")
	db.MustExec("CREATE TABLE t (id INTEGER)")
	captureChanges(db)
	st, err := Parse("INSERT INTO t VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	if _, err := s.ExecStmt(st, nil, nil); err != nil {
		t.Fatal(err)
	}
	if db.ChangesMissed() != 1 {
		t.Fatalf("ChangesMissed = %d, want 1", db.ChangesMissed())
	}
}

// TestRollbackAPICapturedInChangeStream is the regression test for the
// replication wedge: production layers abort transactions through the
// Session.Rollback API (not a ROLLBACK statement), and that rollback
// must reach the change stream — otherwise the replica's mapped session
// keeps its transaction open and the origin session's next BEGIN fails
// on the replica forever.
func TestRollbackAPICapturedInChangeStream(t *testing.T) {
	primary := Open("p")
	primary.MustExec("CREATE TABLE t (id INTEGER)")
	changes := captureChanges(primary)

	s := primary.Session()
	s.Exec("BEGIN")
	s.Exec("INSERT INTO t VALUES (1)")
	s.Rollback() // API rollback, the path bis/state.go and SessionPool use

	// A no-op rollback (no open transaction) must not emit anything.
	s.Rollback()
	if n := len(*changes); n != 3 {
		t.Fatalf("captured %d changes, want 3 (BEGIN, INSERT, ROLLBACK)", n)
	}
	if last := (*changes)[2]; last.Kind != "ROLLBACK" || last.SQL != "ROLLBACK" || last.Session != s.ID() {
		t.Fatalf("API rollback captured as %+v, want kind=ROLLBACK on session %d", last, s.ID())
	}
	// The stream stays dense across the API rollback.
	for i, c := range *changes {
		if c.Seq != int64(i)+1 {
			t.Fatalf("change %d has seq %d, want %d (dense)", i, c.Seq, i+1)
		}
	}

	// The same origin session transacts again: without the captured
	// rollback the replica would refuse this BEGIN ("transaction already
	// open") and redeliver it forever.
	s.Exec("BEGIN")
	s.Exec("INSERT INTO t VALUES (2)")
	s.Exec("COMMIT")

	replica := Open("r")
	replica.MustExec("CREATE TABLE t (id INTEGER)")
	ap := NewApplier(replica, 0)
	for _, c := range *changes {
		if err := ap.Apply(c); err != nil {
			t.Fatalf("apply %+v: %v", c, err)
		}
	}
	if ap.OpenTransactions() != 0 {
		t.Fatalf("replica holds %d open txns, want 0", ap.OpenTransactions())
	}
	if pd, rd := primary.Dump(), replica.Dump(); pd != rd {
		t.Fatalf("replica diverged:\nprimary:\n%s\nreplica:\n%s", pd, rd)
	}
}

// TestApplierSeqGapLatchesDivergence: a hole in the dense change
// sequence means a primary write was lost in transit; the applier must
// refuse to continue (stale reads beat silently wrong reads) and the
// refusal must latch.
func TestApplierSeqGapLatchesDivergence(t *testing.T) {
	db := Open("r")
	db.MustExec("CREATE TABLE t (id INTEGER)")
	ap := NewApplier(db, 0)
	ins := func(seq int64) Change {
		return Change{Seq: seq, Session: 1, Kind: "INSERT", SQL: "INSERT INTO t VALUES (1)"}
	}
	if err := ap.Apply(ins(1)); err != nil {
		t.Fatal(err)
	}
	if err := ap.Apply(ins(2)); err != nil {
		t.Fatal(err)
	}
	err := ap.Apply(ins(4)) // seq 3 never arrived
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("gap apply: err = %v, want ErrDiverged", err)
	}
	var tmp interface{ Temporary() bool }
	if !errors.As(err, &tmp) || tmp.Temporary() {
		t.Fatalf("divergence must be permanent, got %v", err)
	}
	// Latches: even a well-formed follow-up is refused.
	if err := ap.Apply(ins(5)); !errors.Is(err, ErrDiverged) {
		t.Fatalf("apply after divergence: err = %v, want latched ErrDiverged", err)
	}
	if ap.Fatal() == nil {
		t.Fatal("Fatal() nil after divergence")
	}
	// The gapped statement must not have been applied.
	res := db.MustExec("SELECT COUNT(*) FROM t")
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("replica has %d rows, want 2 (post-gap writes refused)", n)
	}
}

// TestApplierStreamStartPastFloorDiverges: a bootstrapped replica whose
// first delivered change is beyond floor+1 has lost the records in
// between (pruned WAL segments) and must demand a re-bootstrap.
func TestApplierStreamStartPastFloorDiverges(t *testing.T) {
	db := Open("r")
	db.MustExec("CREATE TABLE t (id INTEGER)")
	ap := NewApplier(db, 3)
	err := ap.Apply(Change{Seq: 6, Session: 1, Kind: "INSERT", SQL: "INSERT INTO t VALUES (1)"})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("stream starting at 6 with floor 3: err = %v, want ErrDiverged", err)
	}
}

// TestApplierStraddledTransactionRollbackDiverges: a transaction open
// across the bootstrap point contributes nothing to the committed-only
// dump, and its post-floor statements auto-commit on a replica that was
// not primed (raw DumpWithSeq bootstrap, no BootstrapState/Prime). By
// the time its COMMIT or ROLLBACK arrives, the replica has no open
// transaction to resolve — and has already committed writes the
// primary's COMMIT would make visible atomically (or its ROLLBACK would
// undo). Either resolution must latch divergence.
func TestApplierStraddledTransactionRollbackDiverges(t *testing.T) {
	run := func(t *testing.T, finish func(s *Session)) (*Applier, error) {
		t.Helper()
		primary := Open("p")
		changes := captureChanges(primary)
		s := primary.Session()
		s.Exec("CREATE TABLE t (id INTEGER)")
		s.Exec("BEGIN")
		s.Exec("INSERT INTO t VALUES (1)")

		// Bootstrap mid-transaction WITHOUT priming: the committed-only
		// dump excludes the open transaction's row.
		script, seq := primary.DumpWithSeq()
		if strings.Contains(script, "INSERT") {
			t.Fatalf("uncommitted row leaked into the dump:\n%s", script)
		}
		s.Exec("INSERT INTO t VALUES (2)")
		finish(s)

		replica := Open("r")
		if _, err := replica.ExecScript(script); err != nil {
			t.Fatal(err)
		}
		ap := NewApplier(replica, seq)
		var firstErr error
		for _, c := range *changes {
			if err := ap.Apply(c); err != nil {
				firstErr = err
				break
			}
		}
		return ap, firstErr
	}

	t.Run("rollback", func(t *testing.T) {
		ap, err := run(t, func(s *Session) { s.Rollback() })
		if !errors.Is(err, ErrDiverged) {
			t.Fatalf("straddled rollback: err = %v, want ErrDiverged", err)
		}
		if ap.Fatal() == nil {
			t.Fatal("Fatal() nil after straddled rollback")
		}
	})
	t.Run("commit", func(t *testing.T) {
		ap, err := run(t, func(s *Session) { s.Exec("COMMIT") })
		if !errors.Is(err, ErrDiverged) {
			t.Fatalf("straddled commit: err = %v, want ErrDiverged", err)
		}
		if ap.Fatal() == nil {
			t.Fatal("Fatal() nil after straddled commit")
		}
	})
}

// TestBootstrapStatePrimedStraddleConverges: the supported path for a
// mid-transaction bootstrap. BootstrapState returns the committed-only
// dump (no uncommitted rows — the rollback case proves the primary can
// still undo them), the floor, and the open transaction's pending
// statements; Prime re-opens the transaction on the replica, so its
// eventual COMMIT or ROLLBACK replays cleanly and the replica converges
// on the primary's final state either way.
func TestBootstrapStatePrimedStraddleConverges(t *testing.T) {
	for _, tc := range []struct {
		name   string
		finish func(s *Session)
	}{
		{"commit", func(s *Session) { s.Exec("COMMIT") }},
		{"rollback", func(s *Session) { s.Rollback() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			primary := Open("p")
			changes := captureChanges(primary)
			s := primary.Session()
			s.Exec("CREATE TABLE t (id INTEGER)")
			s.Exec("BEGIN")
			s.Exec("INSERT INTO t VALUES (1)")

			script, floor, pending := primary.BootstrapState()
			if strings.Contains(script, "INSERT") {
				t.Fatalf("uncommitted row leaked into the bootstrap dump:\n%s", script)
			}
			if len(pending) != 2 { // BEGIN + INSERT
				t.Fatalf("pending = %d changes, want 2 (BEGIN + INSERT)", len(pending))
			}

			s.Exec("INSERT INTO t VALUES (2)")
			tc.finish(s)

			replica := Open("r")
			if _, err := replica.ExecScript(script); err != nil {
				t.Fatal(err)
			}
			ap := NewApplier(replica, floor)
			if err := ap.Prime(pending); err != nil {
				t.Fatalf("prime: %v", err)
			}
			if got := ap.OpenTransactions(); got != 1 {
				t.Fatalf("open transactions after prime = %d, want 1", got)
			}
			for _, c := range *changes {
				if err := ap.Apply(c); err != nil {
					t.Fatalf("apply seq %d (%s): %v", c.Seq, c.Kind, err)
				}
			}
			if ap.Fatal() != nil {
				t.Fatalf("primed straddle latched divergence: %v", ap.Fatal())
			}
			if pd, rd := primary.Dump(), replica.Dump(); pd != rd {
				t.Fatalf("replica diverged on primed straddled %s:\nprimary:\n%s\nreplica:\n%s", tc.name, pd, rd)
			}
		})
	}
}

// TestApplierBeginWhileOpenDiverges: a BEGIN for an origin session the
// replica still holds open means a rollback was lost upstream (e.g. a
// textless path the sink cannot capture); guessing would risk undoing a
// lost COMMIT instead, so the applier refuses.
func TestApplierBeginWhileOpenDiverges(t *testing.T) {
	db := Open("r")
	db.MustExec("CREATE TABLE t (id INTEGER)")
	ap := NewApplier(db, 0)
	seq := int64(0)
	next := func(kind, sql string) Change {
		seq++
		return Change{Seq: seq, Session: 9, Kind: kind, SQL: sql}
	}
	if err := ap.Apply(next("BEGIN", "BEGIN")); err != nil {
		t.Fatal(err)
	}
	if err := ap.Apply(next("INSERT", "INSERT INTO t VALUES (1)")); err != nil {
		t.Fatal(err)
	}
	if err := ap.Apply(next("BEGIN", "BEGIN")); !errors.Is(err, ErrDiverged) {
		t.Fatalf("BEGIN while open: err = %v, want ErrDiverged", err)
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), Int(0), Int(-42), Int(1 << 60), Float(3.25), Float(-0.5),
		Str(""), Str("plain"), Str("i:tricky=с:утф"), Bool(true), Bool(false),
	}
	for _, v := range vals {
		got, err := DecodeValue(EncodeValue(v))
		if err != nil {
			t.Fatalf("decode(encode(%v)): %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
	named := map[string]Value{"a": Int(1), "zz": Str("x=y"), "m": Null()}
	back, err := DecodeNamed(EncodeNamed(named))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(named) {
		t.Fatalf("named round trip size %d, want %d", len(back), len(named))
	}
	for k, v := range named {
		if back[k] != v {
			t.Fatalf("named[%q] = %v, want %v", k, back[k], v)
		}
	}
	if _, err := DecodeValue("x:bogus"); err == nil {
		t.Fatal("unknown tag decoded without error")
	}
}
