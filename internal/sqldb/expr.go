package sqldb

import (
	"fmt"
	"math"
	"strings"
)

// colMeta identifies an output or intermediate column: the (aliased) table
// qualifier it came from and its name.
type colMeta struct {
	table string // qualifier (alias or table name), lowercased; "" if none
	name  string // column name, original case
}

// relation is an intermediate row set flowing through the executor.
type relation struct {
	cols []colMeta
	rows [][]Value
}

// env is the expression evaluation environment: the current row (if any),
// the group rows (during aggregation), statement parameters, and a link to
// the outer environment for correlated subqueries.
type env struct {
	cols      []colMeta
	row       []Value
	groupRows [][]Value // non-nil while evaluating aggregate context
	params    []Value
	named     map[string]Value
	session   *Session
	outer     *env
}

func (e *env) child(cols []colMeta, row []Value) *env {
	return &env{cols: cols, row: row, params: e.params, named: e.named, session: e.session, outer: e.outer}
}

// lookupColumn resolves a (possibly qualified) column reference against this
// environment, then outer environments.
func (e *env) lookupColumn(table, name string) (Value, error) {
	for scope := e; scope != nil; scope = scope.outer {
		found := -1
		for i, c := range scope.cols {
			if !strings.EqualFold(c.name, name) {
				continue
			}
			if table != "" && !strings.EqualFold(c.table, table) {
				continue
			}
			if found >= 0 {
				return Null(), fmt.Errorf("sqldb: ambiguous column %s", name)
			}
			found = i
		}
		if found >= 0 {
			if scope.row == nil {
				return Null(), fmt.Errorf("sqldb: column %s referenced outside row context", name)
			}
			return scope.row[found], nil
		}
	}
	if table != "" {
		return Null(), fmt.Errorf("sqldb: unknown column %s.%s", table, name)
	}
	return Null(), fmt.Errorf("sqldb: unknown column %s", name)
}

// aggregateNames are function names treated as aggregates.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// exprHasAggregate reports whether the expression contains an aggregate call.
func exprHasAggregate(x Expr) bool {
	switch t := x.(type) {
	case nil:
		return false
	case *Literal, *ColumnRef, *ParamRef, *NextValueExpr:
		return false
	case *BinaryExpr:
		return exprHasAggregate(t.L) || exprHasAggregate(t.R)
	case *UnaryExpr:
		return exprHasAggregate(t.X)
	case *IsNullExpr:
		return exprHasAggregate(t.X)
	case *BetweenExpr:
		return exprHasAggregate(t.X) || exprHasAggregate(t.Lo) || exprHasAggregate(t.Hi)
	case *InExpr:
		if exprHasAggregate(t.X) {
			return true
		}
		for _, e := range t.List {
			if exprHasAggregate(e) {
				return true
			}
		}
		return false
	case *ExistsExpr, *SubqueryExpr:
		return false // aggregates inside a subquery belong to the subquery
	case *FuncCall:
		if aggregateNames[t.Name] {
			return true
		}
		for _, a := range t.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
		return false
	case *CaseExpr:
		if exprHasAggregate(t.Operand) || exprHasAggregate(t.Else) {
			return true
		}
		for _, w := range t.Whens {
			if exprHasAggregate(w.When) || exprHasAggregate(w.Then) {
				return true
			}
		}
		return false
	}
	return false
}

// eval evaluates an expression in the given environment.
func eval(x Expr, e *env) (Value, error) {
	switch t := x.(type) {
	case *Literal:
		return t.Val, nil
	case *boundCol:
		if e.row == nil || t.idx >= len(e.row) {
			return Null(), fmt.Errorf("sqldb: column referenced outside row context")
		}
		return e.row[t.idx], nil
	case *ColumnRef:
		return e.lookupColumn(t.Table, t.Column)
	case *ParamRef:
		if t.Name != "" {
			if e.named != nil {
				if v, ok := e.named[strings.ToLower(t.Name)]; ok {
					return v, nil
				}
			}
			return Null(), fmt.Errorf("sqldb: unbound named parameter :%s", t.Name)
		}
		if t.Index < 0 || t.Index >= len(e.params) {
			return Null(), fmt.Errorf("sqldb: missing value for parameter %d", t.Index+1)
		}
		return e.params[t.Index], nil
	case *BinaryExpr:
		return evalBinary(t, e)
	case *UnaryExpr:
		v, err := eval(t.X, e)
		if err != nil {
			return Null(), err
		}
		switch t.Op {
		case "-":
			switch v.K {
			case KindInt:
				return Int(-v.I), nil
			case KindFloat:
				return Float(-v.F), nil
			case KindNull:
				return Null(), nil
			}
			return Null(), fmt.Errorf("sqldb: cannot negate %s", v.K)
		case "NOT":
			if v.IsNull() {
				return Null(), nil
			}
			if v.K != KindBool {
				return Null(), fmt.Errorf("sqldb: NOT requires a boolean")
			}
			return Bool(!v.B), nil
		}
		return Null(), fmt.Errorf("sqldb: unknown unary operator %s", t.Op)
	case *IsNullExpr:
		v, err := eval(t.X, e)
		if err != nil {
			return Null(), err
		}
		return Bool(v.IsNull() != t.Not), nil
	case *BetweenExpr:
		v, err := eval(t.X, e)
		if err != nil {
			return Null(), err
		}
		lo, err := eval(t.Lo, e)
		if err != nil {
			return Null(), err
		}
		hi, err := eval(t.Hi, e)
		if err != nil {
			return Null(), err
		}
		c1, ok1 := compareValues(v, lo)
		c2, ok2 := compareValues(v, hi)
		if !ok1 || !ok2 {
			return Null(), nil
		}
		return Bool((c1 >= 0 && c2 <= 0) != t.Not), nil
	case *InExpr:
		return evalIn(t, e)
	case *ExistsExpr:
		res, err := e.session.execSelect(t.Query, e)
		if err != nil {
			return Null(), err
		}
		return Bool((len(res.Rows) > 0) != t.Not), nil
	case *SubqueryExpr:
		res, err := e.session.execSelect(t.Query, e)
		if err != nil {
			return Null(), err
		}
		if len(res.Rows) == 0 {
			return Null(), nil
		}
		if len(res.Rows) > 1 {
			return Null(), fmt.Errorf("sqldb: scalar subquery returned %d rows", len(res.Rows))
		}
		if len(res.Columns) != 1 {
			return Null(), fmt.Errorf("sqldb: scalar subquery returned %d columns", len(res.Columns))
		}
		return res.Rows[0][0], nil
	case *FuncCall:
		if aggregateNames[t.Name] {
			return evalAggregate(t, e)
		}
		return evalScalarFunc(t, e)
	case *CaseExpr:
		return evalCase(t, e)
	case *NextValueExpr:
		return e.session.nextSequenceValue(t.Sequence)
	}
	return Null(), fmt.Errorf("sqldb: cannot evaluate %T", x)
}

func evalBinary(t *BinaryExpr, e *env) (Value, error) {
	// AND/OR use SQL three-valued logic with short-circuiting where sound.
	switch t.Op {
	case "AND":
		l, err := eval(t.L, e)
		if err != nil {
			return Null(), err
		}
		if l.K == KindBool && !l.B {
			return Bool(false), nil
		}
		r, err := eval(t.R, e)
		if err != nil {
			return Null(), err
		}
		if r.K == KindBool && !r.B {
			return Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(l.Truth() && r.Truth()), nil
	case "OR":
		l, err := eval(t.L, e)
		if err != nil {
			return Null(), err
		}
		if l.Truth() {
			return Bool(true), nil
		}
		r, err := eval(t.R, e)
		if err != nil {
			return Null(), err
		}
		if r.Truth() {
			return Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(false), nil
	}
	l, err := eval(t.L, e)
	if err != nil {
		return Null(), err
	}
	r, err := eval(t.R, e)
	if err != nil {
		return Null(), err
	}
	switch t.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, ok := compareValues(l, r)
		if !ok {
			return Null(), nil
		}
		switch t.Op {
		case "=":
			return Bool(c == 0), nil
		case "<>":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		case ">=":
			return Bool(c >= 0), nil
		}
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Str(l.String() + r.String()), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(likeMatch(l.String(), r.String())), nil
	case "+", "-", "*", "/", "%":
		return evalArith(t.Op, l, r)
	}
	return Null(), fmt.Errorf("sqldb: unknown operator %s", t.Op)
}

func evalArith(op string, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	if op == "+" && (l.K == KindString || r.K == KindString) {
		return Str(l.String() + r.String()), nil
	}
	if l.K == KindInt && r.K == KindInt {
		switch op {
		case "+":
			return Int(l.I + r.I), nil
		case "-":
			return Int(l.I - r.I), nil
		case "*":
			return Int(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return Null(), fmt.Errorf("sqldb: division by zero")
			}
			return Int(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return Null(), fmt.Errorf("sqldb: division by zero")
			}
			return Int(l.I % r.I), nil
		}
	}
	lf, ok1 := l.AsFloat()
	rf, ok2 := r.AsFloat()
	if !ok1 || !ok2 {
		return Null(), fmt.Errorf("sqldb: arithmetic on non-numeric values (%s %s %s)", l.K, op, r.K)
	}
	switch op {
	case "+":
		return Float(lf + rf), nil
	case "-":
		return Float(lf - rf), nil
	case "*":
		return Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return Null(), fmt.Errorf("sqldb: division by zero")
		}
		return Float(lf / rf), nil
	case "%":
		if rf == 0 {
			return Null(), fmt.Errorf("sqldb: division by zero")
		}
		return Float(math.Mod(lf, rf)), nil
	}
	return Null(), fmt.Errorf("sqldb: unknown arithmetic operator %s", op)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single char).
func likeMatch(s, pattern string) bool {
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || !strings.EqualFold(string(s[0]), string(p[0])) {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func evalIn(t *InExpr, e *env) (Value, error) {
	v, err := eval(t.X, e)
	if err != nil {
		return Null(), err
	}
	var candidates []Value
	if t.Query != nil {
		res, err := e.session.execSelect(t.Query, e)
		if err != nil {
			return Null(), err
		}
		if len(res.Columns) != 1 {
			return Null(), fmt.Errorf("sqldb: IN subquery must return one column")
		}
		for _, row := range res.Rows {
			candidates = append(candidates, row[0])
		}
	} else {
		for _, le := range t.List {
			lv, err := eval(le, e)
			if err != nil {
				return Null(), err
			}
			candidates = append(candidates, lv)
		}
	}
	if v.IsNull() {
		return Null(), nil
	}
	sawNull := false
	for _, c := range candidates {
		if c.IsNull() {
			sawNull = true
			continue
		}
		if cmp, ok := compareValues(v, c); ok && cmp == 0 {
			return Bool(!t.Not), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(t.Not), nil
}

func evalCase(t *CaseExpr, e *env) (Value, error) {
	if t.Operand != nil {
		op, err := eval(t.Operand, e)
		if err != nil {
			return Null(), err
		}
		for _, w := range t.Whens {
			wv, err := eval(w.When, e)
			if err != nil {
				return Null(), err
			}
			if c, ok := compareValues(op, wv); ok && c == 0 {
				return eval(w.Then, e)
			}
		}
	} else {
		for _, w := range t.Whens {
			wv, err := eval(w.When, e)
			if err != nil {
				return Null(), err
			}
			if wv.Truth() {
				return eval(w.Then, e)
			}
		}
	}
	if t.Else != nil {
		return eval(t.Else, e)
	}
	return Null(), nil
}

func evalAggregate(t *FuncCall, e *env) (Value, error) {
	if e.groupRows == nil {
		return Null(), fmt.Errorf("sqldb: aggregate %s used outside GROUP BY/aggregate context", t.Name)
	}
	if t.Name == "COUNT" && t.Star {
		return Int(int64(len(e.groupRows))), nil
	}
	if len(t.Args) != 1 {
		return Null(), fmt.Errorf("sqldb: aggregate %s requires one argument", t.Name)
	}
	vals := make([]Value, 0, len(e.groupRows))
	var seen map[string]bool
	var kb []byte
	if t.Distinct {
		seen = map[string]bool{}
	}
	// One scratch row environment serves every group row, and the
	// argument compiles once per aggregate invocation — the per-row
	// work inside a large group is a closure call, not an AST walk.
	rowEnv := e.child(e.cols, nil)
	argFn := compileExpr(t.Args[0])
	for _, row := range e.groupRows {
		rowEnv.row = row
		v, err := argFn(rowEnv)
		if err != nil {
			return Null(), err
		}
		if v.IsNull() {
			continue
		}
		if t.Distinct {
			kb = appendValueKey(kb[:0], v)
			if seen[string(kb)] {
				continue
			}
			seen[string(kb)] = true
		}
		vals = append(vals, v)
	}
	switch t.Name {
	case "COUNT":
		return Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		allInt := true
		var fi int64
		var ff float64
		for _, v := range vals {
			if v.K != KindInt {
				allInt = false
			}
			f, ok := v.AsFloat()
			if !ok {
				return Null(), fmt.Errorf("sqldb: %s over non-numeric value", t.Name)
			}
			ff += f
			if v.K == KindInt {
				fi += v.I
			}
		}
		if t.Name == "AVG" {
			return Float(ff / float64(len(vals))), nil
		}
		if allInt {
			return Int(fi), nil
		}
		return Float(ff), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := compareValues(v, best)
			if !ok {
				return Null(), fmt.Errorf("sqldb: %s over incomparable values", t.Name)
			}
			if (t.Name == "MIN" && c < 0) || (t.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return Null(), fmt.Errorf("sqldb: unknown aggregate %s", t.Name)
}

func evalScalarFunc(t *FuncCall, e *env) (Value, error) {
	args := make([]Value, len(t.Args))
	for i, a := range t.Args {
		v, err := eval(a, e)
		if err != nil {
			return Null(), err
		}
		args[i] = v
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqldb: %s expects %d argument(s), got %d", t.Name, n, len(args))
		}
		return nil
	}
	switch t.Name {
	case "UPPER":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Str(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Str(strings.ToLower(args[0].String())), nil
	case "LENGTH":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Int(int64(len(args[0].String()))), nil
	case "TRIM":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Str(strings.TrimSpace(args[0].String())), nil
	case "ABS":
		if err := arity(1); err != nil {
			return Null(), err
		}
		switch args[0].K {
		case KindNull:
			return Null(), nil
		case KindInt:
			if args[0].I < 0 {
				return Int(-args[0].I), nil
			}
			return args[0], nil
		case KindFloat:
			return Float(math.Abs(args[0].F)), nil
		}
		return Null(), fmt.Errorf("sqldb: ABS of non-numeric value")
	case "ROUND":
		if len(args) == 1 {
			f, ok := args[0].AsFloat()
			if !ok {
				if args[0].IsNull() {
					return Null(), nil
				}
				return Null(), fmt.Errorf("sqldb: ROUND of non-numeric value")
			}
			return Float(math.Round(f)), nil
		}
		if err := arity(2); err != nil {
			return Null(), err
		}
		f, ok1 := args[0].AsFloat()
		d, ok2 := args[1].AsInt()
		if !ok1 || !ok2 {
			if args[0].IsNull() || args[1].IsNull() {
				return Null(), nil
			}
			return Null(), fmt.Errorf("sqldb: ROUND of non-numeric value")
		}
		p := math.Pow(10, float64(d))
		return Float(math.Round(f*p) / p), nil
	case "MOD":
		if err := arity(2); err != nil {
			return Null(), err
		}
		return evalArith("%", args[0], args[1])
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	case "NULLIF":
		if err := arity(2); err != nil {
			return Null(), err
		}
		if c, ok := compareValues(args[0], args[1]); ok && c == 0 {
			return Null(), nil
		}
		return args[0], nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			if !a.IsNull() {
				b.WriteString(a.String())
			}
		}
		return Str(b.String()), nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return Null(), fmt.Errorf("sqldb: SUBSTR expects 2 or 3 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null(), nil
		}
		s := args[0].String()
		start, _ := args[1].AsInt()
		if start < 1 {
			start = 1
		}
		if int(start) > len(s) {
			return Str(""), nil
		}
		out := s[start-1:]
		if len(args) == 3 {
			if args[2].IsNull() {
				return Null(), nil
			}
			n, _ := args[2].AsInt()
			if n < 0 {
				n = 0
			}
			if int(n) < len(out) {
				out = out[:n]
			}
		}
		return Str(out), nil
	case "REPLACE":
		if err := arity(3); err != nil {
			return Null(), err
		}
		if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
			return Null(), nil
		}
		return Str(strings.ReplaceAll(args[0].String(), args[1].String(), args[2].String())), nil
	case "POSITION", "INSTR":
		if err := arity(2); err != nil {
			return Null(), err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null(), nil
		}
		// POSITION(needle, haystack): 1-based, 0 when absent.
		return Int(int64(strings.Index(args[1].String(), args[0].String()) + 1)), nil
	case "LEFT":
		if err := arity(2); err != nil {
			return Null(), err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null(), nil
		}
		s := args[0].String()
		n, _ := args[1].AsInt()
		if n < 0 {
			n = 0
		}
		if int(n) < len(s) {
			s = s[:n]
		}
		return Str(s), nil
	case "RIGHT":
		if err := arity(2); err != nil {
			return Null(), err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null(), nil
		}
		s := args[0].String()
		n, _ := args[1].AsInt()
		if n < 0 {
			n = 0
		}
		if int(n) < len(s) {
			s = s[len(s)-int(n):]
		}
		return Str(s), nil
	case "GREATEST", "LEAST":
		if len(args) == 0 {
			return Null(), fmt.Errorf("sqldb: %s expects at least one argument", t.Name)
		}
		best := args[0]
		for _, v := range args[1:] {
			if v.IsNull() || best.IsNull() {
				return Null(), nil
			}
			c, ok := compareValues(v, best)
			if !ok {
				return Null(), fmt.Errorf("sqldb: %s over incomparable values", t.Name)
			}
			if (t.Name == "GREATEST" && c > 0) || (t.Name == "LEAST" && c < 0) {
				best = v
			}
		}
		return best, nil
	case "SIGN":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return Null(), fmt.Errorf("sqldb: SIGN of non-numeric value")
		}
		switch {
		case f > 0:
			return Int(1), nil
		case f < 0:
			return Int(-1), nil
		}
		return Int(0), nil
	case "POWER":
		if err := arity(2); err != nil {
			return Null(), err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null(), nil
		}
		a, ok1 := args[0].AsFloat()
		b, ok2 := args[1].AsFloat()
		if !ok1 || !ok2 {
			return Null(), fmt.Errorf("sqldb: POWER of non-numeric value")
		}
		return Float(math.Pow(a, b)), nil
	case "SQRT":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok || f < 0 {
			return Null(), fmt.Errorf("sqldb: SQRT requires a non-negative number")
		}
		return Float(math.Sqrt(f)), nil
	case "FLOOR":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return Null(), fmt.Errorf("sqldb: FLOOR of non-numeric value")
		}
		return Float(math.Floor(f)), nil
	case "CEIL", "CEILING":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return Null(), fmt.Errorf("sqldb: CEILING of non-numeric value")
		}
		return Float(math.Ceil(f)), nil
	case "NEXTVAL":
		if err := arity(1); err != nil {
			return Null(), err
		}
		if args[0].K != KindString {
			return Null(), fmt.Errorf("sqldb: NEXTVAL expects a sequence name string")
		}
		return e.session.nextSequenceValue(args[0].S)
	}
	return Null(), fmt.Errorf("sqldb: unknown function %s", t.Name)
}
