package sqldb

// This file defines the abstract syntax tree produced by the parser and
// consumed by the executor.

// Stmt is any parsed SQL statement.
type Stmt interface{ stmtNode() }

// Expr is any parsed SQL expression.
type Expr interface{ exprNode() }

// --- Statements ---

// SelectStmt is a SELECT query, possibly the left arm of a UNION chain.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // empty means a FROM-less SELECT (e.g. SELECT 1+1)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil if absent
	Offset   Expr // nil if absent

	// Union chains another SELECT after this one; UnionAll keeps
	// duplicates. Each arm's ORDER BY/LIMIT applies to that arm; the
	// combined result preserves arm order (first arm's rows first) and,
	// for plain UNION, removes duplicates across the whole result.
	Union    *SelectStmt
	UnionAll bool
}

// SelectItem is one projection item of a SELECT list.
type SelectItem struct {
	Star      bool   // SELECT * or t.*
	StarTable string // qualifier for t.*; empty for bare *
	Expr      Expr
	Alias     string
}

// TableRef is an entry of a FROM clause: a base table or derived table
// (subquery) with optional joins.
type TableRef struct {
	Table    string
	Subquery *SelectStmt // derived table; requires Alias
	Alias    string
	Joins    []JoinClause
}

// JoinKind distinguishes join types.
type JoinKind int

// Supported join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

// JoinClause is one JOIN ... ON ... attached to a TableRef. The right
// side is a base table or a derived table.
type JoinClause struct {
	Kind     JoinKind
	Table    string
	Subquery *SelectStmt // derived table; requires Alias
	Alias    string
	On       Expr // nil for CROSS JOIN
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...) | SELECT ...
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr    // literal VALUES rows
	Query   *SelectStmt // INSERT ... SELECT
}

// UpdateStmt is UPDATE t SET c = e, ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// SetClause is one assignment of an UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       ColumnType
	NotNull    bool
	PrimaryKey bool
	Default    Expr
}

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] t (...).
type CreateTableStmt struct {
	Table       string
	IfNotExists bool
	Columns     []ColumnDef
	AsQuery     *SelectStmt // CREATE TABLE t AS SELECT ...
}

// CreateViewStmt is CREATE VIEW v AS SELECT ... . Views are named queries
// re-executed on every reference. Src preserves the definition text for
// dumps.
type CreateViewStmt struct {
	Name  string
	Query *SelectStmt
	Src   string
}

// DropViewStmt is DROP VIEW [IF EXISTS] v.
type DropViewStmt struct {
	Name     string
	IfExists bool
}

// DropTableStmt is DROP TABLE [IF EXISTS] t.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

// TruncateStmt is TRUNCATE TABLE t.
type TruncateStmt struct{ Table string }

// AlterKind discriminates ALTER TABLE forms.
type AlterKind int

// ALTER TABLE forms.
const (
	AlterAddColumn AlterKind = iota
	AlterDropColumn
	AlterRenameTable
)

// AlterTableStmt is ALTER TABLE t ADD COLUMN def | DROP COLUMN c |
// RENAME TO name.
type AlterTableStmt struct {
	Table  string
	Kind   AlterKind
	Column ColumnDef // for ADD COLUMN
	Name   string    // column for DROP COLUMN, new table name for RENAME
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX i ON t (cols).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// DropIndexStmt is DROP INDEX [IF EXISTS] i.
type DropIndexStmt struct {
	Name     string
	IfExists bool
}

// CreateSequenceStmt is CREATE SEQUENCE s [START WITH n] [INCREMENT BY n].
type CreateSequenceStmt struct {
	Name      string
	Start     int64
	Increment int64
}

// DropSequenceStmt is DROP SEQUENCE [IF EXISTS] s.
type DropSequenceStmt struct {
	Name     string
	IfExists bool
}

// CreateProcedureStmt is CREATE PROCEDURE p (params) AS 'sql; sql; ...'.
// The body is a string literal of semicolon-separated statements, parsed
// at creation time. Parameters are referenced in the body as :name.
type CreateProcedureStmt struct {
	Name   string
	Params []string
	Body   string
}

// DropProcedureStmt is DROP PROCEDURE [IF EXISTS] p.
type DropProcedureStmt struct {
	Name     string
	IfExists bool
}

// CallStmt is CALL p(args...).
type CallStmt struct {
	Name string
	Args []Expr
}

// ExplainStmt is EXPLAIN <select>: it returns the access plan the
// executor would use instead of running the query.
type ExplainStmt struct{ Query *SelectStmt }

// BeginStmt is BEGIN [TRANSACTION|WORK].
type BeginStmt struct{}

// CommitStmt is COMMIT [TRANSACTION|WORK].
type CommitStmt struct{}

// RollbackStmt is ROLLBACK [TRANSACTION|WORK].
type RollbackStmt struct{}

func (*SelectStmt) stmtNode()          {}
func (*InsertStmt) stmtNode()          {}
func (*UpdateStmt) stmtNode()          {}
func (*DeleteStmt) stmtNode()          {}
func (*CreateTableStmt) stmtNode()     {}
func (*DropTableStmt) stmtNode()       {}
func (*TruncateStmt) stmtNode()        {}
func (*AlterTableStmt) stmtNode()      {}
func (*CreateViewStmt) stmtNode()      {}
func (*DropViewStmt) stmtNode()        {}
func (*CreateIndexStmt) stmtNode()     {}
func (*DropIndexStmt) stmtNode()       {}
func (*CreateSequenceStmt) stmtNode()  {}
func (*DropSequenceStmt) stmtNode()    {}
func (*CreateProcedureStmt) stmtNode() {}
func (*DropProcedureStmt) stmtNode()   {}
func (*CallStmt) stmtNode()            {}
func (*ExplainStmt) stmtNode()         {}
func (*BeginStmt) stmtNode()           {}
func (*CommitStmt) stmtNode()          {}
func (*RollbackStmt) stmtNode()        {}

// --- Expressions ---

// Literal is a constant value.
type Literal struct{ Val Value }

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table  string // optional qualifier
	Column string
}

// ParamRef is a parameter placeholder: a positional ? (Name empty,
// 0-based Index) or a named :name parameter (Name set).
type ParamRef struct {
	Index int
	Name  string
}

// BinaryExpr applies a binary operator. NOT LIKE is represented as a
// UnaryExpr NOT wrapping a LIKE BinaryExpr.
type BinaryExpr struct {
	Op   string // =, <>, <, <=, >, >=, +, -, *, /, %, AND, OR, ||, LIKE
	L, R Expr
}

// UnaryExpr applies a unary operator: - or NOT.
type UnaryExpr struct {
	Op string
	X  Expr
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// InExpr is x [NOT] IN (list) or x [NOT] IN (subquery).
type InExpr struct {
	X     Expr
	List  []Expr
	Query *SelectStmt
	Not   bool
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Query *SelectStmt
	Not   bool
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct{ Query *SelectStmt }

// FuncCall is a scalar or aggregate function call.
type FuncCall struct {
	Name     string // uppercased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x), SUM(DISTINCT x), ...
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN/THEN arm of a CASE expression.
type CaseWhen struct {
	When Expr
	Then Expr
}

// NextValueExpr is NEXT VALUE FOR seq.
type NextValueExpr struct{ Sequence string }

func (*Literal) exprNode()       {}
func (*ColumnRef) exprNode()     {}
func (*ParamRef) exprNode()      {}
func (*BinaryExpr) exprNode()    {}
func (*UnaryExpr) exprNode()     {}
func (*IsNullExpr) exprNode()    {}
func (*BetweenExpr) exprNode()   {}
func (*InExpr) exprNode()        {}
func (*ExistsExpr) exprNode()    {}
func (*SubqueryExpr) exprNode()  {}
func (*FuncCall) exprNode()      {}
func (*CaseExpr) exprNode()      {}
func (*NextValueExpr) exprNode() {}

// stmtKinds is the closed set of labels StmtKind can return (plus
// "OTHER"), so metric sinks can precompute per-kind metric names.
var stmtKinds = []string{
	"SELECT", "INSERT", "UPDATE", "DELETE",
	"CREATE TABLE", "CREATE VIEW", "DROP VIEW", "DROP TABLE",
	"TRUNCATE", "ALTER TABLE", "CREATE INDEX", "DROP INDEX",
	"CREATE SEQUENCE", "DROP SEQUENCE", "CREATE PROCEDURE", "DROP PROCEDURE",
	"CALL", "EXPLAIN", "BEGIN", "COMMIT", "ROLLBACK", "OTHER",
}

// StmtKind returns a coarse statement-kind label ("SELECT", "INSERT",
// "COMMIT", ...) used by the exec hook (fault injection) and tooling.
func StmtKind(st Stmt) string {
	switch st.(type) {
	case *SelectStmt:
		return "SELECT"
	case *InsertStmt:
		return "INSERT"
	case *UpdateStmt:
		return "UPDATE"
	case *DeleteStmt:
		return "DELETE"
	case *CreateTableStmt:
		return "CREATE TABLE"
	case *CreateViewStmt:
		return "CREATE VIEW"
	case *DropViewStmt:
		return "DROP VIEW"
	case *DropTableStmt:
		return "DROP TABLE"
	case *TruncateStmt:
		return "TRUNCATE"
	case *AlterTableStmt:
		return "ALTER TABLE"
	case *CreateIndexStmt:
		return "CREATE INDEX"
	case *DropIndexStmt:
		return "DROP INDEX"
	case *CreateSequenceStmt:
		return "CREATE SEQUENCE"
	case *DropSequenceStmt:
		return "DROP SEQUENCE"
	case *CreateProcedureStmt:
		return "CREATE PROCEDURE"
	case *DropProcedureStmt:
		return "DROP PROCEDURE"
	case *CallStmt:
		return "CALL"
	case *ExplainStmt:
		return "EXPLAIN"
	case *BeginStmt:
		return "BEGIN"
	case *CommitStmt:
		return "COMMIT"
	case *RollbackStmt:
		return "ROLLBACK"
	}
	return "OTHER"
}
