package sqldb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// SessionPool is a small checkout pool of sessions on one database. The
// workflow layers whose SQL surface is stateless-per-call (Oracle's XPath
// extension functions, XSQL pages) used to mint a throwaway Session per
// statement; under the concurrent instance scheduler that pattern both
// churns allocations and — worse — silently drops any open-transaction
// state a caller accumulated, because the next statement runs on a brand
// new session. The pool gives each in-flight call a private session for
// its whole duration and recycles only sessions proven clean (no open
// transaction) on release.
type SessionPool struct {
	db *DB

	mu   sync.Mutex
	free []*Session

	// permits, when non-nil, bounds the number of checked-out sessions
	// (NewBoundedSessionPool). A buffered channel doubles as semaphore
	// and wait queue, so AcquireCtx can select against the caller's
	// deadline — checkout starvation becomes a timely error, not a hang.
	permits chan struct{}

	acquires atomic.Int64
	reuses   atomic.Int64
	timeouts atomic.Int64
}

// sessionPoolCap bounds how many idle sessions a pool retains.
const sessionPoolCap = 32

// NewSessionPool builds an unbounded pool over db (any number of
// sessions may be checked out at once; the pool only recycles).
func NewSessionPool(db *DB) *SessionPool {
	return &SessionPool{db: db}
}

// NewBoundedSessionPool builds a pool that admits at most max
// concurrently checked-out sessions — the connection-pool bound real
// middleware enforces. Acquire blocks for a free permit; AcquireCtx
// bounds that wait by the caller's context.
func NewBoundedSessionPool(db *DB, max int) *SessionPool {
	if max < 1 {
		max = 1
	}
	p := &SessionPool{db: db, permits: make(chan struct{}, max)}
	for i := 0; i < max; i++ {
		p.permits <- struct{}{}
	}
	return p
}

// DB returns the pooled database.
func (p *SessionPool) DB() *DB { return p.db }

// Acquire checks out a session. The caller owns it until Release. On a
// bounded pool this blocks until a permit frees up; use AcquireCtx to
// bound the wait.
func (p *SessionPool) Acquire() *Session {
	s, _ := p.AcquireCtx(context.Background())
	return s
}

// AcquireCtx checks out a session, waiting at most until ctx is done
// for a permit on a bounded pool. It returns a timely error — wrapping
// ctx.Err() — when the pool is starved past the caller's deadline,
// instead of hanging a worker on an exhausted pool.
func (p *SessionPool) AcquireCtx(ctx context.Context) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.permits != nil {
		select {
		case <-p.permits:
		default:
			// Slow path: wait for a release or the caller's deadline.
			select {
			case <-p.permits:
			case <-ctx.Done():
				p.timeouts.Add(1)
				return nil, fmt.Errorf("sqldb: session pool checkout: %w", ctx.Err())
			}
		}
	}
	p.acquires.Add(1)
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.reuses.Add(1)
		return s, nil
	}
	p.mu.Unlock()
	return p.db.Session(), nil
}

// Release returns a session to the pool. A session still holding an open
// transaction is rolled back and discarded instead of being recycled —
// pooled sessions are always transactionally clean. On a bounded pool
// the permit is returned in every case (recycled or discarded), so a
// discarded dirty session never leaks capacity. Any bound execution
// context is detached before the session is recycled.
func (p *SessionPool) Release(s *Session) {
	if s == nil || s.db != p.db {
		return
	}
	if p.permits != nil {
		defer func() {
			select {
			case p.permits <- struct{}{}:
			default: // over-release; drop rather than block
			}
		}()
	}
	if s.InTransaction() {
		s.Rollback()
		return
	}
	s.BindContext(nil)
	p.mu.Lock()
	if len(p.free) < sessionPoolCap {
		p.free = append(p.free, s)
	}
	p.mu.Unlock()
}

// Timeouts reports how many AcquireCtx calls gave up waiting for a
// permit.
func (p *SessionPool) Timeouts() int64 { return p.timeouts.Load() }

// Stats reports pool activity: total checkouts and how many were served
// by recycling an idle session.
func (p *SessionPool) Stats() (acquires, reuses int64) {
	return p.acquires.Load(), p.reuses.Load()
}
