package sqldb

import (
	"sync"
	"sync/atomic"
)

// SessionPool is a small checkout pool of sessions on one database. The
// workflow layers whose SQL surface is stateless-per-call (Oracle's XPath
// extension functions, XSQL pages) used to mint a throwaway Session per
// statement; under the concurrent instance scheduler that pattern both
// churns allocations and — worse — silently drops any open-transaction
// state a caller accumulated, because the next statement runs on a brand
// new session. The pool gives each in-flight call a private session for
// its whole duration and recycles only sessions proven clean (no open
// transaction) on release.
type SessionPool struct {
	db *DB

	mu   sync.Mutex
	free []*Session

	acquires atomic.Int64
	reuses   atomic.Int64
}

// sessionPoolCap bounds how many idle sessions a pool retains.
const sessionPoolCap = 32

// NewSessionPool builds a pool over db.
func NewSessionPool(db *DB) *SessionPool {
	return &SessionPool{db: db}
}

// DB returns the pooled database.
func (p *SessionPool) DB() *DB { return p.db }

// Acquire checks out a session. The caller owns it until Release.
func (p *SessionPool) Acquire() *Session {
	p.acquires.Add(1)
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.reuses.Add(1)
		return s
	}
	p.mu.Unlock()
	return p.db.Session()
}

// Release returns a session to the pool. A session still holding an open
// transaction is rolled back and discarded instead of being recycled —
// pooled sessions are always transactionally clean.
func (p *SessionPool) Release(s *Session) {
	if s == nil || s.db != p.db {
		return
	}
	if s.InTransaction() {
		s.Rollback()
		return
	}
	p.mu.Lock()
	if len(p.free) < sessionPoolCap {
		p.free = append(p.free, s)
	}
	p.mu.Unlock()
}

// Stats reports pool activity: total checkouts and how many were served
// by recycling an idle session.
func (p *SessionPool) Stats() (acquires, reuses int64) {
	return p.acquires.Load(), p.reuses.Load()
}
