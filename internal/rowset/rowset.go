// Package rowset implements the proprietary "XML RowSet" materialized-set
// representation that, per the paper, both IBM's Business Integration
// Suite and Oracle's SOA Suite use for set-oriented data in the process
// space: each output tuple of a query becomes a numbered XML element with
// a text node for every attribute value.
//
// A RowSet is a data cache in the process space holding no connection to
// the original data source (the paper's Set Retrieval Pattern); the
// Sequential/Random Set Access, Tuple IUD, and Synchronization patterns
// operate on it.
package rowset

import (
	"fmt"
	"strconv"

	"wfsql/internal/sqldb"
	"wfsql/internal/xdm"
)

// RowElement is the element name used for each tuple.
const RowElement = "Row"

// RootElement is the element name of the set container.
const RootElement = "RowSet"

// NumAttr is the attribute carrying the 1-based tuple number.
const NumAttr = "num"

// FromResult materializes a sqldb result set as an XML RowSet document.
func FromResult(r *sqldb.Result) (*xdm.Node, error) {
	if r == nil || !r.IsQuery() {
		return nil, fmt.Errorf("rowset: statement returned no result set")
	}
	root := xdm.NewElement(RootElement)
	for i, row := range r.Rows {
		el := root.Element(RowElement)
		el.SetAttr(NumAttr, strconv.Itoa(i+1))
		for ci, col := range r.Columns {
			cell := el.Element(col)
			if !row[ci].IsNull() {
				cell.SetText(row[ci].String())
			} else {
				cell.SetAttr("null", "true")
			}
		}
	}
	return root, nil
}

// ToValues converts a RowSet document back to column names and sqldb value
// rows, using the first row's element order as the column order. Values
// are returned as strings except cells marked null.
func ToValues(root *xdm.Node) (columns []string, rows [][]sqldb.Value, err error) {
	if root == nil || root.Name != RootElement {
		return nil, nil, fmt.Errorf("rowset: not a RowSet document")
	}
	for _, rowEl := range root.ChildElements() {
		if rowEl.Name != RowElement {
			return nil, nil, fmt.Errorf("rowset: unexpected element %s", rowEl.Name)
		}
		cells := rowEl.ChildElements()
		if columns == nil {
			for _, c := range cells {
				columns = append(columns, c.Name)
			}
		}
		row := make([]sqldb.Value, 0, len(cells))
		for _, c := range cells {
			if v, ok := c.Attr("null"); ok && v == "true" {
				row = append(row, sqldb.Null())
			} else {
				row = append(row, sqldb.Str(c.TextContent()))
			}
		}
		rows = append(rows, row)
	}
	return columns, rows, nil
}

// Count returns the number of tuples in the RowSet.
func Count(root *xdm.Node) int {
	n := 0
	for _, c := range root.ChildElements() {
		if c.Name == RowElement {
			n++
		}
	}
	return n
}

// Rows returns the tuple elements in order.
func Rows(root *xdm.Node) []*xdm.Node {
	var out []*xdm.Node
	for _, c := range root.ChildElements() {
		if c.Name == RowElement {
			out = append(out, c)
		}
	}
	return out
}

// Row returns the i-th (0-based) tuple element, or nil.
func Row(root *xdm.Node, i int) *xdm.Node {
	rows := Rows(root)
	if i < 0 || i >= len(rows) {
		return nil
	}
	return rows[i]
}

// Field returns the text of the named cell of a tuple element.
func Field(row *xdm.Node, name string) string {
	return row.ChildText(name)
}

// SetField updates (or adds) the named cell of a tuple element.
func SetField(row *xdm.Node, name, value string) {
	if c := row.FirstChildElement(name); c != nil {
		c.SetText(value)
		return
	}
	row.ElementWithText(name, value)
}

// AppendRow adds a tuple with the given cells (in map iteration-safe
// order: the columns slice fixes the order) and renumbers the set.
func AppendRow(root *xdm.Node, columns []string, values []string) (*xdm.Node, error) {
	if len(columns) != len(values) {
		return nil, fmt.Errorf("rowset: %d columns but %d values", len(columns), len(values))
	}
	row := root.Element(RowElement)
	for i, c := range columns {
		row.ElementWithText(c, values[i])
	}
	Renumber(root)
	return row, nil
}

// DeleteRow removes the i-th (0-based) tuple and renumbers the set.
func DeleteRow(root *xdm.Node, i int) error {
	r := Row(root, i)
	if r == nil {
		return fmt.Errorf("rowset: no row %d", i)
	}
	root.RemoveChild(r)
	Renumber(root)
	return nil
}

// Renumber rewrites the num attributes to match document order.
func Renumber(root *xdm.Node) {
	for i, r := range Rows(root) {
		r.SetAttr(NumAttr, strconv.Itoa(i+1))
	}
}

// Columns returns the cell names of the first tuple (the set's schema as
// far as the process space knows it).
func Columns(root *xdm.Node) []string {
	rows := Rows(root)
	if len(rows) == 0 {
		return nil
	}
	var cols []string
	for _, c := range rows[0].ChildElements() {
		cols = append(cols, c.Name)
	}
	return cols
}
