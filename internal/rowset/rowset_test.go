package rowset

import (
	"testing"
	"testing/quick"

	"wfsql/internal/sqldb"
	"wfsql/internal/xdm"
)

func sampleResult() *sqldb.Result {
	return &sqldb.Result{
		Columns: []string{"ItemID", "Quantity"},
		Rows: [][]sqldb.Value{
			{sqldb.Str("bolt"), sqldb.Int(15)},
			{sqldb.Str("nut"), sqldb.Int(3)},
			{sqldb.Str("screw"), sqldb.Null()},
		},
	}
}

func TestFromResultShape(t *testing.T) {
	rs, err := FromResult(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Name != RootElement {
		t.Fatalf("root: %s", rs.Name)
	}
	rows := Rows(rs)
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Each output tuple becomes a numbered XML element with a text node
	// per attribute value (the paper's RowSet description).
	if n, _ := rows[0].Attr(NumAttr); n != "1" {
		t.Fatalf("numbering: %s", n)
	}
	if Field(rows[0], "ItemID") != "bolt" || Field(rows[0], "Quantity") != "15" {
		t.Fatalf("fields: %s", rows[0])
	}
	// NULL cells carry a null marker.
	qty := rows[2].FirstChildElement("Quantity")
	if v, ok := qty.Attr("null"); !ok || v != "true" {
		t.Fatalf("null marker: %s", qty)
	}
}

func TestFromResultErrors(t *testing.T) {
	if _, err := FromResult(nil); err == nil {
		t.Fatal("nil result must error")
	}
	if _, err := FromResult(&sqldb.Result{RowsAffected: 3}); err == nil {
		t.Fatal("DML result must error")
	}
}

func TestToValuesRoundTrip(t *testing.T) {
	rs, _ := FromResult(sampleResult())
	cols, rows, err := ToValues(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != "ItemID" {
		t.Fatalf("columns: %v", cols)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0][0].S != "bolt" || rows[0][1].S != "15" {
		t.Fatalf("first row: %v", rows[0])
	}
	if !rows[2][1].IsNull() {
		t.Fatalf("null survives: %v", rows[2][1])
	}
}

func TestToValuesErrors(t *testing.T) {
	if _, _, err := ToValues(xdm.NewElement("NotARowSet")); err == nil {
		t.Fatal("wrong root must error")
	}
	bad := xdm.NewElement(RootElement)
	bad.Element("Oops")
	if _, _, err := ToValues(bad); err == nil {
		t.Fatal("wrong row element must error")
	}
}

func TestRowAccess(t *testing.T) {
	rs, _ := FromResult(sampleResult())
	if Row(rs, 1) == nil || Field(Row(rs, 1), "ItemID") != "nut" {
		t.Fatal("Row(1)")
	}
	if Row(rs, -1) != nil || Row(rs, 3) != nil {
		t.Fatal("out-of-range rows must be nil")
	}
	if Count(rs) != 3 {
		t.Fatalf("count: %d", Count(rs))
	}
	cols := Columns(rs)
	if len(cols) != 2 || cols[1] != "Quantity" {
		t.Fatalf("columns: %v", cols)
	}
	if Columns(xdm.NewElement(RootElement)) != nil {
		t.Fatal("empty set has no columns")
	}
}

func TestAppendDeleteRenumber(t *testing.T) {
	rs, _ := FromResult(sampleResult())
	if _, err := AppendRow(rs, []string{"ItemID", "Quantity"}, []string{"washer", "7"}); err != nil {
		t.Fatal(err)
	}
	if Count(rs) != 4 {
		t.Fatalf("count after append: %d", Count(rs))
	}
	if n, _ := Row(rs, 3).Attr(NumAttr); n != "4" {
		t.Fatalf("appended row number: %s", n)
	}
	if err := DeleteRow(rs, 0); err != nil {
		t.Fatal(err)
	}
	if Count(rs) != 3 {
		t.Fatalf("count after delete: %d", Count(rs))
	}
	// Renumbering keeps numbers dense and ordered.
	for i, r := range Rows(rs) {
		if n, _ := r.Attr(NumAttr); n != string(rune('1'+i)) {
			t.Fatalf("row %d numbered %s", i, n)
		}
	}
	if err := DeleteRow(rs, 99); err == nil {
		t.Fatal("deleting missing row must error")
	}
	if _, err := AppendRow(rs, []string{"a"}, []string{"1", "2"}); err == nil {
		t.Fatal("mismatched append must error")
	}
}

func TestSetField(t *testing.T) {
	rs, _ := FromResult(sampleResult())
	r := Row(rs, 0)
	SetField(r, "Quantity", "99")
	if Field(r, "Quantity") != "99" {
		t.Fatal("update existing field")
	}
	SetField(r, "New", "x")
	if Field(r, "New") != "x" {
		t.Fatal("add new field")
	}
}

// Property: FromResult → ToValues preserves row count, column names, and
// string forms of all non-NULL values.
func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []int64, strs []string) bool {
		res := &sqldb.Result{Columns: []string{"A", "B"}}
		n := len(vals)
		if len(strs) < n {
			n = len(strs)
		}
		for i := 0; i < n; i++ {
			s := strs[i]
			// XML cannot carry control characters; sanitize as the
			// engine's string type would be used in practice.
			clean := []rune{}
			for _, r := range s {
				if r >= ' ' && r != 0xFFFD {
					clean = append(clean, r)
				}
			}
			res.Rows = append(res.Rows, []sqldb.Value{sqldb.Int(vals[i]), sqldb.Str(string(clean))})
		}
		rs, err := FromResult(res)
		if err != nil {
			return false
		}
		_, rows, err := ToValues(rs)
		if err != nil {
			return len(res.Rows) == 0
		}
		if len(rows) != len(res.Rows) {
			return false
		}
		for i, row := range rows {
			if row[0].S != res.Rows[i][0].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
