package xdm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildAndSerialize(t *testing.T) {
	row := NewElement("Row")
	row.SetAttr("id", "1")
	row.ElementWithText("ItemID", "bolt")
	row.ElementWithText("Quantity", "10")
	s := row.String()
	if !strings.Contains(s, `<Row id="1">`) || !strings.Contains(s, "<ItemID>bolt</ItemID>") {
		t.Fatalf("serialization: %s", s)
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `<RowSet><Row id="1"><ItemID>bolt</ItemID><Quantity>10</Quantity></Row><Row id="2"><ItemID>nut</ItemID><Quantity>3</Quantity></Row></RowSet>`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "RowSet" || len(n.ChildElements()) != 2 {
		t.Fatalf("parse structure: %s", n)
	}
	again, err := Parse(n.String())
	if err != nil {
		t.Fatal(err)
	}
	if !n.Equal(again) {
		t.Fatalf("round trip mismatch:\n%s\n%s", n, again)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"<a>",
		"<a></b>",
		"<a/><b/>",
		"just text",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestTextContent(t *testing.T) {
	n := MustParse("<a>one<b>two</b>three</a>")
	if got := n.TextContent(); got != "onetwothree" {
		t.Fatalf("TextContent: %q", got)
	}
}

func TestEscaping(t *testing.T) {
	n := NewElement("a")
	n.SetText(`5 < 6 & "quotes"`)
	n.SetAttr("k", `<&>`)
	parsed := MustParse(n.String())
	if parsed.TextContent() != `5 < 6 & "quotes"` {
		t.Fatalf("text escaping: %q -> %q", n.String(), parsed.TextContent())
	}
	if v, _ := parsed.Attr("k"); v != `<&>` {
		t.Fatalf("attr escaping: %q", v)
	}
}

func TestCloneIsDeepAndDetached(t *testing.T) {
	orig := MustParse("<a><b>x</b></a>")
	cl := orig.Clone()
	if !orig.Equal(cl) {
		t.Fatal("clone differs")
	}
	cl.FirstChildElement("b").SetText("y")
	if orig.ChildText("b") != "x" {
		t.Fatal("clone mutated original")
	}
	if cl.Parent() != nil {
		t.Fatal("clone should be detached")
	}
}

func TestRemoveAndInsert(t *testing.T) {
	n := MustParse("<a><b/><c/><d/></a>")
	c := n.FirstChildElement("c")
	if !n.RemoveChild(c) {
		t.Fatal("RemoveChild failed")
	}
	if len(n.ChildElements()) != 2 {
		t.Fatalf("children after remove: %d", len(n.ChildElements()))
	}
	if n.RemoveChild(c) {
		t.Fatal("double remove should fail")
	}
	b := n.FirstChildElement("b")
	if err := n.InsertChildAfter(b, NewElement("x")); err != nil {
		t.Fatal(err)
	}
	if n.ChildElements()[1].Name != "x" {
		t.Fatalf("insert position wrong: %s", n)
	}
	if err := n.InsertChildAfter(nil, NewElement("first")); err != nil {
		t.Fatal(err)
	}
	if n.Children[0].Name != "first" {
		t.Fatalf("insert-first wrong: %s", n)
	}
	if err := n.InsertChildAfter(c, NewElement("y")); err == nil {
		t.Fatal("insert after detached node should fail")
	}
}

func TestParentAndRoot(t *testing.T) {
	n := MustParse("<a><b><c/></b></a>")
	c := n.FirstChildElement("b").FirstChildElement("c")
	if c.Parent().Name != "b" {
		t.Fatalf("parent: %s", c.Parent().Name)
	}
	if c.Root() != n {
		t.Fatal("root mismatch")
	}
}

func TestSetAttrReplaces(t *testing.T) {
	n := NewElement("a")
	n.SetAttr("k", "1")
	n.SetAttr("k", "2")
	if len(n.Attrs) != 1 {
		t.Fatalf("attrs: %v", n.Attrs)
	}
	if v, _ := n.Attr("k"); v != "2" {
		t.Fatalf("attr value: %s", v)
	}
	if _, ok := n.Attr("missing"); ok {
		t.Fatal("missing attr reported present")
	}
}

func TestNumber(t *testing.T) {
	n := NewElement("q")
	n.SetText(" 42.5 ")
	f, err := n.Number()
	if err != nil || f != 42.5 {
		t.Fatalf("Number: %v %v", f, err)
	}
	n.SetText("abc")
	if _, err := n.Number(); err == nil {
		t.Fatal("expected error for non-number")
	}
}

func TestIndentOutput(t *testing.T) {
	n := MustParse("<a><b>x</b></a>")
	out := n.Indent()
	if !strings.Contains(out, "\n  <b>") {
		t.Fatalf("indent: %q", out)
	}
}

// Property: serialize→parse is the identity on trees built from sanitized
// element names and text content.
func TestQuickRoundTrip(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
				b.WriteRune(r)
			}
		}
		if b.Len() == 0 {
			return "x"
		}
		return b.String()
	}
	f := func(names []string, texts []string) bool {
		root := NewElement("root")
		cur := root
		for i, raw := range names {
			el := cur.Element("e" + sanitize(raw))
			if i < len(texts) {
				// Sanitize text too: XML cannot carry arbitrary control
				// characters, which is a property of XML, not of this model.
				el.SetText(sanitize(texts[i]) + " < & > ")
			}
			if i%2 == 0 {
				cur = el
			}
		}
		parsed, err := Parse(root.String())
		if err != nil {
			return false
		}
		return root.Equal(parsed)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
