// Package xdm implements the XML data model used throughout the workflow
// reproductions: BPEL process variables, the proprietary XML RowSet
// representation shared by the IBM and Oracle layers, and the node sets the
// XPath engine (internal/xpath) evaluates over.
//
// The model is deliberately small: element nodes with attributes and
// children, and text nodes. Namespaces are carried as plain prefixed names
// ("ora:query-database" style), which matches how the surveyed products'
// documents are presented in the paper.
package xdm

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates node kinds.
type Kind int

// Node kinds.
const (
	ElementNode Kind = iota
	TextNode
)

// Attr is a single attribute. Attributes are kept in a slice to preserve
// document order deterministically.
type Attr struct {
	Name  string
	Value string
}

// Node is an XML element or text node.
type Node struct {
	Kind     Kind
	Name     string // element name; empty for text nodes
	Text     string // text content; only for text nodes
	Attrs    []Attr
	Children []*Node
	parent   *Node
}

// NewElement creates an element node.
func NewElement(name string) *Node { return &Node{Kind: ElementNode, Name: name} }

// NewText creates a text node.
func NewText(text string) *Node { return &Node{Kind: TextNode, Text: text} }

// Parent returns the node's parent, or nil for a root.
func (n *Node) Parent() *Node { return n.parent }

// AppendChild adds c as the last child of n and returns n for chaining.
func (n *Node) AppendChild(c *Node) *Node {
	c.parent = n
	n.Children = append(n.Children, c)
	return n
}

// RemoveChild removes the child c (by identity). It reports whether c was
// found.
func (n *Node) RemoveChild(c *Node) bool {
	for i, ch := range n.Children {
		if ch == c {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			c.parent = nil
			return true
		}
	}
	return false
}

// InsertChildAfter inserts newChild immediately after ref (a child of n).
// If ref is nil, newChild is inserted first.
func (n *Node) InsertChildAfter(ref, newChild *Node) error {
	newChild.parent = n
	if ref == nil {
		n.Children = append([]*Node{newChild}, n.Children...)
		return nil
	}
	for i, ch := range n.Children {
		if ch == ref {
			n.Children = append(n.Children[:i+1], append([]*Node{newChild}, n.Children[i+1:]...)...)
			return nil
		}
	}
	return fmt.Errorf("xdm: reference node %s is not a child of %s", ref.Name, n.Name)
}

// SetAttr sets (or replaces) an attribute.
func (n *Node) SetAttr(name, value string) *Node {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetText replaces the node's children with a single text node.
func (n *Node) SetText(text string) *Node {
	for _, c := range n.Children {
		c.parent = nil
	}
	n.Children = n.Children[:0]
	n.AppendChild(NewText(text))
	return n
}

// TextContent returns the concatenated text of the node and its
// descendants (the XPath string-value of an element).
func (n *Node) TextContent() string {
	if n.Kind == TextNode {
		return n.Text
	}
	// Single-text-child elements (the overwhelmingly common shape) need
	// no builder.
	if len(n.Children) == 1 && n.Children[0].Kind == TextNode {
		return n.Children[0].Text
	}
	var b strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Kind == TextNode {
			b.WriteString(m.Text)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return b.String()
}

// Element creates, appends, and returns a child element (builder helper).
func (n *Node) Element(name string) *Node {
	c := NewElement(name)
	n.AppendChild(c)
	return c
}

// ElementWithText creates and appends a child element containing text and
// returns n for chaining.
func (n *Node) ElementWithText(name, text string) *Node {
	n.Element(name).SetText(text)
	return n
}

// ChildElements returns the element children of n (text nodes skipped).
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildElement returns the first child element with the given name
// (or any element if name is ""), or nil.
func (n *Node) FirstChildElement(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && (name == "" || c.Name == name) {
			return c
		}
	}
	return nil
}

// ChildText returns the text content of the first child element with the
// given name, or "".
func (n *Node) ChildText(name string) string {
	if c := n.FirstChildElement(name); c != nil {
		return c.TextContent()
	}
	return ""
}

// Clone returns a deep copy of the node (detached from any parent).
func (n *Node) Clone() *Node {
	out := &Node{Kind: n.Kind, Name: n.Name, Text: n.Text}
	out.Attrs = append([]Attr(nil), n.Attrs...)
	if len(n.Children) > 0 {
		out.Children = make([]*Node, 0, len(n.Children))
	}
	for _, c := range n.Children {
		out.AppendChild(c.Clone())
	}
	return out
}

// Root returns the topmost ancestor of n (n itself if detached).
func (n *Node) Root() *Node {
	r := n
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// Equal reports deep structural equality (names, attributes as sets,
// children in order, text).
func (n *Node) Equal(o *Node) bool {
	if n.Kind != o.Kind || n.Name != o.Name {
		return false
	}
	if n.Kind == TextNode {
		return n.Text == o.Text
	}
	if len(n.Attrs) != len(o.Attrs) {
		return false
	}
	na := append([]Attr(nil), n.Attrs...)
	oa := append([]Attr(nil), o.Attrs...)
	sort.Slice(na, func(i, j int) bool { return na[i].Name < na[j].Name })
	sort.Slice(oa, func(i, j int) bool { return oa[i].Name < oa[j].Name })
	for i := range na {
		if na[i] != oa[i] {
			return false
		}
	}
	nc, oc := n.significantChildren(), o.significantChildren()
	if len(nc) != len(oc) {
		return false
	}
	for i := range nc {
		if !nc[i].Equal(oc[i]) {
			return false
		}
	}
	return true
}

// significantChildren drops whitespace-only text nodes for comparison.
func (n *Node) significantChildren() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == TextNode && strings.TrimSpace(c.Text) == "" {
			continue
		}
		out = append(out, c)
	}
	return out
}

// String serializes the node as compact XML.
func (n *Node) String() string {
	var b strings.Builder
	b.Grow(n.sizeHint())
	n.write(&b, -1, 0)
	return b.String()
}

// sizeHint estimates the serialized length so String can allocate its
// buffer once instead of growing through it.
func (n *Node) sizeHint() int {
	if n.Kind == TextNode {
		return len(n.Text) + 8
	}
	sz := 2*len(n.Name) + 5 // <name></name>
	for _, a := range n.Attrs {
		sz += len(a.Name) + len(a.Value) + 4
	}
	for _, c := range n.Children {
		sz += c.sizeHint()
	}
	return sz
}

// Indent serializes the node as indented XML.
func (n *Node) Indent() string {
	var b strings.Builder
	n.write(&b, 0, 0)
	b.WriteByte('\n')
	return b.String()
}

func (n *Node) write(b *strings.Builder, indent, depth int) {
	pad := func(d int) {
		if indent >= 0 {
			if b.Len() > 0 {
				b.WriteByte('\n')
			}
			b.WriteString(strings.Repeat("  ", d))
		}
	}
	if n.Kind == TextNode {
		xmlEscape(b, n.Text)
		return
	}
	pad(depth)
	b.WriteByte('<')
	b.WriteString(n.Name)
	for _, a := range n.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		xmlEscape(b, a.Value)
		b.WriteByte('"')
	}
	if len(n.Children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	onlyText := true
	for _, c := range n.Children {
		if c.Kind != TextNode {
			onlyText = false
		}
	}
	for _, c := range n.Children {
		if onlyText {
			c.write(b, -1, depth+1)
		} else {
			c.write(b, indent, depth+1)
		}
	}
	if !onlyText {
		pad(depth)
	}
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteByte('>')
}

func xmlEscape(b *strings.Builder, s string) {
	// Copy unescaped spans in bulk; all escapable characters are ASCII,
	// so a byte scan is UTF-8-safe and the common no-escape case is a
	// single WriteString.
	start := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '"':
			esc = "&quot;"
		default:
			continue
		}
		b.WriteString(s[start:i])
		b.WriteString(esc)
		start = i + 1
	}
	b.WriteString(s[start:])
}

// Parse parses an XML document into a Node tree and returns the root
// element. Whitespace-only text between elements is dropped.
func Parse(src string) (*Node, error) {
	dec := xml.NewDecoder(strings.NewReader(src))
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("xdm: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			name := t.Name.Local
			if t.Name.Space != "" {
				// Preserve the raw prefix if one was written; encoding/xml
				// expands prefixes to URLs, so treat the space as a prefix
				// only when it contains no scheme separator.
				if !strings.Contains(t.Name.Space, "/") && !strings.Contains(t.Name.Space, ":") {
					name = t.Name.Space + ":" + t.Name.Local
				}
			}
			n := NewElement(name)
			for _, a := range t.Attr {
				an := a.Name.Local
				if a.Name.Space != "" && !strings.Contains(a.Name.Space, "/") && !strings.Contains(a.Name.Space, ":") {
					an = a.Name.Space + ":" + a.Name.Local
				}
				n.SetAttr(an, a.Value)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xdm: multiple root elements")
				}
				root = n
			} else {
				stack[len(stack)-1].AppendChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xdm: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := string(t)
			if len(stack) > 0 && strings.TrimSpace(text) != "" {
				stack[len(stack)-1].AppendChild(NewText(text))
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xdm: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xdm: unclosed elements")
	}
	return root, nil
}

// MustParse parses XML and panics on error (for tests and fixtures).
func MustParse(src string) *Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

// Number converts the node's text content to a float64 following XPath
// number() semantics (NaN is reported as an error here for clarity).
func (n *Node) Number() (float64, error) {
	s := strings.TrimSpace(n.TextContent())
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("xdm: %q is not a number", s)
	}
	return f, nil
}
