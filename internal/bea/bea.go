// Package bea reproduces the position BEA's AquaLogic BPM Suite occupies
// in the paper's Figure 1: a BPEL-based workflow product whose SQL support
// comes from the *adapter technology only* — data management operations
// are masked as Web services outside the process logic, and no SQL-inline
// mechanism exists. The paper lists AquaLogic among the BPEL engines in
// Section II but excludes it from the detailed comparison precisely
// because it offers no inline support; this package makes that contrast
// executable.
//
// Processes are ordinary engine processes; the only data management
// surface is InvokeSQLAdapter, which builds an invoke activity against a
// registered SQL adapter service (wsbus.RegisterSQLAdapter).
package bea

import (
	"fmt"

	"wfsql/internal/engine"
)

// ProcessBuilder assembles an AquaLogic-style BPEL process. It
// deliberately offers no SQL activity types, no set references, and no
// extension functions — only variables, a body, and the adapter bridge.
type ProcessBuilder struct {
	name string
	vars []engine.VarDecl
	body engine.Activity
}

// NewProcess starts building a process.
func NewProcess(name string) *ProcessBuilder {
	return &ProcessBuilder{name: name}
}

// Variable declares a scalar process variable.
func (b *ProcessBuilder) Variable(name, init string) *ProcessBuilder {
	b.vars = append(b.vars, engine.VarDecl{Name: name, Kind: engine.ScalarVar, Init: init})
	return b
}

// XMLVariable declares an XML process variable.
func (b *ProcessBuilder) XMLVariable(name, initXML string) *ProcessBuilder {
	b.vars = append(b.vars, engine.VarDecl{Name: name, Kind: engine.XMLVar, InitXML: initXML})
	return b
}

// Body sets the process body.
func (b *ProcessBuilder) Body(a engine.Activity) *ProcessBuilder {
	b.body = a
	return b
}

// Build produces the deployable process model.
func (b *ProcessBuilder) Build() *engine.Process {
	return &engine.Process{Name: b.name, Variables: b.vars, Body: b.body}
}

// InvokeSQLAdapter builds the adapter-technology bridge: an invoke
// activity that ships a SQL statement to the named adapter service and
// stores the response parts. Query responses land as a serialized XML
// RowSet string in rowsetVar; DML responses store the affected-row count
// in rowsAffectedVar. Exactly one of the two output variables applies per
// statement kind; pass "" for the other.
//
// The statement travels as an XPath string literal, so it must not
// contain single quotes — the adapter encapsulates parameters for that
// (parts p1..pN), which ParamExprs supplies as expressions over process
// variables.
func InvokeSQLAdapter(name, service, statement string, rowsetVar, rowsAffectedVar string, paramExprs ...string) (*engine.Invoke, error) {
	for _, r := range statement {
		if r == '\'' {
			return nil, fmt.Errorf("bea: statement may not contain single quotes; use adapter parameters")
		}
	}
	inv := engine.NewInvoke(name, service).In("statement", "'"+statement+"'")
	for i, pe := range paramExprs {
		inv.In(fmt.Sprintf("p%d", i+1), pe)
	}
	if rowsetVar != "" {
		inv.Out("rowset", rowsetVar)
	}
	if rowsAffectedVar != "" {
		inv.Out("rowsAffected", rowsAffectedVar)
	}
	return inv, nil
}
