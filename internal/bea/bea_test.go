package bea

import (
	"strings"
	"testing"

	"wfsql/internal/engine"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
	"wfsql/internal/xdm"
)

func newEnv() (*engine.Engine, *sqldb.DB) {
	db := sqldb.Open("orderdb")
	db.MustExec(`CREATE TABLE Orders (
		OrderID INTEGER PRIMARY KEY, ItemID VARCHAR NOT NULL,
		Quantity INTEGER NOT NULL, Approved BOOLEAN NOT NULL)`)
	db.MustExec(`INSERT INTO Orders VALUES
		(1, 'bolt', 10, TRUE), (2, 'bolt', 5, TRUE), (3, 'nut', 3, TRUE), (4, 'screw', 2, FALSE)`)
	bus := wsbus.New()
	wsbus.RegisterSQLAdapter(bus, "SQLAdapter", db)
	return engine.New(bus), db
}

// TestAdapterOnlyQuery demonstrates the Figure 1 adapter-technology path:
// the process sees only a service; the query result arrives as a
// serialized RowSet message part.
func TestAdapterOnlyQuery(t *testing.T) {
	e, _ := newEnv()
	inv, err := InvokeSQLAdapter("q", "SQLAdapter",
		"SELECT ItemID, SUM(Quantity) AS Quantity FROM Orders WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID",
		"result", "")
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess("adapterQuery").
		Variable("result", "").
		Body(inv).
		Build()
	d, err := e.Deploy(p)
	if err != nil {
		t.Fatal(err)
	}
	in, err := d.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The result is a *string* in the process space — by value, fully
	// materialized, exactly the property the paper contrasts with BIS
	// set references.
	doc, err := xdm.Parse(in.MustVariable("result").String())
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.ChildElements()) != 2 {
		t.Fatalf("rowset rows: %d", len(doc.ChildElements()))
	}
}

func TestAdapterOnlyDML(t *testing.T) {
	e, db := newEnv()
	inv, err := InvokeSQLAdapter("u", "SQLAdapter",
		"UPDATE Orders SET Approved = TRUE WHERE ItemID = ?",
		"", "n", "$item")
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess("adapterDML").
		Variable("item", "screw").
		Variable("n", "").
		Body(inv).
		Build()
	d, _ := e.Deploy(p)
	in, err := d.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if in.MustVariable("n").String() != "1" {
		t.Fatalf("rowsAffected: %q", in.MustVariable("n").String())
	}
	if got := db.MustExec("SELECT COUNT(*) FROM Orders WHERE Approved = TRUE").Rows[0][0].I; got != 4 {
		t.Fatalf("adapter DML effect: %d", got)
	}
}

func TestStatementQuoteRestriction(t *testing.T) {
	if _, err := InvokeSQLAdapter("q", "SQLAdapter",
		"SELECT * FROM Orders WHERE ItemID = 'bolt'", "r", ""); err == nil {
		t.Fatal("quoted literal must be rejected; parameters exist for that")
	}
}

// TestNoInlineSupport pins the package's defining property: the builder
// exposes no SQL-inline surface (this is a compile-time property; the
// test documents it by exercising the full exported API).
func TestNoInlineSupport(t *testing.T) {
	b := NewProcess("x").Variable("v", "").XMLVariable("d", "<a/>").
		Body(&engine.Empty{ActivityName: "e"})
	p := b.Build()
	if len(p.Variables) != 2 || p.Funcs != nil {
		t.Fatal("unexpected capabilities")
	}
	if strings.Contains(strings.ToLower(p.Name), "sql") {
		t.Fatal("sanity")
	}
}
