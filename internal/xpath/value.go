// Package xpath implements an XPath 1.0 subset over the xdm node model.
//
// BPEL mandates XPath as the expression language of assign activities; the
// paper's Random Set Access and Tuple IUD patterns for IBM BIS and Oracle
// SOA Suite are realized through XPath expressions over XML RowSets, and
// Oracle's SQL inline support consists of XPath *extension functions*
// (ora:query-database and friends). This engine therefore supports
// variables ($var), location paths with predicates, the XPath 1.0 core
// function library, and prefixed extension functions resolved through a
// caller-supplied FunctionResolver.
package xpath

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"wfsql/internal/xdm"
)

// ValueKind discriminates XPath 1.0 value types.
type ValueKind int

// XPath value kinds.
const (
	KindNodeSet ValueKind = iota
	KindString
	KindNumber
	KindBoolean
)

// Value is an XPath 1.0 value: node-set, string, number, or boolean.
type Value struct {
	Kind  ValueKind
	Nodes []*xdm.Node
	Str   string
	Num   float64
	Bool  bool
}

// NodeSet wraps nodes as a node-set value.
func NodeSet(nodes ...*xdm.Node) Value { return Value{Kind: KindNodeSet, Nodes: nodes} }

// String wraps a string value.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Number wraps a number value.
func Number(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// Boolean wraps a boolean value.
func Boolean(b bool) Value { return Value{Kind: KindBoolean, Bool: b} }

// AsString converts the value to a string per XPath 1.0 string().
func (v Value) AsString() string {
	switch v.Kind {
	case KindString:
		return v.Str
	case KindNumber:
		return formatNumber(v.Num)
	case KindBoolean:
		if v.Bool {
			return "true"
		}
		return "false"
	case KindNodeSet:
		if len(v.Nodes) == 0 {
			return ""
		}
		return v.Nodes[0].TextContent()
	}
	return ""
}

// AsNumber converts the value to a number per XPath 1.0 number().
func (v Value) AsNumber() float64 {
	switch v.Kind {
	case KindNumber:
		return v.Num
	case KindBoolean:
		if v.Bool {
			return 1
		}
		return 0
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
		if err != nil {
			return math.NaN()
		}
		return f
	case KindNodeSet:
		return String(v.AsString()).AsNumber()
	}
	return math.NaN()
}

// AsBool converts the value to a boolean per XPath 1.0 boolean().
func (v Value) AsBool() bool {
	switch v.Kind {
	case KindBoolean:
		return v.Bool
	case KindNumber:
		return v.Num != 0 && !math.IsNaN(v.Num)
	case KindString:
		return v.Str != ""
	case KindNodeSet:
		return len(v.Nodes) > 0
	}
	return false
}

// FirstNode returns the first node of a node-set value, or nil.
func (v Value) FirstNode() *xdm.Node {
	if v.Kind == KindNodeSet && len(v.Nodes) > 0 {
		return v.Nodes[0]
	}
	return nil
}

// formatNumber renders numbers the XPath way: integers without a decimal
// point.
func formatNumber(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// VariableResolver supplies values for $name references.
type VariableResolver interface {
	ResolveVariable(name string) (Value, error)
}

// FunctionResolver supplies implementations for extension functions
// (any function whose name contains a namespace prefix, e.g.
// "ora:query-database"). Core XPath functions are built in.
type FunctionResolver interface {
	CallFunction(name string, args []Value) (Value, error)
}

// Context is the evaluation context of an expression.
type Context struct {
	Node     *xdm.Node // context node (may be nil for variable-only exprs)
	Position int       // 1-based context position
	Size     int       // context size
	Vars     VariableResolver
	Funcs    FunctionResolver
}

// VarMap is a simple map-backed VariableResolver.
type VarMap map[string]Value

// ResolveVariable implements VariableResolver.
func (m VarMap) ResolveVariable(name string) (Value, error) {
	v, ok := m[name]
	if !ok {
		return Value{}, fmt.Errorf("xpath: undefined variable $%s", name)
	}
	return v, nil
}
