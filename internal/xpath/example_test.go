package xpath_test

import (
	"fmt"

	"wfsql/internal/xdm"
	"wfsql/internal/xpath"
)

// Example evaluates paths and predicates over an XML RowSet, the
// materialized-set shape the IBM and Oracle product layers use.
func Example() {
	doc := xdm.MustParse(`<RowSet>
		<Row><ItemID>bolt</ItemID><Quantity>15</Quantity></Row>
		<Row><ItemID>nut</ItemID><Quantity>3</Quantity></Row>
	</RowSet>`)

	expr := xpath.MustCompile("Row[Quantity > 10]/ItemID")
	v, _ := expr.Eval(&xpath.Context{Node: doc})
	fmt.Println(v.AsString())

	sum := xpath.MustCompile("sum(Row/Quantity)")
	v, _ = sum.Eval(&xpath.Context{Node: doc})
	fmt.Println(v.AsNumber())
	// Output:
	// bolt
	// 18
}

// ExampleVarMap shows variable references, the mechanism BPEL assign
// activities use to address process variables.
func ExampleVarMap() {
	vars := xpath.VarMap{
		"qty":  xpath.Number(7),
		"item": xpath.String("bolt"),
	}
	expr := xpath.MustCompile("concat($item, ':', $qty * 2)")
	v, _ := expr.Eval(&xpath.Context{Vars: vars})
	fmt.Println(v.AsString())
	// Output: bolt:14
}
