package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// --- Lexer ---

type tokKind int

const (
	tEOF tokKind = iota
	tName
	tNumber
	tString
	tSym
	tVar // $name
)

type tok struct {
	kind tokKind
	text string
	num  float64
}

func lex(src string) ([]tok, error) {
	var toks []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"':
			q := c
			j := i + 1
			for j < len(src) && src[j] != q {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("xpath: unterminated string literal")
			}
			toks = append(toks, tok{kind: tString, text: src[i+1 : j]})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			f, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("xpath: bad number %q", src[i:j])
			}
			toks = append(toks, tok{kind: tNumber, num: f})
			i = j
		case c == '$':
			j := i + 1
			for j < len(src) && isNameChar(rune(src[j])) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("xpath: expected variable name after $")
			}
			toks = append(toks, tok{kind: tVar, text: src[i+1 : j]})
			i = j
		case isNameStart(rune(c)):
			j := i
			for j < len(src) && isNameChar(rune(src[j])) {
				j++
			}
			toks = append(toks, tok{kind: tName, text: src[i:j]})
			i = j
		default:
			switch {
			case strings.HasPrefix(src[i:], "//"):
				toks = append(toks, tok{kind: tSym, text: "//"})
				i += 2
			case strings.HasPrefix(src[i:], "!="), strings.HasPrefix(src[i:], "<="), strings.HasPrefix(src[i:], ">="):
				toks = append(toks, tok{kind: tSym, text: src[i : i+2]})
				i += 2
			case strings.ContainsRune("/[]()@,|+-*=<>.", rune(c)):
				toks = append(toks, tok{kind: tSym, text: string(c)})
				i++
			default:
				return nil, fmt.Errorf("xpath: unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, tok{kind: tEOF})
	return toks, nil
}

func isNameStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == ':' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// --- AST ---

type node interface {
	evalNode(ctx *Context) (Value, error)
}

type binaryOp struct {
	op   string
	l, r node
}

type negOp struct{ x node }

type literalStr struct{ s string }

type literalNum struct{ f float64 }

type varRef struct{ name string }

type funcCall struct {
	name string
	args []node
}

// pathExpr is a location path, optionally rooted at a filter expression
// (e.g. $var/a/b or (expr)[1]/c).
type pathExpr struct {
	base     node // nil for plain location paths
	absolute bool // starts with /
	steps    []step
}

type axisKind int

const (
	axisChild axisKind = iota
	axisDescendant
	axisSelf
	axisParent
	axisAttribute
	axisText
)

type step struct {
	axis  axisKind
	name  string // element/attribute name test; "*" matches any
	preds []node
}

// filterExpr is a primary expression with predicates: (expr)[pred].
type filterExpr struct {
	base  node
	preds []node
}

// --- Parser ---

type xparser struct {
	toks []tok
	pos  int
}

// Expr is a compiled XPath expression.
type Expr struct {
	root node
	src  string
}

// Source returns the original expression text.
func (e *Expr) Source() string { return e.src }

// Compile parses an XPath expression.
func Compile(src string) (*Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &xparser{toks: toks}
	n, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, fmt.Errorf("xpath: unexpected trailing tokens in %q", src)
	}
	return &Expr{root: n, src: src}, nil
}

// MustCompile compiles an expression and panics on error.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Eval evaluates the expression in the given context.
func (e *Expr) Eval(ctx *Context) (Value, error) { return e.root.evalNode(ctx) }

func (p *xparser) peek() tok { return p.toks[p.pos] }

func (p *xparser) peekAt(n int) tok {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *xparser) next() tok {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *xparser) acceptSym(s string) bool {
	if t := p.peek(); t.kind == tSym && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *xparser) acceptName(s string) bool {
	if t := p.peek(); t.kind == tName && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *xparser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return fmt.Errorf("xpath: expected %q near token %d", s, p.pos)
	}
	return nil
}

func (p *xparser) parseExpr() (node, error) { return p.parseOr() }

func (p *xparser) parseOr() (node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptName("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binaryOp{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *xparser) parseAnd() (node, error) {
	l, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.acceptName("and") {
		r, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		l = &binaryOp{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *xparser) parseEquality() (node, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tSym && (t.text == "=" || t.text == "!=") {
			p.pos++
			r, err := p.parseRelational()
			if err != nil {
				return nil, err
			}
			l = &binaryOp{op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *xparser) parseRelational() (node, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tSym && (t.text == "<" || t.text == "<=" || t.text == ">" || t.text == ">=") {
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &binaryOp{op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *xparser) parseAdditive() (node, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tSym && (t.text == "+" || t.text == "-") {
			p.pos++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &binaryOp{op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *xparser) parseMultiplicative() (node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		op := ""
		if t.kind == tSym && t.text == "*" {
			op = "*"
		} else if t.kind == tName && (t.text == "div" || t.text == "mod") {
			op = t.text
		}
		if op == "" {
			return l, nil
		}
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binaryOp{op: op, l: l, r: r}
	}
}

func (p *xparser) parseUnary() (node, error) {
	if p.acceptSym("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &negOp{x: x}, nil
	}
	return p.parseUnion()
}

func (p *xparser) parseUnion() (node, error) {
	l, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	for p.acceptSym("|") {
		r, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		l = &binaryOp{op: "|", l: l, r: r}
	}
	return l, nil
}

// parsePath parses a PathExpr: a location path, or a filter expression
// optionally continued with /steps.
func (p *xparser) parsePath() (node, error) {
	t := p.peek()
	// Absolute location path.
	if t.kind == tSym && (t.text == "/" || t.text == "//") {
		pe := &pathExpr{absolute: true}
		if t.text == "//" {
			p.pos++
			st, err := p.parseStep()
			if err != nil {
				return nil, err
			}
			st.axis = descendantize(st.axis)
			pe.steps = append(pe.steps, st)
		} else {
			p.pos++
			if p.isStepStart() {
				st, err := p.parseStep()
				if err != nil {
					return nil, err
				}
				pe.steps = append(pe.steps, st)
			}
		}
		if err := p.parseMoreSteps(pe); err != nil {
			return nil, err
		}
		return pe, nil
	}
	// Filter expression start? ( literal, number, var, '(' , or function call )
	if t.kind == tString || t.kind == tNumber || t.kind == tVar ||
		(t.kind == tSym && t.text == "(") ||
		(t.kind == tName && p.peekAt(1).kind == tSym && p.peekAt(1).text == "(" && !isNodeTypeTest(t.text)) {
		base, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		fe := &filterExpr{base: base}
		for p.acceptSym("[") {
			pred, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym("]"); err != nil {
				return nil, err
			}
			fe.preds = append(fe.preds, pred)
		}
		var b node = fe
		if len(fe.preds) == 0 {
			b = base
		}
		// Continued path: $var/a/b
		if ts := p.peek(); ts.kind == tSym && (ts.text == "/" || ts.text == "//") {
			pe := &pathExpr{base: b}
			if err := p.parseMoreSteps(pe); err != nil {
				return nil, err
			}
			return pe, nil
		}
		return b, nil
	}
	// Relative location path.
	if p.isStepStart() {
		pe := &pathExpr{}
		st, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		pe.steps = append(pe.steps, st)
		if err := p.parseMoreSteps(pe); err != nil {
			return nil, err
		}
		return pe, nil
	}
	return nil, fmt.Errorf("xpath: unexpected token in path expression")
}

func (p *xparser) parseMoreSteps(pe *pathExpr) error {
	for {
		t := p.peek()
		if t.kind != tSym || (t.text != "/" && t.text != "//") {
			return nil
		}
		p.pos++
		st, err := p.parseStep()
		if err != nil {
			return err
		}
		if t.text == "//" {
			st.axis = descendantize(st.axis)
		}
		pe.steps = append(pe.steps, st)
	}
}

func descendantize(a axisKind) axisKind {
	if a == axisChild {
		return axisDescendant
	}
	return a
}

func (p *xparser) isStepStart() bool {
	t := p.peek()
	if t.kind == tName {
		return true
	}
	if t.kind == tSym && (t.text == "@" || t.text == "*" || t.text == "." || t.text == "..") {
		return true
	}
	// ".." arrives as two "." tokens.
	return false
}

func isNodeTypeTest(name string) bool {
	return name == "text" || name == "node"
}

func (p *xparser) parseStep() (step, error) {
	st := step{axis: axisChild}
	t := p.peek()
	switch {
	case t.kind == tSym && t.text == ".":
		p.pos++
		if p.acceptSym(".") {
			st.axis = axisParent
		} else {
			st.axis = axisSelf
		}
		return st, nil
	case t.kind == tSym && t.text == "@":
		p.pos++
		st.axis = axisAttribute
		nt := p.next()
		if nt.kind == tName {
			st.name = nt.text
		} else if nt.kind == tSym && nt.text == "*" {
			st.name = "*"
		} else {
			return st, fmt.Errorf("xpath: expected attribute name after @")
		}
	case t.kind == tSym && t.text == "*":
		p.pos++
		st.name = "*"
	case t.kind == tName:
		p.pos++
		if isNodeTypeTest(t.text) && p.acceptSym("(") {
			if err := p.expectSym(")"); err != nil {
				return st, err
			}
			if t.text == "text" {
				st.axis = axisText
			} else {
				st.name = "*" // node() — treat as any element child
			}
		} else {
			st.name = t.text
		}
	default:
		return st, fmt.Errorf("xpath: expected step")
	}
	for p.acceptSym("[") {
		pred, err := p.parseExpr()
		if err != nil {
			return st, err
		}
		if err := p.expectSym("]"); err != nil {
			return st, err
		}
		st.preds = append(st.preds, pred)
	}
	return st, nil
}

func (p *xparser) parsePrimary() (node, error) {
	t := p.next()
	switch t.kind {
	case tString:
		return &literalStr{s: t.text}, nil
	case tNumber:
		return &literalNum{f: t.num}, nil
	case tVar:
		return &varRef{name: t.text}, nil
	case tSym:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tName:
		if p.acceptSym("(") {
			fc := &funcCall{name: t.text}
			if !p.acceptSym(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.args = append(fc.args, a)
					if !p.acceptSym(",") {
						break
					}
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
	}
	return nil, fmt.Errorf("xpath: unexpected token in primary expression")
}
