package xpath

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"wfsql/internal/xdm"
)

// rowSetDoc builds the XML RowSet shape the IBM and Oracle layers use.
func rowSetDoc() *xdm.Node {
	root := xdm.NewElement("RowSet")
	add := func(id int, item string, qty int) {
		row := root.Element("Row")
		row.SetAttr("num", fmt.Sprintf("%d", id))
		row.ElementWithText("ItemID", item)
		row.ElementWithText("Quantity", fmt.Sprintf("%d", qty))
	}
	add(1, "bolt", 15)
	add(2, "nut", 3)
	add(3, "screw", 2)
	return root
}

func evalOn(t *testing.T, doc *xdm.Node, expr string) Value {
	t.Helper()
	e, err := Compile(expr)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	v, err := e.Eval(&Context{Node: doc, Position: 1, Size: 1})
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v
}

func TestChildSteps(t *testing.T) {
	doc := rowSetDoc()
	v := evalOn(t, doc, "Row")
	if len(v.Nodes) != 3 {
		t.Fatalf("Row count: %d", len(v.Nodes))
	}
	v = evalOn(t, doc, "Row/ItemID")
	if len(v.Nodes) != 3 || v.Nodes[0].TextContent() != "bolt" {
		t.Fatalf("Row/ItemID: %v", v.Nodes)
	}
}

func TestAbsolutePath(t *testing.T) {
	doc := rowSetDoc()
	inner := doc.ChildElements()[1] // a Row; absolute paths start from root
	e := MustCompile("/RowSet/Row/ItemID")
	v, err := e.Eval(&Context{Node: inner})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Nodes) != 3 {
		t.Fatalf("absolute path from inner node: %d", len(v.Nodes))
	}
}

func TestPositionalPredicate(t *testing.T) {
	doc := rowSetDoc()
	v := evalOn(t, doc, "Row[2]/ItemID")
	if v.AsString() != "nut" {
		t.Fatalf("Row[2]: %q", v.AsString())
	}
	v = evalOn(t, doc, "Row[last()]/ItemID")
	if v.AsString() != "screw" {
		t.Fatalf("Row[last()]: %q", v.AsString())
	}
	v = evalOn(t, doc, "Row[position() > 1]")
	if len(v.Nodes) != 2 {
		t.Fatalf("position()>1: %d", len(v.Nodes))
	}
}

func TestValuePredicate(t *testing.T) {
	doc := rowSetDoc()
	v := evalOn(t, doc, "Row[ItemID = 'nut']/Quantity")
	if v.AsNumber() != 3 {
		t.Fatalf("value predicate: %v", v.AsNumber())
	}
	v = evalOn(t, doc, "Row[Quantity > 2]")
	if len(v.Nodes) != 2 {
		t.Fatalf("numeric predicate: %d", len(v.Nodes))
	}
	v = evalOn(t, doc, "Row[@num = '3']/ItemID")
	if v.AsString() != "screw" {
		t.Fatalf("attribute predicate: %q", v.AsString())
	}
}

func TestDescendant(t *testing.T) {
	doc := rowSetDoc()
	e := MustCompile("//Quantity")
	v, err := e.Eval(&Context{Node: doc})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Nodes) != 3 {
		t.Fatalf("//Quantity: %d", len(v.Nodes))
	}
}

func TestParentAndSelf(t *testing.T) {
	doc := rowSetDoc()
	v := evalOn(t, doc, "Row[1]/ItemID/..")
	if len(v.Nodes) != 1 || v.Nodes[0].Name != "Row" {
		t.Fatalf("parent step: %v", v.Nodes)
	}
	v = evalOn(t, doc, "./Row[1]")
	if len(v.Nodes) != 1 {
		t.Fatalf("self step: %v", v.Nodes)
	}
}

func TestWildcardAndText(t *testing.T) {
	doc := rowSetDoc()
	v := evalOn(t, doc, "Row[1]/*")
	if len(v.Nodes) != 2 {
		t.Fatalf("wildcard: %d", len(v.Nodes))
	}
	v = evalOn(t, doc, "Row[1]/ItemID/text()")
	if len(v.Nodes) != 1 || v.Nodes[0].Text != "bolt" {
		t.Fatalf("text(): %v", v.Nodes)
	}
}

func TestVariables(t *testing.T) {
	doc := rowSetDoc()
	vars := VarMap{
		"ItemList": NodeSet(doc),
		"name":     String("bolt"),
		"limit":    Number(10),
	}
	e := MustCompile("$ItemList/Row[ItemID = $name]/Quantity")
	v, err := e.Eval(&Context{Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsNumber() != 15 {
		t.Fatalf("variable path: %v", v.AsNumber())
	}
	e = MustCompile("$limit * 2 + 1")
	v, err = e.Eval(&Context{Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsNumber() != 21 {
		t.Fatalf("variable arithmetic: %v", v.AsNumber())
	}
	if _, err := MustCompile("$missing").Eval(&Context{Vars: vars}); err == nil {
		t.Fatal("expected undefined variable error")
	}
}

func TestArithmeticAndLogic(t *testing.T) {
	cases := []struct {
		expr string
		num  float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 div 4", 2.5},
		{"10 mod 3", 1},
		{"-5 + 2", -3},
	}
	for _, c := range cases {
		v := evalOn(t, rowSetDoc(), c.expr)
		if v.AsNumber() != c.num {
			t.Errorf("%s: got %v, want %v", c.expr, v.AsNumber(), c.num)
		}
	}
	boolCases := []struct {
		expr string
		b    bool
	}{
		{"1 < 2 and 2 < 3", true},
		{"1 > 2 or 3 > 2", true},
		{"not(1 = 1)", false},
		{"true()", true},
		{"false()", false},
		{"'a' = 'a'", true},
		{"'a' != 'a'", false},
		{"3 >= 3", true},
	}
	for _, c := range boolCases {
		v := evalOn(t, rowSetDoc(), c.expr)
		if v.AsBool() != c.b {
			t.Errorf("%s: got %v, want %v", c.expr, v.AsBool(), c.b)
		}
	}
}

func TestCoreFunctions(t *testing.T) {
	doc := rowSetDoc()
	if v := evalOn(t, doc, "count(Row)"); v.AsNumber() != 3 {
		t.Errorf("count: %v", v.AsNumber())
	}
	if v := evalOn(t, doc, "sum(Row/Quantity)"); v.AsNumber() != 20 {
		t.Errorf("sum: %v", v.AsNumber())
	}
	if v := evalOn(t, doc, "concat('a', 'b', 'c')"); v.AsString() != "abc" {
		t.Errorf("concat: %v", v.AsString())
	}
	if v := evalOn(t, doc, "contains('workflow', 'flow')"); !v.AsBool() {
		t.Error("contains")
	}
	if v := evalOn(t, doc, "starts-with('workflow', 'work')"); !v.AsBool() {
		t.Error("starts-with")
	}
	if v := evalOn(t, doc, "substring('workflow', 5)"); v.AsString() != "flow" {
		t.Errorf("substring: %v", v.AsString())
	}
	if v := evalOn(t, doc, "substring('workflow', 1, 4)"); v.AsString() != "work" {
		t.Errorf("substring 3-arg: %v", v.AsString())
	}
	if v := evalOn(t, doc, "substring-before('a=b', '=')"); v.AsString() != "a" {
		t.Errorf("substring-before: %v", v.AsString())
	}
	if v := evalOn(t, doc, "substring-after('a=b', '=')"); v.AsString() != "b" {
		t.Errorf("substring-after: %v", v.AsString())
	}
	if v := evalOn(t, doc, "string-length('four')"); v.AsNumber() != 4 {
		t.Errorf("string-length: %v", v.AsNumber())
	}
	if v := evalOn(t, doc, "normalize-space('  a   b ')"); v.AsString() != "a b" {
		t.Errorf("normalize-space: %q", v.AsString())
	}
	if v := evalOn(t, doc, "translate('abc', 'abc', 'xyz')"); v.AsString() != "xyz" {
		t.Errorf("translate: %v", v.AsString())
	}
	if v := evalOn(t, doc, "floor(2.7)"); v.AsNumber() != 2 {
		t.Errorf("floor: %v", v.AsNumber())
	}
	if v := evalOn(t, doc, "ceiling(2.1)"); v.AsNumber() != 3 {
		t.Errorf("ceiling: %v", v.AsNumber())
	}
	if v := evalOn(t, doc, "round(2.5)"); v.AsNumber() != 3 {
		t.Errorf("round: %v", v.AsNumber())
	}
	if v := evalOn(t, doc, "string(12)"); v.AsString() != "12" {
		t.Errorf("string: %v", v.AsString())
	}
	if v := evalOn(t, doc, "number('3.5')"); v.AsNumber() != 3.5 {
		t.Errorf("number: %v", v.AsNumber())
	}
	if v := evalOn(t, doc, "name(Row[1])"); v.AsString() != "Row" {
		t.Errorf("name: %v", v.AsString())
	}
}

func TestNodeSetComparison(t *testing.T) {
	doc := rowSetDoc()
	// Existential semantics: some Quantity equals 3.
	if v := evalOn(t, doc, "Row/Quantity = 3"); !v.AsBool() {
		t.Error("nodeset = number")
	}
	if v := evalOn(t, doc, "Row/Quantity = 99"); v.AsBool() {
		t.Error("nodeset = absent number")
	}
	if v := evalOn(t, doc, "Row/ItemID = 'nut'"); !v.AsBool() {
		t.Error("nodeset = string")
	}
}

func TestUnion(t *testing.T) {
	doc := rowSetDoc()
	v := evalOn(t, doc, "Row[1]/ItemID | Row[2]/ItemID")
	if len(v.Nodes) != 2 {
		t.Fatalf("union: %d", len(v.Nodes))
	}
}

func TestConversionRules(t *testing.T) {
	if Number(2).AsString() != "2" {
		t.Error("integer formatting")
	}
	if Number(2.5).AsString() != "2.5" {
		t.Error("decimal formatting")
	}
	if !math.IsNaN(String("abc").AsNumber()) {
		t.Error("string->NaN")
	}
	if String("").AsBool() || !String("x").AsBool() {
		t.Error("string->bool")
	}
	if Boolean(true).AsNumber() != 1 || Boolean(false).AsNumber() != 0 {
		t.Error("bool->number")
	}
	if NodeSet().AsBool() {
		t.Error("empty nodeset is false")
	}
	empty := NodeSet()
	if empty.AsString() != "" {
		t.Error("empty nodeset string")
	}
	if Boolean(true).AsString() != "true" || Boolean(false).AsString() != "false" {
		t.Error("bool->string")
	}
}

// extFuncs is a test FunctionResolver standing in for the Oracle layer.
type extFuncs struct{ calls []string }

func (f *extFuncs) CallFunction(name string, args []Value) (Value, error) {
	f.calls = append(f.calls, name)
	switch name {
	case "ora:double":
		return Number(args[0].AsNumber() * 2), nil
	case "test:join":
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.AsString()
		}
		return String(strings.Join(parts, ",")), nil
	}
	return Value{}, fmt.Errorf("unknown extension function %s", name)
}

func TestExtensionFunctions(t *testing.T) {
	fr := &extFuncs{}
	e := MustCompile("ora:double(21)")
	v, err := e.Eval(&Context{Funcs: fr})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsNumber() != 42 {
		t.Fatalf("extension result: %v", v.AsNumber())
	}
	e = MustCompile("test:join('a', 'b', string(3))")
	v, err = e.Eval(&Context{Funcs: fr})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsString() != "a,b,3" {
		t.Fatalf("extension join: %v", v.AsString())
	}
	if len(fr.calls) != 2 {
		t.Fatalf("calls: %v", fr.calls)
	}
	// No resolver -> error.
	if _, err := MustCompile("ora:double(1)").Eval(&Context{}); err == nil {
		t.Fatal("expected resolver error")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"Row[",
		"Row]",
		"$",
		"'unterminated",
		"foo(",
		"1 +",
		"///",
		"Row/ItemID/",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestUnknownFunction(t *testing.T) {
	if _, err := MustCompile("no-such-fn(1)").Eval(&Context{Node: rowSetDoc()}); err == nil {
		t.Fatal("expected unknown function error")
	}
}

func TestPathFromVariableWithPredicates(t *testing.T) {
	doc := rowSetDoc()
	vars := VarMap{"rs": NodeSet(doc)}
	e := MustCompile("$rs/Row[position() = 2]/Quantity")
	v, err := e.Eval(&Context{Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsNumber() != 3 {
		t.Fatalf("got %v", v.AsNumber())
	}
}

func TestPrefixedElementMatching(t *testing.T) {
	doc := xdm.MustParse(`<ns1:RowSet><ns1:Row><ns1:Q>5</ns1:Q></ns1:Row></ns1:RowSet>`)
	e := MustCompile("Row/Q")
	v, err := e.Eval(&Context{Node: doc})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsNumber() != 5 {
		t.Fatalf("prefix-insensitive match: %v", v)
	}
}

func TestFilterExpressionPredicates(t *testing.T) {
	doc := rowSetDoc()
	vars := VarMap{"rs": NodeSet(doc.ChildElements()...)} // three Row nodes
	// Predicate applied directly to a variable's node-set.
	e := MustCompile("$rs[2]/ItemID")
	v, err := e.Eval(&Context{Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsString() != "nut" {
		t.Fatalf("$rs[2]: %q", v.AsString())
	}
	// Boolean predicate on a filter expression.
	e = MustCompile("$rs[Quantity > 2][last()]/ItemID")
	v, err = e.Eval(&Context{Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsString() != "nut" {
		t.Fatalf("chained filter predicates: %q", v.AsString())
	}
	// Parenthesized expression with predicate and trailing path.
	e = MustCompile("($rs)[1]/ItemID")
	v, err = e.Eval(&Context{Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	if v.AsString() != "bolt" {
		t.Fatalf("(expr)[1]: %q", v.AsString())
	}
	// Descendant step from a variable.
	e = MustCompile("$rs//Quantity")
	v, err = e.Eval(&Context{Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Nodes) != 3 {
		t.Fatalf("$rs//Quantity: %d", len(v.Nodes))
	}
	// Predicate on a non-node-set is an error.
	if _, err := MustCompile("$n[1]").Eval(&Context{Vars: VarMap{"n": Number(3)}}); err == nil {
		t.Fatal("predicate on number must error")
	}
}

func TestMixedTypeComparisons(t *testing.T) {
	doc := rowSetDoc()
	cases := []struct {
		expr string
		want bool
	}{
		// nodeset vs boolean: nodeset converts to boolean.
		{"Row = true()", true},
		{"Row[99] = true()", false},
		{"Row != 'bolt15'", true}, // some row's string-value differs
		// number vs string.
		{"3 = '3'", true},
		{"3 != '4'", true},
		// boolean vs number.
		{"true() = 1", true},
		{"false() = 0", true},
		// relational with nodesets on the right.
		{"2 < Row/Quantity", true},
		{"100 < Row/Quantity", false},
		// nodeset vs nodeset relational.
		{"Row[1]/Quantity > Row[2]/Quantity", true},
	}
	for _, c := range cases {
		v := evalOn(t, doc, c.expr)
		if v.AsBool() != c.want {
			t.Errorf("%s: got %v, want %v", c.expr, v.AsBool(), c.want)
		}
	}
}

func TestExprSource(t *testing.T) {
	e := MustCompile("$a/b[1]")
	if e.Source() != "$a/b[1]" {
		t.Fatalf("Source: %q", e.Source())
	}
}

func TestFirstNode(t *testing.T) {
	doc := rowSetDoc()
	if NodeSet(doc).FirstNode() != doc {
		t.Fatal("FirstNode on nodeset")
	}
	if NodeSet().FirstNode() != nil || String("x").FirstNode() != nil {
		t.Fatal("FirstNode on empty/non-nodeset")
	}
}

func TestNameFunctions(t *testing.T) {
	doc := xdm.MustParse("<ns:a><ns:b>x</ns:b></ns:a>")
	if v := evalOn(t, doc, "name(b)"); v.AsString() != "ns:b" {
		t.Errorf("name(): %q", v.AsString())
	}
	if v := evalOn(t, doc, "local-name(b)"); v.AsString() != "b" {
		t.Errorf("local-name(): %q", v.AsString())
	}
	if v := evalOn(t, doc, "local-name(b[99])"); v.AsString() != "" {
		t.Errorf("local-name of empty set: %q", v.AsString())
	}
}

func TestStringLengthAndStringOfContext(t *testing.T) {
	doc := xdm.MustParse("<a>hello</a>")
	e := MustCompile("string-length()")
	v, err := e.Eval(&Context{Node: doc})
	if err != nil || v.AsNumber() != 5 {
		t.Fatalf("string-length(): %v %v", v.AsNumber(), err)
	}
	e = MustCompile("string()")
	v, err = e.Eval(&Context{Node: doc})
	if err != nil || v.AsString() != "hello" {
		t.Fatalf("string(): %q %v", v.AsString(), err)
	}
	e = MustCompile("normalize-space()")
	doc2 := xdm.MustParse("<a>  a  b </a>")
	v, err = e.Eval(&Context{Node: doc2})
	if err != nil || v.AsString() != "a b" {
		t.Fatalf("normalize-space(): %q %v", v.AsString(), err)
	}
}

func TestAttributeWildcard(t *testing.T) {
	doc := xdm.MustParse(`<a x="1" y="2"/>`)
	v := evalOn(t, doc, "@*")
	if len(v.Nodes) != 2 {
		t.Fatalf("@*: %d", len(v.Nodes))
	}
	v = evalOn(t, doc, "@missing")
	if len(v.Nodes) != 0 {
		t.Fatalf("@missing: %d", len(v.Nodes))
	}
}

func TestNodeTest(t *testing.T) {
	doc := xdm.MustParse("<a><b/>text<c/></a>")
	v := evalOn(t, doc, "node()")
	if len(v.Nodes) != 2 { // node() maps to element children in this subset
		t.Fatalf("node(): %d", len(v.Nodes))
	}
}

func TestUnionRequiresNodeSets(t *testing.T) {
	if _, err := MustCompile("1 | 2").Eval(&Context{Node: rowSetDoc()}); err == nil {
		t.Fatal("union of numbers must error")
	}
}

func TestNegationAndDiv(t *testing.T) {
	doc := rowSetDoc()
	if v := evalOn(t, doc, "-(3 + 4)"); v.AsNumber() != -7 {
		t.Errorf("negation: %v", v.AsNumber())
	}
	if v := evalOn(t, doc, "1 div 0"); !math.IsInf(v.AsNumber(), 1) {
		t.Errorf("div by zero should be +Inf: %v", v.AsNumber())
	}
}
