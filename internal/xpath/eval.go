package xpath

import (
	"fmt"
	"math"
	"strings"

	"wfsql/internal/xdm"
)

func (l *literalStr) evalNode(ctx *Context) (Value, error) { return String(l.s), nil }

func (l *literalNum) evalNode(ctx *Context) (Value, error) { return Number(l.f), nil }

func (v *varRef) evalNode(ctx *Context) (Value, error) {
	if ctx.Vars == nil {
		return Value{}, fmt.Errorf("xpath: no variable resolver for $%s", v.name)
	}
	return ctx.Vars.ResolveVariable(v.name)
}

func (n *negOp) evalNode(ctx *Context) (Value, error) {
	v, err := n.x.evalNode(ctx)
	if err != nil {
		return Value{}, err
	}
	return Number(-v.AsNumber()), nil
}

func (b *binaryOp) evalNode(ctx *Context) (Value, error) {
	switch b.op {
	case "or":
		l, err := b.l.evalNode(ctx)
		if err != nil {
			return Value{}, err
		}
		if l.AsBool() {
			return Boolean(true), nil
		}
		r, err := b.r.evalNode(ctx)
		if err != nil {
			return Value{}, err
		}
		return Boolean(r.AsBool()), nil
	case "and":
		l, err := b.l.evalNode(ctx)
		if err != nil {
			return Value{}, err
		}
		if !l.AsBool() {
			return Boolean(false), nil
		}
		r, err := b.r.evalNode(ctx)
		if err != nil {
			return Value{}, err
		}
		return Boolean(r.AsBool()), nil
	}
	l, err := b.l.evalNode(ctx)
	if err != nil {
		return Value{}, err
	}
	r, err := b.r.evalNode(ctx)
	if err != nil {
		return Value{}, err
	}
	switch b.op {
	case "=", "!=":
		return Boolean(equalityCompare(l, r, b.op == "!=")), nil
	case "<", "<=", ">", ">=":
		return Boolean(relationalCompare(l, r, b.op)), nil
	case "+":
		return Number(l.AsNumber() + r.AsNumber()), nil
	case "-":
		return Number(l.AsNumber() - r.AsNumber()), nil
	case "*":
		return Number(l.AsNumber() * r.AsNumber()), nil
	case "div":
		return Number(l.AsNumber() / r.AsNumber()), nil
	case "mod":
		return Number(math.Mod(l.AsNumber(), r.AsNumber())), nil
	case "|":
		if l.Kind != KindNodeSet || r.Kind != KindNodeSet {
			return Value{}, fmt.Errorf("xpath: union requires node-sets")
		}
		seen := map[*xdm.Node]bool{}
		var out []*xdm.Node
		for _, n := range append(append([]*xdm.Node{}, l.Nodes...), r.Nodes...) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
		return NodeSet(out...), nil
	}
	return Value{}, fmt.Errorf("xpath: unknown operator %s", b.op)
}

// equalityCompare implements XPath 1.0 = / != semantics including node-set
// existential comparison.
func equalityCompare(l, r Value, negate bool) bool {
	eq := func(a, b Value) bool {
		// If either is a boolean, compare as booleans; else if either is a
		// number, compare as numbers; else as strings.
		if a.Kind == KindBoolean || b.Kind == KindBoolean {
			return a.AsBool() == b.AsBool()
		}
		if a.Kind == KindNumber || b.Kind == KindNumber {
			return a.AsNumber() == b.AsNumber()
		}
		return a.AsString() == b.AsString()
	}
	if l.Kind == KindNodeSet && r.Kind == KindNodeSet {
		for _, ln := range l.Nodes {
			for _, rn := range r.Nodes {
				if (ln.TextContent() == rn.TextContent()) != negate {
					return true
				}
			}
		}
		return false
	}
	if l.Kind == KindNodeSet {
		for _, ln := range l.Nodes {
			if eq(String(ln.TextContent()), r) != negate {
				return true
			}
		}
		return false
	}
	if r.Kind == KindNodeSet {
		for _, rn := range r.Nodes {
			if eq(l, String(rn.TextContent())) != negate {
				return true
			}
		}
		return false
	}
	return eq(l, r) != negate
}

func relationalCompare(l, r Value, op string) bool {
	cmp := func(a, b float64) bool {
		switch op {
		case "<":
			return a < b
		case "<=":
			return a <= b
		case ">":
			return a > b
		case ">=":
			return a >= b
		}
		return false
	}
	if l.Kind == KindNodeSet {
		for _, ln := range l.Nodes {
			if r.Kind == KindNodeSet {
				for _, rn := range r.Nodes {
					if cmp(String(ln.TextContent()).AsNumber(), String(rn.TextContent()).AsNumber()) {
						return true
					}
				}
			} else if cmp(String(ln.TextContent()).AsNumber(), r.AsNumber()) {
				return true
			}
		}
		return false
	}
	if r.Kind == KindNodeSet {
		for _, rn := range r.Nodes {
			if cmp(l.AsNumber(), String(rn.TextContent()).AsNumber()) {
				return true
			}
		}
		return false
	}
	return cmp(l.AsNumber(), r.AsNumber())
}

func (f *filterExpr) evalNode(ctx *Context) (Value, error) {
	v, err := f.base.evalNode(ctx)
	if err != nil {
		return Value{}, err
	}
	if v.Kind != KindNodeSet {
		return Value{}, fmt.Errorf("xpath: predicate applied to non-node-set")
	}
	nodes := v.Nodes
	for _, pred := range f.preds {
		nodes, err = applyPredicate(nodes, pred, ctx)
		if err != nil {
			return Value{}, err
		}
	}
	return NodeSet(nodes...), nil
}

func applyPredicate(nodes []*xdm.Node, pred node, ctx *Context) ([]*xdm.Node, error) {
	var out []*xdm.Node
	size := len(nodes)
	for i, n := range nodes {
		sub := &Context{Node: n, Position: i + 1, Size: size, Vars: ctx.Vars, Funcs: ctx.Funcs}
		pv, err := pred.evalNode(sub)
		if err != nil {
			return nil, err
		}
		keep := false
		if pv.Kind == KindNumber {
			keep = int(pv.Num) == i+1
		} else {
			keep = pv.AsBool()
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}

func (p *pathExpr) evalNode(ctx *Context) (Value, error) {
	var current []*xdm.Node
	switch {
	case p.base != nil:
		bv, err := p.base.evalNode(ctx)
		if err != nil {
			return Value{}, err
		}
		if bv.Kind != KindNodeSet {
			return Value{}, fmt.Errorf("xpath: path applied to non-node-set value")
		}
		current = bv.Nodes
	case p.absolute:
		if ctx.Node == nil {
			return Value{}, fmt.Errorf("xpath: absolute path with no context node")
		}
		current = []*xdm.Node{ctx.Node.Root()}
		// An absolute path's first step matches against the root element
		// itself (document-node semantics): /a selects the root if named a.
		if len(p.steps) > 0 && p.steps[0].axis == axisChild {
			st := p.steps[0]
			var matched []*xdm.Node
			for _, n := range current {
				if nameMatches(n, st.name) {
					matched = append(matched, n)
				}
			}
			var err error
			matched, err = applyStepPredicates(matched, st, ctx)
			if err != nil {
				return Value{}, err
			}
			current = matched
			return p.evalSteps(current, p.steps[1:], ctx)
		}
	default:
		if ctx.Node == nil {
			return Value{}, fmt.Errorf("xpath: relative path with no context node")
		}
		current = []*xdm.Node{ctx.Node}
	}
	return p.evalSteps(current, p.steps, ctx)
}

func (p *pathExpr) evalSteps(current []*xdm.Node, steps []step, ctx *Context) (Value, error) {
	for _, st := range steps {
		var next []*xdm.Node
		seen := map[*xdm.Node]bool{}
		add := func(n *xdm.Node) {
			if !seen[n] {
				seen[n] = true
				next = append(next, n)
			}
		}
		for _, n := range current {
			switch st.axis {
			case axisChild:
				for _, c := range n.Children {
					if c.Kind == xdm.ElementNode && nameMatches(c, st.name) {
						add(c)
					}
				}
			case axisDescendant:
				var walk func(*xdm.Node)
				walk = func(m *xdm.Node) {
					for _, c := range m.Children {
						if c.Kind == xdm.ElementNode {
							if nameMatches(c, st.name) {
								add(c)
							}
							walk(c)
						}
					}
				}
				if nameMatches(n, st.name) {
					add(n)
				}
				walk(n)
			case axisSelf:
				add(n)
			case axisParent:
				if pn := n.Parent(); pn != nil {
					add(pn)
				}
			case axisAttribute:
				if st.name == "*" {
					for _, a := range n.Attrs {
						add(attrNode(a.Name, a.Value))
					}
				} else if v, ok := n.Attr(st.name); ok {
					add(attrNode(st.name, v))
				}
			case axisText:
				for _, c := range n.Children {
					if c.Kind == xdm.TextNode {
						add(c)
					}
				}
			}
		}
		var err error
		next, err = applyStepPredicates(next, st, ctx)
		if err != nil {
			return Value{}, err
		}
		current = next
	}
	return NodeSet(current...), nil
}

func applyStepPredicates(nodes []*xdm.Node, st step, ctx *Context) ([]*xdm.Node, error) {
	var err error
	for _, pred := range st.preds {
		nodes, err = applyPredicate(nodes, pred, ctx)
		if err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// attrNode wraps an attribute as a synthetic text node so that its string
// value participates in comparisons and extraction uniformly.
func attrNode(name, value string) *xdm.Node {
	n := xdm.NewText(value)
	n.Name = name
	return n
}

func nameMatches(n *xdm.Node, test string) bool {
	if test == "*" {
		return true
	}
	if n.Name == test {
		return true
	}
	// Ignore-prefix matching: a test without a prefix matches a prefixed
	// element of the same local name (documents in the products mix
	// prefixed and unprefixed row elements).
	if !strings.Contains(test, ":") {
		if i := strings.LastIndex(n.Name, ":"); i >= 0 && n.Name[i+1:] == test {
			return true
		}
	}
	return false
}

func (f *funcCall) evalNode(ctx *Context) (Value, error) {
	// Extension functions carry a namespace prefix.
	if strings.Contains(f.name, ":") {
		if ctx.Funcs == nil {
			return Value{}, fmt.Errorf("xpath: no function resolver for %s()", f.name)
		}
		args := make([]Value, len(f.args))
		for i, a := range f.args {
			v, err := a.evalNode(ctx)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		return ctx.Funcs.CallFunction(f.name, args)
	}
	return f.evalCore(ctx)
}

func (f *funcCall) evalCore(ctx *Context) (Value, error) {
	evalArgs := func() ([]Value, error) {
		args := make([]Value, len(f.args))
		for i, a := range f.args {
			v, err := a.evalNode(ctx)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return args, nil
	}
	arity := func(args []Value, n int) error {
		if len(args) != n {
			return fmt.Errorf("xpath: %s() expects %d argument(s), got %d", f.name, n, len(args))
		}
		return nil
	}
	switch f.name {
	case "position":
		return Number(float64(ctx.Position)), nil
	case "last":
		return Number(float64(ctx.Size)), nil
	case "true":
		return Boolean(true), nil
	case "false":
		return Boolean(false), nil
	}
	args, err := evalArgs()
	if err != nil {
		return Value{}, err
	}
	switch f.name {
	case "count":
		if err := arity(args, 1); err != nil {
			return Value{}, err
		}
		if args[0].Kind != KindNodeSet {
			return Value{}, fmt.Errorf("xpath: count() requires a node-set")
		}
		return Number(float64(len(args[0].Nodes))), nil
	case "sum":
		if err := arity(args, 1); err != nil {
			return Value{}, err
		}
		if args[0].Kind != KindNodeSet {
			return Value{}, fmt.Errorf("xpath: sum() requires a node-set")
		}
		total := 0.0
		for _, n := range args[0].Nodes {
			total += String(n.TextContent()).AsNumber()
		}
		return Number(total), nil
	case "string":
		if len(args) == 0 {
			if ctx.Node == nil {
				return String(""), nil
			}
			return String(ctx.Node.TextContent()), nil
		}
		return String(args[0].AsString()), nil
	case "number":
		if err := arity(args, 1); err != nil {
			return Value{}, err
		}
		return Number(args[0].AsNumber()), nil
	case "boolean":
		if err := arity(args, 1); err != nil {
			return Value{}, err
		}
		return Boolean(args[0].AsBool()), nil
	case "not":
		if err := arity(args, 1); err != nil {
			return Value{}, err
		}
		return Boolean(!args[0].AsBool()), nil
	case "concat":
		var b strings.Builder
		for _, a := range args {
			b.WriteString(a.AsString())
		}
		return String(b.String()), nil
	case "contains":
		if err := arity(args, 2); err != nil {
			return Value{}, err
		}
		return Boolean(strings.Contains(args[0].AsString(), args[1].AsString())), nil
	case "starts-with":
		if err := arity(args, 2); err != nil {
			return Value{}, err
		}
		return Boolean(strings.HasPrefix(args[0].AsString(), args[1].AsString())), nil
	case "substring-before":
		if err := arity(args, 2); err != nil {
			return Value{}, err
		}
		s, sep := args[0].AsString(), args[1].AsString()
		if i := strings.Index(s, sep); i >= 0 {
			return String(s[:i]), nil
		}
		return String(""), nil
	case "substring-after":
		if err := arity(args, 2); err != nil {
			return Value{}, err
		}
		s, sep := args[0].AsString(), args[1].AsString()
		if i := strings.Index(s, sep); i >= 0 {
			return String(s[i+len(sep):]), nil
		}
		return String(""), nil
	case "substring":
		if len(args) != 2 && len(args) != 3 {
			return Value{}, fmt.Errorf("xpath: substring() expects 2 or 3 arguments")
		}
		s := args[0].AsString()
		start := int(math.Round(args[1].AsNumber()))
		length := len(s)
		if len(args) == 3 {
			length = int(math.Round(args[2].AsNumber()))
		}
		// XPath 1-based indexing.
		from := start - 1
		to := from + length
		if len(args) == 2 {
			to = len(s)
		}
		if from < 0 {
			from = 0
		}
		if to > len(s) {
			to = len(s)
		}
		if from >= len(s) || to <= from {
			return String(""), nil
		}
		return String(s[from:to]), nil
	case "string-length":
		if len(args) == 0 {
			if ctx.Node == nil {
				return Number(0), nil
			}
			return Number(float64(len(ctx.Node.TextContent()))), nil
		}
		return Number(float64(len(args[0].AsString()))), nil
	case "normalize-space":
		s := ""
		if len(args) == 0 {
			if ctx.Node != nil {
				s = ctx.Node.TextContent()
			}
		} else {
			s = args[0].AsString()
		}
		return String(strings.Join(strings.Fields(s), " ")), nil
	case "translate":
		if err := arity(args, 3); err != nil {
			return Value{}, err
		}
		s, from, to := args[0].AsString(), args[1].AsString(), args[2].AsString()
		var b strings.Builder
		for _, r := range s {
			if i := strings.IndexRune(from, r); i >= 0 {
				if i < len(to) {
					b.WriteByte(to[i])
				}
				continue
			}
			b.WriteRune(r)
		}
		return String(b.String()), nil
	case "floor":
		if err := arity(args, 1); err != nil {
			return Value{}, err
		}
		return Number(math.Floor(args[0].AsNumber())), nil
	case "ceiling":
		if err := arity(args, 1); err != nil {
			return Value{}, err
		}
		return Number(math.Ceil(args[0].AsNumber())), nil
	case "round":
		if err := arity(args, 1); err != nil {
			return Value{}, err
		}
		return Number(math.Round(args[0].AsNumber())), nil
	case "name", "local-name":
		if len(args) == 0 {
			if ctx.Node == nil {
				return String(""), nil
			}
			return String(localOrFull(ctx.Node.Name, f.name)), nil
		}
		if args[0].Kind != KindNodeSet || len(args[0].Nodes) == 0 {
			return String(""), nil
		}
		return String(localOrFull(args[0].Nodes[0].Name, f.name)), nil
	}
	return Value{}, fmt.Errorf("xpath: unknown function %s()", f.name)
}

func localOrFull(name, fn string) string {
	if fn == "local-name" {
		if i := strings.LastIndex(name, ":"); i >= 0 {
			return name[i+1:]
		}
	}
	return name
}
