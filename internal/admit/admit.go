// Package admit is the overload-protection layer in front of the
// instance scheduler: a bounded admission queue with pluggable
// full-queue policies (Block, Shed, TimeoutWait), per-job deadlines
// that are enforced both at admission and again at dequeue (a job whose
// budget expired while queued is shed without ever starting), an AIMD
// adaptive concurrency limiter driven by observed job latency, and a
// watermark-based brown-out controller that degrades work by priority
// class under sustained overload.
//
// The design follows the staged, backpressure-first discipline of
// SEDA-style servers and the deadline/shedding discipline of "The Tail
// at Scale": a workflow server that accepts everything protects
// nothing. Bounding the queue turns overload into an explicit,
// observable signal (admit.shed, sched.queue_depth) instead of
// unbounded latency; deadlines turn a stalled supplier from a
// worker-holding hostage into a bounded loss; the brown-out controller
// spends the remaining capacity on the work that matters most.
//
// The package depends only on the standard library and internal/obsv,
// so every layer (sched, the facade, benchmarks) can compose with it.
package admit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"wfsql/internal/obsv"
)

// Policy selects what Submit does when the queue is at capacity.
type Policy int

// Admission policies.
const (
	// Block waits (honoring the submitter's context) until space frees
	// up — classic backpressure onto the producer.
	Block Policy = iota
	// Shed rejects immediately with ErrShed — load shedding at the
	// front door, the cheapest place to say no.
	Shed
	// TimeoutWait blocks up to Options.Wait, then sheds — bounded
	// patience, between the other two.
	TimeoutWait
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Shed:
		return "shed"
	case TimeoutWait:
		return "timeout-wait"
	}
	return "unknown"
}

// Class is a job's priority class, consulted by the brown-out
// controller: under sustained overload Deferrable work is shed first,
// Normal work next (only at the queue bound), Critical work last.
type Class int

// Priority classes.
const (
	Critical Class = iota
	Normal
	Deferrable
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Critical:
		return "critical"
	case Normal:
		return "normal"
	case Deferrable:
		return "deferrable"
	}
	return "unknown"
}

// Shed reasons recorded on ShedError, the OnShed callback, and the
// admit.shed.<reason> counters.
const (
	ReasonQueueFull      = "queue-full"       // Shed policy, queue at bound
	ReasonWaitTimeout    = "wait-timeout"     // TimeoutWait patience exhausted
	ReasonBrownout       = "brownout"         // deferrable work under brown-out
	ReasonDeadline       = "deadline"         // budget already expired at submit
	ReasonExpiredInQueue = "expired-in-queue" // budget expired while queued
	ReasonClosed         = "closed"           // queue closed while waiting
)

// ErrShed is the sentinel every shed wraps; errors.Is(err, ErrShed)
// identifies an admission rejection regardless of reason.
var ErrShed = errors.New("admit: shed")

// ShedError reports why an admission was refused.
type ShedError struct {
	Reason string
}

// Error implements error.
func (e *ShedError) Error() string { return fmt.Sprintf("admit: shed (%s)", e.Reason) }

// Unwrap ties ShedError to ErrShed.
func (e *ShedError) Unwrap() error { return ErrShed }

// ShedReason extracts the shed reason ("" if err is not a shed).
func ShedReason(err error) string {
	var se *ShedError
	if errors.As(err, &se) {
		return se.Reason
	}
	return ""
}

// Ticket is one queued unit of work.
type Ticket[T any] struct {
	Item     T
	Class    Class
	Deadline time.Time // zero = no budget

	enqueued time.Time
}

// QueueWait reports how long the ticket sat in the queue (valid after
// Take returned it).
func (t Ticket[T]) QueueWait(now time.Time) time.Duration {
	if t.enqueued.IsZero() {
		return 0
	}
	return now.Sub(t.enqueued)
}

// Options configures a Queue.
type Options struct {
	// Capacity bounds the number of queued (admitted, not yet taken)
	// tickets. Values < 1 mean 1.
	Capacity int
	// Policy selects the full-queue behavior (default Block).
	Policy Policy
	// Wait bounds TimeoutWait's patience (default 10ms).
	Wait time.Duration
	// Brownout, when set, is consulted on every submit and fed every
	// depth change.
	Brownout *Brownout
	// OnShed is called (outside the queue lock) for every shed ticket,
	// including tickets shed at dequeue because their deadline expired
	// in the queue.
	OnShed func(t any, class Class, reason string)
	// DepthGauge names the queue-depth gauge (default
	// "sched.queue_depth").
	DepthGauge string
	// Obs receives admit.* metrics (nil-safe).
	Obs *obsv.Observability
	// Clock is injectable for tests (default time.Now).
	Clock func() time.Time
}

// Queue is a bounded FIFO admission queue. Safe for concurrent use by
// any number of submitters and takers.
type Queue[T any] struct {
	opts Options

	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	items    []Ticket[T]
	closed   bool

	submitted int64
	admitted  int64
	shed      int64
	highWater int
}

// NewQueue builds a queue.
func NewQueue[T any](opts Options) *Queue[T] {
	if opts.Capacity < 1 {
		opts.Capacity = 1
	}
	if opts.Wait <= 0 {
		opts.Wait = 10 * time.Millisecond
	}
	if opts.DepthGauge == "" {
		opts.DepthGauge = "sched.queue_depth"
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	q := &Queue[T]{opts: opts}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Capacity returns the configured bound.
func (q *Queue[T]) Capacity() int { return q.opts.Capacity }

// Depth returns the current number of queued tickets.
func (q *Queue[T]) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// HighWater returns the maximum depth ever observed.
func (q *Queue[T]) HighWater() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.highWater
}

// Counts reports submitted / admitted / shed totals.
func (q *Queue[T]) Counts() (submitted, admitted, shed int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.submitted, q.admitted, q.shed
}

// shedLocked accounts a shed and returns the error. Caller holds q.mu;
// the OnShed callback is deferred to the caller via the returned func.
func (q *Queue[T]) shedLocked(t Ticket[T], reason string) (*ShedError, func()) {
	q.shed++
	m := q.opts.Obs.M()
	m.Counter("admit.shed").Inc()
	m.Counter("admit.shed." + reason).Inc()
	cb := q.opts.OnShed
	notify := func() {
		if cb != nil {
			cb(t.Item, t.Class, reason)
		}
	}
	return &ShedError{Reason: reason}, notify
}

// Submit offers a ticket to the queue under the configured policy.
// A nil error means the ticket was admitted and a Take will eventually
// observe it (unless its deadline expires in the queue, in which case
// it is shed at dequeue and OnShed fires). A *ShedError means the
// ticket was refused and will never run. Any other error is the
// submitter's context expiring while blocked.
func (q *Queue[T]) Submit(ctx context.Context, t Ticket[T]) error {
	if ctx == nil {
		ctx = context.Background()
	}
	now := q.opts.Clock()

	q.mu.Lock()
	q.submitted++
	if q.closed {
		se, notify := q.shedLocked(t, ReasonClosed)
		q.mu.Unlock()
		notify()
		return se
	}
	// Budget already burned: shed before taking a queue slot.
	if !t.Deadline.IsZero() && !now.Before(t.Deadline) {
		se, notify := q.shedLocked(t, ReasonDeadline)
		q.mu.Unlock()
		notify()
		return se
	}
	// Brown-out: deferrable work is refused while the controller is
	// active, regardless of current depth — capacity is being reserved
	// for higher classes.
	if q.opts.Brownout != nil && t.Class == Deferrable && q.opts.Brownout.Active() {
		se, notify := q.shedLocked(t, ReasonBrownout)
		q.mu.Unlock()
		notify()
		return se
	}

	var timeout <-chan time.Time
	if q.opts.Policy == TimeoutWait {
		timer := time.NewTimer(q.opts.Wait)
		defer timer.Stop()
		timeout = timer.C
	}
	// Wake blocked submitters when the caller's context dies.
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.notFull.Broadcast()
		q.mu.Unlock()
	})
	defer stop()

	for len(q.items) >= q.opts.Capacity {
		switch q.opts.Policy {
		case Shed:
			se, notify := q.shedLocked(t, ReasonQueueFull)
			q.mu.Unlock()
			notify()
			return se
		case TimeoutWait:
			select {
			case <-timeout:
				se, notify := q.shedLocked(t, ReasonWaitTimeout)
				q.mu.Unlock()
				notify()
				return se
			default:
			}
		}
		if err := ctx.Err(); err != nil {
			q.mu.Unlock()
			return err
		}
		if q.closed {
			se, notify := q.shedLocked(t, ReasonClosed)
			q.mu.Unlock()
			notify()
			return se
		}
		// TimeoutWait needs periodic wakeups to notice its timer; Block
		// waits indefinitely (ctx wakeups via AfterFunc above).
		if q.opts.Policy == TimeoutWait {
			q.waitOrPoll()
		} else {
			q.notFull.Wait()
		}
	}

	t.enqueued = q.opts.Clock()
	q.items = append(q.items, t)
	q.admitted++
	depth := len(q.items)
	if depth > q.highWater {
		q.highWater = depth
	}
	q.opts.Obs.M().Gauge(q.opts.DepthGauge).SetInt(int64(depth))
	bo := q.opts.Brownout
	q.mu.Unlock()
	q.notEmpty.Signal()
	if bo != nil {
		bo.Observe(depth)
	}
	return nil
}

// waitOrPoll waits on notFull but wakes at least every millisecond so
// TimeoutWait submitters observe their timer without a dedicated
// goroutine per waiter. Caller holds q.mu.
func (q *Queue[T]) waitOrPoll() {
	done := make(chan struct{})
	go func() {
		select {
		case <-time.After(time.Millisecond):
			q.mu.Lock()
			q.notFull.Broadcast()
			q.mu.Unlock()
		case <-done:
		}
	}()
	q.notFull.Wait()
	close(done)
}

// Take removes the oldest admitted ticket, blocking until one is
// available or the queue is closed and drained (ok=false). Tickets
// whose deadline expired while queued are shed here — never returned —
// so a worker only ever receives work that still has budget.
func (q *Queue[T]) Take() (Ticket[T], bool) {
	q.mu.Lock()
	for {
		for len(q.items) == 0 {
			if q.closed {
				q.mu.Unlock()
				return Ticket[T]{}, false
			}
			q.notEmpty.Wait()
		}
		t := q.items[0]
		q.items = q.items[1:]
		depth := len(q.items)
		q.opts.Obs.M().Gauge(q.opts.DepthGauge).SetInt(int64(depth))
		now := q.opts.Clock()
		if !t.Deadline.IsZero() && !now.Before(t.Deadline) {
			se, notify := q.shedLocked(t, ReasonExpiredInQueue)
			_ = se
			bo := q.opts.Brownout
			q.mu.Unlock()
			q.notFull.Signal()
			notify()
			if bo != nil {
				bo.Observe(depth)
			}
			q.mu.Lock()
			continue
		}
		q.opts.Obs.M().Histogram("admit.queue_wait_ms").ObserveDuration(now.Sub(t.enqueued))
		bo := q.opts.Brownout
		q.mu.Unlock()
		q.notFull.Signal()
		if bo != nil {
			bo.Observe(depth)
		}
		return t, true
	}
}

// Close marks the queue closed: pending Takes drain the remaining
// tickets then return ok=false; new Submits shed with ReasonClosed.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}
