package admit

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfsql/internal/obsv"
)

func TestShedPolicyQueueFull(t *testing.T) {
	obs := obsv.New()
	q := NewQueue[int](Options{Capacity: 2, Policy: Shed, Obs: obs})
	ctx := context.Background()
	if err := q.Submit(ctx, Ticket[int]{Item: 1}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if err := q.Submit(ctx, Ticket[int]{Item: 2}); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	err := q.Submit(ctx, Ticket[int]{Item: 3})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", err)
	}
	if got := ShedReason(err); got != ReasonQueueFull {
		t.Fatalf("reason = %q, want %q", got, ReasonQueueFull)
	}
	sub, adm, shed := q.Counts()
	if sub != 3 || adm != 2 || shed != 1 {
		t.Fatalf("counts = %d/%d/%d, want 3/2/1", sub, adm, shed)
	}
	if n := obs.M().Counter("admit.shed").Value(); n != 1 {
		t.Fatalf("admit.shed = %d, want 1", n)
	}
	if q.HighWater() != 2 {
		t.Fatalf("high water = %d, want 2", q.HighWater())
	}
}

func TestBlockPolicyBackpressure(t *testing.T) {
	q := NewQueue[int](Options{Capacity: 1, Policy: Block})
	ctx := context.Background()
	if err := q.Submit(ctx, Ticket[int]{Item: 1}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Submit(ctx, Ticket[int]{Item: 2}) }()
	select {
	case err := <-done:
		t.Fatalf("blocked submit returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, ok := q.Take(); !ok {
		t.Fatal("take failed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("unblocked submit: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("submit never unblocked after Take")
	}
}

func TestBlockPolicyContextCancel(t *testing.T) {
	q := NewQueue[int](Options{Capacity: 1, Policy: Block})
	if err := q.Submit(context.Background(), Ticket[int]{Item: 1}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- q.Submit(ctx, Ticket[int]{Item: 2}) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled submit never returned")
	}
}

func TestTimeoutWaitSheds(t *testing.T) {
	q := NewQueue[int](Options{Capacity: 1, Policy: TimeoutWait, Wait: 15 * time.Millisecond})
	ctx := context.Background()
	if err := q.Submit(ctx, Ticket[int]{Item: 1}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	start := time.Now()
	err := q.Submit(ctx, Ticket[int]{Item: 2})
	elapsed := time.Since(start)
	if got := ShedReason(err); got != ReasonWaitTimeout {
		t.Fatalf("reason = %q (err %v), want %q", got, err, ReasonWaitTimeout)
	}
	if elapsed < 10*time.Millisecond {
		t.Fatalf("shed too early: %v", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("shed too late: %v", elapsed)
	}
}

func TestTimeoutWaitAdmitsWhenSpaceFrees(t *testing.T) {
	q := NewQueue[int](Options{Capacity: 1, Policy: TimeoutWait, Wait: 500 * time.Millisecond})
	ctx := context.Background()
	if err := q.Submit(ctx, Ticket[int]{Item: 1}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		q.Take()
	}()
	if err := q.Submit(ctx, Ticket[int]{Item: 2}); err != nil {
		t.Fatalf("submit after space freed: %v", err)
	}
}

func TestDeadlineShedAtSubmit(t *testing.T) {
	var shedItems []any
	var shedReasons []string
	q := NewQueue[int](Options{
		Capacity: 4,
		OnShed:   func(item any, _ Class, reason string) { shedItems = append(shedItems, item); shedReasons = append(shedReasons, reason) },
	})
	err := q.Submit(context.Background(), Ticket[int]{Item: 7, Deadline: time.Now().Add(-time.Millisecond)})
	if got := ShedReason(err); got != ReasonDeadline {
		t.Fatalf("reason = %q, want %q", got, ReasonDeadline)
	}
	if len(shedItems) != 1 || shedItems[0].(int) != 7 || shedReasons[0] != ReasonDeadline {
		t.Fatalf("OnShed = %v/%v", shedItems, shedReasons)
	}
}

func TestDeadlineExpiredInQueueShedAtTake(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	var shed int32
	q := NewQueue[int](Options{
		Capacity: 4,
		Clock:    clock,
		OnShed: func(_ any, _ Class, reason string) {
			if reason == ReasonExpiredInQueue {
				atomic.AddInt32(&shed, 1)
			}
		},
	})
	ctx := context.Background()
	// Admitted with 5s of budget.
	if err := q.Submit(ctx, Ticket[int]{Item: 1, Deadline: now.Add(5 * time.Second)}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// Fresh ticket with plenty of budget behind it.
	if err := q.Submit(ctx, Ticket[int]{Item: 2, Deadline: now.Add(time.Hour)}); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	// Time jumps past the first ticket's deadline while it sat queued.
	now = now.Add(10 * time.Second)
	got, ok := q.Take()
	if !ok {
		t.Fatal("take failed")
	}
	if got.Item != 2 {
		t.Fatalf("take returned item %d, want 2 (expired ticket must be shed, not run)", got.Item)
	}
	if atomic.LoadInt32(&shed) != 1 {
		t.Fatalf("expired-in-queue sheds = %d, want 1", shed)
	}
}

func TestBrownoutShedsDeferrableOnly(t *testing.T) {
	clockNow := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return clockNow }
	advance := func(d time.Duration) { mu.Lock(); clockNow = clockNow.Add(d); mu.Unlock() }

	bo := NewBrownout(BrownoutConfig{High: 2, Low: 0, Window: 10 * time.Millisecond, Clock: clock})
	var flips []bool
	bo.OnChange(func(active bool) { flips = append(flips, active) })

	q := NewQueue[int](Options{Capacity: 8, Policy: Shed, Brownout: bo, Clock: clock})
	ctx := context.Background()

	// Drive depth to the high watermark and hold it past the window.
	q.Submit(ctx, Ticket[int]{Item: 1})
	q.Submit(ctx, Ticket[int]{Item: 2}) // depth=2 >= High, starts the clock
	advance(20 * time.Millisecond)
	q.Submit(ctx, Ticket[int]{Item: 3}) // sustained above High → activate
	if !bo.Active() {
		t.Fatal("brownout should be active after sustained high depth")
	}
	if len(flips) != 1 || !flips[0] {
		t.Fatalf("OnChange flips = %v, want [true]", flips)
	}

	// Deferrable work is refused; Normal and Critical still admitted.
	err := q.Submit(ctx, Ticket[int]{Item: 4, Class: Deferrable})
	if got := ShedReason(err); got != ReasonBrownout {
		t.Fatalf("deferrable reason = %q, want %q", got, ReasonBrownout)
	}
	if err := q.Submit(ctx, Ticket[int]{Item: 5, Class: Normal}); err != nil {
		t.Fatalf("normal submit under brownout: %v", err)
	}
	if err := q.Submit(ctx, Ticket[int]{Item: 6, Class: Critical}); err != nil {
		t.Fatalf("critical submit under brownout: %v", err)
	}

	// Drain to the low watermark → deactivate.
	for q.Depth() > 0 {
		q.Take()
	}
	if bo.Active() {
		t.Fatal("brownout should deactivate once drained to low watermark")
	}
	if len(flips) != 2 || flips[1] {
		t.Fatalf("OnChange flips = %v, want [true false]", flips)
	}
	if bo.Activations() != 1 {
		t.Fatalf("activations = %d, want 1", bo.Activations())
	}
}

func TestBrownoutDipBelowHighResetsWindow(t *testing.T) {
	clockNow := time.Unix(0, 0)
	clock := func() time.Time { return clockNow }
	bo := NewBrownout(BrownoutConfig{High: 4, Window: 10 * time.Millisecond, Clock: clock})
	bo.Observe(4) // starts clock
	clockNow = clockNow.Add(5 * time.Millisecond)
	bo.Observe(3) // dips below: reset
	clockNow = clockNow.Add(20 * time.Millisecond)
	bo.Observe(4) // restarts clock — not yet sustained
	if bo.Active() {
		t.Fatal("dip below high must reset the sustain window")
	}
	clockNow = clockNow.Add(20 * time.Millisecond)
	bo.Observe(5)
	if !bo.Active() {
		t.Fatal("sustained above high must activate")
	}
}

func TestCloseShedsAndDrains(t *testing.T) {
	q := NewQueue[int](Options{Capacity: 4})
	ctx := context.Background()
	q.Submit(ctx, Ticket[int]{Item: 1})
	q.Submit(ctx, Ticket[int]{Item: 2})
	q.Close()
	if err := q.Submit(ctx, Ticket[int]{Item: 3}); ShedReason(err) != ReasonClosed {
		t.Fatalf("submit after close: %v", err)
	}
	// Remaining tickets drain.
	if got, ok := q.Take(); !ok || got.Item != 1 {
		t.Fatalf("take 1 = %v %v", got, ok)
	}
	if got, ok := q.Take(); !ok || got.Item != 2 {
		t.Fatalf("take 2 = %v %v", got, ok)
	}
	if _, ok := q.Take(); ok {
		t.Fatal("take after drain should report closed")
	}
}

func TestQueueConcurrentSubmitTakeConservation(t *testing.T) {
	const producers, perProducer = 8, 50
	obs := obsv.New()
	q := NewQueue[int](Options{Capacity: 4, Policy: Shed, Obs: obs})
	var taken int64
	var wg, takers sync.WaitGroup
	for w := 0; w < 2; w++ {
		takers.Add(1)
		go func() {
			defer takers.Done()
			for {
				if _, ok := q.Take(); !ok {
					return
				}
				atomic.AddInt64(&taken, 1)
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Submit(context.Background(), Ticket[int]{Item: i})
			}
		}()
	}
	wg.Wait()
	// Drain what's left.
	for q.Depth() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	takers.Wait()
	sub, adm, shed := q.Counts()
	if sub != producers*perProducer {
		t.Fatalf("submitted = %d, want %d", sub, producers*perProducer)
	}
	if adm+shed != sub {
		t.Fatalf("admitted(%d)+shed(%d) != submitted(%d)", adm, shed, sub)
	}
	if atomic.LoadInt64(&taken) != adm {
		t.Fatalf("taken = %d, want admitted = %d", taken, adm)
	}
	if hw := q.HighWater(); hw > q.Capacity() {
		t.Fatalf("high water %d exceeded capacity %d", hw, q.Capacity())
	}
	if g := obs.M().Snapshot().Gauges["sched.queue_depth"]; g.High > float64(q.Capacity()) {
		t.Fatalf("gauge high water %v exceeded capacity %d", g.High, q.Capacity())
	}
}

func TestLimiterFixedSemaphore(t *testing.T) {
	l := NewLimiter(AIMDConfig{Max: 2})
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	tctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := l.Acquire(tctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("third acquire = %v, want deadline exceeded", err)
	}
	l.Release(time.Millisecond)
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestLimiterAIMDAdapts(t *testing.T) {
	obs := obsv.New()
	l := NewLimiter(AIMDConfig{Min: 1, Max: 8, Target: 5 * time.Millisecond, Window: 4, Backoff: 0.5, Obs: obs})
	ctx := context.Background()
	// One slow window: p99 (20ms) > target (5ms) → multiplicative decrease.
	for i := 0; i < 4; i++ {
		if err := l.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
		l.Release(20 * time.Millisecond)
	}
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit after slow window = %d, want 4 (8*0.5)", got)
	}
	// Two fast windows: additive increase back up.
	for w := 0; w < 2; w++ {
		for i := 0; i < 4; i++ {
			if err := l.Acquire(ctx); err != nil {
				t.Fatal(err)
			}
			l.Release(time.Millisecond)
		}
	}
	if got := l.Limit(); got != 6 {
		t.Fatalf("limit after fast windows = %d, want 6", got)
	}
	snap := obs.M().Snapshot()
	if snap.Counters["admit.limit.decrease"] != 1 {
		t.Fatalf("decrease counter = %d, want 1", snap.Counters["admit.limit.decrease"])
	}
	if snap.Counters["admit.limit.increase"] != 2 {
		t.Fatalf("increase counter = %d, want 2", snap.Counters["admit.limit.increase"])
	}
	if snap.Gauges["admit.limit"].Value != 6 {
		t.Fatalf("admit.limit gauge = %v, want 6", snap.Gauges["admit.limit"].Value)
	}
}

func TestLimiterNeverBelowMin(t *testing.T) {
	l := NewLimiter(AIMDConfig{Min: 2, Max: 8, Target: time.Millisecond, Window: 2})
	ctx := context.Background()
	for w := 0; w < 10; w++ {
		for i := 0; i < 2; i++ {
			if err := l.Acquire(ctx); err != nil {
				t.Fatal(err)
			}
			l.Release(time.Second) // always way over target
		}
	}
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit = %d, want floor 2", got)
	}
}

func TestLimiterConcurrencyNeverExceedsLimit(t *testing.T) {
	l := NewLimiter(AIMDConfig{Max: 3})
	var inflight, maxSeen int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			cur := atomic.AddInt64(&inflight, 1)
			for {
				old := atomic.LoadInt64(&maxSeen)
				if cur <= old || atomic.CompareAndSwapInt64(&maxSeen, old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&inflight, -1)
			l.Release(time.Millisecond)
		}()
	}
	wg.Wait()
	if m := atomic.LoadInt64(&maxSeen); m > 3 {
		t.Fatalf("observed %d concurrent holders, limit 3", m)
	}
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var l *Limiter
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("nil limiter acquire: %v", err)
	}
	l.Release(time.Second)
	var b *Brownout
	b.Observe(100)
	if b.Active() {
		t.Fatal("nil brownout active")
	}
	b.OnChange(func(bool) {})
	if NewLimiter(AIMDConfig{}) != nil {
		t.Fatal("zero config should yield nil limiter")
	}
	if NewBrownout(BrownoutConfig{}) != nil {
		t.Fatal("zero config should yield nil brownout")
	}
}
