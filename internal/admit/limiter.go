package admit

import (
	"context"
	"math"
	"sort"
	"sync"
	"time"

	"wfsql/internal/obsv"
)

// AIMDConfig configures the adaptive concurrency limiter.
//
// The limiter starts at Max (optimistic) and adjusts the in-flight
// bound from observed job latency: every Window completed jobs it
// compares the window's p99 latency against Target. Above target →
// multiplicative decrease (limit *= Backoff, floored at Min). At or
// below target → additive increase (limit += 1, capped at Max). This
// is the classic AIMD discipline — probe for capacity slowly, retreat
// from congestion quickly — applied to worker parallelism instead of a
// TCP congestion window.
type AIMDConfig struct {
	// Min is the lower bound on concurrency. Defaults to 1.
	Min int
	// Max is the upper bound (and the starting limit). Required > 0.
	Max int
	// Target is the latency objective the p99 is compared against.
	// Required > 0 for adaptation; when zero the limiter is a plain
	// fixed semaphore at Max.
	Target time.Duration
	// Window is how many samples form one adaptation round.
	// Defaults to 16.
	Window int
	// Backoff is the multiplicative-decrease factor in (0,1).
	// Defaults to 0.7.
	Backoff float64
	// Obs, when non-nil, receives the admit.limit gauge and
	// admit.limit.{increase,decrease} counters.
	Obs *obsv.Observability
}

// Limiter is an AIMD adaptive concurrency limiter. Workers call
// Acquire before running a job and Release (with the job's latency)
// after. A nil *Limiter is inert: Acquire always succeeds immediately.
type Limiter struct {
	cfg AIMDConfig

	mu       sync.Mutex
	cond     *sync.Cond
	limit    float64 // current bound; int(limit) is the effective cap
	inflight int
	window   []float64 // latencies (ms) in the current round
}

// NewLimiter constructs a limiter. Returns nil when cfg.Max <= 0 so
// callers can thread "no limiter" through configuration naturally.
func NewLimiter(cfg AIMDConfig) *Limiter {
	if cfg.Max <= 0 {
		return nil
	}
	if cfg.Min <= 0 {
		cfg.Min = 1
	}
	if cfg.Min > cfg.Max {
		cfg.Min = cfg.Max
	}
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	if cfg.Backoff <= 0 || cfg.Backoff >= 1 {
		cfg.Backoff = 0.7
	}
	l := &Limiter{cfg: cfg, limit: float64(cfg.Max)}
	l.cond = sync.NewCond(&l.mu)
	l.cfg.Obs.M().Gauge("admit.limit").SetInt(int64(l.limit))
	return l
}

// Limit returns the current concurrency bound.
func (l *Limiter) Limit() int {
	if l == nil {
		return math.MaxInt32
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.effectiveLocked()
}

// Inflight returns the number of currently held slots.
func (l *Limiter) Inflight() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

func (l *Limiter) effectiveLocked() int {
	eff := int(l.limit)
	if eff < l.cfg.Min {
		eff = l.cfg.Min
	}
	return eff
}

// Acquire blocks until a concurrency slot is free or ctx is done. It
// returns ctx.Err() on cancellation, nil on success. Each successful
// Acquire must be paired with exactly one Release.
func (l *Limiter) Acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	// Wake the cond wait when ctx dies so we don't block forever.
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()

	l.mu.Lock()
	defer l.mu.Unlock()
	for l.inflight >= l.effectiveLocked() {
		if err := ctx.Err(); err != nil {
			return err
		}
		l.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	l.inflight++
	return nil
}

// Release returns a slot and feeds the job's observed latency into the
// adaptation window. Call with the wall time the job spent running
// (not queue wait — the limiter tunes worker parallelism against
// service latency, not arrival pressure).
func (l *Limiter) Release(latency time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.inflight > 0 {
		l.inflight--
	}
	if l.cfg.Target > 0 {
		l.window = append(l.window, float64(latency)/float64(time.Millisecond))
		if len(l.window) >= l.cfg.Window {
			l.adaptLocked()
			l.window = l.window[:0]
		}
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// adaptLocked runs one AIMD round over the completed window.
func (l *Limiter) adaptLocked() {
	sorted := make([]float64, len(l.window))
	copy(sorted, l.window)
	sort.Float64s(sorted)
	idx := int(math.Ceil(0.99*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	p99 := sorted[idx]
	targetMs := float64(l.cfg.Target) / float64(time.Millisecond)

	before := l.effectiveLocked()
	if p99 > targetMs {
		// Multiplicative decrease: retreat from congestion quickly.
		l.limit *= l.cfg.Backoff
		if l.limit < float64(l.cfg.Min) {
			l.limit = float64(l.cfg.Min)
		}
		if l.effectiveLocked() != before {
			l.cfg.Obs.M().Counter("admit.limit.decrease").Inc()
		}
	} else {
		// Additive increase: probe for capacity slowly.
		l.limit += 1
		if l.limit > float64(l.cfg.Max) {
			l.limit = float64(l.cfg.Max)
		}
		if l.effectiveLocked() != before {
			l.cfg.Obs.M().Counter("admit.limit.increase").Inc()
		}
	}
	l.cfg.Obs.M().Gauge("admit.limit").SetInt(int64(l.effectiveLocked()))
	if l.effectiveLocked() > before {
		// More room: wake waiters beyond the single slot Release frees.
		l.cond.Broadcast()
	}
}
