package admit

import (
	"sync"
	"time"

	"wfsql/internal/obsv"
)

// BrownoutConfig configures the watermark brown-out controller.
//
// The controller watches queue depth. When depth sits at or above High
// for at least Window (sustained — a single dip below High resets the
// clock), the controller activates. While active, Deferrable work is
// shed at admission and registered OnChange hooks fire so callers can
// degrade other subsystems (e.g. journal sync always→critical). When
// depth falls to Low or below, the controller deactivates and hooks
// fire again with active=false.
type BrownoutConfig struct {
	// High is the activation watermark (queue depth). Required > 0.
	High int
	// Low is the deactivation watermark. Defaults to High/2.
	Low int
	// Window is how long depth must stay >= High before activating.
	// Defaults to 50ms.
	Window time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// Obs, when non-nil, receives brownout.active gauge updates and
	// brownout.activations counter increments.
	Obs *obsv.Observability
}

// Brownout is the watermark-based graceful-degradation controller.
// A nil *Brownout is inert: Active reports false, Observe no-ops.
type Brownout struct {
	cfg BrownoutConfig

	mu         sync.Mutex
	active     bool
	aboveSince time.Time // zero when depth < High
	hooks      []func(active bool)

	activations int64
}

// NewBrownout constructs a controller. Returns nil when cfg.High <= 0,
// so callers can pass the result straight into Options.Brownout.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	if cfg.High <= 0 {
		return nil
	}
	if cfg.Low <= 0 {
		cfg.Low = cfg.High / 2
	}
	if cfg.Low >= cfg.High {
		cfg.Low = cfg.High - 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 50 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	b := &Brownout{cfg: cfg}
	b.cfg.Obs.M().Gauge("brownout.active").SetBool(false)
	return b
}

// OnChange registers fn to be called (outside the controller lock)
// whenever the active state flips. fn receives the new state.
func (b *Brownout) OnChange(fn func(active bool)) {
	if b == nil || fn == nil {
		return
	}
	b.mu.Lock()
	b.hooks = append(b.hooks, fn)
	b.mu.Unlock()
}

// Active reports whether the brown-out is currently engaged.
func (b *Brownout) Active() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// Activations returns how many times the controller has engaged.
func (b *Brownout) Activations() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.activations
}

// Observe feeds one queue-depth sample to the controller. The admission
// queue calls this on every enqueue/dequeue.
func (b *Brownout) Observe(depth int) {
	if b == nil {
		return
	}
	now := b.cfg.Clock()
	var fire []func(bool)
	var newState bool

	b.mu.Lock()
	switch {
	case !b.active:
		if depth >= b.cfg.High {
			if b.aboveSince.IsZero() {
				b.aboveSince = now
			} else if now.Sub(b.aboveSince) >= b.cfg.Window {
				b.active = true
				b.activations++
				b.aboveSince = time.Time{}
				fire = append(fire, b.hooks...)
				newState = true
				b.cfg.Obs.M().Counter("brownout.activations").Inc()
				b.cfg.Obs.M().Gauge("brownout.active").SetBool(true)
			}
		} else {
			b.aboveSince = time.Time{}
		}
	case b.active:
		if depth <= b.cfg.Low {
			b.active = false
			b.aboveSince = time.Time{}
			fire = append(fire, b.hooks...)
			newState = false
			b.cfg.Obs.M().Gauge("brownout.active").SetBool(false)
		}
	}
	b.mu.Unlock()

	for _, fn := range fire {
		fn(newState)
	}
}
