package patterns

import (
	"fmt"

	"wfsql/internal/engine"
	"wfsql/internal/mswf"
	"wfsql/internal/orasoa"
	"wfsql/internal/sqldb"
	"wfsql/internal/wsbus"
)

// Env is a fresh conformance environment: one database seeded with the
// paper's running-example schema, a service bus with the sample supplier
// service, a BPEL engine (for IBM/Oracle), and a WF runtime (for
// Microsoft).
type Env struct {
	DB       *sqldb.DB
	Bus      *wsbus.Bus
	Engine   *engine.Engine
	Runtime  *mswf.Runtime
	Supplier *wsbus.OrderFromSupplierService
	Funcs    *orasoa.Functions
}

// DataSourceName is the registered name of the conformance database.
const DataSourceName = "orderdb"

// ConnString is the WF connection string for the conformance database.
const ConnString = "Provider=SqlServer;Data Source=" + DataSourceName

// NewEnv builds a fresh conformance environment.
func NewEnv() *Env {
	db := sqldb.Open(DataSourceName)
	db.MustExec(`CREATE TABLE Orders (
		OrderID INTEGER PRIMARY KEY, ItemID VARCHAR NOT NULL,
		Quantity INTEGER NOT NULL, Approved BOOLEAN NOT NULL)`)
	db.MustExec(`INSERT INTO Orders VALUES
		(1, 'bolt', 10, TRUE), (2, 'bolt', 5, TRUE), (3, 'nut', 7, FALSE),
		(4, 'nut', 3, TRUE), (5, 'screw', 2, TRUE), (6, 'screw', 9, FALSE)`)
	db.MustExec(`CREATE TABLE OrderConfirmations (
		ItemID VARCHAR, Quantity INTEGER, Confirmation VARCHAR)`)
	db.MustExec(`CREATE PROCEDURE approved_totals () AS
		'SELECT ItemID, SUM(Quantity) AS Quantity FROM Orders
		 WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID'`)

	bus := wsbus.New()
	supplier := wsbus.NewOrderFromSupplier(0)
	bus.Register("OrderFromSupplier", supplier.Handle)
	wsbus.RegisterSQLAdapter(bus, "SQLAdapter", db)

	e := engine.New(bus)
	e.RegisterDataSource(DataSourceName, db)

	rt := mswf.NewRuntime()
	rt.RegisterDatabase(DataSourceName, mswf.SQLServer, db)
	rt.RegisterService("OrderFromSupplier", func(req map[string]string) (map[string]string, error) {
		return supplier.Handle(req)
	})

	return &Env{
		DB:       db,
		Bus:      bus,
		Engine:   e,
		Runtime:  rt,
		Supplier: supplier,
		Funcs:    orasoa.NewFunctions(db),
	}
}

// scalar runs a scalar query and returns its single value.
func (env *Env) scalar(sql string) (sqldb.Value, error) {
	res, err := env.DB.Session().Query(sql)
	if err != nil {
		return sqldb.Null(), err
	}
	return res.ScalarValue()
}

// expectInt asserts a scalar query result.
func (env *Env) expectInt(sql string, want int64) error {
	v, err := env.scalar(sql)
	if err != nil {
		return err
	}
	got, ok := v.AsInt()
	if !ok || got != want {
		return fmt.Errorf("%s: got %v, want %d", sql, v, want)
	}
	return nil
}

// CaseResult is the outcome of one executed conformance case.
type CaseResult struct {
	Product   string
	Pattern   Pattern
	Mechanism Mechanism
	Support   Support
	Footnote  string
	Err       error
}

// RunConformance executes every conformance case of every product, each in
// a fresh environment, and returns the results.
func RunConformance(products []Product) []CaseResult {
	var out []CaseResult
	for _, p := range products {
		info := p.Info()
		for _, c := range p.Conformance() {
			env := NewEnv()
			err := c.Run(env)
			out = append(out, CaseResult{
				Product:   info.ShortName,
				Pattern:   c.Pattern,
				Mechanism: c.Mechanism,
				Support:   c.Support,
				Footnote:  c.Footnote,
				Err:       err,
			})
		}
	}
	return out
}

// Failures filters the failed cases.
func Failures(results []CaseResult) []CaseResult {
	var out []CaseResult
	for _, r := range results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}
