// Package patterns implements the paper's primary contribution: the
// taxonomy of nine data management patterns for accessing and processing
// data in business processes (Figure 2), a capability model for SQL
// support in workflow products, and generators that regenerate the
// paper's Table I (general information and data management capabilities)
// and Table II (data management pattern support).
//
// Unlike the paper — which could only assert support levels in prose —
// every cell of Table II here is backed by an *executable conformance
// case* that drives the corresponding product reproduction against a live
// database and verifies the observable effect. The tables are derived
// from the running code.
package patterns

import "fmt"

// Pattern enumerates the paper's data management patterns.
type Pattern int

// The nine data management patterns of Figure 2. The first four concern
// external data (managed by a database system); the last five concern
// internal data (a data cache in the process space).
const (
	// Query expresses the need for querying external data by means of SQL
	// queries; results are stored externally or materialized in the
	// process space.
	Query Pattern = iota
	// SetIUD covers set-oriented INSERT, UPDATE, and DELETE on external
	// data via SQL statements.
	SetIUD
	// DataSetup covers executing DDL statements for configuration and
	// setup purposes during process execution.
	DataSetup
	// StoredProcedure covers calling stored procedures on external data.
	StoredProcedure
	// SetRetrieval covers retrieving external data and materializing it
	// in a set-oriented data structure in the process space — a cache
	// holding no connection to the original source.
	SetRetrieval
	// SeqSetAccess covers sequential (cursor-style) access to the cache.
	SeqSetAccess
	// RandomSetAccess covers random access to the cache.
	RandomSetAccess
	// TupleIUD covers insert, update, and delete on the cache.
	TupleIUD
	// Synchronization covers synchronizing the cache with the original
	// data source.
	Synchronization
)

// AllPatterns lists the patterns in the paper's Table II column order.
var AllPatterns = []Pattern{
	Query, SetIUD, DataSetup, StoredProcedure, SetRetrieval,
	SeqSetAccess, RandomSetAccess, TupleIUD, Synchronization,
}

// String returns the paper's name for the pattern.
func (p Pattern) String() string {
	switch p {
	case Query:
		return "Query"
	case SetIUD:
		return "Set IUD"
	case DataSetup:
		return "Data Setup"
	case StoredProcedure:
		return "Stored Procedure"
	case SetRetrieval:
		return "Set Retrieval"
	case SeqSetAccess:
		return "Seq. Set Access"
	case RandomSetAccess:
		return "Random Set Access"
	case TupleIUD:
		return "Tuple IUD"
	case Synchronization:
		return "Synchronization"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Description returns the paper's definition of the pattern (Section
// II-B).
func (p Pattern) Description() string {
	switch p {
	case Query:
		return "querying external data by means of SQL queries; results are stored in the external data source or materialized in the process space"
	case SetIUD:
		return "set-oriented insert, update and delete operations on external data via SQL statements"
	case DataSetup:
		return "executing DDL statements on a relational database system for configuration and setup purposes during process execution"
	case StoredProcedure:
		return "calling stored procedures for complex processing of external data"
	case SetRetrieval:
		return "retrieving data from an external data source and materializing it in a set-oriented data structure in the process space, acting as a data cache with no connection to the original source"
	case SeqSetAccess:
		return "sequential access to the data cache in the process space"
	case RandomSetAccess:
		return "random access to the data cache in the process space"
	case TupleIUD:
		return "insert, update and delete on the data cache"
	case Synchronization:
		return "synchronization of the local data cache with the original data source"
	}
	return ""
}

// External reports whether the pattern concerns external data (Figure 2's
// upper half) rather than the process-space cache.
func (p Pattern) External() bool {
	switch p {
	case Query, SetIUD, DataSetup, StoredProcedure:
		return true
	}
	return false
}

// Support classifies how a product mechanism realizes a pattern.
type Support int

// Support levels, from the paper's discussion: a pattern may be realized
// at an abstract level by a dedicated mechanism, only partially so
// (Table II's footnotes), only through workarounds including user-specific
// code, or not at all.
const (
	Unsupported Support = iota
	WorkaroundOnly
	Partial
	Abstract
)

// String returns the level name.
func (s Support) String() string {
	switch s {
	case Unsupported:
		return "unsupported"
	case WorkaroundOnly:
		return "workaround"
	case Partial:
		return "partial"
	case Abstract:
		return "abstract"
	}
	return fmt.Sprintf("Support(%d)", int(s))
}

// Mark renders the level as a Table II cell.
func (s Support) Mark() string {
	switch s {
	case Abstract:
		return "x"
	case Partial:
		return "x*"
	case WorkaroundOnly:
		return "w"
	}
	return ""
}

// GeneralInfo holds a product's Table I rows.
type GeneralInfo struct {
	Vendor            string
	ProductName       string
	ShortName         string
	WorkflowLanguage  string
	ModelingLevel     string
	DesignTool        string
	SQLInlineSupport  []string // the mechanisms providing SQL inline support
	ExternalDataSet   string   // how activities reference external data sets
	MaterializedSet   string   // materialized set representation
	ExternalSource    string   // how external data sources are referenced
	AdditionalFeature string   // "-" if none
}

// Mechanism is a Table II row label: the product mechanism through which
// patterns are (or are not) realized at an abstract level.
type Mechanism string

// WorkaroundRow is the paper's "Only workarounds possible" row label.
const WorkaroundRow Mechanism = "Only workarounds possible"

// Cell is one Table II cell claim: mechanism × pattern with a support
// level and an optional footnote.
type Cell struct {
	Mechanism Mechanism
	Pattern   Pattern
	Support   Support
	Footnote  string // e.g. "only UPDATE"
}

// ConformanceCase is an executable proof for a pattern on a product: Run
// drives the product reproduction against a fresh environment and returns
// an error if the pattern's observable effect is not achieved.
type ConformanceCase struct {
	Pattern   Pattern
	Mechanism Mechanism
	Support   Support
	Footnote  string
	Run       func(env *Env) error
}

// Product is one surveyed workflow product reproduction.
type Product interface {
	// Info returns the Table I column for the product.
	Info() GeneralInfo
	// Cells returns the product's Table II rows.
	Cells() []Cell
	// Conformance returns the executable cases backing those cells.
	Conformance() []ConformanceCase
}

// Products returns the three surveyed products in the paper's order.
func Products() []Product {
	return []Product{NewIBMBIS(), NewMicrosoftWF(), NewOracleSOA()}
}

// BestSupport returns the strongest support level any mechanism of the
// product claims for the pattern.
func BestSupport(p Product, pat Pattern) Support {
	best := Unsupported
	for _, c := range p.Cells() {
		if c.Pattern == pat && c.Support > best {
			best = c.Support
		}
	}
	return best
}
