package patterns

import (
	"fmt"
	"strings"
)

// IntegrationStyle distinguishes the two approaches of the paper's
// Figure 1 for adding SQL support to workflow languages.
type IntegrationStyle int

// Integration styles.
const (
	// AdapterTechnology masks data management operations as Web services
	// outside the process logic (proven, provided similarly by all
	// vendors).
	AdapterTechnology IntegrationStyle = iota
	// SQLInlineSupport augments the workflow language's activity types
	// with SQL-specific functionality inside the process logic.
	SQLInlineSupport
)

// Figure1Entry describes one product's position in the taxonomy.
type Figure1Entry struct {
	Vendor  string
	Product string
	Styles  map[IntegrationStyle]string // style -> mechanism description
}

// Figure1 returns the taxonomy of Figure 1: every surveyed product offers
// the adapter technology; the three compared products additionally offer
// SQL inline support through different mechanisms; BEA's AquaLogic BPM
// Suite appears with adapter support only, which is why the paper's
// detailed comparison excludes it.
func Figure1() []Figure1Entry {
	entries := []Figure1Entry{}
	for _, p := range Products() {
		info := p.Info()
		entries = append(entries, Figure1Entry{
			Vendor:  info.Vendor,
			Product: info.ProductName,
			Styles: map[IntegrationStyle]string{
				AdapterTechnology: "DB adapter service",
				SQLInlineSupport:  strings.Join(info.SQLInlineSupport, ", "),
			},
		})
	}
	entries = append(entries, Figure1Entry{
		Vendor:  "BEA",
		Product: "AquaLogic BPM Suite",
		Styles: map[IntegrationStyle]string{
			AdapterTechnology: "DB adapter service",
		},
	})
	return entries
}

// RenderFigure1 renders the taxonomy as text.
func RenderFigure1() string {
	var b strings.Builder
	b.WriteString("FIGURE 1 — SQL SUPPORT IN SELECTED WORKFLOW PRODUCTS\n\n")
	b.WriteString("Adapter technology (data management outside the process logic):\n")
	for _, e := range Figure1() {
		if m, ok := e.Styles[AdapterTechnology]; ok {
			fmt.Fprintf(&b, "  %-9s %-33s %s\n", e.Vendor, e.Product, m)
		}
	}
	b.WriteString("\nSQL inline support (data management inside the process logic):\n")
	for _, e := range Figure1() {
		if m, ok := e.Styles[SQLInlineSupport]; ok {
			fmt.Fprintf(&b, "  %-9s %-33s %s\n", e.Vendor, e.Product, m)
		}
	}
	return b.String()
}
