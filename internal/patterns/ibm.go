package patterns

import (
	"fmt"

	"wfsql/internal/bis"
	"wfsql/internal/engine"
	"wfsql/internal/rowset"
)

// IBMBIS is the IBM Business Integration Suite reproduction adapter.
type IBMBIS struct{}

// NewIBMBIS creates the adapter.
func NewIBMBIS() *IBMBIS { return &IBMBIS{} }

// Table II row labels for BIS.
const (
	mechSQL         Mechanism = "SQL"
	mechRetrieveSet Mechanism = "Retrieve Set"
	mechAssignBPEL  Mechanism = "Assign (BPEL-specific XPath)"
)

// Info implements Product (the paper's Table I, IBM column).
func (p *IBMBIS) Info() GeneralInfo {
	return GeneralInfo{
		Vendor:            "IBM",
		ProductName:       "Business Integration Suite (BIS)",
		ShortName:         "IBM BIS",
		WorkflowLanguage:  "BPEL",
		ModelingLevel:     "graphical, (markup)",
		DesignTool:        "WebSphere Integration Developer",
		SQLInlineSupport:  []string{"SQL Activity", "Retrieve Set Activity", "Atomic SQL Sequence"},
		ExternalDataSet:   "Set Reference, static text",
		MaterializedSet:   "proprietary XML RowSet",
		ExternalSource:    "dynamic, static",
		AdditionalFeature: "Lifecycle Management for DB Entities",
	}
}

// Cells implements Product (the paper's Table II, IBM block).
func (p *IBMBIS) Cells() []Cell {
	return []Cell{
		{mechSQL, Query, Abstract, ""},
		{mechSQL, SetIUD, Abstract, ""},
		{mechSQL, DataSetup, Abstract, ""},
		{mechSQL, StoredProcedure, Abstract, ""},
		{mechRetrieveSet, SetRetrieval, Abstract, ""},
		{mechAssignBPEL, RandomSetAccess, Abstract, ""},
		{mechAssignBPEL, TupleIUD, Partial, "only UPDATE"},
		{WorkaroundRow, SeqSetAccess, WorkaroundOnly, ""},
		{WorkaroundRow, TupleIUD, WorkaroundOnly, "only DELETE and INSERT"},
		{WorkaroundRow, Synchronization, WorkaroundOnly, ""},
	}
}

// run deploys and executes a built BIS process.
func runBIS(env *Env, b *bis.ProcessBuilder) error {
	d, err := env.Engine.Deploy(b.Build())
	if err != nil {
		return err
	}
	_, err = d.Run(nil)
	return err
}

// base returns a builder preconfigured with the conformance data source.
func bisBase(name string) *bis.ProcessBuilder {
	return bis.NewProcess(name).
		DataSourceVariable("DS", DataSourceName).
		InputSetReference("SR_Orders", "Orders")
}

// Conformance implements Product.
func (p *IBMBIS) Conformance() []ConformanceCase {
	return []ConformanceCase{
		{Query, mechSQL, Abstract, "", func(env *Env) error {
			b := bisBase("q").ResultSetReference("SR_R").
				Body(engine.NewSequence("m",
					bis.NewSQL("SQL1", "DS",
						"SELECT ItemID, SUM(Quantity) AS Quantity FROM #SR_Orders# WHERE Approved = TRUE GROUP BY ItemID").
						Into("SR_R"),
					bis.JavaSnippet("check", func(ctx *engine.Ctx) error {
						ref, err := bis.SetReference(ctx, "SR_R")
						if err != nil {
							return err
						}
						return env.expectInt("SELECT COUNT(*) FROM "+ref.Table, 3)
					})))
			return runBIS(env, b)
		}},
		{SetIUD, mechSQL, Abstract, "", func(env *Env) error {
			b := bisBase("iud").Body(engine.NewSequence("m",
				bis.NewSQL("u", "DS", "UPDATE #SR_Orders# SET Approved = TRUE WHERE Approved = FALSE"),
				bis.NewSQL("i", "DS", "INSERT INTO #SR_Orders# VALUES (7, 'washer', 4, TRUE)"),
				bis.NewSQL("d", "DS", "DELETE FROM #SR_Orders# WHERE ItemID = 'screw'"),
			))
			if err := runBIS(env, b); err != nil {
				return err
			}
			return env.expectInt("SELECT COUNT(*) FROM Orders WHERE Approved = TRUE", 5)
		}},
		{DataSetup, mechSQL, Abstract, "", func(env *Env) error {
			b := bisBase("ddl").Body(bis.NewSQL("c", "DS",
				"CREATE TABLE Configured (k VARCHAR, v VARCHAR)"))
			if err := runBIS(env, b); err != nil {
				return err
			}
			if !env.DB.HasTable("Configured") {
				return fmt.Errorf("DDL did not take effect")
			}
			return nil
		}},
		{StoredProcedure, mechSQL, Abstract, "", func(env *Env) error {
			b := bisBase("sp").ResultSetReference("SR_R").
				Body(engine.NewSequence("m",
					bis.NewSQL("call", "DS", "CALL approved_totals()").Into("SR_R"),
					bis.JavaSnippet("check", func(ctx *engine.Ctx) error {
						ref, err := bis.SetReference(ctx, "SR_R")
						if err != nil {
							return err
						}
						return env.expectInt("SELECT COUNT(*) FROM "+ref.Table, 3)
					})))
			return runBIS(env, b)
		}},
		{SetRetrieval, mechRetrieveSet, Abstract, "", func(env *Env) error {
			var n int
			b := bisBase("ret").ResultSetReference("SR_R").XMLVariable("SV", "").
				Body(engine.NewSequence("m",
					bis.NewSQL("q", "DS", "SELECT * FROM #SR_Orders#").Into("SR_R"),
					bis.NewRetrieveSet("r", "DS", "SR_R", "SV"),
					bis.JavaSnippet("count", func(ctx *engine.Ctx) error {
						var err error
						n, err = bis.TupleCount(ctx, "SV")
						return err
					})))
			if err := runBIS(env, b); err != nil {
				return err
			}
			if n != 6 {
				return fmt.Errorf("materialized %d tuples, want 6", n)
			}
			return nil
		}},
		{RandomSetAccess, mechAssignBPEL, Abstract, "", func(env *Env) error {
			var got string
			b := bisBase("rand").
				XMLVariable("SV", `<RowSet><Row><ItemID>a</ItemID></Row><Row><ItemID>b</ItemID></Row><Row><ItemID>c</ItemID></Row></RowSet>`).
				Variable("out", "").
				Body(engine.NewSequence("m",
					engine.NewAssign("pick").Copy("$SV/Row[2]/ItemID", "out"),
					bis.JavaSnippet("read", func(ctx *engine.Ctx) error {
						got = ctx.Inst.MustVariable("out").String()
						return nil
					})))
			if err := runBIS(env, b); err != nil {
				return err
			}
			if got != "b" {
				return fmt.Errorf("random access got %q", got)
			}
			return nil
		}},
		{TupleIUD, mechAssignBPEL, Partial, "only UPDATE", func(env *Env) error {
			var got string
			b := bisBase("tu").
				XMLVariable("SV", `<RowSet><Row><Quantity>1</Quantity></Row></RowSet>`).
				Body(engine.NewSequence("m",
					engine.NewAssign("upd").CopyTo("'42'", "SV", "Row[1]/Quantity"),
					bis.JavaSnippet("read", func(ctx *engine.Ctx) error {
						sv, _ := ctx.Variable("SV")
						got = rowset.Field(rowset.Row(sv.Node(), 0), "Quantity")
						return nil
					})))
			if err := runBIS(env, b); err != nil {
				return err
			}
			if got != "42" {
				return fmt.Errorf("assign update got %q", got)
			}
			return nil
		}},
		{SeqSetAccess, WorkaroundRow, WorkaroundOnly, "", func(env *Env) error {
			var visited []string
			b := bisBase("seq").ResultSetReference("SR_R").
				XMLVariable("SV", "").XMLVariable("Cur", "").Variable("pos", "1").
				Body(engine.NewSequence("m",
					bis.NewSQL("q", "DS", "SELECT ItemID FROM #SR_Orders# WHERE Approved = TRUE ORDER BY OrderID").Into("SR_R"),
					bis.NewRetrieveSet("r", "DS", "SR_R", "SV"),
					bis.CursorLoop("cursor", "SV", "Cur", "pos",
						bis.JavaSnippet("visit", func(ctx *engine.Ctx) error {
							cur, _ := ctx.Variable("Cur")
							visited = append(visited, cur.Node().ChildText("ItemID"))
							return nil
						}))))
			if err := runBIS(env, b); err != nil {
				return err
			}
			if len(visited) != 4 || visited[0] != "bolt" {
				return fmt.Errorf("cursor visited %v", visited)
			}
			return nil
		}},
		{TupleIUD, WorkaroundRow, WorkaroundOnly, "only DELETE and INSERT", func(env *Env) error {
			var n int
			b := bisBase("tiud").
				XMLVariable("SV", `<RowSet><Row><ItemID>x</ItemID></Row></RowSet>`).
				Body(engine.NewSequence("m",
					bis.JavaSnippet("ins", func(ctx *engine.Ctx) error {
						return bis.InsertTuple(ctx, "SV", []string{"ItemID"}, []string{"y"})
					}),
					bis.JavaSnippet("del", func(ctx *engine.Ctx) error {
						return bis.DeleteTuple(ctx, "SV", 0)
					}),
					bis.JavaSnippet("count", func(ctx *engine.Ctx) error {
						var err error
						n, err = bis.TupleCount(ctx, "SV")
						return err
					})))
			if err := runBIS(env, b); err != nil {
				return err
			}
			if n != 1 {
				return fmt.Errorf("tuple count %d, want 1", n)
			}
			return nil
		}},
		{Synchronization, WorkaroundRow, WorkaroundOnly, "", func(env *Env) error {
			b := bisBase("sync").ResultSetReference("SR_R").
				XMLVariable("SV", "").Variable("newQty", "").
				Body(engine.NewSequence("m",
					bis.NewSQL("q", "DS", "SELECT Quantity FROM #SR_Orders# WHERE OrderID = 1").Into("SR_R"),
					bis.NewRetrieveSet("r", "DS", "SR_R", "SV"),
					bis.JavaSnippet("local", func(ctx *engine.Ctx) error {
						sv, _ := ctx.Variable("SV")
						rowset.SetField(rowset.Row(sv.Node(), 0), "Quantity", "77")
						return ctx.SetScalar("newQty", "77")
					}),
					bis.NewSQL("push", "DS",
						"UPDATE #SR_Orders# SET Quantity = #newQty# WHERE OrderID = 1")))
			if err := runBIS(env, b); err != nil {
				return err
			}
			return env.expectInt("SELECT Quantity FROM Orders WHERE OrderID = 1", 77)
		}},
	}
}
