package patterns

import (
	"fmt"

	"wfsql/internal/dataset"
	"wfsql/internal/mswf"
	"wfsql/internal/sqldb"
)

// MicrosoftWF is the Windows Workflow Foundation reproduction adapter.
type MicrosoftWF struct{}

// NewMicrosoftWF creates the adapter.
func NewMicrosoftWF() *MicrosoftWF { return &MicrosoftWF{} }

// mechSQLDatabase is WF's Table II row label.
const mechSQLDatabase Mechanism = "SQL Database"

// Info implements Product (the paper's Table I, Microsoft column).
func (p *MicrosoftWF) Info() GeneralInfo {
	return GeneralInfo{
		Vendor:            "Microsoft",
		ProductName:       "Workflow Foundation (WF)",
		ShortName:         "Microsoft WF",
		WorkflowLanguage:  "C#, VB, XOML (BPEL)",
		ModelingLevel:     "graphical, code, markup",
		DesignTool:        "Workflow Designer",
		SQLInlineSupport:  []string{"customized SQL Activity"},
		ExternalDataSet:   "static text",
		MaterializedSet:   "DataSet Object",
		ExternalSource:    "static",
		AdditionalFeature: "-",
	}
}

// Cells implements Product (the paper's Table II, Microsoft block).
func (p *MicrosoftWF) Cells() []Cell {
	return []Cell{
		{mechSQLDatabase, Query, Abstract, ""},
		{mechSQLDatabase, SetIUD, Abstract, ""},
		{mechSQLDatabase, DataSetup, Abstract, ""},
		{mechSQLDatabase, StoredProcedure, Abstract, ""},
		{mechSQLDatabase, SetRetrieval, Abstract, ""},
		{WorkaroundRow, SeqSetAccess, WorkaroundOnly, ""},
		{WorkaroundRow, RandomSetAccess, WorkaroundOnly, ""},
		{WorkaroundRow, TupleIUD, WorkaroundOnly, ""},
		{WorkaroundRow, Synchronization, WorkaroundOnly, ""},
	}
}

// fillCache is the common Fill step used by the internal-data cases.
func wfFillCache() *mswf.SQLDatabaseActivity {
	return mswf.NewSQLDatabase("fill", ConnString,
		"SELECT OrderID, ItemID, Quantity, Approved FROM Orders ORDER BY OrderID").
		Into("cache").Keys("OrderID")
}

// Conformance implements Product.
func (p *MicrosoftWF) Conformance() []ConformanceCase {
	return []ConformanceCase{
		{Query, mechSQLDatabase, Abstract, "", func(env *Env) error {
			act := mswf.NewSQLDatabase("q", ConnString,
				"SELECT ItemID, SUM(Quantity) AS Q FROM Orders WHERE Approved = TRUE GROUP BY ItemID").
				Into("out")
			c, err := env.Runtime.Run(act, nil)
			if err != nil {
				return err
			}
			v, _ := c.Get("out")
			if n := v.(*dataset.DataSet).Table("Result").Count(); n != 3 {
				return fmt.Errorf("query rows %d, want 3", n)
			}
			return nil
		}},
		{SetIUD, mechSQLDatabase, Abstract, "", func(env *Env) error {
			wf := mswf.NewSequence("m",
				mswf.NewSQLDatabase("u", ConnString, "UPDATE Orders SET Approved = TRUE WHERE Approved = FALSE"),
				mswf.NewSQLDatabase("i", ConnString, "INSERT INTO Orders VALUES (7, 'washer', 4, TRUE)"),
				mswf.NewSQLDatabase("d", ConnString, "DELETE FROM Orders WHERE ItemID = 'screw'"),
			)
			if _, err := env.Runtime.Run(wf, nil); err != nil {
				return err
			}
			return env.expectInt("SELECT COUNT(*) FROM Orders WHERE Approved = TRUE", 5)
		}},
		{DataSetup, mechSQLDatabase, Abstract, "", func(env *Env) error {
			if _, err := env.Runtime.Run(mswf.NewSQLDatabase("ddl", ConnString,
				"CREATE TABLE Configured (k VARCHAR)"), nil); err != nil {
				return err
			}
			if !env.DB.HasTable("Configured") {
				return fmt.Errorf("DDL did not take effect")
			}
			return nil
		}},
		{StoredProcedure, mechSQLDatabase, Abstract, "", func(env *Env) error {
			act := mswf.NewSQLDatabase("sp", ConnString, "CALL approved_totals()").Into("out")
			c, err := env.Runtime.Run(act, nil)
			if err != nil {
				return err
			}
			v, _ := c.Get("out")
			if n := v.(*dataset.DataSet).Table("Result").Count(); n != 3 {
				return fmt.Errorf("procedure rows %d, want 3", n)
			}
			return nil
		}},
		{SetRetrieval, mechSQLDatabase, Abstract, "", func(env *Env) error {
			// Materialization is automatic: executing a query IS the
			// retrieval; the DataSet holds no connection to the source.
			c, err := env.Runtime.Run(wfFillCache(), nil)
			if err != nil {
				return err
			}
			v, _ := c.Get("cache")
			tab := v.(*dataset.DataSet).Table("Result")
			if tab.Count() != 6 {
				return fmt.Errorf("cache rows %d, want 6", tab.Count())
			}
			env.DB.MustExec("DELETE FROM Orders")
			if tab.Count() != 6 {
				return fmt.Errorf("cache must be disconnected from the source")
			}
			return nil
		}},
		{SeqSetAccess, WorkaroundRow, WorkaroundOnly, "", func(env *Env) error {
			// While activity + ADO.NET-based condition and code activity.
			var visited int
			hasMore := func(c *mswf.Context) (bool, error) {
				v, ok := c.Get("cache")
				if !ok {
					return false, nil
				}
				i, _ := c.GetInt("i")
				return int(i) < v.(*dataset.DataSet).Table("Result").Count(), nil
			}
			wf := mswf.NewSequence("m",
				wfFillCache(),
				mswf.NewWhile("w", hasMore, mswf.NewCode("step", func(c *mswf.Context) error {
					i, _ := c.GetInt("i")
					visited++
					c.Set("i", i+1)
					return nil
				})),
			)
			if _, err := env.Runtime.Run(wf, map[string]any{"i": 0}); err != nil {
				return err
			}
			if visited != 6 {
				return fmt.Errorf("visited %d rows, want 6", visited)
			}
			return nil
		}},
		{RandomSetAccess, WorkaroundRow, WorkaroundOnly, "", func(env *Env) error {
			wf := mswf.NewSequence("m",
				wfFillCache(),
				mswf.NewCode("find", func(c *mswf.Context) error {
					v, _ := c.Get("cache")
					row, err := v.(*dataset.DataSet).Table("Result").Find(sqldb.Int(4))
					if err != nil || row == nil {
						return fmt.Errorf("find: %v %v", row, err)
					}
					c.Set("item", row.MustGet("ItemID").S)
					return nil
				}),
			)
			c, err := env.Runtime.Run(wf, nil)
			if err != nil {
				return err
			}
			if c.GetString("item") != "nut" {
				return fmt.Errorf("random access got %q", c.GetString("item"))
			}
			return nil
		}},
		{TupleIUD, WorkaroundRow, WorkaroundOnly, "", func(env *Env) error {
			wf := mswf.NewSequence("m",
				wfFillCache(),
				mswf.NewCode("iud", func(c *mswf.Context) error {
					v, _ := c.Get("cache")
					tab := v.(*dataset.DataSet).Table("Result")
					row, _ := tab.Find(sqldb.Int(1))
					if err := row.Set("Quantity", sqldb.Int(42)); err != nil {
						return err
					}
					if _, err := tab.AddRow(sqldb.Int(99), sqldb.Str("washer"), sqldb.Int(1), sqldb.Bool(true)); err != nil {
						return err
					}
					victim, _ := tab.Find(sqldb.Int(2))
					victim.Delete()
					if tab.Count() != 6 {
						return fmt.Errorf("cache count %d, want 6", tab.Count())
					}
					return nil
				}),
			)
			_, err := env.Runtime.Run(wf, nil)
			return err
		}},
		{Synchronization, WorkaroundRow, WorkaroundOnly, "", func(env *Env) error {
			wf := mswf.NewSequence("m",
				wfFillCache(),
				mswf.NewCode("mutate", func(c *mswf.Context) error {
					v, _ := c.Get("cache")
					tab := v.(*dataset.DataSet).Table("Result")
					row, _ := tab.Find(sqldb.Int(1))
					return row.Set("Quantity", sqldb.Int(1234))
				}),
				mswf.NewCode("sync", func(c *mswf.Context) error {
					v, _ := c.Get("cache")
					adapter, err := mswf.NewDataAdapter(c, ConnString,
						"SELECT OrderID, ItemID, Quantity, Approved FROM Orders", "Orders", "OrderID")
					if err != nil {
						return err
					}
					_, err = adapter.Update(v.(*dataset.DataSet), "Result")
					return err
				}),
			)
			if _, err := env.Runtime.Run(wf, nil); err != nil {
				return err
			}
			return env.expectInt("SELECT Quantity FROM Orders WHERE OrderID = 1", 1234)
		}},
	}
}
