package patterns

import (
	"strings"
	"testing"
)

// paperTableII is the ground truth transcribed from the paper's Table II:
// product -> mechanism -> pattern -> footnote marker ("" = plain x).
var paperTableII = map[string]map[Mechanism]map[Pattern]string{
	"IBM BIS": {
		mechSQL:         {Query: "", SetIUD: "", DataSetup: "", StoredProcedure: ""},
		mechRetrieveSet: {SetRetrieval: ""},
		mechAssignBPEL:  {RandomSetAccess: "", TupleIUD: "only UPDATE"},
		WorkaroundRow:   {SeqSetAccess: "", TupleIUD: "only DELETE and INSERT", Synchronization: ""},
	},
	"Microsoft WF": {
		mechSQLDatabase: {Query: "", SetIUD: "", DataSetup: "", StoredProcedure: "", SetRetrieval: ""},
		WorkaroundRow:   {SeqSetAccess: "", RandomSetAccess: "", TupleIUD: "", Synchronization: ""},
	},
	"Oracle SOA Suite": {
		mechAssignExt:  {Query: "", SetIUD: "", DataSetup: "", StoredProcedure: "", SetRetrieval: "", TupleIUD: ""},
		mechAssignBPEL: {RandomSetAccess: "", TupleIUD: "only UPDATE"},
		WorkaroundRow:  {SeqSetAccess: "", Synchronization: ""},
	},
}

// TestTableII verifies cell-for-cell equality between the adapters' claims
// and the paper's printed Table II.
func TestTableII(t *testing.T) {
	for _, p := range Products() {
		name := p.Info().ShortName
		want, ok := paperTableII[name]
		if !ok {
			t.Fatalf("no ground truth for product %s", name)
		}
		got := map[Mechanism]map[Pattern]string{}
		for _, c := range p.Cells() {
			if got[c.Mechanism] == nil {
				got[c.Mechanism] = map[Pattern]string{}
			}
			if _, dup := got[c.Mechanism][c.Pattern]; dup {
				t.Errorf("%s: duplicate cell %s/%s", name, c.Mechanism, c.Pattern)
			}
			got[c.Mechanism][c.Pattern] = c.Footnote
		}
		for mech, pats := range want {
			for pat, fn := range pats {
				gotFn, ok := got[mech][pat]
				if !ok {
					t.Errorf("%s: missing cell %s/%s", name, mech, pat)
					continue
				}
				if gotFn != fn {
					t.Errorf("%s: cell %s/%s footnote = %q, want %q", name, mech, pat, gotFn, fn)
				}
			}
		}
		for mech, pats := range got {
			for pat := range pats {
				if _, ok := want[mech][pat]; !ok {
					t.Errorf("%s: extra cell %s/%s not in the paper", name, mech, pat)
				}
			}
		}
	}
}

// TestConformanceExecutes proves every Table II claim by execution: each
// cell's conformance case must pass against a live environment.
func TestConformanceExecutes(t *testing.T) {
	for _, p := range Products() {
		name := p.Info().ShortName
		cases := p.Conformance()
		claimed := map[string]bool{}
		for _, c := range p.Cells() {
			claimed[string(c.Mechanism)+"/"+c.Pattern.String()] = true
		}
		for _, c := range cases {
			key := string(c.Mechanism) + "/" + c.Pattern.String()
			if !claimed[key] {
				t.Errorf("%s: conformance case %s has no Table II cell", name, key)
			}
			t.Run(name+"/"+key, func(t *testing.T) {
				env := NewEnv()
				if err := c.Run(env); err != nil {
					t.Fatalf("conformance failed: %v", err)
				}
			})
		}
		if len(cases) != len(p.Cells()) {
			t.Errorf("%s: %d conformance cases for %d cells", name, len(cases), len(p.Cells()))
		}
	}
}

// TestEveryPatternCoveredByEveryProduct checks the paper's expectation
// that all nine patterns are realizable (abstractly or via workarounds) in
// every product.
func TestEveryPatternCoveredByEveryProduct(t *testing.T) {
	for _, p := range Products() {
		for _, pat := range AllPatterns {
			if BestSupport(p, pat) == Unsupported {
				t.Errorf("%s: pattern %s has no realization", p.Info().ShortName, pat)
			}
		}
	}
}

// TestExternalPatternsAreAbstractEverywhere checks the paper's conclusion
// that all patterns concerning external data are realizable at an abstract
// level in all three products.
func TestExternalPatternsAreAbstractEverywhere(t *testing.T) {
	for _, p := range Products() {
		for _, pat := range AllPatterns {
			if !pat.External() {
				continue
			}
			if BestSupport(p, pat) != Abstract {
				t.Errorf("%s: external pattern %s not abstract", p.Info().ShortName, pat)
			}
		}
	}
}

// TestSequentialAccessAndSyncNeedWorkaroundsEverywhere checks the
// discussion's observation that no vendor covers Sequential Set Access or
// Synchronization without workarounds.
func TestSequentialAccessAndSyncNeedWorkaroundsEverywhere(t *testing.T) {
	for _, p := range Products() {
		for _, pat := range []Pattern{SeqSetAccess, Synchronization} {
			if s := BestSupport(p, pat); s != WorkaroundOnly {
				t.Errorf("%s: %s support = %s, want workaround-only", p.Info().ShortName, pat, s)
			}
		}
	}
}

// TestTableIContent verifies the distinguishing Table I claims.
func TestTableIContent(t *testing.T) {
	prods := Products()
	ibm, ms, ora := prods[0].Info(), prods[1].Info(), prods[2].Info()

	if ibm.WorkflowLanguage != "BPEL" || ora.WorkflowLanguage != "BPEL" {
		t.Error("IBM and Oracle must be BPEL-based")
	}
	if !strings.Contains(ms.WorkflowLanguage, "XOML") {
		t.Error("WF language must include XOML")
	}
	if ibm.ExternalSource != "dynamic, static" {
		t.Errorf("IBM external source: %s", ibm.ExternalSource)
	}
	if ms.ExternalSource != "static" || ora.ExternalSource != "static" {
		t.Error("WF and Oracle must have static source binding")
	}
	if !strings.Contains(ibm.ExternalDataSet, "Set Reference") {
		t.Error("IBM must reference data sets via set references")
	}
	if ms.MaterializedSet != "DataSet Object" {
		t.Errorf("WF materialized set: %s", ms.MaterializedSet)
	}
	if ibm.MaterializedSet != "proprietary XML RowSet" || ora.MaterializedSet != "proprietary XML RowSet" {
		t.Error("IBM and Oracle must use XML RowSets")
	}
	if ibm.AdditionalFeature == "-" {
		t.Error("IBM has lifecycle management as additional feature")
	}
	if ms.AdditionalFeature != "-" || ora.AdditionalFeature != "-" {
		t.Error("WF and Oracle have no additional features in Table I")
	}
	if len(ibm.SQLInlineSupport) != 3 {
		t.Errorf("IBM SQL inline mechanisms: %v", ibm.SQLInlineSupport)
	}
}

// TestTableRendering sanity-checks the generated table text.
func TestTableRendering(t *testing.T) {
	prods := Products()
	t1 := TableI(prods)
	for _, want := range []string{
		"Workflow Language", "WebSphere Integration Developer",
		"DataSet Object", "XPath Extension Functions",
		"Lifecycle Management for DB Entities", "dynamic, static",
	} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q:\n%s", want, t1)
		}
	}
	t2 := TableII(prods)
	for _, want := range []string{
		"Query", "Synchronization", "Only workarounds possible",
		"SQL Database", "Assign (XPath Ext. Functions)", "Retrieve Set",
		"only UPDATE", "only DELETE and INSERT",
	} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q:\n%s", want, t2)
		}
	}
	// Footnote markers are stable: x1 = only UPDATE, x2 = only DELETE and INSERT.
	if !strings.Contains(t2, "x1") || !strings.Contains(t2, "x2") {
		t.Errorf("Table II footnote markers missing:\n%s", t2)
	}
}

// TestVerifiedTableII runs the all-in-one generator used by cmd/tables.
func TestVerifiedTableII(t *testing.T) {
	text, failures := VerifiedTableII(Products())
	if len(failures) != 0 {
		for _, f := range failures {
			t.Errorf("%s %s/%s: %v", f.Product, f.Mechanism, f.Pattern, f.Err)
		}
	}
	if !strings.Contains(text, "TABLE II") {
		t.Error("table text missing header")
	}
}

// TestFigure1Taxonomy pins the Figure 1 content: all four products offer
// the adapter technology, only the three compared ones offer SQL inline
// support, and BEA appears adapter-only.
func TestFigure1Taxonomy(t *testing.T) {
	entries := Figure1()
	if len(entries) != 4 {
		t.Fatalf("products in Figure 1: %d", len(entries))
	}
	var beaFound bool
	for _, e := range entries {
		if _, ok := e.Styles[AdapterTechnology]; !ok {
			t.Errorf("%s lacks adapter technology", e.Vendor)
		}
		_, inline := e.Styles[SQLInlineSupport]
		if e.Vendor == "BEA" {
			beaFound = true
			if inline {
				t.Error("BEA must not have SQL inline support")
			}
		} else if !inline {
			t.Errorf("%s must have SQL inline support", e.Vendor)
		}
	}
	if !beaFound {
		t.Fatal("BEA missing from Figure 1")
	}
	text := RenderFigure1()
	for _, want := range []string{"FIGURE 1", "AquaLogic", "XPath Extension Functions", "customized SQL Activity"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered figure missing %q", want)
		}
	}
}

func TestPatternDescriptions(t *testing.T) {
	for _, p := range AllPatterns {
		if p.Description() == "" {
			t.Errorf("pattern %s has no description", p)
		}
	}
	if Pattern(99).Description() != "" || Pattern(99).String() == "" {
		t.Error("unknown pattern handling")
	}
	if !strings.Contains(SetRetrieval.Description(), "no connection") {
		t.Error("SetRetrieval description must state disconnection")
	}
}

func TestSupportStringsAndMarks(t *testing.T) {
	if Abstract.String() != "abstract" || WorkaroundOnly.String() != "workaround" ||
		Partial.String() != "partial" || Unsupported.String() != "unsupported" {
		t.Error("support names")
	}
	if Abstract.Mark() != "x" || Partial.Mark() != "x*" || WorkaroundOnly.Mark() != "w" || Unsupported.Mark() != "" {
		t.Error("support marks")
	}
	if Support(99).String() == "" {
		t.Error("unknown support name")
	}
}
