package patterns

import (
	"fmt"

	"wfsql/internal/engine"
	"wfsql/internal/orasoa"
	"wfsql/internal/rowset"
)

// OracleSOA is the Oracle SOA Suite reproduction adapter.
type OracleSOA struct{}

// NewOracleSOA creates the adapter.
func NewOracleSOA() *OracleSOA { return &OracleSOA{} }

// mechAssignExt is Oracle's XPath-extension-function row label.
const mechAssignExt Mechanism = "Assign (XPath Ext. Functions)"

// Info implements Product (the paper's Table I, Oracle column).
func (p *OracleSOA) Info() GeneralInfo {
	return GeneralInfo{
		Vendor:            "Oracle",
		ProductName:       "SOA Suite",
		ShortName:         "Oracle SOA Suite",
		WorkflowLanguage:  "BPEL",
		ModelingLevel:     "graphical, (markup)",
		DesignTool:        "Process Designer",
		SQLInlineSupport:  []string{"XPath Extension Functions"},
		ExternalDataSet:   "static text",
		MaterializedSet:   "proprietary XML RowSet",
		ExternalSource:    "static",
		AdditionalFeature: "-",
	}
}

// Cells implements Product (the paper's Table II, Oracle block).
func (p *OracleSOA) Cells() []Cell {
	return []Cell{
		{mechAssignExt, Query, Abstract, ""},
		{mechAssignExt, SetIUD, Abstract, ""},
		{mechAssignExt, DataSetup, Abstract, ""},
		{mechAssignExt, StoredProcedure, Abstract, ""},
		{mechAssignExt, SetRetrieval, Abstract, ""},
		{mechAssignExt, TupleIUD, Abstract, ""},
		{mechAssignBPEL, RandomSetAccess, Abstract, ""},
		{mechAssignBPEL, TupleIUD, Partial, "only UPDATE"},
		{WorkaroundRow, SeqSetAccess, WorkaroundOnly, ""},
		{WorkaroundRow, Synchronization, WorkaroundOnly, ""},
	}
}

// runOra builds, deploys, and runs an Oracle SOA process.
func runOra(env *Env, b *orasoa.ProcessBuilder) (*engine.Instance, error) {
	d, err := env.Engine.Deploy(b.Build())
	if err != nil {
		return nil, err
	}
	return d.Run(nil)
}

// Conformance implements Product.
func (p *OracleSOA) Conformance() []ConformanceCase {
	return []ConformanceCase{
		{Query, mechAssignExt, Abstract, "", func(env *Env) error {
			b := orasoa.NewProcess("q", env.Funcs).XMLVariable("rs", "").
				Body(engine.NewAssign("a").Copy(
					`ora:query-database("SELECT ItemID FROM Orders WHERE Approved = TRUE")`, "rs"))
			in, err := runOra(env, b)
			if err != nil {
				return err
			}
			if n := rowset.Count(in.MustVariable("rs").Node()); n != 4 {
				return fmt.Errorf("query rows %d, want 4", n)
			}
			return nil
		}},
		{SetIUD, mechAssignExt, Abstract, "", func(env *Env) error {
			env.Funcs.XSQL().RegisterPage("iud", `
				<xsql:page>
					<xsql:dml>UPDATE Orders SET Approved = TRUE WHERE Approved = FALSE</xsql:dml>
					<xsql:dml>INSERT INTO Orders VALUES (7, 'washer', 4, TRUE)</xsql:dml>
					<xsql:dml>DELETE FROM Orders WHERE ItemID = 'screw'</xsql:dml>
				</xsql:page>`)
			b := orasoa.NewProcess("iud", env.Funcs).XMLVariable("st", "").
				Body(engine.NewAssign("a").Copy(`ora:processXSQL('iud')`, "st"))
			if _, err := runOra(env, b); err != nil {
				return err
			}
			return env.expectInt("SELECT COUNT(*) FROM Orders WHERE Approved = TRUE", 5)
		}},
		{DataSetup, mechAssignExt, Abstract, "", func(env *Env) error {
			env.Funcs.XSQL().RegisterPage("setup", `
				<xsql:page><xsql:dml>CREATE TABLE Configured (k VARCHAR)</xsql:dml></xsql:page>`)
			b := orasoa.NewProcess("ddl", env.Funcs).XMLVariable("st", "").
				Body(engine.NewAssign("a").Copy(`ora:processXSQL('setup')`, "st"))
			if _, err := runOra(env, b); err != nil {
				return err
			}
			if !env.DB.HasTable("Configured") {
				return fmt.Errorf("DDL did not take effect")
			}
			return nil
		}},
		{StoredProcedure, mechAssignExt, Abstract, "", func(env *Env) error {
			env.Funcs.XSQL().RegisterPage("sp", `
				<xsql:page><xsql:query name="totals">CALL approved_totals()</xsql:query></xsql:page>`)
			b := orasoa.NewProcess("sp", env.Funcs).XMLVariable("out", "").
				Body(engine.NewAssign("a").Copy(
					`ora:processXSQL('sp')/totals/RowSet`, "out"))
			in, err := runOra(env, b)
			if err != nil {
				return err
			}
			if n := rowset.Count(in.MustVariable("out").Node()); n != 3 {
				return fmt.Errorf("procedure rows %d, want 3", n)
			}
			return nil
		}},
		{SetRetrieval, mechAssignExt, Abstract, "", func(env *Env) error {
			// Materialization is automatic: query-database returns the
			// XML RowSet directly; the variable is a disconnected cache.
			b := orasoa.NewProcess("ret", env.Funcs).XMLVariable("rs", "").
				Body(engine.NewAssign("a").Copy(
					`ora:query-database("SELECT * FROM Orders")`, "rs"))
			in, err := runOra(env, b)
			if err != nil {
				return err
			}
			rs := in.MustVariable("rs").Node()
			if rowset.Count(rs) != 6 {
				return fmt.Errorf("cache rows %d, want 6", rowset.Count(rs))
			}
			env.DB.MustExec("DELETE FROM Orders")
			if rowset.Count(rs) != 6 {
				return fmt.Errorf("cache must be disconnected from the source")
			}
			return nil
		}},
		{TupleIUD, mechAssignExt, Abstract, "", func(env *Env) error {
			// bpelx operations cover update, insert, and delete on local
			// XML data at the abstract level.
			b := orasoa.NewProcess("tiud", env.Funcs).
				XMLVariable("rs", `<RowSet><Row><ItemID>a</ItemID></Row><Row><ItemID>b</ItemID></Row></RowSet>`).
				XMLVariable("newRow", `<Row><ItemID>c</ItemID></Row>`).
				Body(engine.NewSequence("m",
					orasoa.NewBpelxAssign("upd").Copy("'z'", "rs", "Row[1]/ItemID"),
					orasoa.NewBpelxAssign("ins").InsertAfter("$newRow", "rs", "Row[2]"),
					orasoa.NewBpelxAssign("del").Remove("rs", "Row[ItemID = 'b']"),
				))
			in, err := runOra(env, b)
			if err != nil {
				return err
			}
			rows := rowset.Rows(in.MustVariable("rs").Node())
			if len(rows) != 2 || rowset.Field(rows[0], "ItemID") != "z" || rowset.Field(rows[1], "ItemID") != "c" {
				return fmt.Errorf("tuple IUD result wrong: %d rows", len(rows))
			}
			return nil
		}},
		{RandomSetAccess, mechAssignBPEL, Abstract, "", func(env *Env) error {
			b := orasoa.NewProcess("rand", env.Funcs).
				XMLVariable("rs", "").Variable("out", "").
				Body(engine.NewSequence("m",
					engine.NewAssign("q").Copy(
						`ora:query-database("SELECT OrderID, ItemID FROM Orders ORDER BY OrderID")`, "rs"),
					engine.NewAssign("pick").Copy(
						`bpel:getVariableData('rs', 'Row[4]/ItemID')`, "out")))
			in, err := runOra(env, b)
			if err != nil {
				return err
			}
			if got := in.MustVariable("out").String(); got != "nut" {
				return fmt.Errorf("random access got %q", got)
			}
			return nil
		}},
		{TupleIUD, mechAssignBPEL, Partial, "only UPDATE", func(env *Env) error {
			b := orasoa.NewProcess("tu", env.Funcs).
				XMLVariable("rs", `<RowSet><Row><Quantity>1</Quantity></Row></RowSet>`).
				Body(engine.NewAssign("upd").CopyTo("'9'", "rs", "Row[1]/Quantity"))
			in, err := runOra(env, b)
			if err != nil {
				return err
			}
			if got := rowset.Field(rowset.Row(in.MustVariable("rs").Node(), 0), "Quantity"); got != "9" {
				return fmt.Errorf("assign update got %q", got)
			}
			return nil
		}},
		{SeqSetAccess, WorkaroundRow, WorkaroundOnly, "", func(env *Env) error {
			var visited []string
			b := orasoa.NewProcess("seq", env.Funcs).
				XMLVariable("rs", "").XMLVariable("Cur", "").Variable("pos", "1").
				Body(engine.NewSequence("m",
					engine.NewAssign("q").Copy(
						`ora:query-database("SELECT ItemID FROM Orders WHERE Approved = TRUE ORDER BY OrderID")`, "rs"),
					orasoa.CursorLoop("cursor", "rs", "Cur", "pos",
						orasoa.JavaSnippet("visit", func(ctx *engine.Ctx) error {
							cur, _ := ctx.Variable("Cur")
							visited = append(visited, cur.Node().ChildText("ItemID"))
							return nil
						}))))
			if _, err := runOra(env, b); err != nil {
				return err
			}
			if len(visited) != 4 || visited[0] != "bolt" {
				return fmt.Errorf("cursor visited %v", visited)
			}
			return nil
		}},
		{Synchronization, WorkaroundRow, WorkaroundOnly, "", func(env *Env) error {
			env.Funcs.XSQL().RegisterPage("push", `
				<xsql:page><xsql:dml>UPDATE Orders SET Quantity = {@q} WHERE OrderID = {@id}</xsql:dml></xsql:page>`)
			b := orasoa.NewProcess("sync", env.Funcs).
				XMLVariable("rs", "").Variable("st", "").
				Body(engine.NewSequence("m",
					engine.NewAssign("q").Copy(
						`ora:query-database("SELECT OrderID, Quantity FROM Orders WHERE OrderID = 1")`, "rs"),
					orasoa.NewBpelxAssign("local").Copy("'55'", "rs", "Row[1]/Quantity"),
					engine.NewAssign("push").Copy(
						`ora:processXSQL('push', 'q', $rs/Row[1]/Quantity, 'id', $rs/Row[1]/OrderID)/rowsAffected`, "st")))
			if _, err := runOra(env, b); err != nil {
				return err
			}
			return env.expectInt("SELECT Quantity FROM Orders WHERE OrderID = 1", 55)
		}},
	}
}
