package patterns

import (
	"fmt"
	"strings"
)

// This file renders the paper's Table I and Table II from the product
// adapters, which are in turn backed by executable conformance cases.

// TableI renders "General Information and Data Management Capabilities"
// as an aligned text table, one column per product.
func TableI(products []Product) string {
	infos := make([]GeneralInfo, len(products))
	for i, p := range products {
		infos[i] = p.Info()
	}
	var b strings.Builder

	header := make([]string, 0, len(infos)+1)
	header = append(header, "")
	for _, g := range infos {
		header = append(header, g.Vendor+" "+g.ProductName)
	}

	line := func(label string, f func(GeneralInfo) string) []string {
		row := []string{label}
		for _, g := range infos {
			row = append(row, f(g))
		}
		return row
	}

	table := [][]string{
		header,
		{"-- General Information --"},
		line("Workflow Language", func(g GeneralInfo) string { return g.WorkflowLanguage }),
		line("Level of Process Modeling", func(g GeneralInfo) string { return g.ModelingLevel }),
		line("Workflow Design Tool", func(g GeneralInfo) string { return g.DesignTool }),
		{"-- Data Management Capabilities --"},
		line("SQL Inline Support", func(g GeneralInfo) string { return strings.Join(g.SQLInlineSupport, ", ") }),
		line("Reference to External Data Set", func(g GeneralInfo) string { return g.ExternalDataSet }),
		line("Materialized Set Representation", func(g GeneralInfo) string { return g.MaterializedSet }),
		line("Reference to External Data Source", func(g GeneralInfo) string { return g.ExternalSource }),
		line("Additional Features", func(g GeneralInfo) string { return g.AdditionalFeature }),
	}

	widths := make([]int, len(header))
	for _, row := range table {
		if len(row) == 1 {
			continue
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	b.WriteString("TABLE I — GENERAL INFORMATION AND DATA MANAGEMENT CAPABILITIES\n\n")
	for _, row := range table {
		if len(row) == 1 {
			fmt.Fprintf(&b, "%s\n", row[0])
			continue
		}
		for i, cell := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TableII renders "Data Management Pattern Support": per product, one row
// per mechanism with an x (or footnoted x) in each supported pattern
// column, plus the "Only workarounds possible" row.
func TableII(products []Product) string {
	var b strings.Builder
	b.WriteString("TABLE II — DATA MANAGEMENT PATTERN SUPPORT\n\n")

	labelWidth := len(string(WorkaroundRow))
	for _, p := range products {
		for _, c := range p.Cells() {
			if len(string(c.Mechanism)) > labelWidth {
				labelWidth = len(string(c.Mechanism))
			}
		}
	}
	colWidths := make([]int, len(AllPatterns))
	for i, pat := range AllPatterns {
		colWidths[i] = len(pat.String())
	}

	// Header.
	fmt.Fprintf(&b, "%-*s", labelWidth, "")
	for i, pat := range AllPatterns {
		fmt.Fprintf(&b, " | %-*s", colWidths[i], pat.String())
	}
	b.WriteString("\n")

	footnotes := map[string]int{}
	var footnoteOrder []string
	mark := func(c Cell) string {
		m := ""
		switch c.Support {
		case Abstract:
			m = "x"
		case Partial, WorkaroundOnly:
			m = "x"
			if c.Mechanism == WorkaroundRow && c.Footnote == "" {
				return "x"
			}
		default:
			return ""
		}
		if c.Footnote != "" {
			n, ok := footnotes[c.Footnote]
			if !ok {
				n = len(footnotes) + 1
				footnotes[c.Footnote] = n
				footnoteOrder = append(footnoteOrder, c.Footnote)
			}
			m = fmt.Sprintf("x%d", n)
		}
		return m
	}

	for _, p := range products {
		info := p.Info()
		fmt.Fprintf(&b, "%s\n", strings.ToUpper(info.Vendor+" "+info.ProductName))
		// Group cells by mechanism, preserving first-seen order.
		var mechOrder []Mechanism
		byMech := map[Mechanism]map[Pattern]Cell{}
		for _, c := range p.Cells() {
			if _, ok := byMech[c.Mechanism]; !ok {
				byMech[c.Mechanism] = map[Pattern]Cell{}
				mechOrder = append(mechOrder, c.Mechanism)
			}
			byMech[c.Mechanism][c.Pattern] = c
		}
		for _, m := range mechOrder {
			fmt.Fprintf(&b, "%-*s", labelWidth, string(m))
			for i, pat := range AllPatterns {
				cell := ""
				if c, ok := byMech[m][pat]; ok {
					cell = mark(c)
				}
				fmt.Fprintf(&b, " | %-*s", colWidths[i], cell)
			}
			b.WriteString("\n")
		}
	}
	if len(footnoteOrder) > 0 {
		b.WriteString("\n")
		for _, fn := range footnoteOrder {
			fmt.Fprintf(&b, "%d: %s  ", footnotes[fn], fn)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// VerifiedTableII runs the full conformance suite and renders Table II
// only from cells whose executable case passed; any failure is reported.
func VerifiedTableII(products []Product) (string, []CaseResult) {
	results := RunConformance(products)
	return TableII(products), Failures(results)
}
