// Package sched is the worker-pool instance scheduler: it executes many
// workflow instances concurrently on a bounded number of workers, the
// way the surveyed multi-tenant servers (WebSphere Process Server, the
// WF runtime host, Oracle BPEL PM) drive many process instances against
// one shared database. Each job is one instance run; the scheduler
// bounds concurrency, measures queue wait and run time per instance,
// and reports aggregate throughput (instances/sec).
package sched

import (
	"fmt"
	"sync"
	"time"

	"wfsql/internal/obsv"
)

// Job is one schedulable instance run.
type Job struct {
	// Stack labels the product stack ("BIS", "WF", "Oracle") for
	// metrics; it may be empty.
	Stack string
	// Name identifies the job in results (e.g. "Figure4_BIS#7").
	Name string
	// Run executes the instance. It is called exactly once, on one of
	// the scheduler's worker goroutines.
	Run func() error
}

// Result describes one completed job.
type Result struct {
	Name      string
	Stack     string
	Worker    int           // worker index that executed the job
	QueueWait time.Duration // enqueue -> dequeue
	RunTime   time.Duration // Run() wall clock
	Err       error
}

// Report aggregates one scheduler run.
type Report struct {
	Workers    int
	Jobs       int
	Failed     int
	Elapsed    time.Duration
	Throughput float64 // successfully completed instances per second
	Results    []Result
}

// Scheduler runs jobs on a fixed-size worker pool.
type Scheduler struct {
	workers int

	mu  sync.Mutex
	obs *obsv.Observability
}

// New builds a scheduler with the given worker count (values < 1 mean 1).
func New(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	return &Scheduler{workers: workers}
}

// Workers returns the pool size.
func (s *Scheduler) Workers() int { return s.workers }

// SetObservability attaches (or with nil detaches) a metrics bundle:
// runs then emit sched.jobs / sched.ok / sched.failed counters and
// sched.queue_wait_ms / sched.run_ms latency histograms.
func (s *Scheduler) SetObservability(o *obsv.Observability) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = o
}

func (s *Scheduler) observability() *obsv.Observability {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.obs
}

// Run executes all jobs on the worker pool and blocks until every job
// has finished. Job errors are collected, not short-circuited: an
// instance failing must not keep sibling instances from completing
// (matching how a workflow server isolates instance faults).
func (s *Scheduler) Run(jobs []Job) Report {
	obs := s.observability()
	queue := make(chan int)
	results := make([]Result, len(jobs))
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range queue {
				job := jobs[idx]
				dequeued := time.Now()
				queueWait := dequeued.Sub(start)
				err := runJob(job)
				runTime := time.Since(dequeued)
				results[idx] = Result{
					Name:      job.Name,
					Stack:     job.Stack,
					Worker:    worker,
					QueueWait: queueWait,
					RunTime:   runTime,
					Err:       err,
				}
				m := obs.M()
				m.Counter("sched.jobs").Inc()
				if job.Stack != "" {
					m.Counter("sched.jobs." + job.Stack).Inc()
				}
				if err != nil {
					m.Counter("sched.failed").Inc()
				} else {
					m.Counter("sched.ok").Inc()
				}
				m.Histogram("sched.queue_wait_ms").ObserveDuration(queueWait)
				m.Histogram("sched.run_ms").ObserveDuration(runTime)
			}
		}(w)
	}
	for i := range jobs {
		queue <- i
	}
	close(queue)
	wg.Wait()

	rep := Report{
		Workers: s.workers,
		Jobs:    len(jobs),
		Elapsed: time.Since(start),
		Results: results,
	}
	for _, r := range results {
		if r.Err != nil {
			rep.Failed++
		}
	}
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(rep.Jobs-rep.Failed) / secs
	}
	return rep
}

// runJob executes one job, converting a panic into an error so a
// faulting instance cannot take down its worker (and with it every job
// still queued).
func runJob(job Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: job %s panicked: %v", job.Name, r)
		}
	}()
	return job.Run()
}

// FirstError returns the first job error in submission order (nil if
// every job succeeded).
func (r Report) FirstError() error {
	for _, res := range r.Results {
		if res.Err != nil {
			return fmt.Errorf("%s: %w", res.Name, res.Err)
		}
	}
	return nil
}
