package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"wfsql/internal/admit"
)

// TestPoolRunsAllUnderBlockPolicy: with Block admission every submitted
// job runs exactly once; conservation holds.
func TestPoolRunsAllUnderBlockPolicy(t *testing.T) {
	var ran atomic.Int64
	p := NewPool(PoolConfig{Workers: 4, QueueBound: 4})
	for i := 0; i < 64; i++ {
		err := p.Submit(context.Background(), CtxJob{
			Name: "j",
			Run:  func(ctx context.Context) error { ran.Add(1); return nil },
		})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	rep := p.Drain()
	if ran.Load() != 64 || rep.Completed != 64 {
		t.Fatalf("ran=%d completed=%d, want 64", ran.Load(), rep.Completed)
	}
	if rep.Completed+rep.Failed+rep.Shed != rep.Submitted {
		t.Fatalf("conservation violated: %+v", rep)
	}
	if rep.QueueHighWater > 4 {
		t.Fatalf("queue high water %d exceeds bound 4", rep.QueueHighWater)
	}
}

// TestPoolShedPolicyConservation: under Shed, every job either runs or
// is shed; nothing is double-counted or lost.
func TestPoolShedPolicyConservation(t *testing.T) {
	block := make(chan struct{})
	p := NewPool(PoolConfig{Workers: 2, QueueBound: 2, Policy: admit.Shed})
	var shedAtSubmit int64
	for i := 0; i < 32; i++ {
		err := p.Submit(context.Background(), CtxJob{
			Name: "j",
			Run:  func(ctx context.Context) error { <-block; return nil },
		})
		if err != nil {
			if !errors.Is(err, admit.ErrShed) {
				t.Fatalf("unexpected submit error: %v", err)
			}
			shedAtSubmit++
		}
	}
	close(block)
	rep := p.Drain()
	if rep.Submitted != 32 {
		t.Fatalf("submitted = %d, want 32", rep.Submitted)
	}
	if rep.Shed != shedAtSubmit {
		t.Fatalf("report shed %d != observed submit sheds %d", rep.Shed, shedAtSubmit)
	}
	if rep.Completed+rep.Failed+rep.Shed != rep.Submitted {
		t.Fatalf("conservation violated: %+v", rep)
	}
	if int64(len(rep.Results)) != rep.Submitted {
		t.Fatalf("results %d != submitted %d", len(rep.Results), rep.Submitted)
	}
	if rep.Shed == 0 {
		t.Fatal("expected sheds with workers blocked and bound 2")
	}
}

// TestPoolJobBudgetExpiredInQueue: a job whose budget expires while
// queued is shed at dequeue, never run, and the ctx handed to jobs that
// do run carries the deadline.
func TestPoolJobBudgetExpiredInQueue(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1, QueueBound: 8, JobBudget: 20 * time.Millisecond})
	var sawDeadline atomic.Bool
	var ran atomic.Int64
	// First job holds the only worker past every budget.
	p.Submit(context.Background(), CtxJob{Name: "holder", Run: func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			sawDeadline.Store(true)
		}
		time.Sleep(60 * time.Millisecond)
		return nil
	}})
	for i := 0; i < 4; i++ {
		p.Submit(context.Background(), CtxJob{Name: "queued", Run: func(ctx context.Context) error {
			ran.Add(1)
			return nil
		}})
	}
	rep := p.Drain()
	if !sawDeadline.Load() {
		t.Fatal("job ctx did not carry the pool-assigned deadline")
	}
	if ran.Load() != 0 {
		t.Fatalf("%d expired jobs ran; want 0", ran.Load())
	}
	if rep.Shed != 4 {
		t.Fatalf("shed = %d, want 4", rep.Shed)
	}
	for _, r := range rep.Results {
		if r.Shed && r.ShedReason != admit.ReasonExpiredInQueue {
			t.Fatalf("shed reason = %s, want %s", r.ShedReason, admit.ReasonExpiredInQueue)
		}
	}
}

// TestPoolOnShedHookFires: the pool-level shed hook observes name,
// class, and reason for submit-time sheds.
func TestPoolOnShedHookFires(t *testing.T) {
	type shedRec struct{ name, reason string }
	var mu chan shedRec = make(chan shedRec, 64)
	block := make(chan struct{})
	p := NewPool(PoolConfig{
		Workers: 1, QueueBound: 1, Policy: admit.Shed,
		OnShed: func(name, stack string, class admit.Class, reason string) {
			mu <- shedRec{name, reason}
		},
	})
	p.Submit(context.Background(), CtxJob{Name: "a", Run: func(ctx context.Context) error { <-block; return nil }})
	// Fill the queue slot, then force one shed.
	var sheds int
	for i := 0; i < 8; i++ {
		if err := p.Submit(context.Background(), CtxJob{Name: "b", Run: func(ctx context.Context) error { return nil }}); err != nil {
			sheds++
		}
	}
	close(block)
	p.Drain()
	if sheds == 0 {
		t.Fatal("no sheds produced")
	}
	for i := 0; i < sheds; i++ {
		select {
		case rec := <-mu:
			if rec.name != "b" || rec.reason != admit.ReasonQueueFull {
				t.Fatalf("hook saw %+v", rec)
			}
		default:
			t.Fatalf("hook fired %d times, want %d", i, sheds)
		}
	}
}
