package sched

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"wfsql/internal/admit"
	"wfsql/internal/obsv"
)

// CtxJob is one schedulable instance run under an execution budget. It is
// the streaming-pool counterpart of Job: Run receives the job's budget
// context (already carrying the per-job deadline, when one is configured)
// and is expected to thread it into the instance run (engine.RunCtx,
// mswf RunCtx) so the deadline is enforced at activity and statement
// boundaries.
type CtxJob struct {
	// Stack labels the product stack ("BIS", "WF", "Oracle") for metrics.
	Stack string
	// Name identifies the job in results.
	Name string
	// Class is the job's priority class; under brown-out, Deferrable
	// jobs are shed at admission.
	Class admit.Class
	// Run executes the instance under the pool-assigned budget.
	Run func(ctx context.Context) error
}

// PoolResult describes one job's final disposition: exactly one of
// completed (Err == nil), failed (Err != nil, Shed false), or shed
// (Shed true — the job never ran).
type PoolResult struct {
	Name       string
	Stack      string
	Class      admit.Class
	QueueWait  time.Duration // admission -> dequeue (zero for sheds at submit)
	RunTime    time.Duration // Run() wall clock (zero for sheds)
	Err        error
	Shed       bool
	ShedReason string
}

// PoolReport aggregates one pool run. Conservation holds by
// construction: Completed + Failed + Shed == Submitted, and no job is
// counted twice.
type PoolReport struct {
	Workers        int
	Submitted      int64
	Admitted       int64
	Shed           int64
	Completed      int64 // ran to completion without error
	Failed         int64 // ran and returned an error
	Elapsed        time.Duration
	Goodput        float64 // completed instances per second
	QueueHighWater int
	FinalLimit     int // adaptive concurrency bound at drain (0 = unlimited)
	Results        []PoolResult
}

// QueueWaitP99 returns the p99 queue wait over jobs that actually ran.
func (r PoolReport) QueueWaitP99() time.Duration {
	var waits []time.Duration
	for _, res := range r.Results {
		if !res.Shed {
			waits = append(waits, res.QueueWait)
		}
	}
	if len(waits) == 0 {
		return 0
	}
	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	idx := int(float64(len(waits))*0.99+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(waits) {
		idx = len(waits) - 1
	}
	return waits[idx]
}

// PoolConfig configures a streaming pool.
type PoolConfig struct {
	// Workers is the worker-goroutine count (values < 1 mean 1).
	Workers int
	// QueueBound caps the admission queue depth (values < 1 mean
	// 2*Workers).
	QueueBound int
	// Policy is the full-queue admission policy (default Block).
	Policy admit.Policy
	// Wait bounds TimeoutWait's patience.
	Wait time.Duration
	// JobBudget, when > 0, assigns every submitted job a deadline of
	// now+JobBudget. The deadline is enforced at admission, at dequeue
	// (expired-in-queue jobs are shed without running), and inside the
	// job via the ctx passed to Run.
	JobBudget time.Duration
	// AIMD, when Max > 0, installs an adaptive concurrency limiter
	// between dequeue and execution.
	AIMD admit.AIMDConfig
	// Brownout, when High > 0, installs the watermark degradation
	// controller, fed by queue depth.
	Brownout admit.BrownoutConfig
	// OnShed is called for every shed job (any reason, any stage).
	OnShed func(name, stack string, class admit.Class, reason string)
	// Obs receives sched.* and admit.* metrics (nil-safe).
	Obs *obsv.Observability
}

// poolItem is what rides the admission queue.
type poolItem struct {
	job CtxJob
}

// Pool is a streaming instance scheduler: jobs are submitted one at a
// time (from open-loop generators, request handlers, ...) and flow
// through a bounded admission queue to a fixed worker pool, optionally
// gated by an AIMD concurrency limiter and degraded by a brown-out
// controller. Contrast Scheduler.Run, which executes a pre-built batch
// with none of the overload machinery.
type Pool struct {
	cfg      PoolConfig
	queue    *admit.Queue[poolItem]
	limiter  *admit.Limiter
	brownout *admit.Brownout

	wg    sync.WaitGroup
	start time.Time

	mu        sync.Mutex
	results   []PoolResult
	completed int64
	failed    int64
	shed      int64
}

// NewPool builds and starts a pool; workers are live on return. Submit
// jobs, then Drain to stop and collect the report.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueBound < 1 {
		cfg.QueueBound = 2 * cfg.Workers
	}
	cfg.AIMD.Obs = cfg.Obs
	cfg.Brownout.Obs = cfg.Obs

	p := &Pool{cfg: cfg, start: time.Now()}
	p.limiter = admit.NewLimiter(cfg.AIMD)
	p.brownout = admit.NewBrownout(cfg.Brownout)
	p.queue = admit.NewQueue[poolItem](admit.Options{
		Capacity: cfg.QueueBound,
		Policy:   cfg.Policy,
		Wait:     cfg.Wait,
		Brownout: p.brownout,
		Obs:      cfg.Obs,
		OnShed: func(item any, class admit.Class, reason string) {
			it := item.(poolItem)
			p.recordShed(it.job, reason)
		},
	})

	for w := 0; w < cfg.Workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Brownout returns the pool's degradation controller (nil when not
// configured) so callers can attach OnChange hooks — e.g. relaxing the
// journal sync policy while the brown-out is active.
func (p *Pool) Brownout() *admit.Brownout { return p.brownout }

// Limiter returns the adaptive concurrency limiter (nil when not
// configured).
func (p *Pool) Limiter() *admit.Limiter { return p.limiter }

// QueueDepth returns the current admission-queue depth.
func (p *Pool) QueueDepth() int { return p.queue.Depth() }

// Submit offers a job under the configured admission policy. A
// *admit.ShedError return means the job was refused and will never run
// (it is already accounted in the report). A nil return means the job
// was admitted — it will either run or be shed at dequeue if its budget
// expires in the queue; both outcomes land in the report.
func (p *Pool) Submit(ctx context.Context, job CtxJob) error {
	t := admit.Ticket[poolItem]{Item: poolItem{job: job}, Class: job.Class}
	if p.cfg.JobBudget > 0 {
		t.Deadline = time.Now().Add(p.cfg.JobBudget)
	}
	return p.queue.Submit(ctx, t)
}

// Drain closes admission, waits for queued work to finish, and returns
// the final report.
func (p *Pool) Drain() PoolReport {
	p.queue.Close()
	p.wg.Wait()

	submitted, admitted, _ := p.queue.Counts()
	p.mu.Lock()
	defer p.mu.Unlock()
	rep := PoolReport{
		Workers:        p.cfg.Workers,
		Submitted:      submitted,
		Admitted:       admitted,
		Shed:           p.shed,
		Completed:      p.completed,
		Failed:         p.failed,
		Elapsed:        time.Since(p.start),
		QueueHighWater: p.queue.HighWater(),
		Results:        append([]PoolResult(nil), p.results...),
	}
	if p.limiter != nil {
		rep.FinalLimit = p.limiter.Limit()
	}
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.Goodput = float64(rep.Completed) / secs
	}
	return rep
}

func (p *Pool) worker() {
	defer p.wg.Done()
	obs := p.cfg.Obs
	for {
		tk, ok := p.queue.Take()
		if !ok {
			return
		}
		job := tk.Item.job
		queueWait := tk.QueueWait(time.Now())

		// The job's budget context: both the limiter wait and the run
		// itself are bounded by it.
		ctx := context.Background()
		var cancel context.CancelFunc
		if !tk.Deadline.IsZero() {
			ctx, cancel = context.WithDeadline(ctx, tk.Deadline)
		}

		if err := p.limiter.Acquire(ctx); err != nil {
			// Budget burned waiting for a concurrency slot: the job is
			// shed without running, same disposition as expiring in the
			// admission queue.
			obs.M().Counter("admit.shed").Inc()
			obs.M().Counter("admit.shed." + admit.ReasonExpiredInQueue).Inc()
			p.recordShed(job, admit.ReasonExpiredInQueue)
			if cancel != nil {
				cancel()
			}
			continue
		}

		started := time.Now()
		err := runCtxJob(ctx, job)
		runTime := time.Since(started)
		p.limiter.Release(runTime)
		if cancel != nil {
			cancel()
		}

		m := obs.M()
		m.Counter("sched.jobs").Inc()
		if job.Stack != "" {
			m.Counter("sched.jobs." + job.Stack).Inc()
		}
		if err != nil {
			m.Counter("sched.failed").Inc()
		} else {
			m.Counter("sched.ok").Inc()
		}
		m.Histogram("sched.queue_wait_ms").ObserveDuration(queueWait)
		m.Histogram("sched.run_ms").ObserveDuration(runTime)

		p.mu.Lock()
		if err != nil {
			p.failed++
		} else {
			p.completed++
		}
		p.results = append(p.results, PoolResult{
			Name:      job.Name,
			Stack:     job.Stack,
			Class:     job.Class,
			QueueWait: queueWait,
			RunTime:   runTime,
			Err:       err,
		})
		p.mu.Unlock()
	}
}

// recordShed accounts one shed job and forwards it to the OnShed hook.
func (p *Pool) recordShed(job CtxJob, reason string) {
	p.mu.Lock()
	p.shed++
	p.results = append(p.results, PoolResult{
		Name:       job.Name,
		Stack:      job.Stack,
		Class:      job.Class,
		Shed:       true,
		ShedReason: reason,
	})
	p.mu.Unlock()
	if p.cfg.OnShed != nil {
		p.cfg.OnShed(job.Name, job.Stack, job.Class, reason)
	}
}

// runCtxJob executes one job under its budget, converting a panic into
// an error so a faulting instance cannot take down its worker.
func runCtxJob(ctx context.Context, job CtxJob) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: job %s panicked: %v", job.Name, r)
		}
	}()
	return job.Run(ctx)
}
