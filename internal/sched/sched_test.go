package sched

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"wfsql/internal/obsv"
)

// TestRunAllJobsComplete checks every job runs exactly once and the
// report aggregates counts and throughput.
func TestRunAllJobsComplete(t *testing.T) {
	const n = 40
	var ran atomic.Int64
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Stack: "BIS", Name: "j", Run: func() error {
			ran.Add(1)
			return nil
		}}
	}
	rep := New(4).Run(jobs)
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d jobs, want %d", got, n)
	}
	if rep.Jobs != n || rep.Failed != 0 || rep.Workers != 4 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %v, want > 0", rep.Throughput)
	}
	if err := rep.FirstError(); err != nil {
		t.Fatalf("FirstError = %v", err)
	}
}

// TestRunBoundsConcurrency verifies no more than `workers` jobs are in
// flight at once, and that at least two workers actually run jobs.
func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	jobs := make([]Job, 24)
	for i := range jobs {
		jobs[i] = Job{Name: "j", Run: func() error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-1)
			return nil
		}}
	}
	rep := New(workers).Run(jobs)
	if p := peak.Load(); p > workers {
		t.Fatalf("peak in-flight %d exceeds %d workers", p, workers)
	}
	seen := map[int]bool{}
	for _, r := range rep.Results {
		seen[r.Worker] = true
	}
	if len(seen) < 2 {
		t.Fatalf("only %d worker(s) executed jobs, want >= 2", len(seen))
	}
}

// TestRunIsolatesFailuresAndPanics checks that erroring and panicking
// jobs are recorded as failures without preventing sibling jobs from
// completing — the instance-isolation contract.
func TestRunIsolatesFailuresAndPanics(t *testing.T) {
	boom := errors.New("boom")
	var okRan atomic.Int64
	jobs := []Job{
		{Name: "ok1", Run: func() error { okRan.Add(1); return nil }},
		{Name: "err", Run: func() error { return boom }},
		{Name: "panic", Run: func() error { panic("kaboom") }},
		{Name: "ok2", Run: func() error { okRan.Add(1); return nil }},
	}
	rep := New(2).Run(jobs)
	if okRan.Load() != 2 {
		t.Fatalf("healthy jobs ran %d times, want 2", okRan.Load())
	}
	if rep.Failed != 2 {
		t.Fatalf("Failed = %d, want 2", rep.Failed)
	}
	if err := rep.FirstError(); err == nil {
		t.Fatal("FirstError = nil, want error")
	}
	for _, r := range rep.Results {
		switch r.Name {
		case "err":
			if !errors.Is(r.Err, boom) {
				t.Fatalf("err job error = %v", r.Err)
			}
		case "panic":
			if r.Err == nil {
				t.Fatal("panic job recorded no error")
			}
		}
	}
}

// TestRunEmitsMetrics checks the obsv wiring: per-job counters and
// latency histograms.
func TestRunEmitsMetrics(t *testing.T) {
	o := obsv.New()
	s := New(2)
	s.SetObservability(o)
	jobs := []Job{
		{Stack: "WF", Name: "a", Run: func() error { return nil }},
		{Stack: "WF", Name: "b", Run: func() error { return errors.New("x") }},
	}
	s.Run(jobs)
	m := o.M()
	if got := m.Counter("sched.jobs").Value(); got != 2 {
		t.Fatalf("sched.jobs = %d, want 2", got)
	}
	if got := m.Counter("sched.jobs.WF").Value(); got != 2 {
		t.Fatalf("sched.jobs.WF = %d, want 2", got)
	}
	if got := m.Counter("sched.ok").Value(); got != 1 {
		t.Fatalf("sched.ok = %d, want 1", got)
	}
	if got := m.Counter("sched.failed").Value(); got != 1 {
		t.Fatalf("sched.failed = %d, want 1", got)
	}
	if got := m.Histogram("sched.run_ms").Count(); got != 2 {
		t.Fatalf("sched.run_ms count = %d, want 2", got)
	}
	if got := m.Histogram("sched.queue_wait_ms").Count(); got != 2 {
		t.Fatalf("sched.queue_wait_ms count = %d, want 2", got)
	}
}
