package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// This file is the incremental WAL frame reader: the one decoder both
// the whole-stream Scan (recovery) and the live Tailer (replication)
// are built on. Recovery wants "read everything, tell me where the
// valid prefix ends"; a tailer wants "give me the next record if a
// complete frame is available, and never lose my place". Both are
// expressible over the same primitive: a cursor that only ever
// advances past fully validated frames.

// TornError describes why frame decoding stopped before end of input:
// a partial header, a partial payload, an implausible length, a
// checksum mismatch, or an undecodable payload. For an immutable log
// it marks the torn tail a crash left behind; for a live log it
// usually just marks the frame the writer is still flushing, and the
// same offset will decode cleanly once the write completes.
type TornError struct {
	Reason string
}

// Error implements error.
func (e *TornError) Error() string { return "journal: torn frame: " + e.Reason }

// IsTorn reports whether err marks an incomplete or corrupt frame.
func IsTorn(err error) bool {
	var te *TornError
	return errors.As(err, &te)
}

// FrameReader decodes length- and CRC32-framed journal records from an
// io.Reader, one at a time. Offset() is the byte offset just past the
// last fully validated frame — the durable cursor a caller can persist
// and later resume from (see Tailer). A FrameReader never reads ahead
// of the frame it is decoding, and a frame either validates completely
// (Next returns the record, Offset advances) or not at all (Next
// returns io.EOF or a *TornError, Offset stays put).
type FrameReader struct {
	r      io.Reader
	off    int64
	header [frameHeaderLen]byte
}

// NewFrameReader returns a FrameReader decoding from r. The reader's
// current position is offset zero; callers resuming from a persisted
// cursor seek (or section) the underlying reader first.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Offset returns the byte offset just past the last validated frame.
func (fr *FrameReader) Offset() int64 { return fr.off }

// Next decodes one frame. It returns:
//
//   - (rec, nil) for a valid frame — Offset advances past it;
//   - (nil, io.EOF) at a clean end of input on a frame boundary;
//   - (nil, *TornError) when the remaining bytes do not form a complete
//     valid frame — Offset does NOT advance, so re-reading from Offset
//     after the writer finishes (or truncates) the tail is safe;
//   - (nil, err) for any other I/O error from the underlying reader.
func (fr *FrameReader) Next() (*Record, error) {
	n, err := io.ReadFull(fr.r, fr.header[:])
	if err == io.EOF {
		return nil, io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		return nil, &TornError{Reason: fmt.Sprintf("partial frame header (%d of %d bytes)", n, frameHeaderLen)}
	}
	if err != nil {
		return nil, fmt.Errorf("journal: read frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(fr.header[0:4])
	sum := binary.LittleEndian.Uint32(fr.header[4:8])
	if length > maxRecordLen {
		return nil, &TornError{Reason: fmt.Sprintf("implausible record length %d", length)}
	}
	payload := make([]byte, length)
	n, err = io.ReadFull(fr.r, payload)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return nil, &TornError{Reason: fmt.Sprintf("partial payload (%d of %d bytes)", n, length)}
	}
	if err != nil {
		return nil, fmt.Errorf("journal: read frame payload: %w", err)
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, &TornError{Reason: "checksum mismatch"}
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		// Passing the checksum but failing to parse means a writer bug
		// or version skew, not a torn write; still stop cleanly rather
		// than hand garbage to replay.
		return nil, &TornError{Reason: fmt.Sprintf("undecodable record: %v", err)}
	}
	fr.off += int64(frameHeaderLen) + int64(length)
	return &rec, nil
}
