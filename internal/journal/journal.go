// Package journal implements a durable, append-only, checksummed
// write-ahead log of workflow instance lifecycle records, plus the
// recovery state machine that rebuilds in-flight instances from it.
//
// The paper's Table I singles out persistent process state as the
// defining robustness trait of long-running workflows: BIS's navigator
// persists instance state in its runtime database so processes survive
// middleware failure. This package plays the role of that runtime
// database for all three product layers. Every effectful step an
// instance takes (invoke, SQL, variable write, transaction boundary,
// compensation, dead-letter) is journaled *with its result* before the
// instance proceeds, so that after a crash the recovery manager can
// replay completed activities from their memoized results -- without
// re-executing their side effects -- and resume execution at the first
// un-journaled activity.
//
// The journal is a single file of length- and CRC32-framed JSON
// records. Torn tails (a partial record written at the moment of the
// crash) are detected by the checksum and discarded; recovery stops
// cleanly at the last valid record.
//
// The package deliberately depends only on the standard library so
// every layer of the system (engine, product stacks, resilience, CLI)
// can import it without cycles.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// Kind identifies the type of a journal record.
type Kind string

// Record kinds. The set mirrors the instance lifecycle: creation,
// per-activity start/complete (with memoized results), variable
// writes, product-layer transaction boundaries, compensation,
// dead-lettering, and completion. Checkpoint records carry a full
// state snapshot so recovery need not scan from the beginning of
// time; deploy records are an audit trail.
const (
	KindDeploy            Kind = "deploy"
	KindInstanceCreated   Kind = "instance-created"
	KindActivityStart     Kind = "activity-start"
	KindActivityComplete  Kind = "activity-complete"
	KindVariableWrite     Kind = "variable-write"
	KindTxnBegin          Kind = "txn-begin"
	KindTxnCommit         Kind = "txn-commit"
	KindTxnRollback       Kind = "txn-rollback"
	KindCompensation      Kind = "compensation"
	KindDeadLetter        Kind = "dead-letter"
	KindDeadLetterRequeue Kind = "dead-letter-requeue"
	KindInstanceComplete  Kind = "instance-complete"
	KindCheckpoint        Kind = "checkpoint"

	// KindSQLEffect is the CDC record: one committed mutating SQL
	// statement (text + encoded parameters + originating session), in
	// database execution order. It is not lifecycle state — replay
	// ignores it — but a tailer can stream it into a sqldb read
	// replica (see internal/replica) the way a change-data-capture
	// pipeline feeds an analytic store.
	KindSQLEffect Kind = "sql-effect"
)

// Effect kinds recorded on activity-complete records. SQL effects are
// transaction-scoped: while the instance has an open product-layer
// transaction their memos are *pending* and only become durable when
// the COMMIT is journaled (KindTxnCommit). Invoke effects hit external
// services whose side effects cannot be rolled back, so their memos
// are durable immediately.
const (
	EffectSQL    = "sql"
	EffectInvoke = "invoke"
	EffectStep   = "step"
)

// Record is one journal entry. JSON field names are terse because a
// busy instance writes one record per effectful activity.
type Record struct {
	Kind       Kind              `json:"k"`
	Instance   int64             `json:"i,omitempty"`
	Process    string            `json:"p,omitempty"`
	Activity   string            `json:"a,omitempty"`
	Occurrence int               `json:"n,omitempty"`
	EffectKind string            `json:"e,omitempty"`
	Data       map[string]string `json:"d,omitempty"`
	Checkpoint *State            `json:"s,omitempty"`
	Time       time.Time         `json:"t,omitempty"`

	// Epoch is the fencing epoch of the writer that appended the
	// record (see Recorder.SetEpoch). Epochs are monotone across
	// takeovers: a standby promotes with the lease's next epoch, so a
	// record stream whose epoch ever *decreases* is the signature of a
	// split brain. Zero for journals written before failover existed
	// (and for recorders that never join a lease).
	Epoch int64 `json:"ep,omitempty"`
}

// Framing: each record is [uint32 payload length][uint32 CRC32-IEEE of
// payload][payload JSON]. Little-endian, to match the typical WAL
// idiom. maxRecordLen guards against interpreting garbage as an
// enormous length and allocating accordingly.
const (
	frameHeaderLen = 8
	maxRecordLen   = 64 << 20 // 64 MiB; a record is normally < 4 KiB
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// Marshal frames a record for appending to the log.
func Marshal(r *Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("journal: marshal record: %w", err)
	}
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeaderLen:], payload)
	return buf, nil
}

// ScanResult reports what a Scan found.
type ScanResult struct {
	// Records is every valid record, in order.
	Records []Record
	// ValidLen is the byte offset just past the last valid record.
	// Anything beyond it is a torn tail and should be truncated
	// before appending new records.
	ValidLen int64
	// Torn is true if the log ended with a partial or corrupt record
	// (the normal signature of a crash mid-write).
	Torn bool
	// TornReason describes why scanning stopped early.
	TornReason string
}

// Scan reads framed records from r until EOF or the first invalid
// frame. A short header, short payload, absurd length, or checksum
// mismatch all terminate the scan *cleanly*: everything up to that
// point is returned as valid, and Torn is set so the caller can
// truncate the tail. Scan never returns an error for torn data --
// only for I/O errors other than EOF.
//
// Scan is the whole-stream convenience over the incremental
// FrameReader: ValidLen is exactly the reader's final Offset, so a
// caller holding a live file can keep decoding from there later (the
// live-tail protocol in Tailer does precisely that).
func Scan(r io.Reader) (*ScanResult, error) {
	res := &ScanResult{}
	fr := NewFrameReader(r)
	for {
		rec, err := fr.Next()
		res.ValidLen = fr.Offset()
		switch {
		case err == nil:
			res.Records = append(res.Records, *rec)
		case err == io.EOF:
			return res, nil // clean end
		case IsTorn(err):
			res.Torn = true
			res.TornReason = err.(*TornError).Reason
			return res, nil
		default:
			return res, fmt.Errorf("journal: scan: %w", err)
		}
	}
}
