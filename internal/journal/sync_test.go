package journal

import (
	"bytes"
	"testing"

	"wfsql/internal/obsv"
)

// fakeWAL is an in-memory walFile that records the sync protocol: how
// many bytes were written before each fsync, and how many fsyncs were
// issued in total.
type fakeWAL struct {
	buf         bytes.Buffer
	syncs       int
	syncedAt    []int // buf length at each Sync call
	closed      bool
	syncOnClose bool
}

func (f *fakeWAL) Write(p []byte) (int, error) { return f.buf.Write(p) }

func (f *fakeWAL) Sync() error {
	f.syncs++
	f.syncedAt = append(f.syncedAt, f.buf.Len())
	return nil
}

func (f *fakeWAL) Close() error {
	f.closed = true
	return nil
}

// newFakeRecorder builds a Recorder over an injected fake file, skipping
// the disk-backed Open path.
func newFakeRecorder(f *fakeWAL) *Recorder {
	return &Recorder{
		f:     f,
		path:  "fake://wal",
		state: Replay(nil),
		sync:  SyncPolicy{Mode: SyncCritical, BatchSize: 1},
	}
}

func TestAppendSyncsCommitCriticalRecords(t *testing.T) {
	f := &fakeWAL{}
	r := newFakeRecorder(f)

	// Non-critical records must not trigger fsync on their own.
	if err := r.Deploy("P"); err != nil {
		t.Fatal(err)
	}
	if err := r.InstanceCreated(1, "P", "long-running", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.ActivityStart(1, "Invoke", 0, "invoke"); err != nil {
		t.Fatal(err)
	}
	if f.syncs != 0 {
		t.Fatalf("non-critical records caused %d fsyncs", f.syncs)
	}

	// The activity-complete memo is the record whose loss breaks
	// exactly-once replay: it MUST be synced before Append returns.
	if err := r.ActivityComplete(1, "Invoke", 0, "invoke", map[string]string{"out": "1"}); err != nil {
		t.Fatal(err)
	}
	if f.syncs != 1 {
		t.Fatalf("activity-complete: want 1 fsync, got %d", f.syncs)
	}
	// The fsync must cover everything written so far (WAL is ordered,
	// so syncing the tail syncs the prefix).
	if f.syncedAt[0] != f.buf.Len() {
		t.Fatalf("fsync at %d bytes but buffer has %d", f.syncedAt[0], f.buf.Len())
	}

	// txn-commit and instance-complete are also commit-critical.
	if err := r.TxnBegin(1, "uow"); err != nil {
		t.Fatal(err)
	}
	if f.syncs != 1 {
		t.Fatalf("txn-begin should not sync, got %d", f.syncs)
	}
	if err := r.TxnCommit(1, "uow"); err != nil {
		t.Fatal(err)
	}
	if f.syncs != 2 {
		t.Fatalf("txn-commit: want 2 fsyncs, got %d", f.syncs)
	}
	if err := r.InstanceComplete(1, ""); err != nil {
		t.Fatal(err)
	}
	if f.syncs != 3 {
		t.Fatalf("instance-complete: want 3 fsyncs, got %d", f.syncs)
	}
	if got := r.SyncCount(); got != 3 {
		t.Fatalf("SyncCount = %d", got)
	}
}

func TestCheckpointIsSynced(t *testing.T) {
	f := &fakeWAL{}
	r := newFakeRecorder(f)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if f.syncs != 1 {
		t.Fatalf("checkpoint: want 1 fsync, got %d", f.syncs)
	}
	if f.syncedAt[0] != f.buf.Len() {
		t.Fatalf("checkpoint fsync did not cover the snapshot bytes")
	}
}

func TestSyncBatchingCoalesces(t *testing.T) {
	f := &fakeWAL{}
	r := newFakeRecorder(f)
	r.SetSyncPolicy(SyncPolicy{Mode: SyncCritical, BatchSize: 3})

	for i := 0; i < 2; i++ {
		if err := r.ActivityComplete(1, "A", i, "sql", nil); err != nil {
			t.Fatal(err)
		}
	}
	if f.syncs != 0 {
		t.Fatalf("batch of 3: fsynced after %d records", f.syncs)
	}
	if err := r.ActivityComplete(1, "A", 2, "sql", nil); err != nil {
		t.Fatal(err)
	}
	if f.syncs != 1 {
		t.Fatalf("batch full: want 1 coalesced fsync, got %d", f.syncs)
	}
	// A forced Sync flushes a partial batch.
	if err := r.ActivityComplete(1, "A", 3, "sql", nil); err != nil {
		t.Fatal(err)
	}
	if f.syncs != 1 {
		t.Fatalf("partial batch should not fsync, got %d", f.syncs)
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	if f.syncs != 2 {
		t.Fatalf("forced Sync: want 2 fsyncs, got %d", f.syncs)
	}
}

func TestSyncModes(t *testing.T) {
	// SyncAlways: every record is synced.
	f := &fakeWAL{}
	r := newFakeRecorder(f)
	r.SetSyncPolicy(SyncPolicy{Mode: SyncAlways, BatchSize: 1})
	if err := r.Deploy("P"); err != nil {
		t.Fatal(err)
	}
	if err := r.ActivityStart(1, "A", 0, "sql"); err != nil {
		t.Fatal(err)
	}
	if f.syncs != 2 {
		t.Fatalf("SyncAlways: want 2, got %d", f.syncs)
	}

	// SyncNever: nothing syncs until Close.
	f2 := &fakeWAL{}
	r2 := newFakeRecorder(f2)
	r2.SetSyncPolicy(SyncPolicy{Mode: SyncNever})
	if err := r2.TxnCommit(1, "uow"); err != nil {
		t.Fatal(err)
	}
	if f2.syncs != 0 {
		t.Fatalf("SyncNever: got %d fsyncs", f2.syncs)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	if f2.syncs != 1 || !f2.closed {
		t.Fatalf("Close must sync+close: syncs=%d closed=%v", f2.syncs, f2.closed)
	}
}

func TestSyncMetricsCounted(t *testing.T) {
	f := &fakeWAL{}
	r := newFakeRecorder(f)
	o := obsv.New()
	r.SetObservability(o)

	if err := r.ActivityStart(1, "A", 0, "sql"); err != nil {
		t.Fatal(err)
	}
	if err := r.ActivityComplete(1, "A", 0, "sql", nil); err != nil {
		t.Fatal(err)
	}
	m := o.M()
	if got := m.Counter("journal.appends").Value(); got != 2 {
		t.Fatalf("journal.appends = %d", got)
	}
	if got := m.Counter("journal.syncs").Value(); got != 1 {
		t.Fatalf("journal.syncs = %d", got)
	}
	if got := m.Counter("journal.appends.activity-complete").Value(); got != 1 {
		t.Fatalf("per-kind append counter = %d", got)
	}
	if m.Histogram("journal.append_ms").Count() != 2 {
		t.Fatalf("append_ms observations = %d", m.Histogram("journal.append_ms").Count())
	}
}

// TestDiskRecorderStillWorks pins that the real Open path composes with
// the sync policy (os.File satisfies walFile).
func TestDiskRecorderStillWorks(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InstanceCreated(1, "P", "", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.ActivityComplete(1, "A", 0, "sql", map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	if r.SyncCount() < 1 {
		t.Fatalf("disk recorder never fsynced a critical record")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and confirm the memo survived.
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	st := r2.State()
	ij := st.Instances[1]
	if ij == nil || ij.MemoCount() != 1 {
		t.Fatalf("memo lost across reopen: %+v", ij)
	}
}
