package journal

import (
	"bytes"
	"io"
	"testing"
)

// FuzzScan feeds arbitrary bytes to the WAL scanner. Scan's contract:
// it must never panic, never return an I/O error for in-memory input,
// never replay bytes beyond ValidLen, and for any prefix of valid
// frames it must return exactly those records with Torn describing the
// rest. Replay of whatever Scan accepts must also not panic — recovery
// runs on whatever the disk serves.
func FuzzScan(f *testing.F) {
	// Seed corpus: an empty log, a well-formed log, and mutations of it
	// covering every torn-tail class Scan distinguishes.
	f.Add([]byte{})
	valid := func() []byte {
		var buf bytes.Buffer
		for _, rec := range []*Record{
			{Kind: KindInstanceCreated, Instance: 1, Process: "P", Data: map[string]string{"k": "v"}},
			{Kind: KindActivityStart, Instance: 1, Activity: "A", Occurrence: 1, EffectKind: EffectInvoke},
			{Kind: KindActivityComplete, Instance: 1, Activity: "A", Occurrence: 1, EffectKind: EffectInvoke, Data: map[string]string{"out": "x"}},
			{Kind: KindTxnBegin, Instance: 1, Activity: "t"},
			{Kind: KindTxnCommit, Instance: 1, Activity: "t"},
			{Kind: KindInstanceComplete, Instance: 1},
		} {
			b, err := Marshal(rec)
			if err != nil {
				f.Fatal(err)
			}
			buf.Write(b)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])          // partial payload
	f.Add(valid[:5])                     // partial header
	f.Add(append(valid, 0xFF, 0xFF))     // trailing garbage
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x40 // flip a bit mid-log
	f.Add(corrupt)
	huge := append([]byte(nil), valid...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0) // implausible length header
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Scan(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("Scan returned an error for in-memory input: %v", err)
		}
		if res.ValidLen < 0 || res.ValidLen > int64(len(data)) {
			t.Fatalf("ValidLen %d out of range [0,%d]", res.ValidLen, len(data))
		}
		if res.Torn && res.TornReason == "" {
			t.Fatal("torn result without a reason")
		}
		if !res.Torn && res.ValidLen != int64(len(data)) {
			t.Fatalf("clean scan stopped early: ValidLen %d of %d", res.ValidLen, len(data))
		}

		// Re-scanning exactly the valid prefix must reproduce the same
		// records with no torn tail (scan is deterministic and
		// prefix-closed).
		res2, err := Scan(bytes.NewReader(data[:res.ValidLen]))
		if err != nil {
			t.Fatalf("rescan: %v", err)
		}
		if res2.Torn {
			t.Fatalf("valid prefix re-scanned as torn: %s", res2.TornReason)
		}
		if len(res2.Records) != len(res.Records) {
			t.Fatalf("rescan records = %d, want %d", len(res2.Records), len(res.Records))
		}

		// The incremental FrameReader underlies Scan; driving it over
		// the same input must yield exactly the same records, stop at
		// exactly the same offset, and never panic. Its per-frame
		// contract: every non-nil record advances Offset, io.EOF means a
		// clean frame boundary, a TornError leaves Offset at the last
		// valid boundary, and nothing else is ever returned for
		// in-memory input.
		fr := NewFrameReader(bytes.NewReader(data))
		var frRecords int
		var lastOff int64
		for {
			rec, err := fr.Next()
			if rec != nil {
				if fr.Offset() <= lastOff {
					t.Fatalf("FrameReader offset did not advance: %d -> %d", lastOff, fr.Offset())
				}
				lastOff = fr.Offset()
				frRecords++
				continue
			}
			if err == io.EOF {
				if res.Torn {
					t.Fatal("FrameReader saw clean EOF where Scan saw a torn tail")
				}
				break
			}
			if IsTorn(err) {
				if !res.Torn {
					t.Fatalf("FrameReader saw torn frame where Scan saw clean end: %v", err)
				}
				if fr.Offset() != lastOff {
					t.Fatalf("torn frame advanced offset: %d -> %d", lastOff, fr.Offset())
				}
				break
			}
			t.Fatalf("FrameReader returned an I/O error for in-memory input: %v", err)
		}
		if frRecords != len(res.Records) {
			t.Fatalf("FrameReader decoded %d records, Scan %d", frRecords, len(res.Records))
		}
		if fr.Offset() != res.ValidLen {
			t.Fatalf("FrameReader final offset %d != Scan ValidLen %d", fr.Offset(), res.ValidLen)
		}

		// Whatever was accepted must replay without panicking.
		state := Replay(res.Records)
		_ = state.InFlight()
		_ = state.Clone()
	})
}
