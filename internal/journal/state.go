package journal

// State is the materialized view of a journal: everything the recovery
// manager needs to resume work after a crash. It is rebuilt by folding
// records in order (see apply), and snapshotted wholesale into
// checkpoint records so recovery need not re-read the full history.
type State struct {
	// NextID is one past the highest instance ID ever allocated, so
	// recovered engines keep IDs unique across restarts.
	NextID int64 `json:"next_id,omitempty"`
	// Instances maps instance ID to its journal, for every instance
	// that has been created and not yet completed (in-flight).
	Instances map[int64]*InstanceJournal `json:"instances,omitempty"`
	// Completed lists instance IDs that ran to completion (or
	// faulted terminally); they need no recovery.
	Completed []int64 `json:"completed,omitempty"`
	// DeadLetters is the persisted dead-letter log, in order.
	// Requeued entries are removed.
	DeadLetters []DeadLetterRecord `json:"dead_letters,omitempty"`
	// Deployments records process names seen in deploy records
	// (audit only; the process definitions themselves live in code).
	Deployments []string `json:"deployments,omitempty"`
}

// InstanceJournal is the durable state of one instance.
type InstanceJournal struct {
	ID      int64             `json:"id"`
	Process string            `json:"process"`
	Mode    string            `json:"mode,omitempty"` // product transaction mode label
	Input   map[string]string `json:"input,omitempty"`
	// Data carries product-layer snapshot state recorded at
	// creation (e.g. the WF runtime's serialized host variables).
	Data map[string]string `json:"data,omitempty"`
	// Memos holds committed activity results keyed by activity
	// name, each a FIFO queue in execution order. On replay the
	// recovered instance consumes them front-to-back, so repeated
	// executions of the same activity (loops) line up without
	// needing stable occurrence numbering across retries.
	Memos map[string][]Memo `json:"memos,omitempty"`
	// Pending holds SQL memos recorded while a product-layer
	// transaction was open. They are promoted into Memos when the
	// COMMIT is journaled, dropped on ROLLBACK, and implicitly
	// dropped if the journal ends with the transaction still open
	// (the database rolled the work back when the connection died,
	// so the activities must re-run).
	Pending map[string][]Memo `json:"pending,omitempty"`
	// OpenTxns counts journaled txn-begin records without a
	// matching commit/rollback.
	OpenTxns int `json:"open_txns,omitempty"`
	// Vars records the last journaled value of each scalar/XML
	// variable write ("s:" / "x:" prefixed), for audit and for
	// tools; replay itself recomputes variables deterministically.
	Vars map[string]string `json:"vars,omitempty"`
	// Compensations counts journaled compensation executions.
	Compensations []string `json:"compensations,omitempty"`
	Started       bool     `json:"started,omitempty"`
}

// Memo is one memoized activity result.
type Memo struct {
	Occurrence int               `json:"n"`
	Kind       string            `json:"e,omitempty"`
	Data       map[string]string `json:"d,omitempty"`
}

// DeadLetterRecord is the journaled form of a resilience dead letter.
type DeadLetterRecord struct {
	Seq      int64  `json:"seq"`
	Time     string `json:"time,omitempty"`
	Activity string `json:"activity"`
	Target   string `json:"target,omitempty"`
	Key      string `json:"key"`
	Attempts int    `json:"attempts,omitempty"`
	Reason   string `json:"reason,omitempty"`
	LastErr  string `json:"last_err,omitempty"`
}

// NewState returns an empty state.
func NewState() *State {
	return &State{Instances: map[int64]*InstanceJournal{}}
}

func (s *State) instance(id int64) *InstanceJournal {
	ij, ok := s.Instances[id]
	if !ok {
		ij = &InstanceJournal{ID: id}
		s.Instances[id] = ij
	}
	return ij
}

// apply folds one record into the state. Unknown kinds are ignored so
// newer writers do not break older readers.
func (s *State) apply(r *Record) {
	switch r.Kind {
	case KindDeploy:
		s.Deployments = append(s.Deployments, r.Process)
	case KindInstanceCreated:
		ij := s.instance(r.Instance)
		ij.Process = r.Process
		ij.Input = copyMap(r.Data)
		if r.EffectKind != "" {
			ij.Mode = r.EffectKind
		}
		if r.Instance >= s.NextID {
			s.NextID = r.Instance + 1
		}
	case KindActivityStart:
		s.instance(r.Instance).Started = true
	case KindActivityComplete:
		ij := s.instance(r.Instance)
		m := Memo{Occurrence: r.Occurrence, Kind: r.EffectKind, Data: copyMap(r.Data)}
		if r.EffectKind == EffectSQL && ij.OpenTxns > 0 {
			if ij.Pending == nil {
				ij.Pending = map[string][]Memo{}
			}
			ij.Pending[r.Activity] = append(ij.Pending[r.Activity], m)
		} else {
			if ij.Memos == nil {
				ij.Memos = map[string][]Memo{}
			}
			ij.Memos[r.Activity] = append(ij.Memos[r.Activity], m)
		}
	case KindVariableWrite:
		ij := s.instance(r.Instance)
		if ij.Vars == nil {
			ij.Vars = map[string]string{}
		}
		for k, v := range r.Data {
			ij.Vars[k] = v
		}
	case KindTxnBegin:
		s.instance(r.Instance).OpenTxns++
	case KindTxnCommit:
		ij := s.instance(r.Instance)
		if ij.OpenTxns > 0 {
			ij.OpenTxns--
		}
		// The transaction's SQL work is durable now: promote every
		// pending memo, preserving per-activity FIFO order.
		for act, memos := range ij.Pending {
			if ij.Memos == nil {
				ij.Memos = map[string][]Memo{}
			}
			ij.Memos[act] = append(ij.Memos[act], memos...)
		}
		ij.Pending = nil
	case KindTxnRollback:
		ij := s.instance(r.Instance)
		if ij.OpenTxns > 0 {
			ij.OpenTxns--
		}
		// Rolled back: the statements never happened as far as the
		// database is concerned, so they must re-run on replay.
		ij.Pending = nil
	case KindCompensation:
		ij := s.instance(r.Instance)
		ij.Compensations = append(ij.Compensations, r.Activity)
	case KindDeadLetter:
		s.DeadLetters = append(s.DeadLetters, deadLetterFromData(r.Data))
	case KindDeadLetterRequeue:
		key := r.Data["key"]
		out := s.DeadLetters[:0]
		for _, dl := range s.DeadLetters {
			if dl.Key != key {
				out = append(out, dl)
			}
		}
		s.DeadLetters = out
	case KindInstanceComplete:
		delete(s.Instances, r.Instance)
		s.Completed = append(s.Completed, r.Instance)
	case KindCheckpoint:
		if r.Checkpoint != nil {
			*s = *r.Checkpoint.Clone()
		}
	}
}

// Apply folds one record into the state — the incremental form of
// Replay. A warm standby drives it from a Tailer to replay-to-follow:
// folding each tailed record keeps the standby's state byte-equivalent
// to what a fresh Replay of the whole journal would produce.
func (s *State) Apply(r *Record) { s.apply(r) }

// Replay folds a sequence of scanned records into a fresh state.
func Replay(records []Record) *State {
	s := NewState()
	for i := range records {
		s.apply(&records[i])
	}
	return s
}

// InFlight returns the journals of instances that were created but
// never completed -- the set the recovery manager must resume. An
// instance whose journal ends with an open transaction has its
// pending memos dropped here (the database rolled that work back when
// the crash killed the connection), matching PR 1's unit-of-work
// recovery: the whole short-running / atomic sequence re-runs.
func (s *State) InFlight() []*InstanceJournal {
	out := make([]*InstanceJournal, 0, len(s.Instances))
	for _, ij := range s.Instances {
		c := ij.Clone()
		if c.OpenTxns > 0 {
			c.Pending = nil
			c.OpenTxns = 0
		}
		out = append(out, c)
	}
	return out
}

// Clone deep-copies the state (used for checkpointing so the snapshot
// is decoupled from subsequent mutation).
func (s *State) Clone() *State {
	c := &State{
		NextID:      s.NextID,
		Instances:   make(map[int64]*InstanceJournal, len(s.Instances)),
		Completed:   append([]int64(nil), s.Completed...),
		DeadLetters: append([]DeadLetterRecord(nil), s.DeadLetters...),
		Deployments: append([]string(nil), s.Deployments...),
	}
	for id, ij := range s.Instances {
		c.Instances[id] = ij.Clone()
	}
	return c
}

// Clone deep-copies an instance journal.
func (ij *InstanceJournal) Clone() *InstanceJournal {
	c := &InstanceJournal{
		ID:            ij.ID,
		Process:       ij.Process,
		Mode:          ij.Mode,
		Input:         copyMap(ij.Input),
		Data:          copyMap(ij.Data),
		OpenTxns:      ij.OpenTxns,
		Vars:          copyMap(ij.Vars),
		Compensations: append([]string(nil), ij.Compensations...),
		Started:       ij.Started,
	}
	c.Memos = cloneMemos(ij.Memos)
	c.Pending = cloneMemos(ij.Pending)
	return c
}

// MemoCount returns the total number of committed memos (test/audit
// helper).
func (ij *InstanceJournal) MemoCount() int {
	n := 0
	for _, ms := range ij.Memos {
		n += len(ms)
	}
	return n
}

func cloneMemos(in map[string][]Memo) map[string][]Memo {
	if in == nil {
		return nil
	}
	out := make(map[string][]Memo, len(in))
	for k, ms := range in {
		cp := make([]Memo, len(ms))
		for i, m := range ms {
			cp[i] = Memo{Occurrence: m.Occurrence, Kind: m.Kind, Data: copyMap(m.Data)}
		}
		out[k] = cp
	}
	return out
}

func copyMap(in map[string]string) map[string]string {
	if in == nil {
		return nil
	}
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func deadLetterFromData(d map[string]string) DeadLetterRecord {
	rec := DeadLetterRecord{
		Activity: d["activity"],
		Target:   d["target"],
		Key:      d["key"],
		Reason:   d["reason"],
		LastErr:  d["last_err"],
		Time:     d["time"],
	}
	fmtSscan(d["seq"], &rec.Seq)
	fmtSscanInt(d["attempts"], &rec.Attempts)
	return rec
}

func fmtSscan(s string, out *int64) {
	if s == "" {
		return
	}
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return
		}
		v = v*10 + int64(c-'0')
	}
	*out = v
}

func fmtSscanInt(s string, out *int) {
	var v int64
	fmtSscan(s, &v)
	*out = int(v)
}
