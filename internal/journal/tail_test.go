package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

// collectTailer polls t and appends every delivered non-checkpoint
// record id (Data["id"]) to got, counting checkpoints separately.
func pollIDs(t *testing.T, tl *Tailer, got map[string]int) (records, checkpoints int) {
	t.Helper()
	n, err := tl.Poll(func(rec *Record) error {
		if rec.Kind == KindCheckpoint {
			checkpoints++
			return nil
		}
		got[rec.Data["id"]]++
		records++
		return nil
	})
	if err != nil {
		t.Fatalf("poll: %v", err)
	}
	if n != records+checkpoints {
		t.Fatalf("poll delivered %d, emitted %d", n, records+checkpoints)
	}
	return records, checkpoints
}

// TestTailerFollowsLiveAppends: records appended between polls arrive
// in order, exactly once, with no primer records lost before the
// tailer attached.
func TestTailerFollowsLiveAppends(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetCheckpointEvery(0)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", map[string]string{"id": "created"}))

	tl := NewTailer(dir)
	defer tl.Close()
	got := map[string]int{}
	pollIDs(t, tl, got)
	if got["created"] != 1 {
		t.Fatalf("pre-attach record not delivered: %v", got)
	}

	for i := 0; i < 25; i++ {
		must(t, r.ActivityComplete(id, "A", i+1, EffectInvoke, map[string]string{"id": fmt.Sprintf("a%d", i)}))
		if i%7 == 0 {
			pollIDs(t, tl, got)
		}
	}
	pollIDs(t, tl, got)
	for i := 0; i < 25; i++ {
		key := fmt.Sprintf("a%d", i)
		if got[key] != 1 {
			t.Fatalf("record %s delivered %d times, want 1", key, got[key])
		}
	}
	if tl.Backlog() != 0 {
		t.Fatalf("backlog %d after full drain, want 0", tl.Backlog())
	}
}

// TestTailerTornTailRetry: a partially written frame parks the cursor;
// completing the frame later delivers the record exactly once — the
// live analogue of Scan's torn-tail handling.
func TestTailerTornTailRetry(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	must(t, r.InstanceCreated(1, "P", "", map[string]string{"id": "r1"}))
	must(t, r.Close())

	buf, err := Marshal(&Record{Kind: KindActivityStart, Instance: 1, Activity: "A", Data: map[string]string{"id": "r2"}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, WALName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	half := len(buf) / 2
	if _, err := f.Write(buf[:half]); err != nil {
		t.Fatal(err)
	}

	tl := NewTailer(dir)
	defer tl.Close()
	got := map[string]int{}
	pollIDs(t, tl, got)
	if got["r1"] != 1 || got["r2"] != 0 {
		t.Fatalf("torn poll delivered %v, want only r1", got)
	}

	if _, err := f.Write(buf[half:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	pollIDs(t, tl, got)
	if got["r2"] != 1 {
		t.Fatalf("completed frame delivered %d times, want 1", got["r2"])
	}
}

// TestTailerThroughRotation is the WAL-rotation × concurrent-tailer
// regression: a writer appends through multiple checkpoint rotations
// while a tailer polls concurrently. Across every fsync-then-rename
// commit point, no record may be skipped or double-delivered — every
// unique appended record arrives exactly once, in order, and the
// rotation-born checkpoints carry contiguous generations.
func TestTailerThroughRotation(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCheckpointEvery(17)
	r.SetRotateAtCheckpoint(true)
	// Retention makes exactly-once hold even when the writer rotates
	// several times between tailer polls — without it the scheduler
	// could rename a whole segment away before the tailer sees it.
	r.SetRotateKeep(64)
	r.SetSyncPolicy(SyncPolicy{Mode: SyncNever})
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", map[string]string{"id": "created"}))

	const total = 400
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := r.ActivityComplete(id, "A", i+1, EffectInvoke, map[string]string{"id": strconv.Itoa(i)}); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	tl := NewTailer(dir)
	mu := sync.Mutex{}
	got := map[string]int{}
	var order []int
	done := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := tl.Poll(func(rec *Record) error {
				if rec.Kind == KindCheckpoint {
					return nil
				}
				mu.Lock()
				got[rec.Data["id"]]++
				if rec.Kind == KindActivityComplete {
					n, _ := strconv.Atoi(rec.Data["id"])
					order = append(order, n)
				}
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Errorf("tail poll: %v", err)
				return
			}
			mu.Lock()
			caught := len(order) >= total
			mu.Unlock()
			if caught {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	wg.Wait()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		close(stop)
		<-done
		t.Fatal("tailer never caught up with the writer")
	}
	tl.Close()

	if r.Rotations() == 0 {
		t.Fatal("writer never rotated; the regression needs rotations")
	}
	for i := 0; i < total; i++ {
		key := strconv.Itoa(i)
		if got[key] != 1 {
			t.Fatalf("record %s delivered %d times across rotation, want exactly 1 (rotations=%d)",
				key, got[key], r.Rotations())
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1]+1 {
			t.Fatalf("delivery out of order at %d: %d after %d", i, order[i], order[i-1])
		}
	}
	if tl.SkippedSegments() != 0 {
		t.Fatalf("tailer reported %d skipped segments; drain-before-switch must not skip", tl.SkippedSegments())
	}
	must(t, r.Close())
}

// TestTailerDrainsRetainedArchives: with retention on, a tailer whose
// poll gap spans several whole rotations still delivers every record
// exactly once by draining the archived segments in generation order.
func TestTailerDrainsRetainedArchives(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetCheckpointEvery(0)
	r.SetRotateAtCheckpoint(true)
	r.SetRotateKeep(8)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", map[string]string{"id": "created"}))

	tl := NewTailer(dir)
	defer tl.Close()
	got := map[string]int{}
	pollIDs(t, tl, got)

	// Four whole rotations with no poll in between: three middle
	// segments exist only as archives by the time the tailer looks.
	occ := 0
	for seg := 0; seg < 4; seg++ {
		for k := 0; k < 3; k++ {
			occ++
			must(t, r.ActivityComplete(id, "A", occ, EffectInvoke,
				map[string]string{"id": fmt.Sprintf("s%dk%d", seg, k)}))
		}
		must(t, r.Checkpoint())
	}

	pollIDs(t, tl, got)
	for seg := 0; seg < 4; seg++ {
		for k := 0; k < 3; k++ {
			key := fmt.Sprintf("s%dk%d", seg, k)
			if got[key] != 1 {
				t.Fatalf("record %s delivered %d times, want 1 (got=%v)", key, got[key], got)
			}
		}
	}
	if tl.SkippedSegments() != 0 {
		t.Fatalf("skipped = %d with retention covering the gap, want 0", tl.SkippedSegments())
	}
}

// TestTailerDetectsSkippedSegment: when the poll gap spans more than
// one whole rotation, the middle segment is renamed away before the
// tailer can open it. The loss is detected via the rotation-generation
// stamp on segment-head checkpoints.
func TestTailerDetectsSkippedSegment(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetCheckpointEvery(0)
	r.SetRotateAtCheckpoint(true)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", nil))
	must(t, r.Checkpoint()) // rotation 1

	tl := NewTailer(dir)
	defer tl.Close()
	if _, err := tl.Poll(func(*Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if tl.SkippedSegments() != 0 {
		t.Fatalf("skipped = %d before any gap", tl.SkippedSegments())
	}

	// Two rotations with no poll in between: the tailer's open fd pins
	// rotation-1's segment; rotation-2's segment is replaced by
	// rotation-3's before the next poll can open it.
	must(t, r.ActivityComplete(id, "A", 1, EffectInvoke, nil))
	must(t, r.Checkpoint()) // rotation 2 (this segment will vanish)
	must(t, r.ActivityComplete(id, "A", 2, EffectInvoke, nil))
	must(t, r.Checkpoint()) // rotation 3

	if _, err := tl.Poll(func(*Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if tl.SkippedSegments() != 1 {
		t.Fatalf("skipped = %d, want 1 (rotation-2 segment was renamed away unseen)", tl.SkippedSegments())
	}
}

// TestTailerFirstAttachDrainsRetainedHistory: a tailer created AFTER
// rotations have already happened must start from the earliest retained
// archive, not the live segment — a consumer bootstrapped mid-stream
// (a sqldb replica with a dump floor) needs the full retained history
// and deduplicates below its floor itself.
func TestTailerFirstAttachDrainsRetainedHistory(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetCheckpointEvery(0)
	r.SetRotateAtCheckpoint(true)
	r.SetRotateKeep(8)
	id := r.AllocateID()
	occ := 0
	for seg := 0; seg < 3; seg++ {
		for k := 0; k < 2; k++ {
			occ++
			must(t, r.ActivityComplete(id, "A", occ, EffectInvoke,
				map[string]string{"id": fmt.Sprintf("s%dk%d", seg, k)}))
		}
		must(t, r.Checkpoint())
	}

	// Attach only now: generations 0..2 exist solely as archives.
	tl := NewTailer(dir)
	defer tl.Close()
	got := map[string]int{}
	pollIDs(t, tl, got)
	for seg := 0; seg < 3; seg++ {
		for k := 0; k < 2; k++ {
			key := fmt.Sprintf("s%dk%d", seg, k)
			if got[key] != 1 {
				t.Fatalf("record %s delivered %d times, want 1 (got=%v)", key, got[key], got)
			}
		}
	}
	if tl.SkippedSegments() != 0 {
		t.Fatalf("skipped = %d on first attach with full retention, want 0", tl.SkippedSegments())
	}
}

// TestTailerTwoRotationsBetweenPolls: the drain-before-switch path with
// TWO whole rotations between polls. The tailer's open descriptor pins
// generation g while records keep landing in it; by the next poll, g
// and g+1 both exist only as archives. The single poll must finish
// draining the pinned inode, then chase BOTH archived generations in
// order before adopting the live segment — strict record order, exactly
// once, and no SkippedSegments false positive while retention covers
// the gap.
func TestTailerTwoRotationsBetweenPolls(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetCheckpointEvery(0)
	r.SetRotateAtCheckpoint(true)
	r.SetRotateKeep(8)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", map[string]string{"id": "seed"}))

	tl := NewTailer(dir)
	defer tl.Close()
	var order []string
	poll := func() {
		t.Helper()
		if _, err := tl.Poll(func(rec *Record) error {
			if rec.Kind != KindCheckpoint {
				order = append(order, rec.Data["id"])
			}
			return nil
		}); err != nil {
			t.Fatalf("poll: %v", err)
		}
	}
	poll() // pins generation 0's inode

	// Records the pinned descriptor has not drained yet, then two
	// back-to-back rotations, then live-segment records.
	want := []string{"seed"}
	occ := 0
	appendID := func(idStr string) {
		occ++
		must(t, r.ActivityComplete(id, "A", occ, EffectInvoke, map[string]string{"id": idStr}))
		want = append(want, idStr)
	}
	appendID("g0-a")
	appendID("g0-b")
	must(t, r.Checkpoint()) // rotation 1: generation 0 archived
	appendID("g1-a")
	appendID("g1-b")
	must(t, r.Checkpoint()) // rotation 2: generation 1 archived
	appendID("live-a")
	appendID("live-b")

	poll()
	if len(order) != len(want) {
		t.Fatalf("delivered %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("record %d = %q, want %q (full order %v)", i, order[i], want[i], order)
		}
	}
	if tl.SkippedSegments() != 0 {
		t.Fatalf("skipped = %d with retention covering both generations, want 0", tl.SkippedSegments())
	}
	if tl.Segment() != 2 {
		t.Fatalf("tailer segment = %d after chasing two rotations, want 2", tl.Segment())
	}
}
