package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"wfsql/internal/obsv"
)

// ErrFenced is returned (wrapped) by Append when the recorder's append
// guard refuses the write: the fencing lease's epoch has advanced past
// this writer's, meaning a standby has taken over. A fenced writer must
// stop — its journal is no longer authoritative — and the error is
// deliberately non-temporary so retry policies classify it permanent.
var ErrFenced = errors.New("journal: writer fenced (lease epoch advanced)")

// IsFenced reports whether err is (or wraps) a fencing refusal.
func IsFenced(err error) bool { return errors.Is(err, ErrFenced) }

// AppendGuard vets every record before it is written. It runs under
// the recorder mutex, so a guard that checks a fencing lease gives the
// classic lease guarantee: no record is written after the guard
// observes a newer epoch. Return an error wrapping ErrFenced to fence
// the writer; any other error also refuses the append.
type AppendGuard func(rec *Record) error

// CrashPoint identifies where in the journal-then-effect protocol a
// simulated crash fires. The three points bracket the two writes an
// effectful activity performs (the journal append and the effect
// itself), covering every interleaving a real crash can produce:
//
//	CrashBeforeJournal            -- neither journal nor effect happened;
//	                                 recovery re-runs the activity.
//	CrashAfterJournalBeforeEffect -- activity-start journaled, effect not
//	                                 performed; recovery sees no
//	                                 activity-complete and re-runs it.
//	CrashAfterEffect              -- effect performed and its result
//	                                 journaled (activity-complete);
//	                                 recovery replays the memo and must
//	                                 NOT repeat the side effect.
type CrashPoint int

// Crash points.
const (
	CrashNone CrashPoint = iota
	CrashBeforeJournal
	CrashAfterJournalBeforeEffect
	CrashAfterEffect
)

// String names the crash point.
func (p CrashPoint) String() string {
	switch p {
	case CrashNone:
		return "none"
	case CrashBeforeJournal:
		return "before-journal"
	case CrashAfterJournalBeforeEffect:
		return "after-journal-before-effect"
	case CrashAfterEffect:
		return "after-effect"
	}
	return "unknown"
}

// CrashError is the simulated process death. It deliberately reports
// itself as non-temporary so resilience retry loops classify it as
// permanent and stop immediately: a crashed process does not retry,
// it dies and is later recovered.
type CrashError struct {
	Instance int64
	Activity string
	Point    CrashPoint
}

// Error implements error.
func (e *CrashError) Error() string {
	return fmt.Sprintf("journal: simulated crash at %s (instance %d, activity %s)", e.Point, e.Instance, e.Activity)
}

// Temporary reports false: crashes are not retryable in-process.
func (e *CrashError) Temporary() bool { return false }

// IsCrash reports whether err is (or wraps) a simulated crash.
func IsCrash(err error) bool {
	var ce *CrashError
	return errors.As(err, &ce)
}

// AsCrash extracts the crash error if present.
func AsCrash(err error) (*CrashError, bool) {
	var ce *CrashError
	if errors.As(err, &ce) {
		return ce, true
	}
	return nil, false
}

// CrashInjector decides whether a given (instance, activity,
// crash-point) check should crash. Installed by the chaos layer.
type CrashInjector func(instance int64, activity string, point CrashPoint) bool

// WALName is the journal file name inside the journal directory.
const WALName = "wal.log"

// DefaultCheckpointEvery is how many appended records trigger an
// automatic checkpoint snapshot.
const DefaultCheckpointEvery = 512

// walFile is the slice of *os.File the recorder needs after Open. Tests
// inject a fake to assert the sync protocol without touching a disk.
type walFile interface {
	io.Writer
	Sync() error
	Close() error
}

// SyncMode selects when the WAL is fsynced.
type SyncMode int

// Sync modes.
const (
	// SyncCritical (the default) fsyncs after commit-critical records:
	// txn-commit, activity-complete memos, checkpoints, dead letters and
	// instance completion. These are the records whose loss breaks
	// exactly-once replay — a crash after "journal-then-effect" must not
	// lose the journal half while the effect's side effect survives.
	SyncCritical SyncMode = iota
	// SyncAlways fsyncs after every append.
	SyncAlways
	// SyncNever leaves flushing to Close/Sync (tests, throwaway runs).
	SyncNever
)

// String names the mode.
func (m SyncMode) String() string {
	switch m {
	case SyncCritical:
		return "critical"
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	}
	return "unknown"
}

// SyncPolicy bundles the mode with a batching knob: with BatchSize N>1,
// commit-critical appends are coalesced and the fsync is issued once N
// unsynced critical records have accumulated (Sync/Close still force a
// flush). BatchSize<=1 syncs each critical record immediately.
type SyncPolicy struct {
	Mode      SyncMode
	BatchSize int
}

// criticalKind reports whether losing a record of this kind can break
// exactly-once replay or drop an externally visible promise.
func criticalKind(k Kind) bool {
	switch k {
	case KindTxnCommit, KindActivityComplete, KindCheckpoint,
		KindInstanceComplete, KindDeadLetter:
		return true
	}
	return false
}

// Recorder is the durable journal: an open append-only WAL plus the
// materialized state. It is safe for concurrent use by multiple
// instance goroutines: the worker-pool scheduler interleaves appends
// from all in-flight instances into one WAL, and replay groups them
// back per instance id, so a journal written under parallel execution
// recovers exactly like a serial one.
type Recorder struct {
	mu              sync.Mutex
	f               walFile
	path            string
	state           *State
	appended        int // records since last checkpoint
	checkpointEvery int
	injector        CrashInjector
	closed          bool
	sync            SyncPolicy
	epoch           int64       // fencing epoch stamped on every record
	guard           AppendGuard // pre-write fence check (nil = none)
	fencedWrites    int64       // appends refused by the guard
	pendingSync     int   // unsynced commit-critical records
	syncCount       int64 // fsyncs issued (tests, metrics)
	obs             *obsv.Observability

	// rotate, when set, makes every checkpoint rewrite the WAL as a
	// fresh segment that starts at the checkpoint (SetRotateAtCheckpoint);
	// rotations counts completed swaps. keepSegments > 0 additionally
	// archives each retiring segment (SetRotateKeep) so lagging tailers
	// can drain it after the rename.
	rotate       bool
	rotations    int64
	keepSegments int
	keepBytes    int64

	// TornTail reports whether Open found (and truncated) a torn
	// tail, and why. For diagnostics and tests.
	TornTail       bool
	TornTailReason string

	// RecoverDuration and RecoveredRecords describe the Open-time scan
	// (replay cost), exported into the metrics registry when
	// observability is attached.
	RecoverDuration  time.Duration
	RecoveredRecords int
}

// Open opens (creating if needed) the journal in dir, scans it,
// truncates any torn tail, and materializes the recovered state.
func Open(dir string) (*Recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: open dir: %w", err)
	}
	path := filepath.Join(dir, WALName)
	// A crash during a WAL rotation can leave a stale rotation segment
	// (written, maybe synced, never renamed). The un-renamed segment was
	// never published — the old WAL is still authoritative — so it is
	// dead weight: remove it before opening. A crash after the rename
	// needs nothing special; the renamed segment IS the WAL.
	os.Remove(path + rotateSuffix)
	// Retained rotation archives (SetRotateKeep) only serve tailers of
	// the previous incarnation; a tailer attaching after a restart
	// bootstraps from the live WAL's checkpoint instead.
	if stale, _ := filepath.Glob(path + archiveSuffix + "*"); len(stale) > 0 {
		for _, s := range stale {
			os.Remove(s)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open wal: %w", err)
	}
	scanStart := time.Now()
	res, err := Scan(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if res.Torn {
		// Drop the torn tail so new appends start on a frame
		// boundary; everything up to ValidLen is intact.
		if err := f.Truncate(res.ValidLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(res.ValidLen, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seek: %w", err)
	}
	r := &Recorder{
		f:               f,
		path:            path,
		state:           Replay(res.Records),
		checkpointEvery: DefaultCheckpointEvery,
		sync:            SyncPolicy{Mode: SyncCritical, BatchSize: 1},
		TornTail:        res.Torn,
		TornTailReason:  res.TornReason,
	}
	r.RecoverDuration = time.Since(scanStart)
	r.RecoveredRecords = len(res.Records)
	return r, nil
}

// SetSyncPolicy tunes when appends are fsynced. The default is
// SyncCritical with BatchSize 1 (every commit-critical record is synced
// before Append returns).
func (r *Recorder) SetSyncPolicy(p SyncPolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p.BatchSize < 1 {
		p.BatchSize = 1
	}
	r.sync = p
}

// SyncPolicy returns the current sync policy, so a degradation
// controller (brown-out) can save it before relaxing it and restore it
// when pressure subsides.
func (r *Recorder) SyncPolicy() SyncPolicy {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sync
}

// SetObservability attaches a tracing/metrics bundle; journal appends,
// checkpoints, fsyncs and the Open-time recovery scan are counted and
// timed into its registry. Nil detaches.
func (r *Recorder) SetObservability(o *obsv.Observability) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = o
	if o != nil {
		o.M().Counter("journal.recover.records").Add(int64(r.RecoveredRecords))
		o.M().Histogram("journal.recover_ms").ObserveDuration(r.RecoverDuration)
	}
}

// SyncCount reports how many fsyncs the recorder has issued (excluding
// the one in Close). For tests and metrics.
func (r *Recorder) SyncCount() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.syncCount
}

// SetCheckpointEvery tunes the automatic checkpoint cadence (records
// between snapshots). Zero disables automatic checkpoints.
func (r *Recorder) SetCheckpointEvery(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkpointEvery = n
}

// SetCrashInjector installs a chaos crash injector. Pass nil to
// disable.
func (r *Recorder) SetCrashInjector(fn CrashInjector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.injector = fn
}

// ShouldCrash consults the injector for a crash at the given point,
// returning the CrashError to propagate, or nil.
func (r *Recorder) ShouldCrash(instance int64, activity string, point CrashPoint) *CrashError {
	r.mu.Lock()
	fn := r.injector
	r.mu.Unlock()
	if fn != nil && fn(instance, activity, point) {
		return &CrashError{Instance: instance, Activity: activity, Point: point}
	}
	return nil
}

// Path returns the WAL file path.
func (r *Recorder) Path() string { return r.path }

// SetEpoch sets the fencing epoch stamped on every subsequently
// appended record. A primary sets it after acquiring the lease; a
// promoted standby sets the lease's advanced epoch, so the record
// stream carries the takeover boundary.
func (r *Recorder) SetEpoch(e int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch = e
}

// Epoch returns the current fencing epoch.
func (r *Recorder) Epoch() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// SetAppendGuard installs (nil removes) the pre-write fence check run
// under the recorder mutex at the top of every Append and Checkpoint.
// The guard sees the record about to be written (already stamped with
// the recorder's epoch).
func (r *Recorder) SetAppendGuard(g AppendGuard) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.guard = g
}

// Observability returns the attached tracing/metrics bundle. The
// result is nil-safe to use (obsv's accessors tolerate a nil bundle),
// so callers recording metrics alongside the recorder need not check.
func (r *Recorder) Observability() *obsv.Observability {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.obs
}

// FencedWrites reports how many appends the guard has refused with
// ErrFenced (metrics, tests).
func (r *Recorder) FencedWrites() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fencedWrites
}

// Append writes one record durably and folds it into the state.
// Commit-critical records (txn-commit, activity-complete memos,
// checkpoints, dead letters, instance completion) are fsynced according
// to the recorder's SyncPolicy before Append returns, closing the
// crash window in which the journal half of "journal-then-effect" is
// lost while the effect's side effect survives.
func (r *Recorder) Append(rec *Record) error {
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	start := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("journal: append on closed recorder")
	}
	// Epoch stamping and the fence check happen under the same mutex
	// that serializes the write itself: once a guard observes a newer
	// lease epoch, no further record leaves this recorder.
	rec.Epoch = r.epoch
	if r.guard != nil {
		if err := r.guard(rec); err != nil {
			if IsFenced(err) {
				r.fencedWrites++
				r.obs.M().Counter("replica.fenced_writes").Inc()
			}
			return err
		}
	}
	buf, err := Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := r.f.Write(buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	r.state.apply(rec)
	r.appended++
	if err := r.maybeSyncLocked(rec.Kind); err != nil {
		return err
	}
	r.obs.M().Counter("journal.appends").Inc()
	r.obs.M().Counter("journal.appends." + string(rec.Kind)).Inc()
	r.obs.M().Histogram("journal.append_ms").ObserveDuration(time.Since(start))
	if r.checkpointEvery > 0 && r.appended >= r.checkpointEvery && rec.Kind != KindCheckpoint {
		return r.checkpointLocked()
	}
	return nil
}

// maybeSyncLocked applies the sync policy after a record of kind k was
// written. Caller holds r.mu.
func (r *Recorder) maybeSyncLocked(k Kind) error {
	switch r.sync.Mode {
	case SyncNever:
		return nil
	case SyncAlways:
		r.pendingSync++
	case SyncCritical:
		if !criticalKind(k) {
			return nil
		}
		r.pendingSync++
	}
	batch := r.sync.BatchSize
	if batch < 1 {
		batch = 1
	}
	if r.pendingSync < batch {
		return nil
	}
	return r.syncLocked()
}

// syncLocked issues the fsync and resets the pending-batch counter.
// Caller holds r.mu.
func (r *Recorder) syncLocked() error {
	start := time.Now()
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	r.pendingSync = 0
	r.syncCount++
	r.obs.M().Counter("journal.syncs").Inc()
	r.obs.M().Histogram("journal.sync_ms").ObserveDuration(time.Since(start))
	return nil
}

// rotateSuffix names the in-progress rotation segment next to the WAL.
const rotateSuffix = ".new"

// archiveSuffix prefixes retained rotation archives: the segment of
// rotation generation g is archived as WALName + ".seg" + g.
const archiveSuffix = ".seg"

// archivePath names the retained archive of the segment with rotation
// generation gen (the initial, pre-rotation segment is generation 0).
func archivePath(walPath string, gen int64) string {
	return walPath + archiveSuffix + strconv.FormatInt(gen, 10)
}

// SetRotateKeep retains up to keep retiring segments as read-only
// archives next to the WAL (wal.log.seg<gen>). Rotation renames the new
// segment over the WAL path, so a tailer that lags more than one whole
// rotation between polls would otherwise find the intermediate segment
// gone; with retention it drains the archives in generation order and
// delivery stays exactly-once. Zero (the default) disables retention —
// lagging tailers then detect the loss via SkippedSegments. Archives
// are hard links created before the rename commit point, pruned as
// newer rotations push them past keep, and swept by Open.
func (r *Recorder) SetRotateKeep(keep int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keepSegments = keep
}

// SetRotateKeepBytes additionally caps the total size of retained
// rotation archives. The count bound (SetRotateKeep) limits how many
// generations a tailer may lag; this bounds the disk they occupy — a
// slow tailer behind a write-heavy primary otherwise turns retention
// into an unbounded disk leak. Eviction is strictly oldest-generation
// first and may outrun the count bound, including evicting the newest
// archive when a single segment exceeds the cap; a tailer that then
// lags past an evicted generation detects the loss via SkippedSegments,
// exactly as with the count bound. Zero (the default) disables the byte
// cap. The current retained total is exported as the
// journal.archive_bytes gauge.
func (r *Recorder) SetRotateKeepBytes(max int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keepBytes = max
}

// pruneArchivesLocked enforces both archive retention bounds — count
// (keepSegments) and bytes (keepBytes) — evicting oldest generations
// first, and refreshes the journal.archive_bytes gauge. Caller holds
// r.mu.
func (r *Recorder) pruneArchivesLocked() {
	matches, err := filepath.Glob(r.path + archiveSuffix + "*")
	if err != nil {
		return
	}
	type arch struct {
		gen  int64
		size int64
		path string
	}
	var archives []arch
	var total int64
	for _, p := range matches {
		gen, err := strconv.ParseInt(strings.TrimPrefix(p, r.path+archiveSuffix), 10, 64)
		if err != nil {
			continue
		}
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		archives = append(archives, arch{gen: gen, size: fi.Size(), path: p})
		total += fi.Size()
	}
	sort.Slice(archives, func(i, j int) bool { return archives[i].gen < archives[j].gen })
	evict := func() {
		os.Remove(archives[0].path)
		total -= archives[0].size
		archives = archives[1:]
	}
	for len(archives) > r.keepSegments {
		evict()
	}
	if r.keepBytes > 0 {
		for len(archives) > 0 && total > r.keepBytes {
			evict()
		}
	}
	r.obs.M().Gauge("journal.archive_bytes").SetInt(total)
}

// SetRotateAtCheckpoint enables WAL rotation: every checkpoint writes a
// fresh segment containing only the snapshot, fsyncs it, and atomically
// renames it over the WAL — so the journal's size is bounded by one
// checkpoint plus the records since, instead of growing without bound.
// The crash protocol is the classic atomic-publication one: a crash
// before the rename leaves the old WAL authoritative (Open discards the
// stale segment); a crash after the rename leaves the new WAL, whose
// checkpoint reproduces exactly the state the old WAL replayed to.
// Rotation requires a real file; recorders on injected WAL fakes keep
// the append-only checkpoint behavior.
func (r *Recorder) SetRotateAtCheckpoint(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rotate = on
}

// Rotations reports how many WAL rotations have completed.
func (r *Recorder) Rotations() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rotations
}

// rotateLocked swaps the WAL for a fresh segment holding only buf (a
// marshalled checkpoint record). Returns handled=false when the
// recorder's WAL is not a real file (rotation unsupported; caller falls
// back to appending the checkpoint). Caller holds r.mu.
func (r *Recorder) rotateLocked(buf []byte) (handled bool, err error) {
	old, ok := r.f.(*os.File)
	if !ok {
		return false, nil
	}
	newPath := r.path + rotateSuffix
	nf, err := os.OpenFile(newPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return true, fmt.Errorf("journal: rotate: create segment: %w", err)
	}
	abort := func(e error) (bool, error) {
		nf.Close()
		os.Remove(newPath)
		return true, e
	}
	if _, err := nf.Write(buf); err != nil {
		return abort(fmt.Errorf("journal: rotate: write checkpoint: %w", err))
	}
	// The segment must be durable BEFORE it is published: rename is the
	// commit point of the rotation, and after it the old records are
	// gone — an unsynced checkpoint would make a crash lose everything.
	if err := nf.Sync(); err != nil {
		return abort(fmt.Errorf("journal: rotate: sync segment: %w", err))
	}
	if r.keepSegments > 0 {
		// Archive the retiring segment (generation r.rotations) by hard
		// link BEFORE the rename, so the moment the new segment is
		// visible at the WAL path the old one is already reachable at
		// its archive name — a tailer that observes the swap never races
		// the archive into existence. A crash here leaves a harmless
		// stale archive that the next Open sweeps.
		arch := archivePath(r.path, r.rotations)
		os.Remove(arch)
		if err := os.Link(r.path, arch); err != nil {
			return abort(fmt.Errorf("journal: rotate: archive segment: %w", err))
		}
		r.pruneArchivesLocked()
	}
	if err := os.Rename(newPath, r.path); err != nil {
		return abort(fmt.Errorf("journal: rotate: publish: %w", err))
	}
	// Published: adopt the new segment; the old handle's contents are
	// superseded.
	old.Close()
	r.f = nf
	r.pendingSync = 0
	r.syncCount++
	r.rotations++
	r.obs.M().Counter("journal.syncs").Inc()
	r.obs.M().Counter("journal.rotations").Inc()
	return true, nil
}

// Checkpoint appends a full state snapshot record, bounding the replay
// work of the next Open.
func (r *Recorder) Checkpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("journal: checkpoint on closed recorder")
	}
	return r.checkpointLocked()
}

func (r *Recorder) checkpointLocked() error {
	start := time.Now()
	rec := &Record{Kind: KindCheckpoint, Checkpoint: r.state.Clone(), Time: time.Now().UTC(), Epoch: r.epoch}
	if r.rotate {
		// A rotation-born checkpoint heads a fresh segment. Stamp it
		// with the segment's rotation generation (Occurrence is unused
		// on checkpoints) so a tailer can detect that it missed an
		// entire intermediate segment — the one staleness failure the
		// drain-before-switch protocol cannot absorb (see Tailer).
		rec.Occurrence = int(r.rotations) + 1
	}
	if r.guard != nil {
		if err := r.guard(rec); err != nil {
			if IsFenced(err) {
				r.fencedWrites++
				r.obs.M().Counter("replica.fenced_writes").Inc()
			}
			return err
		}
	}
	buf, err := Marshal(rec)
	if err != nil {
		return err
	}
	if r.rotate {
		handled, err := r.rotateLocked(buf)
		if err != nil {
			return err
		}
		if handled {
			r.appended = 0
			r.obs.M().Counter("journal.checkpoints").Inc()
			r.obs.M().Histogram("journal.checkpoint_ms").ObserveDuration(time.Since(start))
			return nil
		}
		// Not a real file: fall through to the append-only checkpoint.
	}
	if _, err := r.f.Write(buf); err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	r.appended = 0
	if err := r.maybeSyncLocked(KindCheckpoint); err != nil {
		return err
	}
	r.obs.M().Counter("journal.checkpoints").Inc()
	r.obs.M().Histogram("journal.checkpoint_ms").ObserveDuration(time.Since(start))
	return nil
}

// Sync flushes the WAL to stable storage, regardless of the batch
// policy's pending count.
func (r *Recorder) Sync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	return r.syncLocked()
}

// Close syncs and closes the WAL.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if err := r.f.Sync(); err != nil {
		r.f.Close()
		return err
	}
	return r.f.Close()
}

// AllocateID hands out the next instance ID, durably advancing past
// any ID seen in the recovered journal.
func (r *Recorder) AllocateID() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.state.NextID
	if id == 0 {
		id = 1
	}
	r.state.NextID = id + 1
	return id
}

// State returns a deep copy of the materialized state.
func (r *Recorder) State() *State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state.Clone()
}

// InFlight returns the journals of instances needing recovery.
func (r *Recorder) InFlight() []*InstanceJournal {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state.InFlight()
}

// DeadLetters returns the persisted dead-letter records.
func (r *Recorder) DeadLetters() []DeadLetterRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]DeadLetterRecord(nil), r.state.DeadLetters...)
}

// --- typed append helpers -------------------------------------------------

// Deploy journals a process deployment (audit trail).
func (r *Recorder) Deploy(process string) error {
	return r.Append(&Record{Kind: KindDeploy, Process: process})
}

// InstanceCreated journals instance birth with its input message and
// product transaction-mode label.
func (r *Recorder) InstanceCreated(id int64, process, mode string, input map[string]string) error {
	return r.Append(&Record{Kind: KindInstanceCreated, Instance: id, Process: process, EffectKind: mode, Data: input})
}

// ActivityStart journals intent to execute an effectful activity.
func (r *Recorder) ActivityStart(id int64, activity string, occurrence int, effectKind string) error {
	return r.Append(&Record{Kind: KindActivityStart, Instance: id, Activity: activity, Occurrence: occurrence, EffectKind: effectKind})
}

// ActivityComplete journals an effectful activity's memoized result.
func (r *Recorder) ActivityComplete(id int64, activity string, occurrence int, effectKind string, memo map[string]string) error {
	return r.Append(&Record{Kind: KindActivityComplete, Instance: id, Activity: activity, Occurrence: occurrence, EffectKind: effectKind, Data: memo})
}

// VariableWrite journals a variable assignment.
func (r *Recorder) VariableWrite(id int64, name, value string) error {
	return r.Append(&Record{Kind: KindVariableWrite, Instance: id, Data: map[string]string{name: value}})
}

// TxnBegin journals the opening of a product-layer transaction.
func (r *Recorder) TxnBegin(id int64, label string) error {
	return r.Append(&Record{Kind: KindTxnBegin, Instance: id, Activity: label})
}

// TxnCommit journals a successful COMMIT; pending SQL memos become
// durable.
func (r *Recorder) TxnCommit(id int64, label string) error {
	return r.Append(&Record{Kind: KindTxnCommit, Instance: id, Activity: label})
}

// TxnRollback journals a ROLLBACK; pending SQL memos are discarded.
func (r *Recorder) TxnRollback(id int64, label string) error {
	return r.Append(&Record{Kind: KindTxnRollback, Instance: id, Activity: label})
}

// Compensation journals the execution of a compensation handler.
func (r *Recorder) Compensation(id int64, scope string) error {
	return r.Append(&Record{Kind: KindCompensation, Instance: id, Activity: scope})
}

// DeadLetter journals a dead-lettered unit of work.
func (r *Recorder) DeadLetter(id int64, rec DeadLetterRecord) error {
	return r.Append(&Record{Kind: KindDeadLetter, Instance: id, Activity: rec.Activity, Data: map[string]string{
		"seq":      strconv.FormatInt(rec.Seq, 10),
		"time":     rec.Time,
		"activity": rec.Activity,
		"target":   rec.Target,
		"key":      rec.Key,
		"attempts": strconv.Itoa(rec.Attempts),
		"reason":   rec.Reason,
		"last_err": rec.LastErr,
	}})
}

// RequeueDeadLetter journals removal of a dead letter for re-driving.
func (r *Recorder) RequeueDeadLetter(key string) error {
	return r.Append(&Record{Kind: KindDeadLetterRequeue, Data: map[string]string{"key": key}})
}

// SQLEffectRecord is the decoded form of a KindSQLEffect journal
// record: one successfully executed top-level mutating SQL statement,
// in database execution order. Seq is the database's change sequence
// number (dense, strictly increasing); Session identifies the
// originating database session (replicas keep a session map so
// interleaved transactions replay on matching replica sessions); Kind
// is the statement kind ("INSERT", "COMMIT", ...); Params and Named
// carry the bind values, already encoded by sqldb.EncodeValue /
// sqldb.EncodeNamed.
type SQLEffectRecord struct {
	Seq     int64
	Session int64
	Kind    string
	SQL     string
	Params  []string
	Named   []string
}

// SQLEffect journals one CDC record — the change-stream entry a sqldb
// read replica consumes. SQL-effect records are not commit-critical:
// they ride the sync batch, which is exactly the replica staleness
// window the contract documents.
func (r *Recorder) SQLEffect(e SQLEffectRecord) error {
	d := map[string]string{
		"sql":  e.SQL,
		"kind": e.Kind,
		"seq":  strconv.FormatInt(e.Seq, 10),
		"sess": strconv.FormatInt(e.Session, 10),
		"np":   strconv.Itoa(len(e.Params)),
		"nn":   strconv.Itoa(len(e.Named)),
	}
	for i, p := range e.Params {
		d["p"+strconv.Itoa(i)] = p
	}
	for i, n := range e.Named {
		d["n"+strconv.Itoa(i)] = n
	}
	return r.Append(&Record{Kind: KindSQLEffect, EffectKind: EffectSQL, Data: d})
}

// DecodeSQLEffect unpacks a KindSQLEffect record. ok is false when rec
// is not a well-formed SQL-effect record.
func DecodeSQLEffect(rec *Record) (e SQLEffectRecord, ok bool) {
	if rec.Kind != KindSQLEffect || rec.Data == nil {
		return e, false
	}
	sql, okSQL := rec.Data["sql"]
	if !okSQL {
		return e, false
	}
	e.SQL = sql
	e.Kind = rec.Data["kind"]
	fmtSscan(rec.Data["seq"], &e.Seq)
	fmtSscan(rec.Data["sess"], &e.Session)
	var np, nn int
	fmtSscanInt(rec.Data["np"], &np)
	fmtSscanInt(rec.Data["nn"], &nn)
	if np > 0 {
		e.Params = make([]string, np)
		for i := 0; i < np; i++ {
			e.Params[i] = rec.Data["p"+strconv.Itoa(i)]
		}
	}
	if nn > 0 {
		e.Named = make([]string, nn)
		for i := 0; i < nn; i++ {
			e.Named[i] = rec.Data["n"+strconv.Itoa(i)]
		}
	}
	return e, true
}

// InstanceComplete journals instance termination. fault is empty for
// successful completion.
func (r *Recorder) InstanceComplete(id int64, fault string) error {
	data := map[string]string(nil)
	if fault != "" {
		data = map[string]string{"fault": fault}
	}
	return r.Append(&Record{Kind: KindInstanceComplete, Instance: id, Data: data})
}
