package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	id := r.AllocateID()
	if id != 1 {
		t.Fatalf("first id = %d, want 1", id)
	}
	if err := r.InstanceCreated(id, "Figure4", "long-running", map[string]string{"orderId": "7"}); err != nil {
		t.Fatal(err)
	}
	if err := r.ActivityStart(id, "SQL1", 1, EffectSQL); err != nil {
		t.Fatal(err)
	}
	if err := r.ActivityComplete(id, "SQL1", 1, EffectSQL, map[string]string{"table": "SR_ItemList_i1"}); err != nil {
		t.Fatal(err)
	}
	if err := r.VariableWrite(id, "s:Status", "open"); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: state must be rebuilt from disk.
	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	if r2.TornTail {
		t.Fatalf("unexpected torn tail: %s", r2.TornTailReason)
	}
	inflight := r2.InFlight()
	if len(inflight) != 1 {
		t.Fatalf("inflight = %d, want 1", len(inflight))
	}
	ij := inflight[0]
	if ij.ID != id || ij.Process != "Figure4" || ij.Mode != "long-running" {
		t.Fatalf("bad instance journal: %+v", ij)
	}
	if ij.Input["orderId"] != "7" {
		t.Fatalf("input lost: %+v", ij.Input)
	}
	if got := len(ij.Memos["SQL1"]); got != 1 {
		t.Fatalf("memos = %d, want 1", got)
	}
	if ij.Memos["SQL1"][0].Data["table"] != "SR_ItemList_i1" {
		t.Fatalf("memo data lost: %+v", ij.Memos["SQL1"][0])
	}
	if ij.Vars["s:Status"] != "open" {
		t.Fatalf("variable write lost: %+v", ij.Vars)
	}
	// ID allocation resumes past recovered IDs.
	if next := r2.AllocateID(); next != 2 {
		t.Fatalf("next id = %d, want 2", next)
	}
}

func TestInstanceCompleteRemovesFromInFlight(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", nil))
	must(t, r.InstanceComplete(id, ""))
	must(t, r.Close())

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if n := len(r2.InFlight()); n != 0 {
		t.Fatalf("inflight = %d, want 0", n)
	}
	st := r2.State()
	if len(st.Completed) != 1 || st.Completed[0] != id {
		t.Fatalf("completed = %v, want [%d]", st.Completed, id)
	}
}

// Pending SQL memos are transaction-scoped: promoted on commit,
// dropped on rollback, dropped when the journal ends mid-transaction.
func TestTransactionScopedMemos(t *testing.T) {
	t.Run("commit promotes", func(t *testing.T) {
		dir := t.TempDir()
		r, _ := Open(dir)
		id := r.AllocateID()
		must(t, r.InstanceCreated(id, "P", "short-running", nil))
		must(t, r.TxnBegin(id, "uow"))
		must(t, r.ActivityComplete(id, "SQL2", 1, EffectSQL, map[string]string{"rows": "1"}))
		must(t, r.TxnCommit(id, "uow"))
		must(t, r.Close())
		r2, _ := Open(dir)
		defer r2.Close()
		ij := r2.InFlight()[0]
		if got := len(ij.Memos["SQL2"]); got != 1 {
			t.Fatalf("committed memos = %d, want 1", got)
		}
	})
	t.Run("rollback drops", func(t *testing.T) {
		dir := t.TempDir()
		r, _ := Open(dir)
		id := r.AllocateID()
		must(t, r.InstanceCreated(id, "P", "short-running", nil))
		must(t, r.TxnBegin(id, "uow"))
		must(t, r.ActivityComplete(id, "SQL2", 1, EffectSQL, map[string]string{"rows": "1"}))
		must(t, r.TxnRollback(id, "uow"))
		must(t, r.Close())
		r2, _ := Open(dir)
		defer r2.Close()
		ij := r2.InFlight()[0]
		if got := len(ij.Memos["SQL2"]); got != 0 {
			t.Fatalf("memos after rollback = %d, want 0", got)
		}
	})
	t.Run("crash with open txn drops", func(t *testing.T) {
		dir := t.TempDir()
		r, _ := Open(dir)
		id := r.AllocateID()
		must(t, r.InstanceCreated(id, "P", "short-running", nil))
		must(t, r.TxnBegin(id, "uow"))
		must(t, r.ActivityComplete(id, "SQL2", 1, EffectSQL, map[string]string{"rows": "1"}))
		// Invoke memos are NOT transaction-scoped: external effects
		// survive the database rollback.
		must(t, r.ActivityComplete(id, "InvokeSupplier", 1, EffectInvoke, map[string]string{"out:conf": "C1"}))
		must(t, r.Close()) // no commit journaled: in-doubt
		r2, _ := Open(dir)
		defer r2.Close()
		ij := r2.InFlight()[0]
		if got := len(ij.Memos["SQL2"]); got != 0 {
			t.Fatalf("SQL memos after in-doubt txn = %d, want 0", got)
		}
		if got := len(ij.Memos["InvokeSupplier"]); got != 1 {
			t.Fatalf("invoke memos = %d, want 1 (external effects are durable)", got)
		}
	})
}

func TestCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCheckpointEvery(0) // manual
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", nil))
	for i := 1; i <= 5; i++ {
		must(t, r.ActivityComplete(id, "Invoke", i, EffectInvoke, map[string]string{"n": "x"}))
	}
	must(t, r.Checkpoint())
	must(t, r.ActivityComplete(id, "Invoke", 6, EffectInvoke, map[string]string{"n": "y"}))
	must(t, r.Close())

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	ij := r2.InFlight()[0]
	if got := len(ij.Memos["Invoke"]); got != 6 {
		t.Fatalf("memos after checkpoint+tail = %d, want 6", got)
	}
	// AllocateID continuity survives the checkpoint.
	if next := r2.AllocateID(); next != 2 {
		t.Fatalf("next id = %d, want 2", next)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCheckpointEvery(3)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", nil))
	for i := 1; i <= 7; i++ {
		must(t, r.ActivityComplete(id, "A", i, EffectInvoke, nil))
	}
	must(t, r.Close())
	// Count checkpoint records on disk.
	f, err := os.Open(filepath.Join(dir, WALName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := Scan(f)
	if err != nil {
		t.Fatal(err)
	}
	cps := 0
	for _, rec := range res.Records {
		if rec.Kind == KindCheckpoint {
			cps++
		}
	}
	if cps == 0 {
		t.Fatal("no automatic checkpoint written")
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.InFlight()[0].MemoCount(); got != 7 {
		t.Fatalf("memos = %d, want 7", got)
	}
}

// Torn-write handling: a partial or corrupt final record must not
// fail recovery or replay garbage -- the scan stops at the last valid
// checksum and Open truncates the tail.
func TestTornWriteRecovery(t *testing.T) {
	build := func(t *testing.T) (string, int64) {
		dir := t.TempDir()
		r, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		id := r.AllocateID()
		must(t, r.InstanceCreated(id, "P", "", nil))
		must(t, r.ActivityComplete(id, "A", 1, EffectInvoke, map[string]string{"ok": "1"}))
		must(t, r.Close())
		fi, err := os.Stat(filepath.Join(dir, WALName))
		if err != nil {
			t.Fatal(err)
		}
		return dir, fi.Size()
	}

	check := func(t *testing.T, dir string, wantValid int64, wantReason string) {
		r, err := Open(dir)
		if err != nil {
			t.Fatalf("open after corruption: %v", err)
		}
		defer r.Close()
		if !r.TornTail {
			t.Fatal("torn tail not detected")
		}
		if wantReason != "" && r.TornTailReason == "" {
			t.Fatal("missing torn-tail reason")
		}
		// The two intact records must have survived.
		ij := r.InFlight()
		if len(ij) != 1 || len(ij[0].Memos["A"]) != 1 {
			t.Fatalf("valid prefix lost: %+v", ij)
		}
		// The file must have been truncated to the valid prefix so
		// appends resume on a frame boundary.
		fi, err := os.Stat(filepath.Join(dir, WALName))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != wantValid {
			t.Fatalf("file size after truncate = %d, want %d", fi.Size(), wantValid)
		}
		// And appending + reopening must work cleanly.
		must(t, r.ActivityComplete(1, "A", 2, EffectInvoke, nil))
		must(t, r.Close())
		r2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer r2.Close()
		if r2.TornTail {
			t.Fatalf("tail still torn after repair: %s", r2.TornTailReason)
		}
		if got := len(r2.InFlight()[0].Memos["A"]); got != 2 {
			t.Fatalf("memos after repair+append = %d, want 2", got)
		}
	}

	t.Run("truncated mid-payload", func(t *testing.T) {
		dir, size := build(t)
		path := filepath.Join(dir, WALName)
		// Append a full record, then chop its payload in half.
		r, _ := Open(dir)
		must(t, r.ActivityComplete(1, "B", 1, EffectSQL, map[string]string{"rows": "3"}))
		must(t, r.Close())
		fi, _ := os.Stat(path)
		cut := size + (fi.Size()-size)/2
		if cut <= size+frameHeaderLen {
			cut = size + frameHeaderLen + 1
		}
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}
		check(t, dir, size, "partial payload")
	})

	t.Run("truncated mid-header", func(t *testing.T) {
		dir, size := build(t)
		path := filepath.Join(dir, WALName)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x05, 0x00, 0x00}); err != nil { // 3 of 8 header bytes
			t.Fatal(err)
		}
		f.Close()
		check(t, dir, size, "partial frame header")
	})

	t.Run("corrupt payload bytes", func(t *testing.T) {
		dir, size := build(t)
		path := filepath.Join(dir, WALName)
		r, _ := Open(dir)
		must(t, r.ActivityComplete(1, "B", 1, EffectSQL, map[string]string{"rows": "3"}))
		must(t, r.Close())
		// Flip bits inside the final record's payload: checksum must
		// catch it.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[size+frameHeaderLen+2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, dir, size, "checksum mismatch")
	})

	t.Run("garbage length field", func(t *testing.T) {
		dir, size := build(t)
		path := filepath.Join(dir, WALName)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		var hdr [frameHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], 0xFFFFFFF0) // absurd length
		binary.LittleEndian.PutUint32(hdr[4:8], 0xDEADBEEF)
		if _, err := f.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(bytes.Repeat([]byte{0x42}, 64)); err != nil {
			t.Fatal(err)
		}
		f.Close()
		check(t, dir, size, "implausible record length")
	})
}

func TestDeadLetterJournaling(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	must(t, r.DeadLetter(1, DeadLetterRecord{Seq: 1, Activity: "Invoke1", Target: "OrderFromSupplier", Key: "dl-1", Attempts: 4, Reason: "exhausted", LastErr: "boom"}))
	must(t, r.DeadLetter(1, DeadLetterRecord{Seq: 2, Activity: "Invoke2", Target: "OrderFromSupplier", Key: "dl-2", Attempts: 4, Reason: "exhausted"}))
	must(t, r.RequeueDeadLetter("dl-1"))
	must(t, r.Close())

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	dls := r2.DeadLetters()
	if len(dls) != 1 {
		t.Fatalf("dead letters after requeue = %d, want 1", len(dls))
	}
	if dls[0].Key != "dl-2" || dls[0].Seq != 2 || dls[0].Attempts != 4 {
		t.Fatalf("dead letter round-trip lost fields: %+v", dls[0])
	}
}

func TestCrashErrorClassification(t *testing.T) {
	ce := &CrashError{Instance: 3, Activity: "SQL2", Point: CrashAfterEffect}
	if ce.Temporary() {
		t.Fatal("crash errors must be permanent (not retryable in-process)")
	}
	wrapped := fmt.Errorf("wrap: %w", ce)
	if !IsCrash(wrapped) {
		t.Fatal("IsCrash must see through wrapping")
	}
	got, ok := AsCrash(wrapped)
	if !ok || got.Point != CrashAfterEffect {
		t.Fatalf("AsCrash = %+v, %v", got, ok)
	}
	if IsCrash(nil) || IsCrash(os.ErrNotExist) {
		t.Fatal("false positive IsCrash")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
