package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// walSize returns the WAL's byte length.
func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, WALName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestRotateAtCheckpointBoundsWAL: with rotation on, a checkpoint swaps
// the WAL for a segment holding just the snapshot — the file shrinks
// instead of growing monotonically, and recovery sees identical state.
func TestRotateAtCheckpointBoundsWAL(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCheckpointEvery(0)
	r.SetRotateAtCheckpoint(true)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", nil))
	for i := 1; i <= 50; i++ {
		must(t, r.ActivityComplete(id, "Invoke", i, EffectInvoke, map[string]string{"n": "some memo payload"}))
	}
	before := walSize(t, dir)
	must(t, r.Checkpoint())
	after := walSize(t, dir)
	if after >= before {
		t.Fatalf("rotation did not shrink the WAL: %d -> %d bytes", before, after)
	}
	if r.Rotations() != 1 {
		t.Fatalf("rotations = %d, want 1", r.Rotations())
	}
	// The recorder keeps appending to the new segment.
	must(t, r.ActivityComplete(id, "Invoke", 51, EffectInvoke, map[string]string{"n": "tail"}))
	must(t, r.Close())

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	ij := r2.InFlight()[0]
	if got := len(ij.Memos["Invoke"]); got != 51 {
		t.Fatalf("memos after rotation = %d, want 51", got)
	}
	if next := r2.AllocateID(); next != 2 {
		t.Fatalf("next id = %d, want 2 (id continuity lost in rotation)", next)
	}
}

// TestRotateAutoCheckpoint: automatic checkpoints (every N records)
// rotate too, keeping the WAL near one checkpoint + N records.
func TestRotateAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCheckpointEvery(10)
	r.SetRotateAtCheckpoint(true)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", nil))
	for i := 1; i <= 95; i++ {
		must(t, r.ActivityComplete(id, "A", i, EffectInvoke, nil))
	}
	if r.Rotations() == 0 {
		t.Fatal("automatic checkpoints never rotated")
	}
	must(t, r.Close())
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.InFlight()[0].MemoCount(); got != 95 {
		t.Fatalf("memos = %d, want 95", got)
	}
}

// TestCrashBeforeRotationRename: a crash that leaves a fully written
// rotation segment next to the WAL (sync done, rename not) must not
// confuse recovery — the old WAL is still authoritative and the stale
// segment is discarded.
func TestCrashBeforeRotationRename(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCheckpointEvery(0)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", nil))
	for i := 1; i <= 7; i++ {
		must(t, r.ActivityComplete(id, "A", i, EffectInvoke, nil))
	}
	must(t, r.Close())

	// Simulate the crash window: the rotation segment exists (here: a
	// bogus half-written one) but the rename never happened.
	stale := filepath.Join(dir, WALName+rotateSuffix)
	if err := os.WriteFile(stale, []byte("partial checkpoint bytes"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after crashed rotation: %v", err)
	}
	defer r2.Close()
	if got := r2.InFlight()[0].MemoCount(); got != 7 {
		t.Fatalf("memos = %d, want 7 (old WAL must stay authoritative)", got)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale rotation segment survived Open")
	}
}

// TestCrashAfterRotationRename: a crash immediately after the rename
// (before any further appends) leaves a checkpoint-only WAL; recovery
// reproduces the pre-rotation state exactly.
func TestCrashAfterRotationRename(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCheckpointEvery(0)
	r.SetRotateAtCheckpoint(true)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", nil))
	for i := 1; i <= 7; i++ {
		must(t, r.ActivityComplete(id, "A", i, EffectInvoke, nil))
	}
	must(t, r.Checkpoint())
	// Crash: no Close, no further appends. The WAL on disk is exactly
	// the renamed checkpoint-only segment (rotation synced it before
	// publishing, so no Close is needed for durability).

	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after post-rename crash: %v", err)
	}
	defer r2.Close()
	if got := r2.InFlight()[0].MemoCount(); got != 7 {
		t.Fatalf("memos = %d, want 7 (checkpoint must carry full state)", got)
	}
	if next := r2.AllocateID(); next != 2 {
		t.Fatalf("next id = %d, want 2", next)
	}
}
