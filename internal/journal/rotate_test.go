package journal

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"wfsql/internal/obsv"
)

// walSize returns the WAL's byte length.
func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, WALName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestRotateAtCheckpointBoundsWAL: with rotation on, a checkpoint swaps
// the WAL for a segment holding just the snapshot — the file shrinks
// instead of growing monotonically, and recovery sees identical state.
func TestRotateAtCheckpointBoundsWAL(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCheckpointEvery(0)
	r.SetRotateAtCheckpoint(true)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", nil))
	for i := 1; i <= 50; i++ {
		must(t, r.ActivityComplete(id, "Invoke", i, EffectInvoke, map[string]string{"n": "some memo payload"}))
	}
	before := walSize(t, dir)
	must(t, r.Checkpoint())
	after := walSize(t, dir)
	if after >= before {
		t.Fatalf("rotation did not shrink the WAL: %d -> %d bytes", before, after)
	}
	if r.Rotations() != 1 {
		t.Fatalf("rotations = %d, want 1", r.Rotations())
	}
	// The recorder keeps appending to the new segment.
	must(t, r.ActivityComplete(id, "Invoke", 51, EffectInvoke, map[string]string{"n": "tail"}))
	must(t, r.Close())

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	ij := r2.InFlight()[0]
	if got := len(ij.Memos["Invoke"]); got != 51 {
		t.Fatalf("memos after rotation = %d, want 51", got)
	}
	if next := r2.AllocateID(); next != 2 {
		t.Fatalf("next id = %d, want 2 (id continuity lost in rotation)", next)
	}
}

// TestRotateAutoCheckpoint: automatic checkpoints (every N records)
// rotate too, keeping the WAL near one checkpoint + N records.
func TestRotateAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCheckpointEvery(10)
	r.SetRotateAtCheckpoint(true)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", nil))
	for i := 1; i <= 95; i++ {
		must(t, r.ActivityComplete(id, "A", i, EffectInvoke, nil))
	}
	if r.Rotations() == 0 {
		t.Fatal("automatic checkpoints never rotated")
	}
	must(t, r.Close())
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.InFlight()[0].MemoCount(); got != 95 {
		t.Fatalf("memos = %d, want 95", got)
	}
}

// TestCrashBeforeRotationRename: a crash that leaves a fully written
// rotation segment next to the WAL (sync done, rename not) must not
// confuse recovery — the old WAL is still authoritative and the stale
// segment is discarded.
func TestCrashBeforeRotationRename(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCheckpointEvery(0)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", nil))
	for i := 1; i <= 7; i++ {
		must(t, r.ActivityComplete(id, "A", i, EffectInvoke, nil))
	}
	must(t, r.Close())

	// Simulate the crash window: the rotation segment exists (here: a
	// bogus half-written one) but the rename never happened.
	stale := filepath.Join(dir, WALName+rotateSuffix)
	if err := os.WriteFile(stale, []byte("partial checkpoint bytes"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after crashed rotation: %v", err)
	}
	defer r2.Close()
	if got := r2.InFlight()[0].MemoCount(); got != 7 {
		t.Fatalf("memos = %d, want 7 (old WAL must stay authoritative)", got)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale rotation segment survived Open")
	}
}

// TestCrashAfterRotationRename: a crash immediately after the rename
// (before any further appends) leaves a checkpoint-only WAL; recovery
// reproduces the pre-rotation state exactly.
func TestCrashAfterRotationRename(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCheckpointEvery(0)
	r.SetRotateAtCheckpoint(true)
	id := r.AllocateID()
	must(t, r.InstanceCreated(id, "P", "", nil))
	for i := 1; i <= 7; i++ {
		must(t, r.ActivityComplete(id, "A", i, EffectInvoke, nil))
	}
	must(t, r.Checkpoint())
	// Crash: no Close, no further appends. The WAL on disk is exactly
	// the renamed checkpoint-only segment (rotation synced it before
	// publishing, so no Close is needed for durability).

	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after post-rename crash: %v", err)
	}
	defer r2.Close()
	if got := r2.InFlight()[0].MemoCount(); got != 7 {
		t.Fatalf("memos = %d, want 7 (checkpoint must carry full state)", got)
	}
	if next := r2.AllocateID(); next != 2 {
		t.Fatalf("next id = %d, want 2", next)
	}
}

// archiveSizes stats every retained archive in dir, returning sizes
// keyed by rotation generation.
func archiveSizes(t *testing.T, dir string) map[int64]int64 {
	t.Helper()
	walPath := filepath.Join(dir, WALName)
	matches, err := filepath.Glob(walPath + archiveSuffix + "*")
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int64]int64, len(matches))
	for _, p := range matches {
		gen, err := strconv.ParseInt(strings.TrimPrefix(p, walPath+archiveSuffix), 10, 64)
		if err != nil {
			t.Fatalf("unparseable archive name %s: %v", p, err)
		}
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		out[gen] = fi.Size()
	}
	return out
}

// TestArchiveByteCapEvictsOldestFirst: the byte cap on retained
// rotation archives (SetRotateKeepBytes) evicts strictly from the
// oldest generation up, leaves a contiguous newest suffix within the
// cap, and keeps the journal.archive_bytes gauge equal to the retained
// total. The count bound keeps working independently.
func TestArchiveByteCapEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	obs := obsv.New()
	r.SetObservability(obs)
	r.SetCheckpointEvery(0)
	r.SetRotateAtCheckpoint(true)
	r.SetRotateKeep(10) // count bound out of the way

	id := r.AllocateID()
	payload := strings.Repeat("x", 64)
	occ := 0
	rotateOnce := func() {
		for k := 0; k < 4; k++ {
			occ++
			must(t, r.ActivityComplete(id, "A", occ, EffectInvoke, map[string]string{"id": payload}))
		}
		must(t, r.Checkpoint())
	}

	// Four rotations, no byte cap: archives 0..3 all retained.
	for i := 0; i < 4; i++ {
		rotateOnce()
	}
	sizes := archiveSizes(t, dir)
	if len(sizes) != 4 {
		t.Fatalf("retained %d archives %v, want generations 0..3", len(sizes), sizes)
	}
	var total int64
	for _, s := range sizes {
		total += s
	}
	if got := obs.M().Gauge("journal.archive_bytes").Value(); int64(got) != total {
		t.Fatalf("journal.archive_bytes = %v, stat total = %d", got, total)
	}

	// Cap at ~2.5 segments: the next rotation adds generation 4, and the
	// sweep must evict 0, 1, and 2 — oldest first — leaving {3, 4}.
	cap := sizes[2] + sizes[3] + sizes[3]/2
	r.SetRotateKeepBytes(cap)
	rotateOnce()
	sizes = archiveSizes(t, dir)
	if len(sizes) != 2 || sizes[3] == 0 || sizes[4] == 0 {
		t.Fatalf("after byte-cap sweep archives = %v, want exactly generations {3, 4}", sizes)
	}
	total = sizes[3] + sizes[4]
	if total > cap {
		t.Fatalf("retained %d bytes over the %d cap", total, cap)
	}
	if got := obs.M().Gauge("journal.archive_bytes").Value(); int64(got) != total {
		t.Fatalf("journal.archive_bytes = %v after sweep, stat total = %d", got, total)
	}

	// The count bound still applies on its own terms.
	r.SetRotateKeepBytes(0)
	r.SetRotateKeep(1)
	rotateOnce()
	sizes = archiveSizes(t, dir)
	if len(sizes) != 1 || sizes[5] == 0 {
		t.Fatalf("count bound keep=1 left archives %v, want only generation 5", sizes)
	}
}
