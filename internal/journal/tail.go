package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// Tailer incrementally follows a live WAL: it decodes complete frames
// as the primary appends them and survives WAL rotation (the
// checkpoint-swap protocol in Recorder.SetRotateAtCheckpoint). It is
// the change-stream half of replication — a warm standby folds the
// tailed records into a State to replay-to-follow, and a sqldb read
// replica applies the KindSQLEffect records it carries.
//
// The cursor protocol: within one segment (one WAL inode) the tailer
// only ever advances past fully validated frames, so a torn read — the
// writer's in-flight append observed mid-write — parks the cursor at
// the frame boundary and the same offset decodes cleanly on a later
// poll. Across rotation, the commit point is the publisher's
// fsync-then-rename: the tailer detects the rename by inode identity
// (os.SameFile), finishes draining the superseded inode through its
// still-open descriptor — records appended after the tailer's previous
// poll but before the swap live only there — and then reopens the path
// at offset zero. Drain-before-switch makes delivery exactly-once
// across the rename: nothing is skipped (the old inode is frozen once
// the recorder adopts the new segment, so a full drain is a complete
// one), and nothing is doubled (the new segment starts with a
// checkpoint record that was never in the old segment).
//
// Drain-before-switch alone cannot absorb a poll gap spanning MORE
// than one rotation: the intermediate segment was renamed away before
// the tailer could open it. With Recorder.SetRotateKeep the retiring
// segments survive as archives (wal.log.seg<gen>) and the tailer
// chases them in generation order, keeping delivery exactly-once at
// any lag up to the retention bound; past it (or with retention off)
// the loss is detected via the rotation-generation stamp on
// segment-head checkpoints and surfaced as SkippedSegments.
//
// A Tailer is single-goroutine: callers serialize Poll/Close
// themselves (the Standby wraps one in its own loop).
type Tailer struct {
	path    string
	f       *os.File
	fi      os.FileInfo
	cursor  int64 // byte offset of the next undecoded frame in f
	segment int64 // rotations observed since NewTailer
	archive bool  // f is a retained (immutable) archive, not the live WAL
	primed  bool  // at least one segment fully drained since attach

	delivered int64     // records emitted over the tailer's lifetime
	lastTime  time.Time // Time field of the most recently emitted record

	lastGen int64 // rotation generation of the last checkpoint seen
	skipped int64 // whole segments missed beyond what archives covered
}

// NewTailer returns a tailer following the WAL inside dir (the same
// directory a Recorder was — or will be — opened on). The WAL need not
// exist yet; polls before the primary's first append simply deliver
// nothing.
func NewTailer(dir string) *Tailer {
	return &Tailer{path: filepath.Join(dir, WALName)}
}

// maxRotationsPerPoll bounds the rotation-chase loop; a tailer that
// lags this many whole rotations behind inside one poll is broken.
const maxRotationsPerPoll = 1000

// Poll decodes every complete frame appended since the previous poll
// and hands each record to emit, in order. It returns the number of
// records delivered. An emit error aborts the poll *without* advancing
// the cursor past the failed record, so the next poll redelivers it.
// A torn tail (the writer's in-flight append) is not an error: the
// poll stops before it and the next poll retries the same offset.
func (t *Tailer) Poll(emit func(*Record) error) (int, error) {
	delivered := 0
	for chase := 0; ; chase++ {
		if chase > maxRotationsPerPoll {
			return delivered, fmt.Errorf("journal: tail: runaway rotation chase on %s", t.path)
		}
		if t.f == nil {
			// Between segments: the next one in generation order is
			// either still retained as an archive (we lagged ≥2
			// rotations) or it is the live WAL itself.
			if t.primed {
				if f, fi, ok := openIfExists(archivePath(t.path, t.lastGen+1)); ok {
					t.f, t.fi, t.cursor, t.archive = f, fi, 0, true
				}
			} else if g, ok := earliestArchive(t.path); ok {
				// First attach with rotations already behind the WAL:
				// start from the earliest retained archive, not the live
				// segment, so a consumer bootstrapped mid-stream (a sqldb
				// replica skipping below its dump floor) receives the
				// full retained history. Records its floor already covers
				// are the consumer's to deduplicate.
				if f, fi, ok2 := openIfExists(archivePath(t.path, g)); ok2 {
					t.f, t.fi, t.cursor, t.archive = f, fi, 0, true
					t.lastGen = g
				}
			}
			if t.f == nil {
				f, fi, ok := openIfExists(t.path)
				if !ok {
					return delivered, nil // primary has not created the WAL yet
				}
				t.f, t.fi, t.cursor, t.archive = f, fi, 0, false
			}
		}
		n, err := t.drain(emit)
		delivered += n
		if err == errSegmentGap {
			// The live WAL's head is generations ahead but the archive
			// of the segment we need appeared after we opened — retry
			// the open, which will prefer the archive.
			t.f.Close()
			t.f, t.fi, t.cursor = nil, nil, 0
			continue
		}
		if err != nil {
			return delivered, err
		}
		t.primed = true
		if t.archive {
			// The hard link is created BEFORE the rename commit point,
			// so for a brief window the "archive" still IS the live WAL.
			// If the path still names our inode, keep the descriptor and
			// cursor and continue as the live segment — resetting to
			// offset zero here would redeliver everything just drained.
			if cur, err := os.Stat(t.path); err == nil && os.SameFile(t.fi, cur) {
				t.archive = false
				continue
			}
			// Truly retired: immutable, so EOF means fully drained.
			// Move on to the next generation.
			t.f.Close()
			t.f, t.fi, t.cursor, t.archive = nil, nil, 0, false
			t.segment++
			continue
		}
		cur, err := os.Stat(t.path)
		if err != nil && !os.IsNotExist(err) {
			return delivered, fmt.Errorf("journal: tail: %w", err)
		}
		if err == nil && os.SameFile(t.fi, cur) {
			return delivered, nil // still the same segment: caught up
		}
		// The path now names a different inode (rotation published a new
		// segment) or nothing at all. Our descriptor pins the superseded
		// inode, which froze the moment the recorder adopted the new
		// segment — drain whatever landed there after our last read,
		// then switch to the new segment at offset zero.
		n, err = t.drain(emit)
		delivered += n
		if err != nil && err != errSegmentGap {
			return delivered, err
		}
		t.f.Close()
		t.f, t.fi, t.cursor = nil, nil, 0
		t.segment++
	}
}

// earliestArchive returns the lowest retained archive generation next
// to walPath, ok=false when no archives exist.
func earliestArchive(walPath string) (int64, bool) {
	matches, err := filepath.Glob(walPath + archiveSuffix + "*")
	if err != nil || len(matches) == 0 {
		return 0, false
	}
	prefix := walPath + archiveSuffix
	min, found := int64(0), false
	for _, m := range matches {
		g, err := strconv.ParseInt(m[len(prefix):], 10, 64)
		if err != nil {
			continue // foreign file sharing the prefix
		}
		if !found || g < min {
			min, found = g, true
		}
	}
	return min, found
}

// openIfExists opens path read-only, returning ok=false if it does not
// exist (a vanished archive or a WAL not yet created).
func openIfExists(path string) (*os.File, os.FileInfo, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, false
	}
	return f, fi, true
}

// errSegmentGap is drain's signal that the current (live) segment is
// more than one generation ahead but the missing segment's archive
// exists — the chase loop should re-open via the archive. Never
// escapes Poll.
var errSegmentGap = errors.New("journal: tail: segment gap with archive available")

// drain decodes complete frames from the current segment starting at
// the cursor, emitting each and advancing the cursor past it. It stops
// cleanly at EOF or at a torn (in-flight) frame.
func (t *Tailer) drain(emit func(*Record) error) (int, error) {
	start := t.cursor
	fr := NewFrameReader(io.NewSectionReader(t.f, start, 1<<62))
	n := 0
	for {
		rec, err := fr.Next()
		if err == io.EOF || IsTorn(err) {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("journal: tail: %w", err)
		}
		if rec.Kind == KindCheckpoint && rec.Occurrence > 0 {
			// Rotation-born checkpoint: generations must be contiguous.
			// A jump means the poll gap spanned more than one rotation
			// and the intermediate segment was renamed away before we
			// could open it. If its archive is retained, hand control
			// back to the chase loop WITHOUT emitting or advancing — the
			// archive is drained first and this frame decodes again
			// afterwards. Otherwise the records are unrecoverable from
			// the log: count them so consumers needing completeness
			// (sqldb replicas) know to re-bootstrap.
			gen := int64(rec.Occurrence)
			if t.primed && !t.archive && gen > t.lastGen+1 {
				if _, err := os.Stat(archivePath(t.path, t.lastGen+1)); err == nil {
					return n, errSegmentGap
				}
				t.skipped += gen - t.lastGen - 1
			}
			t.lastGen = gen
		}
		if err := emit(rec); err != nil {
			return n, err
		}
		t.cursor = start + fr.Offset()
		t.delivered++
		t.lastTime = rec.Time
		n++
	}
}

// Backlog returns the bytes appended to the current segment that the
// tailer has not yet decoded — zero when fully caught up. It is a lag
// signal between polls; Poll itself always drains to the tail.
func (t *Tailer) Backlog() int64 {
	if t.f == nil {
		return 0
	}
	fi, err := t.f.Stat()
	if err != nil {
		return 0
	}
	if b := fi.Size() - t.cursor; b > 0 {
		return b
	}
	return 0
}

// Delivered reports the total records emitted over the tailer's life.
func (t *Tailer) Delivered() int64 { return t.delivered }

// LastRecordTime returns the Time field of the most recently emitted
// record (zero before any delivery). now − LastRecordTime is the
// replica's staleness in wall-clock terms once the tailer is caught
// up.
func (t *Tailer) LastRecordTime() time.Time { return t.lastTime }

// Segment reports how many rotations the tailer has crossed.
func (t *Tailer) Segment() int64 { return t.segment }

// SkippedSegments reports how many whole WAL segments the tailer
// missed because a poll gap spanned more than one rotation. Lifecycle
// consumers recover automatically (the next checkpoint carries full
// state); SQL-effect consumers cannot (those records are gone) and
// must re-bootstrap when this is non-zero.
func (t *Tailer) SkippedSegments() int64 { return t.skipped }

// Close releases the tailer's descriptor. The tailer may be reused
// after Close; the next Poll reopens the WAL at offset zero, so only
// close a tailer whose consumer tolerates redelivery (or is done).
func (t *Tailer) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f, t.fi, t.cursor = nil, nil, 0
	return err
}
