// Package obsv is a zero-dependency tracing and metrics subsystem for the
// workflow/SQL reproduction. It provides:
//
//   - hierarchical spans (instance → activity → SQL statement / bus call)
//     labeled with the product stack (BIS / WF / Oracle), the paper's
//     pattern id, and an outcome;
//   - a registry of named counters and latency histograms (retry attempts,
//     breaker transitions, dead-letters, journal appends/replays, sqldb
//     parse/plan/exec time, engine-lock wait, statement-cache hits and
//     misses, rows scanned vs. returned, index-hit ratio, and the
//     instance scheduler's throughput counters and queue-wait/run-time
//     histograms);
//   - pluggable exporters: an in-memory Collector for tests and a JSONL
//     trace writer for the -trace flag on cmd/wfrun and cmd/bpelrun.
//
// The subsystem is deliberately stdlib-only: no OpenTelemetry, no external
// sinks. Everything an executable Figure-4/6/8 run measures about itself
// flows through one Observability bundle.
package obsv

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind classifies a span within the hierarchy.
type SpanKind string

const (
	KindInstance SpanKind = "instance" // one workflow instance run
	KindActivity SpanKind = "activity" // one activity execution
	KindSQL      SpanKind = "sql"      // one SQL statement
	KindBus      SpanKind = "bus"      // one service-bus call
	KindJournal  SpanKind = "journal"  // journal append/checkpoint/recover
)

// Outcome is the terminal status of a span.
type Outcome string

const (
	OutcomeOK           Outcome = "ok"
	OutcomeFault        Outcome = "fault"
	OutcomeReplayed     Outcome = "replayed"     // satisfied from the journal
	OutcomeDeadLettered Outcome = "deadlettered" // absorbed via dead-letter
	OutcomeCrashed      Outcome = "crashed"      // chaos crash point fired
)

// Span is one timed node in the trace tree. Spans are created by
// Tracer.Start and closed by (*Span).End; between those calls attributes
// may be attached with Set. A Span's fields are owned by the goroutine
// that runs the spanned work — concurrent Set calls on the same span are
// guarded by the span's own mutex so Flow branches can annotate safely.
type Span struct {
	ID       uint64            `json:"id"`
	Parent   uint64            `json:"parent,omitempty"`
	Kind     SpanKind          `json:"kind"`
	Name     string            `json:"name"`
	Stack    string            `json:"stack,omitempty"`    // BIS | WF | Oracle
	Pattern  string            `json:"pattern,omitempty"`  // paper pattern id
	Instance int64             `json:"instance,omitempty"` // engine instance id
	Start    time.Time         `json:"start"`
	EndTime  time.Time         `json:"end"`
	Outcome  Outcome           `json:"outcome"`
	Attrs    map[string]string `json:"attrs,omitempty"`

	tracer *Tracer
	mu     sync.Mutex
	ended  bool
}

// Set attaches (or overwrites) a string attribute on the span.
func (s *Span) Set(key, value string) *Span {
	if s == nil {
		return s
	}
	s.mu.Lock()
	if s.Attrs == nil {
		// Pre-size for the typical attribute count (the sqldb statement
		// spans set up to seven) so the map never rehashes mid-span.
		s.Attrs = make(map[string]string, 8)
	}
	s.Attrs[key] = value
	s.mu.Unlock()
	return s
}

// SetOutcome records the terminal status without ending the span.
func (s *Span) SetOutcome(o Outcome) *Span {
	if s == nil {
		return s
	}
	s.mu.Lock()
	s.Outcome = o
	s.mu.Unlock()
	return s
}

// SpanID returns the span's id, or 0 for a nil span.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.ID
}

// Duration is EndTime-Start for an ended span, 0 otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil || s.EndTime.IsZero() {
		return 0
	}
	return s.EndTime.Sub(s.Start)
}

// End closes the span with the given outcome (OutcomeOK when o is empty
// and no outcome was recorded earlier) and hands it to the tracer's
// sinks. End is idempotent; only the first call exports.
func (s *Span) End(o Outcome) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.EndTime = s.tracer.now()
	if o != "" {
		s.Outcome = o
	} else if s.Outcome == "" {
		s.Outcome = OutcomeOK
	}
	t := s.tracer
	s.mu.Unlock()
	if t != nil {
		t.export(s)
	}
}

// SpanSink receives finished spans. Implementations must be safe for
// concurrent use; Flow branches end spans from multiple goroutines.
type SpanSink interface {
	ExportSpan(*Span)
}

// Tracer creates spans and fans finished ones out to sinks. The zero
// value is unusable; use NewTracer. A nil *Tracer is safe everywhere —
// Start returns a nil span and every Span method no-ops — so call sites
// never need to guard on whether observability is attached.
type Tracer struct {
	mu      sync.Mutex                 // serializes sink-list writers and guards clock
	sinks   atomic.Pointer[[]SpanSink] // copy-on-write: export reads lock- and alloc-free
	nextID  atomic.Uint64
	clock   func() time.Time
	ambient atomic.Uint64 // fallback parent for context-free layers (orasoa)
}

// NewTracer returns a tracer exporting to the given sinks.
func NewTracer(sinks ...SpanSink) *Tracer {
	t := &Tracer{clock: time.Now}
	for _, s := range sinks {
		t.AddSink(s)
	}
	return t
}

// AddSink registers an additional sink.
func (t *Tracer) AddSink(s SpanSink) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	var next []SpanSink
	if cur := t.sinks.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, s)
	t.sinks.Store(&next)
	t.mu.Unlock()
}

// SetClock overrides the tracer's time source (tests).
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	t.clock = now
	t.mu.Unlock()
}

func (t *Tracer) now() time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	c := t.clock
	t.mu.Unlock()
	if c == nil {
		return time.Now()
	}
	return c()
}

// Start opens a span under parent (0 = root). Nil-safe.
func (t *Tracer) Start(parent uint64, kind SpanKind, name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		ID:     t.nextID.Add(1),
		Parent: parent,
		Kind:   kind,
		Name:   name,
		Start:  t.now(),
		tracer: t,
	}
	return s
}

// StartAt opens a span with an explicit start time — for layers that
// measure first and report after (the sqldb stats sink). Nil-safe.
func (t *Tracer) StartAt(parent uint64, kind SpanKind, name string, start time.Time) *Span {
	s := t.Start(parent, kind, name)
	if s != nil && !start.IsZero() {
		s.Start = start
	}
	return s
}

// SetAmbient records a fallback parent span id for layers that have no
// context threading (the Oracle extension functions are invoked from
// inside XPath evaluation, far from any engine Ctx). The engine sets the
// ambient id to the current activity span while executing it; Start sites
// without an explicit parent use Ambient(). Exact for the sequential
// figure runs; concurrent Flow branches may interleave, which is
// acceptable for a fallback.
func (t *Tracer) SetAmbient(id uint64) {
	if t == nil {
		return
	}
	t.ambient.Store(id)
}

// Ambient returns the current fallback parent id.
func (t *Tracer) Ambient() uint64 {
	if t == nil {
		return 0
	}
	return t.ambient.Load()
}

func (t *Tracer) export(s *Span) {
	sinks := t.sinks.Load()
	if sinks == nil {
		return
	}
	for _, sink := range *sinks {
		sink.ExportSpan(s)
	}
}

// Observability bundles a tracer and a metrics registry; it is the single
// handle threaded through the engine, the product layers, sqldb, wsbus,
// journal and resilience. A nil *Observability is safe everywhere.
type Observability struct {
	Tracer  *Tracer
	Metrics *Registry
}

// New returns a bundle with a fresh tracer (no sinks yet) and registry.
func New() *Observability {
	return &Observability{Tracer: NewTracer(), Metrics: NewRegistry()}
}

// T returns the tracer (nil-safe).
func (o *Observability) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// M returns the metrics registry (nil-safe).
func (o *Observability) M() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}
