package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Collector is an in-memory SpanSink for tests: it retains every finished
// span and offers tree-shaped queries over them.
type Collector struct {
	mu    sync.Mutex
	spans []*Span
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// ExportSpan implements SpanSink.
func (c *Collector) ExportSpan(s *Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// Spans returns a copy of all collected spans in end order.
func (c *Collector) Spans() []*Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// Len returns the number of collected spans.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// ByKind returns all spans of the given kind.
func (c *Collector) ByKind(k SpanKind) []*Span {
	var out []*Span
	for _, s := range c.Spans() {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// ByName returns all spans with the given name.
func (c *Collector) ByName(name string) []*Span {
	var out []*Span
	for _, s := range c.Spans() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Children returns the spans whose Parent is id.
func (c *Collector) Children(id uint64) []*Span {
	var out []*Span
	for _, s := range c.Spans() {
		if s.Parent == id {
			out = append(out, s)
		}
	}
	return out
}

// Roots returns spans with no parent.
func (c *Collector) Roots() []*Span { return c.Children(0) }

// Reset discards all collected spans.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.spans = nil
	c.mu.Unlock()
}

// TreeString renders the collected spans as an indented tree (for test
// failure messages and the DESIGN doc example). Children are ordered by
// span id.
func (c *Collector) TreeString() string {
	spans := c.Spans()
	children := map[uint64][]*Span{}
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].ID < kids[j].ID })
	}
	var b []byte
	var walk func(id uint64, depth int)
	walk = func(id uint64, depth int) {
		for _, s := range children[id] {
			for i := 0; i < depth; i++ {
				b = append(b, ' ', ' ')
			}
			line := fmt.Sprintf("%s %s [%s]", s.Kind, s.Name, s.Outcome)
			if s.Stack != "" {
				line += " stack=" + s.Stack
			}
			if s.Pattern != "" {
				line += " pattern=" + s.Pattern
			}
			b = append(b, line...)
			b = append(b, '\n')
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	return string(b)
}

// JSONLWriter streams each finished span as one JSON line — the sink
// behind the -trace flag on cmd/wfrun and cmd/bpelrun. Writes are
// serialized; errors are retained and reported by Err.
type JSONLWriter struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	err error
}

// NewJSONLWriter returns a writer exporting JSONL to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: w, enc: json.NewEncoder(w)}
}

// ExportSpan implements SpanSink.
func (j *JSONLWriter) ExportSpan(s *Span) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	// Encode under the span mutex so concurrent Set calls cannot race
	// the serialization of Attrs.
	s.mu.Lock()
	err := j.enc.Encode(s)
	s.mu.Unlock()
	if err != nil {
		j.err = err
	}
}

// Err returns the first write error, if any.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// WriteMetricsJSON serializes a registry snapshot as indented JSON — the
// payload behind the -metrics flag and the bench fold.
func WriteMetricsJSON(w io.Writer, r *Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
